// Matmul runs one configuration of the paper's Table 1 experiment: an
// n x n block matrix multiplication on a simulated cluster, measuring the
// execution-time reduction obtained from DPS's implicit overlapping of
// communications and computations.
//
// Three runs are measured, as in the paper's methodology:
//
//	t_comm — the same token flow with the multiply kernel disabled;
//	t_comp — the same graph with all threads local (zero-cost fabric);
//	t_full — the real pipelined execution.
//
// reduction = 1 - t_full / (t_comm + t_comp); the paper's potential bound
// is ratio/(ratio+1) for ratio <= 1 and 1/(1+ratio) otherwise, with
// ratio = t_comm / t_comp.
//
//	go run ./examples/matmul [-n 512 -s 8 -nodes 4]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/dps"
	"repro/internal/matrix"
	"repro/internal/parlin"
	"repro/internal/simnet"
)

func main() {
	n := flag.Int("n", 512, "matrix size")
	s := flag.Int("s", 8, "splitting factor (block size n/s)")
	nodes := flag.Int("nodes", 4, "compute nodes (plus one master node)")
	flag.Parse()

	a := matrix.Random(*n, *n, 1)
	b := matrix.Random(*n, *n, 2)

	run := func(simulated, compute bool) time.Duration {
		names := make([]string, *nodes+1)
		for i := range names {
			names[i] = fmt.Sprintf("node%d", i)
		}
		var app *dps.App
		var err error
		if simulated {
			net := simnet.New(simnet.GigabitEthernet())
			defer net.Close()
			app, err = dps.NewSim(net, dps.WithNodes(names...), dps.WithWindow(256))
		} else {
			app, err = dps.NewLocal(dps.WithNodes(names...), dps.WithWindow(256))
		}
		if err != nil {
			log.Fatal(err)
		}
		defer app.Close()
		mm, err := parlin.NewMatmul(app.Core(), parlin.MatmulOptions{Workers: *nodes})
		if err != nil {
			log.Fatal(err)
		}
		if err := mm.WorkersCollection().MapNodes(names[1:]...); err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		got, err := mm.Run(a, b, *s, compute)
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		if compute {
			if d := got.MaxAbsDiff(a.Mul(b)); d > 1e-9 {
				log.Fatalf("VERIFICATION FAILED: max diff %g", d)
			}
		}
		return elapsed
	}

	fmt.Printf("matmul %dx%d, %d blocks of %dx%d, %d compute nodes\n",
		*n, *n, (*s)*(*s), *n / *s, *n / *s, *nodes)
	tFull := run(true, true)
	tComm := run(true, false)
	tComp := run(false, true)

	ratio := tComm.Seconds() / tComp.Seconds()
	reduction := 1 - tFull.Seconds()/(tComm.Seconds()+tComp.Seconds())
	potential := ratio / (ratio + 1)
	if ratio > 1 {
		potential = 1 / (1 + ratio)
	}
	fmt.Printf("t_full = %v   t_comm = %v   t_comp = %v\n",
		tFull.Round(time.Millisecond), tComm.Round(time.Millisecond), tComp.Round(time.Millisecond))
	fmt.Printf("comm/comp ratio      = %.2f\n", ratio)
	fmt.Printf("measured reduction   = %.1f%%\n", reduction*100)
	fmt.Printf("potential (paper g)  = %.1f%%\n", potential*100)
	fmt.Println("result verified against sequential multiplication: OK")
}
