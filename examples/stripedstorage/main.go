// Stripedstorage reproduces the runtime-environment scenario of the
// paper's Figure 5: a striped file system runs as a DPS application on the
// cluster, and two independent user applications call its parallel read
// service concurrently — each call is split across the stripe stores, read
// in parallel, and merged back, while pipelining keeps the file system's
// nodes busy.
//
//	go run ./examples/stripedstorage [-nodes 4 -filemb 8 -stripekb 64]
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"log"
	"sync"
	"time"

	"repro/dps"
	"repro/internal/simnet"
	"repro/internal/stripefs"
)

func main() {
	nodes := flag.Int("nodes", 4, "file system nodes")
	fileMB := flag.Int("filemb", 8, "test file size in MB")
	stripeKB := flag.Int("stripekb", 64, "stripe size in KB")
	clients := flag.Int("clients", 2, "concurrent client applications")
	reads := flag.Int("reads", 16, "reads per client")
	readKB := flag.Int("readkb", 256, "bytes per read in KB")
	flag.Parse()

	net := simnet.New(simnet.GigabitEthernet())
	defer net.Close()
	names := make([]string, *nodes)
	for i := range names {
		names[i] = fmt.Sprintf("fsnode%d", i)
	}
	fsApp, err := dps.NewSim(net, dps.WithNodes(names...))
	if err != nil {
		log.Fatal(err)
	}
	defer fsApp.Close()
	fs, err := stripefs.New(fsApp.Core(), stripefs.Options{Stores: *nodes})
	if err != nil {
		log.Fatal(err)
	}
	// The file system's parallel read service, with static call types: the
	// striped-read graph accepts *ReadReq and produces *ReadResp.
	readService := dps.MustTyped[*stripefs.ReadReq, *stripefs.ReadResp](fs.ReadGraph())

	// Produce and store the file (striped across all nodes).
	data := make([]byte, *fileMB<<20)
	for i := range data {
		data[i] = byte(i * 2654435761)
	}
	start := time.Now()
	if err := fs.Write("volume.bin", data, *stripeKB<<10); err != nil {
		log.Fatal(err)
	}
	wElapsed := time.Since(start)
	fmt.Printf("wrote %d MB in %d KB stripes over %d nodes in %v (%.1f MB/s)\n",
		*fileMB, *stripeKB, *nodes, wElapsed.Round(time.Millisecond),
		float64(len(data))/1e6/wElapsed.Seconds())

	// Concurrent client applications calling the read service (Figure 5's
	// "User App #1" and "User App #2").
	var wg sync.WaitGroup
	for cid := 0; cid < *clients; cid++ {
		wg.Add(1)
		go func(cid int) {
			defer wg.Done()
			app, err := dps.NewSim(net, dps.WithNodes(fmt.Sprintf("client%d", cid)))
			if err != nil {
				log.Fatal(err)
			}
			defer app.Close()
			tc := dps.MustCollection[struct{}](app, "client")
			if err := tc.Map(app.MasterNode()); err != nil {
				log.Fatal(err)
			}
			callFS := dps.CallStage("call-fs-read", readService, tc, dps.MainRoute())
			g, err := dps.Build(app, "reader", dps.Chain(callFS))
			if err != nil {
				log.Fatal(err)
			}
			readLen := *readKB << 10
			t0 := time.Now()
			for i := 0; i < *reads; i++ {
				off := ((cid*131 + i*7919) * 1024) % (len(data) - readLen)
				out, err := g.Call(context.Background(), &stripefs.ReadReq{Name: "volume.bin", Offset: off, Length: readLen})
				if err != nil {
					log.Fatal(err)
				}
				if !bytes.Equal(out.Data, data[off:off+readLen]) {
					log.Fatalf("client %d: read %d returned wrong bytes", cid, i)
				}
			}
			el := time.Since(t0)
			fmt.Printf("client %d: %d reads of %d KB in %v (%.1f MB/s, %.2f ms/call)\n",
				cid, *reads, *readKB, el.Round(time.Millisecond),
				float64(*reads*readLen)/1e6/el.Seconds(),
				el.Seconds()*1000/float64(*reads))
		}(cid)
	}
	wg.Wait()
	fmt.Println("all client reads verified: OK")
}
