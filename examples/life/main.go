// Life runs the paper's §5 Game of Life application on a simulated
// cluster: the world is band-distributed across worker nodes, iterations
// exchange borders and compute via DPS flow graphs, and the world-read
// parallel service (Figure 10) renders a viewport while the simulation
// evolves. The result is verified against the sequential reference
// stepper.
//
//	go run ./examples/life [-w 400 -h 300 -nodes 4 -iters 40 -improved]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/dps"
	"repro/internal/life"
	"repro/internal/parlife"
	"repro/internal/simnet"
)

func main() {
	width := flag.Int("w", 400, "world width")
	height := flag.Int("h", 300, "world height")
	nodes := flag.Int("nodes", 4, "virtual cluster nodes (= band workers)")
	iters := flag.Int("iters", 40, "iterations to run")
	improved := flag.Bool("improved", true, "use the improved (overlapping) flow graph of Figure 8")
	show := flag.Bool("show", true, "render a 40x20 viewport via the read service")
	workers := flag.Int("workers", 0, "scheduler worker lanes per node (0 = per-instance drainers)")
	flag.Parse()

	net := simnet.New(simnet.GigabitEthernet())
	defer net.Close()
	names := make([]string, *nodes)
	for i := range names {
		names[i] = fmt.Sprintf("node%d", i)
	}
	app, err := dps.NewSim(net, dps.WithNodes(names...), dps.WithWorkers(*workers))
	if err != nil {
		log.Fatal(err)
	}
	defer app.Close()

	sim, err := parlife.New(app.Core(), *width, *height, parlife.Options{Workers: *nodes})
	if err != nil {
		log.Fatal(err)
	}
	world := life.RandomWorld(*width, *height, 0.3, 42)
	if err := sim.Load(world); err != nil {
		log.Fatal(err)
	}

	variant := "simple (Figure 7)"
	if *improved {
		variant = "improved (Figure 8)"
	}
	fmt.Printf("life %dx%d on %d nodes, %s graph, %d iterations\n",
		*width, *height, *nodes, variant, *iters)

	start := time.Now()
	for i := 0; i < *iters; i++ {
		if err := sim.Step(*improved); err != nil {
			log.Fatal(err)
		}
		if *show && i%10 == 9 {
			renderViewport(sim, i+1)
		}
	}
	elapsed := time.Since(start)
	fmt.Printf("%d iterations in %v (%.1f ms/iter)\n",
		*iters, elapsed.Round(time.Millisecond),
		elapsed.Seconds()*1000/float64(*iters))

	// Verify the distributed run against the sequential reference.
	got, err := sim.Gather()
	if err != nil {
		log.Fatal(err)
	}
	want := world.StepN(*iters)
	if !got.Equal(want) {
		log.Fatalf("VERIFICATION FAILED: distributed world differs from reference")
	}
	fmt.Printf("verified against sequential reference: OK (population %d)\n", got.Population())
}

// renderViewport reads a block through the parallel world-read service —
// the same graph a separate visualization application would call.
func renderViewport(sim *parlife.Sim, iter int) {
	const vw, vh = 40, 20
	cells, err := sim.ReadBlock(0, 0, vh, vw)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("--- iteration %d (viewport %dx%d via read service) ---\n", iter, vw, vh)
	for r := 0; r < vh; r++ {
		line := make([]byte, vw)
		for c := 0; c < vw; c++ {
			if cells[r*vw+c] != 0 {
				line[c] = '#'
			} else {
				line[c] = '.'
			}
		}
		fmt.Println(string(line))
	}
}
