// Quickstart reproduces the paper's §3 tutorial application: a character
// string is converted to uppercase in parallel by splitting it into its
// individual characters, routing them round-robin over compute threads on
// several (virtual) cluster nodes, and merging the results back in order.
//
//	go run ./examples/quickstart ["some text"]
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/dps"
)

// StringToken and CharToken are the tutorial's data objects. Registration
// (the paper's IDENTIFY macro) enables automatic serialization.
type StringToken struct {
	Str string
}

type CharToken struct {
	Chr byte
	Pos int
}

var (
	_ = dps.Register[StringToken]()
	_ = dps.Register[CharToken]()
)

func main() {
	input := "dynamic parallel schedules"
	if len(os.Args) > 1 {
		input = strings.Join(os.Args[1:], " ")
	}

	// A local "cluster" of three nodes in this process. Swap NewLocal for
	// NewSim to pay modelled network costs, or Connect kernel transports
	// (cmd/dps-kernel) for real TCP. The options select the engine tuning:
	// a per-split flow-control window of 16 tokens and two scheduler
	// worker lanes per node.
	app, err := dps.NewLocal(
		dps.WithNodes("nodeA", "nodeB", "nodeC"),
		dps.WithWindow(16),
		dps.WithWorkers(2),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer app.Close()

	// Thread collections and their dynamic mapping to nodes: two compute
	// threads on nodeB and one on nodeC, exactly the paper's
	// computeThreads->map("nodeA*2 nodeB") idiom.
	mainThread := dps.MustCollection[struct{}](app, "main")
	if err := mainThread.Map("nodeA"); err != nil {
		log.Fatal(err)
	}
	computeThreads := dps.MustCollection[struct{}](app, "proc")
	if err := computeThreads.Map("nodeB*2 nodeC"); err != nil {
		log.Fatal(err)
	}

	// The three stages of the split-compute-merge construct: the paper's
	//   FlowgraphNode<SplitString, MainRoute>(theMainThread) >>
	//   FlowgraphNode<ToUpperCase, RoundRobinRoute>(computeThreads) >>
	//   FlowgraphNode<MergeString, MainRoute>(theMainThread)
	// Each stage carries its token types, so a wiring mistake (say, the
	// merge before the leaf) is a compile error.
	splitString := dps.Split("SplitString", mainThread, dps.MainRoute(),
		func(c *dps.Ctx, in *StringToken, post func(*CharToken)) {
			for i := 0; i < len(in.Str); i++ {
				post(&CharToken{Chr: in.Str[i], Pos: i})
			}
		})
	roundRobin := dps.ByKey[*CharToken]("RoundRobinRoute",
		func(in *CharToken) int { return in.Pos })
	toUpperCase := dps.Leaf("ToUpperCase", computeThreads, roundRobin,
		func(c *dps.Ctx, in *CharToken) *CharToken {
			ch := in.Chr
			if ch >= 'a' && ch <= 'z' {
				ch -= 'a' - 'A'
			}
			return &CharToken{Chr: ch, Pos: in.Pos}
		})
	mergeString := dps.Merge("MergeString", mainThread, dps.MainRoute(),
		func(c *dps.Ctx, first *CharToken, next func() (*CharToken, bool)) *StringToken {
			buf := make([]byte, 0)
			for in, ok := first, true; ok; in, ok = next() {
				for len(buf) <= in.Pos {
					buf = append(buf, 0)
				}
				buf[in.Pos] = in.Chr
			}
			return &StringToken{Str: string(buf)}
		})

	graph, err := dps.Build(app, "graph",
		dps.Then(dps.Then(dps.Chain(splitString), toUpperCase), mergeString))
	if err != nil {
		log.Fatal(err)
	}

	// The typed call: no assertion on the result, and the context cancels
	// the whole invocation if the caller gives up.
	out, err := graph.Call(context.Background(), &StringToken{Str: input})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("in : %s\nout: %s\n", input, out.Str)
}
