// Quickstart reproduces the paper's §3 tutorial application: a character
// string is converted to uppercase in parallel by splitting it into its
// individual characters, routing them round-robin over compute threads on
// several (virtual) cluster nodes, and merging the results back in order.
//
//	go run ./examples/quickstart ["some text"]
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/serial"
)

// StringToken and CharToken are the tutorial's data objects. Registration
// (the paper's IDENTIFY macro) enables automatic serialization.
type StringToken struct {
	Str string
}

type CharToken struct {
	Chr byte
	Pos int
}

var (
	_ = serial.MustRegister[StringToken]()
	_ = serial.MustRegister[CharToken]()
)

func main() {
	input := "dynamic parallel schedules"
	if len(os.Args) > 1 {
		input = strings.Join(os.Args[1:], " ")
	}

	// A local "cluster" of three nodes in this process. Swap NewLocalApp
	// for NewSimApp to pay modelled network costs, or attach kernel
	// transports (cmd/dps-kernel) for real TCP. The Config selects the
	// engine tuning: a per-split flow-control window of 16 tokens and two
	// scheduler worker lanes per node (see internal/core/flowctl and
	// internal/core/sched).
	app, err := core.NewLocalApp(core.Config{Window: 16, Workers: 2}, "nodeA", "nodeB", "nodeC")
	if err != nil {
		log.Fatal(err)
	}
	defer app.Close()

	// Thread collections and their dynamic mapping to nodes: two compute
	// threads on nodeB and one on nodeC, exactly the paper's
	// computeThreads->map("nodeA*2 nodeB") idiom.
	mainThread := core.MustCollection[struct{}](app, "main")
	if err := mainThread.Map("nodeA"); err != nil {
		log.Fatal(err)
	}
	computeThreads := core.MustCollection[struct{}](app, "proc")
	if err := computeThreads.Map("nodeB*2 nodeC"); err != nil {
		log.Fatal(err)
	}

	// The three operations of the split-compute-merge construct.
	splitString := core.Split[*StringToken, *CharToken]("SplitString",
		func(c *core.Ctx, in *StringToken, post func(*CharToken)) {
			for i := 0; i < len(in.Str); i++ {
				post(&CharToken{Chr: in.Str[i], Pos: i})
			}
		})
	toUpperCase := core.Leaf[*CharToken, *CharToken]("ToUpperCase",
		func(c *core.Ctx, in *CharToken) *CharToken {
			ch := in.Chr
			if ch >= 'a' && ch <= 'z' {
				ch -= 'a' - 'A'
			}
			return &CharToken{Chr: ch, Pos: in.Pos}
		})
	mergeString := core.Merge[*CharToken, *StringToken]("MergeString",
		func(c *core.Ctx, first *CharToken, next func() (*CharToken, bool)) *StringToken {
			buf := make([]byte, 0)
			for in, ok := first, true; ok; in, ok = next() {
				for len(buf) <= in.Pos {
					buf = append(buf, 0)
				}
				buf[in.Pos] = in.Chr
			}
			return &StringToken{Str: string(buf)}
		})

	// The flow graph: the paper's
	//   FlowgraphNode<SplitString, MainRoute>(theMainThread) >>
	//   FlowgraphNode<ToUpperCase, RoundRobinRoute>(computeThreads) >>
	//   FlowgraphNode<MergeString, MainRoute>(theMainThread)
	roundRobin := core.ByKey[*CharToken]("RoundRobinRoute",
		func(in *CharToken) int { return in.Pos })
	graph, err := app.NewFlowgraph("graph", core.Path(
		core.NewNode(splitString, mainThread, core.MainRoute()),
		core.NewNode(toUpperCase, computeThreads, roundRobin),
		core.NewNode(mergeString, mainThread, core.MainRoute()),
	))
	if err != nil {
		log.Fatal(err)
	}

	out, err := graph.Call(&StringToken{Str: input})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("in : %s\nout: %s\n", input, out.(*StringToken).Str)
}
