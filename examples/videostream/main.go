// Videostream reproduces the paper's Figure 4: an uncompressed video
// stream is stored on a disk array as partial frames; a stream operation
// recomposes complete frames and forwards each one for processing as soon
// as its parts have arrived, without waiting for the whole stream — the
// defining property of the DPS stream construct.
//
// The example reports how early the first complete frame left the
// recomposition stage relative to the end of the disk reads, demonstrating
// the pipelining a merge+split pair could not achieve.
//
//	go run ./examples/videostream [-frames 48 -parts 4 -nodes 4]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"sync/atomic"
	"time"

	"repro/dps"
	"repro/internal/simnet"
)

// StreamReq asks for a whole video segment.
type StreamReq struct {
	Frames int
	Parts  int
	PartKB int
}

// PartReq asks one disk node for a frame part (Figure 4 stage 1).
type PartReq struct {
	Frame, Part, Parts, PartKB int
}

// FramePart is the data read from the disk array (stage 2).
type FramePart struct {
	Frame, Part, Parts int
	Data               []byte
}

// Frame is a recomposed complete frame (stage 3).
type Frame struct {
	Frame int
	Data  []byte
}

// ProcessedFrame is the output of stage 4.
type ProcessedFrame struct {
	Frame    int
	Checksum uint32
}

// StreamDone summarizes the merged stream (stage 5).
type StreamDone struct {
	Frames int
}

var (
	_ = dps.Register[StreamReq]()
	_ = dps.Register[PartReq]()
	_ = dps.Register[FramePart]()
	_ = dps.Register[Frame]()
	_ = dps.Register[ProcessedFrame]()
	_ = dps.Register[StreamDone]()
)

func main() {
	frames := flag.Int("frames", 48, "frames in the segment")
	parts := flag.Int("parts", 4, "partial frames per frame (disk stripes)")
	nodes := flag.Int("nodes", 4, "virtual cluster nodes (disk array + processors)")
	partKB := flag.Int("partkb", 64, "size of one frame part in KB")
	flag.Parse()

	net := simnet.New(simnet.GigabitEthernet())
	defer net.Close()
	names := make([]string, *nodes)
	for i := range names {
		names[i] = fmt.Sprintf("node%d", i)
	}
	app, err := dps.NewSim(net, dps.WithNodes(names...), dps.WithWindow(32))
	if err != nil {
		log.Fatal(err)
	}
	defer app.Close()

	master := dps.MustCollection[struct{}](app, "master")
	if err := master.Map(names[0]); err != nil {
		log.Fatal(err)
	}
	disks := dps.MustCollection[struct{}](app, "disks")
	if err := disks.MapRoundRobin(*nodes); err != nil {
		log.Fatal(err)
	}
	procs := dps.MustCollection[struct{}](app, "processors")
	if err := procs.MapRoundRobin(*nodes); err != nil {
		log.Fatal(err)
	}

	var lastReadDone atomic.Int64
	var firstFrameOut atomic.Int64

	// (1) generate frame part read requests.
	genReqs := dps.Split("gen-read-requests", master, dps.MainRoute(),
		func(c *dps.Ctx, in *StreamReq, post func(*PartReq)) {
			for f := 0; f < in.Frames; f++ {
				for p := 0; p < in.Parts; p++ {
					post(&PartReq{Frame: f, Part: p, Parts: in.Parts, PartKB: in.PartKB})
				}
			}
		})
	// (2) read frame parts from the disk array (simulated seek+read time).
	readPart := dps.Leaf("read-part", disks,
		dps.ByKey[*PartReq]("stripe", func(in *PartReq) int { return in.Part }),
		func(c *dps.Ctx, in *PartReq) *FramePart {
			time.Sleep(200 * time.Microsecond) // disk access
			data := make([]byte, in.PartKB<<10)
			for i := range data {
				data[i] = byte(in.Frame + in.Part + i)
			}
			lastReadDone.Store(time.Now().UnixNano())
			return &FramePart{Frame: in.Frame, Part: in.Part, Parts: in.Parts, Data: data}
		})
	// (3) combine frame parts into complete frames and stream them out.
	recompose := dps.Stream("recompose", master, dps.MainRoute(),
		func(c *dps.Ctx, first *FramePart, next func() (*FramePart, bool), post func(*Frame)) {
			pending := map[int][][]byte{}
			emit := func(p *FramePart) {
				if pending[p.Frame] == nil {
					pending[p.Frame] = make([][]byte, p.Parts)
				}
				pending[p.Frame][p.Part] = p.Data
				for _, d := range pending[p.Frame] {
					if d == nil {
						return
					}
				}
				var frame []byte
				for _, d := range pending[p.Frame] {
					frame = append(frame, d...)
				}
				delete(pending, p.Frame)
				firstFrameOut.CompareAndSwap(0, time.Now().UnixNano())
				post(&Frame{Frame: p.Frame, Data: frame})
			}
			for in, ok := first, true; ok; in, ok = next() {
				emit(in)
			}
			if len(pending) != 0 {
				panic("incomplete frames at end of stream")
			}
		})
	// (4) process complete frames.
	process := dps.Leaf("process-frame", procs, dps.RoundRobin(),
		func(c *dps.Ctx, in *Frame) *ProcessedFrame {
			var sum uint32
			for _, b := range in.Data {
				sum = sum*31 + uint32(b)
			}
			return &ProcessedFrame{Frame: in.Frame, Checksum: sum}
		})
	// (5) merge processed frames onto the final stream.
	final := dps.Merge("final-stream", master, dps.MainRoute(),
		func(c *dps.Ctx, first *ProcessedFrame, next func() (*ProcessedFrame, bool)) *StreamDone {
			seen := map[int]bool{}
			for in, ok := first, true; ok; in, ok = next() {
				if seen[in.Frame] {
					panic("duplicate frame")
				}
				seen[in.Frame] = true
			}
			return &StreamDone{Frames: len(seen)}
		})

	// The five-stage typed chain: request generation >> disk reads >>
	// stream recomposition >> frame processing >> final merge. Token types
	// are propagated stage to stage at compile time.
	g, err := dps.Build(app, "video",
		dps.Then(dps.Then(dps.Then(dps.Then(dps.Chain(genReqs), readPart), recompose), process), final))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("streaming %d frames x %d parts x %d KB through %d nodes\n",
		*frames, *parts, *partKB, *nodes)
	start := time.Now()
	done, err := g.Call(context.Background(), &StreamReq{Frames: *frames, Parts: *parts, PartKB: *partKB})
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)
	fmt.Printf("processed %d frames in %v (%.1f frames/s)\n",
		done.Frames, elapsed.Round(time.Millisecond),
		float64(done.Frames)/elapsed.Seconds())

	ff, lr := firstFrameOut.Load(), lastReadDone.Load()
	if ff == 0 || lr == 0 {
		log.Fatal("timestamps missing")
	}
	lead := time.Duration(lr - ff)
	if lead <= 0 {
		fmt.Println("WARNING: first frame left recomposition only after the last disk read")
	} else {
		fmt.Printf("pipelining: first complete frame left the stream op %v before the last disk read finished\n",
			lead.Round(time.Millisecond))
	}
}
