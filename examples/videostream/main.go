// Videostream reproduces the paper's Figure 4: an uncompressed video
// stream is stored on a disk array as partial frames; a stream operation
// recomposes complete frames and forwards each one for processing as soon
// as its parts have arrived, without waiting for the whole stream — the
// defining property of the DPS stream construct.
//
// The example reports how early the first complete frame left the
// recomposition stage relative to the end of the disk reads, demonstrating
// the pipelining a merge+split pair could not achieve.
//
//	go run ./examples/videostream [-frames 48 -parts 4 -nodes 4]
package main

import (
	"flag"
	"fmt"
	"log"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/serial"
	"repro/internal/simnet"
)

// StreamReq asks for a whole video segment.
type StreamReq struct {
	Frames int
	Parts  int
	PartKB int
}

// PartReq asks one disk node for a frame part (Figure 4 stage 1).
type PartReq struct {
	Frame, Part, Parts, PartKB int
}

// FramePart is the data read from the disk array (stage 2).
type FramePart struct {
	Frame, Part, Parts int
	Data               []byte
}

// Frame is a recomposed complete frame (stage 3).
type Frame struct {
	Frame int
	Data  []byte
}

// ProcessedFrame is the output of stage 4.
type ProcessedFrame struct {
	Frame    int
	Checksum uint32
}

// StreamDone summarizes the merged stream (stage 5).
type StreamDone struct {
	Frames int
}

var (
	_ = serial.MustRegister[StreamReq]()
	_ = serial.MustRegister[PartReq]()
	_ = serial.MustRegister[FramePart]()
	_ = serial.MustRegister[Frame]()
	_ = serial.MustRegister[ProcessedFrame]()
	_ = serial.MustRegister[StreamDone]()
)

func main() {
	frames := flag.Int("frames", 48, "frames in the segment")
	parts := flag.Int("parts", 4, "partial frames per frame (disk stripes)")
	nodes := flag.Int("nodes", 4, "virtual cluster nodes (disk array + processors)")
	partKB := flag.Int("partkb", 64, "size of one frame part in KB")
	flag.Parse()

	net := simnet.New(simnet.GigabitEthernet())
	defer net.Close()
	names := make([]string, *nodes)
	for i := range names {
		names[i] = fmt.Sprintf("node%d", i)
	}
	app, err := core.NewSimApp(core.Config{Window: 32}, net, names...)
	if err != nil {
		log.Fatal(err)
	}
	defer app.Close()

	master := core.MustCollection[struct{}](app, "master")
	if err := master.Map(names[0]); err != nil {
		log.Fatal(err)
	}
	disks := core.MustCollection[struct{}](app, "disks")
	if err := disks.MapRoundRobin(*nodes); err != nil {
		log.Fatal(err)
	}
	procs := core.MustCollection[struct{}](app, "processors")
	if err := procs.MapRoundRobin(*nodes); err != nil {
		log.Fatal(err)
	}

	var lastReadDone atomic.Int64
	var firstFrameOut atomic.Int64

	// (1) generate frame part read requests.
	genReqs := core.Split[*StreamReq, *PartReq]("gen-read-requests",
		func(c *core.Ctx, in *StreamReq, post func(*PartReq)) {
			for f := 0; f < in.Frames; f++ {
				for p := 0; p < in.Parts; p++ {
					post(&PartReq{Frame: f, Part: p, Parts: in.Parts, PartKB: in.PartKB})
				}
			}
		})
	// (2) read frame parts from the disk array (simulated seek+read time).
	readPart := core.Leaf[*PartReq, *FramePart]("read-part",
		func(c *core.Ctx, in *PartReq) *FramePart {
			time.Sleep(200 * time.Microsecond) // disk access
			data := make([]byte, in.PartKB<<10)
			for i := range data {
				data[i] = byte(in.Frame + in.Part + i)
			}
			lastReadDone.Store(time.Now().UnixNano())
			return &FramePart{Frame: in.Frame, Part: in.Part, Parts: in.Parts, Data: data}
		})
	// (3) combine frame parts into complete frames and stream them out.
	recompose := core.Stream[*FramePart, *Frame]("recompose",
		func(c *core.Ctx, first *FramePart, next func() (*FramePart, bool), post func(*Frame)) {
			pending := map[int][][]byte{}
			emit := func(p *FramePart) {
				if pending[p.Frame] == nil {
					pending[p.Frame] = make([][]byte, p.Parts)
				}
				pending[p.Frame][p.Part] = p.Data
				for _, d := range pending[p.Frame] {
					if d == nil {
						return
					}
				}
				var frame []byte
				for _, d := range pending[p.Frame] {
					frame = append(frame, d...)
				}
				delete(pending, p.Frame)
				firstFrameOut.CompareAndSwap(0, time.Now().UnixNano())
				post(&Frame{Frame: p.Frame, Data: frame})
			}
			for in, ok := first, true; ok; in, ok = next() {
				emit(in)
			}
			if len(pending) != 0 {
				panic("incomplete frames at end of stream")
			}
		})
	// (4) process complete frames.
	process := core.Leaf[*Frame, *ProcessedFrame]("process-frame",
		func(c *core.Ctx, in *Frame) *ProcessedFrame {
			var sum uint32
			for _, b := range in.Data {
				sum = sum*31 + uint32(b)
			}
			return &ProcessedFrame{Frame: in.Frame, Checksum: sum}
		})
	// (5) merge processed frames onto the final stream.
	final := core.Merge[*ProcessedFrame, *StreamDone]("final-stream",
		func(c *core.Ctx, first *ProcessedFrame, next func() (*ProcessedFrame, bool)) *StreamDone {
			seen := map[int]bool{}
			for in, ok := first, true; ok; in, ok = next() {
				if seen[in.Frame] {
					panic("duplicate frame")
				}
				seen[in.Frame] = true
			}
			return &StreamDone{Frames: len(seen)}
		})

	g, err := app.NewFlowgraph("video", core.Path(
		core.NewNode(genReqs, master, core.MainRoute()),
		core.NewNode(readPart, disks, core.ByKey[*PartReq]("stripe", func(in *PartReq) int { return in.Part })),
		core.NewNode(recompose, master, core.MainRoute()),
		core.NewNode(process, procs, core.RoundRobin()),
		core.NewNode(final, master, core.MainRoute()),
	))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("streaming %d frames x %d parts x %d KB through %d nodes\n",
		*frames, *parts, *partKB, *nodes)
	start := time.Now()
	out, err := g.Call(&StreamReq{Frames: *frames, Parts: *parts, PartKB: *partKB})
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)
	done := out.(*StreamDone)
	fmt.Printf("processed %d frames in %v (%.1f frames/s)\n",
		done.Frames, elapsed.Round(time.Millisecond),
		float64(done.Frames)/elapsed.Seconds())

	ff, lr := firstFrameOut.Load(), lastReadDone.Load()
	if ff == 0 || lr == 0 {
		log.Fatal("timestamps missing")
	}
	lead := time.Duration(lr - ff)
	if lead <= 0 {
		fmt.Println("WARNING: first frame left recomposition only after the last disk read")
	} else {
		fmt.Printf("pipelining: first complete frame left the stream op %v before the last disk read finished\n",
			lead.Round(time.Millisecond))
	}
}
