// LU runs the paper's §5 block LU factorization with partial pivoting on a
// simulated cluster. The flow graph is generated at runtime to fit the
// matrix size (one collect-factor-stream construct per block column), and
// the -pipelined flag switches between the stream-operation graph of
// Figure 12 and the merge-then-split variant that Figure 15 compares
// against. The factorization is verified via max|P*A - L*U| and against
// the sequential blocked algorithm.
//
//	go run ./examples/lu [-n 512 -r 32 -nodes 4 -pipelined=true]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/dps"
	"repro/internal/matrix"
	"repro/internal/parlin"
	"repro/internal/simnet"
)

func main() {
	n := flag.Int("n", 512, "matrix size")
	r := flag.Int("r", 32, "block size (n must be a multiple)")
	nodes := flag.Int("nodes", 4, "virtual cluster nodes")
	pipelined := flag.Bool("pipelined", true, "use stream operations (false: merge-then-split)")
	flag.Parse()

	net := simnet.New(simnet.GigabitEthernet())
	defer net.Close()
	names := make([]string, *nodes)
	for i := range names {
		names[i] = fmt.Sprintf("node%d", i)
	}
	app, err := dps.NewSim(net, dps.WithNodes(names...), dps.WithWindow(256))
	if err != nil {
		log.Fatal(err)
	}
	defer app.Close()

	lu, err := parlin.NewLU(app.Core(), *n, *r, parlin.LUOptions{Workers: *nodes, Pipelined: *pipelined})
	if err != nil {
		log.Fatal(err)
	}
	variant := "merge-then-split (non-pipelined)"
	if *pipelined {
		variant = "stream-pipelined (Figure 12)"
	}
	fmt.Printf("LU %dx%d, block %d (%d block columns), %d nodes, %s\n",
		*n, *n, *r, lu.Blocks(), *nodes, variant)
	fmt.Printf("generated flow graph has %d operation nodes\n", lu.Graph().NodeCount())

	a := matrix.Random(*n, *n, 7)
	start := time.Now()
	fact, piv, err := lu.Factor(a)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)
	fmt.Printf("factorized in %v\n", elapsed.Round(time.Millisecond))

	res := matrix.ResidualLU(a, fact, piv)
	fmt.Printf("max|P*A - L*U| = %.3g\n", res)
	if res > 1e-8*float64(*n) {
		log.Fatal("VERIFICATION FAILED: residual too large")
	}

	ref := a.Clone()
	if _, err := matrix.BlockLUFactor(ref, *r); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("max diff vs sequential block LU = %.3g\n", fact.MaxAbsDiff(ref))

	// Demonstrate the factorization by solving a linear system.
	rhs := make([]float64, *n)
	for i := range rhs {
		rhs[i] = float64(i%17) - 8
	}
	x := matrix.LUSolve(fact, piv, rhs)
	// Residual of A x - b.
	worst := 0.0
	for i := 0; i < *n; i++ {
		s := -rhs[i]
		for j := 0; j < *n; j++ {
			s += a.At(i, j) * x[j]
		}
		if s < 0 {
			s = -s
		}
		if s > worst {
			worst = s
		}
	}
	fmt.Printf("solved A x = b with max residual %.3g\n", worst)
}
