package repro

// Ablation benchmarks for the design choices DESIGN.md calls out:
//
//   - the flow-control window (pipelining depth between split and merge);
//   - the same-address-space bypass vs full serialization;
//   - credit-based load balancing vs static round-robin under skew;
//   - stream operations vs merge-then-split (the Figure 15 mechanism, as a
//     micro-benchmark).
//
// Run with: go test -bench=Ablation -benchmem

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/dps"
	"repro/internal/matrix"
	"repro/internal/parlin"
	"repro/internal/simnet"
)

type ablTok struct {
	N    int
	Data []byte
}

type ablSum struct {
	N int
}

var (
	_ = dps.Register[ablTok]()
	_ = dps.Register[ablSum]()
)

// callT invokes the graph with a deadline: ablation experiments must fail
// rather than hang when a configuration wedges the pipeline.
func callT(b *testing.B, g dps.Graph[*ablTok, *ablSum], in *ablTok, d time.Duration) *ablSum {
	b.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), d)
	defer cancel()
	out, err := g.Call(ctx, in)
	if err != nil {
		b.Fatal(err)
	}
	return out
}

// fanGraph builds a split -> work -> merge graph with the given routing;
// payload bytes per token and a per-token worker delay model the workload.
func fanGraph(b *testing.B, app *dps.App, name string, route *dps.Route, workers int,
	delay func(thread int) time.Duration) dps.Graph[*ablTok, *ablSum] {
	b.Helper()
	master := dps.MustCollection[struct{}](app, name+"-master")
	if err := master.Map(app.MasterNode()); err != nil {
		b.Fatal(err)
	}
	work := dps.MustCollection[struct{}](app, name+"-workers")
	if err := work.MapRoundRobin(workers); err != nil {
		b.Fatal(err)
	}
	split := dps.Split(name+"-split", master, dps.MainRoute(),
		func(c *dps.Ctx, in *ablTok, post func(*ablTok)) {
			for i := 0; i < in.N; i++ {
				post(&ablTok{N: i, Data: in.Data})
			}
		})
	leaf := dps.Leaf(name+"-work", work, route,
		func(c *dps.Ctx, in *ablTok) *ablTok {
			if d := delay(c.ThreadIndex()); d > 0 {
				time.Sleep(d)
			}
			return in
		})
	merge := dps.Merge(name+"-merge", master, dps.MainRoute(),
		func(c *dps.Ctx, first *ablTok, next func() (*ablTok, bool)) *ablSum {
			n := 0
			for _, ok := first, true; ok; _, ok = next() {
				n++
			}
			return &ablSum{N: n}
		})
	return dps.MustBuild(app, name, dps.Then(dps.Then(dps.Chain(split), leaf), merge))
}

// BenchmarkAblationWindow sweeps the flow-control window: tiny windows
// serialize the pipeline (no overlap), large ones admit full pipelining.
func BenchmarkAblationWindow(b *testing.B) {
	for _, window := range []int{1, 4, 16, 64, 256} {
		b.Run(fmt.Sprintf("window=%d", window), func(b *testing.B) {
			net := simnet.New(simnet.Config{Bandwidth: 200e6, Latency: 20 * time.Microsecond, PerMessage: 5 * time.Microsecond})
			defer net.Close()
			app, err := dps.NewSim(net, dps.WithNodes("a0", "a1"), dps.WithWindow(window))
			if err != nil {
				b.Fatal(err)
			}
			defer app.Close()
			g := fanGraph(b, app, "win", dps.RoundRobin(), 1, func(int) time.Duration { return 0 })
			payload := make([]byte, 16<<10)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				callT(b, g, &ablTok{N: 128, Data: payload}, 60*time.Second)
			}
		})
	}
}

// BenchmarkAblationLocalBypass compares the same-node pointer handoff with
// forced serialization (the paper's several-kernels-per-host mode).
func BenchmarkAblationLocalBypass(b *testing.B) {
	for _, force := range []bool{false, true} {
		name := "bypass"
		if force {
			name = "force-serialize"
		}
		b.Run(name, func(b *testing.B) {
			app, err := dps.NewLocal(dps.WithNodes("a0"), dps.WithForceSerialize(force))
			if err != nil {
				b.Fatal(err)
			}
			defer app.Close()
			g := fanGraph(b, app, "byp", dps.RoundRobin(), 1, func(int) time.Duration { return 0 })
			payload := make([]byte, 16<<10)
			b.ReportAllocs()
			b.SetBytes(int64(128 * len(payload)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				callT(b, g, &ablTok{N: 128, Data: payload}, 60*time.Second)
			}
		})
	}
}

// BenchmarkAblationLoadBalance compares the credit-based route against
// static round-robin when one of three workers is 4x slower — the paper's
// motivation for feeding merge acknowledgements back into routing.
func BenchmarkAblationLoadBalance(b *testing.B) {
	slowWorker := func(thread int) time.Duration {
		if thread == 0 {
			return 800 * time.Microsecond
		}
		return 200 * time.Microsecond
	}
	routes := map[string]func() *dps.Route{
		"round-robin":   dps.RoundRobin,
		"load-balanced": dps.LoadBalanced,
	}
	for name, mk := range routes {
		b.Run(name, func(b *testing.B) {
			app, err := dps.NewLocal(dps.WithNodes("a0", "a1", "a2", "a3"), dps.WithWindow(8))
			if err != nil {
				b.Fatal(err)
			}
			defer app.Close()
			g := fanGraph(b, app, "lb", mk(), 3, slowWorker)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				callT(b, g, &ablTok{N: 60}, 120*time.Second)
			}
		})
	}
}

// BenchmarkAblationStreamVsMergeSplit isolates the Figure 15 mechanism on
// the LU application at a small size: identical graphs except for whether
// collectors forward eagerly (stream) or buffer the whole group.
func BenchmarkAblationStreamVsMergeSplit(b *testing.B) {
	for _, pipelined := range []bool{true, false} {
		name := "merge-split"
		if pipelined {
			name = "stream"
		}
		b.Run(name, func(b *testing.B) {
			net := simnet.New(simnet.Config{Bandwidth: 1e9, Latency: 5 * time.Microsecond, PerMessage: 3 * time.Microsecond})
			defer net.Close()
			app, err := dps.NewSim(net, dps.WithNodes("a0", "a1", "a2", "a3"), dps.WithWindow(256))
			if err != nil {
				b.Fatal(err)
			}
			defer app.Close()
			lu, err := parlin.NewLU(app.Core(), 256, 32, parlin.LUOptions{Name: "lu", Workers: 4, Pipelined: pipelined})
			if err != nil {
				b.Fatal(err)
			}
			a := matrix.Random(256, 256, 5)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := lu.FactorOnly(a); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
