package bench

import (
	"strconv"
	"testing"
)

// The experiment harness runs in Quick mode here; assertions check the
// qualitative shapes the paper reports, with slack for timing noise.

func cell(t *testing.T, r *Report, row, col int) string {
	t.Helper()
	if row >= len(r.Table.Rows) || col >= len(r.Table.Rows[row]) {
		t.Fatalf("%s: no cell (%d,%d) in table\n%s", r.ID, row, col, r.Table)
	}
	return r.Table.Rows[row][col]
}

func cellF(t *testing.T, r *Report, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(cell(t, r, row, col), 64)
	if err != nil {
		t.Fatalf("%s: cell (%d,%d) = %q not numeric", r.ID, row, col, cell(t, r, row, col))
	}
	return v
}

func TestFigure6Shape(t *testing.T) {
	if raceEnabled {
		t.Skip("timing-based shape assertions are skipped under the race detector")
	}
	r, err := Figure6(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + r.String())
	if len(r.Table.Rows) < 3 {
		t.Fatalf("expected >= 3 sizes, got %d", len(r.Table.Rows))
	}
	first := cellF(t, r, 0, 3)                  // DPS/raw at smallest size
	last := cellF(t, r, len(r.Table.Rows)-1, 3) // at largest size
	if last <= first {
		t.Errorf("DPS/raw ratio should rise with block size: %.2f -> %.2f", first, last)
	}
	if last < 0.6 {
		t.Errorf("DPS should approach the raw rate for large blocks, ratio %.2f", last)
	}
	// Throughput itself must rise with block size for both columns.
	if cellF(t, r, len(r.Table.Rows)-1, 1) <= cellF(t, r, 0, 1) {
		t.Error("DPS throughput did not grow with block size")
	}
}

func TestTable1Shape(t *testing.T) {
	if raceEnabled {
		t.Skip("timing-based shape assertions are skipped under the race detector")
	}
	r, err := Table1(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + r.String())
	// Ratio grows with splitting factor s for fixed node count (paper's
	// rows) — check the first worker block.
	if !(cellF(t, r, 2, 4) > cellF(t, r, 0, 4)) {
		t.Errorf("comm/comp ratio should grow with s: %.2f -> %.2f",
			cellF(t, r, 0, 4), cellF(t, r, 2, 4))
	}
	// Meaningful overlap benefit somewhere (paper: up to 35.6%).
	best := 0.0
	for i := range r.Table.Rows {
		if v := cellF(t, r, i, 3); v > best {
			best = v
		}
	}
	if best < 15 {
		t.Errorf("best reduction %.1f%% too small; overlap is not working", best)
	}
}

func TestFigure9Shape(t *testing.T) {
	if raceEnabled {
		t.Skip("timing-based shape assertions are skipped under the race detector")
	}
	r, err := Figure9(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + r.String())
	// Layout: for each world, simple rows then improved rows, nodesList
	// entries each. Recover structure from the table.
	type key struct{ world, variant string }
	times := map[key][]float64{}
	order := []key{}
	for i := range r.Table.Rows {
		k := key{cell(t, r, i, 0), cell(t, r, i, 1)}
		if _, ok := times[k]; !ok {
			order = append(order, k)
		}
		times[k] = append(times[k], cellF(t, r, i, 3))
	}
	// Improved must beat (or match within noise) simple at the highest
	// node count for every world.
	for _, k := range order {
		if k.variant != "simple" {
			continue
		}
		imp := times[key{k.world, "improved"}]
		simp := times[k]
		if len(imp) == 0 || len(simp) == 0 {
			t.Fatalf("missing rows for world %s", k.world)
		}
		lastS, lastI := simp[len(simp)-1], imp[len(imp)-1]
		if lastI > lastS*1.15 {
			t.Errorf("world %s: improved (%.2fms) slower than simple (%.2fms) at max nodes", k.world, lastI, lastS)
		}
	}
	// The large world must gain from parallelism.
	kLarge := order[len(order)-1]
	tl := times[kLarge]
	if tl[len(tl)-1] >= tl[0] {
		t.Errorf("large world shows no parallel gain: %v", tl)
	}
}

func TestTable2Shape(t *testing.T) {
	if raceEnabled {
		t.Skip("timing-based shape assertions are skipped under the race detector")
	}
	r, err := Table2(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + r.String())
	if len(r.Table.Rows) < 3 {
		t.Fatalf("expected baseline + >= 2 block sizes")
	}
	// Call time grows with block size.
	small := cellF(t, r, 1, 1)
	large := cellF(t, r, 2, 1)
	if large <= small {
		t.Errorf("call time should grow with block size: %.2f -> %.2f ms", small, large)
	}
	// Calls/s falls as blocks grow.
	if cellF(t, r, 2, 3) >= cellF(t, r, 1, 3) {
		t.Errorf("calls/s should fall with block size")
	}
}

func TestFigure15Shape(t *testing.T) {
	if raceEnabled {
		t.Skip("timing-based shape assertions are skipped under the race detector")
	}
	r, err := Figure15(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + r.String())
	n := len(r.Table.Rows) / 2
	pipLast := cellF(t, r, n-1, 2)   // pipelined, max nodes, time
	nonLast := cellF(t, r, 2*n-1, 2) // non-pipelined, max nodes, time
	if pipLast > nonLast*1.1 {
		t.Errorf("pipelined (%vms) should not be slower than non-pipelined (%vms) at max nodes", pipLast, nonLast)
	}
}

// TestThroughputShape runs the real-TCP throughput experiment at quick
// sizes and checks the deterministic (byte-count) acceptance properties;
// the tokens/s columns are wall-clock and too noisy to assert on a loaded
// test host — CI gates those via dps-bench -compare instead.
func TestThroughputShape(t *testing.T) {
	if testing.Short() {
		t.Skip("moves tens of MB over loopback TCP")
	}
	r, err := Throughput(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + r.String())
	if len(r.Table.Rows)%4 != 0 || len(r.Table.Rows) == 0 {
		t.Fatalf("expected 4 variants per size, got %d rows", len(r.Table.Rows))
	}
	for size := 0; size < len(r.Table.Rows)/4; size++ {
		base := size * 4
		for v := 0; v < 4; v++ {
			if rate := cellF(t, r, base+v, 2); rate <= 0 {
				t.Errorf("row %d: tokens/s = %v", base+v, rate)
			}
		}
		// Egress ratios are byte counters, not timing: FT-on egress must
		// stay within 1.2x of FT-off (row order: plain, batch, ft, batch+ft).
		plain := cellF(t, r, base, 4)
		ft := cellF(t, r, base+2, 4)
		batch := cellF(t, r, base+1, 4)
		batchFT := cellF(t, r, base+3, 4)
		if ft > plain*1.2 {
			t.Errorf("size row %d: FT egress %.3f > 1.2x of FT-off %.3f", size, ft, plain)
		}
		if batchFT > batch*1.2 {
			t.Errorf("size row %d: batched FT egress %.3f > 1.2x of batched FT-off %.3f", size, batchFT, batch)
		}
		// Sanity: egress can never undercut the payload it carries.
		if plain < 1.0 || batch < 1.0 {
			t.Errorf("size row %d: egress/payload below 1 (plain %.3f, batch %.3f)", size, plain, batch)
		}
	}
}
