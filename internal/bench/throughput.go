package bench

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/ringbench"
	"repro/internal/trace"
	"repro/internal/transport/tcptransport"
)

// tpNodes is the real-TCP ring size: split on tp0, forwarders on tp1/tp2,
// merge back on tp0 — every block crosses three loopback TCP links.
const tpNodes = 3

// tpResult is one measured throughput configuration.
type tpResult struct {
	tokensPerSec float64
	goodput      float64 // payload MB/s leaving the split
	bytesSent    int64   // engine egress, all nodes (checkpoint records included)
	stats        *core.Stats
}

// runTCPRing measures one configuration of the ring over real loopback TCP
// sockets (no simnet modelled time — wall-clock, syscalls and the kernel
// TCP stack are the substrate being measured).
func runTCPRing(appCfg core.Config, blocks, blockSize int, seed int64) (*tpResult, error) {
	table := make(map[string]string)
	resolver := tcptransport.StaticResolver(table)
	app := core.NewApp(appCfg)
	defer app.Close()
	names := nodeNames("tp", tpNodes)
	for _, name := range names {
		n, err := tcptransport.Listen(name, "127.0.0.1:0", resolver)
		if err != nil {
			return nil, err
		}
		table[name] = n.Addr()
		if _, err := app.AttachTransport(n); err != nil {
			_ = n.Close()
			return nil, err
		}
	}

	single := make([]*core.ThreadCollection, tpNodes)
	for i := range single {
		tc, err := core.NewCollection[struct{}](app, fmt.Sprintf("tp-hop%d", i))
		if err != nil {
			return nil, err
		}
		if err := tc.MapNodes(names[i]); err != nil {
			return nil, err
		}
		single[i] = tc
	}

	// Pseudorandom payloads: compression must not be able to flatter the
	// measured goodput, and the wire sees realistic entropy.
	rng := rand.New(rand.NewSource(seed))
	master := make([]byte, blockSize)
	rng.Read(master)

	split := core.Split[*ringbench.RingOrder, *ringbench.BlockToken]("tp-split",
		func(c *core.Ctx, in *ringbench.RingOrder, post func(*ringbench.BlockToken)) {
			for i := 0; i < in.Blocks; i++ {
				data := make([]byte, in.BlockSize)
				copy(data, master)
				post(&ringbench.BlockToken{Seq: i, Data: data})
			}
		})
	forward := func(hop int) *core.OpDef {
		return core.Leaf[*ringbench.BlockToken, *ringbench.BlockToken](fmt.Sprintf("tp-forward-%d", hop),
			func(c *core.Ctx, in *ringbench.BlockToken) *ringbench.BlockToken { return in })
	}
	merge := core.Merge[*ringbench.BlockToken, *ringbench.RingDone]("tp-merge",
		func(c *core.Ctx, first *ringbench.BlockToken, next func() (*ringbench.BlockToken, bool)) *ringbench.RingDone {
			n := 0
			for _, ok := first, true; ok; _, ok = next() {
				n++
			}
			return &ringbench.RingDone{Blocks: n}
		})

	graphNodes := []*core.GraphNode{core.NewNode(split, single[0], core.MainRoute())}
	for i := 1; i < tpNodes; i++ {
		graphNodes = append(graphNodes, core.NewNode(forward(i), single[i], core.MainRoute()))
	}
	graphNodes = append(graphNodes, core.NewNode(merge, single[0], core.MainRoute()))
	g, err := app.NewFlowgraph("tp-ring", core.Path(graphNodes...))
	if err != nil {
		return nil, err
	}

	// Warm the connections (and the engine's lazy lanes) outside the timed
	// window, then measure.
	if _, err := g.Call(context.Background(), &ringbench.RingOrder{Blocks: 2, BlockSize: 64}); err != nil {
		return nil, fmt.Errorf("warmup: %w", err)
	}
	warm := app.Stats().BytesSent

	sw := trace.StartStopwatch()
	out, err := g.Call(context.Background(), &ringbench.RingOrder{Blocks: blocks, BlockSize: blockSize})
	if err != nil {
		return nil, err
	}
	elapsed := sw.Elapsed()
	if got := out.(*ringbench.RingDone).Blocks; got != blocks {
		return nil, fmt.Errorf("throughput: %d of %d blocks arrived", got, blocks)
	}
	st := app.Stats()
	total := int64(blocks) * int64(blockSize)
	return &tpResult{
		tokensPerSec: float64(blocks) / elapsed.Seconds(),
		goodput:      trace.ThroughputMBs(total, elapsed),
		bytesSent:    st.BytesSent - warm,
		stats:        st,
	}, nil
}

// Throughput measures the wire path end to end over real TCP (loopback):
// tokens/sec and goodput of the 3-node ring at several payload sizes, with
// wire batching off and on, and with the fault-tolerance layer off and on.
// Unlike every simnet experiment, the numbers here are wall-clock — frame
// count, syscalls and serialization are what move them. Not in the paper;
// this is the regression harness for the batched wire path.
func Throughput(opt Options) (*Report, error) {
	total := 16 << 20
	sizes := []int{1 << 10, 64 << 10, 512 << 10}
	if opt.Quick {
		total = 4 << 20
		sizes = []int{1 << 10, 64 << 10}
	}
	seed := opt.Seed
	if seed == 0 {
		seed = 1
	}

	type variant struct {
		name  string
		batch bool
		ft    bool
	}
	variants := []variant{
		{"plain", false, false},
		{"batch", true, false},
		{"ft", false, true},
		{"batch+ft", true, true},
	}

	t := &trace.Table{
		Title:  "Throughput: 3-node ring over real TCP loopback (wall-clock, not simnet)",
		Header: []string{"size[B]", "mode", "tokens/s", "MB/s", "egress/payload", "vs plain"},
	}
	agg := &core.Stats{}
	var notes []string
	for _, size := range sizes {
		blocks := total / size
		if blocks == 0 {
			blocks = 1
		}
		results := make(map[string]*tpResult, len(variants))
		for _, v := range variants {
			cfg := core.Config{Window: 64, Workers: opt.Workers, Batch: v.batch}
			if v.ft {
				cfg.Checkpoint = 2 * time.Millisecond
			}
			res, err := runTCPRing(cfg, blocks, size, seed)
			if err != nil {
				return nil, fmt.Errorf("throughput size=%d %s: %w", size, v.name, err)
			}
			results[v.name] = res
			agg.Add(res.stats)
			payload := float64(blocks) * float64(size) * float64(tpNodes) // each block crosses 3 links
			speedup := res.tokensPerSec / results["plain"].tokensPerSec
			t.AddRow(
				fmt.Sprint(size),
				v.name,
				fmt.Sprintf("%.0f", res.tokensPerSec),
				fmt.Sprintf("%.1f", res.goodput),
				fmt.Sprintf("%.3f", float64(res.bytesSent)/payload),
				fmt.Sprintf("%.2fx", speedup),
			)
		}
		ftRatio := float64(results["ft"].bytesSent) / float64(results["plain"].bytesSent)
		ftBatchRatio := float64(results["batch+ft"].bytesSent) / float64(results["batch"].bytesSent)
		notes = append(notes, fmt.Sprintf(
			"size %d: batching %.2fx tokens/s; FT egress %.2fx of FT-off unbatched, %.2fx batched (regenerative checkpoints keep it near 1x)",
			size,
			results["batch"].tokensPerSec/results["plain"].tokensPerSec,
			ftRatio, ftBatchRatio))
	}
	notes = append(notes,
		"payloads are pseudorandom (incompressible): compression cannot flatter goodput.",
		"check: batching must speed up small-token streams (>=2x tokens/s at 1 KB) and never regress bulk sizes.",
		"check: FT egress must stay <=1.2x of FT-off at bulk sizes — the old full-log checkpoints cost ~2x.",
	)
	return &Report{
		ID:    "throughput",
		Table: t,
		Stats: agg,
		Notes: notes,
	}, nil
}
