// Package bench regenerates every table and figure of the paper's
// evaluation (§4 and §5) on the simulated cluster substrate:
//
//	Figure 6  — ring transfer throughput, DPS vs raw transfers
//	Table 1   — matmul execution-time reduction from comm/comp overlap
//	Figure 9  — Game of Life speedup, improved vs simple flow graph
//	Table 2   — Game of Life service-call overhead
//	Figure 15 — LU factorization speedup, pipelined vs non-pipelined
//
// Each experiment returns a trace.Table whose rows mirror the paper's
// presentation, plus free-text notes recording the paper's reference
// values so EXPERIMENTS.md can compare shapes. Absolute numbers differ
// from the 2003 testbed by construction; the shape checks are what matter.
package bench

import (
	"fmt"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/life"
	"repro/internal/matrix"
	"repro/internal/parlife"
	"repro/internal/parlin"
	"repro/internal/ringbench"
	"repro/internal/simnet"
	"repro/internal/trace"
)

// Options tunes experiment scale.
type Options struct {
	// Quick shrinks problem sizes so the full suite completes in tens of
	// seconds (used by `go test -bench` and CI); the default sizes follow
	// the paper more closely.
	Quick bool
	// Workers is the per-node scheduler worker count threaded into every
	// experiment's core.Config; zero keeps the engine's default on-demand
	// drainer per thread instance.
	Workers int
	// Seed derives the Chaos experiment's fault schedules (zero picks 1);
	// a failing soak reproduces exactly from its printed seed.
	Seed int64
	// Duration is how long each Chaos workload soaks under its schedule;
	// zero picks a default scaled by Quick.
	Duration time.Duration
}

// Report is one regenerated table or figure.
type Report struct {
	ID    string
	Table *trace.Table
	Notes []string
	// Stats aggregates the engine counters of every application the
	// experiment ran (cmd/dps-bench -stats dumps them).
	Stats *core.Stats
	// Hists carries the experiment's latency distributions in structured
	// form, keyed by the same row key the table prints (e.g. "echo/sharded",
	// "recovery/ring"). The table rows keep their formatted percentile cells
	// for humans; -json emits these so -compare reads exact values instead
	// of re-parsing printed columns.
	Hists map[string]*trace.Hist
}

func (r *Report) String() string {
	s := r.Table.String()
	for _, n := range r.Notes {
		s += "note: " + n + "\n"
	}
	return s
}

func nodeNames(prefix string, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("%s%d", prefix, i)
	}
	return out
}

// gigabit is the modelled fabric for all experiments (the paper's Gigabit
// Ethernet switch).
func gigabit() simnet.Config { return simnet.GigabitEthernet() }

// scaledGigabit speeds the fabric up by factor f. The paper's 733 MHz
// Pentium III executed the unoptimized kernels roughly an order of
// magnitude slower per element than this Go build, so compute-heavy
// experiments scale the fabric equally to preserve the paper's
// communication/computation balance (see DESIGN.md, substitutions).
func scaledGigabit(f float64) simnet.Config {
	cfg := simnet.GigabitEthernet()
	cfg.Bandwidth *= f
	cfg.Latency = time.Duration(float64(cfg.Latency) / f)
	cfg.PerMessage = time.Duration(float64(cfg.PerMessage) / f)
	return cfg
}

// Figure6 regenerates the round-trip throughput comparison: 4-node ring,
// DPS data objects vs raw transfers, single-transfer sizes 1 KB - 1 MB.
func Figure6(opt Options) (*Report, error) {
	total := 32 << 20
	sizes := []int{1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20}
	if opt.Quick {
		total = 4 << 20
		sizes = []int{1 << 10, 16 << 10, 256 << 10}
	}
	t := &trace.Table{
		Title:  "Figure 6: ring throughput (4 nodes), DPS vs raw transfers",
		Header: []string{"size[B]", "DPS[MB/s]", "raw[MB/s]", "DPS/raw"},
	}
	agg := &core.Stats{}
	for _, size := range sizes {
		dps, err := ringbench.RunDPSConfig(gigabit(), 4, total, size, core.Config{Window: 64, Workers: opt.Workers})
		if err != nil {
			return nil, fmt.Errorf("figure6 dps size=%d: %w", size, err)
		}
		agg.Add(dps.Stats)
		raw, err := ringbench.RunRaw(gigabit(), 4, total, size)
		if err != nil {
			return nil, fmt.Errorf("figure6 raw size=%d: %w", size, err)
		}
		t.AddRow(
			fmt.Sprint(size),
			fmt.Sprintf("%.1f", dps.Throughput),
			fmt.Sprintf("%.1f", raw.Throughput),
			fmt.Sprintf("%.2f", dps.Throughput/raw.Throughput),
		)
	}
	return &Report{
		ID:    "figure6",
		Table: t,
		Stats: agg,
		Notes: []string{
			"paper: DPS control structures cost matters only for small data objects;",
			"paper: both curves rise with transfer size, DPS approaching the socket rate (~35 MB/s at 1 MB on their testbed).",
			"check: DPS/raw ratio must increase monotonically with size and approach 1.",
		},
	}, nil
}

// Rebalance measures the cost of live thread migration (the "Dynamic" in
// DPS, not an experiment of the paper): the Figure 6 ring runs undisturbed,
// then again with one forwarding hop remapped to another node mid-stream
// and back, exercising the placement layer's quiesce/ship/forward protocol
// under load. The delivered byte counts must be identical; the throughput
// delta and the forwarded-token count price the migration.
func Rebalance(opt Options) (*Report, error) {
	total := 32 << 20
	size := 64 << 10
	if opt.Quick {
		total = 8 << 20
	}
	t := &trace.Table{
		Title:  "Rebalance: 4-node ring, live remap of hop 2 mid-run (not in paper)",
		Header: []string{"scenario", "MB/s", "migrations", "forwarded", "migBytes"},
	}
	agg := &core.Stats{}
	cfg := core.Config{Window: 64, Workers: opt.Workers}
	base, err := ringbench.RunDPSConfig(gigabit(), 4, total, size, cfg)
	if err != nil {
		return nil, fmt.Errorf("rebalance baseline: %w", err)
	}
	agg.Add(base.Stats)
	t.AddRow("steady", fmt.Sprintf("%.1f", base.Throughput), "0", "0", "0")

	// Trigger the remap roughly a third into the run, return two thirds in.
	after := base.Elapsed / 3
	spec := ringbench.RebalanceSpec{Hop: 2, To: 0, After: after, Back: true}
	moved, err := ringbench.RunDPSRebalance(gigabit(), 4, total, size, cfg, spec)
	if err != nil {
		return nil, fmt.Errorf("rebalance migrated run: %w", err)
	}
	agg.Add(moved.Stats)
	// Delivery completeness is enforced inside the harness: the run fails
	// outright when the merge's block count differs from the order.
	t.AddRow("remap x2",
		fmt.Sprintf("%.1f", moved.Throughput),
		fmt.Sprint(moved.Stats.MigrationsCompleted),
		fmt.Sprint(moved.Stats.TokensForwarded),
		fmt.Sprint(moved.Stats.MigrationBytes),
	)
	return &Report{
		ID:    "rebalance",
		Table: t,
		Stats: agg,
		Notes: []string{
			"check: the migrated run delivers every block (the harness fails on any lost or duplicated token).",
			"check: forwarded tokens stay bounded by the in-flight window per migration; throughput dips only during the handover.",
		},
	}, nil
}

// Failover prices the fault-tolerance subsystem (not an experiment of the
// paper; the authors' follow-up line of work made DPS applications fault
// tolerant): the Figure 6 ring runs three ways — fault tolerance off
// (baseline), on (checkpoint + token-retention overhead), and on with one
// forwarding node crashed mid-run (detection, checkpoint restore, token
// replay). The crashed run must still deliver every block exactly once;
// the throughput deltas price the overhead and the recovery column the
// crash-to-restored latency.
func Failover(opt Options) (*Report, error) {
	total := 16 << 20
	size := 64 << 10
	ckpt := 10 * time.Millisecond
	if opt.Quick {
		total = 4 << 20
	}
	t := &trace.Table{
		Title:  "Failover: 4-node ring, hop 2's node crashes mid-run (not in paper)",
		Header: []string{"scenario", "MB/s", "recovery", "ckpts", "ckptBytes", "replayed", "failovers"},
	}
	agg := &core.Stats{}
	base, err := ringbench.RunDPSConfig(gigabit(), 4, total, size, core.Config{Window: 64, Workers: opt.Workers})
	if err != nil {
		return nil, fmt.Errorf("failover baseline: %w", err)
	}
	agg.Add(base.Stats)
	t.AddRow("ft off", fmt.Sprintf("%.1f", base.Throughput), "-", "0", "0", "0", "0")

	ftCfg := core.Config{Window: 64, Workers: opt.Workers, Checkpoint: ckpt}
	ftOn, err := ringbench.RunDPSConfig(gigabit(), 4, total, size, ftCfg)
	if err != nil {
		return nil, fmt.Errorf("failover ft-on run: %w", err)
	}
	agg.Add(ftOn.Stats)
	t.AddRow("ft on", fmt.Sprintf("%.1f", ftOn.Throughput), "-",
		fmt.Sprint(ftOn.Stats.CheckpointsTaken), fmt.Sprint(ftOn.Stats.CheckpointBytes), "0", "0")

	spec := ringbench.FailoverSpec{Hop: 2, After: base.Elapsed / 3}
	crashed, err := ringbench.RunDPSFailover(gigabit(), 4, total, size, ftCfg, spec)
	if err != nil {
		return nil, fmt.Errorf("failover crashed run: %w", err)
	}
	agg.Add(crashed.Stats)
	// Exactly-once is enforced inside the harness: RunDPSFailover fails
	// outright when the merge's block count differs from the order.
	t.AddRow("ft on + crash", fmt.Sprintf("%.1f", crashed.Throughput),
		crashed.Recovery.Round(time.Millisecond).String(),
		fmt.Sprint(crashed.Stats.CheckpointsTaken), fmt.Sprint(crashed.Stats.CheckpointBytes),
		fmt.Sprint(crashed.Stats.TokensReplayed), fmt.Sprint(crashed.Stats.FailoversCompleted))
	return &Report{
		ID:    "failover",
		Table: t,
		Stats: agg,
		Notes: []string{
			"check: the crashed run delivers every block (the harness fails on any lost or duplicated token).",
			"check: fault tolerance off stays at the baseline throughput (the hot path is untouched when disabled).",
			"recovery = crash-to-restored latency (detection by failed sends, checkpoint restore, in-flight replay).",
			"ft-on throughput prices message logging for bulk payloads: every token is retained and shipped once more",
			"inside a checkpoint envelope until a commit truncates it — roughly 2x egress per hop on this fabric, the",
			"classic durability tax; small-token workloads (parlife) pay far less.",
		},
	}, nil
}

// table1Cell measures one (blockSize, workers) configuration: the full
// pipelined run, the communication-only run, and the computation-only run
// (zero-cost fabric), from which the paper's two reported quantities
// follow: reduction = 1 - t_full/(t_comm + t_comp) and ratio =
// t_comm/t_comp.
func table1Cell(n, s, workers int, opt Options, agg *core.Stats) (reduction, ratio float64, err error) {
	a := matrix.Random(n, n, 1)
	b := matrix.Random(n, n, 2)
	appCfg := core.Config{Window: 256, Workers: opt.Workers}
	run := func(cfg *simnet.Config, compute bool) (time.Duration, error) {
		var app *core.App
		var net *simnet.Network
		names := nodeNames("mm", workers+1) // +1: master node
		if cfg != nil {
			net = simnet.New(*cfg)
			defer net.Close()
			app, err = core.NewSimApp(appCfg, net, names...)
		} else {
			app, err = core.NewLocalApp(appCfg, names...)
		}
		if err != nil {
			return 0, err
		}
		defer app.Close()
		defer func() { agg.Add(app.Stats()) }()
		mm, err := parlin.NewMatmul(app, parlin.MatmulOptions{Name: "mm", Workers: workers})
		if err != nil {
			return 0, err
		}
		// Workers live on nodes 1..workers, master alone on node 0 (as in
		// the paper, where the master distributes blocks over the network).
		if err := mm.WorkersCollection().MapNodes(names[1:]...); err != nil {
			return 0, err
		}
		sw := trace.StartStopwatch()
		if _, err := mm.Run(a, b, s, compute); err != nil {
			return 0, err
		}
		return sw.Elapsed(), nil
	}
	cfg := gigabit()
	tFull, err := run(&cfg, true)
	if err != nil {
		return 0, 0, err
	}
	tComm, err := run(&cfg, false)
	if err != nil {
		return 0, 0, err
	}
	tComp, err := run(nil, true)
	if err != nil {
		return 0, 0, err
	}
	reduction = 1 - tFull.Seconds()/(tComm.Seconds()+tComp.Seconds())
	ratio = tComm.Seconds() / tComp.Seconds()
	return reduction, ratio, nil
}

// Table1 regenerates the overlap experiment: block matrix multiplication
// with splitting factors giving the paper's block sizes, on 1-4 compute
// nodes.
func Table1(opt Options) (*Report, error) {
	n := 512
	factors := []int{4, 8, 16, 32}
	maxWorkers := 4
	if opt.Quick {
		n = 256
		factors = []int{4, 8, 16}
		maxWorkers = 2
	}
	t := &trace.Table{
		Title:  fmt.Sprintf("Table 1: matmul overlap, n=%d (reduction in execution time / comm-comp ratio)", n),
		Header: []string{"nodes", "block", "s", "reduction[%]", "ratio"},
	}
	agg := &core.Stats{}
	for workers := 1; workers <= maxWorkers; workers++ {
		for _, s := range factors {
			red, ratio, err := table1Cell(n, s, workers, opt, agg)
			if err != nil {
				return nil, fmt.Errorf("table1 workers=%d s=%d: %w", workers, s, err)
			}
			t.AddRow(
				fmt.Sprint(workers),
				fmt.Sprint(n/s),
				fmt.Sprint(s),
				fmt.Sprintf("%.1f", red*100),
				fmt.Sprintf("%.2f", ratio),
			)
		}
	}
	return &Report{
		ID:    "table1",
		Table: t,
		Stats: agg,
		Notes: []string{
			"paper (n=1024): reductions 6.7%..35.6%; ratios 0.22..5.54; best gains at ratios 0.9-2.5;",
			"paper: ratio grows with splitting factor s and with node count (computation parallelizes, the master's communication does not).",
			"check: ratio increases along both axes; reduction peaks at mid ratios and falls once communication dominates.",
		},
	}, nil
}

// paperCellCost is the modelled per-cell computation time of the paper's
// testbed (733 MHz Pentium III: a 400x400 iteration took roughly 20 ms,
// ~125ns per cell). Charging it as virtual time (a sleep inside the compute
// operations, see parlife.Options.CellCost) makes the speedup experiment
// independent of how many host cores back the simulation: real compute
// cannot parallelize beyond the host's cores (a 1-core CI box shows zero
// speedup however many virtual nodes run), whereas modelled compute
// overlaps across worker threads exactly like the modelled transfers in
// internal/simnet.
const paperCellCost = 125 * time.Nanosecond

// lifeSpeedup measures iterations/second of the life application for one
// (worldW, worldH, nodes, improved) configuration on the simulated fabric,
// taking the best of two runs to suppress scheduler noise.
func lifeSpeedup(worldW, worldH, workers, iters int, improved bool, opt Options, agg *core.Stats) (time.Duration, error) {
	best := time.Duration(0)
	for rep := 0; rep < 2; rep++ {
		el, err := lifeSpeedupOnce(worldW, worldH, workers, iters, improved, opt, agg)
		if err != nil {
			return 0, err
		}
		if best == 0 || el < best {
			best = el
		}
	}
	return best, nil
}

func lifeSpeedupOnce(worldW, worldH, workers, iters int, improved bool, opt Options, agg *core.Stats) (time.Duration, error) {
	net := simnet.New(gigabit())
	defer net.Close()
	names := nodeNames("life", workers)
	app, err := core.NewSimApp(core.Config{Workers: opt.Workers}, net, names...)
	if err != nil {
		return 0, err
	}
	defer app.Close()
	defer func() { agg.Add(app.Stats()) }()
	sim, err := parlife.New(app, worldW, worldH, parlife.Options{
		Name:     "life",
		Workers:  workers,
		CellCost: paperCellCost,
	})
	if err != nil {
		return 0, err
	}
	if err := sim.Load(life.RandomWorld(worldW, worldH, 0.3, 7)); err != nil {
		return 0, err
	}
	// Warm-up iteration instantiates threads and connections.
	if err := sim.Step(improved); err != nil {
		return 0, err
	}
	sw := trace.StartStopwatch()
	if err := sim.StepN(iters, improved); err != nil {
		return 0, err
	}
	return sw.Elapsed(), nil
}

// Figure9 regenerates the Game of Life speedup curves for the simple and
// improved graphs over three world sizes.
func Figure9(opt Options) (*Report, error) {
	// The paper's own world sizes: computation is charged at the testbed's
	// modelled per-cell cost (paperCellCost), so the comm/comp regime — and
	// with it the speedup shape — matches the paper on any host.
	worlds := [][2]int{{400, 400}, {4000, 400}, {4000, 4000}}
	nodesList := []int{1, 2, 4, 8}
	iters := 6
	if opt.Quick {
		worlds = [][2]int{{400, 400}, {1200, 1200}}
		nodesList = []int{1, 2, 4}
		iters = 4
	}
	t := &trace.Table{
		Title:  "Figure 9: Game of Life speedup (vs 1 node, same variant)",
		Header: []string{"world", "variant", "nodes", "time/iter[ms]", "speedup"},
	}
	agg := &core.Stats{}
	for _, w := range worlds {
		for _, improved := range []bool{false, true} {
			var base time.Duration
			for _, workers := range nodesList {
				el, err := lifeSpeedup(w[0], w[1], workers, iters, improved, opt, agg)
				if err != nil {
					return nil, fmt.Errorf("figure9 %dx%d workers=%d: %w", w[0], w[1], workers, err)
				}
				if workers == nodesList[0] {
					base = el
				}
				variant := "simple"
				if improved {
					variant = "improved"
				}
				t.AddRow(
					fmt.Sprintf("%dx%d", w[0], w[1]),
					variant,
					fmt.Sprint(workers),
					fmt.Sprintf("%.2f", el.Seconds()*1000/float64(iters)),
					fmt.Sprintf("%.2f", base.Seconds()/el.Seconds()),
				)
			}
		}
	}
	return &Report{
		ID:    "figure9",
		Table: t,
		Stats: agg,
		Notes: []string{
			"paper: improved graph above simple graph at every point; the gap is largest for the smallest world (400x400)",
			"where communication dominates; larger worlds reduce the impact of border exchange.",
			"check: improved time/iter <= simple time/iter per configuration; relative gap shrinks as the world grows.",
		},
	}, nil
}

// Table2 regenerates the graph-call overhead measurement: the life
// simulation iterates on 4 nodes while a client repeatedly requests
// randomly located blocks through the world-read service.
func Table2(opt Options) (*Report, error) {
	world := 5620
	workers := 4
	iters := 12
	blocks := [][2]int{{0, 0}, {40, 40}, {400, 400}, {2400, 400}} // {h, w}; {0,0} = no calls
	calls := 40
	if opt.Quick {
		world = 1404
		iters = 6
		calls = 12
		blocks = [][2]int{{0, 0}, {40, 40}, {400, 400}}
	}

	t := &trace.Table{
		Title:  fmt.Sprintf("Table 2: life %dx%d on %d nodes, world-read service calls during the simulation", world, world, workers),
		Header: []string{"block", "call[ms](median)", "iter[ms]", "calls/s"},
	}
	agg := &core.Stats{}
	for _, blk := range blocks {
		net := simnet.New(gigabit())
		names := nodeNames("t2", workers)
		app, err := core.NewSimApp(core.Config{Workers: opt.Workers}, net, names...)
		if err != nil {
			net.Close()
			return nil, err
		}
		sim, err := parlife.New(app, world, world, parlife.Options{Name: "life", Workers: workers})
		if err == nil {
			err = sim.Load(life.RandomWorld(world, world, 0.3, 11))
		}
		if err == nil {
			err = sim.Step(true) // warm-up
		}
		if err != nil {
			app.Close()
			net.Close()
			return nil, err
		}

		var samples trace.Samples
		stop := make(chan struct{})
		callsDone := make(chan int)
		if blk[0] > 0 {
			go func() {
				n := 0
				rngRow, rngCol := 1, 7
				for {
					select {
					case <-stop:
						callsDone <- n
						return
					default:
					}
					rngRow = (rngRow*1103515245 + 12345) & 0x7fffffff
					rngCol = (rngCol*1103515245 + 12345) & 0x7fffffff
					sw := trace.StartStopwatch()
					if _, err := sim.ReadBlock(rngRow%world, rngCol%world, blk[0], blk[1]); err != nil {
						callsDone <- n
						return
					}
					samples.Add(sw.Elapsed())
					n++
					if n >= calls*iters {
						<-stop
						callsDone <- n
						return
					}
				}
			}()
		}
		sw := trace.StartStopwatch()
		err = sim.StepN(iters, true)
		iterElapsed := sw.Elapsed()
		nCalls := 0
		if blk[0] > 0 {
			close(stop)
			nCalls = <-callsDone
		}
		agg.Add(app.Stats())
		app.Close()
		net.Close()
		if err != nil {
			return nil, err
		}

		iterMs := iterElapsed.Seconds() * 1000 / float64(iters)
		if blk[0] == 0 {
			t.AddRow("none", "-", fmt.Sprintf("%.0f", iterMs), "-")
			continue
		}
		t.AddRow(
			fmt.Sprintf("%dx%d", blk[1], blk[0]),
			fmt.Sprintf("%.2f", samples.Median().Seconds()*1000),
			fmt.Sprintf("%.0f", iterMs),
			fmt.Sprintf("%.1f", float64(nCalls)/iterElapsed.Seconds()),
		)
	}
	return &Report{
		ID:    "table2",
		Table: t,
		Stats: agg,
		Notes: []string{
			"paper (5620x5620, 4 nodes): iteration 1000 ms without calls; with calls 40x40/400x400/400x2400:",
			"call 1.66/22.14/130.43 ms, iteration 1041/1284/1381 ms, 66.8/31.8/6.9 calls/s.",
			"check: call time grows with block size; iteration time inflates moderately; calls/s falls.",
		},
	}, nil
}

// luRun measures one LU configuration (best of two runs).
func luRun(n, r, workers int, pipelined bool, opt Options, agg *core.Stats) (time.Duration, error) {
	best := time.Duration(0)
	for rep := 0; rep < 2; rep++ {
		el, err := luRunOnce(n, r, workers, pipelined, opt, agg)
		if err != nil {
			return 0, err
		}
		if best == 0 || el < best {
			best = el
		}
	}
	return best, nil
}

func luRunOnce(n, r, workers int, pipelined bool, opt Options, agg *core.Stats) (time.Duration, error) {
	// Fabric scaled 10x: the paper's CPUs computed the unoptimized LU
	// kernels roughly 10x slower relative to their Gigabit fabric than this
	// build does, and the comm/comp ratio (4*flops/(r*BW)) is what shapes
	// the speedup curves.
	net := simnet.New(scaledGigabit(10))
	defer net.Close()
	names := nodeNames("lu", workers)
	app, err := core.NewSimApp(core.Config{Window: 256, Workers: opt.Workers}, net, names...)
	if err != nil {
		return 0, err
	}
	defer app.Close()
	defer func() { agg.Add(app.Stats()) }()
	lu, err := parlin.NewLU(app, n, r, parlin.LUOptions{Name: "lu", Workers: workers, Pipelined: pipelined})
	if err != nil {
		return 0, err
	}
	a := matrix.Random(n, n, 3)
	sw := trace.StartStopwatch()
	if err := lu.FactorOnly(a); err != nil {
		return 0, err
	}
	return sw.Elapsed(), nil
}

// Figure15 regenerates the LU factorization speedup comparison between the
// pipelined (stream) and non-pipelined (merge-split) graphs.
func Figure15(opt Options) (*Report, error) {
	n, r := 2048, 64
	nodesList := []int{1, 2, 4, 8}
	if opt.Quick {
		n, r = 512, 32
		nodesList = []int{1, 2, 4}
	}
	t := &trace.Table{
		Title:  fmt.Sprintf("Figure 15: LU factorization speedup, n=%d r=%d (vs 1 node, same variant)", n, r),
		Header: []string{"variant", "nodes", "time[ms]", "speedup"},
	}
	agg := &core.Stats{}
	for _, pipelined := range []bool{true, false} {
		var base time.Duration
		for _, workers := range nodesList {
			el, err := luRun(n, r, workers, pipelined, opt, agg)
			if err != nil {
				return nil, fmt.Errorf("figure15 workers=%d pipelined=%v: %w", workers, pipelined, err)
			}
			if workers == nodesList[0] {
				base = el
			}
			variant := "non-pipelined"
			if pipelined {
				variant = "pipelined"
			}
			t.AddRow(
				variant,
				fmt.Sprint(workers),
				fmt.Sprintf("%.0f", el.Seconds()*1000),
				fmt.Sprintf("%.2f", base.Seconds()/el.Seconds()),
			)
		}
	}
	return &Report{
		ID:    "figure15",
		Table: t,
		Stats: agg,
		Notes: []string{
			"paper (4096x4096, no optimized BLAS): pipelined clearly above non-pipelined at every node count;",
			"pipelined reaches ~6-7x at 8 nodes, non-pipelined saturates earlier.",
			"check: pipelined time <= non-pipelined time per node count; gap widens with nodes.",
		},
	}, nil
}

// Chaos soaks two real workloads — the Figure 6 ring and the §5 Game of
// Life — under seeded randomized fault schedules (delivery jitter,
// transient send errors, healing partitions, node crashes) and reports
// what the resilience stack absorbed: engine send retries, injected
// errors consumed, failovers, and crash-to-recovered latency. The
// invariants are enforced inside the harness (internal/chaos): zero
// failed calls, exactly one failover per crash, none for transients, and
// a byte-identical life world versus an undisturbed replay. Not an
// experiment of the paper; it guards the fault-tolerance subsystem. Not
// part of All — run it explicitly (`dps-bench -exp chaos -seed N`).
func Chaos(opt Options) (*Report, error) {
	seed := opt.Seed
	if seed == 0 {
		seed = 1
	}
	span := opt.Duration
	if span == 0 {
		span = 3 * time.Second
		if opt.Quick {
			span = 1500 * time.Millisecond
		}
	}
	t := &trace.Table{
		Title:  fmt.Sprintf("Chaos: seeded fault schedules over live workloads, seed %d, %v per run (not in paper)", seed, span),
		Header: []string{"workload", "faults", "crashes", "calls", "retries", "injected", "failovers", "rec p50", "rec max"},
	}
	agg := &core.Stats{}
	hists := make(map[string]*trace.Hist)
	runs := []struct {
		crashes int
		run     func(chaos.Spec) (*chaos.Result, error)
	}{
		{0, chaos.RunRing},
		{2, chaos.RunRing},
		{1, chaos.RunParlife},
	}
	for i, r := range runs {
		// Distinct seeds per row, each derived from the base seed.
		res, err := r.run(chaos.Spec{Seed: seed + int64(i), Span: span, Crashes: r.crashes})
		if err != nil {
			return nil, fmt.Errorf("chaos (reproduce with -seed %d): %w", seed, err)
		}
		agg.Add(res.Stats)
		if res.Recovery.Len() > 0 {
			key := "recovery/" + res.Workload
			if h := hists[key]; h != nil {
				h.Merge(&res.Recovery)
			} else {
				rec := res.Recovery
				hists[key] = &rec
			}
		}
		p50, max := "-", "-"
		if res.Recovery.Len() > 0 {
			p50 = res.Recovery.Median().Round(time.Millisecond).String()
			max = res.Recovery.Max().Round(time.Millisecond).String()
		}
		t.AddRow(
			res.Workload,
			fmt.Sprint(len(res.Schedule.Faults)),
			fmt.Sprint(res.Schedule.Crashes()),
			fmt.Sprint(res.Calls),
			fmt.Sprint(res.Retries),
			fmt.Sprint(res.Injected),
			fmt.Sprint(res.Failovers),
			p50, max,
		)
	}
	return &Report{
		ID:    "chaos",
		Table: t,
		Stats: agg,
		Hists: hists,
		Notes: []string{
			"check (enforced in-harness): every call completes, transient faults cause zero failovers, every crash exactly one.",
			"check (enforced in-harness): the life world after crash-recovery is byte-identical to an undisturbed replay.",
			"recovery is bounded below by the suspect grace (250ms): detection is passive, a failing send must exhaust its retries.",
			"schedules are deterministic from the seed; rerun with the same -seed to reproduce a failure.",
		},
	}, nil
}

// All runs every experiment in paper order.
func All(opt Options) ([]*Report, error) {
	var out []*Report
	for _, f := range []func(Options) (*Report, error){Figure6, Table1, Figure9, Table2, Figure15} {
		r, err := f(opt)
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
	return out, nil
}
