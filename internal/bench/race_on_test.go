//go:build race

package bench

// raceEnabled reports that the race detector is active; timing-based shape
// assertions are skipped because instrumentation skews the compute/comm
// balance the experiments measure.
const raceEnabled = true
