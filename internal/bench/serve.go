package bench

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/core/flowctl"
	"repro/internal/serial"
	"repro/internal/trace"
	"repro/internal/transport/tcptransport"
)

// ServeReq is one ingress request token; Fan asks the fan workload's split
// for that many parts.
type ServeReq struct {
	Seq int
	Fan int
}

// ServePart is one fanned-out unit of work of the fan workload.
type ServePart struct {
	Seq int
	I   int
}

// ServeRes is the single response token of a serve call.
type ServeRes struct {
	Seq int
	N   int
}

var (
	_ = serial.MustRegister[ServeReq]()
	_ = serial.MustRegister[ServePart]()
	_ = serial.MustRegister[ServeRes]()
)

// Serve saturation parameters. The call deadline is what bounds a caller's
// worst case — an admitted call either completes or is canceled at the
// deadline (counted, never hung) — and the in-flight budget is what sheds
// the rest with ErrOverload at admission.
const (
	serveNodes       = 3
	serveDeadline    = 2 * time.Second
	serveBudget      = 2048
	serveQueue       = 64
	serveFan         = 4
	serveBackoffMin  = 250 * time.Microsecond
	serveBackoffMax  = 8 * time.Millisecond
	serveEchoThreads = 8
)

// serveResult is one measured saturation configuration.
type serveResult struct {
	callsPerSec float64
	latency     trace.Hist
	ok          int64
	rejected    int64
	expired     int64
	stats       *core.Stats
}

// serveDeployment is a running graph over real loopback TCP nodes.
type serveDeployment struct {
	app     *core.App
	graph   *core.Flowgraph
	origins []string
	close   func()
}

// newServeDeployment builds one of the two serve workloads on a fresh
// 3-node TCP deployment:
//
//   - echo: a leaf collection striped over sv1/sv2, called from every node —
//     the minimal RPC through the engine, with the majority of calls
//     crossing loopback TCP out and back;
//   - fan: split on sv0 → leaves striped over sv1/sv2 → merge on sv0, the
//     gateway shape, exercising the flow-control gate and the split/merge
//     machinery of every call under saturation.
func newServeDeployment(appCfg core.Config, workload string) (*serveDeployment, error) {
	table := make(map[string]string)
	resolver := tcptransport.StaticResolver(table)
	app := core.NewApp(appCfg)
	names := nodeNames("sv", serveNodes)
	for _, name := range names {
		n, err := tcptransport.Listen(name, "127.0.0.1:0", resolver)
		if err != nil {
			app.Close()
			return nil, err
		}
		table[name] = n.Addr()
		if _, err := app.AttachTransport(n); err != nil {
			_ = n.Close()
			app.Close()
			return nil, err
		}
	}
	d := &serveDeployment{app: app, close: app.Close}
	var err error
	switch workload {
	case "echo":
		tc, cerr := core.NewCollection[struct{}](app, "sv-echo")
		if cerr != nil {
			app.Close()
			return nil, cerr
		}
		// Threads striped over sv1/sv2 while callers originate on all three
		// nodes, so most calls cross loopback TCP out and back and the rest
		// exercise the local delivery path under the same admission gate.
		stripe := make([]string, serveEchoThreads)
		for i := range stripe {
			stripe[i] = names[1+i%2]
		}
		if cerr := tc.MapNodes(stripe...); cerr != nil {
			app.Close()
			return nil, cerr
		}
		echo := core.Leaf[*ServeReq, *ServeRes]("sv-echo-op",
			func(c *core.Ctx, in *ServeReq) *ServeRes { return &ServeRes{Seq: in.Seq, N: 1} })
		d.graph, err = app.NewFlowgraph("sv-echo", core.Path(core.NewNode(echo, tc, core.RoundRobin())))
		d.origins = names
	case "fan":
		front, cerr := core.NewCollection[struct{}](app, "sv-front")
		if cerr != nil {
			app.Close()
			return nil, cerr
		}
		if cerr := front.MapNodes(names[0]); cerr != nil {
			app.Close()
			return nil, cerr
		}
		workers, cerr := core.NewCollection[struct{}](app, "sv-workers")
		if cerr != nil {
			app.Close()
			return nil, cerr
		}
		if cerr := workers.MapNodes(names[1], names[2], names[1], names[2]); cerr != nil {
			app.Close()
			return nil, cerr
		}
		split := core.Split[*ServeReq, *ServePart]("sv-split",
			func(c *core.Ctx, in *ServeReq, post func(*ServePart)) {
				for i := 0; i < in.Fan; i++ {
					post(&ServePart{Seq: in.Seq, I: i})
				}
			})
		work := core.Leaf[*ServePart, *ServePart]("sv-work",
			func(c *core.Ctx, in *ServePart) *ServePart { return in })
		merge := core.Merge[*ServePart, *ServeRes]("sv-merge",
			func(c *core.Ctx, first *ServePart, next func() (*ServePart, bool)) *ServeRes {
				n := 0
				seq := first.Seq
				for _, ok := first, true; ok; _, ok = next() {
					n++
				}
				return &ServeRes{Seq: seq, N: n}
			})
		d.graph, err = app.NewFlowgraph("sv-fan", core.Path(
			core.NewNode(split, front, core.MainRoute()),
			core.NewNode(work, workers, core.LoadBalanced()),
			core.NewNode(merge, front, core.MainRoute()),
		))
		d.origins = names
	default:
		app.Close()
		return nil, fmt.Errorf("serve: unknown workload %q", workload)
	}
	if err != nil {
		app.Close()
		return nil, err
	}
	return d, nil
}

// runServe drives callers closed-loop goroutines against one deployment for
// span. Every caller loops: call with a deadline context, record the
// latency; on ErrOverload back off briefly and retry; on an expired
// deadline count and move on. Any other error aborts the experiment — under
// saturation every call must end in exactly one of completed, rejected or
// expired (nothing hung, nothing silently dropped).
func runServe(appCfg core.Config, workload string, callers int, span time.Duration) (*serveResult, error) {
	d, err := newServeDeployment(appCfg, workload)
	if err != nil {
		return nil, err
	}
	defer d.close()

	// Warm the TCP lanes and the engine's lazy paths outside the window.
	for _, origin := range d.origins {
		if _, err := d.graph.CallFrom(context.Background(), origin, &ServeReq{Fan: serveFan}); err != nil {
			return nil, fmt.Errorf("serve warmup: %w", err)
		}
	}

	var (
		ok       atomic.Int64
		rejected atomic.Int64
		expired  atomic.Int64
		failed   atomic.Int64
		firstErr atomic.Value
	)
	hists := make([]trace.Hist, callers)
	stopAt := time.Now().Add(span)
	var wg sync.WaitGroup
	sw := trace.StartStopwatch()
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			origin := d.origins[i%len(d.origins)]
			h := &hists[i]
			backoff := serveBackoffMin
			for time.Now().Before(stopAt) {
				ctx, cancel := context.WithTimeout(context.Background(), serveDeadline)
				start := time.Now()
				_, err := d.graph.CallFrom(ctx, origin, &ServeReq{Seq: i, Fan: serveFan})
				cancel()
				switch {
				case err == nil:
					h.Add(time.Since(start))
					ok.Add(1)
					backoff = serveBackoffMin
				case errors.Is(err, core.ErrOverload):
					// Shed: back off exponentially (capped) and retry.
					rejected.Add(1)
					time.Sleep(backoff)
					if backoff *= 2; backoff > serveBackoffMax {
						backoff = serveBackoffMax
					}
				case errors.Is(err, context.DeadlineExceeded):
					expired.Add(1)
					backoff = serveBackoffMin
				default:
					failed.Add(1)
					firstErr.CompareAndSwap(nil, err)
					return
				}
			}
		}(i)
	}
	// A watchdog bounds the drain: closed-loop callers finish at most one
	// call deadline past the span; anything later is a hung call.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(span + serveDeadline + 30*time.Second):
		return nil, fmt.Errorf("serve %s: callers hung past span+deadline (calls lost)", workload)
	}
	elapsed := sw.Elapsed()
	if n := failed.Load(); n > 0 {
		err, _ := firstErr.Load().(error)
		return nil, fmt.Errorf("serve %s: %d calls failed outside the overload contract: %w", workload, n, err)
	}
	if pending := d.app.PendingCalls(); pending != 0 {
		return nil, fmt.Errorf("serve %s: %d calls still pending after drain", workload, pending)
	}
	res := &serveResult{
		callsPerSec: float64(ok.Load()) / elapsed.Seconds(),
		ok:          ok.Load(),
		rejected:    rejected.Load(),
		expired:     expired.Load(),
		stats:       d.app.Stats(),
	}
	for i := range hists {
		res.latency.Merge(&hists[i])
	}
	return res, nil
}

// Serve is the saturation experiment: thousands of concurrent closed-loop
// callers against a 3-node deployment over real loopback TCP, comparing the
// historical single-mutex pending-call table (CallShards: 1) with the
// sharded registry, under admission control (MaxInFlightCalls + ErrOverload)
// and the deadline-aware flow policy. Reported per row: sustained calls/s
// and the p50/p99/p999 latency of completed calls, plus how many calls were
// shed at admission and how many expired at their deadline.
func Serve(opt Options) (*Report, error) {
	callers := 10_000
	span := 4 * time.Second
	if opt.Quick {
		callers = 2500
		span = 1500 * time.Millisecond
	}
	if opt.Duration > 0 {
		span = opt.Duration
	}

	type mode struct {
		name   string
		shards int
	}
	modes := []mode{
		{"mutex", 1}, // single-shard registry: the pre-sharding baseline
		{"sharded", 0},
	}
	t := &trace.Table{
		Title: fmt.Sprintf("Serve: %d closed-loop callers, 3 nodes over real TCP loopback (budget %d, deadline %v)",
			callers, serveBudget, serveDeadline),
		Header: []string{"workload", "mode", "calls/s", "p50[ms]", "p99[ms]", "p999[ms]", "rejected", "expired"},
	}
	agg := &core.Stats{}
	hists := make(map[string]*trace.Hist)
	var notes []string
	for _, workload := range []string{"echo", "fan"} {
		results := make(map[string]*serveResult, len(modes))
		for _, m := range modes {
			cfg := core.Config{
				Workers:          opt.Workers,
				Batch:            true,
				CallShards:       m.shards,
				MaxInFlightCalls: serveBudget,
				Queue:            serveQueue,
				FlowPolicy:       flowctl.Deadline{N: flowctl.DefaultWindow},
			}
			res, err := runServe(cfg, workload, callers, span)
			if err != nil {
				return nil, fmt.Errorf("serve %s/%s: %w", workload, m.name, err)
			}
			results[m.name] = res
			agg.Add(res.stats)
			// Export the completed-call latency distribution under the table
			// row's key, so -compare gates on exact percentiles.
			hists[workload+"/"+m.name] = &res.latency
			ms := func(p float64) string {
				return fmt.Sprintf("%.2f", float64(res.latency.Percentile(p))/float64(time.Millisecond))
			}
			t.AddRow(
				workload, m.name,
				fmt.Sprintf("%.0f", res.callsPerSec),
				ms(50), ms(99), ms(99.9),
				fmt.Sprint(res.rejected),
				fmt.Sprint(res.expired),
			)
		}
		speedup := results["sharded"].callsPerSec / results["mutex"].callsPerSec
		notes = append(notes, fmt.Sprintf(
			"%s: sharded registry %.2fx calls/s over the single-mutex baseline (%0.f vs %0.f); p99 %v vs %v",
			workload, speedup,
			results["sharded"].callsPerSec, results["mutex"].callsPerSec,
			results["sharded"].latency.Percentile(99).Round(time.Millisecond),
			results["mutex"].latency.Percentile(99).Round(time.Millisecond)))
	}
	// Registry isolation rows: the same mutex-vs-sharded comparison with no
	// graph, wire or timer work per op, so the pending-call table itself is
	// the bottleneck. The end-to-end rows above include ~tens of µs of
	// engine and TCP cost per call, which hides the registry on hosts
	// without enough cores to contend the lock in parallel.
	regSpan := span
	if regSpan > 2*time.Second {
		regSpan = 2 * time.Second
	}
	reg := make(map[string]float64, len(modes))
	for _, m := range modes {
		ops := core.BenchCallRegistry(m.shards, callers, regSpan)
		reg[m.name] = ops
		t.AddRow("registry", m.name, fmt.Sprintf("%.0f", ops), "-", "-", "-", "-", "-")
	}
	notes = append(notes, fmt.Sprintf(
		"registry: sharded %.2fx ops/s over the single mutex (%.0f vs %.0f) on raw register/settle cycles",
		reg["sharded"]/reg["mutex"], reg["sharded"], reg["mutex"]))
	notes = append(notes,
		"(no wire in the loop); the mutex-vs-sharded gap in every row tracks the host's core count - a lock",
		"only contends when goroutines run in parallel, so single-core hosts measure both modes within noise.",
		fmt.Sprintf("every caller loops with a %v deadline: a call either completes, is shed at admission (ErrOverload,", serveDeadline),
		"counted as rejected) or expires at its deadline (counted) - the harness fails on any other outcome or any",
		"call pending after the drain, so nothing hangs and nothing is silently dropped.",
		"the deadline gate spends window slots on near-deadline calls first and admission sheds the excess instead",
		"of queueing it, so completed-call latency pins to the deadline instead of growing with the backlog",
		"(measured wall time can overshoot the deadline by caller scheduling delay on an oversubscribed host).",
	)
	return &Report{
		ID:    "serve",
		Table: t,
		Stats: agg,
		Hists: hists,
		Notes: notes,
	}, nil
}
