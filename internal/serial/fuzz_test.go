package serial

import (
	"bytes"
	"math"

	"testing"
)

// fuzzInner exercises nesting through every composite field shape.
type fuzzInner struct {
	Name string
	Vals []float64
	Raw  []byte
	N    int32
}

// fuzzToken covers every kind the codec supports, including recursion
// through a pointer, so the fuzzer can drive both the compiled fast paths
// and the reflection fallbacks over the same values.
type fuzzToken struct {
	I      int
	I8     int8
	I16    int16
	I32    int32
	I64    int64
	U      uint
	U8     uint8
	U16    uint16
	U32    uint32
	U64    uint64
	F32    float32
	F64    float64
	C64    complex64
	C128   complex128
	B      bool
	S      string
	Bytes  []byte
	Ints   []int
	I16s   []int16
	Us     []uint
	U32s   []uint32
	Floats []float64
	F32s   []float32
	Bools  []bool
	Strs   []string
	Inner  fuzzInner
	Nested []fuzzInner
	M      map[string]int
	MI     map[int32][]byte
	P      *fuzzInner
	Next   *fuzzToken // recursive: pointers break the cycle
	Arr    [3]int16
	ArrS   [2]fuzzInner
	hidden int //nolint:unused // must be skipped by the codec
	Skip   int `dps:"-"`
}

// entropy is a deterministic stream of fuzz-provided bytes.
type entropy struct {
	data []byte
	pos  int
}

func (e *entropy) byte() byte {
	if len(e.data) == 0 {
		return 0
	}
	b := e.data[e.pos%len(e.data)]
	e.pos++
	return b
}

func (e *entropy) u64() uint64 {
	var x uint64
	for i := 0; i < 8; i++ {
		x = x<<8 | uint64(e.byte())
	}
	return x
}

func (e *entropy) small(n int) int {
	if n <= 0 {
		return 0
	}
	return int(e.byte()) % n
}

func (e *entropy) str() string {
	b := make([]byte, e.small(12))
	for i := range b {
		b[i] = e.byte()
	}
	return string(b)
}

func (e *entropy) bytes() []byte {
	if e.byte()%4 == 0 {
		return nil
	}
	b := make([]byte, e.small(40))
	for i := range b {
		b[i] = e.byte()
	}
	return b
}

func (e *entropy) inner() fuzzInner {
	in := fuzzInner{Name: e.str(), Raw: e.bytes(), N: int32(e.u64())}
	if e.byte()%3 != 0 {
		in.Vals = make([]float64, e.small(8))
		for i := range in.Vals {
			in.Vals[i] = math.Float64frombits(e.u64())
		}
	}
	return in
}

func (e *entropy) token(depth int) *fuzzToken {
	tok := &fuzzToken{
		I:      int(e.u64()),
		I8:     int8(e.byte()),
		I16:    int16(e.u64()),
		I32:    int32(e.u64()),
		I64:    int64(e.u64()),
		U:      uint(e.u64()),
		U8:     e.byte(),
		U16:    uint16(e.u64()),
		U32:    uint32(e.u64()),
		U64:    e.u64(),
		F32:    math.Float32frombits(uint32(e.u64())),
		F64:    math.Float64frombits(e.u64()),
		C64:    complex(math.Float32frombits(uint32(e.u64())), math.Float32frombits(uint32(e.u64()))),
		C128:   complex(math.Float64frombits(e.u64()), math.Float64frombits(e.u64())),
		B:      e.byte()%2 == 0,
		S:      e.str(),
		Bytes:  e.bytes(),
		Inner:  e.inner(),
		hidden: int(e.byte()),
		Skip:   int(e.byte()),
	}
	if e.byte()%3 != 0 {
		tok.Ints = make([]int, e.small(6))
		for i := range tok.Ints {
			tok.Ints[i] = int(e.u64())
		}
	}
	if e.byte()%3 != 0 {
		tok.I16s = make([]int16, e.small(6))
		for i := range tok.I16s {
			tok.I16s[i] = int16(e.u64())
		}
	}
	if e.byte()%3 != 0 {
		tok.Us = make([]uint, e.small(6))
		for i := range tok.Us {
			tok.Us[i] = uint(e.u64())
		}
	}
	if e.byte()%3 != 0 {
		tok.U32s = make([]uint32, e.small(6))
		for i := range tok.U32s {
			tok.U32s[i] = uint32(e.u64())
		}
	}
	if e.byte()%3 != 0 {
		tok.Floats = make([]float64, e.small(6))
		for i := range tok.Floats {
			tok.Floats[i] = math.Float64frombits(e.u64())
		}
	}
	if e.byte()%3 != 0 {
		tok.F32s = make([]float32, e.small(6))
		for i := range tok.F32s {
			tok.F32s[i] = math.Float32frombits(uint32(e.u64()))
		}
	}
	if e.byte()%3 != 0 {
		tok.Bools = make([]bool, e.small(6))
		for i := range tok.Bools {
			tok.Bools[i] = e.byte()%2 == 0
		}
	}
	if e.byte()%3 != 0 {
		tok.Strs = make([]string, e.small(4))
		for i := range tok.Strs {
			tok.Strs[i] = e.str()
		}
	}
	if e.byte()%3 != 0 {
		tok.Nested = make([]fuzzInner, e.small(3))
		for i := range tok.Nested {
			tok.Nested[i] = e.inner()
		}
	}
	if e.byte()%3 != 0 {
		tok.M = make(map[string]int)
		for i := e.small(5); i > 0; i-- {
			tok.M[e.str()] = int(e.u64())
		}
	}
	if e.byte()%3 != 0 {
		tok.MI = make(map[int32][]byte)
		for i := e.small(4); i > 0; i-- {
			tok.MI[int32(e.u64())] = e.bytes()
		}
	}
	if e.byte()%2 == 0 {
		in := e.inner()
		tok.P = &in
	}
	for i := range tok.Arr {
		tok.Arr[i] = int16(e.u64())
	}
	for i := range tok.ArrS {
		tok.ArrS[i] = e.inner()
	}
	if depth > 0 && e.byte()%2 == 0 {
		tok.Next = e.token(depth - 1)
	}
	return tok
}

// normalize clears fields the codec intentionally skips so DeepEqual
// compares only the serialized surface.
func normalize(tok *fuzzToken) {
	for t := tok; t != nil; t = t.Next {
		t.hidden = 0
		t.Skip = 0
	}
}

// TestSignalingNaNWireCompat pins the float32 NaN-quieting behavior: the
// reference codec widens float32 through float64, which quiets signaling
// NaNs, and the compiled codec must emit and decode identical bytes.
func TestSignalingNaNWireCompat(t *testing.T) {
	type f32Token struct {
		F  float32
		C  complex64
		S  []float32
		F6 float64
	}
	r := NewRegistry()
	if err := Register[f32Token](r); err != nil {
		t.Fatal(err)
	}
	sf := math.Float32frombits(0x7fb80000)         // signaling NaN
	negSf := math.Float32frombits(0xffa00001)      // negative sNaN
	sd := math.Float64frombits(0x7ff0000000000001) // float64 sNaN: passes through raw
	tok := &f32Token{F: sf, C: complex(sf, negSf), S: []float32{1.5, sf, negSf}, F6: sd}
	compiled, err := r.Marshal(tok)
	if err != nil {
		t.Fatal(err)
	}
	reference, err := r.marshalReference(tok)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(compiled, reference) {
		t.Fatalf("wire bytes diverged:\ncompiled  %x\nreference %x", compiled, reference)
	}
	got, _, err := r.Unmarshal(compiled)
	if err != nil {
		t.Fatal(err)
	}
	ref, _, err := r.unmarshalReference(compiled)
	if err != nil {
		t.Fatal(err)
	}
	gb := math.Float32bits(got.(*f32Token).F)
	rb := math.Float32bits(ref.(*f32Token).F)
	if gb != rb {
		t.Fatalf("decoded F bits diverged: compiled %#x reference %#x", gb, rb)
	}
	if g, w := math.Float64bits(got.(*f32Token).F6), math.Float64bits(ref.(*f32Token).F6); g != w {
		t.Fatalf("decoded F6 bits diverged: compiled %#x reference %#x", g, w)
	}
}

// FuzzRoundTrip proves the compiled codec is wire-compatible with the seed
// reflection codec: for any generated token the two encoders must produce
// byte-identical output, and all four encode/decode pairings must round-trip
// to the same value.
func FuzzRoundTrip(f *testing.F) {
	r := NewRegistry()
	if err := Register[fuzzToken](r); err != nil {
		f.Fatal(err)
	}
	f.Add([]byte(nil), 0)
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 250, 251, 252, 253, 254, 255}, 2)
	f.Add(bytes.Repeat([]byte{0xff}, 64), 3)
	f.Add([]byte("the quick brown fox jumps over the lazy dog"), 1)
	f.Fuzz(func(t *testing.T, data []byte, depth int) {
		if depth < 0 {
			depth = -depth
		}
		tok := (&entropy{data: data}).token(depth % 4)
		normalize(tok)

		compiled, err := r.Marshal(tok)
		if err != nil {
			t.Fatalf("compiled marshal: %v", err)
		}
		reference, err := r.marshalReference(tok)
		if err != nil {
			t.Fatalf("reference marshal: %v", err)
		}
		if !bytes.Equal(compiled, reference) {
			t.Fatalf("wire format diverged:\ncompiled  %x\nreference %x", compiled, reference)
		}
		if sz, err := r.EncodedSize(tok); err != nil || sz != len(compiled) {
			t.Fatalf("EncodedSize = %d, %v; want %d", sz, err, len(compiled))
		}

		decode := func(name string, fn func([]byte) (any, int, error), data []byte) *fuzzToken {
			out, n, err := fn(data)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if n != len(data) {
				t.Fatalf("%s consumed %d of %d bytes", name, n, len(data))
			}
			return out.(*fuzzToken)
		}
		// Compare round-tripped values by re-encoding: NaN payloads make
		// DeepEqual useless, while the canonical encoding preserves exact
		// bit patterns and sorts maps deterministically.
		reencode := func(name string, v any) {
			again, err := r.Marshal(v)
			if err != nil {
				t.Fatalf("%s re-marshal: %v", name, err)
			}
			if !bytes.Equal(again, compiled) {
				t.Fatalf("%s diverged after round trip:\ngot  %x\nwant %x", name, again, compiled)
			}
		}
		reencode("compiled decode", decode("compiled decode", r.Unmarshal, compiled))
		reencode("reference decode of compiled bytes", decode("reference decode", r.unmarshalReference, compiled))
		reencode("compiled decode of reference bytes", decode("cross decode", r.Unmarshal, reference))
	})
}

// FuzzDecodeHostile feeds arbitrary bytes to the compiled decoder: it must
// never panic, and must accept exactly the inputs the reference decoder
// accepts.
func FuzzDecodeHostile(f *testing.F) {
	r := NewRegistry()
	if err := Register[fuzzToken](r); err != nil {
		f.Fatal(err)
	}
	seedTok := (&entropy{data: []byte{9, 8, 7, 6, 5, 4, 3, 2, 1}}).token(1)
	seed, err := r.Marshal(seedTok)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add(seed[:len(seed)/2])
	f.Add([]byte{0})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, _, errC := r.Unmarshal(data)
		ref, _, errR := r.unmarshalReference(data)
		if (errC == nil) != (errR == nil) {
			t.Fatalf("decoder acceptance diverged: compiled err=%v reference err=%v", errC, errR)
		}
		if errC != nil {
			return
		}
		gotBytes, err := r.Marshal(got)
		if err != nil {
			t.Fatalf("re-marshal compiled: %v", err)
		}
		refBytes, err := r.Marshal(ref)
		if err != nil {
			t.Fatalf("re-marshal reference: %v", err)
		}
		if !bytes.Equal(gotBytes, refBytes) {
			t.Fatalf("decoded values diverged:\ncompiled  %+v\nreference %+v", got, ref)
		}
	})
}
