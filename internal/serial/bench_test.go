package serial

import (
	"testing"
)

// benchToken mirrors the shape of real DPS tokens on the hot paths: a large
// primitive buffer (ringbench/matmul blocks) plus scalar routing metadata.
type benchToken struct {
	Seq  int
	Row  int
	Data []byte
	Vals []float64
}

// ctrlToken mirrors the control-plane tokens that dominate message counts
// (orders, halo descriptors, completion reports): scalar metadata plus a
// few short slices.
type ctrlToken struct {
	Graph   string
	Seq     int
	Rows    int
	Cols    int
	Iter    int
	Last    bool
	Offsets []int
	Scale   []float64
}

func newBenchRegistry(b *testing.B) *Registry {
	b.Helper()
	r := NewRegistry()
	if err := Register[benchToken](r); err != nil {
		b.Fatal(err)
	}
	if err := Register[ctrlToken](r); err != nil {
		b.Fatal(err)
	}
	if err := Register[complexToken](r); err != nil {
		b.Fatal(err)
	}
	return r
}

func ctrlValue() *ctrlToken {
	return &ctrlToken{
		Graph:   "life-iterate",
		Seq:     12345,
		Rows:    1000,
		Cols:    1000,
		Iter:    77,
		Last:    false,
		Offsets: []int{0, 250, 500, 750, 1000},
		Scale:   []float64{1.0, 0.5, 0.25},
	}
}

func benchValue() *benchToken {
	data := make([]byte, 64<<10)
	for i := range data {
		data[i] = byte(i)
	}
	vals := make([]float64, 512)
	for i := range vals {
		vals[i] = float64(i) * 1.5
	}
	return &benchToken{Seq: 42, Row: 7, Data: data, Vals: vals}
}

func benchStructured() *complexToken {
	return &complexToken{
		ID:       -7,
		Name:     "hello world",
		Children: []nested{{Name: "a", Vals: []float64{1, 2.5, -3}}, {Name: "b"}},
		ABuffer:  []int{1 << 40, -5, 0, 77, -9000},
		Tags:     map[string]int{"x": 1, "y": -2},
		Opt:      &nested{Name: "opt", Vals: []float64{3.14}},
		Ratio:    0.25,
		Flags:    [3]bool{true, false, true},
	}
}

// BenchmarkSerialRoundTrip measures the compiled codec on a control-plane
// token — Marshal plus Unmarshal, the per-message serialization cost paid
// for every order/report token the runtime moves.
func BenchmarkSerialRoundTrip(b *testing.B) {
	r := newBenchRegistry(b)
	v := ctrlValue()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := r.Marshal(v)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := r.Unmarshal(data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSerialRoundTripReflect is the same workload through the seed's
// reflection codec (retained as the test oracle) — the baseline the
// compiled codec is measured against.
func BenchmarkSerialRoundTripReflect(b *testing.B) {
	r := newBenchRegistry(b)
	v := ctrlValue()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := r.marshalReference(v)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := r.unmarshalReference(data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSerialRoundTripBlock measures the compiled codec on a 64 KB
// block token — the bulk-data cost of the ring/matmul/LU hot paths.
func BenchmarkSerialRoundTripBlock(b *testing.B) {
	r := newBenchRegistry(b)
	v := benchValue()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := r.Marshal(v)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := r.Unmarshal(data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSerialRoundTripBlockReflect is the reflection baseline for the
// block token.
func BenchmarkSerialRoundTripBlockReflect(b *testing.B) {
	r := newBenchRegistry(b)
	v := benchValue()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := r.marshalReference(v)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := r.unmarshalReference(data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSerialRoundTripStructured exercises nesting, maps, pointers and
// small slices instead of one big buffer.
func BenchmarkSerialRoundTripStructured(b *testing.B) {
	r := newBenchRegistry(b)
	v := benchStructured()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := r.Marshal(v)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := r.Unmarshal(data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSerialRoundTripStructuredReflect is the reflection baseline for
// the structured token.
func BenchmarkSerialRoundTripStructuredReflect(b *testing.B) {
	r := newBenchRegistry(b)
	v := benchStructured()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := r.marshalReference(v)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := r.unmarshalReference(data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSerialEncodedSize verifies the size pass is allocation-free.
func BenchmarkSerialEncodedSize(b *testing.B) {
	r := newBenchRegistry(b)
	v := benchValue()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.EncodedSize(v); err != nil {
			b.Fatal(err)
		}
	}
}
