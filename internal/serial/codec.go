package serial

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"
	"reflect"
	"sync"
	"unsafe"
)

// typeCodec is a compiled encoder/decoder/size program for one Go type.
// It is built once at registration time by walking the type's structure,
// so the per-call hot path never touches reflect for anything but maps
// (which need reflect to iterate) and allocations that must carry the
// precise Go type for the garbage collector.
type typeCodec struct {
	// enc appends the wire encoding of the value at p.
	enc func(buf []byte, p unsafe.Pointer) []byte
	// dec decodes into the zeroed value at p, returning the bytes consumed.
	dec func(data []byte, p unsafe.Pointer) (int, error)
	// size returns the exact number of bytes enc would append.
	size func(p unsafe.Pointer) int
	// fixed is the encoded size when it is the same for every value of the
	// type (fixed-width primitives, structs of such), else -1.
	fixed int
}

// sliceHeader mirrors the runtime representation of a slice value.
type sliceHeader struct {
	data unsafe.Pointer
	len  int
	cap  int
}

// quietF32 reproduces the reference codec's float32 handling bit-for-bit:
// reflect widens every float32 through float64 (Value.Float / SetFloat,
// Value.Complex), and the hardware conversion quiets signaling NaNs while
// preserving their payload. The compiled codec must emit and decode the
// same bytes, so it applies the equivalent transform explicitly.
func quietF32(b uint32) uint32 {
	if b&0x7f800000 == 0x7f800000 && b&0x007fffff != 0 {
		b |= 0x00400000
	}
	return b
}

func f32ToWire(f float32) uint32   { return quietF32(math.Float32bits(f)) }
func f32FromWire(b uint32) float32 { return math.Float32frombits(quietF32(b)) }

// codecCache shares compiled codecs across all registries: codecs carry no
// registry state, only type structure.
var codecCache = struct {
	sync.RWMutex
	m map[reflect.Type]*typeCodec
}{m: make(map[reflect.Type]*typeCodec)}

// codecFor returns the compiled codec for t, building (and caching) it on
// first use. t must already have passed checkEncodable.
func codecFor(t reflect.Type) *typeCodec {
	codecCache.RLock()
	c := codecCache.m[t]
	codecCache.RUnlock()
	if c != nil {
		return c
	}
	codecCache.Lock()
	defer codecCache.Unlock()
	return compile(t)
}

// compile builds the codec for t with codecCache.Lock held. Recursive types
// are handled by inserting the codec shell into the cache before filling its
// function fields; cycles necessarily pass through a pointer, whose closures
// call through the shell at run time.
func compile(t reflect.Type) *typeCodec {
	if c := codecCache.m[t]; c != nil {
		return c
	}
	c := &typeCodec{fixed: -1}
	codecCache.m[t] = c

	switch t.Kind() {
	case reflect.Bool:
		c.fixed = 1
		c.enc = func(buf []byte, p unsafe.Pointer) []byte {
			if *(*bool)(p) {
				return append(buf, 1)
			}
			return append(buf, 0)
		}
		c.dec = func(data []byte, p unsafe.Pointer) (int, error) {
			if len(data) < 1 {
				return 0, errTruncated("bool")
			}
			*(*bool)(p) = data[0] != 0
			return 1, nil
		}
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		load := intLoader(t.Kind())
		store, err := intStorer(t)
		if err != nil {
			panic(err) // unreachable: kinds enumerated above
		}
		c.enc = func(buf []byte, p unsafe.Pointer) []byte {
			return binary.AppendVarint(buf, load(p))
		}
		c.size = func(p unsafe.Pointer) int { return varintLen(load(p)) }
		c.dec = func(data []byte, p unsafe.Pointer) (int, error) {
			x, n := binary.Varint(data)
			if n <= 0 {
				return 0, errTruncated("varint")
			}
			return n, store(p, x)
		}
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		load := uintLoader(t.Kind())
		store, err := uintStorer(t)
		if err != nil {
			panic(err) // unreachable: kinds enumerated above
		}
		c.enc = func(buf []byte, p unsafe.Pointer) []byte {
			return binary.AppendUvarint(buf, load(p))
		}
		c.size = func(p unsafe.Pointer) int { return uvarintLen(load(p)) }
		c.dec = func(data []byte, p unsafe.Pointer) (int, error) {
			x, n := binary.Uvarint(data)
			if n <= 0 {
				return 0, errTruncated("uvarint")
			}
			return n, store(p, x)
		}
	case reflect.Float32:
		c.fixed = 4
		c.enc = func(buf []byte, p unsafe.Pointer) []byte {
			return binary.LittleEndian.AppendUint32(buf, f32ToWire(*(*float32)(p)))
		}
		c.dec = func(data []byte, p unsafe.Pointer) (int, error) {
			if len(data) < 4 {
				return 0, errTruncated("float32")
			}
			*(*float32)(p) = f32FromWire(binary.LittleEndian.Uint32(data))
			return 4, nil
		}
	case reflect.Float64:
		c.fixed = 8
		c.enc = func(buf []byte, p unsafe.Pointer) []byte {
			return binary.LittleEndian.AppendUint64(buf, math.Float64bits(*(*float64)(p)))
		}
		c.dec = func(data []byte, p unsafe.Pointer) (int, error) {
			if len(data) < 8 {
				return 0, errTruncated("float64")
			}
			*(*float64)(p) = math.Float64frombits(binary.LittleEndian.Uint64(data))
			return 8, nil
		}
	case reflect.Complex64:
		c.fixed = 8
		c.enc = func(buf []byte, p unsafe.Pointer) []byte {
			v := *(*complex64)(p)
			buf = binary.LittleEndian.AppendUint32(buf, f32ToWire(real(v)))
			return binary.LittleEndian.AppendUint32(buf, f32ToWire(imag(v)))
		}
		c.dec = func(data []byte, p unsafe.Pointer) (int, error) {
			if len(data) < 8 {
				return 0, errTruncated("complex64")
			}
			re := f32FromWire(binary.LittleEndian.Uint32(data))
			im := f32FromWire(binary.LittleEndian.Uint32(data[4:]))
			*(*complex64)(p) = complex(re, im)
			return 8, nil
		}
	case reflect.Complex128:
		c.fixed = 16
		c.enc = func(buf []byte, p unsafe.Pointer) []byte {
			v := *(*complex128)(p)
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(real(v)))
			return binary.LittleEndian.AppendUint64(buf, math.Float64bits(imag(v)))
		}
		c.dec = func(data []byte, p unsafe.Pointer) (int, error) {
			if len(data) < 16 {
				return 0, errTruncated("complex128")
			}
			re := math.Float64frombits(binary.LittleEndian.Uint64(data))
			im := math.Float64frombits(binary.LittleEndian.Uint64(data[8:]))
			*(*complex128)(p) = complex(re, im)
			return 16, nil
		}
	case reflect.String:
		c.enc = func(buf []byte, p unsafe.Pointer) []byte {
			s := *(*string)(p)
			buf = binary.AppendUvarint(buf, uint64(len(s)))
			return append(buf, s...)
		}
		c.size = func(p unsafe.Pointer) int {
			n := len(*(*string)(p))
			return uvarintLen(uint64(n)) + n
		}
		c.dec = func(data []byte, p unsafe.Pointer) (int, error) {
			l, n := binary.Uvarint(data)
			if n <= 0 || uint64(len(data)-n) < l {
				return 0, errTruncated("string")
			}
			*(*string)(p) = string(data[n : n+int(l)])
			return n + int(l), nil
		}
	case reflect.Slice:
		compileSlice(c, t)
	case reflect.Array:
		et := t.Elem()
		ec := compile(et)
		n, esz := t.Len(), et.Size()
		if ec.fixed >= 0 {
			c.fixed = n * ec.fixed
		}
		c.enc = func(buf []byte, p unsafe.Pointer) []byte {
			for i := 0; i < n; i++ {
				buf = ec.enc(buf, unsafe.Add(p, uintptr(i)*esz))
			}
			return buf
		}
		if c.fixed < 0 {
			c.size = func(p unsafe.Pointer) int {
				sz := 0
				for i := 0; i < n; i++ {
					sz += ec.size(unsafe.Add(p, uintptr(i)*esz))
				}
				return sz
			}
		}
		c.dec = func(data []byte, p unsafe.Pointer) (int, error) {
			used := 0
			for i := 0; i < n; i++ {
				m, err := ec.dec(data[used:], unsafe.Add(p, uintptr(i)*esz))
				if err != nil {
					return 0, err
				}
				used += m
			}
			return used, nil
		}
	case reflect.Map:
		// Maps keep the reference reflection codec: encoding needs sorted
		// reflective iteration anyway, and maps are off the token hot paths.
		c.enc = func(buf []byte, p unsafe.Pointer) []byte {
			buf, err := encodeValue(buf, reflect.NewAt(t, p).Elem())
			if err != nil {
				// Unreachable: registration validated every reachable type.
				panic(fmt.Sprintf("serial: internal: %v", err))
			}
			return buf
		}
		c.size = func(p unsafe.Pointer) int {
			return sizeValue(reflect.NewAt(t, p).Elem())
		}
		c.dec = func(data []byte, p unsafe.Pointer) (int, error) {
			return decodeValue(data, reflect.NewAt(t, p).Elem())
		}
	case reflect.Pointer:
		et := t.Elem()
		ec := compile(et)
		c.enc = func(buf []byte, p unsafe.Pointer) []byte {
			ptr := *(*unsafe.Pointer)(p)
			if ptr == nil {
				return append(buf, 0)
			}
			return ec.enc(append(buf, 1), ptr)
		}
		c.size = func(p unsafe.Pointer) int {
			ptr := *(*unsafe.Pointer)(p)
			if ptr == nil {
				return 1
			}
			return 1 + ec.size(ptr)
		}
		c.dec = func(data []byte, p unsafe.Pointer) (int, error) {
			if len(data) < 1 {
				return 0, errTruncated("pointer presence")
			}
			if data[0] == 0 {
				*(*unsafe.Pointer)(p) = nil
				return 1, nil
			}
			rn := reflect.New(et) // typed allocation, visible to the GC
			n, err := ec.dec(data[1:], rn.UnsafePointer())
			if err != nil {
				return 0, err
			}
			*(*unsafe.Pointer)(p) = rn.UnsafePointer()
			return 1 + n, nil
		}
	case reflect.Struct:
		compileStruct(c, t)
	default:
		// Unreachable: checkEncodable rejects every other kind at
		// registration time.
		panic(fmt.Sprintf("serial: internal: cannot compile kind %s", t.Kind()))
	}

	if c.fixed >= 0 {
		k := c.fixed
		c.size = func(unsafe.Pointer) int { return k }
	}
	return c
}

// structField is one encodable field of a compiled struct codec.
type structField struct {
	off  uintptr
	name string
	c    *typeCodec
}

func compileStruct(c *typeCodec, t reflect.Type) {
	var fields []structField
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if !f.IsExported() || f.Tag.Get("dps") == "-" {
			continue
		}
		fields = append(fields, structField{off: f.Offset, name: f.Name, c: compile(f.Type)})
	}
	fixed := 0
	for _, f := range fields {
		if f.c.fixed < 0 {
			fixed = -1
			break
		}
		fixed += f.c.fixed
	}
	c.fixed = fixed
	c.enc = func(buf []byte, p unsafe.Pointer) []byte {
		for _, f := range fields {
			buf = f.c.enc(buf, unsafe.Add(p, f.off))
		}
		return buf
	}
	if fixed < 0 {
		c.size = func(p unsafe.Pointer) int {
			sz := 0
			for _, f := range fields {
				sz += f.c.size(unsafe.Add(p, f.off))
			}
			return sz
		}
	}
	c.dec = func(data []byte, p unsafe.Pointer) (int, error) {
		used := 0
		for _, f := range fields {
			n, err := f.c.dec(data[used:], unsafe.Add(p, f.off))
			if err != nil {
				return 0, fmt.Errorf("field %s: %w", f.name, err)
			}
			used += n
		}
		return used, nil
	}
}

// compileSlice builds slice codecs. Primitive element kinds get bulk fast
// paths — one presence byte and length prefix, then a tight loop (or copy)
// over the raw backing array — instead of a per-element codec call. The
// decode side allocates backing arrays with the plain built-in type of the
// element's kind, which is layout- and GC-equivalent for pointer-free
// elements even when the field's element type is a named type.
func compileSlice(c *typeCodec, t reflect.Type) {
	et := t.Elem()
	switch et.Kind() {
	case reflect.Uint8:
		c.enc = func(buf []byte, p unsafe.Pointer) []byte {
			h := (*sliceHeader)(p)
			if h.data == nil {
				return append(buf, 0)
			}
			buf = append(buf, 1)
			buf = binary.AppendUvarint(buf, uint64(h.len))
			return append(buf, unsafe.Slice((*byte)(h.data), h.len)...)
		}
		c.size = func(p unsafe.Pointer) int {
			h := (*sliceHeader)(p)
			if h.data == nil {
				return 1
			}
			return 1 + uvarintLen(uint64(h.len)) + h.len
		}
		c.dec = func(data []byte, p unsafe.Pointer) (int, error) {
			l, used, err := sliceHead(data)
			if err != nil || l < 0 {
				return used, err
			}
			if len(data)-used < l {
				return 0, errTruncated("byte slice")
			}
			s := make([]byte, l)
			copy(s, data[used:])
			storeSlice(p, s, l)
			return used + l, nil
		}
	case reflect.Bool:
		c.enc = func(buf []byte, p unsafe.Pointer) []byte {
			h := (*sliceHeader)(p)
			if h.data == nil {
				return append(buf, 0)
			}
			buf = append(buf, 1)
			buf = binary.AppendUvarint(buf, uint64(h.len))
			for _, v := range unsafe.Slice((*bool)(h.data), h.len) {
				if v {
					buf = append(buf, 1)
				} else {
					buf = append(buf, 0)
				}
			}
			return buf
		}
		c.size = func(p unsafe.Pointer) int {
			h := (*sliceHeader)(p)
			if h.data == nil {
				return 1
			}
			return 1 + uvarintLen(uint64(h.len)) + h.len
		}
		c.dec = func(data []byte, p unsafe.Pointer) (int, error) {
			l, used, err := sliceHead(data)
			if err != nil || l < 0 {
				return used, err
			}
			if len(data)-used < l {
				return 0, errTruncated("bool slice")
			}
			s := make([]bool, l)
			for i := range s {
				s[i] = data[used+i] != 0
			}
			storeSlice(p, s, l)
			return used + l, nil
		}
	case reflect.Float64:
		c.enc = func(buf []byte, p unsafe.Pointer) []byte {
			h := (*sliceHeader)(p)
			if h.data == nil {
				return append(buf, 0)
			}
			buf = append(buf, 1)
			buf = binary.AppendUvarint(buf, uint64(h.len))
			for _, v := range unsafe.Slice((*float64)(h.data), h.len) {
				buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
			}
			return buf
		}
		c.size = func(p unsafe.Pointer) int {
			h := (*sliceHeader)(p)
			if h.data == nil {
				return 1
			}
			return 1 + uvarintLen(uint64(h.len)) + 8*h.len
		}
		c.dec = func(data []byte, p unsafe.Pointer) (int, error) {
			l, used, err := sliceHead(data)
			if err != nil || l < 0 {
				return used, err
			}
			if len(data)-used < 8*l {
				return 0, errTruncated("float64 slice")
			}
			s := make([]float64, l)
			for i := range s {
				s[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[used+8*i:]))
			}
			storeSlice(p, s, l)
			return used + 8*l, nil
		}
	case reflect.Float32:
		c.enc = func(buf []byte, p unsafe.Pointer) []byte {
			h := (*sliceHeader)(p)
			if h.data == nil {
				return append(buf, 0)
			}
			buf = append(buf, 1)
			buf = binary.AppendUvarint(buf, uint64(h.len))
			for _, v := range unsafe.Slice((*float32)(h.data), h.len) {
				buf = binary.LittleEndian.AppendUint32(buf, f32ToWire(v))
			}
			return buf
		}
		c.size = func(p unsafe.Pointer) int {
			h := (*sliceHeader)(p)
			if h.data == nil {
				return 1
			}
			return 1 + uvarintLen(uint64(h.len)) + 4*h.len
		}
		c.dec = func(data []byte, p unsafe.Pointer) (int, error) {
			l, used, err := sliceHead(data)
			if err != nil || l < 0 {
				return used, err
			}
			if len(data)-used < 4*l {
				return 0, errTruncated("float32 slice")
			}
			s := make([]float32, l)
			for i := range s {
				s[i] = f32FromWire(binary.LittleEndian.Uint32(data[used+4*i:]))
			}
			storeSlice(p, s, l)
			return used + 4*l, nil
		}
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		compileIntSlice(c, et)
	case reflect.Uint, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		compileUintSlice(c, et)
	default:
		// Strings, structs, nested slices, maps, pointers, complexes: loop
		// the element codec over the backing array (no reflection).
		ec := compile(et)
		esz := et.Size()
		c.enc = func(buf []byte, p unsafe.Pointer) []byte {
			h := (*sliceHeader)(p)
			if h.data == nil {
				return append(buf, 0)
			}
			buf = append(buf, 1)
			buf = binary.AppendUvarint(buf, uint64(h.len))
			for i := 0; i < h.len; i++ {
				buf = ec.enc(buf, unsafe.Add(h.data, uintptr(i)*esz))
			}
			return buf
		}
		c.size = func(p unsafe.Pointer) int {
			h := (*sliceHeader)(p)
			if h.data == nil {
				return 1
			}
			sz := 1 + uvarintLen(uint64(h.len))
			if ec.fixed >= 0 {
				return sz + h.len*ec.fixed
			}
			for i := 0; i < h.len; i++ {
				sz += ec.size(unsafe.Add(h.data, uintptr(i)*esz))
			}
			return sz
		}
		c.dec = func(data []byte, p unsafe.Pointer) (int, error) {
			l, used, err := sliceHead(data)
			if err != nil || l < 0 {
				return used, err
			}
			ms := reflect.MakeSlice(t, l, l)
			base := ms.UnsafePointer()
			for i := 0; i < l; i++ {
				n, err := ec.dec(data[used:], unsafe.Add(base, uintptr(i)*esz))
				if err != nil {
					return 0, err
				}
				used += n
			}
			reflect.NewAt(t, p).Elem().Set(ms)
			return used, nil
		}
	}
}

// compileIntSlice builds the bulk varint path shared by every signed
// integer element width.
func compileIntSlice(c *typeCodec, et reflect.Type) {
	load := intLoader(et.Kind())
	store, err := intStorer(et)
	if err != nil {
		panic(err) // unreachable: callers pass int kinds only
	}
	esz := et.Size()
	c.enc = func(buf []byte, p unsafe.Pointer) []byte {
		h := (*sliceHeader)(p)
		if h.data == nil {
			return append(buf, 0)
		}
		buf = append(buf, 1)
		buf = binary.AppendUvarint(buf, uint64(h.len))
		for i := 0; i < h.len; i++ {
			buf = binary.AppendVarint(buf, load(unsafe.Add(h.data, uintptr(i)*esz)))
		}
		return buf
	}
	c.size = func(p unsafe.Pointer) int {
		h := (*sliceHeader)(p)
		if h.data == nil {
			return 1
		}
		sz := 1 + uvarintLen(uint64(h.len))
		for i := 0; i < h.len; i++ {
			sz += varintLen(load(unsafe.Add(h.data, uintptr(i)*esz)))
		}
		return sz
	}
	mk := makerForKind(et.Kind())
	c.dec = func(data []byte, p unsafe.Pointer) (int, error) {
		l, used, err := sliceHead(data)
		if err != nil || l < 0 {
			return used, err
		}
		base := mk(p, l)
		for i := 0; i < l; i++ {
			x, n := binary.Varint(data[used:])
			if n <= 0 {
				return 0, errTruncated("varint")
			}
			if err := store(unsafe.Add(base, uintptr(i)*esz), x); err != nil {
				return 0, err
			}
			used += n
		}
		return used, nil
	}
}

// compileUintSlice is the unsigned counterpart of compileIntSlice.
func compileUintSlice(c *typeCodec, et reflect.Type) {
	load := uintLoader(et.Kind())
	store, err := uintStorer(et)
	if err != nil {
		panic(err) // unreachable: callers pass uint kinds only
	}
	esz := et.Size()
	c.enc = func(buf []byte, p unsafe.Pointer) []byte {
		h := (*sliceHeader)(p)
		if h.data == nil {
			return append(buf, 0)
		}
		buf = append(buf, 1)
		buf = binary.AppendUvarint(buf, uint64(h.len))
		for i := 0; i < h.len; i++ {
			buf = binary.AppendUvarint(buf, load(unsafe.Add(h.data, uintptr(i)*esz)))
		}
		return buf
	}
	c.size = func(p unsafe.Pointer) int {
		h := (*sliceHeader)(p)
		if h.data == nil {
			return 1
		}
		sz := 1 + uvarintLen(uint64(h.len))
		for i := 0; i < h.len; i++ {
			sz += uvarintLen(load(unsafe.Add(h.data, uintptr(i)*esz)))
		}
		return sz
	}
	mk := makerForKind(et.Kind())
	c.dec = func(data []byte, p unsafe.Pointer) (int, error) {
		l, used, err := sliceHead(data)
		if err != nil || l < 0 {
			return used, err
		}
		base := mk(p, l)
		for i := 0; i < l; i++ {
			x, n := binary.Uvarint(data[used:])
			if n <= 0 {
				return 0, errTruncated("uvarint")
			}
			if err := store(unsafe.Add(base, uintptr(i)*esz), x); err != nil {
				return 0, err
			}
			used += n
		}
		return used, nil
	}
}

// sliceHead reads the presence byte and length prefix. A nil slice reports
// l == -1 with the presence byte consumed; the caller leaves the zeroed
// destination untouched (matching the reference decoder's SetZero).
func sliceHead(data []byte) (l, used int, err error) {
	if len(data) < 1 {
		return 0, 0, errTruncated("slice presence")
	}
	if data[0] == 0 {
		return -1, 1, nil
	}
	n64, n := binary.Uvarint(data[1:])
	if n <= 0 {
		return 0, 0, errTruncated("slice length")
	}
	if n64 > uint64(len(data)) {
		return 0, 0, fmt.Errorf("serial: slice length %d exceeds buffer", n64)
	}
	return int(n64), 1 + n, nil
}

// storeSlice publishes a freshly built backing array into the slice field
// at p. The field's static type keeps the array reachable.
func storeSlice[T any](p unsafe.Pointer, s []T, l int) {
	*(*sliceHeader)(p) = sliceHeader{data: unsafe.Pointer(unsafe.SliceData(s)), len: l, cap: l}
}

// makerForKind returns an allocator that installs a fresh backing array of
// the kind's built-in type into the slice field at p and returns its base
// pointer. Safe for named element types: layout and pointer-freeness depend
// only on the kind.
func makerForKind(k reflect.Kind) func(p unsafe.Pointer, l int) unsafe.Pointer {
	switch k {
	case reflect.Int:
		return func(p unsafe.Pointer, l int) unsafe.Pointer {
			s := make([]int, l)
			storeSlice(p, s, l)
			return unsafe.Pointer(unsafe.SliceData(s))
		}
	case reflect.Int8:
		return func(p unsafe.Pointer, l int) unsafe.Pointer {
			s := make([]int8, l)
			storeSlice(p, s, l)
			return unsafe.Pointer(unsafe.SliceData(s))
		}
	case reflect.Int16:
		return func(p unsafe.Pointer, l int) unsafe.Pointer {
			s := make([]int16, l)
			storeSlice(p, s, l)
			return unsafe.Pointer(unsafe.SliceData(s))
		}
	case reflect.Int32:
		return func(p unsafe.Pointer, l int) unsafe.Pointer {
			s := make([]int32, l)
			storeSlice(p, s, l)
			return unsafe.Pointer(unsafe.SliceData(s))
		}
	case reflect.Int64:
		return func(p unsafe.Pointer, l int) unsafe.Pointer {
			s := make([]int64, l)
			storeSlice(p, s, l)
			return unsafe.Pointer(unsafe.SliceData(s))
		}
	case reflect.Uint:
		return func(p unsafe.Pointer, l int) unsafe.Pointer {
			s := make([]uint, l)
			storeSlice(p, s, l)
			return unsafe.Pointer(unsafe.SliceData(s))
		}
	case reflect.Uint16:
		return func(p unsafe.Pointer, l int) unsafe.Pointer {
			s := make([]uint16, l)
			storeSlice(p, s, l)
			return unsafe.Pointer(unsafe.SliceData(s))
		}
	case reflect.Uint32:
		return func(p unsafe.Pointer, l int) unsafe.Pointer {
			s := make([]uint32, l)
			storeSlice(p, s, l)
			return unsafe.Pointer(unsafe.SliceData(s))
		}
	case reflect.Uint64:
		return func(p unsafe.Pointer, l int) unsafe.Pointer {
			s := make([]uint64, l)
			storeSlice(p, s, l)
			return unsafe.Pointer(unsafe.SliceData(s))
		}
	default:
		panic(fmt.Sprintf("serial: internal: no slice maker for kind %s", k))
	}
}

// intLoader returns a loader widening the signed integer at p to int64.
func intLoader(k reflect.Kind) func(unsafe.Pointer) int64 {
	switch k {
	case reflect.Int:
		return func(p unsafe.Pointer) int64 { return int64(*(*int)(p)) }
	case reflect.Int8:
		return func(p unsafe.Pointer) int64 { return int64(*(*int8)(p)) }
	case reflect.Int16:
		return func(p unsafe.Pointer) int64 { return int64(*(*int16)(p)) }
	case reflect.Int32:
		return func(p unsafe.Pointer) int64 { return int64(*(*int32)(p)) }
	default:
		return func(p unsafe.Pointer) int64 { return *(*int64)(p) }
	}
}

// intStorer returns a storer narrowing an int64 into the field at p, with
// the reference decoder's overflow check and error message.
func intStorer(t reflect.Type) (func(unsafe.Pointer, int64) error, error) {
	switch t.Kind() {
	case reflect.Int:
		return func(p unsafe.Pointer, x int64) error {
			if int64(int(x)) != x {
				return fmt.Errorf("serial: value %d overflows %s", x, t)
			}
			*(*int)(p) = int(x)
			return nil
		}, nil
	case reflect.Int8:
		return func(p unsafe.Pointer, x int64) error {
			if int64(int8(x)) != x {
				return fmt.Errorf("serial: value %d overflows %s", x, t)
			}
			*(*int8)(p) = int8(x)
			return nil
		}, nil
	case reflect.Int16:
		return func(p unsafe.Pointer, x int64) error {
			if int64(int16(x)) != x {
				return fmt.Errorf("serial: value %d overflows %s", x, t)
			}
			*(*int16)(p) = int16(x)
			return nil
		}, nil
	case reflect.Int32:
		return func(p unsafe.Pointer, x int64) error {
			if int64(int32(x)) != x {
				return fmt.Errorf("serial: value %d overflows %s", x, t)
			}
			*(*int32)(p) = int32(x)
			return nil
		}, nil
	case reflect.Int64:
		return func(p unsafe.Pointer, x int64) error {
			*(*int64)(p) = x
			return nil
		}, nil
	default:
		return nil, fmt.Errorf("serial: internal: no int storer for %s", t)
	}
}

// uintLoader returns a loader widening the unsigned integer at p to uint64.
func uintLoader(k reflect.Kind) func(unsafe.Pointer) uint64 {
	switch k {
	case reflect.Uint:
		return func(p unsafe.Pointer) uint64 { return uint64(*(*uint)(p)) }
	case reflect.Uint8:
		return func(p unsafe.Pointer) uint64 { return uint64(*(*uint8)(p)) }
	case reflect.Uint16:
		return func(p unsafe.Pointer) uint64 { return uint64(*(*uint16)(p)) }
	case reflect.Uint32:
		return func(p unsafe.Pointer) uint64 { return uint64(*(*uint32)(p)) }
	default:
		return func(p unsafe.Pointer) uint64 { return *(*uint64)(p) }
	}
}

// uintStorer is the unsigned counterpart of intStorer.
func uintStorer(t reflect.Type) (func(unsafe.Pointer, uint64) error, error) {
	switch t.Kind() {
	case reflect.Uint:
		return func(p unsafe.Pointer, x uint64) error {
			if uint64(uint(x)) != x {
				return fmt.Errorf("serial: value %d overflows %s", x, t)
			}
			*(*uint)(p) = uint(x)
			return nil
		}, nil
	case reflect.Uint8:
		return func(p unsafe.Pointer, x uint64) error {
			if uint64(uint8(x)) != x {
				return fmt.Errorf("serial: value %d overflows %s", x, t)
			}
			*(*uint8)(p) = uint8(x)
			return nil
		}, nil
	case reflect.Uint16:
		return func(p unsafe.Pointer, x uint64) error {
			if uint64(uint16(x)) != x {
				return fmt.Errorf("serial: value %d overflows %s", x, t)
			}
			*(*uint16)(p) = uint16(x)
			return nil
		}, nil
	case reflect.Uint32:
		return func(p unsafe.Pointer, x uint64) error {
			if uint64(uint32(x)) != x {
				return fmt.Errorf("serial: value %d overflows %s", x, t)
			}
			*(*uint32)(p) = uint32(x)
			return nil
		}, nil
	case reflect.Uint64:
		return func(p unsafe.Pointer, x uint64) error {
			*(*uint64)(p) = x
			return nil
		}, nil
	default:
		return nil, fmt.Errorf("serial: internal: no uint storer for %s", t)
	}
}

// uvarintLen is the exact length of binary.AppendUvarint's output.
func uvarintLen(x uint64) int {
	return (bits.Len64(x|1) + 6) / 7
}

// varintLen is the exact length of binary.AppendVarint's output.
func varintLen(x int64) int {
	return uvarintLen(uint64(x)<<1 ^ uint64(x>>63))
}

// sizeValue is the reflection-driven size pass mirroring encodeValue,
// used by the map fallback (and as the reference in tests). It must agree
// byte-for-byte with the encoder.
func sizeValue(v reflect.Value) int {
	switch v.Kind() {
	case reflect.Bool:
		return 1
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		return varintLen(v.Int())
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		return uvarintLen(v.Uint())
	case reflect.Float32:
		return 4
	case reflect.Float64:
		return 8
	case reflect.Complex64:
		return 8
	case reflect.Complex128:
		return 16
	case reflect.String:
		return uvarintLen(uint64(v.Len())) + v.Len()
	case reflect.Slice:
		if v.IsNil() {
			return 1
		}
		n := v.Len()
		sz := 1 + uvarintLen(uint64(n))
		// Mirror the encoder's byte-slice fast path: raw bytes, not varints.
		if v.Type().Elem().Kind() == reflect.Uint8 {
			return sz + n
		}
		for i := 0; i < n; i++ {
			sz += sizeValue(v.Index(i))
		}
		return sz
	case reflect.Array:
		sz := 0
		for i := 0; i < v.Len(); i++ {
			sz += sizeValue(v.Index(i))
		}
		return sz
	case reflect.Map:
		if v.IsNil() {
			return 1
		}
		sz := 1 + uvarintLen(uint64(v.Len()))
		it := v.MapRange()
		for it.Next() {
			sz += sizeValue(it.Key()) + sizeValue(it.Value())
		}
		return sz
	case reflect.Pointer:
		if v.IsNil() {
			return 1
		}
		return 1 + sizeValue(v.Elem())
	case reflect.Struct:
		t := v.Type()
		sz := 0
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if !f.IsExported() || f.Tag.Get("dps") == "-" {
				continue
			}
			sz += sizeValue(v.Field(i))
		}
		return sz
	default:
		panic(fmt.Sprintf("serial: internal: cannot size kind %s", v.Kind()))
	}
}
