package serial

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

type simpleToken struct {
	Chr byte
	Pos int
}

type nested struct {
	Name string
	Vals []float64
}

type complexToken struct {
	ID       int
	Name     string
	Children []nested
	ABuffer  []int
	Tags     map[string]int
	Opt      *nested
	Ratio    float64
	Flags    [3]bool
	hidden   int // unexported: must be skipped
	Skipped  int `dps:"-"`
}

func newTestRegistry(t *testing.T) *Registry {
	t.Helper()
	r := NewRegistry()
	if err := Register[simpleToken](r); err != nil {
		t.Fatal(err)
	}
	if err := Register[complexToken](r); err != nil {
		t.Fatal(err)
	}
	return r
}

func roundTrip(t *testing.T, r *Registry, v any) any {
	t.Helper()
	data, err := r.Marshal(v)
	if err != nil {
		t.Fatalf("marshal %T: %v", v, err)
	}
	out, n, err := r.Unmarshal(data)
	if err != nil {
		t.Fatalf("unmarshal %T: %v", v, err)
	}
	if n != len(data) {
		t.Fatalf("unmarshal consumed %d of %d bytes", n, len(data))
	}
	return out
}

func TestRoundTripSimple(t *testing.T) {
	r := newTestRegistry(t)
	in := &simpleToken{Chr: 'a', Pos: 42}
	out := roundTrip(t, r, in).(*simpleToken)
	if *out != *in {
		t.Fatalf("got %+v want %+v", out, in)
	}
}

func TestRoundTripComplex(t *testing.T) {
	r := newTestRegistry(t)
	in := &complexToken{
		ID:       -7,
		Name:     "hello world",
		Children: []nested{{Name: "a", Vals: []float64{1, 2.5, -3}}, {Name: "b"}},
		ABuffer:  []int{1 << 40, -5, 0},
		Tags:     map[string]int{"x": 1, "y": -2},
		Opt:      &nested{Name: "opt", Vals: []float64{math.Pi}},
		Ratio:    math.Inf(1),
		Flags:    [3]bool{true, false, true},
		hidden:   99,
		Skipped:  77,
	}
	out := roundTrip(t, r, in).(*complexToken)
	if out.hidden != 0 {
		t.Errorf("unexported field was serialized: %d", out.hidden)
	}
	if out.Skipped != 0 {
		t.Errorf("dps:\"-\" field was serialized: %d", out.Skipped)
	}
	in2 := *in
	in2.hidden = 0
	in2.Skipped = 0
	if !reflect.DeepEqual(*out, in2) {
		t.Fatalf("got %+v want %+v", out, in2)
	}
}

func TestRoundTripZeroValue(t *testing.T) {
	r := newTestRegistry(t)
	out := roundTrip(t, r, &complexToken{}).(*complexToken)
	if !reflect.DeepEqual(*out, complexToken{}) {
		t.Fatalf("zero value not preserved: %+v", out)
	}
}

func TestNilVsEmptySlice(t *testing.T) {
	r := newTestRegistry(t)
	in := &complexToken{ABuffer: []int{}}
	out := roundTrip(t, r, in).(*complexToken)
	if out.ABuffer == nil || len(out.ABuffer) != 0 {
		t.Fatalf("empty slice not preserved: %#v", out.ABuffer)
	}
	in2 := &complexToken{}
	out2 := roundTrip(t, r, in2).(*complexToken)
	if out2.ABuffer != nil {
		t.Fatalf("nil slice not preserved: %#v", out2.ABuffer)
	}
}

func TestCanonicalMapEncoding(t *testing.T) {
	r := newTestRegistry(t)
	in := &complexToken{Tags: map[string]int{"a": 1, "b": 2, "c": 3, "d": 4}}
	b1, err := r.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		b2, err := r.Marshal(in)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b1, b2) {
			t.Fatal("map encoding is not canonical")
		}
	}
}

func TestMarshalValueAndPointer(t *testing.T) {
	r := newTestRegistry(t)
	v := simpleToken{Chr: 'x', Pos: 9}
	b1, err := r.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := r.Marshal(&v)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("value and pointer encodings differ")
	}
}

func TestUnregisteredType(t *testing.T) {
	r := NewRegistry()
	type unregistered struct{ X int }
	if _, err := r.Marshal(&unregistered{}); err == nil {
		t.Fatal("expected error for unregistered type")
	}
}

func TestRegisterRejectsNonStruct(t *testing.T) {
	r := NewRegistry()
	if err := r.RegisterName("int", reflect.TypeOf(0)); err == nil {
		t.Fatal("expected error registering non-struct")
	}
}

func TestRegisterRejectsUnsupportedField(t *testing.T) {
	type bad struct{ F func() }
	r := NewRegistry()
	if err := Register[bad](r); err == nil {
		t.Fatal("expected error registering struct with func field")
	} else if !strings.Contains(err.Error(), "unsupported") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestRegisterNameConflict(t *testing.T) {
	r := NewRegistry()
	if err := r.RegisterName("tok", reflect.TypeOf(simpleToken{})); err != nil {
		t.Fatal(err)
	}
	// Same name, same type: ok (idempotent).
	if err := r.RegisterName("tok", reflect.TypeOf(simpleToken{})); err != nil {
		t.Fatalf("re-registering same pair: %v", err)
	}
	// Same name, different type: error.
	if err := r.RegisterName("tok", reflect.TypeOf(nested{})); err == nil {
		t.Fatal("expected name conflict error")
	}
	// Same type, different name: error.
	if err := r.RegisterName("tok2", reflect.TypeOf(simpleToken{})); err == nil {
		t.Fatal("expected type conflict error")
	}
}

func TestTruncatedInput(t *testing.T) {
	r := newTestRegistry(t)
	data, err := r.Marshal(&complexToken{Name: "abcdefgh", ABuffer: []int{1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(data); cut++ {
		if _, _, err := r.Unmarshal(data[:cut]); err == nil {
			// Truncation may still decode successfully if the cut lands after
			// all fields of a prefix-complete value; but for this payload every
			// strict prefix must fail since trailing fields are non-zero.
			t.Fatalf("expected error unmarshalling %d/%d bytes", cut, len(data))
		}
	}
}

func TestUnknownTypeID(t *testing.T) {
	r := newTestRegistry(t)
	if _, _, err := r.Unmarshal([]byte{0xFF, 0x7F}); err == nil {
		t.Fatal("expected unknown type id error")
	}
}

func TestEncodedSize(t *testing.T) {
	r := newTestRegistry(t)
	v := &complexToken{Name: "size", ABuffer: []int{1, 2, 3}}
	n, err := r.EncodedSize(v)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := r.Marshal(v)
	if n != len(b) {
		t.Fatalf("EncodedSize %d != len(Marshal) %d", n, len(b))
	}
}

func TestAppendExtends(t *testing.T) {
	r := newTestRegistry(t)
	prefix := []byte("prefix")
	out, err := r.Append(prefix, &simpleToken{Chr: 1, Pos: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(out, prefix) {
		t.Fatal("Append did not preserve prefix")
	}
	got, _, err := r.Unmarshal(out[len(prefix):])
	if err != nil {
		t.Fatal(err)
	}
	if *(got.(*simpleToken)) != (simpleToken{Chr: 1, Pos: 2}) {
		t.Fatalf("got %+v", got)
	}
}

// quickToken exercises the codec under testing/quick.
type quickToken struct {
	A int64
	B uint32
	C string
	D []byte
	E []float64
	F map[int32]string
	G *quickInner
	H bool
	I float32
}

type quickInner struct {
	X int16
	Y string
}

func TestQuickRoundTrip(t *testing.T) {
	r := NewRegistry()
	if err := Register[quickToken](r); err != nil {
		t.Fatal(err)
	}
	f := func(a int64, b uint32, c string, d []byte, e []float64, fk []int32, fv []string, hasG bool, x int16, y string, h bool, i float32) bool {
		in := &quickToken{A: a, B: b, C: c, D: d, E: e, H: h, I: i}
		if len(fk) > 0 {
			in.F = make(map[int32]string)
			for j, k := range fk {
				if j < len(fv) {
					in.F[k] = fv[j]
				} else {
					in.F[k] = ""
				}
			}
		}
		if hasG {
			in.G = &quickInner{X: x, Y: y}
		}
		data, err := r.Marshal(in)
		if err != nil {
			t.Logf("marshal: %v", err)
			return false
		}
		outAny, n, err := r.Unmarshal(data)
		if err != nil {
			t.Logf("unmarshal: %v", err)
			return false
		}
		if n != len(data) {
			return false
		}
		out := outAny.(*quickToken)
		// NaN floats compare unequal; normalize.
		if math.IsNaN(float64(in.I)) && math.IsNaN(float64(out.I)) {
			in.I, out.I = 0, 0
		}
		for j := range in.E {
			if j < len(out.E) && math.IsNaN(in.E[j]) && math.IsNaN(out.E[j]) {
				in.E[j], out.E[j] = 0, 0
			}
		}
		return reflect.DeepEqual(in, out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMarshalDeterministic(t *testing.T) {
	r := NewRegistry()
	if err := Register[quickToken](r); err != nil {
		t.Fatal(err)
	}
	f := func(a int64, c string, d []byte) bool {
		in := &quickToken{A: a, C: c, D: d, F: map[int32]string{1: c, -2: "z", 7: ""}}
		b1, err1 := r.Marshal(in)
		b2, err2 := r.Marshal(in)
		return err1 == nil && err2 == nil && bytes.Equal(b1, b2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultRegistryMustRegister(t *testing.T) {
	type mustTok struct{ N int }
	_ = MustRegister[mustTok]()
	// idempotent
	_ = MustRegister[mustTok]()
	b, err := DefaultRegistry.Marshal(&mustTok{N: 5})
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := DefaultRegistry.Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if out.(*mustTok).N != 5 {
		t.Fatalf("got %+v", out)
	}
}

func BenchmarkMarshalSmall(b *testing.B) {
	r := NewRegistry()
	if err := Register[simpleToken](r); err != nil {
		b.Fatal(err)
	}
	v := &simpleToken{Chr: 'q', Pos: 123456}
	var buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = r.Append(buf[:0], v)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMarshalLargeBuffer(b *testing.B) {
	type blockTok struct {
		Row, Col int
		Data     []float64
	}
	r := NewRegistry()
	if err := Register[blockTok](r); err != nil {
		b.Fatal(err)
	}
	v := &blockTok{Row: 1, Col: 2, Data: make([]float64, 64*64)}
	var buf []byte
	b.ReportAllocs()
	b.SetBytes(int64(len(v.Data) * 8))
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = r.Append(buf[:0], v)
		if err != nil {
			b.Fatal(err)
		}
	}
}
