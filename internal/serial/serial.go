// Package serial implements the DPS data-object serialization substrate.
//
// The paper's C++ library serializes data objects ("tokens") automatically,
// without redundant declarations, using the IDENTIFY macro to register each
// class with an abstract factory so objects can be re-instantiated during
// deserialization. This package is the Go analogue: token types are
// registered once (Register / RegisterName) and values are encoded with a
// binary codec. The wire form of a token is
//
//	varint(typeID) payload
//
// where typeID indexes the registry and the payload is a deterministic
// depth-first traversal of the value: varints for integers, IEEE-754 bits
// for floats, length-prefixed bytes for strings and slices, key-sorted
// entries for maps, presence bytes for pointers.
//
// # Compile-at-registration design
//
// Registration compiles each type into a per-type codec program (see
// codec.go): a tree of closures with precomputed field offsets that encode
// and decode through unsafe pointers, so the per-call hot path performs no
// reflective field walk. Primitive slices ([]byte, []float64, []int, ...)
// take bulk fast paths — a single presence byte and length prefix followed
// by a tight loop over the raw backing array. Each codec also carries an
// exact size pass, letting EncodedSize and callers preallocate wire buffers
// without marshalling twice; Append therefore performs at most one buffer
// growth per token. Maps fall back to the reference reflection codec, which
// is retained (encodeValue / decodeValue) both for that purpose and as the
// oracle the fuzz tests compare against byte-for-byte.
//
// Only exported fields are serialized, mirroring the paper's rule that data
// objects expose their payload as public members. The wire format is
// identical to the original reflection-driven codec.
package serial

import (
	"encoding/binary"
	"fmt"
	"math"
	"reflect"
	"sort"
	"sync"
	"unsafe"
)

// Registry maps token type names to reflect types and numeric IDs. A single
// process-wide registry (DefaultRegistry) is normally used, matching the
// paper's global class factory, but independent registries can be created
// for tests.
type Registry struct {
	mu      sync.RWMutex
	byName  map[string]int
	byType  map[reflect.Type]int
	entries []regEntry
}

type regEntry struct {
	name string
	typ  reflect.Type
	c    *typeCodec
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		byName: make(map[string]int),
		byType: make(map[reflect.Type]int),
	}
}

// DefaultRegistry is the process-wide token registry.
var DefaultRegistry = NewRegistry()

// RegisterName registers typ under the given name. Registering the same
// (name, type) pair twice is a no-op; reusing a name for a different type
// is an error.
func (r *Registry) RegisterName(name string, typ reflect.Type) error {
	if typ.Kind() == reflect.Pointer {
		typ = typ.Elem()
	}
	if typ.Kind() != reflect.Struct {
		return fmt.Errorf("serial: register %q: tokens must be structs, got %s", name, typ)
	}
	if err := checkEncodable(typ, map[reflect.Type]bool{}); err != nil {
		return fmt.Errorf("serial: register %q: %w", name, err)
	}
	c := codecFor(typ)
	r.mu.Lock()
	defer r.mu.Unlock()
	if id, ok := r.byName[name]; ok {
		if r.entries[id].typ != typ {
			return fmt.Errorf("serial: name %q already registered for %s", name, r.entries[id].typ)
		}
		return nil
	}
	if _, ok := r.byType[typ]; ok {
		return fmt.Errorf("serial: type %s already registered", typ)
	}
	id := len(r.entries)
	r.entries = append(r.entries, regEntry{name: name, typ: typ, c: c})
	r.byName[name] = id
	r.byType[typ] = id
	return nil
}

// Register registers T under its package-qualified type name. It is the
// analogue of the paper's IDENTIFY(T) macro.
func Register[T any](r *Registry) error {
	typ := reflect.TypeOf((*T)(nil)).Elem()
	return r.RegisterName(typeName(typ), typ)
}

// MustRegister registers T in the default registry and panics on error. It
// is intended for package-level var _ = serial.MustRegister[T]() lines.
func MustRegister[T any]() struct{} {
	if err := Register[T](DefaultRegistry); err != nil {
		panic(err)
	}
	return struct{}{}
}

func typeName(typ reflect.Type) string {
	if typ.Kind() == reflect.Pointer {
		typ = typ.Elem()
	}
	if typ.PkgPath() == "" {
		return typ.Name()
	}
	return typ.PkgPath() + "." + typ.Name()
}

// IDOf returns the numeric type ID of v's type.
func (r *Registry) IDOf(v any) (int, error) {
	typ := reflect.TypeOf(v)
	if typ == nil {
		return 0, fmt.Errorf("serial: cannot identify nil value")
	}
	if typ.Kind() == reflect.Pointer {
		typ = typ.Elem()
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	id, ok := r.byType[typ]
	if !ok {
		return 0, fmt.Errorf("serial: type %s not registered", typ)
	}
	return id, nil
}

// NameOf returns the registered name of v's type.
func (r *Registry) NameOf(v any) (string, error) {
	id, err := r.IDOf(v)
	if err != nil {
		return "", err
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.entries[id].name, nil
}

// TypeByName looks up a registered type.
func (r *Registry) TypeByName(name string) (reflect.Type, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	id, ok := r.byName[name]
	if !ok {
		return nil, false
	}
	return r.entries[id].typ, true
}

// Len reports the number of registered types.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.entries)
}

// Marshal encodes v (a pointer to a registered struct, or the struct value
// itself) as typeID + payload.
func (r *Registry) Marshal(v any) ([]byte, error) {
	id, c, p, err := r.codecOf(v)
	if err != nil {
		return nil, err
	}
	// Exact-size preallocation: one allocation, no growth copies.
	buf := make([]byte, 0, uvarintLen(uint64(id))+c.size(p))
	buf = binary.AppendUvarint(buf, uint64(id))
	return c.enc(buf, p), nil
}

// Append is like Marshal but appends to buf, returning the extended slice.
func (r *Registry) Append(buf []byte, v any) ([]byte, error) {
	id, c, p, err := r.codecOf(v)
	if err != nil {
		return buf, err
	}
	// Grow once to the exact final size before encoding.
	need := uvarintLen(uint64(id)) + c.size(p)
	if cap(buf)-len(buf) < need {
		grown := make([]byte, len(buf), len(buf)+need)
		copy(grown, buf)
		buf = grown
	}
	buf = binary.AppendUvarint(buf, uint64(id))
	return c.enc(buf, p), nil
}

// efaceWords mirrors the runtime layout of an interface value holding a
// pointer-shaped type: the data word is the pointer itself.
type efaceWords struct {
	typ  unsafe.Pointer
	data unsafe.Pointer
}

// lookup resolves a struct type to its ID and compiled codec.
func (r *Registry) lookup(st reflect.Type) (int, *typeCodec, error) {
	r.mu.RLock()
	id, ok := r.byType[st]
	var c *typeCodec
	if ok {
		c = r.entries[id].c
	}
	r.mu.RUnlock()
	if !ok {
		return 0, nil, fmt.Errorf("serial: type %s not registered", st)
	}
	return id, c, nil
}

// codecOf resolves v to its registered type ID, compiled codec and the
// address of the struct value. The common token shape — a single-level
// pointer to a registered struct — is resolved without reflection or
// allocation; struct values boxed in the interface are copied once into
// addressable memory.
func (r *Registry) codecOf(v any) (int, *typeCodec, unsafe.Pointer, error) {
	typ := reflect.TypeOf(v)
	if typ == nil {
		return 0, nil, nil, fmt.Errorf("serial: cannot identify nil value")
	}
	if typ.Kind() == reflect.Pointer && typ.Elem().Kind() == reflect.Struct {
		id, c, err := r.lookup(typ.Elem())
		if err != nil {
			return 0, nil, nil, err
		}
		// A pointer type is stored directly in the interface data word.
		p := (*efaceWords)(unsafe.Pointer(&v)).data
		if p == nil {
			return 0, nil, nil, fmt.Errorf("serial: cannot marshal nil pointer")
		}
		return id, c, p, nil
	}
	// Slow path: struct value or multi-level pointer.
	rv := reflect.ValueOf(v)
	st := rv.Type()
	if st.Kind() == reflect.Pointer {
		st = st.Elem()
	}
	id, c, err := r.lookup(st)
	if err != nil {
		return 0, nil, nil, err
	}
	for rv.Kind() == reflect.Pointer {
		if rv.IsNil() {
			return 0, nil, nil, fmt.Errorf("serial: cannot marshal nil pointer")
		}
		rv = rv.Elem()
	}
	pv := reflect.New(rv.Type())
	pv.Elem().Set(rv)
	return id, c, pv.UnsafePointer(), nil
}

// Unmarshal decodes a value previously produced by Marshal and returns a
// pointer to a freshly allocated struct of the registered type.
func (r *Registry) Unmarshal(data []byte) (any, int, error) {
	id, n := binary.Uvarint(data)
	if n <= 0 {
		return nil, 0, fmt.Errorf("serial: truncated type id")
	}
	r.mu.RLock()
	if id >= uint64(len(r.entries)) {
		r.mu.RUnlock()
		return nil, 0, fmt.Errorf("serial: unknown type id %d", id)
	}
	e := r.entries[id]
	r.mu.RUnlock()
	pv := reflect.New(e.typ)
	used, err := e.c.dec(data[n:], pv.UnsafePointer())
	if err != nil {
		return nil, 0, err
	}
	return pv.Interface(), n + used, nil
}

// EncodedSize returns the number of bytes Marshal would produce for v. It
// exists so the runtime can account for wire sizes without concatenating
// buffers twice. The compiled size pass computes it without building the
// marshal buffer, so it never allocates for pointer tokens.
func (r *Registry) EncodedSize(v any) (int, error) {
	id, c, p, err := r.codecOf(v)
	if err != nil {
		return 0, err
	}
	return uvarintLen(uint64(id)) + c.size(p), nil
}

// marshalReference is the original reflection-driven encoder, kept as the
// oracle for fuzz and equivalence tests: compiled codecs must produce
// byte-identical output.
func (r *Registry) marshalReference(v any) ([]byte, error) {
	id, err := r.IDOf(v)
	if err != nil {
		return nil, err
	}
	rv := reflect.ValueOf(v)
	for rv.Kind() == reflect.Pointer {
		if rv.IsNil() {
			return nil, fmt.Errorf("serial: cannot marshal nil pointer")
		}
		rv = rv.Elem()
	}
	buf := binary.AppendUvarint(nil, uint64(id))
	return encodeValue(buf, rv)
}

// unmarshalReference is the original reflection-driven decoder, kept as the
// oracle for fuzz and equivalence tests.
func (r *Registry) unmarshalReference(data []byte) (any, int, error) {
	id, n := binary.Uvarint(data)
	if n <= 0 {
		return nil, 0, fmt.Errorf("serial: truncated type id")
	}
	r.mu.RLock()
	if id >= uint64(len(r.entries)) {
		r.mu.RUnlock()
		return nil, 0, fmt.Errorf("serial: unknown type id %d", id)
	}
	typ := r.entries[id].typ
	r.mu.RUnlock()
	pv := reflect.New(typ)
	used, err := decodeValue(data[n:], pv.Elem())
	if err != nil {
		return nil, 0, err
	}
	return pv.Interface(), n + used, nil
}

// checkEncodable validates at registration time that every reachable field
// of typ can be encoded, so failures surface early (the paper's compile-time
// checks).
func checkEncodable(typ reflect.Type, seen map[reflect.Type]bool) error {
	switch typ.Kind() {
	case reflect.Bool,
		reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64,
		reflect.Float32, reflect.Float64,
		reflect.Complex64, reflect.Complex128,
		reflect.String:
		return nil
	case reflect.Slice, reflect.Array:
		return checkEncodable(typ.Elem(), seen)
	case reflect.Map:
		if err := checkEncodable(typ.Key(), seen); err != nil {
			return err
		}
		return checkEncodable(typ.Elem(), seen)
	case reflect.Pointer:
		return checkEncodable(typ.Elem(), seen)
	case reflect.Struct:
		if seen[typ] {
			return nil // recursive type: encodable as long as pointers break the cycle
		}
		seen[typ] = true
		for i := 0; i < typ.NumField(); i++ {
			f := typ.Field(i)
			if !f.IsExported() {
				continue
			}
			if f.Tag.Get("dps") == "-" {
				continue
			}
			if err := checkEncodable(f.Type, seen); err != nil {
				return fmt.Errorf("field %s: %w", f.Name, err)
			}
		}
		return nil
	default:
		return fmt.Errorf("unsupported kind %s", typ.Kind())
	}
}

func encodeValue(buf []byte, v reflect.Value) ([]byte, error) {
	switch v.Kind() {
	case reflect.Bool:
		if v.Bool() {
			return append(buf, 1), nil
		}
		return append(buf, 0), nil
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		return binary.AppendVarint(buf, v.Int()), nil
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		return binary.AppendUvarint(buf, v.Uint()), nil
	case reflect.Float32:
		return binary.LittleEndian.AppendUint32(buf, math.Float32bits(float32(v.Float()))), nil
	case reflect.Float64:
		return binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.Float())), nil
	case reflect.Complex64:
		c := v.Complex()
		buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(float32(real(c))))
		return binary.LittleEndian.AppendUint32(buf, math.Float32bits(float32(imag(c)))), nil
	case reflect.Complex128:
		c := v.Complex()
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(real(c)))
		return binary.LittleEndian.AppendUint64(buf, math.Float64bits(imag(c))), nil
	case reflect.String:
		s := v.String()
		buf = binary.AppendUvarint(buf, uint64(len(s)))
		return append(buf, s...), nil
	case reflect.Slice:
		if v.IsNil() {
			return append(buf, 0), nil
		}
		buf = append(buf, 1)
		n := v.Len()
		buf = binary.AppendUvarint(buf, uint64(n))
		// Fast path for the paper's Buffer<T> of simple elements.
		if v.Type().Elem().Kind() == reflect.Uint8 {
			return append(buf, v.Bytes()...), nil
		}
		if v.Type().Elem().Kind() == reflect.Float64 {
			for i := 0; i < n; i++ {
				buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.Index(i).Float()))
			}
			return buf, nil
		}
		var err error
		for i := 0; i < n; i++ {
			buf, err = encodeValue(buf, v.Index(i))
			if err != nil {
				return buf, err
			}
		}
		return buf, nil
	case reflect.Array:
		var err error
		for i := 0; i < v.Len(); i++ {
			buf, err = encodeValue(buf, v.Index(i))
			if err != nil {
				return buf, err
			}
		}
		return buf, nil
	case reflect.Map:
		if v.IsNil() {
			return append(buf, 0), nil
		}
		buf = append(buf, 1)
		buf = binary.AppendUvarint(buf, uint64(v.Len()))
		keys := v.MapKeys()
		sort.Slice(keys, func(i, j int) bool { return lessValue(keys[i], keys[j]) })
		var err error
		for _, k := range keys {
			if buf, err = encodeValue(buf, k); err != nil {
				return buf, err
			}
			if buf, err = encodeValue(buf, v.MapIndex(k)); err != nil {
				return buf, err
			}
		}
		return buf, nil
	case reflect.Pointer:
		if v.IsNil() {
			return append(buf, 0), nil
		}
		buf = append(buf, 1)
		return encodeValue(buf, v.Elem())
	case reflect.Struct:
		t := v.Type()
		var err error
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if !f.IsExported() || f.Tag.Get("dps") == "-" {
				continue
			}
			if buf, err = encodeValue(buf, v.Field(i)); err != nil {
				return buf, err
			}
		}
		return buf, nil
	default:
		return buf, fmt.Errorf("serial: cannot encode kind %s", v.Kind())
	}
}

// lessValue orders map keys deterministically so encodings are canonical.
func lessValue(a, b reflect.Value) bool {
	switch a.Kind() {
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		return a.Int() < b.Int()
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		return a.Uint() < b.Uint()
	case reflect.Float32, reflect.Float64:
		return a.Float() < b.Float()
	case reflect.String:
		return a.String() < b.String()
	case reflect.Bool:
		return !a.Bool() && b.Bool()
	default:
		return fmt.Sprint(a.Interface()) < fmt.Sprint(b.Interface())
	}
}

func decodeValue(data []byte, v reflect.Value) (int, error) {
	switch v.Kind() {
	case reflect.Bool:
		if len(data) < 1 {
			return 0, errTruncated("bool")
		}
		v.SetBool(data[0] != 0)
		return 1, nil
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		x, n := binary.Varint(data)
		if n <= 0 {
			return 0, errTruncated("varint")
		}
		if v.OverflowInt(x) {
			return 0, fmt.Errorf("serial: value %d overflows %s", x, v.Type())
		}
		v.SetInt(x)
		return n, nil
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		x, n := binary.Uvarint(data)
		if n <= 0 {
			return 0, errTruncated("uvarint")
		}
		if v.OverflowUint(x) {
			return 0, fmt.Errorf("serial: value %d overflows %s", x, v.Type())
		}
		v.SetUint(x)
		return n, nil
	case reflect.Float32:
		if len(data) < 4 {
			return 0, errTruncated("float32")
		}
		v.SetFloat(float64(math.Float32frombits(binary.LittleEndian.Uint32(data))))
		return 4, nil
	case reflect.Float64:
		if len(data) < 8 {
			return 0, errTruncated("float64")
		}
		v.SetFloat(math.Float64frombits(binary.LittleEndian.Uint64(data)))
		return 8, nil
	case reflect.Complex64:
		if len(data) < 8 {
			return 0, errTruncated("complex64")
		}
		re := math.Float32frombits(binary.LittleEndian.Uint32(data))
		im := math.Float32frombits(binary.LittleEndian.Uint32(data[4:]))
		v.SetComplex(complex(float64(re), float64(im)))
		return 8, nil
	case reflect.Complex128:
		if len(data) < 16 {
			return 0, errTruncated("complex128")
		}
		re := math.Float64frombits(binary.LittleEndian.Uint64(data))
		im := math.Float64frombits(binary.LittleEndian.Uint64(data[8:]))
		v.SetComplex(complex(re, im))
		return 16, nil
	case reflect.String:
		l, n := binary.Uvarint(data)
		if n <= 0 || uint64(len(data)-n) < l {
			return 0, errTruncated("string")
		}
		v.SetString(string(data[n : n+int(l)]))
		return n + int(l), nil
	case reflect.Slice:
		if len(data) < 1 {
			return 0, errTruncated("slice presence")
		}
		if data[0] == 0 {
			v.SetZero()
			return 1, nil
		}
		used := 1
		l, n := binary.Uvarint(data[used:])
		if n <= 0 {
			return 0, errTruncated("slice length")
		}
		used += n
		if l > uint64(len(data)) {
			return 0, fmt.Errorf("serial: slice length %d exceeds buffer", l)
		}
		sl := reflect.MakeSlice(v.Type(), int(l), int(l))
		if v.Type().Elem().Kind() == reflect.Uint8 {
			if uint64(len(data)-used) < l {
				return 0, errTruncated("byte slice")
			}
			reflect.Copy(sl, reflect.ValueOf(data[used:used+int(l)]))
			v.Set(sl)
			return used + int(l), nil
		}
		if v.Type().Elem().Kind() == reflect.Float64 {
			if uint64(len(data)-used) < 8*l {
				return 0, errTruncated("float64 slice")
			}
			for i := 0; i < int(l); i++ {
				sl.Index(i).SetFloat(math.Float64frombits(binary.LittleEndian.Uint64(data[used:])))
				used += 8
			}
			v.Set(sl)
			return used, nil
		}
		for i := 0; i < int(l); i++ {
			n, err := decodeValue(data[used:], sl.Index(i))
			if err != nil {
				return 0, err
			}
			used += n
		}
		v.Set(sl)
		return used, nil
	case reflect.Array:
		used := 0
		for i := 0; i < v.Len(); i++ {
			n, err := decodeValue(data[used:], v.Index(i))
			if err != nil {
				return 0, err
			}
			used += n
		}
		return used, nil
	case reflect.Map:
		if len(data) < 1 {
			return 0, errTruncated("map presence")
		}
		if data[0] == 0 {
			v.SetZero()
			return 1, nil
		}
		used := 1
		l, n := binary.Uvarint(data[used:])
		if n <= 0 {
			return 0, errTruncated("map length")
		}
		used += n
		// Every entry costs at least two bytes on the wire; a larger claim
		// is corrupt and would otherwise provoke a giant preallocation.
		if l > uint64(len(data)) {
			return 0, fmt.Errorf("serial: map length %d exceeds buffer", l)
		}
		m := reflect.MakeMapWithSize(v.Type(), int(l))
		for i := uint64(0); i < l; i++ {
			k := reflect.New(v.Type().Key()).Elem()
			n, err := decodeValue(data[used:], k)
			if err != nil {
				return 0, err
			}
			used += n
			e := reflect.New(v.Type().Elem()).Elem()
			n, err = decodeValue(data[used:], e)
			if err != nil {
				return 0, err
			}
			used += n
			m.SetMapIndex(k, e)
		}
		v.Set(m)
		return used, nil
	case reflect.Pointer:
		if len(data) < 1 {
			return 0, errTruncated("pointer presence")
		}
		if data[0] == 0 {
			v.SetZero()
			return 1, nil
		}
		p := reflect.New(v.Type().Elem())
		n, err := decodeValue(data[1:], p.Elem())
		if err != nil {
			return 0, err
		}
		v.Set(p)
		return 1 + n, nil
	case reflect.Struct:
		t := v.Type()
		used := 0
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if !f.IsExported() || f.Tag.Get("dps") == "-" {
				continue
			}
			n, err := decodeValue(data[used:], v.Field(i))
			if err != nil {
				return 0, fmt.Errorf("field %s: %w", f.Name, err)
			}
			used += n
		}
		return used, nil
	default:
		return 0, fmt.Errorf("serial: cannot decode kind %s", v.Kind())
	}
}

func errTruncated(what string) error {
	return fmt.Errorf("serial: truncated input reading %s", what)
}
