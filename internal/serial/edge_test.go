package serial

import (
	"math"
	"reflect"
	"testing"
)

// Edge cases of the codec: embedded structs, arrays of structs, nested
// maps, recursive types via pointers, deep nesting, and special float
// values — everything a DPS data object may legitimately contain.

type embeddedBase struct {
	ID int
}

type withEmbedded struct {
	embeddedBase // unexported embedded: skipped (field name is lowercase? no: type name)
	Base         embeddedBase
	Name         string
}

type arrayOfStructs struct {
	Grid [2][3]point
}

type point struct {
	X, Y float64
}

type nestedMaps struct {
	ByName map[string]map[int]point
}

type linkedNode struct {
	Value int
	Next  *linkedNode
}

type deepNest struct {
	A struct {
		B struct {
			C struct {
				D []string
			}
		}
	}
}

type floatEdge struct {
	Vals []float64
	F32  float32
}

func edgeRegistry(t *testing.T) *Registry {
	t.Helper()
	r := NewRegistry()
	for _, err := range []error{
		Register[withEmbedded](r),
		Register[arrayOfStructs](r),
		Register[nestedMaps](r),
		Register[linkedNode](r),
		Register[deepNest](r),
		Register[floatEdge](r),
	} {
		if err != nil {
			t.Fatal(err)
		}
	}
	return r
}

func edgeRoundTrip(t *testing.T, r *Registry, v any) any {
	t.Helper()
	b, err := r.Marshal(v)
	if err != nil {
		t.Fatalf("marshal %T: %v", v, err)
	}
	out, n, err := r.Unmarshal(b)
	if err != nil {
		t.Fatalf("unmarshal %T: %v", v, err)
	}
	if n != len(b) {
		t.Fatalf("%T: consumed %d of %d bytes", v, n, len(b))
	}
	return out
}

func TestEmbeddedStruct(t *testing.T) {
	r := edgeRegistry(t)
	in := &withEmbedded{Base: embeddedBase{ID: 9}, Name: "emb"}
	in.embeddedBase.ID = 5 // embedded field is exported through the type
	out := edgeRoundTrip(t, r, in).(*withEmbedded)
	if out.Name != "emb" || out.Base.ID != 9 {
		t.Fatalf("got %+v", out)
	}
}

func TestArrayOfStructs(t *testing.T) {
	r := edgeRegistry(t)
	in := &arrayOfStructs{}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			in.Grid[i][j] = point{X: float64(i), Y: float64(j) / 3}
		}
	}
	out := edgeRoundTrip(t, r, in).(*arrayOfStructs)
	if !reflect.DeepEqual(in.Grid, out.Grid) {
		t.Fatalf("grid differs: %+v", out.Grid)
	}
}

func TestNestedMaps(t *testing.T) {
	r := edgeRegistry(t)
	in := &nestedMaps{ByName: map[string]map[int]point{
		"a": {1: {X: 1}, 2: {Y: 2}},
		"b": {},
		"c": nil,
	}}
	out := edgeRoundTrip(t, r, in).(*nestedMaps)
	if !reflect.DeepEqual(in.ByName["a"], out.ByName["a"]) {
		t.Fatalf("map a differs: %+v", out.ByName)
	}
	if out.ByName["b"] == nil || len(out.ByName["b"]) != 0 {
		t.Fatal("empty inner map not preserved")
	}
	if out.ByName["c"] != nil {
		t.Fatal("nil inner map not preserved")
	}
}

func TestRecursiveTypeViaPointers(t *testing.T) {
	r := edgeRegistry(t)
	in := &linkedNode{Value: 1, Next: &linkedNode{Value: 2, Next: &linkedNode{Value: 3}}}
	out := edgeRoundTrip(t, r, in).(*linkedNode)
	vals := []int{}
	for n := out; n != nil; n = n.Next {
		vals = append(vals, n.Value)
	}
	if !reflect.DeepEqual(vals, []int{1, 2, 3}) {
		t.Fatalf("chain = %v", vals)
	}
}

func TestDeeplyNestedAnonymousStructs(t *testing.T) {
	r := edgeRegistry(t)
	in := &deepNest{}
	in.A.B.C.D = []string{"x", "", "zz"}
	out := edgeRoundTrip(t, r, in).(*deepNest)
	if !reflect.DeepEqual(in.A.B.C.D, out.A.B.C.D) {
		t.Fatalf("got %+v", out.A.B.C.D)
	}
}

func TestFloatSpecials(t *testing.T) {
	r := edgeRegistry(t)
	in := &floatEdge{
		Vals: []float64{0, math.Copysign(0, -1), math.Inf(1), math.Inf(-1), math.MaxFloat64, math.SmallestNonzeroFloat64},
		F32:  float32(math.Inf(-1)),
	}
	out := edgeRoundTrip(t, r, in).(*floatEdge)
	for i, v := range in.Vals {
		got := out.Vals[i]
		if math.Float64bits(got) != math.Float64bits(v) {
			t.Fatalf("val %d: %x != %x", i, math.Float64bits(got), math.Float64bits(v))
		}
	}
	if !math.IsInf(float64(out.F32), -1) {
		t.Fatalf("F32 = %v", out.F32)
	}
}

func TestNaNRoundTrip(t *testing.T) {
	r := edgeRegistry(t)
	in := &floatEdge{Vals: []float64{math.NaN()}}
	out := edgeRoundTrip(t, r, in).(*floatEdge)
	if !math.IsNaN(out.Vals[0]) {
		t.Fatalf("NaN lost: %v", out.Vals[0])
	}
}

func TestRegistryLenAndNames(t *testing.T) {
	r := edgeRegistry(t)
	if r.Len() != 6 {
		t.Fatalf("Len = %d", r.Len())
	}
	name, err := r.NameOf(&point{})
	if err == nil {
		t.Fatalf("unregistered type resolved to %q", name)
	}
	name, err = r.NameOf(&withEmbedded{})
	if err != nil {
		t.Fatal(err)
	}
	typ, ok := r.TypeByName(name)
	if !ok || typ != reflect.TypeOf(withEmbedded{}) {
		t.Fatalf("TypeByName(%q) = %v, %v", name, typ, ok)
	}
	if _, ok := r.TypeByName("nope"); ok {
		t.Fatal("bogus name resolved")
	}
}
