package kernel

import (
	"testing"
	"time"

	"repro/internal/trace"
)

// hookFor returns an OnTrace hook that serves a fixed span slice for one
// trace ID, imitating a process's span ring.
func hookFor(id uint64, spans ...trace.Span) func(uint64) []trace.Span {
	return func(got uint64) []trace.Span {
		if got != id {
			return nil
		}
		return spans
	}
}

// TestCollectTraceAcrossKernels: a kernel assembles one call's timeline from
// its own hook plus every name-server peer's, sorted into timeline order.
func TestCollectTraceAcrossKernels(t *testing.T) {
	ns := startNS(t)
	k1 := startKernel(t, ns, "kA")
	k2 := startKernel(t, ns, "kB")
	k1.OnTrace(hookFor(42,
		trace.Span{Trace: 42, Kind: "post", Node: "n0", Start: 10},
		trace.Span{Trace: 42, Kind: "result", Node: "n0", Start: 40},
	))
	k2.OnTrace(hookFor(42,
		trace.Span{Trace: 42, Kind: "execute", Node: "n1", Start: 20, Dur: 5},
	))

	spans, err := k1.CollectTrace(42, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 3 {
		t.Fatalf("collected %d spans, want 3: %+v", len(spans), spans)
	}
	for i, wantKind := range []string{"post", "execute", "result"} {
		if spans[i].Kind != wantKind {
			t.Errorf("span %d kind = %q, want %q (timeline order)", i, spans[i].Kind, wantKind)
		}
	}
	if spans[1].Node != "n1" {
		t.Errorf("peer span lost its node: %+v", spans[1])
	}

	// An unknown trace collects an empty (not failed) timeline.
	if spans, err := k1.CollectTrace(7, 2*time.Second); err != nil || len(spans) != 0 {
		t.Fatalf("unknown trace: spans=%v err=%v", spans, err)
	}
}

// TestCollectTraceEphemeralClient: the package-level collector works without
// registering in the name server — its reply coordinates travel inside the
// request (the dps-kernel -trace-dump path).
func TestCollectTraceEphemeralClient(t *testing.T) {
	ns := startNS(t)
	k1 := startKernel(t, ns, "kA")
	k2 := startKernel(t, ns, "kB")
	k1.OnTrace(hookFor(99, trace.Span{Trace: 99, Kind: "post", Node: "n0", Start: 1}))
	k2.OnTrace(hookFor(99, trace.Span{Trace: 99, Kind: "execute", Node: "n1", Start: 2}))

	spans, err := CollectTrace(ns.Addr(), 99, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 2 || spans[0].Kind != "post" || spans[1].Kind != "execute" {
		t.Fatalf("collected %+v", spans)
	}
}

// TestCollectTraceWithoutHooks: kernels that never installed OnTrace answer
// with empty slices; collection still succeeds.
func TestCollectTraceWithoutHooks(t *testing.T) {
	ns := startNS(t)
	k1 := startKernel(t, ns, "kA")
	startKernel(t, ns, "kB")
	spans, err := k1.CollectTrace(5, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 0 {
		t.Fatalf("hookless cluster produced spans: %+v", spans)
	}
}

// TestTraceReqCodecRoundTrip pins the request wire helper, including the
// reply-coordinate strings an ephemeral collector depends on.
func TestTraceReqCodecRoundTrip(t *testing.T) {
	b := appendControlTraceReq(nil, 1<<40, "trace-client-7", "127.0.0.1:9999")
	if b[0] != ctlTraceReq {
		t.Fatalf("kind byte = %d", b[0])
	}
	id, name, addr, err := decodeControlTraceReq(b[1:])
	if err != nil {
		t.Fatal(err)
	}
	if id != 1<<40 || name != "trace-client-7" || addr != "127.0.0.1:9999" {
		t.Fatalf("got id=%d name=%q addr=%q", id, name, addr)
	}
	for n := 1; n < len(b); n++ {
		if _, _, _, err := decodeControlTraceReq(b[1:n]); err == nil {
			// Truncations that cut a string short must error; a prefix that
			// happens to end exactly on a field boundary decodes only if every
			// field is complete, which for this payload is the full frame.
			t.Errorf("truncated request of %d bytes decoded", n-1)
		}
	}
}
