// Package kernel reproduces the paper's §4 runtime support: a kernel runs
// on every participating computer, named independently of the host (so
// several kernels may share a machine for debugging), kernels locate each
// other through a simple name server, applications are launched lazily when
// a data object must reach a node without a running instance, and running
// applications can expose flow graphs as services callable by other
// applications.
package kernel

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync"
)

// NameServer is the paper's "simple name server": kernels register their
// (name, address) pair and resolve peers. The protocol is line-based over
// TCP: "REG name addr", "GET name", "DEL name", "LIST".
type NameServer struct {
	listener net.Listener

	mu      sync.Mutex
	entries map[string]string
	wg      sync.WaitGroup
	closed  bool
}

// StartNameServer listens on addr (e.g. "127.0.0.1:0").
func StartNameServer(addr string) (*NameServer, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	ns := &NameServer{listener: l, entries: make(map[string]string)}
	ns.wg.Add(1)
	go ns.serve()
	return ns, nil
}

// Addr returns the name server's bound address.
func (ns *NameServer) Addr() string { return ns.listener.Addr().String() }

// Close stops the server.
func (ns *NameServer) Close() error {
	ns.mu.Lock()
	ns.closed = true
	ns.mu.Unlock()
	err := ns.listener.Close()
	ns.wg.Wait()
	return err
}

// Snapshot returns a copy of the current registrations.
func (ns *NameServer) Snapshot() map[string]string {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	out := make(map[string]string, len(ns.entries))
	for k, v := range ns.entries {
		out[k] = v
	}
	return out
}

func (ns *NameServer) serve() {
	defer ns.wg.Done()
	for {
		c, err := ns.listener.Accept()
		if err != nil {
			return
		}
		ns.wg.Add(1)
		go func() {
			defer ns.wg.Done()
			defer c.Close()
			sc := bufio.NewScanner(c)
			for sc.Scan() {
				resp := ns.handle(sc.Text())
				if _, err := fmt.Fprintln(c, resp); err != nil {
					return
				}
			}
		}()
	}
}

func (ns *NameServer) handle(line string) string {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return "ERR empty"
	}
	ns.mu.Lock()
	defer ns.mu.Unlock()
	switch fields[0] {
	case "REG":
		if len(fields) != 3 {
			return "ERR usage: REG name addr"
		}
		ns.entries[fields[1]] = fields[2]
		return "OK"
	case "GET":
		if len(fields) != 2 {
			return "ERR usage: GET name"
		}
		addr, ok := ns.entries[fields[1]]
		if !ok {
			return "ERR unknown " + fields[1]
		}
		return "OK " + addr
	case "DEL":
		if len(fields) != 2 {
			return "ERR usage: DEL name"
		}
		delete(ns.entries, fields[1])
		return "OK"
	case "LIST":
		var sb strings.Builder
		sb.WriteString("OK")
		for k, v := range ns.entries {
			sb.WriteString(" ")
			sb.WriteString(k)
			sb.WriteString("=")
			sb.WriteString(v)
		}
		return sb.String()
	default:
		return "ERR unknown command " + fields[0]
	}
}

// nsRequest performs one request against a name server.
func nsRequest(nsAddr, line string) (string, error) {
	c, err := net.Dial("tcp", nsAddr)
	if err != nil {
		return "", err
	}
	defer c.Close()
	if _, err := fmt.Fprintln(c, line); err != nil {
		return "", err
	}
	sc := bufio.NewScanner(c)
	if !sc.Scan() {
		return "", fmt.Errorf("kernel: name server closed connection")
	}
	resp := sc.Text()
	if !strings.HasPrefix(resp, "OK") {
		return "", fmt.Errorf("kernel: name server: %s", resp)
	}
	return strings.TrimSpace(strings.TrimPrefix(resp, "OK")), nil
}

// RegisterName registers a kernel with the name server.
func RegisterName(nsAddr, name, addr string) error {
	_, err := nsRequest(nsAddr, fmt.Sprintf("REG %s %s", name, addr))
	return err
}

// LookupName resolves a kernel name.
func LookupName(nsAddr, name string) (string, error) {
	return nsRequest(nsAddr, "GET "+name)
}

// UnregisterName removes a kernel from the name server.
func UnregisterName(nsAddr, name string) error {
	_, err := nsRequest(nsAddr, "DEL "+name)
	return err
}

// ListNames returns all registrations.
func ListNames(nsAddr string) (map[string]string, error) {
	resp, err := nsRequest(nsAddr, "LIST")
	if err != nil {
		return nil, err
	}
	out := make(map[string]string)
	for _, kv := range strings.Fields(resp) {
		if i := strings.IndexByte(kv, '='); i > 0 {
			out[kv[:i]] = kv[i+1:]
		}
	}
	return out, nil
}
