package kernel

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/serial"
)

// crashKernel kills a kernel process the hard way: the TCP endpoint closes
// without unregistering from the name server — exactly what a kill -9
// looks like to the rest of the cluster.
func crashKernel(k *Kernel) {
	k.mu.Lock()
	k.closed = true
	if k.hbStop != nil {
		close(k.hbStop)
		k.hbStop = nil
	}
	k.mu.Unlock()
	_ = k.node.Close()
}

// TestHeartbeatDetectsDeadKernel kills a kernel and checks the prober
// declares it dead and notifies the third kernel via the death broadcast.
func TestHeartbeatDetectsDeadKernel(t *testing.T) {
	ns := startNS(t)
	ka := startKernel(t, ns, "hb-a")
	kb := startKernel(t, ns, "hb-b")
	kc := startKernel(t, ns, "hb-c")

	deadA := make(chan string, 4)
	ka.OnFailover(func(peer string) { deadA <- peer })
	deadC := make(chan string, 4)
	kc.OnFailover(func(peer string) { deadC <- peer })

	ka.StartHeartbeat(25*time.Millisecond, 3)
	// Let a few rounds of pongs establish liveness, then kill b.
	time.Sleep(100 * time.Millisecond)
	crashKernel(kb)

	waitPeer := func(ch chan string, who string) {
		t.Helper()
		select {
		case peer := <-ch:
			if peer != "hb-b" {
				t.Fatalf("%s: OnFailover(%q), want hb-b", who, peer)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("%s: no failover notification", who)
		}
	}
	waitPeer(deadA, "prober")
	waitPeer(deadC, "broadcast receiver")

	// The healthy kernel must not be declared dead as a side effect.
	select {
	case peer := <-deadA:
		t.Fatalf("spurious death of %q", peer)
	case <-time.After(150 * time.Millisecond):
	}
}

type fkItem struct {
	Worker int
	Value  int
}

type fkDone struct {
	Sum int64
	N   int
}

type fkState struct {
	Count int
	Sum   int64
}

var (
	_ = serial.MustRegister[fkItem]()
	_ = serial.MustRegister[fkDone]()
	_ = serial.MustRegister[fkState]()
)

// TestKernelFailoverOverTCP runs a fault-tolerant engine application over
// three real TCP kernels, kills one kernel process, and checks that the
// heartbeat-driven failover restores its stateful threads on the
// survivors and later calls still complete — the ISSUE's "recovers after
// a killed kernel process" scenario over real sockets.
func TestKernelFailoverOverTCP(t *testing.T) {
	ns := startNS(t)
	k0 := startKernel(t, ns, "fk0")
	k1 := startKernel(t, ns, "fk1")
	k2 := startKernel(t, ns, "fk2")

	app := core.NewApp(core.Config{Window: 4, Checkpoint: 5 * time.Millisecond})
	defer app.Close()
	for _, k := range []*Kernel{k0, k1, k2} {
		if _, err := app.AttachTransport(k.Transport("ftapp")); err != nil {
			t.Fatal(err)
		}
	}
	// The master kernel's heartbeat feeds the engine's recovery.
	k0.OnFailover(func(peer string) { _ = app.FailNode(peer) })
	k0.StartHeartbeat(25*time.Millisecond, 3)

	main := core.MustCollection[struct{}](app, "fk-main")
	if err := main.Map("fk0"); err != nil {
		t.Fatal(err)
	}
	workers := core.MustCollection[fkState](app, "fk-workers")
	if err := workers.Map("fk1*2 fk2*2"); err != nil {
		t.Fatal(err)
	}
	split := core.Split[*fkItem, *fkItem]("fk-split",
		func(c *core.Ctx, in *fkItem, post func(*fkItem)) {
			for i := 0; i < in.Worker; i++ {
				post(&fkItem{Worker: i % workers.ThreadCount(), Value: in.Value + i})
			}
		})
	work := core.Leaf[*fkItem, *fkItem]("fk-work",
		func(c *core.Ctx, in *fkItem) *fkItem {
			st := core.StateOf[fkState](c)
			st.Count++
			st.Sum += int64(in.Value)
			return in
		})
	merge := core.Merge[*fkItem, *fkDone]("fk-merge",
		func(c *core.Ctx, first *fkItem, next func() (*fkItem, bool)) *fkDone {
			out := &fkDone{}
			for in, ok := first, true; ok; in, ok = next() {
				out.Sum += int64(in.Value)
				out.N++
			}
			return out
		})
	g, err := app.NewFlowgraph("fk-graph", core.Path(
		core.NewNode(split, main, core.MainRoute()),
		core.NewNode(work, workers, core.ByKey[*fkItem]("fk-route", func(in *fkItem) int { return in.Worker })),
		core.NewNode(merge, main, core.MainRoute()),
	))
	if err != nil {
		t.Fatal(err)
	}

	call := func(base, n int) error {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		out, err := g.Call(ctx, &fkItem{Worker: n, Value: base})
		if err != nil {
			return err
		}
		want := int64(0)
		for i := 0; i < n; i++ {
			want += int64(base + i)
		}
		if d := out.(*fkDone); d.N != n || d.Sum != want {
			return fmt.Errorf("base %d: got N=%d Sum=%d, want N=%d Sum=%d", base, d.N, d.Sum, n, want)
		}
		return nil
	}

	for r := 0; r < 5; r++ {
		if err := call(r*100, 8); err != nil {
			t.Fatal(err)
		}
	}
	crashKernel(k2)
	// Calls keep running through detection and recovery: tokens to the
	// dead kernel are retained and replayed onto the survivors.
	for r := 5; r < 15; r++ {
		if err := call(r*100, 8); err != nil {
			t.Fatal(err)
		}
	}
	if err := app.Err(); err != nil {
		t.Fatalf("application failed: %v", err)
	}
	for i := 0; i < workers.ThreadCount(); i++ {
		node, err := workers.NodeOf(i)
		if err != nil {
			t.Fatal(err)
		}
		if node == "fk2" {
			t.Errorf("thread %d still placed on the killed kernel", i)
		}
	}
	if s := app.Stats(); s.FailoversCompleted != 1 {
		t.Errorf("FailoversCompleted = %d, want 1", s.FailoversCompleted)
	}
}
