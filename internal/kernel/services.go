package kernel

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/core"
)

// ServiceRegistry lets running applications expose flow graphs as parallel
// services callable by other applications (paper Figure 10 and §6). Within
// one runtime environment the registry brokers calls in process while the
// service's internal parallel work still crosses the (simulated or real)
// network.
type ServiceRegistry struct {
	mu       sync.RWMutex
	services map[string]*core.Flowgraph
}

// NewServiceRegistry creates an empty registry.
func NewServiceRegistry() *ServiceRegistry {
	return &ServiceRegistry{services: make(map[string]*core.Flowgraph)}
}

// Expose publishes a flow graph under a service name.
func (r *ServiceRegistry) Expose(name string, g *core.Flowgraph) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.services[name]; ok {
		return fmt.Errorf("kernel: service %q already exposed", name)
	}
	r.services[name] = g
	return nil
}

// Withdraw removes a service.
func (r *ServiceRegistry) Withdraw(name string) {
	r.mu.Lock()
	delete(r.services, name)
	r.mu.Unlock()
}

// Lookup resolves a service name to its flow graph.
func (r *ServiceRegistry) Lookup(name string) (*core.Flowgraph, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	g, ok := r.services[name]
	return g, ok
}

// Names lists the exposed services.
func (r *ServiceRegistry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.services))
	for n := range r.services {
		out = append(out, n)
	}
	return out
}

// Call invokes a service synchronously from outside any graph; ctx cancels
// the call.
func (r *ServiceRegistry) Call(ctx context.Context, name string, tok core.Token) (core.Token, error) {
	g, ok := r.Lookup(name)
	if !ok {
		return nil, fmt.Errorf("kernel: unknown service %q", name)
	}
	return g.Call(ctx, tok)
}

// ServiceCallOp builds a leaf operation that calls the named service,
// resolving it at graph-construction time. In and Out name the request and
// response token types.
func ServiceCallOp(r *ServiceRegistry, opName, serviceName string) (*core.OpDef, error) {
	g, ok := r.Lookup(serviceName)
	if !ok {
		return nil, fmt.Errorf("kernel: unknown service %q", serviceName)
	}
	return core.GraphCallOp(opName, g), nil
}
