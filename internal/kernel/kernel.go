package kernel

import (
	"encoding/binary"
	"fmt"
	"sync"

	"repro/internal/transport"
	"repro/internal/transport/tcptransport"
)

// Kernel is one node daemon of the DPS runtime environment. It owns a
// single TCP endpoint and multiplexes any number of applications over it;
// each application attaches through Transport(appName), which yields a
// transport.Transport whose node name is the kernel name.
//
// Lazy launch: if a message arrives for an application that has no local
// instance but a registered factory, the kernel invokes the factory — the
// paper's "when an application thread posts a data object to a thread
// running on a node where there is no active instance of the application,
// the kernel on that node starts a new instance" — and queues messages
// until the instance installs its handler.
type Kernel struct {
	name   string
	nsAddr string
	node   *tcptransport.Node

	mu        sync.Mutex
	ports     map[string]*appPort
	factories map[string]func(*Kernel) error
	launched  map[string]bool
	pending   map[string][]pendingMsg
	resolved  map[string]string // kernel name -> addr cache
	closed    bool
}

type pendingMsg struct {
	src     string
	payload []byte
}

// maxPending bounds the per-application queue of messages received before
// the instance is up.
const maxPending = 65536

// Start launches a kernel listening on listenAddr and registers it with
// the name server at nsAddr.
func Start(name, listenAddr, nsAddr string) (*Kernel, error) {
	k := &Kernel{
		name:      name,
		nsAddr:    nsAddr,
		ports:     make(map[string]*appPort),
		factories: make(map[string]func(*Kernel) error),
		launched:  make(map[string]bool),
		pending:   make(map[string][]pendingMsg),
		resolved:  make(map[string]string),
	}
	node, err := tcptransport.Listen(name, listenAddr, k.resolve)
	if err != nil {
		return nil, err
	}
	k.node = node
	node.SetHandler(k.demux)
	if err := RegisterName(nsAddr, name, node.Addr()); err != nil {
		_ = node.Close()
		return nil, err
	}
	return k, nil
}

// Name returns the kernel's cluster-unique name.
func (k *Kernel) Name() string { return k.name }

// Addr returns the kernel's TCP address.
func (k *Kernel) Addr() string { return k.node.Addr() }

// Close unregisters and stops the kernel.
func (k *Kernel) Close() error {
	k.mu.Lock()
	if k.closed {
		k.mu.Unlock()
		return nil
	}
	k.closed = true
	k.mu.Unlock()
	_ = UnregisterName(k.nsAddr, k.name)
	return k.node.Close()
}

// resolve looks a peer kernel up through the name server, caching results
// (connections themselves are opened lazily by the TCP transport, matching
// the paper's delayed connection establishment).
func (k *Kernel) resolve(name string) (string, error) {
	k.mu.Lock()
	if addr, ok := k.resolved[name]; ok {
		k.mu.Unlock()
		return addr, nil
	}
	k.mu.Unlock()
	addr, err := LookupName(k.nsAddr, name)
	if err != nil {
		return "", err
	}
	k.mu.Lock()
	k.resolved[name] = addr
	k.mu.Unlock()
	return addr, nil
}

// RegisterApp installs a lazy-launch factory: the first message addressed
// to appName triggers factory(k), which must attach the application to this
// kernel (typically core.App.AttachTransport(k.Transport(appName))).
func (k *Kernel) RegisterApp(appName string, factory func(*Kernel) error) {
	k.mu.Lock()
	k.factories[appName] = factory
	k.mu.Unlock()
}

// Launched reports whether an application instance is active on this kernel.
func (k *Kernel) Launched(appName string) bool {
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.launched[appName] {
		return true
	}
	p, ok := k.ports[appName]
	return ok && p.hasHandler()
}

// Transport returns the application's attachment point on this kernel.
func (k *Kernel) Transport(appName string) transport.Transport {
	k.mu.Lock()
	defer k.mu.Unlock()
	if p, ok := k.ports[appName]; ok {
		return p
	}
	p := &appPort{kernel: k, app: appName}
	k.ports[appName] = p
	return p
}

// demux routes an incoming kernel frame ("appName" length-prefixed, then
// payload) to the right application, lazily launching it if needed.
func (k *Kernel) demux(src string, payload []byte) {
	appName, rest, err := splitAppFrame(payload)
	if err != nil {
		return // malformed frame: drop (a real kernel would log)
	}

	k.mu.Lock()
	p, ok := k.ports[appName]
	if ok && p.hasHandler() {
		k.mu.Unlock()
		p.deliver(src, rest)
		return
	}
	factory := k.factories[appName]
	alreadyLaunched := k.launched[appName]
	if factory != nil && !alreadyLaunched {
		k.launched[appName] = true
	}
	if len(k.pending[appName]) < maxPending {
		k.pending[appName] = append(k.pending[appName], pendingMsg{src: src, payload: rest})
	}
	k.mu.Unlock()

	if factory != nil && !alreadyLaunched {
		if err := factory(k); err != nil {
			k.mu.Lock()
			delete(k.pending, appName)
			k.mu.Unlock()
			return
		}
		// The factory attached the app; its SetHandler flushed the queue.
	}
}

// flushPending delivers queued messages once an app handler is installed.
func (k *Kernel) flushPending(appName string, p *appPort) {
	for {
		k.mu.Lock()
		queue := k.pending[appName]
		delete(k.pending, appName)
		k.mu.Unlock()
		if len(queue) == 0 {
			return
		}
		for _, m := range queue {
			p.deliver(m.src, m.payload)
		}
	}
}

// appPort is one application's transport endpoint multiplexed on a kernel.
type appPort struct {
	kernel *Kernel
	app    string

	mu      sync.Mutex
	handler transport.Handler
}

// Local implements transport.Transport: the node name is the kernel name.
func (p *appPort) Local() string { return p.kernel.name }

// SetHandler implements transport.Transport and releases queued messages.
func (p *appPort) SetHandler(h transport.Handler) {
	p.mu.Lock()
	p.handler = h
	p.mu.Unlock()
	p.kernel.flushPending(p.app, p)
}

func (p *appPort) hasHandler() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.handler != nil
}

func (p *appPort) deliver(src string, payload []byte) {
	p.mu.Lock()
	h := p.handler
	p.mu.Unlock()
	if h != nil {
		h(src, payload)
	}
}

// Send implements transport.Transport, framing the payload with the
// application name so the destination kernel can demultiplex (and launch).
func (p *appPort) Send(dst string, payload []byte) error {
	return p.kernel.node.Send(dst, makeAppFrame(p.app, payload))
}

// Close implements transport.Transport (the kernel endpoint stays up).
func (p *appPort) Close() error { return nil }

var _ transport.Transport = (*appPort)(nil)

func makeAppFrame(app string, payload []byte) []byte {
	b := make([]byte, 0, len(app)+len(payload)+4)
	b = binary.AppendUvarint(b, uint64(len(app)))
	b = append(b, app...)
	return append(b, payload...)
}

func splitAppFrame(b []byte) (string, []byte, error) {
	l, n := binary.Uvarint(b)
	if n <= 0 || uint64(len(b)-n) < l {
		return "", nil, fmt.Errorf("kernel: malformed app frame")
	}
	return string(b[n : n+int(l)]), b[n+int(l):], nil
}
