package kernel

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/transport/tcptransport"
)

// Kernel is one node daemon of the DPS runtime environment. It owns a
// single TCP endpoint and multiplexes any number of applications over it;
// each application attaches through Transport(appName), which yields a
// transport.Transport whose node name is the kernel name.
//
// Lazy launch: if a message arrives for an application that has no local
// instance but a registered factory, the kernel invokes the factory — the
// paper's "when an application thread posts a data object to a thread
// running on a node where there is no active instance of the application,
// the kernel on that node starts a new instance" — and queues messages
// until the instance installs its handler.
type Kernel struct {
	name   string
	nsAddr string
	node   *tcptransport.Node

	mu         sync.Mutex
	ports      map[string]*appPort
	factories  map[string]func(*Kernel) error
	launched   map[string]bool
	pending    map[string][]pendingMsg
	resolved   map[string]string // kernel name -> addr cache
	onRemap    func(RemapRequest) error
	onFailover func(peer string)
	onTrace    func(id uint64) []trace.Span
	traceWait  map[uint64]chan []trace.Span // collections in flight (CollectTrace)
	lastSeen   map[string]time.Time         // heartbeat: last pong (or discovery) per peer
	deadPeers  map[string]bool
	pinging    map[string]bool // one heartbeat send in flight per peer
	// Missed-pong backoff: pingSkip[peer] rounds are skipped before the
	// next probe of a silent peer, doubling (pingBackoff) up to a cap below
	// the death deadline — a restarting peer is probed gently, not hammered.
	pingSkip    map[string]int
	pingBackoff map[string]int
	hbStop      chan struct{}
	closed      bool
}

// controlApp is the reserved application name carrying kernel control
// messages (live-remap requests); user applications cannot collide with it
// because application names come from Go string literals and this one
// starts with a NUL byte.
const controlApp = "\x00dps-control"

// Control message kinds multiplexed on the controlApp frame.
const (
	ctlRemap byte = 1
	// Heartbeat protocol (StartHeartbeat): kernels ping their name-server
	// peers, answer with pongs, and broadcast a death notice when a peer
	// goes silent, so every kernel's OnFailover fires — typically feeding
	// the engine's FailNode to recover the dead kernel's threads.
	ctlPing  byte = 2
	ctlPong  byte = 3
	ctlDeath byte = 4
	// Trace collection (OnTrace / CollectTrace): a collector asks every
	// kernel for the spans it buffered of one sampled call and assembles
	// the cluster-wide timeline.
	ctlTraceReq  byte = 5
	ctlTraceResp byte = 6
)

// RemapRequest asks a kernel to live-remap a thread collection of one of
// its applications: the named collection is remapped to the placement
// given in the paper's mapping-string syntax via the migration protocol
// (quiesce, state shipment, token forwarding) while the application keeps
// serving calls.
type RemapRequest struct {
	// App names the application instance on the target kernel.
	App string
	// Collection names the thread collection to remap.
	Collection string
	// Spec is the new placement in mapping-string syntax ("kernA*2 kernB").
	Spec string
}

// OnRemap installs the kernel's handler for live-remap control messages.
// The handler typically resolves the application and calls
// Collection.Remap; errors are logged by the handler itself (control
// messages are fire-and-forget, like the paper's kernel commands).
func (k *Kernel) OnRemap(fn func(RemapRequest) error) {
	k.mu.Lock()
	k.onRemap = fn
	k.mu.Unlock()
}

// SendRemap delivers a live-remap control message to the named kernel,
// resolving it through the name server. It returns once the message has
// been handed to the kernel's TCP endpoint; the remap itself runs
// asynchronously on the target.
func SendRemap(nsAddr, kernelName string, req RemapRequest) error {
	addr, err := LookupName(nsAddr, kernelName)
	if err != nil {
		return err
	}
	resolve := func(name string) (string, error) {
		if name != kernelName {
			return "", fmt.Errorf("kernel: unexpected peer %q", name)
		}
		return addr, nil
	}
	client, err := tcptransport.Listen("remap-client", "127.0.0.1:0", resolve)
	if err != nil {
		return err
	}
	defer func() { _ = client.Close() }()
	body := appendControlRemap(nil, req)
	return client.Send(kernelName, makeAppFrame(controlApp, body))
}

func appendControlRemap(b []byte, req RemapRequest) []byte {
	b = append(b, ctlRemap)
	for _, s := range []string{req.App, req.Collection, req.Spec} {
		b = binary.AppendUvarint(b, uint64(len(s)))
		b = append(b, s...)
	}
	return b
}

func decodeControlRemap(b []byte) (RemapRequest, error) {
	var req RemapRequest
	for _, dst := range []*string{&req.App, &req.Collection, &req.Spec} {
		l, n := binary.Uvarint(b)
		if n <= 0 || uint64(len(b)-n) < l {
			return RemapRequest{}, fmt.Errorf("kernel: malformed remap request")
		}
		*dst = string(b[n : n+int(l)])
		b = b[n+int(l):]
	}
	return req, nil
}

// handleControl dispatches one kernel control message.
func (k *Kernel) handleControl(src string, payload []byte) {
	if len(payload) == 0 {
		return
	}
	kind, body := payload[0], payload[1:]
	switch kind {
	case ctlRemap:
		req, err := decodeControlRemap(body)
		if err != nil {
			return
		}
		k.mu.Lock()
		fn := k.onRemap
		k.mu.Unlock()
		if fn != nil {
			// Remap quiesces and waits for the handover; never block the
			// receive loop on it.
			go func() { _ = fn(req) }()
		}
	case ctlPing:
		// Answer so the prober can tell "alive" from "accepting but hung".
		_ = k.node.Send(src, makeAppFrame(controlApp, []byte{ctlPong}))
	case ctlPong:
		k.mu.Lock()
		if k.lastSeen != nil {
			k.lastSeen[src] = time.Now()
		}
		k.mu.Unlock()
	case ctlDeath:
		peer, _, err := splitAppFrame(body) // length-prefixed name reuse
		if err != nil {
			return
		}
		k.peerDied(peer)
	case ctlTraceReq:
		k.handleTraceReq(body)
	case ctlTraceResp:
		k.handleTraceResp(src, body)
	}
}

// OnFailover installs the handler invoked when a peer kernel is declared
// dead — by this kernel's own heartbeat or by a death notice broadcast
// from another kernel. The typical handler feeds the engine's recovery:
// app.FailNode(peer). It runs on its own goroutine.
func (k *Kernel) OnFailover(fn func(peer string)) {
	k.mu.Lock()
	k.onFailover = fn
	k.mu.Unlock()
}

// StartHeartbeat begins probing every kernel registered with the name
// server at the given interval. A peer that answers no ping for misses
// consecutive intervals is declared dead: the kernel fires its OnFailover
// handler and broadcasts a death notice so every other kernel converges.
// Newly registered kernels are picked up on the next round. Heartbeats
// stop when the kernel closes.
func (k *Kernel) StartHeartbeat(interval time.Duration, misses int) {
	if misses < 1 {
		misses = 3
	}
	k.mu.Lock()
	if k.hbStop != nil || k.closed {
		k.mu.Unlock()
		return
	}
	k.hbStop = make(chan struct{})
	k.lastSeen = make(map[string]time.Time)
	k.deadPeers = make(map[string]bool)
	stop := k.hbStop
	k.mu.Unlock()

	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				k.heartbeatRound(interval, misses)
			}
		}
	}()
}

// heartbeatRound pings the current name-server peers and declares the
// silent ones dead.
func (k *Kernel) heartbeatRound(interval time.Duration, misses int) {
	grace := time.Duration(misses) * interval
	names, err := ListNames(k.nsAddr)
	if err != nil {
		return
	}
	now := time.Now()
	var dead []string
	k.mu.Lock()
	for peer := range names {
		if peer == k.name || k.deadPeers[peer] {
			continue
		}
		if _, ok := k.lastSeen[peer]; !ok {
			k.lastSeen[peer] = now // discovery grace period
		}
		if now.Sub(k.lastSeen[peer]) > grace {
			dead = append(dead, peer)
		}
	}
	k.mu.Unlock()
	for _, peer := range dead {
		k.peerDied(peer)
	}
	// Ping after the age check, so a peer has a full round to answer. A
	// failing send is itself a strike: lastSeen simply stays old. Pings go
	// out concurrently, one in flight per peer — a peer whose TCP dial
	// blocks for seconds must not stall the round and starve the healthy
	// peers' pings into false-positive deaths. A peer that missed its last
	// pong is backed off (doubling rounds skipped, capped below the death
	// deadline) instead of hammered while it restarts.
	ping := makeAppFrame(controlApp, []byte{ctlPing})
	k.mu.Lock()
	if k.pinging == nil {
		k.pinging = make(map[string]bool)
	}
	if k.pingSkip == nil {
		k.pingSkip = make(map[string]int)
		k.pingBackoff = make(map[string]int)
	}
	peers := make([]string, 0, len(names))
	for peer := range names {
		if peer == k.name || k.deadPeers[peer] || k.pinging[peer] {
			continue
		}
		if now.Sub(k.lastSeen[peer]) <= interval {
			// Answering within a round: probe normally again.
			delete(k.pingSkip, peer)
			delete(k.pingBackoff, peer)
		} else if k.pingSkip[peer] > 0 {
			k.pingSkip[peer]--
			continue
		} else {
			k.pingBackoff[peer] = nextPingBackoff(k.pingBackoff[peer], misses)
			k.pingSkip[peer] = k.pingBackoff[peer]
		}
		k.pinging[peer] = true
		peers = append(peers, peer)
	}
	k.mu.Unlock()
	for _, peer := range peers {
		// Per-peer jitter staggers the probes inside the round, so a fleet
		// of kernels does not synchronize its pings into periodic bursts.
		go func(peer string, delay time.Duration) {
			time.Sleep(delay)
			_ = k.node.Send(peer, append([]byte(nil), ping...))
			k.mu.Lock()
			delete(k.pinging, peer)
			k.mu.Unlock()
		}(peer, heartbeatJitter(interval))
	}
}

// nextPingBackoff doubles the rounds skipped between probes of a silent
// peer, capped so the peer is still probed before the misses*interval
// death deadline can expire without a single probe in between.
func nextPingBackoff(prev, misses int) int {
	next := prev * 2
	if next == 0 {
		next = 1
	}
	max := misses - 1
	if max < 1 {
		max = 1
	}
	if next > max {
		next = max
	}
	return next
}

// heartbeatJitter draws a per-peer probe delay in [0, interval/4).
func heartbeatJitter(interval time.Duration) time.Duration {
	if interval <= 0 {
		return 0
	}
	return time.Duration(rand.Int63n(int64(interval / 4)))
}

// peerDied marks a peer dead once, fires the failover handler and
// broadcasts the death notice.
func (k *Kernel) peerDied(peer string) {
	k.mu.Lock()
	if k.deadPeers == nil {
		k.deadPeers = make(map[string]bool)
	}
	if k.deadPeers[peer] || peer == k.name {
		k.mu.Unlock()
		return
	}
	k.deadPeers[peer] = true
	fn := k.onFailover
	alive := make([]string, 0, len(k.lastSeen))
	for p := range k.lastSeen {
		if p != peer && !k.deadPeers[p] {
			alive = append(alive, p)
		}
	}
	k.mu.Unlock()
	if fn != nil {
		go fn(peer)
	}
	notice := makeAppFrame(controlApp, append([]byte{ctlDeath}, makeAppFrame(peer, nil)...))
	for _, p := range alive {
		_ = k.node.Send(p, append([]byte(nil), notice...))
	}
}

type pendingMsg struct {
	src     string
	payload []byte
}

// maxPending bounds the per-application queue of messages received before
// the instance is up.
const maxPending = 65536

// Start launches a kernel listening on listenAddr and registers it with
// the name server at nsAddr.
func Start(name, listenAddr, nsAddr string) (*Kernel, error) {
	k := &Kernel{
		name:      name,
		nsAddr:    nsAddr,
		ports:     make(map[string]*appPort),
		factories: make(map[string]func(*Kernel) error),
		launched:  make(map[string]bool),
		pending:   make(map[string][]pendingMsg),
		resolved:  make(map[string]string),
	}
	node, err := tcptransport.Listen(name, listenAddr, k.resolve)
	if err != nil {
		return nil, err
	}
	k.node = node
	node.SetHandler(k.demux)
	if err := RegisterName(nsAddr, name, node.Addr()); err != nil {
		_ = node.Close()
		return nil, err
	}
	return k, nil
}

// Name returns the kernel's cluster-unique name.
func (k *Kernel) Name() string { return k.name }

// Addr returns the kernel's TCP address.
func (k *Kernel) Addr() string { return k.node.Addr() }

// Close unregisters and stops the kernel.
func (k *Kernel) Close() error {
	k.mu.Lock()
	if k.closed {
		k.mu.Unlock()
		return nil
	}
	k.closed = true
	if k.hbStop != nil {
		close(k.hbStop)
		k.hbStop = nil
	}
	k.mu.Unlock()
	_ = UnregisterName(k.nsAddr, k.name)
	return k.node.Close()
}

// resolve looks a peer kernel up through the name server, caching results
// (connections themselves are opened lazily by the TCP transport, matching
// the paper's delayed connection establishment).
func (k *Kernel) resolve(name string) (string, error) {
	k.mu.Lock()
	if addr, ok := k.resolved[name]; ok {
		k.mu.Unlock()
		return addr, nil
	}
	k.mu.Unlock()
	addr, err := LookupName(k.nsAddr, name)
	if err != nil {
		return "", err
	}
	k.mu.Lock()
	k.resolved[name] = addr
	k.mu.Unlock()
	return addr, nil
}

// RegisterApp installs a lazy-launch factory: the first message addressed
// to appName triggers factory(k), which must attach the application to this
// kernel (typically core.App.AttachTransport(k.Transport(appName))).
func (k *Kernel) RegisterApp(appName string, factory func(*Kernel) error) {
	k.mu.Lock()
	k.factories[appName] = factory
	k.mu.Unlock()
}

// Launched reports whether an application instance is active on this kernel.
func (k *Kernel) Launched(appName string) bool {
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.launched[appName] {
		return true
	}
	p, ok := k.ports[appName]
	return ok && p.hasHandler()
}

// Transport returns the application's attachment point on this kernel.
func (k *Kernel) Transport(appName string) transport.Transport {
	k.mu.Lock()
	defer k.mu.Unlock()
	if p, ok := k.ports[appName]; ok {
		return p
	}
	p := &appPort{kernel: k, app: appName}
	k.ports[appName] = p
	return p
}

// demux routes an incoming kernel frame ("appName" length-prefixed, then
// payload) to the right application, lazily launching it if needed.
func (k *Kernel) demux(src string, payload []byte) {
	appName, rest, err := splitAppFrame(payload)
	if err != nil {
		return // malformed frame: drop (a real kernel would log)
	}
	if appName == controlApp {
		k.handleControl(src, rest)
		return
	}

	k.mu.Lock()
	p, ok := k.ports[appName]
	if ok && p.hasHandler() {
		k.mu.Unlock()
		p.deliver(src, rest)
		return
	}
	factory := k.factories[appName]
	alreadyLaunched := k.launched[appName]
	if factory != nil && !alreadyLaunched {
		k.launched[appName] = true
	}
	if len(k.pending[appName]) < maxPending {
		k.pending[appName] = append(k.pending[appName], pendingMsg{src: src, payload: rest})
	}
	k.mu.Unlock()

	if factory != nil && !alreadyLaunched {
		if err := factory(k); err != nil {
			k.mu.Lock()
			delete(k.pending, appName)
			k.mu.Unlock()
			return
		}
		// The factory attached the app; its SetHandler flushed the queue.
	}
}

// flushPending delivers queued messages once an app handler is installed.
func (k *Kernel) flushPending(appName string, p *appPort) {
	for {
		k.mu.Lock()
		queue := k.pending[appName]
		delete(k.pending, appName)
		k.mu.Unlock()
		if len(queue) == 0 {
			return
		}
		for _, m := range queue {
			p.deliver(m.src, m.payload)
		}
	}
}

// appPort is one application's transport endpoint multiplexed on a kernel.
type appPort struct {
	kernel *Kernel
	app    string

	mu      sync.Mutex
	handler transport.Handler
}

// Local implements transport.Transport: the node name is the kernel name.
func (p *appPort) Local() string { return p.kernel.name }

// SetHandler implements transport.Transport and releases queued messages.
func (p *appPort) SetHandler(h transport.Handler) {
	p.mu.Lock()
	p.handler = h
	p.mu.Unlock()
	p.kernel.flushPending(p.app, p)
}

func (p *appPort) hasHandler() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.handler != nil
}

func (p *appPort) deliver(src string, payload []byte) {
	p.mu.Lock()
	h := p.handler
	p.mu.Unlock()
	if h != nil {
		h(src, payload)
	}
}

// Send implements transport.Transport, framing the payload with the
// application name so the destination kernel can demultiplex (and launch).
func (p *appPort) Send(dst string, payload []byte) error {
	return p.kernel.node.Send(dst, makeAppFrame(p.app, payload))
}

// Close implements transport.Transport (the kernel endpoint stays up).
func (p *appPort) Close() error { return nil }

var _ transport.Transport = (*appPort)(nil)

func makeAppFrame(app string, payload []byte) []byte {
	b := make([]byte, 0, len(app)+len(payload)+4)
	b = binary.AppendUvarint(b, uint64(len(app)))
	b = append(b, app...)
	return append(b, payload...)
}

func splitAppFrame(b []byte) (string, []byte, error) {
	l, n := binary.Uvarint(b)
	if n <= 0 || uint64(len(b)-n) < l {
		return "", nil, fmt.Errorf("kernel: malformed app frame")
	}
	return string(b[n : n+int(l)]), b[n+int(l):], nil
}
