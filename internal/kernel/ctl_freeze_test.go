package kernel

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// frozenCtlKinds freezes the control-plane kind numbers. Like the engine's
// msg* kinds they are decoded by number by whatever version sits on the
// other end of a rolling restart; renumbering one desynchronizes the
// control plane exactly when it is needed most (remap and death handling).
var frozenCtlKinds = map[string]byte{
	"ctlRemap":     1,
	"ctlPing":      2,
	"ctlPong":      3,
	"ctlDeath":     4,
	"ctlTraceReq":  5,
	"ctlTraceResp": 6,
}

func TestCtlKindNumbersFrozen(t *testing.T) {
	got := map[string]byte{
		"ctlRemap":     ctlRemap,
		"ctlPing":      ctlPing,
		"ctlPong":      ctlPong,
		"ctlDeath":     ctlDeath,
		"ctlTraceReq":  ctlTraceReq,
		"ctlTraceResp": ctlTraceResp,
	}
	for name, want := range frozenCtlKinds {
		if got[name] != want {
			t.Errorf("%s = %d, frozen as %d: control kinds are decoded by number across versions; never renumber, add new kinds instead", name, got[name], want)
		}
	}
}

// TestCtlKindTableComplete parses kernel.go and fails on any ctl* constant
// missing from the frozen table.
func TestCtlKindTableComplete(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "kernel.go", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	found := 0
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.CONST {
			continue
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, name := range vs.Names {
				n := name.Name
				if !strings.HasPrefix(n, "ctl") || len(n) <= 3 || n[3] < 'A' || n[3] > 'Z' {
					continue
				}
				found++
				if _, ok := frozenCtlKinds[n]; !ok {
					t.Errorf("control kind %s is not in frozenCtlKinds: freeze its number before it ships", n)
				}
			}
		}
	}
	if found != len(frozenCtlKinds) {
		t.Errorf("kernel.go declares %d ctl* kinds, frozen table has %d: keep them in lockstep", found, len(frozenCtlKinds))
	}
}
