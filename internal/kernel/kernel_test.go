package kernel

import (
	"context"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/serial"
)

func startNS(t *testing.T) *NameServer {
	t.Helper()
	ns, err := StartNameServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ns.Close() })
	return ns
}

func TestNameServerRegisterLookup(t *testing.T) {
	ns := startNS(t)
	if err := RegisterName(ns.Addr(), "k1", "1.2.3.4:5"); err != nil {
		t.Fatal(err)
	}
	addr, err := LookupName(ns.Addr(), "k1")
	if err != nil {
		t.Fatal(err)
	}
	if addr != "1.2.3.4:5" {
		t.Fatalf("got %q", addr)
	}
	if _, err := LookupName(ns.Addr(), "ghost"); err == nil {
		t.Fatal("expected lookup failure")
	}
	all, err := ListNames(ns.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if all["k1"] != "1.2.3.4:5" {
		t.Fatalf("list: %v", all)
	}
	if err := UnregisterName(ns.Addr(), "k1"); err != nil {
		t.Fatal(err)
	}
	if _, err := LookupName(ns.Addr(), "k1"); err == nil {
		t.Fatal("expected lookup failure after DEL")
	}
}

func startKernel(t *testing.T, ns *NameServer, name string) *Kernel {
	t.Helper()
	k, err := Start(name, "127.0.0.1:0", ns.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = k.Close() })
	return k
}

func TestKernelTransportExchange(t *testing.T) {
	ns := startNS(t)
	k1 := startKernel(t, ns, "kA")
	k2 := startKernel(t, ns, "kB")

	t1 := k1.Transport("app")
	t2 := k2.Transport("app")
	got := make(chan string, 1)
	t2.SetHandler(func(src string, payload []byte) { got <- src + ":" + string(payload) })
	t1.SetHandler(func(src string, payload []byte) {})
	if err := t1.Send("kB", []byte("hello kernels")); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-got:
		if m != "kA:hello kernels" {
			t.Fatalf("got %q", m)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("timeout")
	}
}

func TestKernelMultiplexesApps(t *testing.T) {
	ns := startNS(t)
	k1 := startKernel(t, ns, "kA")
	k2 := startKernel(t, ns, "kB")

	a1, b1 := k1.Transport("app1"), k1.Transport("app2")
	a2, b2 := k2.Transport("app1"), k2.Transport("app2")
	gotA := make(chan string, 1)
	gotB := make(chan string, 1)
	a2.SetHandler(func(src string, p []byte) { gotA <- string(p) })
	b2.SetHandler(func(src string, p []byte) { gotB <- string(p) })
	a1.SetHandler(func(string, []byte) {})
	b1.SetHandler(func(string, []byte) {})

	if err := a1.Send("kB", []byte("for app1")); err != nil {
		t.Fatal(err)
	}
	if err := b1.Send("kB", []byte("for app2")); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-gotA:
		if m != "for app1" {
			t.Fatalf("app1 got %q", m)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("timeout app1")
	}
	select {
	case m := <-gotB:
		if m != "for app2" {
			t.Fatalf("app2 got %q", m)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("timeout app2")
	}
}

func TestLazyApplicationLaunch(t *testing.T) {
	ns := startNS(t)
	k1 := startKernel(t, ns, "kA")
	k2 := startKernel(t, ns, "kB")

	var launches atomic.Int32
	received := make(chan string, 8)
	k2.RegisterApp("lazy", func(k *Kernel) error {
		launches.Add(1)
		tr := k.Transport("lazy")
		tr.SetHandler(func(src string, p []byte) { received <- string(p) })
		return nil
	})
	if k2.Launched("lazy") {
		t.Fatal("app reported launched before any message")
	}

	sender := k1.Transport("lazy")
	sender.SetHandler(func(string, []byte) {})
	for i := 0; i < 3; i++ {
		if err := sender.Send("kB", []byte(fmt.Sprintf("m%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		select {
		case m := <-received:
			if !strings.HasPrefix(m, "m") {
				t.Fatalf("got %q", m)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("timeout waiting for message %d", i)
		}
	}
	if got := launches.Load(); got != 1 {
		t.Fatalf("factory ran %d times, want 1", got)
	}
	if !k2.Launched("lazy") {
		t.Fatal("app not reported launched")
	}
}

// DPS application tokens for the end-to-end kernel test.
type kReq struct {
	Text string
}

type kRes struct {
	Text string
}

var (
	_ = serial.MustRegister[kReq]()
	_ = serial.MustRegister[kRes]()
)

// TestDPSAppOverKernels runs a real DPS flow graph whose nodes are two
// kernels communicating over genuine TCP sockets resolved via the name
// server.
func TestDPSAppOverKernels(t *testing.T) {
	ns := startNS(t)
	k1 := startKernel(t, ns, "kern0")
	k2 := startKernel(t, ns, "kern1")

	app := core.NewApp(core.Config{})
	defer app.Close()
	if _, err := app.AttachTransport(k1.Transport("upper")); err != nil {
		t.Fatal(err)
	}
	if _, err := app.AttachTransport(k2.Transport("upper")); err != nil {
		t.Fatal(err)
	}

	main := core.MustCollection[struct{}](app, "main")
	workers := core.MustCollection[struct{}](app, "workers")
	if err := main.Map("kern0"); err != nil {
		t.Fatal(err)
	}
	if err := workers.Map("kern1*2"); err != nil {
		t.Fatal(err)
	}

	split := core.Split[*kReq, *kReq]("ksplit",
		func(c *core.Ctx, in *kReq, post func(*kReq)) {
			for _, word := range strings.Fields(in.Text) {
				post(&kReq{Text: word})
			}
		})
	upper := core.Leaf[*kReq, *kRes]("kupper",
		func(c *core.Ctx, in *kReq) *kRes { return &kRes{Text: strings.ToUpper(in.Text)} })
	join := core.Merge[*kRes, *kRes]("kjoin",
		func(c *core.Ctx, first *kRes, next func() (*kRes, bool)) *kRes {
			words := []string{}
			for in, ok := first, true; ok; in, ok = next() {
				words = append(words, in.Text)
			}
			return &kRes{Text: fmt.Sprint(len(words))}
		})
	g, err := app.NewFlowgraph("kupper", core.Path(
		core.NewNode(split, main, core.MainRoute()),
		core.NewNode(upper, workers, core.RoundRobin()),
		core.NewNode(join, main, core.MainRoute()),
	))
	if err != nil {
		t.Fatal(err)
	}
	out, err := g.CallTimeout(app.MasterNode(), &kReq{Text: "tokens over real tcp kernels"}, 20*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got := out.(*kRes).Text; got != "5" {
		t.Fatalf("got %q words", got)
	}
}

func TestServiceRegistry(t *testing.T) {
	app, err := core.NewLocalApp(core.Config{}, "n0")
	if err != nil {
		t.Fatal(err)
	}
	defer app.Close()
	tc := core.MustCollection[struct{}](app, "tc")
	if err := tc.Map("n0"); err != nil {
		t.Fatal(err)
	}
	leaf := core.Leaf[*kReq, *kRes]("echo",
		func(c *core.Ctx, in *kReq) *kRes { return &kRes{Text: in.Text + "!"} })
	g, err := app.NewFlowgraph("echo", core.Path(core.NewNode(leaf, tc, core.MainRoute())))
	if err != nil {
		t.Fatal(err)
	}

	reg := NewServiceRegistry()
	if err := reg.Expose("echo-service", g); err != nil {
		t.Fatal(err)
	}
	if err := reg.Expose("echo-service", g); err == nil {
		t.Fatal("expected duplicate expose error")
	}
	out, err := reg.Call(context.Background(), "echo-service", &kReq{Text: "ping"})
	if err != nil {
		t.Fatal(err)
	}
	if got := out.(*kRes).Text; got != "ping!" {
		t.Fatalf("got %q", got)
	}
	if _, err := reg.Call(context.Background(), "nope", &kReq{}); err == nil {
		t.Fatal("expected unknown service error")
	}
	if op, err := ServiceCallOp(reg, "call-echo", "echo-service"); err != nil || op == nil {
		t.Fatalf("ServiceCallOp: %v", err)
	}
	if _, err := ServiceCallOp(reg, "x", "nope"); err == nil {
		t.Fatal("expected unknown service error")
	}
	if n := reg.Names(); len(n) != 1 || n[0] != "echo-service" {
		t.Fatalf("Names = %v", n)
	}
	reg.Withdraw("echo-service")
	if _, ok := reg.Lookup("echo-service"); ok {
		t.Fatal("service not withdrawn")
	}
}

// TestRemapControlMessage drives a live remap over the kernel control
// plane: a client kernel-less process sends a RemapRequest through the
// name server, and the serving kernel's handler migrates the collection
// while the application keeps answering calls.
func TestRemapControlMessage(t *testing.T) {
	ns, err := StartNameServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = ns.Close() }()
	k1, err := Start("ctl0", "127.0.0.1:0", ns.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = k1.Close() }()
	k2, err := Start("ctl1", "127.0.0.1:0", ns.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = k2.Close() }()

	app := core.NewApp(core.Config{})
	defer app.Close()
	if _, err := app.AttachTransport(k1.Transport("ctlapp")); err != nil {
		t.Fatal(err)
	}
	if _, err := app.AttachTransport(k2.Transport("ctlapp")); err != nil {
		t.Fatal(err)
	}
	work := core.MustCollection[struct{}](app, "ctl-work")
	if err := work.Map("ctl0"); err != nil {
		t.Fatal(err)
	}
	echo := core.Leaf[*kReq, *kReq]("ctl-echo",
		func(c *core.Ctx, in *kReq) *kReq { return in })
	g, err := app.NewFlowgraph("ctl-echo", core.Path(core.NewNode(echo, work, core.MainRoute())))
	if err != nil {
		t.Fatal(err)
	}

	remapped := make(chan error, 1)
	k1.OnRemap(func(req RemapRequest) error {
		if req.App != "ctlapp" {
			remapped <- fmt.Errorf("unexpected app %q", req.App)
			return nil
		}
		tc, ok := app.Collection(req.Collection)
		if !ok {
			remapped <- fmt.Errorf("unknown collection %q", req.Collection)
			return nil
		}
		err := tc.Remap(context.Background(), req.Spec)
		remapped <- err
		return err
	})

	if _, err := g.Call(context.Background(), &kReq{Text: "x"}); err != nil {
		t.Fatal(err)
	}
	if err := SendRemap(ns.Addr(), "ctl0", RemapRequest{App: "ctlapp", Collection: "ctl-work", Spec: "ctl1"}); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-remapped:
		if err != nil {
			t.Fatalf("remap handler: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("remap control message never arrived")
	}
	if got, _ := work.NodeOf(0); got != "ctl1" {
		t.Fatalf("collection on %q after control remap", got)
	}
	if _, err := g.Call(context.Background(), &kReq{Text: "y"}); err != nil {
		t.Fatalf("call after control remap: %v", err)
	}
}

func TestPingBackoffDoublesAndCaps(t *testing.T) {
	// 1 -> 2 -> 4, capped at misses-1 so a silent peer is always probed
	// again before the misses*interval death deadline.
	b := 0
	var got []int
	for i := 0; i < 5; i++ {
		b = nextPingBackoff(b, 5)
		got = append(got, b)
	}
	want := []int{1, 2, 4, 4, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("backoff sequence %v, want %v", got, want)
		}
	}
	// Degenerate configs still probe every other round at worst.
	if nextPingBackoff(0, 1) != 1 || nextPingBackoff(8, 1) != 1 {
		t.Fatalf("misses=1 must cap backoff at 1")
	}
}

func TestHeartbeatJitterBounded(t *testing.T) {
	const interval = 100 * time.Millisecond
	for i := 0; i < 1000; i++ {
		d := heartbeatJitter(interval)
		if d < 0 || d >= interval/4 {
			t.Fatalf("jitter %v outside [0, %v)", d, interval/4)
		}
	}
	if heartbeatJitter(0) != 0 {
		t.Fatalf("zero interval must yield zero jitter")
	}
}
