package kernel

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/trace"
	"repro/internal/transport/tcptransport"
)

// This file is the kernel half of the trace collector: a sampled call's
// spans are buffered per process (core keeps a ring per node runtime), so
// assembling the call's timeline in a multi-kernel deployment means asking
// every kernel for its slice. The protocol rides the controlApp lane like
// remap requests: ctlTraceReq carries the trace ID plus the collector's
// reply coordinates (the collector may be an ephemeral client that is not in
// the name server, so the request seeds the responder's resolve cache), and
// ctlTraceResp carries the responder's spans as JSON. Collection is
// best-effort — a kernel that is down simply contributes nothing, and the
// partial timeline still names every span's node.

// OnTrace installs the hook that serves trace-collection requests: given a
// trace ID it returns the spans this kernel's application(s) buffered for
// it. A serving process typically wires it to dps.App.TraceSpans.
func (k *Kernel) OnTrace(fn func(id uint64) []trace.Span) {
	k.mu.Lock()
	k.onTrace = fn
	k.mu.Unlock()
}

func appendControlTraceReq(b []byte, id uint64, replyName, replyAddr string) []byte {
	b = append(b, ctlTraceReq)
	b = binary.AppendUvarint(b, id)
	for _, s := range []string{replyName, replyAddr} {
		b = binary.AppendUvarint(b, uint64(len(s)))
		b = append(b, s...)
	}
	return b
}

func decodeControlTraceReq(b []byte) (id uint64, replyName, replyAddr string, err error) {
	id, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, "", "", fmt.Errorf("kernel: malformed trace request")
	}
	b = b[n:]
	for _, dst := range []*string{&replyName, &replyAddr} {
		l, n := binary.Uvarint(b)
		if n <= 0 || uint64(len(b)-n) < l {
			return 0, "", "", fmt.Errorf("kernel: malformed trace request")
		}
		*dst = string(b[n : n+int(l)])
		b = b[n+int(l):]
	}
	return id, replyName, replyAddr, nil
}

// handleTraceReq serves one collection request: look the spans up through
// the OnTrace hook and send them back as JSON. The reply goes out on its own
// goroutine — the hook walks span rings and must not block the receive loop.
func (k *Kernel) handleTraceReq(body []byte) {
	id, replyName, replyAddr, err := decodeControlTraceReq(body)
	if err != nil {
		return
	}
	k.mu.Lock()
	k.resolved[replyName] = replyAddr
	fn := k.onTrace
	k.mu.Unlock()
	go func() {
		var spans []trace.Span
		if fn != nil {
			spans = fn(id)
		}
		data, err := json.Marshal(spans)
		if err != nil {
			return
		}
		resp := binary.AppendUvarint([]byte{ctlTraceResp}, id)
		resp = append(resp, data...)
		_ = k.node.Send(replyName, makeAppFrame(controlApp, resp))
	}()
}

// handleTraceResp feeds a peer's spans to the collection this kernel has in
// flight for that trace ID (CollectTrace), if any.
func (k *Kernel) handleTraceResp(src string, body []byte) {
	_ = src
	id, n := binary.Uvarint(body)
	if n <= 0 {
		return
	}
	var spans []trace.Span
	if err := json.Unmarshal(body[n:], &spans); err != nil {
		return
	}
	k.mu.Lock()
	ch := k.traceWait[id]
	k.mu.Unlock()
	if ch != nil {
		select {
		case ch <- spans:
		default: // collection already gave up
		}
	}
}

// CollectTrace assembles the cluster-wide timeline of one sampled call:
// this kernel's own spans (OnTrace) plus whatever every name-server peer
// answers within the timeout, sorted into timeline order. Peers that are
// down or slow contribute nothing — a partial timeline is returned rather
// than an error.
func (k *Kernel) CollectTrace(id uint64, timeout time.Duration) ([]trace.Span, error) {
	names, err := ListNames(k.nsAddr)
	if err != nil {
		return nil, err
	}
	k.mu.Lock()
	fn := k.onTrace
	if k.traceWait == nil {
		k.traceWait = make(map[uint64]chan []trace.Span)
	}
	if _, busy := k.traceWait[id]; busy {
		k.mu.Unlock()
		return nil, fmt.Errorf("kernel: trace %d collection already in flight", id)
	}
	ch := make(chan []trace.Span, len(names))
	k.traceWait[id] = ch
	dead := k.deadPeers
	k.mu.Unlock()
	defer func() {
		k.mu.Lock()
		delete(k.traceWait, id)
		k.mu.Unlock()
	}()

	var out []trace.Span
	if fn != nil {
		out = append(out, fn(id)...)
	}
	req := appendControlTraceReq(nil, id, k.name, k.node.Addr())
	want := 0
	for peer := range names {
		if peer == k.name || dead[peer] {
			continue
		}
		if err := k.node.Send(peer, makeAppFrame(controlApp, req)); err == nil {
			want++
		}
	}
	deadline := time.After(timeout)
wait:
	for i := 0; i < want; i++ {
		select {
		case spans := <-ch:
			out = append(out, spans...)
		case <-deadline:
			break wait
		}
	}
	trace.SortSpans(out)
	return out, nil
}

// CollectTrace assembles the timeline of one sampled call from outside the
// cluster: an ephemeral client (not registered with the name server — its
// coordinates travel in the requests) queries every registered kernel and
// merges the answers, waiting at most timeout for the slowest. It backs
// `dps-kernel -trace-dump`.
func CollectTrace(nsAddr string, id uint64, timeout time.Duration) ([]trace.Span, error) {
	names, err := ListNames(nsAddr)
	if err != nil {
		return nil, err
	}
	resolve := func(name string) (string, error) {
		if addr, ok := names[name]; ok {
			return addr, nil
		}
		return "", fmt.Errorf("kernel: unknown peer %q", name)
	}
	clientName := fmt.Sprintf("trace-client-%d", id)
	client, err := tcptransport.Listen(clientName, "127.0.0.1:0", resolve)
	if err != nil {
		return nil, err
	}
	defer func() { _ = client.Close() }()
	ch := make(chan []trace.Span, len(names))
	client.SetHandler(func(src string, payload []byte) {
		app, rest, err := splitAppFrame(payload)
		if err != nil || app != controlApp || len(rest) == 0 || rest[0] != ctlTraceResp {
			return
		}
		rid, n := binary.Uvarint(rest[1:])
		if n <= 0 || rid != id {
			return
		}
		var spans []trace.Span
		if json.Unmarshal(rest[1+n:], &spans) != nil {
			return
		}
		ch <- spans
	})
	req := appendControlTraceReq(nil, id, clientName, client.Addr())
	want := 0
	for peer := range names {
		if err := client.Send(peer, makeAppFrame(controlApp, req)); err == nil {
			want++
		}
	}
	var out []trace.Span
	deadline := time.After(timeout)
wait:
	for i := 0; i < want; i++ {
		select {
		case spans := <-ch:
			out = append(out, spans...)
		case <-deadline:
			break wait
		}
	}
	trace.SortSpans(out)
	return out, nil
}
