package life

import (
	"testing"
	"testing/quick"
)

// glider placed away from edges; after 4 steps it moves one cell
// diagonally.
func gliderWorld(size int) *World {
	w := NewWorld(size, size)
	// Standard glider.
	w.Set(1, 2, 1)
	w.Set(2, 3, 1)
	w.Set(3, 1, 1)
	w.Set(3, 2, 1)
	w.Set(3, 3, 1)
	return w
}

func TestBlinkerOscillates(t *testing.T) {
	w := NewWorld(5, 5)
	w.Set(2, 1, 1)
	w.Set(2, 2, 1)
	w.Set(2, 3, 1)
	next := w.Step()
	want := NewWorld(5, 5)
	want.Set(1, 2, 1)
	want.Set(2, 2, 1)
	want.Set(3, 2, 1)
	if !next.Equal(want) {
		t.Fatal("blinker did not rotate")
	}
	if !next.Step().Equal(w) {
		t.Fatal("blinker period is not 2")
	}
}

func TestBlockIsStill(t *testing.T) {
	w := NewWorld(4, 4)
	w.Set(1, 1, 1)
	w.Set(1, 2, 1)
	w.Set(2, 1, 1)
	w.Set(2, 2, 1)
	if !w.Step().Equal(w) {
		t.Fatal("block is not a still life")
	}
}

func TestGliderTranslates(t *testing.T) {
	w := gliderWorld(10)
	moved := w.StepN(4)
	// After 4 generations the glider pattern shifts by (1, 1).
	want := NewWorld(10, 10)
	for r := 0; r < 10; r++ {
		for c := 0; c < 10; c++ {
			if w.At(r, c) == 1 {
				want.Set(r+1, c+1, 1)
			}
		}
	}
	if !moved.Equal(want) {
		t.Fatal("glider did not translate by (1,1) after 4 steps")
	}
}

func TestToroidalWrap(t *testing.T) {
	// A blinker crossing the top edge must wrap to the bottom.
	w := NewWorld(5, 5)
	w.Set(0, 1, 1)
	w.Set(0, 2, 1)
	w.Set(0, 3, 1)
	next := w.Step()
	if next.At(4, 2) != 1 || next.At(0, 2) != 1 || next.At(1, 2) != 1 {
		t.Fatalf("vertical wrap broken: %v", next.Cells)
	}
}

func TestPopulationAndClone(t *testing.T) {
	w := RandomWorld(20, 30, 0.3, 42)
	c := w.Clone()
	if !w.Equal(c) {
		t.Fatal("clone differs")
	}
	c.Set(0, 0, 1-c.At(0, 0))
	if w.Equal(c) {
		t.Fatal("clone shares storage")
	}
	if w.Population() == 0 || w.Population() == 20*30 {
		t.Fatalf("implausible population %d", w.Population())
	}
}

func TestRandomWorldDeterministic(t *testing.T) {
	a := RandomWorld(16, 16, 0.5, 7)
	b := RandomWorld(16, 16, 0.5, 7)
	if !a.Equal(b) {
		t.Fatal("same seed produced different worlds")
	}
}

func TestBandBounds(t *testing.T) {
	b := BandBounds(10, 3)
	if len(b) != 4 || b[0] != 0 || b[3] != 10 {
		t.Fatalf("bounds %v", b)
	}
	total := 0
	for i := 0; i < 3; i++ {
		if b[i+1] <= b[i] {
			t.Fatalf("empty band in %v", b)
		}
		total += b[i+1] - b[i]
	}
	if total != 10 {
		t.Fatalf("bands cover %d rows", total)
	}
}

// TestBandStepMatchesGlobal: decomposing into bands, exchanging borders and
// stepping band-wise must equal the global step — the invariant both DPS
// life graphs rely on.
func TestBandStepMatchesGlobal(t *testing.T) {
	for _, bands := range []int{1, 2, 3, 4, 7} {
		w := RandomWorld(24, 21, 0.35, int64(bands))
		want := w.Step()

		bounds := BandBounds(w.Height, bands)
		parts := make([]*Band, bands)
		for i := 0; i < bands; i++ {
			parts[i] = ExtractBand(w, bounds[i], bounds[i+1])
		}
		// Border exchange (toroidal neighbours).
		for i := 0; i < bands; i++ {
			up := parts[(i-1+bands)%bands]
			dn := parts[(i+1)%bands]
			parts[i].UpBorder = up.LastRow()
			parts[i].DnBorder = dn.FirstRow()
		}
		next := make([]*Band, bands)
		for i := 0; i < bands; i++ {
			next[i] = parts[i].NewShadow()
			parts[i].StepAll(next[i])
		}
		got, err := StitchBands(w.Width, w.Height, next)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatalf("bands=%d: band-wise step differs from global step", bands)
		}
	}
}

// TestInteriorThenEdges: computing the interior before borders arrive then
// the edges afterwards (the improved graph's overlap trick) must also match.
func TestInteriorThenEdges(t *testing.T) {
	w := RandomWorld(30, 24, 0.4, 5)
	want := w.Step()
	const bands = 3
	bounds := BandBounds(w.Height, bands)
	parts := make([]*Band, bands)
	next := make([]*Band, bands)
	for i := 0; i < bands; i++ {
		parts[i] = ExtractBand(w, bounds[i], bounds[i+1])
		next[i] = parts[i].NewShadow()
		parts[i].StepInterior(next[i]) // before borders exist
	}
	for i := 0; i < bands; i++ {
		parts[i].UpBorder = parts[(i-1+bands)%bands].LastRow()
		parts[i].DnBorder = parts[(i+1)%bands].FirstRow()
		parts[i].StepEdges(next[i])
	}
	got, err := StitchBands(w.Width, w.Height, next)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatal("interior-then-edges differs from global step")
	}
}

func TestSingleRowBands(t *testing.T) {
	w := RandomWorld(12, 4, 0.5, 9)
	want := w.Step()
	const bands = 4 // every band is a single row
	bounds := BandBounds(w.Height, bands)
	parts := make([]*Band, bands)
	next := make([]*Band, bands)
	for i := 0; i < bands; i++ {
		parts[i] = ExtractBand(w, bounds[i], bounds[i+1])
		next[i] = parts[i].NewShadow()
	}
	for i := 0; i < bands; i++ {
		parts[i].UpBorder = parts[(i-1+bands)%bands].LastRow()
		parts[i].DnBorder = parts[(i+1)%bands].FirstRow()
		parts[i].StepAll(next[i])
	}
	got, err := StitchBands(w.Width, w.Height, next)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatal("single-row bands differ from global step")
	}
}

func TestStitchErrors(t *testing.T) {
	w := RandomWorld(8, 8, 0.5, 1)
	b := ExtractBand(w, 0, 4)
	if _, err := StitchBands(8, 8, []*Band{b}); err == nil {
		t.Fatal("expected coverage error")
	}
}

func TestSubGridWraps(t *testing.T) {
	w := NewWorld(5, 5)
	w.Set(0, 0, 1)
	w.Set(4, 4, 1)
	g := w.SubGrid(4, 4, 2, 2)
	// rows 4,0 x cols 4,0 → [ (4,4)=1 (4,0)=0 ; (0,4)=0 (0,0)=1 ]
	if g[0] != 1 || g[1] != 0 || g[2] != 0 || g[3] != 1 {
		t.Fatalf("SubGrid wrap wrong: %v", g)
	}
}

// Property: population is conserved by permutation-free identities — here
// we check instead two model-level invariants across random worlds: a step
// of the empty world stays empty, and stepping is deterministic.
func TestQuickStepDeterministicAndEmptyStable(t *testing.T) {
	f := func(seed int64, wq, hq uint8) bool {
		wd := int(wq%30) + 3
		ht := int(hq%30) + 3
		w := RandomWorld(wd, ht, 0.4, seed)
		if !w.Step().Equal(w.Step()) {
			return false
		}
		empty := NewWorld(wd, ht)
		return empty.Step().Population() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkStep400(b *testing.B) {
	w := RandomWorld(400, 400, 0.3, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w = w.Step()
	}
}
