// Package life implements Conway's Game of Life — the paper's §5 example,
// chosen because "it exhibits a parallel program structure similar to many
// iterative finite difference computational problems". The package provides
// the world data structure, a reference sequential stepper, and the
// band-decomposition helpers (border extraction and stitching) the DPS
// graphs build on.
//
// The world is a flat torus: rows and columns wrap around, so every cell
// has eight neighbours and band decomposition needs border exchange between
// vertically adjacent bands (including the wrap-around pair).
package life

import (
	"fmt"
	"math/rand"
)

// World is a Height x Width grid of cells (1 = alive).
type World struct {
	Width, Height int
	Cells         []uint8
}

// NewWorld allocates a dead world.
func NewWorld(width, height int) *World {
	if width <= 0 || height <= 0 {
		panic(fmt.Sprintf("life: bad world size %dx%d", width, height))
	}
	return &World{Width: width, Height: height, Cells: make([]uint8, width*height)}
}

// RandomWorld fills a world deterministically with the given live-cell
// density in [0, 1].
func RandomWorld(width, height int, density float64, seed int64) *World {
	w := NewWorld(width, height)
	rng := rand.New(rand.NewSource(seed))
	for i := range w.Cells {
		if rng.Float64() < density {
			w.Cells[i] = 1
		}
	}
	return w
}

// At returns the cell at (row, col) without wrapping (caller ensures bounds).
func (w *World) At(row, col int) uint8 { return w.Cells[row*w.Width+col] }

// Set assigns the cell at (row, col).
func (w *World) Set(row, col int, v uint8) { w.Cells[row*w.Width+col] = v }

// Row returns the slice aliasing row r.
func (w *World) Row(r int) []uint8 { return w.Cells[r*w.Width : (r+1)*w.Width] }

// Clone deep-copies the world.
func (w *World) Clone() *World {
	out := NewWorld(w.Width, w.Height)
	copy(out.Cells, w.Cells)
	return out
}

// Equal reports cell-wise equality.
func (w *World) Equal(o *World) bool {
	if w.Width != o.Width || w.Height != o.Height {
		return false
	}
	for i := range w.Cells {
		if w.Cells[i] != o.Cells[i] {
			return false
		}
	}
	return true
}

// Population counts live cells.
func (w *World) Population() int {
	n := 0
	for _, c := range w.Cells {
		if c != 0 {
			n++
		}
	}
	return n
}

// Step computes one generation into a new world (toroidal wrap).
func (w *World) Step() *World {
	out := NewWorld(w.Width, w.Height)
	for r := 0; r < w.Height; r++ {
		up := w.Row((r - 1 + w.Height) % w.Height)
		mid := w.Row(r)
		down := w.Row((r + 1) % w.Height)
		stepRowInto(up, mid, down, out.Row(r))
	}
	return out
}

// StepN advances n generations.
func (w *World) StepN(n int) *World {
	cur := w
	for i := 0; i < n; i++ {
		cur = cur.Step()
	}
	return cur
}

// stepRowInto computes the next state of one row given its upper and lower
// neighbour rows (same width, toroidal column wrap).
func stepRowInto(up, mid, down, dst []uint8) {
	width := len(mid)
	for c := 0; c < width; c++ {
		l := (c - 1 + width) % width
		r := (c + 1) % width
		n := int(up[l]) + int(up[c]) + int(up[r]) +
			int(mid[l]) + int(mid[r]) +
			int(down[l]) + int(down[c]) + int(down[r])
		if mid[c] != 0 {
			if n == 2 || n == 3 {
				dst[c] = 1
			} else {
				dst[c] = 0
			}
		} else if n == 3 {
			dst[c] = 1
		} else {
			dst[c] = 0
		}
	}
}

// Band is a horizontal slice of the world held by one worker thread, with
// space for the borders received from the neighbouring bands.
type Band struct {
	Width    int
	Top      int // first world row of the band
	Rows     [][]uint8
	UpBorder []uint8 // last row of the band above (wraps)
	DnBorder []uint8 // first row of the band below (wraps)
}

// BandBounds partitions height rows into n contiguous bands as evenly as
// possible, returning the start row of each band plus a final sentinel.
func BandBounds(height, n int) []int {
	if n <= 0 || height < n {
		panic(fmt.Sprintf("life: cannot split %d rows into %d bands", height, n))
	}
	bounds := make([]int, n+1)
	for i := 0; i <= n; i++ {
		bounds[i] = i * height / n
	}
	return bounds
}

// ExtractBand copies rows [r0, r1) of the world into a Band.
func ExtractBand(w *World, r0, r1 int) *Band {
	b := &Band{Width: w.Width, Top: r0, Rows: make([][]uint8, r1-r0)}
	for i := range b.Rows {
		b.Rows[i] = append([]uint8(nil), w.Row(r0+i)...)
	}
	return b
}

// FirstRow returns a copy of the band's first row (sent to the band above).
func (b *Band) FirstRow() []uint8 { return append([]uint8(nil), b.Rows[0]...) }

// LastRow returns a copy of the band's last row (sent to the band below).
func (b *Band) LastRow() []uint8 { return append([]uint8(nil), b.Rows[len(b.Rows)-1]...) }

// StepInterior computes the next state of the band's interior rows (those
// not touching a border) into dst, which must have the same shape. The
// first and last rows are left untouched; they need the borders.
// It returns the number of rows computed (0 when the band has fewer than 3
// rows).
func (b *Band) StepInterior(dst *Band) int {
	n := 0
	for i := 1; i < len(b.Rows)-1; i++ {
		stepRowInto(b.Rows[i-1], b.Rows[i], b.Rows[i+1], dst.Rows[i])
		n++
	}
	return n
}

// StepEdges computes the band's first and last rows using the exchanged
// borders; call after UpBorder and DnBorder are set.
func (b *Band) StepEdges(dst *Band) {
	if b.UpBorder == nil || b.DnBorder == nil {
		panic("life: StepEdges before borders were exchanged")
	}
	last := len(b.Rows) - 1
	if last == 0 {
		// Single-row band: both neighbours are the borders.
		stepRowInto(b.UpBorder, b.Rows[0], b.DnBorder, dst.Rows[0])
		return
	}
	stepRowInto(b.UpBorder, b.Rows[0], b.Rows[1], dst.Rows[0])
	stepRowInto(b.Rows[last-1], b.Rows[last], b.DnBorder, dst.Rows[last])
}

// StepAll computes the whole band (interior + edges) into dst; borders must
// be present. Used by the "simple" flow graph where computation starts only
// after the global border exchange.
func (b *Band) StepAll(dst *Band) {
	b.StepInterior(dst)
	b.StepEdges(dst)
}

// NewShadow allocates a band with the same shape as b (for the next
// generation's cells).
func (b *Band) NewShadow() *Band {
	out := &Band{Width: b.Width, Top: b.Top, Rows: make([][]uint8, len(b.Rows))}
	for i := range out.Rows {
		out.Rows[i] = make([]uint8, b.Width)
	}
	return out
}

// StitchBands reassembles a world from bands (which must tile it exactly).
func StitchBands(width, height int, bands []*Band) (*World, error) {
	w := NewWorld(width, height)
	covered := 0
	for _, b := range bands {
		for i, row := range b.Rows {
			if b.Top+i >= height || len(row) != width {
				return nil, fmt.Errorf("life: band at %d does not fit %dx%d world", b.Top, width, height)
			}
			copy(w.Row(b.Top+i), row)
			covered++
		}
	}
	if covered != height {
		return nil, fmt.Errorf("life: bands cover %d of %d rows", covered, height)
	}
	return w, nil
}

// SubGrid copies the h x w rectangle at (row, col) with toroidal wrap —
// the world-state read served by the paper's parallel service (Table 2).
func (w *World) SubGrid(row, col, h, wd int) []uint8 {
	out := make([]uint8, h*wd)
	for i := 0; i < h; i++ {
		src := w.Row((row + i) % w.Height)
		for j := 0; j < wd; j++ {
			out[i*wd+j] = src[(col+j)%w.Width]
		}
	}
	return out
}
