package ringbench

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/core/flowctl"
	"repro/internal/simnet"
)

// testCfg models a deliberately modest NIC so that the modelled transfer
// time dominates the runtime's CPU costs even when `go test ./...` runs
// other timing-heavy packages in parallel on the same machine.
func testCfg() simnet.Config {
	return simnet.Config{
		Bandwidth:  120e6,
		Latency:    20 * time.Microsecond,
		PerMessage: 10 * time.Microsecond,
	}
}

func TestRunDPSDeliversAllBytes(t *testing.T) {
	res, err := RunDPS(testCfg(), 4, 1<<20, 64<<10, 32)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalBytes != 1<<20 {
		t.Fatalf("moved %d bytes", res.TotalBytes)
	}
	if res.Throughput <= 0 {
		t.Fatal("throughput not positive")
	}
}

func TestRunRawDeliversAllBytes(t *testing.T) {
	res, err := RunRaw(testCfg(), 4, 1<<20, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalBytes != 1<<20 {
		t.Fatalf("moved %d bytes", res.TotalBytes)
	}
	if res.Throughput <= 0 {
		t.Fatal("throughput not positive")
	}
}

func TestDPSOverheadShrinksWithBlockSize(t *testing.T) {
	// The paper's Figure 6 shape: DPS control structures hurt mainly for
	// small data objects; for large blocks DPS approaches the raw rate.
	cfg := testCfg()
	const total = 2 << 20
	smallDPS, err := RunDPS(cfg, 4, total, 1<<10, 32)
	if err != nil {
		t.Fatal(err)
	}
	smallRaw, err := RunRaw(cfg, 4, total, 1<<10)
	if err != nil {
		t.Fatal(err)
	}
	largeDPS, err := RunDPS(cfg, 4, total, 256<<10, 32)
	if err != nil {
		t.Fatal(err)
	}
	largeRaw, err := RunRaw(cfg, 4, total, 256<<10)
	if err != nil {
		t.Fatal(err)
	}
	smallRatio := smallDPS.Throughput / smallRaw.Throughput
	largeRatio := largeDPS.Throughput / largeRaw.Throughput
	// Generous slack: `go test ./...` runs packages in parallel, so other
	// timing-heavy suites can perturb individual ratios. The paper-scale
	// sweep in internal/bench (single-process) checks strict monotonicity.
	if largeRatio < smallRatio*0.7 {
		t.Fatalf("DPS relative throughput should improve with block size: small %.2f, large %.2f",
			smallRatio, largeRatio)
	}
	if largeRatio < 0.35 {
		t.Fatalf("DPS large-block throughput too far from raw: ratio %.2f", largeRatio)
	}
}

func TestThroughputGrowsWithBlockSize(t *testing.T) {
	cfg := testCfg()
	small, err := RunDPS(cfg, 4, 1<<20, 1<<10, 32)
	if err != nil {
		t.Fatal(err)
	}
	large, err := RunDPS(cfg, 4, 1<<20, 128<<10, 32)
	if err != nil {
		t.Fatal(err)
	}
	if large.Throughput <= small.Throughput {
		t.Fatalf("throughput should grow with block size: %.1f vs %.1f MB/s",
			small.Throughput, large.Throughput)
	}
}

func TestRejectsTinyRing(t *testing.T) {
	if _, err := RunDPS(testCfg(), 1, 1024, 256, 8); err == nil {
		t.Fatal("expected error for 1-node ring")
	}
	if _, err := RunRaw(testCfg(), 1, 1024, 256); err == nil {
		t.Fatal("expected error for 1-node ring")
	}
}

// TestUnboundedPolicyEquivalence runs the DPS ring under the default
// Window policy and under flowctl.Unbounded: both must deliver every block
// with identical token accounting; only the stall behaviour may differ
// (Unbounded never stalls).
func TestUnboundedPolicyEquivalence(t *testing.T) {
	const total, block = 1 << 20, 32 << 10
	windowed, err := RunDPSConfig(testCfg(), 4, total, block, core.Config{Window: 4})
	if err != nil {
		t.Fatal(err)
	}
	unbounded, err := RunDPSConfig(testCfg(), 4, total, block, core.Config{FlowPolicy: flowctl.Unbounded{}})
	if err != nil {
		t.Fatal(err)
	}
	if windowed.TotalBytes != unbounded.TotalBytes {
		t.Fatalf("byte totals diverge: %d vs %d", windowed.TotalBytes, unbounded.TotalBytes)
	}
	for name, pair := range map[string][2]int64{
		"TokensPosted": {windowed.Stats.TokensPosted, unbounded.Stats.TokensPosted},
		"GroupsOpened": {windowed.Stats.GroupsOpened, unbounded.Stats.GroupsOpened},
		"AcksSent":     {windowed.Stats.AcksSent, unbounded.Stats.AcksSent},
	} {
		if pair[0] != pair[1] {
			t.Errorf("%s diverges between policies: %d vs %d", name, pair[0], pair[1])
		}
	}
	// A 4-slot window over 32 blocks must stall; Unbounded never does.
	if windowed.Stats.WindowStalls == 0 {
		t.Error("window policy recorded no stalls on a tiny window")
	}
	if unbounded.Stats.WindowStalls != 0 {
		t.Errorf("unbounded policy recorded %d stalls", unbounded.Stats.WindowStalls)
	}
}

// TestShardedWorkersRing runs the DPS ring with a sharded scheduler.
func TestShardedWorkersRing(t *testing.T) {
	res, err := RunDPSConfig(testCfg(), 4, 1<<20, 64<<10, core.Config{Window: 32, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalBytes != 1<<20 {
		t.Fatalf("moved %d bytes", res.TotalBytes)
	}
}

// TestRingRebalanceMidRun remaps a forwarding hop to another ring node (and
// back) while blocks stream through, asserting the acceptance criteria of
// the placement layer: the call does not fail, every block arrives exactly
// once (result identical to the unmigrated run), and the engine counters
// record the migrations and the forwarded in-flight tokens.
func TestRingRebalanceMidRun(t *testing.T) {
	const total, block = 4 << 20, 16 << 10
	base, err := RunDPS(testCfg(), 4, total, block, 32)
	if err != nil {
		t.Fatal(err)
	}
	spec := RebalanceSpec{Hop: 2, To: 0, After: time.Millisecond, Back: true}
	res, err := RunDPSRebalance(testCfg(), 4, total, block, core.Config{Window: 32}, spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalBytes != base.TotalBytes {
		t.Fatalf("migrated run delivered %d bytes, baseline %d", res.TotalBytes, base.TotalBytes)
	}
	if res.Stats.MigrationsCompleted != 2 {
		t.Fatalf("MigrationsCompleted = %d, want 2 (out and back)", res.Stats.MigrationsCompleted)
	}
	if res.Stats.TokensForwarded == 0 {
		t.Fatal("no token was forwarded; the remap missed the stream")
	}
}
