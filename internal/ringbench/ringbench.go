// Package ringbench reproduces the paper's Figure 6 experiment: 100 MB of
// data forwarded around a ring of 4 nodes, each node re-sending a block as
// soon as it receives it, comparing
//
//   - DPS data objects (full envelope + serialization through the runtime)
//     against
//   - raw transfers posted directly on the simulated network,
//
// as a function of the single-transfer block size. The DPS control
// structures induce a relative overhead that matters only for small data
// objects — the crossover shape this harness regenerates.
package ringbench

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/serial"
	"repro/internal/simnet"
	"repro/internal/trace"
)

// BlockToken is the payload data object circulating around the DPS ring.
type BlockToken struct {
	Seq  int
	Data []byte
}

// RingOrder starts a DPS ring run.
type RingOrder struct {
	Blocks    int
	BlockSize int
}

// RingDone reports the number of forwarded blocks.
type RingDone struct {
	Blocks int
}

var (
	_ = serial.MustRegister[BlockToken]()
	_ = serial.MustRegister[RingOrder]()
	_ = serial.MustRegister[RingDone]()
)

// Result is one measured configuration.
type Result struct {
	BlockSize  int
	TotalBytes int64
	Elapsed    time.Duration
	Throughput float64 // MB/s of payload leaving the first node
	// Recovery is the detection-to-restored latency of a mid-run node
	// crash (RunDPSFailover); zero otherwise.
	Recovery time.Duration
	// Stats snapshots the application's engine counters at the end of the
	// run (tokens, bytes, stalls, queue depths).
	Stats *core.Stats
}

// RunDPS measures the DPS ring: a split on node 0 posts the blocks, leaf
// operations on nodes 1..n-1 forward them, and the merge back on node 0
// collects them. Pipelining keeps every hop busy, as in the paper's test
// where "individual machines forward the data as soon as they receive it".
func RunDPS(cfg simnet.Config, ringNodes, totalBytes, blockSize, window int) (Result, error) {
	return RunDPSConfig(cfg, ringNodes, totalBytes, blockSize, core.Config{Window: window})
}

// RunDPSConfig is RunDPS with full control over the engine configuration
// (flow-control policy, scheduler workers, queue bound).
func RunDPSConfig(cfg simnet.Config, ringNodes, totalBytes, blockSize int, appCfg core.Config) (Result, error) {
	return RunDPSRebalance(cfg, ringNodes, totalBytes, blockSize, appCfg, RebalanceSpec{})
}

// RebalanceSpec asks the DPS ring run to live-migrate one forwarding hop
// mid-benchmark, exercising the placement layer's remap protocol under
// load. The zero value performs no migration.
type RebalanceSpec struct {
	// Hop is the forwarding hop to migrate (1..ringNodes-1); zero disables
	// the rebalance.
	Hop int
	// To is the destination node index within the ring.
	To int
	// After is when to trigger the migration, measured from the start of
	// the benchmark call.
	After time.Duration
	// Back migrates the hop back to its original node After later, so the
	// run ends on the initial placement.
	Back bool
}

// RunDPSRebalance measures the DPS ring, optionally live-remapping one hop
// mid-run per spec.
func RunDPSRebalance(cfg simnet.Config, ringNodes, totalBytes, blockSize int, appCfg core.Config, spec RebalanceSpec) (Result, error) {
	if ringNodes < 2 {
		return Result{}, fmt.Errorf("ringbench: need at least 2 nodes")
	}
	if spec.Hop != 0 && (spec.Hop < 1 || spec.Hop >= ringNodes || spec.To < 0 || spec.To >= ringNodes) {
		return Result{}, fmt.Errorf("ringbench: rebalance hop %d -> node %d out of range", spec.Hop, spec.To)
	}
	net := simnet.New(cfg)
	defer net.Close()
	app, g, names, single, err := buildRing(net, appCfg, ringNodes)
	if err != nil {
		return Result{}, err
	}
	defer app.Close()

	blocks := totalBytes / blockSize
	if blocks == 0 {
		blocks = 1
	}

	var remapErr error
	remapDone := make(chan struct{})
	if spec.Hop != 0 {
		go func() {
			defer close(remapDone)
			time.Sleep(spec.After)
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			tc := single[spec.Hop]
			if err := tc.RemapThread(ctx, 0, names[spec.To]); err != nil {
				remapErr = err
				return
			}
			if spec.Back {
				time.Sleep(spec.After)
				remapErr = tc.RemapThread(ctx, 0, names[spec.Hop])
			}
		}()
	} else {
		close(remapDone)
	}

	sw := trace.StartStopwatch()
	out, err := g.Call(context.Background(), &RingOrder{Blocks: blocks, BlockSize: blockSize})
	if err != nil {
		// Join the remap goroutine before the deferred app/net teardown so
		// it cannot migrate against a closing application.
		<-remapDone
		return Result{}, err
	}
	elapsed := sw.Elapsed()
	<-remapDone
	if remapErr != nil {
		return Result{}, fmt.Errorf("ringbench: mid-run remap: %w", remapErr)
	}
	if got := out.(*RingDone).Blocks; got != blocks {
		return Result{}, fmt.Errorf("ringbench: %d of %d blocks arrived", got, blocks)
	}
	total := int64(blocks) * int64(blockSize)
	return Result{
		BlockSize:  blockSize,
		TotalBytes: total,
		Elapsed:    elapsed,
		Throughput: trace.ThroughputMBs(total, elapsed),
		Stats:      app.Stats(),
	}, nil
}

// buildRing constructs the Figure 6 ring application on an existing
// simulated network: a split on node 0 posting the blocks, forwarding
// leaves on nodes 1..n-1, and the collecting merge back on node 0.
func buildRing(net *simnet.Network, appCfg core.Config, ringNodes int) (*core.App, *core.Flowgraph, []string, []*core.ThreadCollection, error) {
	names := make([]string, ringNodes)
	for i := range names {
		names[i] = fmt.Sprintf("ring%d", i)
	}
	app, err := core.NewSimApp(appCfg, net, names...)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	single := make([]*core.ThreadCollection, ringNodes)
	for i := range single {
		tc, err := core.NewCollection[struct{}](app, fmt.Sprintf("hop%d", i))
		if err != nil {
			app.Close()
			return nil, nil, nil, nil, err
		}
		if err := tc.MapNodes(names[i]); err != nil {
			app.Close()
			return nil, nil, nil, nil, err
		}
		single[i] = tc
	}

	split := core.Split[*RingOrder, *BlockToken]("ring-split",
		func(c *core.Ctx, in *RingOrder, post func(*BlockToken)) {
			for i := 0; i < in.Blocks; i++ {
				post(&BlockToken{Seq: i, Data: make([]byte, in.BlockSize)})
			}
		})
	forward := func(hop int) *core.OpDef {
		return core.Leaf[*BlockToken, *BlockToken](fmt.Sprintf("ring-forward-%d", hop),
			func(c *core.Ctx, in *BlockToken) *BlockToken { return in })
	}
	merge := core.Merge[*BlockToken, *RingDone]("ring-merge",
		func(c *core.Ctx, first *BlockToken, next func() (*BlockToken, bool)) *RingDone {
			n := 0
			for _, ok := first, true; ok; _, ok = next() {
				n++
			}
			return &RingDone{Blocks: n}
		})

	nodes := []*core.GraphNode{core.NewNode(split, single[0], core.MainRoute())}
	for i := 1; i < ringNodes; i++ {
		nodes = append(nodes, core.NewNode(forward(i), single[i], core.MainRoute()))
	}
	nodes = append(nodes, core.NewNode(merge, single[0], core.MainRoute()))
	g, err := app.NewFlowgraph("ring", core.Path(nodes...))
	if err != nil {
		app.Close()
		return nil, nil, nil, nil, err
	}
	return app, g, names, single, nil
}

// FailoverSpec asks the DPS ring run to crash one forwarding hop's node
// mid-benchmark (simnet power-failure semantics), exercising the
// fault-tolerance layer's detection, checkpoint restore and token replay
// under load. The engine configuration must enable checkpoints.
type FailoverSpec struct {
	// Hop is the forwarding hop whose node dies (1..ringNodes-1).
	Hop int
	// After is when to pull the plug, measured from the benchmark start.
	After time.Duration
}

// RunDPSFailover measures the DPS ring with a mid-run node crash: the run
// must still deliver every block exactly once (the merge total is checked
// by the caller against the baseline), and Result.Recovery reports the
// crash-to-restored latency.
func RunDPSFailover(cfg simnet.Config, ringNodes, totalBytes, blockSize int, appCfg core.Config, spec FailoverSpec) (Result, error) {
	if ringNodes < 2 || spec.Hop < 1 || spec.Hop >= ringNodes {
		return Result{}, fmt.Errorf("ringbench: failover hop %d out of range", spec.Hop)
	}
	if appCfg.Checkpoint <= 0 {
		return Result{}, fmt.Errorf("ringbench: failover run needs Config.Checkpoint")
	}
	net := simnet.New(cfg)
	defer net.Close()
	app, g, names, _, err := buildRing(net, appCfg, ringNodes)
	if err != nil {
		return Result{}, err
	}
	defer app.Close()

	blocks := totalBytes / blockSize
	if blocks == 0 {
		blocks = 1
	}
	crashDone := make(chan time.Duration, 1)
	go func() {
		time.Sleep(spec.After)
		crashAt := time.Now()
		net.Crash(names[spec.Hop])
		// Recovery completes when the failover counter moves; poll it with
		// a deadline — if the crash landed after the run already finished,
		// passive detection never fires and the poll would spin forever.
		// A 1ms poll bounds the latency resolution without perturbing the
		// measured run (Stats() snapshots every runtime's counters).
		deadline := time.Now().Add(30 * time.Second)
		for app.Stats().FailoversCompleted == 0 && app.Err() == nil {
			if time.Now().After(deadline) {
				crashDone <- -1
				return
			}
			time.Sleep(time.Millisecond)
		}
		crashDone <- time.Since(crashAt)
	}()

	sw := trace.StartStopwatch()
	out, err := g.Call(context.Background(), &RingOrder{Blocks: blocks, BlockSize: blockSize})
	if err != nil {
		<-crashDone // join the monitor before deferred teardown
		return Result{}, err
	}
	elapsed := sw.Elapsed()
	recovery := <-crashDone
	if recovery < 0 {
		return Result{}, fmt.Errorf("ringbench: crash after %v was never detected (did the run finish before it?)", spec.After)
	}
	if got := out.(*RingDone).Blocks; got != blocks {
		return Result{}, fmt.Errorf("ringbench: %d of %d blocks arrived after the crash (exactly-once violated)", got, blocks)
	}
	total := int64(blocks) * int64(blockSize)
	return Result{
		BlockSize:  blockSize,
		TotalBytes: total,
		Elapsed:    elapsed,
		Throughput: trace.ThroughputMBs(total, elapsed),
		Recovery:   recovery,
		Stats:      app.Stats(),
	}, nil
}

// RunDPSChaos drives the DPS ring with repeated calls for at least span,
// while a caller-provided hook injects faults into the simulated network
// underneath. The hook runs once the application is up and returns a stop
// function joined before teardown (a nil hook just soaks the ring). Every
// call's merge total is checked against blocksPerCall — a lost or
// duplicated block fails the run. Returns the aggregate result and the
// number of completed calls.
func RunDPSChaos(cfg simnet.Config, ringNodes, blocksPerCall, blockSize int, appCfg core.Config, span time.Duration, hook func(*simnet.Network, *core.App) (stop func())) (Result, int, error) {
	if ringNodes < 2 {
		return Result{}, 0, fmt.Errorf("ringbench: need at least 2 nodes")
	}
	net := simnet.New(cfg)
	defer net.Close()
	app, g, _, _, err := buildRing(net, appCfg, ringNodes)
	if err != nil {
		return Result{}, 0, err
	}
	defer app.Close()

	if hook != nil {
		stop := hook(net, app)
		if stop != nil {
			defer stop()
		}
	}

	calls := 0
	sw := trace.StartStopwatch()
	for calls == 0 || sw.Elapsed() < span {
		out, err := g.Call(context.Background(), &RingOrder{Blocks: blocksPerCall, BlockSize: blockSize})
		if err != nil {
			return Result{}, calls, fmt.Errorf("ringbench: chaos call %d: %w", calls, err)
		}
		if got := out.(*RingDone).Blocks; got != blocksPerCall {
			return Result{}, calls, fmt.Errorf("ringbench: chaos call %d delivered %d of %d blocks (exactly-once violated)", calls, got, blocksPerCall)
		}
		calls++
	}
	elapsed := sw.Elapsed()
	total := int64(calls) * int64(blocksPerCall) * int64(blockSize)
	return Result{
		BlockSize:  blockSize,
		TotalBytes: total,
		Elapsed:    elapsed,
		Throughput: trace.ThroughputMBs(total, elapsed),
		Stats:      app.Stats(),
	}, calls, nil
}

// RunRaw measures the same ring using direct sends on the simulated
// network, without DPS envelopes or serialization — the paper's socket
// baseline. Each node forwards each block as soon as it arrives.
func RunRaw(cfg simnet.Config, ringNodes, totalBytes, blockSize int) (Result, error) {
	if ringNodes < 2 {
		return Result{}, fmt.Errorf("ringbench: need at least 2 nodes")
	}
	net := simnet.New(cfg)
	defer net.Close()
	names := make([]string, ringNodes)
	nodes := make([]*simnet.Node, ringNodes)
	for i := range names {
		names[i] = fmt.Sprintf("raw%d", i)
		nd, err := net.AddNode(names[i])
		if err != nil {
			return Result{}, err
		}
		nodes[i] = nd
	}

	blocks := totalBytes / blockSize
	if blocks == 0 {
		blocks = 1
	}
	errs := make(chan error, ringNodes)
	done := make(chan struct{})

	// Forwarders on nodes 1..n-1.
	for i := 1; i < ringNodes; i++ {
		go func(i int) {
			nxt := names[(i+1)%ringNodes]
			for j := 0; j < blocks; j++ {
				select {
				case m := <-nodes[i].Inbox():
					if err := nodes[i].Send(nxt, m.Payload); err != nil {
						errs <- err
						return
					}
				case <-nodes[i].Done():
					errs <- fmt.Errorf("ringbench: node %d shut down", i)
					return
				}
			}
			errs <- nil
		}(i)
	}
	// Collector back on node 0.
	go func() {
		for j := 0; j < blocks; j++ {
			select {
			case <-nodes[0].Inbox():
			case <-nodes[0].Done():
				errs <- fmt.Errorf("ringbench: collector shut down")
				return
			}
		}
		close(done)
		errs <- nil
	}()

	sw := trace.StartStopwatch()
	go func() {
		payload := make([]byte, blockSize)
		for j := 0; j < blocks; j++ {
			buf := make([]byte, blockSize)
			copy(buf, payload)
			if err := nodes[0].Send(names[1], buf); err != nil {
				errs <- err
				return
			}
		}
		errs <- nil
	}()

	for i := 0; i < ringNodes+1; i++ {
		if err := <-errs; err != nil {
			return Result{}, err
		}
	}
	<-done
	elapsed := sw.Elapsed()
	total := int64(blocks) * int64(blockSize)
	return Result{
		BlockSize:  blockSize,
		TotalBytes: total,
		Elapsed:    elapsed,
		Throughput: trace.ThroughputMBs(total, elapsed),
	}, nil
}
