package integration

// The public dps package claims to be a zero-cost façade: Graph[In, Out]
// erases to the same engine machinery as a direct core.Flowgraph call.
// These tests pin that claim on the same-node path — same graph, called
// both ways — as a benchmark for inspection and as an allocation assertion
// enforced in CI.

import (
	"context"
	"testing"

	"repro/dps"
	"repro/internal/core"
	"repro/internal/serial"
)

type fcTok struct {
	N int
}

var _ = serial.MustRegister[fcTok]()

// facadeFixture builds one single-node leaf graph and returns it twice:
// as the engine graph and as the typed façade wrapper of that same graph.
func facadeFixture(tb testing.TB) (*core.Flowgraph, dps.Graph[*fcTok, *fcTok]) {
	tb.Helper()
	app, err := core.NewLocalApp(core.Config{}, "n0")
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(app.Close)
	tc := core.MustCollection[struct{}](app, "main")
	if err := tc.Map("n0"); err != nil {
		tb.Fatal(err)
	}
	inc := core.Leaf[*fcTok, *fcTok]("inc",
		func(c *core.Ctx, in *fcTok) *fcTok { return &fcTok{N: in.N + 1} })
	fg, err := app.NewFlowgraph("facade", core.Path(core.NewNode(inc, tc, core.MainRoute())))
	if err != nil {
		tb.Fatal(err)
	}
	g, err := dps.Typed[*fcTok, *fcTok](fg)
	if err != nil {
		tb.Fatal(err)
	}
	return fg, g
}

// BenchmarkFacadeCallOverhead compares dps.Graph.Call against the direct
// core.Flowgraph.Call on the same-node path of the same graph.
func BenchmarkFacadeCallOverhead(b *testing.B) {
	fg, g := facadeFixture(b)
	ctx := context.Background()
	in := &fcTok{N: 1}

	b.Run("core", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			out, err := fg.Call(ctx, in)
			if err != nil {
				b.Fatal(err)
			}
			if out.(*fcTok).N != 2 {
				b.Fatal("wrong result")
			}
		}
	})
	b.Run("dps", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			out, err := g.Call(ctx, in)
			if err != nil {
				b.Fatal(err)
			}
			if out.N != 2 {
				b.Fatal("wrong result")
			}
		}
	})
}

// TestFacadeAddsNoAllocations asserts the zero-cost claim: the typed
// façade call allocates nothing beyond what the engine call itself does.
func TestFacadeAddsNoAllocations(t *testing.T) {
	fg, g := facadeFixture(t)
	ctx := context.Background()
	in := &fcTok{N: 1}

	// Warm both paths (lazy thread instantiation, pools).
	for i := 0; i < 32; i++ {
		if _, err := fg.Call(ctx, in); err != nil {
			t.Fatal(err)
		}
		if _, err := g.Call(ctx, in); err != nil {
			t.Fatal(err)
		}
	}
	const runs = 200
	coreAllocs := testing.AllocsPerRun(runs, func() {
		if _, err := fg.Call(ctx, in); err != nil {
			t.Fatal(err)
		}
	})
	facadeAllocs := testing.AllocsPerRun(runs, func() {
		if _, err := g.Call(ctx, in); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("allocs/op: core=%.2f facade=%.2f", coreAllocs, facadeAllocs)
	// Pool refills make individual runs jitter by a fraction of an alloc;
	// anything >= one whole extra allocation is a façade regression.
	if facadeAllocs > coreAllocs+0.5 {
		t.Fatalf("façade adds allocations: core %.2f, facade %.2f allocs/op", coreAllocs, facadeAllocs)
	}
}
