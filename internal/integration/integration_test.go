// Package integration exercises the full stack — serialization, simulated
// network, DPS runtime, application graphs and the kernel environment —
// through end-to-end scenarios that cross package boundaries.
package integration

import (
	"context"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/life"
	"repro/internal/matrix"
	"repro/internal/parlife"
	"repro/internal/parlin"
	"repro/internal/serial"
	"repro/internal/simnet"
)

// --- Figure 4: stream pipelining (per-experiment index in DESIGN.md) -----

type vsReq struct {
	Frames, Parts int
}

type vsPart struct {
	Frame, Part, Parts int
	Data               []byte
}

type vsFrame struct {
	Frame int
}

type vsDone struct {
	Frames int
}

var (
	_ = serial.MustRegister[vsReq]()
	_ = serial.MustRegister[vsPart]()
	_ = serial.MustRegister[vsFrame]()
	_ = serial.MustRegister[vsDone]()
)

// TestVideoStreamPipelining asserts the Figure 4 property: the first
// complete frame leaves the stream operation before the last frame part
// has been produced, which a merge+split sequence cannot do.
func TestVideoStreamPipelining(t *testing.T) {
	net := simnet.New(simnet.Config{Bandwidth: 200e6, Latency: 20 * time.Microsecond})
	defer net.Close()
	app, err := core.NewSimApp(core.Config{Window: 16}, net, "d0", "d1")
	if err != nil {
		t.Fatal(err)
	}
	defer app.Close()
	master := core.MustCollection[struct{}](app, "master")
	if err := master.Map("d0"); err != nil {
		t.Fatal(err)
	}
	disks := core.MustCollection[struct{}](app, "disks")
	if err := disks.Map("d0 d1"); err != nil {
		t.Fatal(err)
	}

	var lastRead, firstFrame atomic.Int64
	gen := core.Split[*vsReq, *vsPart]("gen",
		func(c *core.Ctx, in *vsReq, post func(*vsPart)) {
			for f := 0; f < in.Frames; f++ {
				for p := 0; p < in.Parts; p++ {
					post(&vsPart{Frame: f, Part: p, Parts: in.Parts})
				}
			}
		})
	read := core.Leaf[*vsPart, *vsPart]("read",
		func(c *core.Ctx, in *vsPart) *vsPart {
			time.Sleep(300 * time.Microsecond)
			lastRead.Store(time.Now().UnixNano())
			in.Data = make([]byte, 4<<10)
			return in
		})
	recompose := core.Stream[*vsPart, *vsFrame]("recompose",
		func(c *core.Ctx, first *vsPart, next func() (*vsPart, bool), post func(*vsFrame)) {
			got := map[int]int{}
			for in, ok := first, true; ok; in, ok = next() {
				got[in.Frame]++
				if got[in.Frame] == in.Parts {
					firstFrame.CompareAndSwap(0, time.Now().UnixNano())
					post(&vsFrame{Frame: in.Frame})
				}
			}
		})
	collect := core.Merge[*vsFrame, *vsDone]("collect",
		func(c *core.Ctx, first *vsFrame, next func() (*vsFrame, bool)) *vsDone {
			n := 0
			for _, ok := first, true; ok; _, ok = next() {
				n++
			}
			return &vsDone{Frames: n}
		})
	g, err := app.NewFlowgraph("video", core.Path(
		core.NewNode(gen, master, core.MainRoute()),
		core.NewNode(read, disks, core.ByKey[*vsPart]("stripe", func(in *vsPart) int { return in.Part })),
		core.NewNode(recompose, master, core.MainRoute()),
		core.NewNode(collect, master, core.MainRoute()),
	))
	if err != nil {
		t.Fatal(err)
	}
	out, err := g.CallTimeout(app.MasterNode(), &vsReq{Frames: 30, Parts: 2}, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got := out.(*vsDone).Frames; got != 30 {
		t.Fatalf("collected %d frames", got)
	}
	if firstFrame.Load() == 0 || lastRead.Load() == 0 {
		t.Fatal("timestamps missing")
	}
	if firstFrame.Load() >= lastRead.Load() {
		t.Fatal("stream did not pipeline: first frame left after the last disk read")
	}
}

// --- node failure ---------------------------------------------------------

// TestNodeFailureFailsCalls removes a cluster node mid-run; in-flight calls
// must fail with an error instead of hanging (the runtime surfaces the
// transport failure), matching the paper's observation that node failures
// need explicit handling (their future work on graceful degradation).
func TestNodeFailureFailsCalls(t *testing.T) {
	net := simnet.New(simnet.Config{Bandwidth: 50e6, Latency: 100 * time.Microsecond})
	defer net.Close()
	app, err := core.NewSimApp(core.Config{Window: 4}, net, "f0", "f1")
	if err != nil {
		t.Fatal(err)
	}
	defer app.Close()
	master := core.MustCollection[struct{}](app, "master")
	if err := master.Map("f0"); err != nil {
		t.Fatal(err)
	}
	workers := core.MustCollection[struct{}](app, "workers")
	if err := workers.Map("f1"); err != nil {
		t.Fatal(err)
	}
	split := core.Split[*parlife.StepOrder, *parlife.StepOrder]("fan",
		func(c *core.Ctx, in *parlife.StepOrder, post func(*parlife.StepOrder)) {
			for i := 0; i < 500; i++ {
				post(&parlife.StepOrder{Iter: i})
			}
		})
	slow := core.Leaf[*parlife.StepOrder, *parlife.StepOrder]("slow",
		func(c *core.Ctx, in *parlife.StepOrder) *parlife.StepOrder {
			time.Sleep(time.Millisecond)
			return in
		})
	merge := core.Merge[*parlife.StepOrder, *parlife.StepOrder]("join",
		func(c *core.Ctx, first *parlife.StepOrder, next func() (*parlife.StepOrder, bool)) *parlife.StepOrder {
			for _, ok := first, true; ok; _, ok = next() {
			}
			return first
		})
	g, err := app.NewFlowgraph("fail", core.Path(
		core.NewNode(split, master, core.MainRoute()),
		core.NewNode(slow, workers, core.MainRoute()),
		core.NewNode(merge, master, core.MainRoute()),
	))
	if err != nil {
		t.Fatal(err)
	}
	ch, err := g.CallAsyncFrom(context.Background(), "f0", &parlife.StepOrder{})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond) // let the pipeline fill
	if !net.RemoveNode("f1") {
		t.Fatal("node not removed")
	}
	select {
	case res := <-ch:
		if res.Err == nil {
			t.Fatal("call succeeded despite node failure")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("call hung after node failure")
	}
}

// --- stats ------------------------------------------------------------------

func TestStatsAccounting(t *testing.T) {
	net := simnet.New(simnet.Config{})
	defer net.Close()
	app, err := core.NewSimApp(core.Config{Window: 8}, net, "s0", "s1")
	if err != nil {
		t.Fatal(err)
	}
	defer app.Close()
	sim, err := parlife.New(app, 64, 64, parlife.Options{Name: "life", Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Load(life.RandomWorld(64, 64, 0.3, 1)); err != nil {
		t.Fatal(err)
	}
	if err := sim.StepN(3, true); err != nil {
		t.Fatal(err)
	}
	st := app.Stats()
	if st.TokensPosted == 0 {
		t.Error("no tokens accounted")
	}
	if st.TokensRemote == 0 {
		t.Error("no remote tokens despite two nodes")
	}
	if st.TokensLocal == 0 {
		t.Error("no local bypass despite master-side merges")
	}
	if st.BytesSent == 0 {
		t.Error("no bytes accounted")
	}
	if st.GroupsOpened == 0 || st.AcksSent == 0 {
		t.Errorf("group accounting empty: %+v", st)
	}
	if st.CallsCompleted < 4 { // load + 3 steps
		t.Errorf("CallsCompleted = %d", st.CallsCompleted)
	}
	if st.TokensLocal+st.TokensRemote != st.TokensPosted {
		t.Errorf("local(%d)+remote(%d) != posted(%d)",
			st.TokensLocal, st.TokensRemote, st.TokensPosted)
	}
}

func TestWindowStallCounter(t *testing.T) {
	app, err := core.NewLocalApp(core.Config{Window: 2}, "w0")
	if err != nil {
		t.Fatal(err)
	}
	defer app.Close()
	tc := core.MustCollection[struct{}](app, "tc")
	if err := tc.Map("w0"); err != nil {
		t.Fatal(err)
	}
	split := core.Split[*parlife.StepOrder, *parlife.StepOrder]("burst",
		func(c *core.Ctx, in *parlife.StepOrder, post func(*parlife.StepOrder)) {
			for i := 0; i < 50; i++ {
				post(&parlife.StepOrder{Iter: i})
			}
		})
	merge := core.Merge[*parlife.StepOrder, *parlife.StepOrder]("drain",
		func(c *core.Ctx, first *parlife.StepOrder, next func() (*parlife.StepOrder, bool)) *parlife.StepOrder {
			for _, ok := first, true; ok; _, ok = next() {
				time.Sleep(100 * time.Microsecond)
			}
			return first
		})
	g, err := app.NewFlowgraph("stall", core.Path(
		core.NewNode(split, tc, core.MainRoute()),
		core.NewNode(merge, tc, core.MainRoute()),
	))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.CallTimeout("w0", &parlife.StepOrder{}, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	if app.Stats().WindowStalls == 0 {
		t.Error("expected window stalls with Window=2 and a slow merge")
	}
}

// --- combined applications on one cluster ---------------------------------

// TestLifeAndLUShareCluster runs two distinct DPS applications (Game of
// Life and LU factorization) on the same simulated cluster concurrently —
// the paper's server scenario of multiple parallel applications sharing
// resources.
func TestLifeAndLUShareCluster(t *testing.T) {
	net := simnet.New(simnet.Config{Bandwidth: 500e6, Latency: 10 * time.Microsecond})
	defer net.Close()
	lifeApp, err := core.NewSimApp(core.Config{}, net, "la0", "la1")
	if err != nil {
		t.Fatal(err)
	}
	defer lifeApp.Close()
	luApp, err := core.NewSimApp(core.Config{Window: 128}, net, "lb0", "lb1")
	if err != nil {
		t.Fatal(err)
	}
	defer luApp.Close()

	world := life.RandomWorld(48, 48, 0.4, 2)
	sim, err := parlife.New(lifeApp, 48, 48, parlife.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Load(world); err != nil {
		t.Fatal(err)
	}
	lu, err := parlin.NewLU(luApp, 64, 16, parlin.LUOptions{Workers: 2, Pipelined: true})
	if err != nil {
		t.Fatal(err)
	}

	errs := make(chan error, 2)
	go func() { errs <- sim.StepN(5, true) }()
	go func() {
		a := matrix.Random(64, 64, 9)
		fact, piv, err := lu.Factor(a)
		if err == nil && matrix.ResidualLU(a, fact, piv) > 1e-8 {
			err = fmt.Errorf("LU residual too large")
		}
		errs <- err
	}()
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	got, err := sim.Gather()
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(world.StepN(5)) {
		t.Fatal("life result wrong when sharing the cluster")
	}
}

// --- kernels + DPS application over TCP with lazy launch -------------------

func TestLazyLaunchedAppOverKernels(t *testing.T) {
	ns, err := kernel.StartNameServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ns.Close()
	k0, err := kernel.Start("ik0", "127.0.0.1:0", ns.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer k0.Close()
	k1, err := kernel.Start("ik1", "127.0.0.1:0", ns.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer k1.Close()

	// The worker half of the application is launched by k1 only when the
	// first data object reaches it — the paper's on-demand instance start.
	var launched atomic.Bool
	echoed := make(chan string, 4)
	k1.RegisterApp("lazyapp", func(k *kernel.Kernel) error {
		launched.Store(true)
		tr := k.Transport("lazyapp")
		tr.SetHandler(func(src string, payload []byte) {
			// Echo back to the sender.
			_ = tr.Send(src, append([]byte("re:"), payload...))
		})
		return nil
	})

	client := k0.Transport("lazyapp")
	client.SetHandler(func(src string, payload []byte) { echoed <- string(payload) })
	if launched.Load() {
		t.Fatal("factory ran before any message")
	}
	if err := client.Send("ik1", []byte("ping")); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-echoed:
		if m != "re:ping" {
			t.Fatalf("got %q", m)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("no echo: lazy launch failed")
	}
	if !launched.Load() {
		t.Fatal("factory flag not set")
	}
	if !k1.Launched("lazyapp") {
		t.Fatal("kernel does not report the app as launched")
	}
}

// TestUppercaseEndToEndAllTransports runs the same application over the
// in-process fabric, the simulated network (with ForceSerialize), and TCP
// kernels, asserting identical results.
func TestUppercaseEndToEndAllTransports(t *testing.T) {
	input := "the quick brown fox"
	want := strings.ToUpper(input)

	type appBuilder func(t *testing.T) (*core.App, func())
	builders := map[string]appBuilder{
		"inproc": func(t *testing.T) (*core.App, func()) {
			app, err := core.NewLocalApp(core.Config{}, "x0", "x1")
			if err != nil {
				t.Fatal(err)
			}
			return app, app.Close
		},
		"simnet-forceserialize": func(t *testing.T) (*core.App, func()) {
			net := simnet.New(simnet.Config{Bandwidth: 100e6})
			app, err := core.NewSimApp(core.Config{ForceSerialize: true}, net, "x0", "x1")
			if err != nil {
				t.Fatal(err)
			}
			return app, func() { app.Close(); net.Close() }
		},
		"tcp-kernels": func(t *testing.T) (*core.App, func()) {
			ns, err := kernel.StartNameServer("127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			k0, err := kernel.Start("x0", "127.0.0.1:0", ns.Addr())
			if err != nil {
				t.Fatal(err)
			}
			k1, err := kernel.Start("x1", "127.0.0.1:0", ns.Addr())
			if err != nil {
				t.Fatal(err)
			}
			app := core.NewApp(core.Config{})
			if _, err := app.AttachTransport(k0.Transport("e2e")); err != nil {
				t.Fatal(err)
			}
			if _, err := app.AttachTransport(k1.Transport("e2e")); err != nil {
				t.Fatal(err)
			}
			return app, func() { app.Close(); k0.Close(); k1.Close(); ns.Close() }
		},
	}

	for name, build := range builders {
		t.Run(name, func(t *testing.T) {
			app, cleanup := build(t)
			defer cleanup()
			main := core.MustCollection[struct{}](app, "main")
			if err := main.Map("x0"); err != nil {
				t.Fatal(err)
			}
			workers := core.MustCollection[struct{}](app, "workers")
			if err := workers.Map("x1*2"); err != nil {
				t.Fatal(err)
			}
			split := core.Split[*wordsReq, *word]("split",
				func(c *core.Ctx, in *wordsReq, post func(*word)) {
					for i, w := range strings.Fields(in.Text) {
						post(&word{W: w, Pos: i})
					}
				})
			up := core.Leaf[*word, *word]("upper",
				func(c *core.Ctx, in *word) *word { return &word{W: strings.ToUpper(in.W), Pos: in.Pos} })
			join := core.Merge[*word, *wordsReq]("join",
				func(c *core.Ctx, first *word, next func() (*word, bool)) *wordsReq {
					out := map[int]string{}
					max := 0
					for in, ok := first, true; ok; in, ok = next() {
						out[in.Pos] = in.W
						if in.Pos > max {
							max = in.Pos
						}
					}
					parts := make([]string, max+1)
					for i := range parts {
						parts[i] = out[i]
					}
					return &wordsReq{Text: strings.Join(parts, " ")}
				})
			g, err := app.NewFlowgraph("e2e-upper", core.Path(
				core.NewNode(split, main, core.MainRoute()),
				core.NewNode(up, workers, core.RoundRobin()),
				core.NewNode(join, main, core.MainRoute()),
			))
			if err != nil {
				t.Fatal(err)
			}
			out, err := g.CallTimeout("x0", &wordsReq{Text: input}, 30*time.Second)
			if err != nil {
				t.Fatal(err)
			}
			if got := out.(*wordsReq).Text; got != want {
				t.Fatalf("got %q want %q", got, want)
			}
		})
	}
}

type wordsReq struct {
	Text string
}

type word struct {
	W   string
	Pos int
}

var (
	_ = serial.MustRegister[wordsReq]()
	_ = serial.MustRegister[word]()
)
