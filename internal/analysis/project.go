package analysis

// This file is the project configuration: the six rules instantiated for
// this repository's invariants. cmd/dps-vet and the root boundary test run
// these; the rule implementations themselves are project-agnostic and are
// exercised against synthetic fixtures in testdata/.

// KnownRuleNames is the complete rule-name vocabulary, used to validate
// //dpsvet:ignore directives even in runs that execute a subset of rules.
var KnownRuleNames = []string{"boundary", "lockheld", "poolown", "wirekinds", "determinism", "tracepoints"}

// ProjectBoundary seals internal/core behind the repro/dps façade (PR 3):
// only internal/ packages and the façade itself may program against the
// engine.
func ProjectBoundary() *Rule {
	return Boundary(BoundaryConfig{
		Sealed:  []string{"repro/internal/core"},
		Allowed: []string{"repro/internal", "repro/dps"},
		Suggest: "repro/dps",
	})
}

// ProjectRules returns the full dps-vet suite configured for this tree.
func ProjectRules() []*Rule {
	return []*Rule{
		ProjectBoundary(),

		// *Locked discipline (link.go's batcher, and any future adopter of
		// the convention): project-wide, the convention is global.
		Lockheld(),

		// Pooled wire buffers and envelopes (internal/core/pool.go) and
		// tcptransport's bare sync.Pool flate coders. decodeEnvelope hands
		// out a pooled envelope, so its result is pool-owned too.
		Poolown(PoolownConfig{
			PkgSuffixes: []string{"internal/core", "internal/transport/tcptransport"},
			Pools: []PoolSpec{
				{Get: "getEnvelope", Put: "putEnvelope"},
				{Get: "getWireBuf", Put: "putWireBuf"},
			},
			ExtraGets: []string{"decodeEnvelope"},
			SyncPools: []string{"flateWriters", "flateReaders"},
		}),

		// Wire kinds: engine message kinds dispatch in link.handle (batch
		// sub-frames in handleBatch/decodeBatch); kernel control kinds in
		// handleControl. Send methods of the link must order against the
		// per-destination batcher (preSend) before transmitting; sendToken
		// and sendGroupEnd route through the batcher itself.
		Wirekinds([]WirekindsConfig{
			{
				PkgSuffix:     "internal/core",
				KindPrefix:    "msg",
				DispatchFuncs: []string{"handle"},
				BatchKinds:    []string{"msgToken", "msgGroupEnd", "msgTokenFT", "msgGroupEndFT"},
				BatchFuncs:    []string{"decodeBatch"},
				PreSend: &PreSendConfig{
					RecvType:      "link",
					MethodPrefix:  "send",
					TransmitCalls: []string{"trSend", "Send"},
					FlushCalls:    []string{"preSend", "batchToken", "batchGroupEnd"},
					Exempt:        nil,
				},
			},
			{
				PkgSuffix:     "internal/kernel",
				KindPrefix:    "ctl",
				DispatchFuncs: []string{"handleControl"},
			},
		}),

		// Observability coverage: every wire kind dispatched in link.handle
		// either records a span (traceWire) or delivers into an instrumented
		// path (deliverToken dispatches queue/execute spans, deliverResult
		// records the result span at call completion, handleBatch re-enters
		// the same dispatch per entry); the control-plane kinds carry
		// explicit ignores naming why they need none.
		Tracepoints([]TracepointsConfig{{
			PkgSuffix:     "internal/core",
			KindPrefix:    "msg",
			DispatchFuncs: []string{"handle"},
			SpanCalls:     []string{"traceWire", "deliverToken", "deliverResult", "handleBatch"},
		}}),

		// Seed determinism: chaos schedule generation (chaos.go) and simnet
		// fault draws (faults.go) must be pure functions of their seed;
		// global math/rand is banned across both packages.
		Determinism([]DeterminismScope{
			{PkgSuffix: "internal/chaos", TimeFiles: []string{"chaos.go"}},
			{PkgSuffix: "internal/simnet", TimeFiles: []string{"faults.go"}},
		}),
	}
}
