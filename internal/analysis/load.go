package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, parsed and (best-effort) type-checked package.
type Package struct {
	Path  string // import path ("vettest/fixture" for fixtures)
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File

	// Types and Info come from a lenient source type-check: stdlib imports
	// resolve fully, module-internal imports resolve to empty stubs, and
	// type errors are swallowed. Rules use Info opportunistically and must
	// degrade to syntax when resolution failed; both may be nil when the
	// loader ran syntax-only.
	Types *types.Package
	Info  *types.Info
}

// LoadConfig tunes Load.
type LoadConfig struct {
	// SyntaxOnly skips type-checking; rules that only need the AST (the
	// boundary rule, the root test) load the whole tree much faster.
	SyntaxOnly bool
	// Tests includes _test.go files (same-package and external test
	// packages) in the loaded packages.
	Tests bool
}

// listedPackage is the subset of `go list -json` output the loader reads.
type listedPackage struct {
	ImportPath   string
	Dir          string
	Standard     bool
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
}

// Load resolves patterns (e.g. "./...") through `go list -json` from dir
// and returns the parsed packages. It uses -e so packages with unresolvable
// imports still load — the boundary rule must see an import of a sealed
// package even when nothing else about the file type-checks.
func Load(dir string, cfg LoadConfig, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-e", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v: %s", strings.Join(patterns, " "), err, stderr.String())
	}

	fset := token.NewFileSet()
	imp := newLenientImporter(fset)
	var pkgs []*Package
	dec := json.NewDecoder(&stdout)
	for dec.More() {
		var lp listedPackage
		if err := dec.Decode(&lp); err != nil {
			return nil, fmt.Errorf("go list output: %w", err)
		}
		if lp.Standard || lp.Dir == "" {
			continue
		}
		files := append([]string(nil), lp.GoFiles...)
		if cfg.Tests {
			files = append(files, lp.TestGoFiles...)
		}
		pkg, err := parseFiles(fset, lp.ImportPath, lp.Dir, files)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			if !cfg.SyntaxOnly {
				typeCheck(pkg, imp)
			}
			pkgs = append(pkgs, pkg)
		}
		if cfg.Tests && len(lp.XTestGoFiles) > 0 {
			// The external test package is a distinct package; it shares the
			// directory but never the identifiers, so it loads separately.
			xpkg, err := parseFiles(fset, lp.ImportPath+"_test", lp.Dir, lp.XTestGoFiles)
			if err != nil {
				return nil, err
			}
			if xpkg != nil {
				if !cfg.SyntaxOnly {
					typeCheck(xpkg, imp)
				}
				pkgs = append(pkgs, xpkg)
			}
		}
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// LoadFixture parses every .go file of one directory as a single package —
// the golden-test loader for testdata fixtures, which live outside the
// module's package graph. path is the import path the fixture simulates
// (the boundary rule keys on it).
func LoadFixture(dir, path string) (*Package, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return nil, err
	}
	sort.Strings(matches)
	fset := token.NewFileSet()
	pkg, err := parseFilePaths(fset, path, dir, matches)
	if err != nil {
		return nil, err
	}
	if pkg == nil {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	typeCheck(pkg, newLenientImporter(fset))
	return pkg, nil
}

func parseFiles(fset *token.FileSet, path, dir string, names []string) (*Package, error) {
	paths := make([]string, len(names))
	for i, n := range names {
		paths[i] = filepath.Join(dir, n)
	}
	return parseFilePaths(fset, path, dir, paths)
}

func parseFilePaths(fset *token.FileSet, path, dir string, paths []string) (*Package, error) {
	if len(paths) == 0 {
		return nil, nil
	}
	pkg := &Package{Path: path, Dir: dir, Fset: fset}
	for _, p := range paths {
		f, err := parser.ParseFile(fset, p, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: parse %s: %w", p, err)
		}
		pkg.Files = append(pkg.Files, f)
	}
	return pkg, nil
}

// typeCheck runs a lenient source type-check: every error is swallowed and
// the (possibly partial) result attached. Rules treat missing resolution as
// "unknown" and fall back to syntax, so a half-typed package can only lose
// precision, never correctness of the load.
func typeCheck(pkg *Package, imp types.Importer) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{
		Importer:    imp,
		Error:       func(error) {}, // partial information is fine
		FakeImportC: true,
	}
	tpkg, _ := conf.Check(pkg.Path, pkg.Fset, pkg.Files, info)
	pkg.Types = tpkg
	pkg.Info = info
}

// lenientImporter resolves standard-library imports from source (so
// sync.Mutex, math/rand and friends carry real types) and everything else
// to an empty stub package. Module-internal imports would need the whole
// dependency graph type-checked; no rule requires cross-package types, so
// stubs keep the load cheap and the fixtures self-contained.
type lenientImporter struct {
	std   types.Importer
	stubs map[string]*types.Package
}

func newLenientImporter(fset *token.FileSet) *lenientImporter {
	return &lenientImporter{
		std:   importer.ForCompiler(fset, "source", nil),
		stubs: make(map[string]*types.Package),
	}
}

func (li *lenientImporter) Import(path string) (*types.Package, error) {
	if isStdlib(path) {
		if pkg, err := li.std.Import(path); err == nil {
			return pkg, nil
		}
	}
	if pkg, ok := li.stubs[path]; ok {
		return pkg, nil
	}
	name := path
	if i := strings.LastIndex(name, "/"); i >= 0 {
		name = name[i+1:]
	}
	pkg := types.NewPackage(path, name)
	pkg.MarkComplete()
	li.stubs[path] = pkg
	return pkg, nil
}

// isStdlib reports whether an import path names a standard-library package
// (first path element carries no dot and the path is not module-internal).
func isStdlib(path string) bool {
	first := path
	if i := strings.Index(first, "/"); i >= 0 {
		first = first[:i]
	}
	return !strings.Contains(first, ".") && !strings.HasPrefix(path, "repro/") && !strings.HasPrefix(path, "vettest/")
}
