package analysis

import (
	"strconv"
	"strings"
)

// BoundaryConfig seals a set of packages: only consumers under the allowed
// prefixes may import them.
type BoundaryConfig struct {
	// Sealed lists the import-path prefixes that form the sealed engine
	// (a prefix matches itself and any subpackage).
	Sealed []string
	// Allowed lists the import-path prefixes whose packages may import the
	// sealed ones (the engine itself and its sanctioned façade).
	Allowed []string
	// Suggest names the public package the finding points consumers to.
	Suggest string
}

// Boundary builds the import-boundary rule: an import of a sealed package
// from anywhere outside the allowed prefixes is a finding. Purely
// syntactic — it fires even in files that do not type-check, so a broken
// tree cannot hide an eroding boundary.
func Boundary(cfg BoundaryConfig) *Rule {
	r := &Rule{
		Name: "boundary",
		Doc:  "sealed engine packages may only be imported from the allowed prefixes",
	}
	r.Run = func(p *Pass) {
		if underAny(p.Pkg.Path, cfg.Allowed) {
			return
		}
		for _, f := range p.Pkg.Files {
			for _, imp := range f.Imports {
				val, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					continue
				}
				if underAny(val, cfg.Sealed) {
					p.Reportf(imp.Pos(), "import of sealed package %s from %s: use %s instead", val, p.Pkg.Path, cfg.Suggest)
				}
			}
		}
	}
	return r
}

// underAny reports whether path equals one of the prefixes or lies beneath
// it. A "_test" suffix on the last element is stripped first, so the
// external test package of an allowed consumer stays allowed.
func underAny(path string, prefixes []string) bool {
	path = strings.TrimSuffix(path, "_test")
	for _, pre := range prefixes {
		if path == pre || strings.HasPrefix(path, pre+"/") {
			return true
		}
	}
	return false
}
