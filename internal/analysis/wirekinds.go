package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// WirekindsConfig configures the wire-kind coverage rule for one package.
type WirekindsConfig struct {
	// PkgSuffix selects the package by import-path suffix.
	PkgSuffix string
	// KindPrefix selects the kind constants by name prefix ("msg", "ctl").
	KindPrefix string
	// DispatchFuncs names the receive-side dispatch functions; every kind
	// constant must appear as a switch case in at least one of them.
	DispatchFuncs []string
	// BatchKinds lists the kinds that may travel inside a batch frame; each
	// must additionally appear as a case in one of BatchFuncs, so a
	// batchable kind cannot silently fall out of the batch decoder.
	BatchKinds []string
	BatchFuncs []string
	// PreSend configures the ordering half of the invariant: transmitting
	// send methods must flush the destination's pending batch first. Nil
	// disables the check (packages without a batcher).
	PreSend *PreSendConfig
}

// PreSendConfig describes the batched wire path's ordering obligation.
type PreSendConfig struct {
	// RecvType is the receiver type whose send methods are checked ("link").
	RecvType string
	// MethodPrefix selects the checked methods by name ("send").
	MethodPrefix string
	// TransmitCalls are the callee names that put bytes on the wire; a
	// method containing one must also contain one of FlushCalls.
	TransmitCalls []string
	// FlushCalls are the callee names that serialize against the pending
	// batch (preSend, or the batcher's own locked flush).
	FlushCalls []string
	// Exempt lists methods that route through the batcher itself and so
	// already order against it.
	Exempt []string
}

// Wirekinds builds the wire-kind coverage rule: a kind constant someone can
// send but no dispatch switch handles is dead on arrival at the receiver
// (PR 5's replay and PR 7's batcher both grew kinds that every node must
// understand), and a send path that skips the batcher flush reorders the
// wire against send order, breaking the PR 7 ordering invariant.
func Wirekinds(cfgs []WirekindsConfig) *Rule {
	r := &Rule{
		Name: "wirekinds",
		Doc:  "every wire-kind constant is dispatched, batchable kinds are batch-decoded, and send paths flush the batcher",
	}
	r.Run = func(p *Pass) {
		for i := range cfgs {
			if suffixMatch(p.Pkg.Path, cfgs[i].PkgSuffix) {
				runWirekinds(p, &cfgs[i])
			}
		}
	}
	return r
}

func runWirekinds(p *Pass, cfg *WirekindsConfig) {
	kinds := kindConsts(p, cfg.KindPrefix)
	if len(kinds) == 0 {
		return
	}
	dispatched := caseIdents(p, cfg.DispatchFuncs)
	batched := caseIdents(p, cfg.BatchFuncs)
	batchable := make(map[string]bool, len(cfg.BatchKinds))
	for _, k := range cfg.BatchKinds {
		batchable[k] = true
	}
	for _, k := range kinds {
		if !dispatched[k.name] {
			p.Reportf(k.pos.Pos(), "wire kind %s is not a case in any dispatch switch (%s): receivers will reject it as unknown", k.name, strings.Join(cfg.DispatchFuncs, ", "))
		}
		if batchable[k.name] && !batched[k.name] {
			p.Reportf(k.pos.Pos(), "batchable wire kind %s is not a case in the batch decoder (%s): it would be lost inside batch frames", k.name, strings.Join(cfg.BatchFuncs, ", "))
		}
	}
	if cfg.PreSend != nil {
		checkPreSend(p, cfg.PreSend)
	}
}

// kindConst is one kind constant declaration.
type kindConst struct {
	name string
	pos  ast.Node
}

// kindConsts collects the package's kind constants: prefix followed by an
// upper-case letter, so "msg" matches msgToken but not a lower-case word
// that merely starts with the same letters.
func kindConsts(p *Pass, prefix string) []kindConst {
	var out []kindConst
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					if strings.HasPrefix(name.Name, prefix) && len(name.Name) > len(prefix) &&
						name.Name[len(prefix)] >= 'A' && name.Name[len(prefix)] <= 'Z' {
						out = append(out, kindConst{name: name.Name, pos: name})
					}
				}
			}
		}
	}
	return out
}

// caseIdents collects every identifier appearing in a switch case inside
// the named functions.
func caseIdents(p *Pass, funcs []string) map[string]bool {
	want := make(map[string]bool, len(funcs))
	for _, fn := range funcs {
		want[fn] = true
	}
	out := make(map[string]bool)
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !want[fd.Name.Name] {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				cc, ok := n.(*ast.CaseClause)
				if !ok {
					return true
				}
				for _, expr := range cc.List {
					if id, ok := expr.(*ast.Ident); ok {
						out[id.Name] = true
					}
				}
				return true
			})
		}
	}
	return out
}

// checkPreSend verifies each transmitting send method orders itself against
// the pending batch.
func checkPreSend(p *Pass, cfg *PreSendConfig) {
	exempt := make(map[string]bool, len(cfg.Exempt))
	for _, e := range cfg.Exempt {
		exempt[e] = true
	}
	transmit := make(map[string]bool, len(cfg.TransmitCalls))
	for _, t := range cfg.TransmitCalls {
		transmit[t] = true
	}
	flush := make(map[string]bool, len(cfg.FlushCalls))
	for _, fl := range cfg.FlushCalls {
		flush[fl] = true
	}
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Recv == nil {
				continue
			}
			if recvTypeName(fd) != cfg.RecvType ||
				!strings.HasPrefix(fd.Name.Name, cfg.MethodPrefix) ||
				exempt[fd.Name.Name] {
				continue
			}
			var transmits, flushes bool
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				name := calleeName(call)
				if transmit[name] {
					transmits = true
				}
				if flush[name] {
					flushes = true
				}
				return true
			})
			if transmits && !flushes {
				p.Reportf(fd.Name.Pos(), "%s.%s transmits without flushing the pending batch (call %s first): batched tokens sent earlier would arrive after it", cfg.RecvType, fd.Name.Name, strings.Join(cfg.FlushCalls, " or "))
			}
		}
	}
}

// recvTypeName returns the bare receiver type name of a method ("link" for
// func (l *link) ...).
func recvTypeName(fd *ast.FuncDecl) string {
	if len(fd.Recv.List) != 1 {
		return ""
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// calleeName returns the terminal name of a call's function expression
// (trSend for l.trSend(...), preSend for l.preSend(...)).
func calleeName(call *ast.CallExpr) string {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		return fn.Sel.Name
	}
	return ""
}
