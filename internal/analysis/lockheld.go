package analysis

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"
)

// Lockheld builds the *Locked call-discipline rule. The project convention:
// a function whose name ends in "Locked" requires its receiver's mutex to
// be held by the caller. The rule verifies every call site satisfies one of
//
//   - the caller is itself a *Locked method on the same receiver value, or
//   - a mutex field of the callee's receiver was locked on the (straight-
//     line) path to the call and not yet unlocked.
//
// It is defer-unlock aware: `defer r.mu.Unlock()` releases at return, not
// before the call, so it never invalidates a lock for the statements that
// follow; an inline `r.mu.Unlock()` does. Control flow is approximated by
// source order — Lock anywhere textually before the call and not textually
// unlocked counts — which is exact for the lock-then-call shapes this
// codebase uses and errs toward silence, never toward noise, elsewhere.
func Lockheld() *Rule {
	r := &Rule{
		Name: "lockheld",
		Doc:  "*Locked functions are only called with the receiver's mutex held",
	}
	r.Run = func(p *Pass) {
		for _, f := range p.Pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				checkLockheldFunc(p, fd)
			}
		}
	}
	return r
}

func checkLockheldFunc(p *Pass, fd *ast.FuncDecl) {
	callerLocked := strings.HasSuffix(fd.Name.Name, "Locked")
	callerRecv := ""
	if fd.Recv != nil && len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
		callerRecv = fd.Recv.List[0].Names[0].Name
	}

	held := make(map[string]bool) // rendered mutex expr, e.g. "b.mu"
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			// A deferred Unlock releases at function exit; it neither holds
			// nor releases anything for the statements in between. A deferred
			// Lock would be nonsense; skip the whole subtree.
			return false
		case *ast.FuncLit:
			// A closure body runs at some other time; its lock operations do
			// not extend the enclosing function's held set. *Locked calls
			// inside it are checked against locks taken inside it only.
			checkLockheldLit(p, n, held)
			return false
		case *ast.CallExpr:
			lockheldCall(p, n, callerLocked, callerRecv, held)
		}
		return true
	})
}

// checkLockheldLit checks a function literal's body with the locks held at
// its creation point visible (a literal created under the lock and run
// synchronously is the common worker-closure shape; treating the
// environment as held errs toward silence).
func checkLockheldLit(p *Pass, lit *ast.FuncLit, outer map[string]bool) {
	held := make(map[string]bool, len(outer))
	for k := range outer {
		held[k] = true
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			return false
		case *ast.FuncLit:
			if n != lit {
				checkLockheldLit(p, n, held)
				return false
			}
		case *ast.CallExpr:
			lockheldCall(p, n, false, "", held)
		}
		return true
	})
}

// lockheldCall processes one call: mutex acquire/release bookkeeping, and
// the *Locked discipline check.
func lockheldCall(p *Pass, call *ast.CallExpr, callerLocked bool, callerRecv string, held map[string]bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		if id, ok := call.Fun.(*ast.Ident); ok && strings.HasSuffix(id.Name, "Locked") && id.Name != "Locked" {
			if !callerLocked && len(held) == 0 {
				p.Reportf(call.Pos(), "%s is only safe with the lock held: lock the mutex first or call from a *Locked function", id.Name)
			}
		}
		return
	}
	name := sel.Sel.Name
	switch name {
	case "Lock", "RLock":
		if isMutexExpr(p, sel.X) {
			held[render(p.Pkg.Fset, sel.X)] = true
		}
		return
	case "Unlock", "RUnlock":
		if isMutexExpr(p, sel.X) {
			delete(held, render(p.Pkg.Fset, sel.X))
		}
		return
	}
	if !strings.HasSuffix(name, "Locked") || name == "Locked" {
		return
	}
	recv := render(p.Pkg.Fset, sel.X)
	if callerLocked && recv == callerRecv {
		return // *Locked method calling a sibling on the same receiver
	}
	for h := range held {
		if strings.HasPrefix(h, recv+".") {
			return // a mutex field of the receiver is held
		}
	}
	p.Reportf(call.Pos(), "%s.%s requires %s's mutex held: lock a mutex field of %s on the path to this call or call from a *Locked method on it", recv, name, recv, recv)
}

// isMutexExpr reports whether expr plausibly denotes a mutex. With type
// information it demands sync.Mutex/sync.RWMutex (possibly behind
// pointers); without, any Lock/Unlock receiver is assumed to be one —
// overapproximating held locks errs toward silence.
func isMutexExpr(p *Pass, expr ast.Expr) bool {
	if p.Pkg.Info == nil {
		return true
	}
	tv, ok := p.Pkg.Info.Types[expr]
	if !ok || tv.Type == nil {
		return true
	}
	t := tv.Type
	for {
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
			continue
		}
		break
	}
	named, ok := t.(*types.Named)
	if !ok {
		return true
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return true
	}
	if obj.Pkg().Path() == "sync" {
		return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
	}
	// A project type embedding or wrapping a mutex still synchronizes;
	// accept it (the rule only uses this to admit locks, never to flag).
	return true
}

// render prints an expression compactly ("b.mu", "l.batchers").
func render(fset *token.FileSet, expr ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, expr); err != nil {
		return ""
	}
	return buf.String()
}
