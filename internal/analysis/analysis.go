// Package analysis is dps-vet: a dependency-free static-analysis suite
// that machine-checks the engine invariants this project otherwise enforces
// by comment and code review. Each Rule inspects one loaded package and
// reports Findings; cmd/dps-vet runs the full project rule set over the
// tree and fails CI on any finding.
//
// The rules (see project.go for the project configuration):
//
//   - boundary: internal/core may only be imported from internal/ and dps/
//     (the sealed-engine contract of PR 3);
//   - lockheld: a *Locked function may only be called with the receiver's
//     mutex held — from another *Locked method on the same receiver or
//     under an explicit Lock on the path to the call (defer-unlock aware);
//   - poolown: values drawn from sync.Pool wrappers are not used after
//     their Put and not retained in fields, globals or spawned goroutines
//     (the buffer-ownership-transfer contract of PR 1);
//   - wirekinds: every wire-kind constant is handled by the dispatch
//     switches, batchable kinds by the batch decoder too, and every
//     transmitting send path flushes the batcher first (preSend — the
//     ordering invariant of PR 7);
//   - determinism: seeded components (chaos schedule generation, simnet
//     fault draws) take no wall-clock or global-PRNG input, so faults
//     reproduce exactly from CHAOS_SEED;
//   - tracepoints: every wire kind dispatched on the receive path records a
//     trace span or delivers into an instrumented path, so a new kind
//     cannot become an invisible hop in sampled calls' timelines (PR 10).
//
// Escape hatch: a finding may be silenced with a directive on its line or
// the line above:
//
//	//dpsvet:ignore <rule> <reason>
//
// The directive itself is validated — an unknown rule name or a missing
// reason is an error — so suppressions stay auditable.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Finding is one rule violation at a source position.
type Finding struct {
	Pos  token.Position
	Rule string
	Msg  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Rule, f.Msg)
}

// Rule is one invariant checker. Run inspects a single package through the
// Pass and reports violations via Pass.Reportf.
type Rule struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass carries one package through one rule.
type Pass struct {
	Pkg  *Package
	rule *Rule
	out  *[]Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.out = append(*p.out, Finding{
		Pos:  p.Pkg.Fset.Position(pos),
		Rule: p.rule.Name,
		Msg:  fmt.Sprintf(format, args...),
	})
}

// ignoreDirective is one parsed //dpsvet:ignore comment.
type ignoreDirective struct {
	pos    token.Position
	rule   string
	reason string
	bad    string // non-empty: the directive itself is malformed
}

const ignorePrefix = "//dpsvet:ignore"

// parseIgnores extracts the ignore directives of one file. known is the
// full project rule-name set: directives naming anything else are reported
// as malformed rather than silently ignored.
func parseIgnores(fset *token.FileSet, f *ast.File, known map[string]bool) []ignoreDirective {
	var out []ignoreDirective
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, ignorePrefix) {
				continue
			}
			d := ignoreDirective{pos: fset.Position(c.Pos())}
			fields := strings.Fields(strings.TrimPrefix(c.Text, ignorePrefix))
			switch {
			case len(fields) == 0:
				d.bad = "ignore directive names no rule"
			case !known[fields[0]]:
				d.bad = fmt.Sprintf("ignore directive names unknown rule %q", fields[0])
			case len(fields) < 2:
				d.bad = fmt.Sprintf("ignore directive for %q gives no reason", fields[0])
			default:
				d.rule = fields[0]
				d.reason = strings.Join(fields[1:], " ")
			}
			out = append(out, d)
		}
	}
	return out
}

// Run applies every rule to every package, resolves //dpsvet:ignore
// directives, and returns the surviving findings sorted by position.
// Malformed directives are findings of the pseudo-rule "dpsvet" and cannot
// be suppressed.
func Run(pkgs []*Package, rules []*Rule) []Finding {
	known := make(map[string]bool, len(KnownRuleNames))
	for _, n := range KnownRuleNames {
		known[n] = true
	}

	var raw []Finding
	var directives []ignoreDirective
	for _, pkg := range pkgs {
		for _, rule := range rules {
			pass := &Pass{Pkg: pkg, rule: rule, out: &raw}
			rule.Run(pass)
		}
		for _, f := range pkg.Files {
			directives = append(directives, parseIgnores(pkg.Fset, f, known)...)
		}
	}

	// Index valid directives by file and line; a finding is suppressed by a
	// matching directive on its own line or the line directly above.
	type key struct {
		file string
		line int
		rule string
	}
	allowed := make(map[key]bool)
	var out []Finding
	for _, d := range directives {
		if d.bad != "" {
			out = append(out, Finding{Pos: d.pos, Rule: "dpsvet", Msg: d.bad})
			continue
		}
		allowed[key{d.pos.Filename, d.pos.Line, d.rule}] = true
	}
	for _, f := range raw {
		if allowed[key{f.Pos.Filename, f.Pos.Line, f.Rule}] ||
			allowed[key{f.Pos.Filename, f.Pos.Line - 1, f.Rule}] {
			continue
		}
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Rule < b.Rule
	})
	return out
}
