package analysis

import (
	"go/ast"
)

// PoolSpec names one pooled resource: the package-local getter that draws
// from the pool and the putter that recycles into it.
type PoolSpec struct {
	Get string
	Put string
}

// PoolownConfig configures the pooled-buffer ownership rule for one or
// more packages.
type PoolownConfig struct {
	// PkgSuffixes selects the packages the rule applies to by import-path
	// suffix.
	PkgSuffixes []string
	// Pools lists the get/put pairs of the package's pools.
	Pools []PoolSpec
	// ExtraGets lists additional functions whose results are pool-owned
	// (e.g. a decoder that returns a pooled envelope).
	ExtraGets []string
	// SyncPools lists package-level sync.Pool variables used directly
	// (flateWriters.Get() / flateWriters.Put(x)) rather than through named
	// wrapper functions.
	SyncPools []string
}

// Poolown builds the pooled-value ownership rule. Pools recycle buffers and
// envelopes across the wire path under a strict ownership transfer (the
// transport.Handler contract): once a value is Put — or handed to a party
// that will Put it — the giver must not touch it again, and a pooled value
// must never outlive its owner's frame through a field, a global or a
// goroutine the function leaves behind. The rule checks, per function:
//
//   - use-after-put: a variable passed to a pool's Put is referenced again
//     by a later statement of the same block without being rebound first;
//   - retention: a variable bound to a pool Get (directly or through any
//     expression containing the Get call) is assigned into a field, global
//     or composite element, or captured by a `go` statement's closure.
//
// Straight-line per-block analysis keeps it exact for the linear
// get-use-put shapes of the hot paths and silent for branchy recycling
// (puts on distinct branches never poison each other).
func Poolown(cfg PoolownConfig) *Rule {
	gets := make(map[string]bool)
	puts := make(map[string]bool)
	for _, pl := range cfg.Pools {
		gets[pl.Get] = true
		puts[pl.Put] = true
	}
	for _, g := range cfg.ExtraGets {
		gets[g] = true
	}
	syncPools := make(map[string]bool, len(cfg.SyncPools))
	for _, v := range cfg.SyncPools {
		syncPools[v] = true
	}
	isGet := func(call *ast.CallExpr) bool {
		name, method := callParts(call)
		if method == "" {
			return gets[name]
		}
		return syncPools[name] && method == "Get"
	}
	isPut := func(call *ast.CallExpr) (string, bool) {
		name, method := callParts(call)
		if method == "" {
			return name, puts[name]
		}
		return name + "." + method, syncPools[name] && method == "Put"
	}
	r := &Rule{
		Name: "poolown",
		Doc:  "pooled values are not used after Put and not retained beyond the owner's frame",
	}
	r.Run = func(p *Pass) {
		applies := false
		for _, suf := range cfg.PkgSuffixes {
			if suffixMatch(p.Pkg.Path, suf) {
				applies = true
				break
			}
		}
		if !applies {
			return
		}
		for _, f := range p.Pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				pooled := pooledLocals(fd.Body, isGet)
				checkRetention(p, fd.Body, pooled)
				checkUseAfterPut(p, fd.Body, isPut)
			}
		}
	}
	return r
}

// callParts decomposes a call into (name, method): ("getBuf", "") for
// getBuf(...), ("flateWriters", "Get") for flateWriters.Get(...).
func callParts(call *ast.CallExpr) (name, method string) {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name, ""
	case *ast.SelectorExpr:
		if id, ok := fn.X.(*ast.Ident); ok {
			return id.Name, fn.Sel.Name
		}
	}
	return "", ""
}

// pooledLocals collects the names of locals whose binding expression
// contains a pool Get call — `buf := getWireBuf()` as well as derivations
// like `buf := appendHeader(getWireBuf(), m)` or the type-asserted
// `fw, _ := flateWriters.Get().(*flate.Writer)`.
func pooledLocals(body *ast.BlockStmt, isGet func(*ast.CallExpr) bool) map[string]bool {
	pooled := make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		fromPool := false
		for _, rhs := range as.Rhs {
			if exprContainsCall(rhs, isGet) {
				fromPool = true
				break
			}
		}
		if !fromPool {
			return true
		}
		for _, lhs := range as.Lhs {
			if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
				pooled[id.Name] = true
			}
		}
		return true
	})
	return pooled
}

func exprContainsCall(expr ast.Expr, match func(*ast.CallExpr) bool) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && match(call) {
			found = true
			return false
		}
		return true
	})
	return found
}

// checkRetention flags pooled locals that escape the function's frame.
func checkRetention(p *Pass, body *ast.BlockStmt, pooled map[string]bool) {
	if len(pooled) == 0 {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				switch lhs.(type) {
				case *ast.SelectorExpr, *ast.IndexExpr:
				default:
					continue
				}
				if i >= len(n.Rhs) {
					continue
				}
				if id, ok := n.Rhs[i].(*ast.Ident); ok && pooled[id.Name] {
					p.Reportf(n.Pos(), "pooled value %s stored into %s outlives its owner's frame; copy it or transfer ownership explicitly", id.Name, render(p.Pkg.Fset, lhs))
				}
			}
		case *ast.GoStmt:
			lit, ok := n.Call.Fun.(*ast.FuncLit)
			if !ok {
				return true
			}
			params := make(map[string]bool)
			for _, fld := range lit.Type.Params.List {
				for _, name := range fld.Names {
					params[name.Name] = true
				}
			}
			ast.Inspect(lit.Body, func(inner ast.Node) bool {
				id, ok := inner.(*ast.Ident)
				if ok && pooled[id.Name] && !params[id.Name] {
					p.Reportf(id.Pos(), "pooled value %s captured by a spawned goroutine; the pool may recycle it under the goroutine", id.Name)
					return false
				}
				return true
			})
			return false
		}
		return true
	})
}

// checkUseAfterPut flags references to a variable in statements that follow
// its Put within the same block, unless a later statement rebinds it first.
func checkUseAfterPut(p *Pass, body *ast.BlockStmt, isPut func(*ast.CallExpr) (string, bool)) {
	ast.Inspect(body, func(n ast.Node) bool {
		block, ok := n.(*ast.BlockStmt)
		if !ok {
			return true
		}
		for i, stmt := range block.List {
			name, putName, ok := putOfIdent(stmt, isPut)
			if !ok {
				continue
			}
			for _, later := range block.List[i+1:] {
				if rebinds(later, name) {
					break
				}
				if use, used := firstUse(later, name); used {
					p.Reportf(use.Pos(), "%s used after %s(%s) returned it to the pool", name, putName, name)
					break
				}
			}
		}
		return true
	})
}

// putOfIdent matches a statement of the form `putX(v)` or `pool.Put(v)`
// and returns v's name with the put's display name.
func putOfIdent(stmt ast.Stmt, isPut func(*ast.CallExpr) (string, bool)) (name, putName string, ok bool) {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return "", "", false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return "", "", false
	}
	putName, ok = isPut(call)
	if !ok {
		return "", "", false
	}
	arg, ok := call.Args[0].(*ast.Ident)
	if !ok {
		return "", "", false
	}
	return arg.Name, putName, true
}

// rebinds reports whether stmt assigns a fresh value to name at its top
// level (which ends the recycled value's liveness).
func rebinds(stmt ast.Stmt, name string) bool {
	as, ok := stmt.(*ast.AssignStmt)
	if !ok {
		return false
	}
	for _, lhs := range as.Lhs {
		if id, ok := lhs.(*ast.Ident); ok && id.Name == name {
			return true
		}
	}
	return false
}

// firstUse reports the first reference to name anywhere under stmt.
func firstUse(stmt ast.Stmt, name string) (ast.Node, bool) {
	var at ast.Node
	ast.Inspect(stmt, func(n ast.Node) bool {
		if at != nil {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && id.Name == name {
			at = id
			return false
		}
		return true
	})
	if at == nil {
		return nil, false
	}
	return at, true
}
