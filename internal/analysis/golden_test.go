package analysis

import (
	"fmt"
	"regexp"
	"strconv"
	"testing"
)

// wantRe matches the expectation marker of golden fixtures: a trailing
//
//	// want "regexp" "regexp" ...
//
// comment on the line the finding must land on. Each quoted pattern is
// matched against one finding's "rule: message" string.
var (
	wantRe    = regexp.MustCompile(`//\s*want((?:\s+"(?:[^"\\]|\\.)*")+)\s*$`)
	wantArgRe = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)
)

type goldenKey struct {
	file string
	line int
}

// runGolden loads the fixture directory as a package with the given import
// path, runs the rules through the full pipeline (including ignore-directive
// resolution), and diffs the findings against the fixture's want markers.
func runGolden(t *testing.T, dir, importPath string, rules ...*Rule) {
	t.Helper()
	pkg, err := LoadFixture(dir, importPath)
	if err != nil {
		t.Fatalf("load fixture %s: %v", dir, err)
	}
	wants := collectWants(t, pkg)
	findings := Run([]*Package{pkg}, rules)

	for _, f := range findings {
		k := goldenKey{f.Pos.Filename, f.Pos.Line}
		got := fmt.Sprintf("%s: %s", f.Rule, f.Msg)
		matched := false
		rest := wants[k][:0]
		for _, re := range wants[k] {
			if !matched && re.MatchString(got) {
				matched = true
				continue
			}
			rest = append(rest, re)
		}
		wants[k] = rest
		if !matched {
			t.Errorf("unexpected finding at %s:%d: %s", f.Pos.Filename, f.Pos.Line, got)
		}
	}
	for k, res := range wants {
		for _, re := range res {
			t.Errorf("missing finding at %s:%d matching %q", k.file, k.line, re)
		}
	}
}

// collectWants extracts the want markers of every fixture file, keyed by
// position.
func collectWants(t *testing.T, pkg *Package) map[goldenKey][]*regexp.Regexp {
	t.Helper()
	wants := make(map[goldenKey][]*regexp.Regexp)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				k := goldenKey{pos.Filename, pos.Line}
				for _, q := range wantArgRe.FindAllString(m[1], -1) {
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %s: %v", pos.Filename, pos.Line, q, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
					}
					wants[k] = append(wants[k], re)
				}
			}
		}
	}
	return wants
}
