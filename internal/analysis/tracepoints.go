package analysis

import (
	"go/ast"
	"strings"
)

// TracepointsConfig configures the span-coverage rule for one package.
type TracepointsConfig struct {
	// PkgSuffix selects the package by import-path suffix.
	PkgSuffix string
	// KindPrefix selects the kind constants by name prefix ("msg").
	KindPrefix string
	// DispatchFuncs names the receive-side dispatch functions whose top-level
	// kind switch is checked.
	DispatchFuncs []string
	// SpanCalls are the callee names that record a span or hand the message
	// to a path that does (the delivery entry points of token-bearing kinds).
	SpanCalls []string
}

// Tracepoints builds the observability coverage rule: every wire kind
// handled on the receive path either records a trace span (directly, or by
// delivering into the engine's instrumented dispatch) or carries an
// explicit //dpsvet:ignore naming why the kind needs none. A new wire kind
// therefore cannot ship as a silent gap in sampled calls' timelines — the
// exact failure mode PR 10 exists to prevent (a token hop whose latency is
// invisible is a hop that cannot be debugged).
func Tracepoints(cfgs []TracepointsConfig) *Rule {
	r := &Rule{
		Name: "tracepoints",
		Doc:  "every dispatched wire kind records a trace span or carries an explicit ignore",
	}
	r.Run = func(p *Pass) {
		for i := range cfgs {
			if suffixMatch(p.Pkg.Path, cfgs[i].PkgSuffix) {
				runTracepoints(p, &cfgs[i])
			}
		}
	}
	return r
}

func runTracepoints(p *Pass, cfg *TracepointsConfig) {
	want := make(map[string]bool, len(cfg.DispatchFuncs))
	for _, fn := range cfg.DispatchFuncs {
		want[fn] = true
	}
	span := make(map[string]bool, len(cfg.SpanCalls))
	for _, s := range cfg.SpanCalls {
		span[s] = true
	}
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !want[fd.Name.Name] {
				continue
			}
			// Only the function's top-level switches are dispatch switches;
			// a nested switch (decoding a wrapper kind's inner frame) is
			// covered by its enclosing case.
			for _, stmt := range fd.Body.List {
				sw, ok := stmt.(*ast.SwitchStmt)
				if !ok {
					continue
				}
				checkTraceSwitch(p, cfg, span, sw)
			}
		}
	}
}

func checkTraceSwitch(p *Pass, cfg *TracepointsConfig, span map[string]bool, sw *ast.SwitchStmt) {
	for _, c := range sw.Body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		kind := ""
		for _, expr := range cc.List {
			id, ok := expr.(*ast.Ident)
			if !ok {
				continue
			}
			n := id.Name
			if strings.HasPrefix(n, cfg.KindPrefix) && len(n) > len(cfg.KindPrefix) &&
				n[len(cfg.KindPrefix)] >= 'A' && n[len(cfg.KindPrefix)] <= 'Z' {
				kind = n
				break
			}
		}
		if kind == "" {
			continue // default clause, or no kind constant aboard
		}
		recorded := false
		for _, s := range cc.Body {
			ast.Inspect(s, func(n ast.Node) bool {
				if recorded {
					return false
				}
				if call, ok := n.(*ast.CallExpr); ok && span[calleeName(call)] {
					recorded = true
					return false
				}
				return true
			})
		}
		if !recorded {
			p.Reportf(cc.Pos(), "wire kind %s is dispatched without a span-record call (%s): a sampled call passing through it leaves no trace of the hop", kind, strings.Join(cfg.SpanCalls, ", "))
		}
	}
}
