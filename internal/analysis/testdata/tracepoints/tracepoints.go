// Package fixture exercises the tracepoints span-coverage rule with a
// miniature receive dispatcher.
package fixture

const (
	msgToken   = 1
	msgControl = 2
	msgSilent  = 3
	msgWrapped = 4
)

func traceWire(int)    {}
func deliverToken(int) {}
func decodeInner(int)  {}

func handle(kind int) {
	switch kind {
	case msgToken:
		deliverToken(kind) // ok: delivery path records spans downstream
	//dpsvet:ignore tracepoints control message carries no token
	case msgControl:
		decodeInner(kind)
	case msgSilent: // want "tracepoints: wire kind msgSilent is dispatched without a span-record call"
		decodeInner(kind)
	case msgWrapped:
		// The nested switch decodes the wrapper's inner frame; its cases
		// must not be checked independently — the wrapper's own span call
		// covers them.
		switch kind {
		case msgToken:
			decodeInner(kind)
		}
		traceWire(kind)
	default:
	}
}

// notDispatch switches over kinds without span calls, but it is not a
// configured dispatch function and must produce no findings.
func notDispatch(kind int) {
	switch kind {
	case msgSilent:
	}
}
