// Package fixture exercises wire-kind dispatch coverage and the pre-send
// batch-flush obligation with a miniature link.
package fixture

const (
	msgToken  = 1 // want "wirekinds: batchable wire kind msgToken is not a case in the batch decoder"
	msgAck    = 2
	msgOrphan = 3 // want "wirekinds: wire kind msgOrphan is not a case in any dispatch switch"
)

func handle(kind int) {
	switch kind {
	case msgToken:
	case msgAck:
	}
}

// notDispatch cases over msgOrphan, but it is not a configured dispatch
// function and must not count as coverage.
func notDispatch(kind int) {
	switch kind {
	case msgOrphan:
	}
}

func decodeBatch(kind int) {
	switch kind {
	case msgAck:
	}
}

type link struct{}

func (l *link) trSend([]byte) {}
func (l *link) preSend()      {}

func (l *link) sendAck() {
	l.preSend()
	l.trSend(nil) // ok: flushed first
}

func (l *link) sendOrphan() { // want "wirekinds: link.sendOrphan transmits without flushing the pending batch"
	l.trSend(nil)
}

func (l *link) sendToken() {
	l.trSend(nil) // ok: exempt, routes through the batcher itself
}

func (l *link) sendNothing() {
	// ok: no transmit call, nothing to order
}
