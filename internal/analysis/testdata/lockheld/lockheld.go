// Package fixture exercises the *Locked call discipline.
package fixture

import "sync"

type batcher struct {
	mu  sync.Mutex
	buf []int
}

func (b *batcher) addLocked(v int) { b.buf = append(b.buf, v) }

func (b *batcher) flushLocked() []int {
	b.addLocked(0) // ok: *Locked sibling on the same receiver
	out := b.buf
	b.buf = nil
	return out
}

func (b *batcher) add(v int) {
	b.mu.Lock()
	b.addLocked(v) // ok: b.mu held
	b.mu.Unlock()
}

func (b *batcher) addDeferred(v int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.addLocked(v) // ok: the deferred unlock releases at return
}

func (b *batcher) addRacy(v int) {
	b.addLocked(v) // want "lockheld: b.addLocked requires b's mutex held"
}

func (b *batcher) addAfterUnlock(v int) {
	b.mu.Lock()
	b.mu.Unlock()
	b.addLocked(v) // want "lockheld: b.addLocked requires b's mutex held"
}

func (b *batcher) addOther(other *batcher, v int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	other.addLocked(v) // want "lockheld: other.addLocked requires other's mutex held"
}

func (b *batcher) spawn() {
	go func() {
		b.addLocked(1) // want "lockheld: b.addLocked requires b's mutex held"
	}()
}

func (b *batcher) withLock() {
	b.mu.Lock()
	defer b.mu.Unlock()
	func() {
		b.addLocked(2) // ok: literal created and run under the lock
	}()
}

type table struct {
	mu sync.RWMutex
	m  map[int]int
}

func (t *table) getLocked(k int) int { return t.m[k] }

func (t *table) get(k int) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.getLocked(k) // ok: read lock held
}

func helperLocked() {}

func callsHelperBare() {
	helperLocked() // want "lockheld: helperLocked is only safe with the lock held"
}

func callsHelperHeld(b *batcher) {
	b.mu.Lock()
	helperLocked() // ok: a lock is held on the path
	b.mu.Unlock()
}
