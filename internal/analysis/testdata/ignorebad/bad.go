// Package fixture carries only malformed //dpsvet:ignore directives; the
// validation test asserts each becomes a finding of the pseudo-rule
// "dpsvet".
package fixture

//dpsvet:ignore

//dpsvet:ignore nosuchrule the rule name is not in the vocabulary

//dpsvet:ignore boundary
