// Package fixture exercises the seed-determinism rule; sched.go is the
// configured schedule file, so wall-clock input is banned here.
package fixture

import (
	"math/rand"
	"time"
)

func schedule(seed int64) []time.Duration {
	rng := rand.New(rand.NewSource(seed)) // ok: explicitly seeded generator
	out := make([]time.Duration, 0, 4)
	for i := 0; i < 4; i++ {
		out = append(out, time.Duration(rng.Int63n(int64(time.Second))))
	}
	return out
}

func badGlobal() int64 {
	return rand.Int63n(10) // want "determinism: rand.Int63n draws from the global source"
}

func badClock() time.Time {
	return time.Now() // want "determinism: time.Now reads the wall clock in a schedule path"
}

func badSelect(done chan struct{}) {
	select {
	case <-done:
	case <-time.After(time.Second): // want "determinism: select over a wall-clock timer in a schedule path" "determinism: time.After reads the wall clock"
	}
}
