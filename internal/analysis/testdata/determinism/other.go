package fixture

import (
	"math/rand"
	"time"
)

// measure is measurement code outside the schedule files: wall clock is
// allowed, the global PRNG still is not.
func measure() time.Duration {
	start := time.Now() // ok: not a schedule file
	return time.Since(start)
}

func badOther() int {
	return rand.Intn(3) // want "determinism: rand.Intn draws from the global source"
}
