// Package outsider exercises the //dpsvet:ignore escape hatch: a valid
// directive on the line above a finding suppresses it; an undirected
// sibling finding survives.
package outsider

import (
	//dpsvet:ignore boundary migration shim until the facade exposes checkpoints
	_ "repro/internal/core"
	_ "repro/internal/core/deep" // want "boundary: import of sealed package repro/internal/core/deep"
)
