// Package outsider simulates an application package outside the allowed
// prefixes reaching into the sealed engine.
package outsider

import (
	"fmt"

	_ "repro/dps"
	_ "repro/internal/core"      // want "boundary: import of sealed package repro/internal/core from vettest/outsider: use repro/dps instead"
	_ "repro/internal/core/deep" // want "boundary: import of sealed package repro/internal/core/deep"
)

var _ = fmt.Sprintf
