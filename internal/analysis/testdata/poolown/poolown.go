// Package fixture exercises the pooled-value ownership rule with a local
// pool shaped like internal/core's buffer pools.
package fixture

type buf struct{ b []byte }

func getBuf() *buf            { return &buf{} }
func putBuf(*buf)             {}
func decodeBuf(p []byte) *buf { return &buf{b: p} }
func wrap(b *buf) *buf        { return b }

type holder struct{ b *buf }

func ok() {
	b := getBuf()
	b.b = append(b.b, 1)
	putBuf(b)
}

func useAfterPut() {
	b := getBuf()
	putBuf(b)
	b.b = nil // want "poolown: b used after putBuf\\(b\\) returned it to the pool"
}

func rebound() {
	b := getBuf()
	putBuf(b)
	b = getBuf() // ok: rebound before any use
	putBuf(b)
}

func branches(keep bool) {
	b := getBuf()
	if keep {
		putBuf(b) // ok: puts on distinct branches never poison each other
		return
	}
	putBuf(b)
}

func retainField(h *holder) {
	b := getBuf()
	h.b = b // want "poolown: pooled value b stored into h.b outlives its owner's frame"
	putBuf(b)
}

func retainSlice(dst []*buf) {
	b := getBuf()
	dst[0] = b // want "poolown: pooled value b stored into dst\\[0\\] outlives its owner's frame"
}

func retainDecoded(h *holder) {
	b := decodeBuf(nil)
	h.b = b // want "poolown: pooled value b stored into h.b outlives its owner's frame"
}

func retainDerived(h *holder) {
	b := wrap(getBuf())
	h.b = b // want "poolown: pooled value b stored into h.b outlives its owner's frame"
}

func capture() {
	b := getBuf()
	go func() {
		putBuf(b) // want "poolown: pooled value b captured by a spawned goroutine"
	}()
}

func handoff() {
	b := getBuf()
	go func(b *buf) {
		putBuf(b) // ok: ownership transferred through the parameter
	}(b)
}

type pool struct{}

func (pool) Get() interface{}  { return nil }
func (pool) Put(interface{})   {}
func (pool) Other(interface{}) {}

var coders pool

func syncPoolOK() {
	c := coders.Get().(*buf)
	c.b = nil
	coders.Put(c)
}

func syncPoolUseAfterPut() {
	c := coders.Get().(*buf)
	coders.Put(c)
	c.b = nil // want "poolown: c used after coders.Put\\(c\\) returned it to the pool"
}

func syncPoolRetain(h *holder) {
	c, _ := coders.Get().(*buf)
	h.b = c // want "poolown: pooled value c stored into h.b outlives its owner's frame"
}

func notAPoolMethod(h *holder, v *buf) {
	coders.Other(v)
	v.b = nil // ok: Other is not Put
}
