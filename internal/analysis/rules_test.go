package analysis

import (
	"strings"
	"testing"
)

func TestBoundaryGolden(t *testing.T) {
	runGolden(t, "testdata/boundary", "vettest/outsider", ProjectBoundary())
}

// TestBoundaryAllowsEngineConsumers loads the same violating fixture under
// an allowed import path: the sealed imports must pass without findings.
func TestBoundaryAllowsEngineConsumers(t *testing.T) {
	for _, path := range []string{"repro/internal/worker", "repro/dps", "repro/internal/worker_test"} {
		pkg, err := LoadFixture("testdata/boundary", path)
		if err != nil {
			t.Fatalf("load fixture: %v", err)
		}
		if got := Run([]*Package{pkg}, []*Rule{ProjectBoundary()}); len(got) != 0 {
			t.Errorf("path %s: expected no findings, got %v", path, got)
		}
	}
}

func TestLockheldGolden(t *testing.T) {
	runGolden(t, "testdata/lockheld", "vettest/lockheld", Lockheld())
}

func TestPoolownGolden(t *testing.T) {
	runGolden(t, "testdata/poolown", "vettest/poolown", Poolown(PoolownConfig{
		PkgSuffixes: []string{"poolown"},
		Pools:       []PoolSpec{{Get: "getBuf", Put: "putBuf"}},
		ExtraGets:   []string{"decodeBuf"},
		SyncPools:   []string{"coders"},
	}))
}

func TestWirekindsGolden(t *testing.T) {
	runGolden(t, "testdata/wirekinds", "vettest/wirekinds", Wirekinds([]WirekindsConfig{{
		PkgSuffix:     "wirekinds",
		KindPrefix:    "msg",
		DispatchFuncs: []string{"handle"},
		BatchKinds:    []string{"msgToken"},
		BatchFuncs:    []string{"decodeBatch"},
		PreSend: &PreSendConfig{
			RecvType:      "link",
			MethodPrefix:  "send",
			TransmitCalls: []string{"trSend"},
			FlushCalls:    []string{"preSend"},
			Exempt:        []string{"sendToken"},
		},
	}}))
}

func TestTracepointsGolden(t *testing.T) {
	runGolden(t, "testdata/tracepoints", "vettest/tracepoints", Tracepoints([]TracepointsConfig{{
		PkgSuffix:     "tracepoints",
		KindPrefix:    "msg",
		DispatchFuncs: []string{"handle"},
		SpanCalls:     []string{"traceWire", "deliverToken"},
	}}))
}

func TestDeterminismGolden(t *testing.T) {
	runGolden(t, "testdata/determinism", "vettest/determinism", Determinism([]DeterminismScope{{
		PkgSuffix: "determinism",
		TimeFiles: []string{"sched.go"},
	}}))
}

// TestIgnoreSuppression: a valid //dpsvet:ignore directive on the line above
// a finding suppresses exactly that finding.
func TestIgnoreSuppression(t *testing.T) {
	runGolden(t, "testdata/ignore", "vettest/outsider", ProjectBoundary())
}

// TestIgnoreValidation: malformed directives are findings of the
// pseudo-rule "dpsvet" and carry a diagnosis.
func TestIgnoreValidation(t *testing.T) {
	pkg, err := LoadFixture("testdata/ignorebad", "vettest/ignorebad")
	if err != nil {
		t.Fatalf("load fixture: %v", err)
	}
	got := Run([]*Package{pkg}, []*Rule{ProjectBoundary()})
	wantMsgs := []string{
		"ignore directive names no rule",
		`ignore directive names unknown rule "nosuchrule"`,
		`ignore directive for "boundary" gives no reason`,
	}
	if len(got) != len(wantMsgs) {
		t.Fatalf("expected %d findings, got %d: %v", len(wantMsgs), len(got), got)
	}
	for i, f := range got {
		if f.Rule != "dpsvet" {
			t.Errorf("finding %d: rule = %q, want dpsvet", i, f.Rule)
		}
		if f.Msg != wantMsgs[i] {
			t.Errorf("finding %d: msg = %q, want %q", i, f.Msg, wantMsgs[i])
		}
	}
}

// TestProjectRuleNamesMatchVocabulary keeps KnownRuleNames (the directive
// vocabulary) in lockstep with the rules ProjectRules actually runs.
func TestProjectRuleNamesMatchVocabulary(t *testing.T) {
	known := make(map[string]bool, len(KnownRuleNames))
	for _, n := range KnownRuleNames {
		known[n] = true
	}
	var ran []string
	for _, r := range ProjectRules() {
		ran = append(ran, r.Name)
		if !known[r.Name] {
			t.Errorf("rule %q not in KnownRuleNames", r.Name)
		}
	}
	if len(ran) != len(KnownRuleNames) {
		t.Errorf("ProjectRules runs %v but KnownRuleNames is %v", ran, KnownRuleNames)
	}
}

// TestFindingString pins the file:line: rule: message output format the CI
// job greps and humans click on.
func TestFindingString(t *testing.T) {
	pkg, err := LoadFixture("testdata/boundary", "vettest/outsider")
	if err != nil {
		t.Fatalf("load fixture: %v", err)
	}
	got := Run([]*Package{pkg}, []*Rule{ProjectBoundary()})
	if len(got) == 0 {
		t.Fatal("expected findings")
	}
	s := got[0].String()
	if !strings.Contains(s, "outsider.go:") || !strings.Contains(s, ": boundary: ") {
		t.Errorf("finding format = %q, want file:line: rule: message", s)
	}
}
