package analysis

import (
	"go/ast"
	"path/filepath"
	"strconv"
	"strings"
)

// DeterminismScope configures the determinism rule for one package.
type DeterminismScope struct {
	// PkgSuffix selects the package by import-path suffix
	// (e.g. "internal/chaos").
	PkgSuffix string
	// TimeFiles lists the base names of the files whose code must be free
	// of wall-clock inputs and timer-driven selects — the schedule and
	// generation paths. Global math/rand use is banned in every file of the
	// package regardless (seeded components draw from their own *rand.Rand).
	TimeFiles []string
}

// globalRandFuncs are the math/rand package-level functions that consume
// the shared global source. Constructors of explicitly seeded generators
// (New, NewSource, NewZipf) are the sanctioned alternative.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Read": true, "Seed": true,
}

// wallClockFuncs are the time package functions that read the wall clock or
// start wall-clock timers.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "After": true,
	"Tick": true, "NewTimer": true, "NewTicker": true, "AfterFunc": true,
}

// Determinism builds the seed-determinism rule: inside the configured
// scopes, schedule generation must be a pure function of its seed. Faults
// that cannot be reproduced from CHAOS_SEED are faults that cannot be
// debugged — the chaos harness' one load-bearing property.
func Determinism(scopes []DeterminismScope) *Rule {
	r := &Rule{
		Name: "determinism",
		Doc:  "seeded schedule paths take no wall-clock or global-PRNG input",
	}
	r.Run = func(p *Pass) {
		var scope *DeterminismScope
		for i := range scopes {
			if suffixMatch(p.Pkg.Path, scopes[i].PkgSuffix) {
				scope = &scopes[i]
				break
			}
		}
		if scope == nil {
			return
		}
		timeFiles := make(map[string]bool, len(scope.TimeFiles))
		for _, f := range scope.TimeFiles {
			timeFiles[f] = true
		}
		for _, f := range p.Pkg.Files {
			base := filepath.Base(p.Pkg.Fset.Position(f.Pos()).Filename)
			randName, randOk := importName(f, "math/rand")
			timeName, timeOk := importName(f, "time")
			checkTime := timeOk && timeFiles[base]
			if !randOk && !checkTime {
				continue
			}
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					pkg, fn, ok := pkgCall(n)
					if !ok {
						return true
					}
					if randOk && pkg == randName && globalRandFuncs[fn] {
						p.Reportf(n.Pos(), "rand.%s draws from the global source; derive from the schedule's seeded *rand.Rand so faults reproduce from CHAOS_SEED", fn)
					}
					if checkTime && pkg == timeName && wallClockFuncs[fn] {
						p.Reportf(n.Pos(), "time.%s reads the wall clock in a schedule path; derive timings from the seed and modelled offsets", fn)
					}
				case *ast.SelectStmt:
					if !checkTime {
						return true
					}
					for _, cl := range n.Body.List {
						cc, ok := cl.(*ast.CommClause)
						if !ok || cc.Comm == nil {
							continue
						}
						if timerRecv(cc.Comm, timeName) {
							p.Reportf(cc.Pos(), "select over a wall-clock timer in a schedule path; schedule from seeded offsets instead")
						}
					}
				}
				return true
			})
		}
	}
	return r
}

// pkgCall decomposes a call of the form pkg.Fn(...) into its package
// qualifier and function name.
func pkgCall(call *ast.CallExpr) (pkg, fn string, ok bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", "", false
	}
	return id.Name, sel.Sel.Name, true
}

// timerRecv reports whether a select case communicates on a wall-clock
// timer: a receive from time.After(...)/time.Tick(...) or from a .C field.
func timerRecv(stmt ast.Stmt, timeName string) bool {
	var recv ast.Expr
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		recv = s.X
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			recv = s.Rhs[0]
		}
	}
	ue, ok := recv.(*ast.UnaryExpr)
	if !ok {
		return false
	}
	switch x := ue.X.(type) {
	case *ast.CallExpr:
		pkg, fn, ok := pkgCall(x)
		return ok && pkg == timeName && (fn == "After" || fn == "Tick")
	case *ast.SelectorExpr:
		return x.Sel.Name == "C"
	}
	return false
}

// importName returns the local name under which a file imports path.
func importName(f *ast.File, path string) (string, bool) {
	for _, imp := range f.Imports {
		val, err := strconv.Unquote(imp.Path.Value)
		if err != nil || val != path {
			continue
		}
		if imp.Name != nil {
			if imp.Name.Name == "_" || imp.Name.Name == "." {
				return "", false
			}
			return imp.Name.Name, true
		}
		base := val
		if j := strings.LastIndex(val, "/"); j >= 0 {
			base = val[j+1:]
		}
		return base, true
	}
	return "", false
}

// suffixMatch reports whether path ends with suffix on a path-element
// boundary.
func suffixMatch(path, suffix string) bool {
	if path == suffix {
		return true
	}
	n := len(path) - len(suffix)
	return n > 0 && path[n-1] == '/' && path[n:] == suffix
}
