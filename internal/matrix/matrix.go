// Package matrix provides the dense linear-algebra substrate used by the
// paper's evaluation: block matrix multiplication (Table 1's overlap
// experiment) and block LU factorization with partial pivoting (§5 and
// Figure 15). Like the authors — who state that "no optimized linear
// algebra library was used" — the kernels are plain Go loops.
package matrix

import (
	"fmt"
	"math"
	"math/rand"
)

// Matrix is a dense row-major float64 matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// New allocates a zero matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("matrix: negative dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices (all the same length).
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return New(0, 0)
	}
	m := New(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic("matrix: ragged rows")
		}
		copy(m.Data[i*m.Cols:(i+1)*m.Cols], r)
	}
	return m
}

// Random fills a matrix with deterministic pseudo-random values in [-1, 1).
func Random(rows, cols int, seed int64) *Matrix {
	m := New(rows, cols)
	rng := rand.New(rand.NewSource(seed))
	for i := range m.Data {
		m.Data[i] = rng.Float64()*2 - 1
	}
	return m
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone deep-copies the matrix.
func (m *Matrix) Clone() *Matrix {
	out := New(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Equal reports element-wise equality within tol.
func (m *Matrix) Equal(o *Matrix, tol float64) bool {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		return false
	}
	for i := range m.Data {
		if math.Abs(m.Data[i]-o.Data[i]) > tol {
			return false
		}
	}
	return true
}

// MaxAbsDiff returns the largest element-wise absolute difference.
func (m *Matrix) MaxAbsDiff(o *Matrix) float64 {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		return math.Inf(1)
	}
	max := 0.0
	for i := range m.Data {
		if d := math.Abs(m.Data[i] - o.Data[i]); d > max {
			max = d
		}
	}
	return max
}

// Block extracts the sub-matrix of size rows x cols at (r0, c0).
func (m *Matrix) Block(r0, c0, rows, cols int) *Matrix {
	if r0 < 0 || c0 < 0 || r0+rows > m.Rows || c0+cols > m.Cols {
		panic(fmt.Sprintf("matrix: block (%d,%d)+%dx%d out of %dx%d", r0, c0, rows, cols, m.Rows, m.Cols))
	}
	out := New(rows, cols)
	for i := 0; i < rows; i++ {
		copy(out.Data[i*cols:(i+1)*cols], m.Data[(r0+i)*m.Cols+c0:(r0+i)*m.Cols+c0+cols])
	}
	return out
}

// SetBlock writes o into m at (r0, c0).
func (m *Matrix) SetBlock(r0, c0 int, o *Matrix) {
	if r0 < 0 || c0 < 0 || r0+o.Rows > m.Rows || c0+o.Cols > m.Cols {
		panic(fmt.Sprintf("matrix: set block (%d,%d)+%dx%d out of %dx%d", r0, c0, o.Rows, o.Cols, m.Rows, m.Cols))
	}
	for i := 0; i < o.Rows; i++ {
		copy(m.Data[(r0+i)*m.Cols+c0:(r0+i)*m.Cols+c0+o.Cols], o.Data[i*o.Cols:(i+1)*o.Cols])
	}
}

// Mul returns m * o (naive ikj kernel with a hoisted row pointer — the
// unoptimized reference kernel).
func (m *Matrix) Mul(o *Matrix) *Matrix {
	if m.Cols != o.Rows {
		panic(fmt.Sprintf("matrix: mul %dx%d by %dx%d", m.Rows, m.Cols, o.Rows, o.Cols))
	}
	out := New(m.Rows, o.Cols)
	for i := 0; i < m.Rows; i++ {
		mi := m.Data[i*m.Cols : (i+1)*m.Cols]
		oi := out.Data[i*o.Cols : (i+1)*o.Cols]
		for k := 0; k < m.Cols; k++ {
			a := mi[k]
			if a == 0 {
				continue
			}
			ok := o.Data[k*o.Cols : (k+1)*o.Cols]
			for j := range oi {
				oi[j] += a * ok[j]
			}
		}
	}
	return out
}

// MulAdd computes m += a*b, reusing m's storage.
func (m *Matrix) MulAdd(a, b *Matrix) {
	if a.Cols != b.Rows || m.Rows != a.Rows || m.Cols != b.Cols {
		panic("matrix: muladd shape mismatch")
	}
	for i := 0; i < a.Rows; i++ {
		ai := a.Data[i*a.Cols : (i+1)*a.Cols]
		mi := m.Data[i*m.Cols : (i+1)*m.Cols]
		for k := 0; k < a.Cols; k++ {
			v := ai[k]
			if v == 0 {
				continue
			}
			bk := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j := range mi {
				mi[j] += v * bk[j]
			}
		}
	}
}

// Sub computes m -= o in place.
func (m *Matrix) Sub(o *Matrix) {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		panic("matrix: sub shape mismatch")
	}
	for i := range m.Data {
		m.Data[i] -= o.Data[i]
	}
}

// Add computes m += o in place.
func (m *Matrix) Add(o *Matrix) {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		panic("matrix: add shape mismatch")
	}
	for i := range m.Data {
		m.Data[i] += o.Data[i]
	}
}

// SwapRows exchanges rows i and j in place.
func (m *Matrix) SwapRows(i, j int) {
	if i == j {
		return
	}
	ri := m.Data[i*m.Cols : (i+1)*m.Cols]
	rj := m.Data[j*m.Cols : (j+1)*m.Cols]
	for k := range ri {
		ri[k], rj[k] = rj[k], ri[k]
	}
}

// Norm1 returns the max column sum (1-norm).
func (m *Matrix) Norm1() float64 {
	max := 0.0
	for j := 0; j < m.Cols; j++ {
		s := 0.0
		for i := 0; i < m.Rows; i++ {
			s += math.Abs(m.At(i, j))
		}
		if s > max {
			max = s
		}
	}
	return max
}

// String renders small matrices for debugging.
func (m *Matrix) String() string {
	s := fmt.Sprintf("%dx%d[", m.Rows, m.Cols)
	for i := 0; i < m.Rows && i < 6; i++ {
		if i > 0 {
			s += "; "
		}
		for j := 0; j < m.Cols && j < 6; j++ {
			if j > 0 {
				s += " "
			}
			s += fmt.Sprintf("%.3g", m.At(i, j))
		}
	}
	if m.Rows > 6 || m.Cols > 6 {
		s += " ..."
	}
	return s + "]"
}
