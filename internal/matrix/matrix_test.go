package matrix

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewAndAt(t *testing.T) {
	m := New(2, 3)
	if m.Rows != 2 || m.Cols != 3 || len(m.Data) != 6 {
		t.Fatalf("bad shape %+v", m)
	}
	m.Set(1, 2, 7)
	if m.At(1, 2) != 7 {
		t.Fatal("Set/At broken")
	}
}

func TestFromRows(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	if m.At(0, 1) != 2 || m.At(1, 0) != 3 {
		t.Fatalf("FromRows wrong: %v", m)
	}
}

func TestIdentityMul(t *testing.T) {
	a := Random(5, 5, 1)
	i := Identity(5)
	if !a.Mul(i).Equal(a, 1e-12) || !i.Mul(a).Equal(a, 1e-12) {
		t.Fatal("identity multiplication failed")
	}
}

func TestMulKnown(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	if got := a.Mul(b); !got.Equal(want, 1e-12) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestMulShapesPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2, 3).Mul(New(2, 3))
}

func TestMulAddMatchesMul(t *testing.T) {
	a := Random(7, 5, 2)
	b := Random(5, 9, 3)
	c := Random(7, 9, 4)
	want := c.Clone()
	want.Add(a.Mul(b))
	got := c.Clone()
	got.MulAdd(a, b)
	if !got.Equal(want, 1e-12) {
		t.Fatal("MulAdd diverges from Mul+Add")
	}
}

func TestBlockRoundTrip(t *testing.T) {
	a := Random(8, 10, 5)
	blk := a.Block(2, 3, 4, 5)
	if blk.Rows != 4 || blk.Cols != 5 {
		t.Fatalf("block shape %dx%d", blk.Rows, blk.Cols)
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 5; j++ {
			if blk.At(i, j) != a.At(2+i, 3+j) {
				t.Fatal("block content wrong")
			}
		}
	}
	b := New(8, 10)
	b.SetBlock(2, 3, blk)
	if b.At(3, 4) != a.At(3, 4) {
		t.Fatal("SetBlock content wrong")
	}
	if b.At(0, 0) != 0 {
		t.Fatal("SetBlock wrote outside target area")
	}
}

func TestSwapRows(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	a.SwapRows(0, 2)
	if a.At(0, 0) != 5 || a.At(2, 1) != 2 {
		t.Fatalf("swap wrong: %v", a)
	}
	a.SwapRows(1, 1) // no-op
	if a.At(1, 0) != 3 {
		t.Fatal("self swap changed row")
	}
}

func TestLUFactorReconstructs(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 16, 33, 64} {
		a := Random(n, n, int64(n))
		fact := a.Clone()
		piv, err := LUFactor(fact)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if res := ResidualLU(a, fact, piv); res > 1e-9*float64(n) {
			t.Fatalf("n=%d: residual %g", n, res)
		}
	}
}

func TestLUFactorSingular(t *testing.T) {
	a := New(3, 3) // all zeros
	if _, err := LUFactor(a); err == nil {
		t.Fatal("expected singularity error")
	}
}

func TestLUFactorNonSquare(t *testing.T) {
	if _, err := LUFactor(New(2, 3)); err == nil {
		t.Fatal("expected shape error")
	}
}

func TestBlockLUMatchesReference(t *testing.T) {
	for _, n := range []int{4, 8, 12, 32, 48} {
		for _, r := range []int{1, 2, 4, 8, 16, 5} {
			a := Random(n, n, int64(n*100+r))
			ref := a.Clone()
			refPiv, err := LUFactor(ref)
			if err != nil {
				t.Fatal(err)
			}
			blk := a.Clone()
			blkPiv, err := BlockLUFactor(blk, r)
			if err != nil {
				t.Fatalf("n=%d r=%d: %v", n, r, err)
			}
			if res := ResidualLU(a, blk, blkPiv); res > 1e-9*float64(n) {
				t.Fatalf("n=%d r=%d: residual %g", n, r, res)
			}
			// Same permutation and factors as the unblocked algorithm.
			for i := range refPiv {
				if refPiv[i] != blkPiv[i] {
					t.Fatalf("n=%d r=%d: pivot %d differs: %d vs %d", n, r, i, refPiv[i], blkPiv[i])
				}
			}
			if !ref.Equal(blk, 1e-9*float64(n)) {
				t.Fatalf("n=%d r=%d: factors differ by %g", n, r, ref.MaxAbsDiff(blk))
			}
		}
	}
}

func TestTrsmLowerUnit(t *testing.T) {
	// Build a unit lower triangular L, compute B = L*X, then solve back.
	n, m := 6, 4
	l := Identity(n)
	for i := 0; i < n; i++ {
		for j := 0; j < i; j++ {
			l.Set(i, j, float64(i-j)*0.5)
		}
	}
	x := Random(n, m, 9)
	b := l.Mul(x)
	TrsmLowerUnit(l, b)
	if !b.Equal(x, 1e-9) {
		t.Fatalf("trsm residual %g", b.MaxAbsDiff(x))
	}
}

func TestLUSolve(t *testing.T) {
	n := 20
	a := Random(n, n, 77)
	xTrue := make([]float64, n)
	for i := range xTrue {
		xTrue[i] = float64(i) - 3.5
	}
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			b[i] += a.At(i, j) * xTrue[j]
		}
	}
	fact := a.Clone()
	piv, err := LUFactor(fact)
	if err != nil {
		t.Fatal(err)
	}
	x := LUSolve(fact, piv, b)
	for i := range x {
		if math.Abs(x[i]-xTrue[i]) > 1e-6 {
			t.Fatalf("x[%d] = %g want %g", i, x[i], xTrue[i])
		}
	}
}

func TestApplyPivotsIsPermutation(t *testing.T) {
	a := Random(10, 10, 3)
	fact := a.Clone()
	piv, err := LUFactor(fact)
	if err != nil {
		t.Fatal(err)
	}
	p := Identity(10)
	ApplyPivots(p, piv)
	// Each row and column of P has exactly one 1.
	for i := 0; i < 10; i++ {
		rowSum, colSum := 0.0, 0.0
		for j := 0; j < 10; j++ {
			rowSum += p.At(i, j)
			colSum += p.At(j, i)
		}
		if rowSum != 1 || colSum != 1 {
			t.Fatalf("not a permutation at %d: row %g col %g", i, rowSum, colSum)
		}
	}
}

// Property-based checks on algebraic identities.
func TestQuickMulDistributes(t *testing.T) {
	f := func(seed1, seed2, seed3 int64) bool {
		a := Random(6, 5, seed1)
		b := Random(5, 4, seed2)
		c := Random(5, 4, seed3)
		// a*(b+c) == a*b + a*c
		bc := b.Clone()
		bc.Add(c)
		left := a.Mul(bc)
		right := a.Mul(b)
		right.Add(a.Mul(c))
		return left.Equal(right, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickLUReconstruction(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		n := int(sz%24) + 1
		a := Random(n, n, seed)
		fact := a.Clone()
		piv, err := LUFactor(fact)
		if err != nil {
			return true // singular random matrix: vanishingly unlikely, skip
		}
		return ResidualLU(a, fact, piv) < 1e-8*float64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestNorm1(t *testing.T) {
	m := FromRows([][]float64{{1, -2}, {-3, 4}})
	if got := m.Norm1(); got != 6 {
		t.Fatalf("Norm1 = %g want 6", got)
	}
}

func BenchmarkMul256(b *testing.B) {
	x := Random(256, 256, 1)
	y := Random(256, 256, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = x.Mul(y)
	}
}

func BenchmarkLU256(b *testing.B) {
	a := Random(256, 256, 3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f := a.Clone()
		if _, err := LUFactor(f); err != nil {
			b.Fatal(err)
		}
	}
}
