package matrix

import (
	"fmt"
	"math"
)

// LUFactor computes the LU factorization with partial pivoting of a square
// matrix in place: on return A holds L (unit lower, diagonal implicit) and
// U (upper). The returned pivot vector records, for each step k, the row
// that was swapped with row k (LAPACK-style ipiv). It is the reference
// sequential algorithm the DPS-parallel factorization is validated against.
func LUFactor(a *Matrix) ([]int, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("matrix: LU of non-square %dx%d", a.Rows, a.Cols)
	}
	piv, err := PanelLU(a, 0, 0, a.Rows, a.Cols)
	if err != nil {
		return nil, err
	}
	return piv, nil
}

// PanelLU factors the m x n (m >= n) panel of a starting at (r0, c0) in
// place with partial pivoting, swapping entire rows of a (so already
// factored columns to the left and trailing columns to the right stay
// consistent). Pivot indices are relative to r0.
func PanelLU(a *Matrix, r0, c0, m, n int) ([]int, error) {
	if m < n {
		return nil, fmt.Errorf("matrix: panel LU needs rows >= cols, got %dx%d", m, n)
	}
	piv := make([]int, n)
	for k := 0; k < n; k++ {
		// Partial pivoting: largest magnitude in column c0+k at or below r0+k.
		p := k
		max := math.Abs(a.At(r0+k, c0+k))
		for i := k + 1; i < m; i++ {
			if v := math.Abs(a.At(r0+i, c0+k)); v > max {
				max, p = v, i
			}
		}
		if max == 0 {
			return nil, fmt.Errorf("matrix: singular at column %d", c0+k)
		}
		piv[k] = p
		a.SwapRows(r0+k, r0+p)
		pivot := a.At(r0+k, c0+k)
		for i := k + 1; i < m; i++ {
			l := a.At(r0+i, c0+k) / pivot
			a.Set(r0+i, c0+k, l)
			if l == 0 {
				continue
			}
			rowK := a.Data[(r0+k)*a.Cols+c0 : (r0+k)*a.Cols+c0+n]
			rowI := a.Data[(r0+i)*a.Cols+c0 : (r0+i)*a.Cols+c0+n]
			for j := k + 1; j < n; j++ {
				rowI[j] -= l * rowK[j]
			}
		}
	}
	return piv, nil
}

// TrsmLowerUnit solves L * X = B in place on B, where l is unit lower
// triangular (the strictly-lower part of a factored block; the unit
// diagonal is implicit). This is the paper's step 2 trsm.
func TrsmLowerUnit(l, b *Matrix) {
	if l.Rows != l.Cols || l.Rows != b.Rows {
		panic(fmt.Sprintf("matrix: trsm shapes %dx%d, %dx%d", l.Rows, l.Cols, b.Rows, b.Cols))
	}
	n := l.Rows
	for i := 1; i < n; i++ {
		bi := b.Data[i*b.Cols : (i+1)*b.Cols]
		for k := 0; k < i; k++ {
			v := l.At(i, k)
			if v == 0 {
				continue
			}
			bk := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j := range bi {
				bi[j] -= v * bk[j]
			}
		}
	}
}

// BlockLUFactor computes the same factorization as LUFactor using the
// paper's right-looking block algorithm with block size r: panel LU of the
// current block column, trsm on the block row, and a trailing-submatrix
// update built from block multiplications. The pivot vector matches
// LUFactor's layout.
func BlockLUFactor(a *Matrix, r int) ([]int, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("matrix: LU of non-square %dx%d", a.Rows, a.Cols)
	}
	if r <= 0 {
		return nil, fmt.Errorf("matrix: block size %d", r)
	}
	n := a.Rows
	piv := make([]int, n)
	for k := 0; k < n; k += r {
		b := min(r, n-k)
		// Step 1: rectangular LU of the panel (rows k..n, cols k..k+b). Full
		// rows are swapped so the left and right parts stay consistent.
		p, err := PanelLU(a, k, k, n-k, b)
		if err != nil {
			return nil, err
		}
		for i := 0; i < b; i++ {
			piv[k+i] = p[i] + k
		}
		if k+b < n {
			// Step 2: solve L11 * T12 = A12 (unit lower triangular).
			l11 := a.Block(k, k, b, b)
			t12 := a.Block(k, k+b, b, n-k-b)
			TrsmLowerUnit(l11, t12)
			a.SetBlock(k, k+b, t12)
			// Step 3: A' = B - L21 * T12.
			l21 := a.Block(k+b, k, n-k-b, b)
			prod := l21.Mul(t12)
			for i := 0; i < prod.Rows; i++ {
				ai := a.Data[(k+b+i)*a.Cols+k+b : (k+b+i)*a.Cols+n]
				pi := prod.Data[i*prod.Cols : (i+1)*prod.Cols]
				for j := range ai {
					ai[j] -= pi[j]
				}
			}
		}
	}
	return piv, nil
}

// SplitLU extracts the unit-lower L and upper U factors from an in-place
// factored matrix.
func SplitLU(a *Matrix) (l, u *Matrix) {
	n := a.Rows
	l = Identity(n)
	u = New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if j < i {
				l.Set(i, j, a.At(i, j))
			} else {
				u.Set(i, j, a.At(i, j))
			}
		}
	}
	return l, u
}

// ApplyPivots applies the pivot vector's row swaps to m (forward order),
// producing P*m for the permutation encoded by piv.
func ApplyPivots(m *Matrix, piv []int) {
	for k, p := range piv {
		if p != k {
			m.SwapRows(k, p)
		}
	}
}

// ResidualLU returns max|P*A - L*U| for an original matrix a, its in-place
// factorization fact and pivot vector piv — the correctness check used by
// the tests and the LU example.
func ResidualLU(a, fact *Matrix, piv []int) float64 {
	pa := a.Clone()
	ApplyPivots(pa, piv)
	l, u := SplitLU(fact)
	return pa.MaxAbsDiff(l.Mul(u))
}

// LUSolve solves A x = b given the in-place factorization and pivots.
func LUSolve(fact *Matrix, piv []int, b []float64) []float64 {
	n := fact.Rows
	if len(b) != n {
		panic("matrix: rhs length mismatch")
	}
	x := append([]float64(nil), b...)
	for k, p := range piv {
		if p != k {
			x[k], x[p] = x[p], x[k]
		}
	}
	// Forward substitution with unit lower L.
	for i := 1; i < n; i++ {
		s := x[i]
		for j := 0; j < i; j++ {
			s -= fact.At(i, j) * x[j]
		}
		x[i] = s
	}
	// Back substitution with U.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= fact.At(i, j) * x[j]
		}
		x[i] = s / fact.At(i, i)
	}
	return x
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
