package stripefs

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/core"
	"repro/internal/simnet"
)

func newFS(t testing.TB, nodes, stores int) *FS {
	t.Helper()
	names := make([]string, nodes)
	for i := range names {
		names[i] = fmt.Sprintf("fs%d", i)
	}
	app, err := core.NewLocalApp(core.Config{}, names...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(app.Close)
	fs, err := New(app, Options{Stores: stores})
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func pattern(n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(i*7 + i/253)
	}
	return out
}

func TestWriteReadWholeFile(t *testing.T) {
	fs := newFS(t, 3, 3)
	data := pattern(10_000)
	if err := fs.Write("f", data, 1024); err != nil {
		t.Fatal(err)
	}
	got, err := fs.Read("f", 0, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("read differs from written data")
	}
}

func TestReadRanges(t *testing.T) {
	fs := newFS(t, 2, 4)
	data := pattern(5000)
	if err := fs.Write("f", data, 512); err != nil {
		t.Fatal(err)
	}
	cases := []struct{ off, n int }{
		{0, 1},       // first byte
		{4999, 1},    // last byte
		{511, 2},     // stripe boundary crossing
		{512, 512},   // exactly one stripe
		{100, 3000},  // many stripes
		{4000, 1000}, // tail, final partial stripe
		{1234, 0},    // empty range
	}
	for _, tc := range cases {
		got, err := fs.Read("f", tc.off, tc.n)
		if err != nil {
			t.Fatalf("Read(%d,%d): %v", tc.off, tc.n, err)
		}
		if !bytes.Equal(got, data[tc.off:tc.off+tc.n]) {
			t.Fatalf("Read(%d,%d) wrong content", tc.off, tc.n)
		}
	}
}

func TestStat(t *testing.T) {
	fs := newFS(t, 2, 2)
	if err := fs.Write("a", pattern(777), 100); err != nil {
		t.Fatal(err)
	}
	size, stripe, err := fs.Stat("a")
	if err != nil {
		t.Fatal(err)
	}
	if size != 777 || stripe != 100 {
		t.Fatalf("stat = %d/%d", size, stripe)
	}
	size, _, err = fs.Stat("missing")
	if err != nil {
		t.Fatal(err)
	}
	if size != -1 {
		t.Fatalf("missing file size = %d", size)
	}
}

func TestOverwrite(t *testing.T) {
	fs := newFS(t, 2, 2)
	if err := fs.Write("f", pattern(2000), 256); err != nil {
		t.Fatal(err)
	}
	newData := bytes.Repeat([]byte{0xEE}, 900)
	if err := fs.Write("f", newData, 128); err != nil {
		t.Fatal(err)
	}
	got, err := fs.Read("f", 0, 900)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, newData) {
		t.Fatal("overwrite not visible")
	}
	size, stripe, _ := fs.Stat("f")
	if size != 900 || stripe != 128 {
		t.Fatalf("stat after overwrite = %d/%d", size, stripe)
	}
}

func TestEmptyFile(t *testing.T) {
	fs := newFS(t, 1, 2)
	if err := fs.Write("empty", nil, 64); err != nil {
		t.Fatal(err)
	}
	got, err := fs.Read("empty", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("got %d bytes", len(got))
	}
}

func TestReadOutOfRangeFails(t *testing.T) {
	fs := newFS(t, 1, 1)
	if err := fs.Write("f", pattern(100), 32); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Read("f", 50, 100); err == nil {
		t.Fatal("expected out-of-range error")
	}
}

func TestUnknownFileFails(t *testing.T) {
	fs := newFS(t, 1, 1)
	if err := fs.Write("exists", pattern(10), 8); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Read("ghost", 0, 1); err == nil {
		t.Fatal("expected unknown-file error")
	}
}

func TestManyFiles(t *testing.T) {
	fs := newFS(t, 3, 5)
	files := map[string][]byte{}
	for i := 0; i < 12; i++ {
		name := fmt.Sprintf("file-%d", i)
		data := pattern(300*i + 37)
		files[name] = data
		if err := fs.Write(name, data, 64*(i%3+1)); err != nil {
			t.Fatal(err)
		}
	}
	for name, data := range files {
		got, err := fs.Read(name, 0, len(data))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("%s: content differs", name)
		}
	}
}

func TestQuickRangeReads(t *testing.T) {
	fs := newFS(t, 2, 3)
	data := pattern(4096)
	if err := fs.Write("q", data, 200); err != nil {
		t.Fatal(err)
	}
	f := func(offQ, lenQ uint16) bool {
		off := int(offQ) % len(data)
		n := int(lenQ) % (len(data) - off)
		got, err := fs.Read("q", off, n)
		if err != nil {
			return false
		}
		return bytes.Equal(got, data[off:off+n])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestFigure5Scenario reproduces the paper's runtime-environment figure:
// two user applications call the parallel striped-file services exposed by
// a third application, over a simulated cluster.
func TestFigure5Scenario(t *testing.T) {
	net := simnet.New(simnet.Config{Bandwidth: 200e6, Latency: 20 * time.Microsecond})
	defer net.Close()

	fsApp, err := core.NewSimApp(core.Config{}, net, "fsn0", "fsn1", "fsn2", "fsn3")
	if err != nil {
		t.Fatal(err)
	}
	defer fsApp.Close()
	fs, err := New(fsApp, Options{Stores: 4})
	if err != nil {
		t.Fatal(err)
	}
	data := pattern(64 << 10)
	if err := fs.Write("shared.bin", data, 4<<10); err != nil {
		t.Fatal(err)
	}

	// Two independent client applications, each calling the read service
	// as a leaf operation in its own graph.
	runClient := func(id int) error {
		app, err := core.NewSimApp(core.Config{}, net, fmt.Sprintf("cli%d", id))
		if err != nil {
			return err
		}
		defer app.Close()
		tc := core.MustCollection[struct{}](app, "client")
		if err := tc.Map(app.MasterNode()); err != nil {
			return err
		}
		callOp := core.GraphCallOp("call-fs-read", fs.ReadGraph())
		g, err := app.NewFlowgraph("reader", core.Path(core.NewNode(callOp, tc, core.MainRoute())))
		if err != nil {
			return err
		}
		for i := 0; i < 5; i++ {
			off := (id*3 + i) * 1000
			out, err := g.CallTimeout(app.MasterNode(), &ReadReq{Name: "shared.bin", Offset: off, Length: 2000}, 30*time.Second)
			if err != nil {
				return err
			}
			if !bytes.Equal(out.(*ReadResp).Data, data[off:off+2000]) {
				return fmt.Errorf("client %d read %d: wrong content", id, i)
			}
		}
		return nil
	}
	errs := make(chan error, 2)
	go func() { errs <- runClient(1) }()
	go func() { errs <- runClient(2) }()
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}
