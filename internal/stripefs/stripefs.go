// Package stripefs implements the parallel striped file system of the
// paper's runtime-environment scenario (Figure 5): a DPS application that
// stores files striped across the cluster nodes and exposes read and write
// flow graphs as parallel services callable by other DPS applications.
//
// The paper's first-generation system served out-of-core 3D image access
// and streaming media from striped files; this package provides the same
// access pattern — stripe-parallel writes and reads with the merge
// reassembling byte ranges — over an in-memory store per node (a real
// deployment would back each stripe store with a local disk).
package stripefs

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/serial"
)

// WriteReq stores a file: the payload is striped over the storage threads
// in StripeSize chunks.
type WriteReq struct {
	Name       string
	StripeSize int
	Data       []byte
}

// WriteAck confirms a write.
type WriteAck struct {
	Name    string
	Size    int
	Stripes int
}

// ReadReq reads Length bytes starting at Offset from a stored file.
type ReadReq struct {
	Name   string
	Offset int
	Length int
}

// ReadResp carries the requested byte range.
type ReadResp struct {
	Name string
	Data []byte
}

// StatReq asks for file metadata.
type StatReq struct {
	Name string
}

// StatResp reports metadata (Size < 0 when the file does not exist).
type StatResp struct {
	Name       string
	Size       int
	StripeSize int
}

// stripePut is one stripe travelling to its storage thread.
type stripePut struct {
	Name       string
	Index      int
	StripeSize int
	FileSize   int
	Data       []byte
}

// stripeAck confirms one stored stripe.
type stripeAck struct {
	Name  string
	Index int
}

// stripeGet requests a byte range within one stripe.
type stripeGet struct {
	Name   string
	Index  int
	Start  int // offset within the stripe
	Length int
	Pos    int // position within the reassembled response
}

// stripeData returns stripe bytes.
type stripeData struct {
	Pos  int
	Data []byte
}

var (
	_ = serial.MustRegister[WriteReq]()
	_ = serial.MustRegister[WriteAck]()
	_ = serial.MustRegister[ReadReq]()
	_ = serial.MustRegister[ReadResp]()
	_ = serial.MustRegister[StatReq]()
	_ = serial.MustRegister[StatResp]()
	_ = serial.MustRegister[stripePut]()
	_ = serial.MustRegister[stripeAck]()
	_ = serial.MustRegister[stripeGet]()
	_ = serial.MustRegister[stripeData]()
)

// storeState is one storage thread's stripe store.
type storeState struct {
	stripes map[string]map[int][]byte // name -> stripe index -> bytes
	meta    map[string]fileMeta
}

type fileMeta struct {
	size       int
	stripeSize int
}

func (st *storeState) init() {
	if st.stripes == nil {
		st.stripes = make(map[string]map[int][]byte)
		st.meta = make(map[string]fileMeta)
	}
}

// FS is a running striped file system application.
type FS struct {
	app    *core.App
	name   string
	master *core.ThreadCollection
	stores *core.ThreadCollection

	write *core.Flowgraph
	read  *core.Flowgraph
	stat  *core.Flowgraph

	// catalog mirrors file metadata on the master so read splits can plan
	// stripe requests without a round trip.
	catalog map[string]fileMeta
}

// Options configures the file system.
type Options struct {
	// Name prefixes the collections and graphs.
	Name string
	// Stores is the number of storage threads (default: one per node).
	Stores int
}

// New builds the striped file system's graphs on the application.
func New(app *core.App, opt Options) (*FS, error) {
	if opt.Name == "" {
		opt.Name = "stripefs"
	}
	if opt.Stores <= 0 {
		opt.Stores = len(app.NodeNames())
	}
	fs := &FS{app: app, name: opt.Name, catalog: make(map[string]fileMeta)}
	var err error
	if fs.master, err = core.NewCollection[struct{}](app, opt.Name+"-master"); err != nil {
		return nil, err
	}
	if err = fs.master.MapNodes(app.MasterNode()); err != nil {
		return nil, err
	}
	if fs.stores, err = core.NewCollection[storeState](app, opt.Name+"-stores"); err != nil {
		return nil, err
	}
	if err = fs.stores.MapRoundRobin(opt.Stores); err != nil {
		return nil, err
	}
	if err := fs.buildGraphs(opt.Stores); err != nil {
		return nil, err
	}
	return fs, nil
}

func (fs *FS) ownerOf(stripe int) int { return stripe % fs.stores.ThreadCount() }

func (fs *FS) buildGraphs(stores int) error {
	toStripe := core.ByKey[*stripePut](fs.name+"-to-put", func(in *stripePut) int { return fs.ownerOf(in.Index) })
	toGet := core.ByKey[*stripeGet](fs.name+"-to-get", func(in *stripeGet) int { return fs.ownerOf(in.Index) })

	// --- write graph -----------------------------------------------------
	writeSplit := core.Split[*WriteReq, *stripePut](fs.name+"-write-split",
		func(c *core.Ctx, in *WriteReq, post func(*stripePut)) {
			if in.StripeSize <= 0 {
				panic(fmt.Sprintf("stripefs: stripe size %d", in.StripeSize))
			}
			n := 0
			for off := 0; ; off += in.StripeSize {
				end := off + in.StripeSize
				if end > len(in.Data) {
					end = len(in.Data)
				}
				chunk := append([]byte(nil), in.Data[off:end]...)
				post(&stripePut{
					Name: in.Name, Index: n,
					StripeSize: in.StripeSize, FileSize: len(in.Data),
					Data: chunk,
				})
				n++
				if end == len(in.Data) {
					break
				}
			}
		})
	putLeaf := core.Leaf[*stripePut, *stripeAck](fs.name+"-put",
		func(c *core.Ctx, in *stripePut) *stripeAck {
			st := core.StateOf[storeState](c)
			st.init()
			if st.stripes[in.Name] == nil {
				st.stripes[in.Name] = make(map[int][]byte)
			}
			st.stripes[in.Name][in.Index] = in.Data
			st.meta[in.Name] = fileMeta{size: in.FileSize, stripeSize: in.StripeSize}
			return &stripeAck{Name: in.Name, Index: in.Index}
		})
	writeMerge := core.Merge[*stripeAck, *WriteAck](fs.name+"-write-merge",
		func(c *core.Ctx, first *stripeAck, next func() (*stripeAck, bool)) *WriteAck {
			ack := &WriteAck{Name: first.Name}
			for _, ok := first, true; ok; _, ok = next() {
				ack.Stripes++
			}
			return ack
		})
	var err error
	fs.write, err = fs.app.NewFlowgraph(fs.name+"-write", core.Path(
		core.NewNode(writeSplit, fs.master, core.MainRoute()),
		core.NewNode(putLeaf, fs.stores, toStripe),
		core.NewNode(writeMerge, fs.master, core.MainRoute()),
	))
	if err != nil {
		return err
	}

	// --- read graph --------------------------------------------------------
	readSplit := core.Split[*ReadReq, *stripeGet](fs.name+"-read-split",
		func(c *core.Ctx, in *ReadReq, post func(*stripeGet)) {
			meta, ok := fs.catalog[in.Name]
			if !ok {
				panic(fmt.Sprintf("stripefs: unknown file %q", in.Name))
			}
			off, length := in.Offset, in.Length
			if off < 0 || length < 0 || off+length > meta.size {
				panic(fmt.Sprintf("stripefs: range [%d,%d) outside file %q of %d bytes",
					off, off+length, in.Name, meta.size))
			}
			if length == 0 {
				// Still need one token for the merge; read zero bytes from
				// the stripe containing the offset.
				post(&stripeGet{Name: in.Name, Index: off / meta.stripeSize, Start: off % meta.stripeSize, Length: 0, Pos: 0})
				return
			}
			pos := 0
			for length > 0 {
				idx := off / meta.stripeSize
				start := off % meta.stripeSize
				take := meta.stripeSize - start
				if take > length {
					take = length
				}
				post(&stripeGet{Name: in.Name, Index: idx, Start: start, Length: take, Pos: pos})
				off += take
				length -= take
				pos += take
			}
		})
	getLeaf := core.Leaf[*stripeGet, *stripeData](fs.name+"-get",
		func(c *core.Ctx, in *stripeGet) *stripeData {
			st := core.StateOf[storeState](c)
			st.init()
			stripe, ok := st.stripes[in.Name][in.Index]
			if !ok {
				panic(fmt.Sprintf("stripefs: stripe %d of %q missing on its store", in.Index, in.Name))
			}
			if in.Start+in.Length > len(stripe) {
				panic(fmt.Sprintf("stripefs: range [%d,%d) outside stripe of %d bytes",
					in.Start, in.Start+in.Length, len(stripe)))
			}
			return &stripeData{Pos: in.Pos, Data: append([]byte(nil), stripe[in.Start:in.Start+in.Length]...)}
		})
	readMerge := core.Merge[*stripeData, *ReadResp](fs.name+"-read-merge",
		func(c *core.Ctx, first *stripeData, next func() (*stripeData, bool)) *ReadResp {
			parts := []*stripeData{}
			total := 0
			for in, ok := first, true; ok; in, ok = next() {
				parts = append(parts, in)
				if in.Pos+len(in.Data) > total {
					total = in.Pos + len(in.Data)
				}
			}
			out := make([]byte, total)
			for _, p := range parts {
				copy(out[p.Pos:], p.Data)
			}
			return &ReadResp{Data: out}
		})
	fs.read, err = fs.app.NewFlowgraph(fs.name+"-read", core.Path(
		core.NewNode(readSplit, fs.master, core.MainRoute()),
		core.NewNode(getLeaf, fs.stores, toGet),
		core.NewNode(readMerge, fs.master, core.MainRoute()),
	))
	if err != nil {
		return err
	}

	// --- stat graph ---------------------------------------------------------
	statLeaf := core.Leaf[*StatReq, *StatResp](fs.name+"-stat",
		func(c *core.Ctx, in *StatReq) *StatResp {
			meta, ok := fs.catalog[in.Name]
			if !ok {
				return &StatResp{Name: in.Name, Size: -1}
			}
			return &StatResp{Name: in.Name, Size: meta.size, StripeSize: meta.stripeSize}
		})
	fs.stat, err = fs.app.NewFlowgraph(fs.name+"-stat", core.Path(
		core.NewNode(statLeaf, fs.master, core.MainRoute()),
	))
	return err
}

// Write stores a file striped across the storage threads.
func (fs *FS) Write(name string, data []byte, stripeSize int) error {
	if stripeSize <= 0 {
		return fmt.Errorf("stripefs: stripe size must be positive")
	}
	out, err := fs.write.Call(context.Background(), &WriteReq{Name: name, StripeSize: stripeSize, Data: data})
	if err != nil {
		return err
	}
	ack := out.(*WriteAck)
	// The master's catalog is updated after the parallel write completed.
	fs.catalog[name] = fileMeta{size: len(data), stripeSize: stripeSize}
	want := (len(data) + stripeSize - 1) / stripeSize
	if want == 0 {
		want = 1
	}
	if ack.Stripes != want {
		return fmt.Errorf("stripefs: %d of %d stripes acknowledged", ack.Stripes, want)
	}
	return nil
}

// Read returns length bytes from offset of a stored file, gathered in
// parallel from the stripe stores.
func (fs *FS) Read(name string, offset, length int) ([]byte, error) {
	out, err := fs.read.Call(context.Background(), &ReadReq{Name: name, Offset: offset, Length: length})
	if err != nil {
		return nil, err
	}
	return out.(*ReadResp).Data, nil
}

// Stat reports a file's size and stripe size (size -1 if absent).
func (fs *FS) Stat(name string) (size, stripeSize int, err error) {
	out, err := fs.stat.Call(context.Background(), &StatReq{Name: name})
	if err != nil {
		return 0, 0, err
	}
	resp := out.(*StatResp)
	return resp.Size, resp.StripeSize, nil
}

// ReadGraph exposes the parallel read service for other applications
// (Figure 5: user applications calling the striped file services).
func (fs *FS) ReadGraph() *core.Flowgraph { return fs.read }

// WriteGraph exposes the parallel write service.
func (fs *FS) WriteGraph() *core.Flowgraph { return fs.write }
