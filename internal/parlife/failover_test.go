package parlife

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/life"
	"repro/internal/simnet"
)

// TestFailoverWorkerCrashByteIdentical kills a worker node abruptly
// (simnet power-failure semantics: queued NIC messages are lost) in the
// middle of an evolution and requires the final world to be byte-identical
// to an undisturbed run, with zero failed calls: the dead node's band
// workers are restored from their newest checkpoints on the survivors and
// the in-flight border/compute tokens are replayed with duplicates
// suppressed — the fault-tolerance layer's exactly-once contract, end to
// end through the paper's flagship application.
func TestFailoverWorkerCrashByteIdentical(t *testing.T) {
	const (
		width, height = 48, 40
		workers       = 4
		iters         = 10
	)
	seed := life.NewWorld(width, height)
	rng := rand.New(rand.NewSource(1234))
	for i := range seed.Cells {
		if rng.Intn(3) == 0 {
			seed.Cells[i] = 1
		}
	}

	run := func(t *testing.T, crash bool) (*life.World, *core.Stats) {
		t.Helper()
		net := simnet.New(simnet.Config{Latency: 100 * time.Microsecond, PerMessage: 10 * time.Microsecond})
		defer net.Close()
		app, err := core.NewSimApp(core.Config{Window: 16, Checkpoint: 2 * time.Millisecond}, net, "n0", "n1", "n2")
		if err != nil {
			t.Fatal(err)
		}
		defer app.Close()
		sim, err := New(app, width, height, Options{
			Name:        fmt.Sprintf("ftlife-%v", crash),
			Workers:     workers,
			WorkerNodes: []string{"n1", "n2", "n1", "n2"},
		})
		if err != nil {
			t.Fatal(err)
		}
		w := life.NewWorld(width, height)
		copy(w.Cells, seed.Cells)
		if err := sim.Load(w); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < iters; i++ {
			if crash && i == iters/2 {
				// Give the checkpointer a beat, then pull the plug on n2
				// (workers 1 and 3) mid-evolution.
				time.Sleep(6 * time.Millisecond)
				if !net.Crash("n2") {
					t.Fatal("crash failed")
				}
			}
			if err := sim.Step(true); err != nil {
				t.Fatalf("step %d: %v", i+1, err)
			}
		}
		out, err := sim.Gather()
		if err != nil {
			t.Fatalf("gather: %v", err)
		}
		if err := app.Err(); err != nil {
			t.Fatalf("application failed: %v", err)
		}
		return out, app.Stats()
	}

	clean, _ := run(t, false)
	crashed, stats := run(t, true)

	if !bytes.Equal(clean.Cells, crashed.Cells) {
		t.Fatalf("world after crash-recovery differs from undisturbed run")
	}
	if stats.FailoversCompleted != 1 {
		t.Errorf("FailoversCompleted = %d, want 1", stats.FailoversCompleted)
	}
	if stats.CheckpointsTaken == 0 {
		t.Error("no checkpoints were taken before the crash")
	}
}

// TestFailoverThenRemap checks that the two placement protocols compose:
// after a crash-recovery, a live remap of a recovered worker still
// produces a byte-identical world.
func TestFailoverThenRemap(t *testing.T) {
	const (
		width, height = 36, 30
		workers       = 3
		iters         = 8
	)
	seed := life.NewWorld(width, height)
	rng := rand.New(rand.NewSource(99))
	for i := range seed.Cells {
		if rng.Intn(4) == 0 {
			seed.Cells[i] = 1
		}
	}

	run := func(t *testing.T, disturb bool) *life.World {
		t.Helper()
		net := simnet.New(simnet.Config{Latency: 100 * time.Microsecond, PerMessage: 10 * time.Microsecond})
		defer net.Close()
		app, err := core.NewSimApp(core.Config{Window: 16, Checkpoint: 3 * time.Millisecond}, net, "n0", "n1", "n2")
		if err != nil {
			t.Fatal(err)
		}
		defer app.Close()
		sim, err := New(app, width, height, Options{
			Name:        fmt.Sprintf("ftremap-%v", disturb),
			Workers:     workers,
			WorkerNodes: []string{"n1", "n2", "n1"},
		})
		if err != nil {
			t.Fatal(err)
		}
		w := life.NewWorld(width, height)
		copy(w.Cells, seed.Cells)
		if err := sim.Load(w); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < iters; i++ {
			if disturb && i == 2 {
				net.Crash("n2") // worker 1 fails over
			}
			if disturb && i == 5 {
				// Live-migrate a recovered worker onward: the failover's
				// epoch flip must compose with the remap fences.
				if err := sim.BandCollection().RemapThread(nil, 1, "n0"); err != nil {
					t.Fatalf("remap after failover: %v", err)
				}
			}
			if err := sim.Step(true); err != nil {
				t.Fatalf("step %d: %v", i+1, err)
			}
		}
		out, err := sim.Gather()
		if err != nil {
			t.Fatalf("gather: %v", err)
		}
		if err := app.Err(); err != nil {
			t.Fatalf("application failed: %v", err)
		}
		return out
	}

	clean := run(t, false)
	disturbed := run(t, true)
	if !bytes.Equal(clean.Cells, disturbed.Cells) {
		t.Fatal("world after crash+remap differs from undisturbed run")
	}
}
