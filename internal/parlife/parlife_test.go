package parlife

import (
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/life"
	"repro/internal/simnet"
)

func newApp(t testing.TB, nodes int) *core.App {
	t.Helper()
	names := make([]string, nodes)
	for i := range names {
		names[i] = nodeName(i)
	}
	app, err := core.NewLocalApp(core.Config{}, names...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(app.Close)
	return app
}

func nodeName(i int) string {
	return string(rune('a'+i)) + "-node"
}

func checkAgainstReference(t *testing.T, width, height, workers, steps int, improved bool, app *core.App, name string) {
	t.Helper()
	world := life.RandomWorld(width, height, 0.35, 1234)
	sim, err := New(app, width, height, Options{Name: name, Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Load(world); err != nil {
		t.Fatal(err)
	}
	if err := sim.StepN(steps, improved); err != nil {
		t.Fatal(err)
	}
	got, err := sim.Gather()
	if err != nil {
		t.Fatal(err)
	}
	want := world.StepN(steps)
	if !got.Equal(want) {
		t.Fatalf("%s: distributed result differs from reference after %d steps (pop %d vs %d)",
			name, steps, got.Population(), want.Population())
	}
}

func TestSimpleGraphMatchesReference(t *testing.T) {
	app := newApp(t, 3)
	checkAgainstReference(t, 32, 30, 3, 5, false, app, "simple3")
}

func TestImprovedGraphMatchesReference(t *testing.T) {
	app := newApp(t, 3)
	checkAgainstReference(t, 32, 30, 3, 5, true, app, "improved3")
}

func TestSingleWorker(t *testing.T) {
	app := newApp(t, 1)
	checkAgainstReference(t, 16, 12, 1, 4, false, app, "single-simple")
	checkAgainstReference(t, 16, 12, 1, 4, true, app, "single-improved")
}

func TestManyWorkersSmallBands(t *testing.T) {
	// Bands of 1-2 rows stress the edge/interior split.
	app := newApp(t, 2)
	checkAgainstReference(t, 20, 7, 5, 3, true, app, "tiny-bands")
}

func TestOverSimnet(t *testing.T) {
	net := simnet.New(simnet.Config{Bandwidth: 200e6, Latency: 20 * time.Microsecond, PerMessage: 5 * time.Microsecond})
	defer net.Close()
	app, err := core.NewSimApp(core.Config{}, net, "n0", "n1", "n2", "n3")
	if err != nil {
		t.Fatal(err)
	}
	defer app.Close()
	world := life.RandomWorld(40, 36, 0.4, 99)
	sim, err := New(app, 40, 36, Options{Name: "simnet-life", Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Load(world); err != nil {
		t.Fatal(err)
	}
	if err := sim.StepN(3, true); err != nil {
		t.Fatal(err)
	}
	got, err := sim.Gather()
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(world.StepN(3)) {
		t.Fatal("simnet run differs from reference")
	}
}

func TestAlternatingVariants(t *testing.T) {
	// Mixing simple and improved iterations must stay correct (both share
	// the same worker state discipline).
	app := newApp(t, 2)
	world := life.RandomWorld(24, 20, 0.3, 5)
	sim, err := New(app, 24, 20, Options{Name: "alt", Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Load(world); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if err := sim.Step(i%2 == 0); err != nil {
			t.Fatal(err)
		}
	}
	got, err := sim.Gather()
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(world.StepN(6)) {
		t.Fatal("alternating variants diverged")
	}
}

func TestReadBlockMatchesWorld(t *testing.T) {
	app := newApp(t, 3)
	world := life.RandomWorld(30, 27, 0.45, 7)
	sim, err := New(app, 30, 27, Options{Name: "read", Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Load(world); err != nil {
		t.Fatal(err)
	}
	cases := []struct{ row, col, h, w int }{
		{0, 0, 5, 5},
		{8, 3, 10, 20},
		{25, 28, 6, 6},   // wraps both axes
		{26, 29, 27, 30}, // whole world, wrapped
		{5, 5, 1, 1},
	}
	for _, tc := range cases {
		got, err := sim.ReadBlock(tc.row, tc.col, tc.h, tc.w)
		if err != nil {
			t.Fatalf("ReadBlock(%+v): %v", tc, err)
		}
		want := world.SubGrid(tc.row, tc.col, tc.h, tc.w)
		if len(got) != len(want) {
			t.Fatalf("ReadBlock(%+v): %d cells, want %d", tc, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("ReadBlock(%+v): cell %d differs", tc, i)
			}
		}
	}
}

func TestReadServiceDuringIterations(t *testing.T) {
	// Table 2's scenario: the read service is called while the simulation
	// iterates. Reads must return internally consistent blocks (we can't
	// assert a specific generation, but sizes and liveness must hold).
	app := newApp(t, 2)
	world := life.RandomWorld(40, 40, 0.4, 3)
	sim, err := New(app, 40, 40, Options{Name: "live-read", Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Load(world); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	stop := make(chan struct{})
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := sim.Step(true); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for i := 0; i < 25; i++ {
		cells, err := sim.ReadBlock(i%40, (i*3)%40, 8, 8)
		if err != nil {
			t.Fatal(err)
		}
		if len(cells) != 64 {
			t.Fatalf("read %d cells", len(cells))
		}
	}
	close(stop)
	wg.Wait()
}

func TestExposedServiceFromOtherApp(t *testing.T) {
	// A separate client application calls the life world-read service —
	// the paper's visualization client (Figure 10).
	app := newApp(t, 2)
	world := life.RandomWorld(20, 20, 0.5, 11)
	sim, err := New(app, 20, 20, Options{Name: "svc", Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Load(world); err != nil {
		t.Fatal(err)
	}

	clientApp, err := core.NewLocalApp(core.Config{}, "client0")
	if err != nil {
		t.Fatal(err)
	}
	defer clientApp.Close()
	tc := core.MustCollection[struct{}](clientApp, "client")
	if err := tc.Map("client0"); err != nil {
		t.Fatal(err)
	}
	callOp := core.GraphCallOp("call-read", sim.ReadGraph())
	g, err := clientApp.NewFlowgraph("viz", core.Path(core.NewNode(callOp, tc, core.MainRoute())))
	if err != nil {
		t.Fatal(err)
	}
	out, err := g.CallTimeout(clientApp.MasterNode(), &ReadReq{Row: 2, Col: 3, H: 4, W: 5}, 20*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	resp := out.(*ReadResp)
	want := world.SubGrid(2, 3, 4, 5)
	if resp.H != 4 || resp.W != 5 || len(resp.Cells) != 20 {
		t.Fatalf("bad response %+v", resp)
	}
	for i := range want {
		if resp.Cells[i] != want[i] {
			t.Fatalf("cell %d differs", i)
		}
	}
}

func TestErrors(t *testing.T) {
	app := newApp(t, 1)
	if _, err := New(app, 10, 2, Options{Name: "bad", Workers: 5}); err == nil {
		t.Fatal("expected error: more workers than rows")
	}
	if _, err := New(app, 10, 10, Options{Name: "bad2", Workers: 0}); err == nil {
		t.Fatal("expected error: zero workers")
	}
	sim, err := New(app, 10, 10, Options{Name: "ok", Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Load(life.NewWorld(5, 5)); err == nil {
		t.Fatal("expected size mismatch error")
	}
}
