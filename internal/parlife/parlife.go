// Package parlife implements the paper's §5 Game of Life application on
// DPS flow graphs: the world is distributed in horizontal bands across
// worker threads, each iteration exchanges band borders and computes the
// next generation, and two graph variants are provided —
//
//   - Simple (Figure 7): exchange all borders, synchronize globally, then
//     compute;
//   - Improved (Figure 8): compute the band interiors while the borders
//     travel, then compute the edge rows — overlapping communication with
//     computation.
//
// The world-read graph (Figure 10) exposes the distributed world as a
// parallel service: a client request is split to the owning workers, parts
// are read in parallel, and the merge assembles the requested sub-grid.
package parlife

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/life"
	"repro/internal/serial"
)

// Tokens of the life application.

// StepOrder starts one iteration.
type StepOrder struct {
	Iter int
}

// BorderRead asks the band owner Src for the border row that band Dest
// needs. Dir 0 requests Src's last row (Dest's upper border), 1 requests
// Src's first row (Dest's lower border).
type BorderRead struct {
	Iter int
	Src  int
	Dest int
	Dir  int
}

// BorderData carries the row to the destination band.
type BorderData struct {
	Iter int
	Dest int
	Dir  int
	Row  []uint8
}

// CenterOrder asks a worker to compute its band interior.
type CenterOrder struct {
	Iter   int
	Worker int
}

// ComputeOrder asks a worker to compute its whole band (simple variant).
type ComputeOrder struct {
	Iter   int
	Worker int
}

// Notify signals completion of one unit of work.
type Notify struct {
	Iter   int
	Worker int
}

// SyncToken marks the end of the global border exchange (simple variant).
type SyncToken struct {
	Iter int
}

// DoneToken completes an iteration.
type DoneToken struct {
	Iter int
}

// LoadOrder carries a band of the initial world to its owner.
type LoadOrder struct {
	Worker int
	Top    int
	Rows   [][]uint8
}

// GatherOrder asks a worker for its band.
type GatherOrder struct {
	Worker int
}

// BandData returns a band to the master.
type BandData struct {
	Worker int
	Top    int
	Rows   [][]uint8
}

// WorldToken is a full reassembled world.
type WorldToken struct {
	Width, Height int
	Cells         []uint8
}

// ReadReq asks the service for the h x w sub-grid at (row, col), wrapping
// toroidally (the paper's visualization client request).
type ReadReq struct {
	Row, Col, H, W int
}

// ReadSeg asks one worker for rows [StartI, StartI+Count) of a request.
type ReadSeg struct {
	Dest     int
	StartI   int
	WorldRow int
	Count    int
	Col, W   int
}

// ReadSegData carries the rows back.
type ReadSegData struct {
	StartI int
	Count  int
	W      int
	Cells  []uint8
}

// ReadResp is the assembled sub-grid.
type ReadResp struct {
	H, W  int
	Cells []uint8
}

var (
	_ = serial.MustRegister[StepOrder]()
	_ = serial.MustRegister[BorderRead]()
	_ = serial.MustRegister[BorderData]()
	_ = serial.MustRegister[CenterOrder]()
	_ = serial.MustRegister[ComputeOrder]()
	_ = serial.MustRegister[Notify]()
	_ = serial.MustRegister[SyncToken]()
	_ = serial.MustRegister[DoneToken]()
	_ = serial.MustRegister[LoadOrder]()
	_ = serial.MustRegister[GatherOrder]()
	_ = serial.MustRegister[BandData]()
	_ = serial.MustRegister[WorldToken]()
	_ = serial.MustRegister[ReadReq]()
	_ = serial.MustRegister[ReadSeg]()
	_ = serial.MustRegister[ReadSegData]()
	_ = serial.MustRegister[ReadResp]()
)

// workerState is a worker thread's private data: its current band, the
// shadow band receiving the next generation, and per-iteration progress.
// All fields are exported and the type registered with internal/serial so
// band workers can be live-migrated between nodes (ThreadCollection.Remap
// ships the state in a migration envelope).
type workerState struct {
	Band, Shadow *life.Band
	// Iter is the iteration currently being computed (Band holds its input
	// generation); ComputedIter is the newest fully computed generation,
	// whose cells live in Shadow while ComputedIter == Iter and in Band
	// after the next iteration's swap.
	Iter         int
	ComputedIter int
	GotUp, GotDn bool
	CenterDone   bool
}

var _ = serial.MustRegister[workerState]()

// newestRows returns the rows of the newest fully computed generation.
func (st *workerState) newestRows() *life.Band {
	if st.ComputedIter == st.Iter && st.ComputedIter > 0 {
		return st.Shadow
	}
	return st.Band
}

// ensureIter swaps band and shadow when the first token of a new iteration
// arrives; the global per-iteration merge guarantees no token of iteration
// t+1 is in flight while iteration t is incomplete, so the swap is safe.
func (st *workerState) ensureIter(iter int) {
	if st.Band == nil {
		panic("parlife: worker received work before its band was loaded")
	}
	if iter == st.Iter {
		return
	}
	if iter != st.Iter+1 {
		panic(fmt.Sprintf("parlife: iteration jumped from %d to %d", st.Iter, iter))
	}
	st.Band, st.Shadow = st.Shadow, st.Band
	st.Iter = iter
	st.GotUp, st.GotDn = false, false
	st.CenterDone = false
	st.Band.UpBorder, st.Band.DnBorder = nil, nil
}

// Sim is a running distributed Game of Life.
type Sim struct {
	app      *core.App
	name     string
	width    int
	height   int
	workers  int
	bounds   []int
	cellCost time.Duration

	master  *core.ThreadCollection
	band    *core.ThreadCollection
	simple  *core.Flowgraph
	improve *core.Flowgraph
	load    *core.Flowgraph
	gather  *core.Flowgraph
	read    *core.Flowgraph

	iter int
}

// Options configures a Sim.
type Options struct {
	// Name prefixes the Sim's collections and graphs (several Sims can share
	// an application).
	Name string
	// Workers is the number of band-owning worker threads.
	Workers int
	// WorkerNodes maps worker thread i to a node; defaults to round-robin
	// over the application's nodes.
	WorkerNodes []string
	// CellCost charges a modelled computation time per cell update on top
	// of the real compute, by sleeping cells*CellCost in the compute
	// operations. The experiment harness uses it to reproduce the paper's
	// communication/computation balance (their 733 MHz Pentium III spent
	// ~125ns per cell) on hosts whose real core count is smaller than the
	// simulated cluster: sleeps overlap across worker threads exactly as
	// the modelled transfers in internal/simnet do, so the distributed
	// speedup shape is visible regardless of host parallelism. Zero charges
	// nothing (pure real compute).
	CellCost time.Duration
}

// New builds the life application's collections and all five flow graphs
// on the given DPS application.
func New(app *core.App, width, height int, opt Options) (*Sim, error) {
	if opt.Name == "" {
		opt.Name = "life"
	}
	if opt.Workers <= 0 {
		return nil, fmt.Errorf("parlife: need at least one worker")
	}
	if height < opt.Workers {
		return nil, fmt.Errorf("parlife: height %d < workers %d", height, opt.Workers)
	}
	s := &Sim{
		app:      app,
		name:     opt.Name,
		width:    width,
		height:   height,
		workers:  opt.Workers,
		bounds:   life.BandBounds(height, opt.Workers),
		cellCost: opt.CellCost,
	}
	var err error
	if s.master, err = core.NewCollection[struct{}](app, opt.Name+"-master"); err != nil {
		return nil, err
	}
	if err = s.master.MapNodes(app.MasterNode()); err != nil {
		return nil, err
	}
	if s.band, err = core.NewCollection[workerState](app, opt.Name+"-workers"); err != nil {
		return nil, err
	}
	if len(opt.WorkerNodes) > 0 {
		if len(opt.WorkerNodes) != opt.Workers {
			return nil, fmt.Errorf("parlife: %d worker nodes for %d workers", len(opt.WorkerNodes), opt.Workers)
		}
		err = s.band.MapNodes(opt.WorkerNodes...)
	} else {
		err = s.band.MapRoundRobin(opt.Workers)
	}
	if err != nil {
		return nil, err
	}
	if err := s.buildGraphs(); err != nil {
		return nil, err
	}
	return s, nil
}

func (s *Sim) ownerOf(worldRow int) int {
	for i := 0; i < s.workers; i++ {
		if worldRow >= s.bounds[i] && worldRow < s.bounds[i+1] {
			return i
		}
	}
	panic(fmt.Sprintf("parlife: row %d outside world", worldRow))
}

func (s *Sim) up(i int) int   { return (i - 1 + s.workers) % s.workers }
func (s *Sim) down(i int) int { return (i + 1) % s.workers }

// chargeCompute sleeps the modelled computation time of rows band rows
// (see Options.CellCost).
func (s *Sim) chargeCompute(rows int) {
	if s.cellCost > 0 && rows > 0 {
		time.Sleep(time.Duration(rows*s.width) * s.cellCost)
	}
}

// readBorderLeaf extracts the requested border row from the source band.
func (s *Sim) readBorderLeaf() *core.OpDef {
	return core.Leaf[*BorderRead, *BorderData](s.name+"-read-border",
		func(c *core.Ctx, in *BorderRead) *BorderData {
			st := core.StateOf[workerState](c)
			st.ensureIter(in.Iter)
			var row []uint8
			if in.Dir == 0 {
				row = st.Band.LastRow()
			} else {
				row = st.Band.FirstRow()
			}
			return &BorderData{Iter: in.Iter, Dest: in.Dest, Dir: in.Dir, Row: row}
		})
}

// storeBorder stores an arriving border; in the improved variant it also
// computes the band's edge rows once both borders are present.
func (s *Sim) storeBorderLeaf(computeEdges bool, opName string) *core.OpDef {
	return core.Leaf[*BorderData, *Notify](opName,
		func(c *core.Ctx, in *BorderData) *Notify {
			st := core.StateOf[workerState](c)
			st.ensureIter(in.Iter)
			if in.Dir == 0 {
				st.Band.UpBorder = in.Row
				st.GotUp = true
			} else {
				st.Band.DnBorder = in.Row
				st.GotDn = true
			}
			if computeEdges && st.GotUp && st.GotDn {
				st.Band.StepEdges(st.Shadow)
				edgeRows := 2
				if len(st.Band.Rows) < 2 {
					edgeRows = len(st.Band.Rows)
				}
				s.chargeCompute(edgeRows)
				if st.CenterDone {
					st.ComputedIter = in.Iter
				}
			}
			return &Notify{Iter: in.Iter, Worker: in.Dest}
		})
}

func (s *Sim) buildGraphs() error {
	toWorkerRead := core.ByKey[*BorderRead](s.name+"-to-src", func(in *BorderRead) int { return in.Src })
	toWorkerData := core.ByKey[*BorderData](s.name+"-to-dest", func(in *BorderData) int { return in.Dest })

	// --- Simple graph (Figure 7): exchange, global sync, compute. -------
	splitBorders := core.Split[*StepOrder, *BorderRead](s.name+"-split-borders",
		func(c *core.Ctx, in *StepOrder, post func(*BorderRead)) {
			for w := 0; w < s.workers; w++ {
				post(&BorderRead{Iter: in.Iter, Src: s.up(w), Dest: w, Dir: 0})
				post(&BorderRead{Iter: in.Iter, Src: s.down(w), Dest: w, Dir: 1})
			}
		})
	syncMerge := core.Merge[*Notify, *SyncToken](s.name+"-sync",
		func(c *core.Ctx, first *Notify, next func() (*Notify, bool)) *SyncToken {
			iter := first.Iter
			for _, ok := first, true; ok; _, ok = next() {
			}
			return &SyncToken{Iter: iter}
		})
	splitCompute := core.Split[*SyncToken, *ComputeOrder](s.name+"-split-compute",
		func(c *core.Ctx, in *SyncToken, post func(*ComputeOrder)) {
			for w := 0; w < s.workers; w++ {
				post(&ComputeOrder{Iter: in.Iter, Worker: w})
			}
		})
	computeAll := core.Leaf[*ComputeOrder, *Notify](s.name+"-compute-all",
		func(c *core.Ctx, in *ComputeOrder) *Notify {
			st := core.StateOf[workerState](c)
			st.ensureIter(in.Iter)
			st.Band.StepAll(st.Shadow)
			s.chargeCompute(len(st.Band.Rows))
			st.ComputedIter = in.Iter
			return &Notify{Iter: in.Iter, Worker: in.Worker}
		})
	doneMerge := core.Merge[*Notify, *DoneToken](s.name+"-done",
		func(c *core.Ctx, first *Notify, next func() (*Notify, bool)) *DoneToken {
			iter := first.Iter
			for _, ok := first, true; ok; _, ok = next() {
			}
			return &DoneToken{Iter: iter}
		})

	var err error
	s.simple, err = s.app.NewFlowgraph(s.name+"-step-simple", core.Path(
		core.NewNode(splitBorders, s.master, core.MainRoute()),
		core.NewNode(s.readBorderLeaf(), s.band, toWorkerRead),
		core.NewNode(s.storeBorderLeaf(false, s.name+"-store-border"), s.band, toWorkerData),
		core.NewNode(syncMerge, s.master, core.MainRoute()),
		core.NewNode(splitCompute, s.master, core.MainRoute()),
		core.NewNode(computeAll, s.band, core.ByKey[*ComputeOrder](s.name+"-to-worker", func(in *ComputeOrder) int { return in.Worker })),
		core.NewNode(doneMerge, s.master, core.MainRoute()),
	))
	if err != nil {
		return err
	}

	// --- Improved graph (Figure 8): border exchange overlaps the interior
	// computation; edge rows follow as borders arrive. -------------------
	splitAllImproved := core.SplitAny[*StepOrder](s.name+"-split-improved",
		[]core.Token{(*BorderRead)(nil), (*CenterOrder)(nil)},
		func(c *core.Ctx, in *StepOrder, post func(core.Token)) {
			for w := 0; w < s.workers; w++ {
				post(&CenterOrder{Iter: in.Iter, Worker: w})
				post(&BorderRead{Iter: in.Iter, Src: s.up(w), Dest: w, Dir: 0})
				post(&BorderRead{Iter: in.Iter, Src: s.down(w), Dest: w, Dir: 1})
			}
		})
	computeCenter := core.Leaf[*CenterOrder, *Notify](s.name+"-compute-center",
		func(c *core.Ctx, in *CenterOrder) *Notify {
			st := core.StateOf[workerState](c)
			st.ensureIter(in.Iter)
			s.chargeCompute(st.Band.StepInterior(st.Shadow))
			st.CenterDone = true
			if st.GotUp && st.GotDn {
				st.ComputedIter = in.Iter
			}
			return &Notify{Iter: in.Iter, Worker: in.Worker}
		})
	doneMergeImp := core.Merge[*Notify, *DoneToken](s.name+"-done-improved",
		func(c *core.Ctx, first *Notify, next func() (*Notify, bool)) *DoneToken {
			iter := first.Iter
			for _, ok := first, true; ok; _, ok = next() {
			}
			return &DoneToken{Iter: iter}
		})

	nSplit := core.NewNode(splitAllImproved, s.master, core.MainRoute())
	nRead := core.NewNode(s.readBorderLeaf(), s.band, toWorkerRead)
	nStore := core.NewNode(s.storeBorderLeaf(true, s.name+"-store-border-edges"), s.band, toWorkerData)
	nCenter := core.NewNode(computeCenter, s.band, core.ByKey[*CenterOrder](s.name+"-to-center", func(in *CenterOrder) int { return in.Worker }))
	nDone := core.NewNode(doneMergeImp, s.master, core.MainRoute())
	s.improve, err = s.app.NewFlowgraph(s.name+"-step-improved",
		core.Path(nSplit, nRead, nStore, nDone).Add(nSplit, nCenter, nDone))
	if err != nil {
		return err
	}

	// --- Load graph: distribute the initial world. ----------------------
	splitLoad := core.Split[*WorldToken, *LoadOrder](s.name+"-split-load",
		func(c *core.Ctx, in *WorldToken, post func(*LoadOrder)) {
			w := &life.World{Width: in.Width, Height: in.Height, Cells: in.Cells}
			for i := 0; i < s.workers; i++ {
				b := life.ExtractBand(w, s.bounds[i], s.bounds[i+1])
				post(&LoadOrder{Worker: i, Top: b.Top, Rows: b.Rows})
			}
		})
	loadLeaf := core.Leaf[*LoadOrder, *Notify](s.name+"-load-band",
		func(c *core.Ctx, in *LoadOrder) *Notify {
			st := core.StateOf[workerState](c)
			st.Band = &life.Band{Width: s.width, Top: in.Top, Rows: in.Rows}
			st.Shadow = st.Band.NewShadow()
			// The next iteration (1) reads the freshly loaded band, so no
			// swap must occur when its tokens arrive.
			st.Iter = 1
			st.ComputedIter = 0
			st.GotUp, st.GotDn, st.CenterDone = false, false, false
			return &Notify{Worker: in.Worker}
		})
	loadMerge := core.Merge[*Notify, *DoneToken](s.name+"-load-done",
		func(c *core.Ctx, first *Notify, next func() (*Notify, bool)) *DoneToken {
			for _, ok := first, true; ok; _, ok = next() {
			}
			return &DoneToken{}
		})
	s.load, err = s.app.NewFlowgraph(s.name+"-load", core.Path(
		core.NewNode(splitLoad, s.master, core.MainRoute()),
		core.NewNode(loadLeaf, s.band, core.ByKey[*LoadOrder](s.name+"-to-load", func(in *LoadOrder) int { return in.Worker })),
		core.NewNode(loadMerge, s.master, core.MainRoute()),
	))
	if err != nil {
		return err
	}

	// --- Gather graph: reassemble the world on the master. --------------
	splitGather := core.Split[*StepOrder, *GatherOrder](s.name+"-split-gather",
		func(c *core.Ctx, in *StepOrder, post func(*GatherOrder)) {
			for i := 0; i < s.workers; i++ {
				post(&GatherOrder{Worker: i})
			}
		})
	gatherLeaf := core.Leaf[*GatherOrder, *BandData](s.name+"-gather-band",
		func(c *core.Ctx, in *GatherOrder) *BandData {
			st := core.StateOf[workerState](c)
			src := st.newestRows()
			rows := make([][]uint8, len(src.Rows))
			for i, r := range src.Rows {
				rows[i] = append([]uint8(nil), r...)
			}
			return &BandData{Worker: in.Worker, Top: src.Top, Rows: rows}
		})
	gatherMerge := core.Merge[*BandData, *WorldToken](s.name+"-gather-merge",
		func(c *core.Ctx, first *BandData, next func() (*BandData, bool)) *WorldToken {
			bands := []*life.Band{}
			for in, ok := first, true; ok; in, ok = next() {
				bands = append(bands, &life.Band{Width: s.width, Top: in.Top, Rows: in.Rows})
			}
			w, err := life.StitchBands(s.width, s.height, bands)
			if err != nil {
				panic(err)
			}
			return &WorldToken{Width: s.width, Height: s.height, Cells: w.Cells}
		})
	s.gather, err = s.app.NewFlowgraph(s.name+"-gather", core.Path(
		core.NewNode(splitGather, s.master, core.MainRoute()),
		core.NewNode(gatherLeaf, s.band, core.ByKey[*GatherOrder](s.name+"-to-gather", func(in *GatherOrder) int { return in.Worker })),
		core.NewNode(gatherMerge, s.master, core.MainRoute()),
	))
	if err != nil {
		return err
	}

	// --- World-read service (Figure 10). --------------------------------
	splitRead := core.Split[*ReadReq, *ReadSeg](s.name+"-split-read",
		func(c *core.Ctx, in *ReadReq, post func(*ReadSeg)) {
			i := 0
			for i < in.H {
				worldRow := (in.Row + i) % s.height
				owner := s.ownerOf(worldRow)
				count := 1
				for i+count < in.H {
					nr := (in.Row + i + count) % s.height
					// The segment must stay contiguous inside one band: stop
					// at band boundaries and at the toroidal wrap.
					if nr != worldRow+count || s.ownerOf(nr) != owner {
						break
					}
					count++
				}
				post(&ReadSeg{Dest: owner, StartI: i, WorldRow: worldRow, Count: count, Col: in.Col, W: in.W})
				i += count
			}
		})
	readSegLeaf := core.Leaf[*ReadSeg, *ReadSegData](s.name+"-read-seg",
		func(c *core.Ctx, in *ReadSeg) *ReadSegData {
			st := core.StateOf[workerState](c)
			band := st.newestRows()
			cells := make([]uint8, in.Count*in.W)
			for i := 0; i < in.Count; i++ {
				src := band.Rows[in.WorldRow+i-band.Top]
				for j := 0; j < in.W; j++ {
					cells[i*in.W+j] = src[(in.Col+j)%s.width]
				}
			}
			return &ReadSegData{StartI: in.StartI, Count: in.Count, W: in.W, Cells: cells}
		})
	readMerge := core.Merge[*ReadSegData, *ReadResp](s.name+"-read-merge",
		func(c *core.Ctx, first *ReadSegData, next func() (*ReadSegData, bool)) *ReadResp {
			resp := &ReadResp{W: first.W}
			parts := []*ReadSegData{}
			for in, ok := first, true; ok; in, ok = next() {
				parts = append(parts, in)
				if in.StartI+in.Count > resp.H {
					resp.H = in.StartI + in.Count
				}
			}
			resp.Cells = make([]uint8, resp.H*resp.W)
			for _, p := range parts {
				copy(resp.Cells[p.StartI*p.W:], p.Cells)
			}
			return resp
		})
	s.read, err = s.app.NewFlowgraph(s.name+"-read", core.Path(
		core.NewNode(splitRead, s.master, core.MainRoute()),
		core.NewNode(readSegLeaf, s.band, core.ByKey[*ReadSeg](s.name+"-to-seg", func(in *ReadSeg) int { return in.Dest })),
		core.NewNode(readMerge, s.master, core.MainRoute()),
	))
	return err
}

// Load distributes the initial world to the workers and resets iteration 0.
func (s *Sim) Load(w *life.World) error {
	if w.Width != s.width || w.Height != s.height {
		return fmt.Errorf("parlife: world is %dx%d, sim is %dx%d", w.Width, w.Height, s.width, s.height)
	}
	s.iter = 0
	_, err := s.load.Call(context.Background(), &WorldToken{Width: w.Width, Height: w.Height, Cells: append([]uint8(nil), w.Cells...)})
	return err
}

// Step advances one generation using the simple or improved graph.
func (s *Sim) Step(improved bool) error {
	s.iter++
	g := s.simple
	if improved {
		g = s.improve
	}
	_, err := g.Call(context.Background(), &StepOrder{Iter: s.iter})
	return err
}

// StepN advances n generations.
func (s *Sim) StepN(n int, improved bool) error {
	for i := 0; i < n; i++ {
		if err := s.Step(improved); err != nil {
			return err
		}
	}
	return nil
}

// Gather reassembles the current world on the master.
func (s *Sim) Gather() (*life.World, error) {
	out, err := s.gather.Call(context.Background(), &StepOrder{})
	if err != nil {
		return nil, err
	}
	wt := out.(*WorldToken)
	return &life.World{Width: wt.Width, Height: wt.Height, Cells: wt.Cells}, nil
}

// ReadBlock reads an h x w sub-grid through the parallel read service.
func (s *Sim) ReadBlock(row, col, h, w int) ([]uint8, error) {
	out, err := s.read.Call(context.Background(), &ReadReq{Row: row, Col: col, H: h, W: w})
	if err != nil {
		return nil, err
	}
	return out.(*ReadResp).Cells, nil
}

// ReadGraph exposes the world-read flow graph so other applications can
// call it as a parallel service.
func (s *Sim) ReadGraph() *core.Flowgraph { return s.read }

// Iter returns the number of completed iterations.
func (s *Sim) Iter() int { return s.iter }

// Workers returns the number of band workers.
func (s *Sim) Workers() int { return s.workers }

// BandCollection exposes the band-worker thread collection, so deployments
// can live-migrate workers between nodes (ThreadCollection.Remap) while the
// simulation runs.
func (s *Sim) BandCollection() *core.ThreadCollection { return s.band }
