package parlife

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/life"
)

// TestRemapWorkerMidRun live-migrates a band worker between nodes while the
// simulation steps, and requires the evolved world to be byte-identical to
// an undisturbed run: the worker's band state must travel with the thread
// and no border token may be lost, duplicated or reordered.
func TestRemapWorkerMidRun(t *testing.T) {
	const (
		width, height = 48, 40
		workers       = 4
		iters         = 12
	)
	seed := life.NewWorld(width, height)
	rng := rand.New(rand.NewSource(42))
	for i := range seed.Cells {
		if rng.Intn(3) == 0 {
			seed.Cells[i] = 1
		}
	}

	run := func(t *testing.T, remap bool) *life.World {
		t.Helper()
		app, err := core.NewLocalApp(core.Config{Window: 16}, "n0", "n1", "n2")
		if err != nil {
			t.Fatal(err)
		}
		defer app.Close()
		sim, err := New(app, width, height, Options{
			Name:        fmt.Sprintf("remap-%v", remap),
			Workers:     workers,
			WorkerNodes: []string{"n1", "n2", "n1", "n2"},
		})
		if err != nil {
			t.Fatal(err)
		}
		w := life.NewWorld(width, height)
		copy(w.Cells, seed.Cells)
		if err := sim.Load(w); err != nil {
			t.Fatal(err)
		}
		// In the remapping run, a concurrent goroutine bounces worker 1
		// across all three nodes (including the master) while the
		// simulation steps — migrations race live border exchanges.
		stop := make(chan struct{})
		migrated := make(chan int, 1)
		if remap {
			go func() {
				moves := 0
				defer func() { migrated <- moves }()
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					target := []string{"n0", "n2", "n1"}[i%3]
					if err := sim.BandCollection().RemapThread(context.Background(), 1, target); err != nil {
						t.Errorf("remap %d: %v", i, err)
						return
					}
					moves++
				}
			}()
		}
		for i := 0; i < iters; i++ {
			if err := sim.Step(i%2 == 0); err != nil { // alternate both graphs
				t.Fatalf("step %d: %v", i, err)
			}
		}
		if remap {
			close(stop)
			if moves := <-migrated; moves == 0 {
				t.Fatal("no migrations performed")
			}
		}
		out, err := sim.Gather()
		if err != nil {
			t.Fatal(err)
		}
		if err := app.Err(); err != nil {
			t.Fatalf("app failed: %v", err)
		}
		if remap {
			if s := app.Stats(); s.MigrationsCompleted == 0 {
				t.Fatal("stats recorded no migrations")
			}
		}
		return out
	}

	want := run(t, false)
	got := run(t, true)
	if !bytes.Equal(want.Cells, got.Cells) {
		t.Fatal("world diverged across live worker migrations")
	}
}
