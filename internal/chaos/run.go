package chaos

import (
	"bytes"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/life"
	"repro/internal/parlife"
	"repro/internal/ringbench"
	"repro/internal/simnet"
	"repro/internal/trace"
)

// Spec configures one chaos run.
type Spec struct {
	// Seed derives the fault schedule and the network's jitter draws.
	Seed int64
	// Span is how long the workload keeps issuing calls while faults land.
	// Keep it at a second or more when Crashes > 0, so detection (bounded
	// by Grace) and recovery fit inside the run.
	Span time.Duration
	// Crashes is the number of node crashes to schedule (capped by the
	// workload's victim count); zero gives a transient-only schedule that
	// must end with zero failovers.
	Crashes int
	// Batch runs the workload with wire batching and batch-body compression
	// on (Config.Batch/Config.Compress): the same invariants — exactly one
	// failover per crash, zero failed calls, byte-identical replay — must
	// hold when whole batch frames stall in partitions and replay after
	// crashes.
	Batch bool
}

// engineCfg applies the spec's wire-path toggles to a workload config.
// Chaos runs always sample calls, so the traced wire wrapper rides through
// partitions and crash replays and the injector can demand that a call
// traced through a crash shows its replay spans connected to live execution
// elsewhere. Plain runs sample everything; batched runs sample a quarter —
// sampled tokens bypass the batcher by design (a traced frame must keep its
// wire position), so full sampling would leave the batch path untested.
func (spec Spec) engineCfg(cfg core.Config) core.Config {
	if spec.Batch {
		cfg.Batch = true
		cfg.Compress = true
		cfg.TraceSample = 0.25
	} else {
		cfg.TraceSample = 1
	}
	return cfg
}

// strictReplayTrace reports whether every replayed token is guaranteed to be
// sampled (full sampling): only then can a missing replay span be treated as
// an invariant violation rather than a sampling miss.
func (spec Spec) strictReplayTrace() bool { return !spec.Batch }

// workloadName tags results of batched runs.
func (spec Spec) workloadName(base string) string {
	if spec.Batch {
		return base + "+batch"
	}
	return base
}

// Result is one completed chaos run with its invariants already checked.
type Result struct {
	Workload  string
	Schedule  Schedule
	Calls     int   // completed graph calls (ring) or iterations (life)
	Failovers int64 // must equal Schedule.Crashes()
	Retries   int64 // engine send retries absorbed inside the grace window
	Injected  int64 // injected transient send errors actually consumed
	// Recovery holds the crash-to-failover-completed latency, one sample
	// per crash (detection is passive, so this is bounded below by Grace),
	// as a mergeable percentile histogram.
	Recovery trace.Hist
	Stats    *core.Stats
	Elapsed  time.Duration
}

// injector applies a schedule to a live network and watches each crash
// through to its completed failover.
type injector struct {
	sched    Schedule
	net      *simnet.Network
	app      *core.App
	strict   bool // full sampling: replayed tokens must leave replay spans
	recovery trace.Hist
	err      error
	done     chan struct{}
}

func startInjector(sched Schedule, net *simnet.Network, app *core.App, strict bool) *injector {
	inj := &injector{sched: sched, net: net, app: app, strict: strict, done: make(chan struct{})}
	go inj.run()
	return inj
}

func (inj *injector) run() {
	defer close(inj.done)
	start := time.Now()
	failovers := inj.app.Stats().FailoversCompleted
	for _, f := range inj.sched.Faults {
		time.Sleep(time.Until(start.Add(f.At)))
		switch f.Kind {
		case Crash:
			if !inj.net.Crash(f.A) {
				inj.err = fmt.Errorf("chaos: crash of %s failed (already gone?)", f.A)
				return
			}
			crashAt := time.Now()
			replayedBefore := inj.app.Stats().TokensReplayed
			// Recovery is complete when the failover counter moves. The
			// workload keeps calling, so its own traffic drives passive
			// detection; 1ms polling bounds the latency resolution.
			deadline := crashAt.Add(30 * time.Second)
			for {
				if n := inj.app.Stats().FailoversCompleted; n > failovers {
					failovers = n
					inj.recovery.Add(time.Since(crashAt))
					break
				}
				if err := inj.app.Err(); err != nil {
					inj.err = fmt.Errorf("chaos: application died after crash of %s: %w", f.A, err)
					return
				}
				if time.Now().After(deadline) {
					inj.err = fmt.Errorf("chaos: crash of %s never recovered", f.A)
					return
				}
				time.Sleep(time.Millisecond)
			}
			if err := inj.checkReplayTraced(replayedBefore); err != nil {
				inj.err = err
				return
			}
		case Partition:
			inj.net.Partition(f.A, f.B)
		case Heal:
			inj.net.Heal(f.A, f.B)
		case Jitter:
			inj.net.SetJitter(f.A, f.B, f.Max)
		case SendErrors:
			inj.net.FailNextSends(f.A, f.B, f.Count)
		}
	}
}

// checkReplayTraced is the observability invariant of a recovered crash:
// every chaos call is sampled, so whenever the recovery actually replayed
// retained tokens, some trace must show a replay span connected (same trace
// id) to ordinary spans recorded on a different node — the crashed call's
// timeline reconstructs across the failover rather than going dark. The
// span rings are lock-free snapshots and replay spans land on the resending
// node as recovery proceeds, so the check polls briefly.
func (inj *injector) checkReplayTraced(replayedBefore int64) error {
	if inj.app.Stats().TokensReplayed == replayedBefore {
		return nil // nothing was in the retention window; no spans to demand
	}
	deadline := time.Now().Add(2 * time.Second)
	sawReplay := false
	for {
		for _, span := range inj.app.TraceSpans(0) {
			if span.Kind != "replay" {
				continue
			}
			sawReplay = true
			for _, other := range inj.app.TraceSpans(span.Trace) {
				if other.Kind != "replay" && other.Node != span.Node {
					return nil
				}
			}
		}
		if time.Now().After(deadline) {
			if !inj.strict && !sawReplay {
				// Partial sampling: every replayed token may have been
				// unsampled, leaving nothing to connect. Not a violation.
				return nil
			}
			return fmt.Errorf("chaos: recovery replayed tokens but no trace connects a replay span to live spans on another node")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// wait joins the injector; it returns once every fault has been applied
// and every crash has recovered (or failed to).
func (inj *injector) wait() error {
	<-inj.done
	return inj.err
}

// checkInvariants enforces the recovery contract a finished run must
// satisfy: exactly one failover per scheduled crash — transient faults
// never escalate, real crashes never go unhandled.
func checkInvariants(r *Result) error {
	if want := int64(r.Schedule.Crashes()); r.Failovers != want {
		if want == 0 {
			return fmt.Errorf("chaos(%s): transient-only schedule caused %d failovers\n%s",
				r.Workload, r.Failovers, r.Schedule)
		}
		return fmt.Errorf("chaos(%s): %d failovers for %d crashes\n%s",
			r.Workload, r.Failovers, want, r.Schedule)
	}
	return nil
}

// ringCfg is the simulated cluster the chaos workloads run on.
var ringCfg = simnet.Config{Latency: 100 * time.Microsecond, PerMessage: 10 * time.Microsecond}

// RunRing soaks the Figure 6 ring (4 nodes, master ring0) under the
// randomized schedule derived from spec: repeated full-ring calls for
// spec.Span, each call's merge total checked for exactly-once delivery.
func RunRing(spec Spec) (*Result, error) {
	const (
		ringNodes     = 4
		blocksPerCall = 64
		blockSize     = 1024
	)
	nodes := make([]string, ringNodes)
	for i := range nodes {
		nodes[i] = fmt.Sprintf("ring%d", i)
	}
	sched := Random(spec.Seed, nodes, spec.Span, spec.Crashes)
	appCfg := spec.engineCfg(core.Config{Window: 64, Checkpoint: 2 * time.Millisecond, SuspectGrace: Grace})

	var (
		inj      *injector
		injErr   error
		final    *core.Stats
		injected int64
	)
	hook := func(net *simnet.Network, app *core.App) func() {
		net.SeedFaults(spec.Seed)
		inj = startInjector(sched, net, app, spec.strictReplayTrace())
		return func() {
			injErr = inj.wait()
			final = app.Stats()
			injected = net.InjectedSendErrors()
		}
	}
	res, calls, err := ringbench.RunDPSChaos(ringCfg, ringNodes, blocksPerCall, blockSize, appCfg, spec.Span, hook)
	if err != nil {
		return nil, fmt.Errorf("%w\n%s", err, sched)
	}
	if injErr != nil {
		return nil, injErr
	}
	out := &Result{
		Workload:  spec.workloadName("ring"),
		Schedule:  sched,
		Calls:     calls,
		Failovers: final.FailoversCompleted,
		Retries:   final.SendRetries,
		Injected:  injected,
		Recovery:  inj.recovery,
		Stats:     final,
		Elapsed:   res.Elapsed,
	}
	if err := checkInvariants(out); err != nil {
		return nil, err
	}
	return out, nil
}

// RunParlife soaks the §5 Game of Life under the randomized schedule
// derived from spec: improved-graph iterations for spec.Span on 3 nodes
// (master n0, band workers striped over n1/n2), then replays the same
// number of iterations on an undisturbed cluster and requires the final
// worlds to be byte-identical — the end-to-end exactly-once check.
func RunParlife(spec Spec) (*Result, error) {
	const (
		width, height = 48, 40
		workers       = 4
	)
	nodes := []string{"n0", "n1", "n2"}
	workerNodes := []string{"n1", "n2", "n1", "n2"}
	sched := Random(spec.Seed, nodes, spec.Span, spec.Crashes)
	appCfg := spec.engineCfg(core.Config{Window: 16, Checkpoint: 2 * time.Millisecond, SuspectGrace: Grace})

	seedWorld := life.NewWorld(width, height)
	wrng := rand.New(rand.NewSource(spec.Seed))
	for i := range seedWorld.Cells {
		if wrng.Intn(3) == 0 {
			seedWorld.Cells[i] = 1
		}
	}

	run := func(sched *Schedule, iters int) (*life.World, int, *core.Stats, int64, trace.Hist, time.Duration, error) {
		net := simnet.New(ringCfg)
		defer net.Close()
		app, err := core.NewSimApp(appCfg, net, nodes...)
		if err != nil {
			return nil, 0, nil, 0, trace.Hist{}, 0, err
		}
		defer app.Close()
		sim, err := parlife.New(app, width, height, parlife.Options{
			Name: "chaos", Workers: workers, WorkerNodes: workerNodes,
		})
		if err != nil {
			return nil, 0, nil, 0, trace.Hist{}, 0, err
		}
		w := life.NewWorld(width, height)
		copy(w.Cells, seedWorld.Cells)
		if err := sim.Load(w); err != nil {
			return nil, 0, nil, 0, trace.Hist{}, 0, err
		}
		var inj *injector
		if sched != nil {
			net.SeedFaults(sched.Seed)
			inj = startInjector(*sched, net, app, spec.strictReplayTrace())
		}
		sw := trace.StartStopwatch()
		if sched != nil {
			// Disturbed run: iterate for the span, however far that gets.
			for sim.Iter() == 0 || sw.Elapsed() < spec.Span {
				if err := sim.Step(true); err != nil {
					return nil, sim.Iter(), nil, 0, trace.Hist{}, 0, fmt.Errorf("step %d: %w", sim.Iter()+1, err)
				}
			}
		} else if err := sim.StepN(iters, true); err != nil {
			return nil, sim.Iter(), nil, 0, trace.Hist{}, 0, err
		}
		elapsed := sw.Elapsed()
		out, err := sim.Gather()
		if err != nil {
			return nil, sim.Iter(), nil, 0, trace.Hist{}, 0, fmt.Errorf("gather: %w", err)
		}
		if err := app.Err(); err != nil {
			return nil, sim.Iter(), nil, 0, trace.Hist{}, 0, err
		}
		var recovery trace.Hist
		if inj != nil {
			if err := inj.wait(); err != nil {
				return nil, sim.Iter(), nil, 0, trace.Hist{}, 0, err
			}
			recovery = inj.recovery
		}
		return out, sim.Iter(), app.Stats(), net.InjectedSendErrors(), recovery, elapsed, nil
	}

	disturbed, iters, stats, injected, recovery, elapsed, err := run(&sched, 0)
	if err != nil {
		return nil, fmt.Errorf("chaos(life): %w\n%s", err, sched)
	}
	clean, _, _, _, _, _, err := run(nil, iters)
	if err != nil {
		return nil, fmt.Errorf("chaos(life): clean replay: %w", err)
	}
	if !bytes.Equal(clean.Cells, disturbed.Cells) {
		return nil, fmt.Errorf("chaos(life): world after %d iterations under faults differs from undisturbed run\n%s", iters, sched)
	}
	out := &Result{
		Workload:  spec.workloadName("life"),
		Schedule:  sched,
		Calls:     iters,
		Failovers: stats.FailoversCompleted,
		Retries:   stats.SendRetries,
		Injected:  injected,
		Recovery:  recovery,
		Stats:     stats,
		Elapsed:   elapsed,
	}
	if err := checkInvariants(out); err != nil {
		return nil, err
	}
	return out, nil
}
