package chaos

import (
	"os"
	"reflect"
	"strconv"
	"testing"
	"time"
)

var testNodes = []string{"m0", "v1", "v2", "v3"}

func TestRandomDeterministic(t *testing.T) {
	a := Random(42, testNodes, 2*time.Second, 2)
	b := Random(42, testNodes, 2*time.Second, 2)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different schedules:\n%s\n---\n%s", a, b)
	}
	c := Random(43, testNodes, 2*time.Second, 2)
	if reflect.DeepEqual(a.Faults, c.Faults) {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestRandomScheduleShape(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		s := Random(seed, testNodes, 2*time.Second, 3)
		// The master is never crashed or partitioned, crashes are capped so
		// a victim survives, and every partition heals within Grace before
		// the first crash.
		crashed := map[string]bool{}
		open := map[[2]string]time.Duration{}
		var firstCrash time.Duration = 1 << 62
		for _, f := range s.Faults {
			switch f.Kind {
			case Crash:
				if f.A == testNodes[0] {
					t.Fatalf("seed %d: schedule crashes the master:\n%s", seed, s)
				}
				if crashed[f.A] {
					t.Fatalf("seed %d: %s crashed twice:\n%s", seed, f.A, s)
				}
				crashed[f.A] = true
				if f.At < firstCrash {
					firstCrash = f.At
				}
			case Partition:
				if f.A == testNodes[0] || f.B == testNodes[0] {
					t.Fatalf("seed %d: schedule partitions the master:\n%s", seed, s)
				}
				open[[2]string{f.A, f.B}] = f.At
			case Heal:
				cut, ok := open[[2]string{f.A, f.B}]
				if !ok {
					t.Fatalf("seed %d: heal without partition:\n%s", seed, s)
				}
				if f.At-cut >= Grace {
					t.Fatalf("seed %d: partition of %s/%s open %v >= grace %v:\n%s",
						seed, f.A, f.B, f.At-cut, Grace, s)
				}
				if f.At > firstCrash {
					t.Fatalf("seed %d: heal at %v after first crash at %v:\n%s",
						seed, f.At, firstCrash, s)
				}
				delete(open, [2]string{f.A, f.B})
			}
		}
		if len(open) > 0 {
			t.Fatalf("seed %d: partition never healed:\n%s", seed, s)
		}
		if got := s.Crashes(); got > len(testNodes)-2 {
			t.Fatalf("seed %d: %d crashes for %d victims", seed, got, len(testNodes)-1)
		}
	}
}

// TestRingTransientOnly runs the ring under a crash-free schedule: every
// injected fault must be absorbed (zero failovers, zero failed calls).
func TestRingTransientOnly(t *testing.T) {
	res, err := RunRing(Spec{Seed: 7, Span: 1200 * time.Millisecond, Crashes: 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failovers != 0 {
		t.Fatalf("transient-only run triggered %d failovers", res.Failovers)
	}
	if res.Calls == 0 {
		t.Fatal("no calls completed")
	}
	t.Logf("ring transient: %d calls, %d retries, %d injected errors", res.Calls, res.Retries, res.Injected)
}

// TestRingCrash runs the ring under a schedule with one real crash: the
// run must fail over exactly once and still deliver every block.
func TestRingCrash(t *testing.T) {
	res, err := RunRing(Spec{Seed: 11, Span: 2 * time.Second, Crashes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failovers != 1 {
		t.Fatalf("Failovers = %d, want 1", res.Failovers)
	}
	if res.Recovery.Len() != 1 {
		t.Fatalf("recovery samples = %d, want 1", res.Recovery.Len())
	}
	t.Logf("ring crash: %d calls, recovery %v", res.Calls, res.Recovery.Max())
}

// TestParlifeCrashByteIdentical soaks the Game of Life under one crash
// plus transients and requires the final world to match a clean replay
// byte for byte (RunParlife checks it; this test pins the invariant).
func TestParlifeCrashByteIdentical(t *testing.T) {
	res, err := RunParlife(Spec{Seed: 3, Span: time.Second, Crashes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failovers != 1 {
		t.Fatalf("Failovers = %d, want 1", res.Failovers)
	}
	t.Logf("life crash: %d iterations, recovery %v", res.Calls, res.Recovery.Max())
}

// TestSoak is the CI chaos soak: seed and duration come from the
// environment (CHAOS_SEED, CHAOS_DURATION), so the nightly workflow can
// randomize them and a failure reproduces from the logged seed. Defaults
// keep it short enough for every CI run.
func TestSoak(t *testing.T) {
	seed := int64(1)
	if v := os.Getenv("CHAOS_SEED"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			t.Fatalf("bad CHAOS_SEED %q: %v", v, err)
		}
		seed = n
	}
	span := 2 * time.Second
	if v := os.Getenv("CHAOS_DURATION"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil {
			t.Fatalf("bad CHAOS_DURATION %q: %v", v, err)
		}
		span = d
	}
	t.Logf("soak seed=%d span=%v (override with CHAOS_SEED / CHAOS_DURATION)", seed, span)
	for _, run := range []struct {
		name string
		fn   func(Spec) (*Result, error)
	}{{"ring", RunRing}, {"life", RunParlife}} {
		res, err := run.fn(Spec{Seed: seed, Span: span, Crashes: 1})
		if err != nil {
			t.Fatalf("%s soak failed (reproduce with CHAOS_SEED=%d): %v", run.name, seed, err)
		}
		t.Logf("%s: %d calls, %d failovers, %d retries, %d injected, recovery max %v",
			run.name, res.Calls, res.Failovers, res.Retries, res.Injected, res.Recovery.Max())
	}
}

// TestRingCrashBatched re-runs the one-crash ring soak with wire batching
// and batch-body compression on: exactly-once delivery and the single
// failover must survive whole batch frames stalling in partitions and
// replaying after the crash.
func TestRingCrashBatched(t *testing.T) {
	res, err := RunRing(Spec{Seed: 11, Span: 2 * time.Second, Crashes: 1, Batch: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failovers != 1 {
		t.Fatalf("Failovers = %d, want 1", res.Failovers)
	}
	if res.Stats.FramesBatched == 0 {
		t.Fatal("batched run flushed no batch frames")
	}
	t.Logf("ring crash batched: %d calls, %d batch frames, recovery %v",
		res.Calls, res.Stats.FramesBatched, res.Recovery.Max())
}

// TestParlifeBatchedByteIdentical: the end-to-end exactly-once oracle (the
// world matches a clean replay byte for byte) with batching + compression
// on and a crash landing mid-run.
func TestParlifeBatchedByteIdentical(t *testing.T) {
	res, err := RunParlife(Spec{Seed: 3, Span: time.Second, Crashes: 1, Batch: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failovers != 1 {
		t.Fatalf("Failovers = %d, want 1", res.Failovers)
	}
	if res.Stats.FramesBatched == 0 {
		t.Fatal("batched run flushed no batch frames")
	}
	t.Logf("life crash batched: %d iterations, %d batch frames, recovery %v",
		res.Calls, res.Stats.FramesBatched, res.Recovery.Max())
}
