// Package chaos is a deterministic, seed-driven fault scheduler for the
// DPS engine: it composes the simulated network's primitive faults —
// abrupt node crashes, partitions and heals, directional delivery jitter,
// transient per-send errors — into scripted or randomized schedules, runs
// a real workload (the Figure 6 ring, the §5 Game of Life) underneath,
// and checks the fault-tolerance layer's invariants afterwards: zero
// failed calls, byte-identical results, exactly one failover per crash
// and none for transient faults.
//
// Determinism is per schedule, not per interleaving: the same seed always
// yields the same fault sequence, fault times and jitter draws, so a
// failing soak reproduces its schedule exactly from the printed seed,
// while goroutine interleaving underneath still varies run to run.
package chaos

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"
)

// Kind enumerates the primitive faults a schedule composes.
type Kind int

const (
	// Crash is an abrupt power failure of node A: queued NIC messages are
	// lost and the node never comes back. The only fault that must end in
	// a failover.
	Crash Kind = iota
	// Partition cuts all traffic between A and B, both directions.
	Partition
	// Heal undoes a Partition of A and B.
	Heal
	// Jitter adds up to Max of random extra delivery delay on the A→B
	// direction (FIFO order preserved).
	Jitter
	// SendErrors makes the next Count sends on the A→B direction fail with
	// a transient error — the refused dials of a restarting peer.
	SendErrors
)

func (k Kind) String() string {
	switch k {
	case Crash:
		return "crash"
	case Partition:
		return "partition"
	case Heal:
		return "heal"
	case Jitter:
		return "jitter"
	case SendErrors:
		return "send-errors"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Fault is one scheduled fault. At is the offset from workload start; the
// remaining fields depend on Kind (see the Kind constants).
type Fault struct {
	At    time.Duration
	Kind  Kind
	A, B  string
	Max   time.Duration // Jitter only
	Count int           // SendErrors only
}

func (f Fault) String() string {
	at := f.At.Round(time.Millisecond)
	switch f.Kind {
	case Crash:
		return fmt.Sprintf("+%v crash %s", at, f.A)
	case Partition:
		return fmt.Sprintf("+%v partition %s<->%s", at, f.A, f.B)
	case Heal:
		return fmt.Sprintf("+%v heal %s<->%s", at, f.A, f.B)
	case Jitter:
		return fmt.Sprintf("+%v jitter %s->%s max %v", at, f.A, f.B, f.Max)
	case SendErrors:
		return fmt.Sprintf("+%v send-errors %s->%s x%d", at, f.A, f.B, f.Count)
	}
	return fmt.Sprintf("+%v %v", at, f.Kind)
}

// Schedule is a time-ordered fault sequence plus the seed it was derived
// from (also the seed of the network's jitter draws).
type Schedule struct {
	Seed   int64
	Faults []Fault
}

// Crashes counts the schedule's crash faults.
func (s Schedule) Crashes() int {
	n := 0
	for _, f := range s.Faults {
		if f.Kind == Crash {
			n++
		}
	}
	return n
}

func (s Schedule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "schedule seed=%d (%d faults)", s.Seed, len(s.Faults))
	for _, f := range s.Faults {
		b.WriteString("\n  ")
		b.WriteString(f.String())
	}
	return b.String()
}

// Grace is the suspect→confirm window the chaos workloads configure
// (core.Config.SuspectGrace); Random keeps every transient fault well
// inside it so only crashes may surface as failovers.
const Grace = 250 * time.Millisecond

// Random derives a randomized schedule from a seed. nodes is the
// workload's full node list with the master first; the master is never a
// victim (its death is unrecoverable by design — it hosts calls and the
// recovery coordinator). Up to crashes distinct non-master nodes die,
// capped at len(nodes)-2 so at least one worker node survives. Transient
// faults — jitter, send-error bursts, partitions healed within Grace —
// land in the first part of span; crashes land after every partition has
// healed, so a blocked injector can never stretch a partition past the
// grace window.
func Random(seed int64, nodes []string, span time.Duration, crashes int) Schedule {
	if len(nodes) < 2 {
		panic("chaos: need a master and at least one victim node")
	}
	rng := rand.New(rand.NewSource(seed))
	victims := nodes[1:]
	if max := len(victims) - 1; crashes > max {
		crashes = max
	}
	if crashes < 0 {
		crashes = 0
	}

	at := func(lo, hi float64) time.Duration {
		return time.Duration((lo + rng.Float64()*(hi-lo)) * float64(span))
	}
	pair := func(list []string) (string, string) {
		a := list[rng.Intn(len(list))]
		b := list[rng.Intn(len(list))]
		for b == a {
			b = list[rng.Intn(len(list))]
		}
		return a, b
	}

	var faults []Fault
	for i, n := 0, 2+rng.Intn(3); i < n; i++ {
		a, b := pair(nodes)
		faults = append(faults, Fault{At: at(0.05, 0.5), Kind: Jitter, A: a, B: b,
			Max: time.Duration(50+rng.Intn(350)) * time.Microsecond})
	}
	for i, n := 0, 2+rng.Intn(4); i < n; i++ {
		a, b := pair(nodes)
		faults = append(faults, Fault{At: at(0.05, 0.7), Kind: SendErrors, A: a, B: b,
			Count: 1 + rng.Intn(3)})
	}
	var lastHeal time.Duration
	if len(victims) >= 2 {
		used := map[[2]string]bool{}
		for i, n := 0, 1+rng.Intn(2); i < n; i++ {
			a, b := pair(victims)
			if a > b {
				a, b = b, a
			}
			// One partition window per pair, so windows never overlap and
			// chain into an open stretch longer than the grace.
			if used[[2]string{a, b}] {
				continue
			}
			used[[2]string{a, b}] = true
			cut := at(0.05, 0.2)
			// Healed in well under Grace, so the retrying senders get
			// through before anyone is declared dead.
			heal := cut + time.Duration(30+rng.Intn(50))*time.Millisecond
			faults = append(faults,
				Fault{At: cut, Kind: Partition, A: a, B: b},
				Fault{At: heal, Kind: Heal, A: a, B: b})
			if heal > lastHeal {
				lastHeal = heal
			}
		}
	}
	perm := rng.Perm(len(victims))
	for i := 0; i < crashes; i++ {
		when := at(0.35, 0.6)
		if min := lastHeal + 20*time.Millisecond; when < min {
			when = min
		}
		faults = append(faults, Fault{At: when, Kind: Crash, A: victims[perm[i]]})
	}
	sort.SliceStable(faults, func(i, j int) bool { return faults[i].At < faults[j].At })
	return Schedule{Seed: seed, Faults: faults}
}
