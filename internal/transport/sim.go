package transport

import (
	"sync"

	"repro/internal/simnet"
)

// SimNode adapts a simnet.Node to the Transport interface. Messages pay the
// modelled NIC and latency costs of the virtual cluster.
type SimNode struct {
	node *simnet.Node

	mu      sync.Mutex
	handler Handler
	started bool
	wg      sync.WaitGroup
	once    sync.Once
}

// NewSimNode wraps an existing simnet node.
func NewSimNode(node *simnet.Node) *SimNode {
	return &SimNode{node: node}
}

// Local implements Transport.
func (s *SimNode) Local() string { return s.node.Name() }

// SetHandler implements Transport. The first call starts the receive pump.
func (s *SimNode) SetHandler(h Handler) {
	s.mu.Lock()
	s.handler = h
	if !s.started {
		s.started = true
		s.wg.Add(1)
		go s.pump()
	}
	s.mu.Unlock()
}

func (s *SimNode) pump() {
	defer s.wg.Done()
	for {
		select {
		case m := <-s.node.Inbox():
			s.mu.Lock()
			h := s.handler
			s.mu.Unlock()
			if h != nil {
				h(m.From, m.Payload)
			}
		case <-s.node.Done():
			return
		}
	}
}

// Send implements Transport.
func (s *SimNode) Send(dst string, payload []byte) error {
	return s.node.Send(dst, payload)
}

// Close implements Transport. The underlying simnet node is owned by the
// Network and closed with it; Close here only stops accepting new work.
func (s *SimNode) Close() error { return nil }

var _ Transport = (*SimNode)(nil)
