package tcptransport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"
)

// TestErrorClassification pins the transient/fatal split Send's retry
// loop and the engine's suspect grace rely on.
func TestErrorClassification(t *testing.T) {
	cases := []struct {
		err       error
		transient bool
	}{
		{nil, false},
		{ErrClosed, false},
		{fmt.Errorf("send: %w", ErrClosed), false},
		{&FatalError{Err: errors.New("unknown node")}, false},
		{fmt.Errorf("wrap: %w", &FatalError{Err: errors.New("unknown node")}), false},
		{errors.New("connection refused"), true},
		{fmt.Errorf("retries exhausted: %w", errors.New("broken pipe")), true},
	}
	for _, c := range cases {
		if got := IsTransient(c.err); got != c.transient {
			t.Errorf("IsTransient(%v) = %v, want %v", c.err, got, c.transient)
		}
	}
}

// TestSendRetriesThroughPeerRestart: the peer vanishes and comes back on
// the same address while a send is in flight; the in-Send redial loop
// must absorb the outage — the caller never sees an error.
func TestSendRetriesThroughPeerRestart(t *testing.T) {
	table := map[string]string{}
	resolver := StaticResolver(table)
	a, err := Listen("a", "127.0.0.1:0", resolver)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = a.Close() })
	b1, err := Listen("b", "127.0.0.1:0", resolver)
	if err != nil {
		t.Fatal(err)
	}
	table["a"] = a.Addr()
	table["b"] = b1.Addr()
	bAddr := b1.Addr()

	got := make(chan string, 4)
	b1.SetHandler(func(src string, payload []byte) { got <- string(payload) })
	if err := a.Send("b", []byte("warm")); err != nil {
		t.Fatal(err)
	}
	<-got

	// Take the peer down. Sends now fail on the cached conn, then on
	// refused redials — all transient, all inside the retry budget.
	_ = b1.Close()
	sendDone := make(chan error, 1)
	go func() { sendDone <- a.Send("b", []byte("through the restart")) }()

	// Let the sender burn a few refused dials, then restart the peer on
	// the very same address.
	time.Sleep(50 * time.Millisecond)
	var b2 *Node
	for i := 0; ; i++ {
		b2, err = Listen("b", bAddr, resolver)
		if err == nil {
			break
		}
		if i > 100 {
			t.Fatalf("rebind %s: %v", bAddr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Cleanup(func() { _ = b2.Close() })
	b2.SetHandler(func(src string, payload []byte) { got <- string(payload) })

	select {
	case err := <-sendDone:
		if err != nil {
			t.Fatalf("send across the restart surfaced an error: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("send never returned")
	}
	select {
	case m := <-got:
		if m != "through the restart" {
			t.Fatalf("got %q", m)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("payload never arrived at the restarted peer")
	}
	if a.Retries() == 0 {
		t.Fatal("the outage was absorbed without a single recorded retry")
	}
}

// TestSessionEpochsAcrossRestarts: every reconnect of a (restarting)
// sender registers a strictly higher session epoch at the receiver, even
// though the new process knows nothing of the old one's counter.
func TestSessionEpochsAcrossRestarts(t *testing.T) {
	table := map[string]string{}
	resolver := StaticResolver(table)
	b, err := Listen("b", "127.0.0.1:0", resolver)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = b.Close() })
	table["b"] = b.Addr()
	got := make(chan string, 4)
	b.SetHandler(func(src string, payload []byte) { got <- string(payload) })

	var last uint64
	for i := 0; i < 3; i++ {
		a, err := Listen("a", "127.0.0.1:0", resolver)
		if err != nil {
			t.Fatal(err)
		}
		table["a"] = a.Addr()
		if err := a.Send("b", []byte(fmt.Sprintf("life %d", i))); err != nil {
			t.Fatal(err)
		}
		select {
		case <-got:
		case <-time.After(5 * time.Second):
			t.Fatalf("send %d never arrived", i)
		}
		epoch := b.SessionEpoch("a")
		if epoch <= last {
			t.Fatalf("restart %d: epoch %d did not grow past %d", i, epoch, last)
		}
		last = epoch
		_ = a.Close() // the next loop iteration is the "restarted" process
	}
}

// TestStaleSessionFramesRejected: frames arriving on a connection whose
// session was superseded by a reconnect are dropped, never delivered
// interleaved with the new session's stream.
func TestStaleSessionFramesRejected(t *testing.T) {
	table := map[string]string{}
	resolver := StaticResolver(table)
	b, err := Listen("b", "127.0.0.1:0", resolver)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = b.Close() })
	table["b"] = b.Addr()
	got := make(chan string, 16)
	b.SetHandler(func(src string, payload []byte) { got <- string(payload) })

	// Hand-rolled client: open a session with epoch 5, then a second
	// connection claiming epoch 6 (the "restarted" process), then try to
	// push another frame down the old epoch-5 socket.
	dial := func(epoch uint64) net.Conn {
		c, err := net.Dial("tcp", b.Addr())
		if err != nil {
			t.Fatal(err)
		}
		var eb [binary.MaxVarintLen64]byte
		if err := writeFrame(c, []byte("a")); err != nil {
			t.Fatal(err)
		}
		if err := writeFrame(c, eb[:binary.PutUvarint(eb[:], epoch)]); err != nil {
			t.Fatal(err)
		}
		return c
	}
	old := dial(5)
	defer old.Close()
	if err := writeFrame(old, []byte("old-1")); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-got:
		if m != "old-1" {
			t.Fatalf("got %q", m)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("frame on live session dropped")
	}

	fresh := dial(6)
	defer fresh.Close()
	if err := writeFrame(fresh, []byte("new-1")); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-got:
		if m != "new-1" {
			t.Fatalf("got %q", m)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("frame on new session dropped")
	}

	// The old session is dead; its frames must not surface. (The write may
	// even succeed locally — the receiver discards on read.)
	_ = writeFrame(old, []byte("old-2"))
	select {
	case m := <-got:
		t.Fatalf("stale-session frame %q delivered", m)
	case <-time.After(200 * time.Millisecond):
	}

	// A remnant connection with a LOWER epoch than the current session is
	// rejected at the handshake.
	remnant := dial(3)
	defer remnant.Close()
	_ = writeFrame(remnant, []byte("remnant"))
	select {
	case m := <-got:
		t.Fatalf("low-epoch remnant frame %q delivered", m)
	case <-time.After(200 * time.Millisecond):
	}
}

// TestPeerRestartStorm: several senders hammer a receiver that restarts
// repeatedly on the same address. Every payload a sender's Send call
// reported as delivered-or-failed is accounted for: received frames are
// never duplicated and each sender's stream arrives in order (gaps are
// legal — frames lost with a dying session are the FT layer's job).
func TestPeerRestartStorm(t *testing.T) {
	table := map[string]string{}
	var tableMu sync.Mutex
	resolver := func(name string) (string, error) {
		tableMu.Lock()
		defer tableMu.Unlock()
		addr, ok := table[name]
		if !ok {
			return "", fmt.Errorf("unknown node %q", name)
		}
		return addr, nil
	}
	setAddr := func(name, addr string) {
		tableMu.Lock()
		table[name] = addr
		tableMu.Unlock()
	}

	const senders = 4
	const perSender = 200
	nodes := make([]*Node, senders)
	for i := range nodes {
		n, err := Listen(fmt.Sprintf("s%d", i), "127.0.0.1:0", resolver)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = n.Close() })
		setAddr(n.Local(), n.Addr())
		nodes[i] = n
	}

	type rec struct{ sender, seq int }
	var recMu sync.Mutex
	var received []rec
	handler := func(src string, payload []byte) {
		var s, q int
		if _, err := fmt.Sscanf(string(payload), "%d:%d", &s, &q); err != nil {
			t.Errorf("bad frame %q", payload)
			return
		}
		recMu.Lock()
		received = append(received, rec{s, q})
		recMu.Unlock()
	}

	r0, err := Listen("r", "127.0.0.1:0", resolver)
	if err != nil {
		t.Fatal(err)
	}
	r0.SetHandler(handler)
	setAddr("r", r0.Addr())
	rAddr := r0.Addr()

	var wg sync.WaitGroup
	for i := range nodes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for q := 0; q < perSender; q++ {
				// Errors are legal mid-restart (budget exhausted); the FT
				// layer would replay. The transport's own job is no dup, no
				// reorder.
				_ = nodes[i].Send("r", []byte(fmt.Sprintf("%d:%d", i, q)))
			}
		}(i)
	}

	// Restart the receiver three times mid-storm, same address.
	current := r0
	for restart := 0; restart < 3; restart++ {
		time.Sleep(30 * time.Millisecond)
		_ = current.Close()
		var next *Node
		for i := 0; ; i++ {
			next, err = Listen("r", rAddr, resolver)
			if err == nil {
				break
			}
			if i > 200 {
				t.Fatalf("rebind: %v", err)
			}
			time.Sleep(5 * time.Millisecond)
		}
		next.SetHandler(handler)
		current = next
	}
	t.Cleanup(func() { _ = current.Close() })

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("storm wedged")
	}
	time.Sleep(100 * time.Millisecond) // drain last in-flight frames

	recMu.Lock()
	defer recMu.Unlock()
	lastSeq := make([]int, senders)
	for i := range lastSeq {
		lastSeq[i] = -1
	}
	seen := make(map[rec]bool)
	for _, r := range received {
		if seen[r] {
			t.Fatalf("duplicate delivery of sender %d seq %d", r.sender, r.seq)
		}
		seen[r] = true
		if r.seq <= lastSeq[r.sender] {
			t.Fatalf("sender %d: seq %d after %d — reordered across the restarts", r.sender, r.seq, lastSeq[r.sender])
		}
		lastSeq[r.sender] = r.seq
	}
	if len(received) == 0 {
		t.Fatal("storm delivered nothing at all")
	}
	t.Logf("storm: %d/%d frames delivered across 3 restarts", len(received), senders*perSender)
}

// TestWriteDeadlineUnsticksHungPeer: a peer that accepts the connection
// and never reads must not block Send forever — the write deadline turns
// the stall into a bounded error.
func TestWriteDeadlineUnsticksHungPeer(t *testing.T) {
	hung, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer hung.Close()
	go func() {
		for {
			c, err := hung.Accept()
			if err != nil {
				return
			}
			// Accept and never read: the classic wedged peer.
			defer c.Close()
		}
	}()

	resolver := StaticResolver(map[string]string{"h": hung.Addr().String()})
	a, err := Listen("a", "127.0.0.1:0", resolver,
		WithWriteTimeout(200*time.Millisecond), WithRetryBudget(0))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = a.Close() })

	// Fill the kernel buffers until the write deadline fires.
	payload := make([]byte, 1<<20)
	start := time.Now()
	var sendErr error
	for i := 0; i < 64; i++ {
		if sendErr = a.Send("h", payload); sendErr != nil {
			break
		}
	}
	if sendErr == nil {
		t.Fatal("sends to a never-reading peer kept succeeding")
	}
	if !IsTransient(sendErr) {
		t.Fatalf("a stalled write must classify transient, got %v", sendErr)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("unsticking took %v", elapsed)
	}
}
