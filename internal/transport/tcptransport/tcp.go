// Package tcptransport implements the transport.Transport interface over
// real TCP sockets (stdlib net), reproducing the communication layer of the
// paper's runtime: kernels are named independently of host names, connections
// are opened lazily when the first data object must reach a node, and each
// established connection carries length-prefixed frames in FIFO order.
//
// The wire path degrades gracefully under transient faults instead of
// amplifying them into cluster events:
//
//   - Send classifies errors as transient (refused dials, resets, broken
//     pipes, timeouts) or fatal (closed node, resolver failure) and redials
//     transient ones with capped exponential backoff plus jitter before
//     surfacing anything to the failure detector;
//   - every connection handshake carries a session epoch, monotonic across
//     process restarts, so a receiver detects reconnects, rejects frames of
//     superseded sessions, and the per-sender FIFO contract the engine's
//     duplicate filter depends on survives a redial (a torn frame dies with
//     its connection — the length prefix never resynchronizes mid-stream);
//   - writes carry a deadline, so a hung peer surfaces as a bounded-stall
//     send error (and from there a detector event) instead of blocking a
//     dispatch lane forever.
package tcptransport

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/transport"
)

// Resolver maps a node name to a dialable TCP address. The kernel name
// server provides one; tests can use a static map.
type Resolver func(name string) (addr string, err error)

// StaticResolver resolves from a fixed name→address table.
func StaticResolver(table map[string]string) Resolver {
	return func(name string) (string, error) {
		addr, ok := table[name]
		if !ok {
			return "", fmt.Errorf("tcptransport: unknown node %q", name)
		}
		return addr, nil
	}
}

// ErrClosed is returned for sends on a closed node. It is fatal: no retry
// can revive a closed endpoint.
var ErrClosed = errors.New("tcptransport: node closed")

// FatalError marks a send failure that retrying cannot fix — the resolver
// does not know the destination, or the local endpoint is gone. Everything
// else on the wire path (refused dials, resets, broken pipes, stalled
// writes) is presumed transient: peers restart.
type FatalError struct{ Err error }

func (e *FatalError) Error() string { return e.Err.Error() }
func (e *FatalError) Unwrap() error { return e.Err }

// IsTransient reports whether a Send error may clear by itself (and was,
// or could be, retried). The engine's suspect-grace window retries
// transient failures before feeding the failure detector; fatal ones
// surface immediately.
func IsTransient(err error) bool {
	if err == nil {
		return false
	}
	var fe *FatalError
	if errors.As(err, &fe) {
		return false
	}
	return !errors.Is(err, ErrClosed)
}

// Send retry tuning: first backoff, cap, and the default overall budget.
const (
	retryBase = 2 * time.Millisecond
	retryCap  = 100 * time.Millisecond
	// DefaultRetryBudget bounds the in-Send redial loop for transient
	// failures. It is deliberately shorter than typical detector grace
	// windows: the transport absorbs the blip, the engine's suspect grace
	// absorbs the outage.
	DefaultRetryBudget = 2 * time.Second
	// DefaultWriteTimeout bounds one frame write; a peer that accepts the
	// connection but stops reading surfaces as a send error after at most
	// this stall.
	DefaultWriteTimeout = 10 * time.Second
)

// Option tunes a Node at Listen time.
type Option func(*Node)

// WithRetryBudget bounds how long Send retries transient failures before
// surfacing them. Zero disables in-Send retries (every failure surfaces
// immediately, classified).
func WithRetryBudget(d time.Duration) Option {
	return func(n *Node) { n.retryBudget = d }
}

// WithWriteTimeout bounds each frame write. Zero disables write deadlines.
func WithWriteTimeout(d time.Duration) Option {
	return func(n *Node) { n.writeTimeout = d }
}

// WithCompression enables flate compression of outbound frames. The dialer
// advertises it in the session handshake (a flags byte trailing the epoch),
// switching that connection — both directions — to prefixed framing where
// each frame carries a one-byte raw/compressed marker. Nodes without the
// option still decode prefixed connections, so mixed clusters interoperate;
// without it, the wire format is byte-identical to prior releases.
func WithCompression() Option {
	return func(n *Node) { n.compress = true }
}

// Node is one TCP-attached cluster endpoint.
type Node struct {
	name         string
	listener     net.Listener
	resolve      Resolver
	retryBudget  time.Duration
	writeTimeout time.Duration
	compress     bool
	retries      atomic.Int64

	mu      sync.Mutex
	handler transport.Handler
	conns   map[string]*conn
	// dialEpochs holds the last session epoch this node used toward each
	// destination; sessions holds the highest epoch accepted from each
	// inbound peer. Epochs from different dialers are unrelated — only
	// inbound epochs of the same peer are comparable.
	dialEpochs map[string]uint64
	sessions   map[string]uint64
	closed     bool
	wg         sync.WaitGroup
}

type conn struct {
	mu sync.Mutex // serializes writes
	c  net.Conn
	// inbound connections carry the peer's session epoch; a later epoch
	// from the same peer supersedes them.
	inbound bool
	epoch   uint64
	// prefixed connections frame every payload (both directions) behind a
	// one-byte raw/compressed marker, negotiated by the dialer's handshake.
	prefixed bool
}

// Listen starts a node listening on addr (e.g. "127.0.0.1:0"). The returned
// node's Addr method reports the bound address for registration with a name
// server.
func Listen(name, addr string, resolve Resolver, opts ...Option) (*Node, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	n := &Node{
		name:         name,
		listener:     l,
		resolve:      resolve,
		retryBudget:  DefaultRetryBudget,
		writeTimeout: DefaultWriteTimeout,
		conns:        make(map[string]*conn),
		dialEpochs:   make(map[string]uint64),
		sessions:     make(map[string]uint64),
	}
	for _, opt := range opts {
		opt(n)
	}
	n.wg.Add(1)
	go n.acceptLoop()
	return n, nil
}

// Addr returns the listening address.
func (n *Node) Addr() string { return n.listener.Addr().String() }

// Local implements transport.Transport.
func (n *Node) Local() string { return n.name }

// Retries reports how many transient-failure redial attempts Send has
// made so far.
func (n *Node) Retries() int64 { return n.retries.Load() }

// SessionEpoch reports the highest session epoch accepted from the named
// peer (zero before its first inbound connection). Each reconnect of a
// restarting peer registers a strictly higher epoch.
func (n *Node) SessionEpoch(peer string) uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.sessions[peer]
}

// SetHandler implements transport.Transport.
func (n *Node) SetHandler(h transport.Handler) {
	n.mu.Lock()
	n.handler = h
	n.mu.Unlock()
}

func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		c, err := n.listener.Accept()
		if err != nil {
			return
		}
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			n.serveConn(c)
		}()
	}
}

// serveConn handles one inbound connection: the peer first sends its name
// and session epoch, then a stream of frames. A connection whose epoch is
// below the peer's current session is a remnant of a dead session (the
// peer already reconnected) and is rejected outright; a higher epoch
// supersedes — and closes — the previous inbound connection, so frames of
// the old session can never interleave with the new stream.
func (n *Node) serveConn(c net.Conn) {
	peer, err := readFrame(c)
	if err != nil {
		_ = c.Close()
		return
	}
	epochBuf, err := readFrame(c)
	if err != nil {
		_ = c.Close()
		return
	}
	epoch, k := binary.Uvarint(epochBuf)
	if k <= 0 {
		_ = c.Close()
		return
	}
	// A flags byte may trail the epoch varint; dialers without one are
	// plain-framed (the old handshake, where nothing followed the varint).
	prefixed := len(epochBuf) > k && epochBuf[k]&sessionFlagPrefixed != 0
	peerName := string(peer)

	n.mu.Lock()
	if n.closed || epoch < n.sessions[peerName] {
		n.mu.Unlock()
		_ = c.Close()
		return
	}
	n.sessions[peerName] = epoch
	if old, ok := n.conns[peerName]; ok && old.inbound && old.epoch < epoch {
		// The peer reconnected (restart or dropped socket): retire the dead
		// session's connection before registering the new one.
		delete(n.conns, peerName)
		_ = old.c.Close()
	}
	// Remember the inbound connection for replies, so two nodes exchanging
	// traffic need only one socket pair (as with the paper's on-demand TCP
	// connections) — unless an existing connection (outbound dial that won
	// a race) already serves the peer.
	if _, exists := n.conns[peerName]; !exists {
		n.conns[peerName] = &conn{c: c, inbound: true, epoch: epoch, prefixed: prefixed}
	}
	n.mu.Unlock()

	for {
		payload, err := readFrame(c)
		if err != nil {
			n.dropConn(peerName, c)
			return
		}
		if prefixed {
			if payload, err = decodePrefixed(payload); err != nil {
				n.dropConn(peerName, c)
				return
			}
		}
		n.mu.Lock()
		stale := n.sessions[peerName] != epoch
		h := n.handler
		n.mu.Unlock()
		if stale {
			// A newer session superseded this one while the frame was in
			// flight; drop it — the peer re-sends on the new session.
			n.dropConn(peerName, c)
			_ = c.Close()
			return
		}
		if h != nil {
			h(peerName, payload)
		}
	}
}

func (n *Node) dropConn(peer string, c net.Conn) {
	_ = c.Close()
	n.mu.Lock()
	if cc, ok := n.conns[peer]; ok && cc.c == c {
		delete(n.conns, peer)
	}
	n.mu.Unlock()
}

// Send implements transport.Transport, dialing the destination lazily on
// first use. Transient failures — refused dials while the peer restarts,
// resets, stalled writes — are redialed with capped exponential backoff
// and jitter until the retry budget runs out; only then (or on a fatal
// error, immediately) does the error surface. A frame whose write failed
// was not fully handed to the kernel, and the failing connection is closed
// before the redial, so the receiver sees at most a torn frame that dies
// with its session — a retried frame is never delivered twice.
func (n *Node) Send(dst string, payload []byte) error {
	err := n.trySend(dst, payload)
	if err == nil || !IsTransient(err) || n.retryBudget <= 0 {
		return err
	}
	deadline := time.Now().Add(n.retryBudget)
	backoff := retryBase
	for {
		// Full jitter on the capped exponential backoff, so senders that
		// failed together do not redial in lockstep.
		d := backoff/2 + time.Duration(rand.Int63n(int64(backoff/2)+1))
		if time.Now().Add(d).After(deadline) {
			return fmt.Errorf("tcptransport: send to %s: retries exhausted: %w", dst, err)
		}
		time.Sleep(d)
		if backoff < retryCap {
			backoff *= 2
		}
		n.retries.Add(1)
		if err = n.trySend(dst, payload); err == nil || !IsTransient(err) {
			return err
		}
	}
}

// trySend performs one connect-and-write attempt. Header and payload go
// out in a single vectored write (writev on TCP), so bulk frames cost one
// syscall and never split the length prefix from its body across segments
// gratuitously.
func (n *Node) trySend(dst string, payload []byte) error {
	cc, err := n.connTo(dst)
	if err != nil {
		return err
	}
	prefix := -1
	body := payload
	if cc.prefixed {
		prefix = framePrefixRaw
		if n.compress && len(payload) >= compressMin {
			if def, ok := deflateFrame(payload); ok {
				prefix, body = framePrefixFlate, def
			}
		}
	}
	cc.mu.Lock()
	if connDead(cc.c) {
		cc.mu.Unlock()
		n.dropConn(dst, cc.c)
		return fmt.Errorf("tcptransport: send to %s: connection already closed by peer", dst)
	}
	if n.writeTimeout > 0 {
		_ = cc.c.SetWriteDeadline(time.Now().Add(n.writeTimeout))
	}
	err = writeFrameVec(cc.c, prefix, body)
	cc.mu.Unlock()
	if err != nil {
		n.dropConn(dst, cc.c)
		return err
	}
	return nil
}

// nextEpoch assigns the session epoch for a fresh outbound connection.
// Epochs must grow across process restarts (a restarted sender knows
// nothing of its predecessor's counter), so they start from the wall
// clock and only fall back to prev+1 if the clock stands still or runs
// backwards.
func (n *Node) nextEpoch(dst string) uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	e := n.dialEpochs[dst] + 1
	if now := uint64(time.Now().UnixNano()); now > e {
		e = now
	}
	n.dialEpochs[dst] = e
	return e
}

func (n *Node) connTo(dst string) (*conn, error) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil, ErrClosed
	}
	if cc, ok := n.conns[dst]; ok {
		n.mu.Unlock()
		return cc, nil
	}
	n.mu.Unlock()

	addr, err := n.resolve(dst)
	if err != nil {
		// The name server does not know the destination; redialing cannot
		// help until registration changes, which real traffic should not
		// wait on.
		return nil, &FatalError{Err: err}
	}
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("tcptransport: dial %s (%s): %w", dst, addr, err)
	}
	epoch := n.nextEpoch(dst)
	var eb [binary.MaxVarintLen64 + 1]byte
	if err := writeFrame(c, []byte(n.name)); err != nil {
		_ = c.Close()
		return nil, err
	}
	hello := eb[:binary.PutUvarint(eb[:], epoch)]
	if n.compress {
		hello = append(hello, sessionFlagPrefixed)
	}
	if err := writeFrame(c, hello); err != nil {
		_ = c.Close()
		return nil, err
	}

	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		_ = c.Close()
		return nil, ErrClosed
	}
	if existing, ok := n.conns[dst]; ok {
		// Lost the race with a concurrent dial or an inbound connection.
		n.mu.Unlock()
		_ = c.Close()
		return existing, nil
	}
	cc := &conn{c: c, epoch: epoch, prefixed: n.compress}
	n.conns[dst] = cc
	n.mu.Unlock()

	// Read frames arriving on the outbound connection too (the peer may
	// reply on it rather than dialing back).
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		for {
			payload, err := readFrame(c)
			if err != nil {
				n.dropConn(dst, c)
				return
			}
			if cc.prefixed {
				if payload, err = decodePrefixed(payload); err != nil {
					n.dropConn(dst, c)
					return
				}
			}
			n.mu.Lock()
			h := n.handler
			n.mu.Unlock()
			if h != nil {
				h(dst, payload)
			}
		}
	}()
	return cc, nil
}

// Close implements transport.Transport.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	conns := make([]*conn, 0, len(n.conns))
	for _, cc := range n.conns {
		conns = append(conns, cc)
	}
	n.conns = make(map[string]*conn)
	n.mu.Unlock()
	err := n.listener.Close()
	for _, cc := range conns {
		_ = cc.c.Close()
	}
	n.wg.Wait()
	return err
}

var _ transport.Transport = (*Node)(nil)

const maxFrame = 1 << 30

// Prefixed-framing constants: the handshake flags byte and the per-frame
// marker on negotiated connections.
const (
	sessionFlagPrefixed = 1

	framePrefixRaw   = 0
	framePrefixFlate = 1

	// compressMin: frames below this are sent raw even on compressing
	// connections — flate overhead dominates tiny frames.
	compressMin = 512
)

func writeFrame(w io.Writer, payload []byte) error {
	var hdr [binary.MaxVarintLen64]byte
	hn := binary.PutUvarint(hdr[:], uint64(len(payload)))
	if _, err := w.Write(hdr[:hn]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// writeFrameVec writes one frame with a single vectored write. prefix < 0
// means plain framing ([len][payload]); otherwise the prefix byte is folded
// into the frame body ([len+1][prefix][payload]) without copying the payload.
func writeFrameVec(c net.Conn, prefix int, payload []byte) error {
	var hdr [binary.MaxVarintLen64 + 1]byte
	if prefix < 0 {
		hn := binary.PutUvarint(hdr[:], uint64(len(payload)))
		bufs := net.Buffers{hdr[:hn], payload}
		_, err := bufs.WriteTo(c)
		return err
	}
	hn := binary.PutUvarint(hdr[:], uint64(len(payload))+1)
	hdr[hn] = byte(prefix)
	bufs := net.Buffers{hdr[:hn+1], payload}
	_, err := bufs.WriteTo(c)
	return err
}

// decodePrefixed unwraps one frame of a prefixed connection: a marker byte,
// then the payload (flate-compressed behind a declared raw length when the
// marker says so).
func decodePrefixed(b []byte) ([]byte, error) {
	if len(b) == 0 {
		return nil, errors.New("tcptransport: empty prefixed frame")
	}
	switch b[0] {
	case framePrefixRaw:
		return b[1:], nil
	case framePrefixFlate:
		return inflateFrame(b[1:])
	default:
		return nil, fmt.Errorf("tcptransport: unknown frame prefix %d", b[0])
	}
}

var (
	flateWriters sync.Pool // *flate.Writer
	flateReaders sync.Pool // io.ReadCloser + flate.Resetter
)

// deflateFrame compresses a frame body into [uvarint rawLen][flate stream].
// Reports ok=false when compression does not shrink the frame (the caller
// then sends it raw).
func deflateFrame(raw []byte) ([]byte, bool) {
	var buf bytes.Buffer
	buf.Grow(len(raw)/2 + binary.MaxVarintLen64)
	var hdr [binary.MaxVarintLen64]byte
	buf.Write(hdr[:binary.PutUvarint(hdr[:], uint64(len(raw)))])
	fw, _ := flateWriters.Get().(*flate.Writer)
	if fw == nil {
		fw, _ = flate.NewWriter(&buf, flate.BestSpeed)
	} else {
		fw.Reset(&buf)
	}
	_, werr := fw.Write(raw)
	cerr := fw.Close()
	flateWriters.Put(fw)
	if werr != nil || cerr != nil || buf.Len() >= len(raw) {
		return nil, false
	}
	return buf.Bytes(), true
}

// inflateFrame reverses deflateFrame, refusing hostile inputs: a claimed
// raw length past the frame limit, a stream shorter than declared, or
// trailing garbage after the declared length.
func inflateFrame(b []byte) ([]byte, error) {
	rawLen, k := binary.Uvarint(b)
	if k <= 0 || rawLen > maxFrame {
		return nil, errors.New("tcptransport: bad compressed frame header")
	}
	src := bytes.NewReader(b[k:])
	fr, _ := flateReaders.Get().(io.ReadCloser)
	if fr == nil {
		fr = flate.NewReader(src)
	} else if err := fr.(flate.Resetter).Reset(src, nil); err != nil {
		return nil, err
	}
	out := make([]byte, rawLen)
	if _, err := io.ReadFull(fr, out); err != nil {
		return nil, err
	}
	var one [1]byte
	if n, _ := fr.Read(one[:]); n != 0 {
		return nil, errors.New("tcptransport: compressed frame longer than declared")
	}
	flateReaders.Put(fr)
	return out, nil
}

func readFrame(r io.Reader) ([]byte, error) {
	br := byteReaderFor(r)
	size, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if size > maxFrame {
		return nil, fmt.Errorf("tcptransport: frame of %d bytes exceeds limit", size)
	}
	buf := make([]byte, size)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// singleByteReader adapts an io.Reader to io.ByteReader without buffering
// (we must not read ahead past the varint header).
type singleByteReader struct{ r io.Reader }

func (s singleByteReader) ReadByte() (byte, error) {
	var b [1]byte
	if _, err := io.ReadFull(s.r, b[:]); err != nil {
		return 0, err
	}
	return b[0], nil
}

func byteReaderFor(r io.Reader) io.ByteReader {
	if br, ok := r.(io.ByteReader); ok {
		return br
	}
	return singleByteReader{r: r}
}
