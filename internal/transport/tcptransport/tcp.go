// Package tcptransport implements the transport.Transport interface over
// real TCP sockets (stdlib net), reproducing the communication layer of the
// paper's runtime: kernels are named independently of host names, connections
// are opened lazily when the first data object must reach a node, and each
// established connection carries length-prefixed frames in FIFO order.
package tcptransport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"repro/internal/transport"
)

// Resolver maps a node name to a dialable TCP address. The kernel name
// server provides one; tests can use a static map.
type Resolver func(name string) (addr string, err error)

// StaticResolver resolves from a fixed name→address table.
func StaticResolver(table map[string]string) Resolver {
	return func(name string) (string, error) {
		addr, ok := table[name]
		if !ok {
			return "", fmt.Errorf("tcptransport: unknown node %q", name)
		}
		return addr, nil
	}
}

// Node is one TCP-attached cluster endpoint.
type Node struct {
	name     string
	listener net.Listener
	resolve  Resolver

	mu      sync.Mutex
	handler transport.Handler
	conns   map[string]*conn
	closed  bool
	wg      sync.WaitGroup
}

type conn struct {
	mu sync.Mutex // serializes writes
	c  net.Conn
}

// Listen starts a node listening on addr (e.g. "127.0.0.1:0"). The returned
// node's Addr method reports the bound address for registration with a name
// server.
func Listen(name, addr string, resolve Resolver) (*Node, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	n := &Node{
		name:     name,
		listener: l,
		resolve:  resolve,
		conns:    make(map[string]*conn),
	}
	n.wg.Add(1)
	go n.acceptLoop()
	return n, nil
}

// Addr returns the listening address.
func (n *Node) Addr() string { return n.listener.Addr().String() }

// Local implements transport.Transport.
func (n *Node) Local() string { return n.name }

// SetHandler implements transport.Transport.
func (n *Node) SetHandler(h transport.Handler) {
	n.mu.Lock()
	n.handler = h
	n.mu.Unlock()
}

func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		c, err := n.listener.Accept()
		if err != nil {
			return
		}
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			n.serveConn(c)
		}()
	}
}

// serveConn handles one inbound connection: the peer first sends its name,
// then a stream of frames.
func (n *Node) serveConn(c net.Conn) {
	peer, err := readFrame(c)
	if err != nil {
		_ = c.Close()
		return
	}
	peerName := string(peer)
	// Remember the inbound connection for replies, so two nodes exchanging
	// traffic need only one socket pair (as with the paper's on-demand TCP
	// connections).
	n.mu.Lock()
	if _, exists := n.conns[peerName]; !exists {
		n.conns[peerName] = &conn{c: c}
	}
	n.mu.Unlock()
	for {
		payload, err := readFrame(c)
		if err != nil {
			n.dropConn(peerName, c)
			return
		}
		n.mu.Lock()
		h := n.handler
		n.mu.Unlock()
		if h != nil {
			h(peerName, payload)
		}
	}
}

func (n *Node) dropConn(peer string, c net.Conn) {
	_ = c.Close()
	n.mu.Lock()
	if cc, ok := n.conns[peer]; ok && cc.c == c {
		delete(n.conns, peer)
	}
	n.mu.Unlock()
}

// Send implements transport.Transport, dialing the destination lazily on
// first use.
func (n *Node) Send(dst string, payload []byte) error {
	cc, err := n.connTo(dst)
	if err != nil {
		return err
	}
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if err := writeFrame(cc.c, payload); err != nil {
		n.dropConn(dst, cc.c)
		return err
	}
	return nil
}

func (n *Node) connTo(dst string) (*conn, error) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil, errors.New("tcptransport: node closed")
	}
	if cc, ok := n.conns[dst]; ok {
		n.mu.Unlock()
		return cc, nil
	}
	n.mu.Unlock()

	addr, err := n.resolve(dst)
	if err != nil {
		return nil, err
	}
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("tcptransport: dial %s (%s): %w", dst, addr, err)
	}
	if err := writeFrame(c, []byte(n.name)); err != nil {
		_ = c.Close()
		return nil, err
	}

	n.mu.Lock()
	if existing, ok := n.conns[dst]; ok {
		// Lost the race with a concurrent dial or an inbound connection.
		n.mu.Unlock()
		_ = c.Close()
		return existing, nil
	}
	cc := &conn{c: c}
	n.conns[dst] = cc
	n.mu.Unlock()

	// Read frames arriving on the outbound connection too (the peer may
	// reply on it rather than dialing back).
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		for {
			payload, err := readFrame(c)
			if err != nil {
				n.dropConn(dst, c)
				return
			}
			n.mu.Lock()
			h := n.handler
			n.mu.Unlock()
			if h != nil {
				h(dst, payload)
			}
		}
	}()
	return cc, nil
}

// Close implements transport.Transport.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	conns := make([]*conn, 0, len(n.conns))
	for _, cc := range n.conns {
		conns = append(conns, cc)
	}
	n.conns = make(map[string]*conn)
	n.mu.Unlock()
	err := n.listener.Close()
	for _, cc := range conns {
		_ = cc.c.Close()
	}
	n.wg.Wait()
	return err
}

var _ transport.Transport = (*Node)(nil)

const maxFrame = 1 << 30

func writeFrame(w io.Writer, payload []byte) error {
	var hdr [binary.MaxVarintLen64]byte
	hn := binary.PutUvarint(hdr[:], uint64(len(payload)))
	if _, err := w.Write(hdr[:hn]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

func readFrame(r io.Reader) ([]byte, error) {
	br := byteReaderFor(r)
	size, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if size > maxFrame {
		return nil, fmt.Errorf("tcptransport: frame of %d bytes exceeds limit", size)
	}
	buf := make([]byte, size)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// singleByteReader adapts an io.Reader to io.ByteReader without buffering
// (we must not read ahead past the varint header).
type singleByteReader struct{ r io.Reader }

func (s singleByteReader) ReadByte() (byte, error) {
	var b [1]byte
	if _, err := io.ReadFull(s.r, b[:]); err != nil {
		return 0, err
	}
	return b[0], nil
}

func byteReaderFor(r io.Reader) io.ByteReader {
	if br, ok := r.(io.ByteReader); ok {
		return br
	}
	return singleByteReader{r: r}
}
