package tcptransport

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"
)

func startPair(t *testing.T) (*Node, *Node) {
	t.Helper()
	table := map[string]string{}
	resolver := StaticResolver(table)
	a, err := Listen("a", "127.0.0.1:0", resolver)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Listen("b", "127.0.0.1:0", resolver)
	if err != nil {
		t.Fatal(err)
	}
	table["a"] = a.Addr()
	table["b"] = b.Addr()
	t.Cleanup(func() { _ = a.Close(); _ = b.Close() })
	return a, b
}

func TestSendReceive(t *testing.T) {
	a, b := startPair(t)
	got := make(chan string, 1)
	b.SetHandler(func(src string, payload []byte) { got <- src + ":" + string(payload) })
	a.SetHandler(func(src string, payload []byte) {})
	if err := a.Send("b", []byte("over tcp")); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-got:
		if m != "a:over tcp" {
			t.Fatalf("got %q", m)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("timeout")
	}
}

func TestBidirectionalSingleConnection(t *testing.T) {
	a, b := startPair(t)
	fromA := make(chan []byte, 10)
	fromB := make(chan []byte, 10)
	a.SetHandler(func(src string, payload []byte) { fromB <- payload })
	b.SetHandler(func(src string, payload []byte) { fromA <- payload })

	if err := a.Send("b", []byte("ping")); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-fromA:
		if string(m) != "ping" {
			t.Fatalf("got %q", m)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("timeout waiting at b")
	}
	// Reply should reuse the inbound connection (no dial of a needed: remove
	// a from the resolver table to prove it).
	if err := b.Send("a", []byte("pong")); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-fromB:
		if string(m) != "pong" {
			t.Fatalf("got %q", m)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("timeout waiting at a")
	}
}

func TestFIFOOrder(t *testing.T) {
	a, b := startPair(t)
	const count = 500
	got := make(chan int, count)
	b.SetHandler(func(src string, payload []byte) { got <- int(payload[0])<<8 | int(payload[1]) })
	a.SetHandler(func(src string, payload []byte) {})
	for i := 0; i < count; i++ {
		if err := a.Send("b", []byte{byte(i >> 8), byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < count; i++ {
		select {
		case v := <-got:
			if v != i {
				t.Fatalf("out of order: got %d want %d", v, i)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("timeout")
		}
	}
}

func TestLargePayload(t *testing.T) {
	a, b := startPair(t)
	payload := bytes.Repeat([]byte{0xAB}, 4<<20)
	got := make(chan []byte, 1)
	b.SetHandler(func(src string, p []byte) { got <- p })
	a.SetHandler(func(src string, payload []byte) {})
	if err := a.Send("b", payload); err != nil {
		t.Fatal(err)
	}
	select {
	case p := <-got:
		if !bytes.Equal(p, payload) {
			t.Fatal("payload corrupted")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("timeout")
	}
}

func TestUnknownDestination(t *testing.T) {
	a, _ := startPair(t)
	if err := a.Send("ghost", []byte("x")); err == nil {
		t.Fatal("expected resolve error")
	}
}

func TestConcurrentSendersOneDest(t *testing.T) {
	table := map[string]string{}
	resolver := StaticResolver(table)
	dst, err := Listen("dst", "127.0.0.1:0", resolver)
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()
	table["dst"] = dst.Addr()

	const senders = 6
	const per = 100
	var mu sync.Mutex
	counts := map[string]int{}
	done := make(chan struct{})
	total := 0
	dst.SetHandler(func(src string, payload []byte) {
		mu.Lock()
		counts[src]++
		total++
		if total == senders*per {
			close(done)
		}
		mu.Unlock()
	})

	// Register every sender before any goroutine starts: the resolver
	// closure reads the table concurrently once sends begin.
	nodes := make([]*Node, senders)
	for i := 0; i < senders; i++ {
		name := fmt.Sprintf("s%d", i)
		n, err := Listen(name, "127.0.0.1:0", resolver)
		if err != nil {
			t.Fatal(err)
		}
		defer n.Close()
		table[name] = n.Addr()
		nodes[i] = n
	}
	for _, n := range nodes {
		go func(n *Node) {
			for j := 0; j < per; j++ {
				if err := n.Send("dst", []byte("m")); err != nil {
					t.Error(err)
					return
				}
			}
		}(n)
	}
	select {
	case <-done:
	case <-time.After(20 * time.Second):
		t.Fatalf("timeout: %d received", total)
	}
	for src, c := range counts {
		if c != per {
			t.Errorf("%s: %d messages, want %d", src, c, per)
		}
	}
}

func TestSendAfterClose(t *testing.T) {
	a, _ := startPair(t)
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Send("b", []byte("x")); err == nil {
		t.Fatal("expected error after close")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{nil, {}, []byte("a"), bytes.Repeat([]byte("xyz"), 1000)}
	for _, p := range payloads {
		if err := writeFrame(&buf, p); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range payloads {
		got, err := readFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, p) {
			t.Fatalf("got %q want %q", got, p)
		}
	}
}

// dynResolver is a mutable name→address table safe for concurrent use,
// standing in for the kernel name server in restart scenarios.
type dynResolver struct {
	mu    sync.Mutex
	table map[string]string
}

func (r *dynResolver) set(name, addr string) {
	r.mu.Lock()
	r.table[name] = addr
	r.mu.Unlock()
}

func (r *dynResolver) resolve(name string) (string, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	addr, ok := r.table[name]
	if !ok {
		return "", fmt.Errorf("dyn: unknown node %q", name)
	}
	return addr, nil
}

// TestPeerRestartRedialsViaResolver restarts a peer on a fresh address: the
// sender's cached connection dies, the failure is surfaced to the caller
// (not swallowed), and once the resolver learns the new address the next
// Send lazily re-dials — the paper's on-demand connection establishment
// applied to recovery.
func TestPeerRestartRedialsViaResolver(t *testing.T) {
	res := &dynResolver{table: map[string]string{}}
	a1, err := Listen("a", "127.0.0.1:0", res.resolve)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Listen("b", "127.0.0.1:0", res.resolve)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = b.Close() })
	res.set("a", a1.Addr())
	res.set("b", b.Addr())

	got := make(chan string, 16)
	h := func(src string, payload []byte) { got <- string(payload) }
	a1.SetHandler(h)
	b.SetHandler(func(string, []byte) {})

	if err := b.Send("a", []byte("before")); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-got:
		if m != "before" {
			t.Fatalf("got %q", m)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("timeout before restart")
	}

	// Peer goes away. The sender's next attempts must eventually return an
	// error: either the cached connection fails on write, or the re-dial of
	// the stale address is refused. A silent success after the reader
	// noticed EOF would mean the transport swallowed the failure.
	oldAddr := a1.Addr()
	_ = a1.Close()
	deadline := time.After(10 * time.Second)
	for {
		if err := b.Send("a", []byte("into the void")); err != nil {
			break // failure surfaced
		}
		select {
		case <-deadline:
			t.Fatal("sends to a closed peer kept succeeding; dial/write error was swallowed")
		case <-time.After(5 * time.Millisecond):
		}
	}

	// While the resolver still points at the dead address, Send must keep
	// reporting the dial failure rather than pretending delivery.
	if err := b.Send("a", []byte("still down")); err == nil {
		t.Fatal("send to dead address succeeded")
	}

	// The peer comes back on a NEW address; only the resolver knows. The
	// next Send must consult it and re-dial lazily.
	a2, err := Listen("a", "127.0.0.1:0", res.resolve)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = a2.Close() })
	if a2.Addr() == oldAddr {
		t.Skipf("OS reused address %s; cannot distinguish re-dial", oldAddr)
	}
	a2.SetHandler(h)
	res.set("a", a2.Addr())

	var sendErr error
	redeadline := time.After(10 * time.Second)
	for {
		if sendErr = b.Send("a", []byte("after restart")); sendErr == nil {
			break
		}
		select {
		case <-redeadline:
			t.Fatalf("send after restart never succeeded: %v", sendErr)
		case <-time.After(5 * time.Millisecond):
		}
	}
	select {
	case m := <-got:
		if m != "after restart" {
			t.Fatalf("got %q after restart", m)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("restarted peer never received the re-dialed message")
	}
}
