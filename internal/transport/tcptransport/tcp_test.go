package tcptransport

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"
)

func startPair(t *testing.T) (*Node, *Node) {
	t.Helper()
	table := map[string]string{}
	resolver := StaticResolver(table)
	a, err := Listen("a", "127.0.0.1:0", resolver)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Listen("b", "127.0.0.1:0", resolver)
	if err != nil {
		t.Fatal(err)
	}
	table["a"] = a.Addr()
	table["b"] = b.Addr()
	t.Cleanup(func() { _ = a.Close(); _ = b.Close() })
	return a, b
}

func TestSendReceive(t *testing.T) {
	a, b := startPair(t)
	got := make(chan string, 1)
	b.SetHandler(func(src string, payload []byte) { got <- src + ":" + string(payload) })
	a.SetHandler(func(src string, payload []byte) {})
	if err := a.Send("b", []byte("over tcp")); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-got:
		if m != "a:over tcp" {
			t.Fatalf("got %q", m)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("timeout")
	}
}

func TestBidirectionalSingleConnection(t *testing.T) {
	a, b := startPair(t)
	fromA := make(chan []byte, 10)
	fromB := make(chan []byte, 10)
	a.SetHandler(func(src string, payload []byte) { fromB <- payload })
	b.SetHandler(func(src string, payload []byte) { fromA <- payload })

	if err := a.Send("b", []byte("ping")); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-fromA:
		if string(m) != "ping" {
			t.Fatalf("got %q", m)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("timeout waiting at b")
	}
	// Reply should reuse the inbound connection (no dial of a needed: remove
	// a from the resolver table to prove it).
	if err := b.Send("a", []byte("pong")); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-fromB:
		if string(m) != "pong" {
			t.Fatalf("got %q", m)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("timeout waiting at a")
	}
}

func TestFIFOOrder(t *testing.T) {
	a, b := startPair(t)
	const count = 500
	got := make(chan int, count)
	b.SetHandler(func(src string, payload []byte) { got <- int(payload[0])<<8 | int(payload[1]) })
	a.SetHandler(func(src string, payload []byte) {})
	for i := 0; i < count; i++ {
		if err := a.Send("b", []byte{byte(i >> 8), byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < count; i++ {
		select {
		case v := <-got:
			if v != i {
				t.Fatalf("out of order: got %d want %d", v, i)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("timeout")
		}
	}
}

func TestLargePayload(t *testing.T) {
	a, b := startPair(t)
	payload := bytes.Repeat([]byte{0xAB}, 4<<20)
	got := make(chan []byte, 1)
	b.SetHandler(func(src string, p []byte) { got <- p })
	a.SetHandler(func(src string, payload []byte) {})
	if err := a.Send("b", payload); err != nil {
		t.Fatal(err)
	}
	select {
	case p := <-got:
		if !bytes.Equal(p, payload) {
			t.Fatal("payload corrupted")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("timeout")
	}
}

func TestUnknownDestination(t *testing.T) {
	a, _ := startPair(t)
	if err := a.Send("ghost", []byte("x")); err == nil {
		t.Fatal("expected resolve error")
	}
}

func TestConcurrentSendersOneDest(t *testing.T) {
	table := map[string]string{}
	resolver := StaticResolver(table)
	dst, err := Listen("dst", "127.0.0.1:0", resolver)
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()
	table["dst"] = dst.Addr()

	const senders = 6
	const per = 100
	var mu sync.Mutex
	counts := map[string]int{}
	done := make(chan struct{})
	total := 0
	dst.SetHandler(func(src string, payload []byte) {
		mu.Lock()
		counts[src]++
		total++
		if total == senders*per {
			close(done)
		}
		mu.Unlock()
	})

	// Register every sender before any goroutine starts: the resolver
	// closure reads the table concurrently once sends begin.
	nodes := make([]*Node, senders)
	for i := 0; i < senders; i++ {
		name := fmt.Sprintf("s%d", i)
		n, err := Listen(name, "127.0.0.1:0", resolver)
		if err != nil {
			t.Fatal(err)
		}
		defer n.Close()
		table[name] = n.Addr()
		nodes[i] = n
	}
	for _, n := range nodes {
		go func(n *Node) {
			for j := 0; j < per; j++ {
				if err := n.Send("dst", []byte("m")); err != nil {
					t.Error(err)
					return
				}
			}
		}(n)
	}
	select {
	case <-done:
	case <-time.After(20 * time.Second):
		t.Fatalf("timeout: %d received", total)
	}
	for src, c := range counts {
		if c != per {
			t.Errorf("%s: %d messages, want %d", src, c, per)
		}
	}
}

func TestSendAfterClose(t *testing.T) {
	a, _ := startPair(t)
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Send("b", []byte("x")); err == nil {
		t.Fatal("expected error after close")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{nil, {}, []byte("a"), bytes.Repeat([]byte("xyz"), 1000)}
	for _, p := range payloads {
		if err := writeFrame(&buf, p); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range payloads {
		got, err := readFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, p) {
			t.Fatalf("got %q want %q", got, p)
		}
	}
}
