package tcptransport

import "testing"

// TestSessionWireBitsFrozen freezes the session-header flag bits and the
// frame-prefix bytes of the batched wire path (PR 7). A node restarted into
// a newer binary negotiates sessions with peers still running the old one:
// flag bits are ORed into the hello byte and must keep their positions, and
// the frame prefix selects the decompressor on the receiver — reassigning
// either silently corrupts frames mid-rolling-restart.
func TestSessionWireBitsFrozen(t *testing.T) {
	if sessionFlagPrefixed != 1 {
		t.Errorf("sessionFlagPrefixed = %d, frozen as 1: session flag bits are negotiated on the wire; add new flags as higher bits, never move existing ones", sessionFlagPrefixed)
	}
	if framePrefixRaw != 0 || framePrefixFlate != 1 {
		t.Errorf("frame prefixes (raw=%d, flate=%d), frozen as (0, 1): the prefix byte selects the peer's decoder; new codings take new bytes", framePrefixRaw, framePrefixFlate)
	}
}
