//go:build linux

package tcptransport

import (
	"net"
	"syscall"
)

// connDead reports whether the peer has already shut down the connection
// (a FIN or RST is pending in our kernel). The two-write framing this
// transport used before vectored writes probed this implicitly: the header
// write to a closed peer socket elicited an RST, failing the payload write,
// so Send retried and no frame was silently lost. A single vectored write
// has no second chance, so the probe is explicit now — a non-consuming
// MSG_PEEK that never races the reader goroutine (peeking does not steal
// bytes from a blocked recv). Any frame written after the peer's shutdown
// was unreadable anyway, so failing the send here cannot duplicate a
// delivered frame.
func connDead(c net.Conn) bool {
	sc, ok := c.(syscall.Conn)
	if !ok {
		return false
	}
	rc, err := sc.SyscallConn()
	if err != nil {
		return true
	}
	dead := false
	cerr := rc.Control(func(fd uintptr) {
		var b [1]byte
		n, _, err := syscall.Recvfrom(int(fd), b[:], syscall.MSG_PEEK|syscall.MSG_DONTWAIT)
		switch {
		case err == syscall.EAGAIN || err == syscall.EWOULDBLOCK || err == syscall.EINTR:
			// Nothing pending: alive.
		case err != nil:
			dead = true // ECONNRESET and friends
		case n == 0:
			dead = true // orderly EOF pending
		}
	})
	return dead || cerr != nil
}
