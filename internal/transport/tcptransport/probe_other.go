//go:build !linux

package tcptransport

import "net"

// connDead is a no-op where the MSG_PEEK probe is not implemented; the
// retry loop then relies on write errors alone, as the pre-vectored-write
// framing did.
func connDead(net.Conn) bool { return false }
