package tcptransport

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"
	"time"
)

// startPairOpts is startPair with per-node options.
func startPairOpts(t *testing.T, aOpts, bOpts []Option) (*Node, *Node) {
	t.Helper()
	table := map[string]string{}
	resolver := StaticResolver(table)
	a, err := Listen("a", "127.0.0.1:0", resolver, aOpts...)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Listen("b", "127.0.0.1:0", resolver, bOpts...)
	if err != nil {
		t.Fatal(err)
	}
	table["a"] = a.Addr()
	table["b"] = b.Addr()
	t.Cleanup(func() { _ = a.Close(); _ = b.Close() })
	return a, b
}

func roundTripPayloads(t *testing.T, a, b *Node, payloads [][]byte) {
	t.Helper()
	got := make(chan []byte, len(payloads))
	b.SetHandler(func(src string, payload []byte) { got <- payload })
	a.SetHandler(func(src string, payload []byte) {})
	for _, p := range payloads {
		if err := a.Send("b", p); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range payloads {
		select {
		case m := <-got:
			if !bytes.Equal(m, want) {
				t.Fatalf("payload %d: got %d bytes, want %d", i, len(m), len(want))
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("payload %d never arrived", i)
		}
	}
}

// testPayloads mixes tiny frames (below compressMin, sent raw even on a
// compressing connection), highly compressible bulk, and incompressible
// random bulk (where deflateFrame must fall back to raw framing).
func testPayloads() [][]byte {
	rng := rand.New(rand.NewSource(7))
	random := make([]byte, 256<<10)
	rng.Read(random)
	return [][]byte{
		[]byte("tiny"),
		bytes.Repeat([]byte("abcdefgh"), 16<<10),
		random,
		{},
	}
}

func TestCompressionRoundTrip(t *testing.T) {
	a, b := startPairOpts(t, []Option{WithCompression()}, []Option{WithCompression()})
	roundTripPayloads(t, a, b, testPayloads())
}

// TestCompressionAsymmetric: only one side opted in. The dialer decides the
// connection's framing; the other side must interoperate in both roles.
func TestCompressionAsymmetric(t *testing.T) {
	t.Run("compressing dialer, plain receiver", func(t *testing.T) {
		a, b := startPairOpts(t, []Option{WithCompression()}, nil)
		roundTripPayloads(t, a, b, testPayloads())
	})
	t.Run("plain dialer, compressing receiver", func(t *testing.T) {
		a, b := startPairOpts(t, nil, []Option{WithCompression()})
		roundTripPayloads(t, a, b, testPayloads())
	})
}

// TestCompressionReplyPath: the receiver's replies ride the dialer's
// negotiated connection, so they must use prefixed framing too.
func TestCompressionReplyPath(t *testing.T) {
	a, b := startPairOpts(t, []Option{WithCompression()}, []Option{WithCompression()})
	fromB := make(chan []byte, 1)
	a.SetHandler(func(src string, payload []byte) { fromB <- payload })
	got := make(chan struct{}, 1)
	b.SetHandler(func(src string, payload []byte) { got <- struct{}{} })
	if err := a.Send("b", []byte("ping")); err != nil {
		t.Fatal(err)
	}
	<-got
	bulk := bytes.Repeat([]byte("reply-data"), 8<<10)
	if err := b.Send("a", bulk); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-fromB:
		if !bytes.Equal(m, bulk) {
			t.Fatalf("reply corrupted: %d bytes, want %d", len(m), len(bulk))
		}
	case <-time.After(5 * time.Second):
		t.Fatal("reply never arrived")
	}
}

func TestDeflateInflateFrame(t *testing.T) {
	bulk := bytes.Repeat([]byte("wxyz"), 4096)
	def, ok := deflateFrame(bulk)
	if !ok {
		t.Fatal("compressible payload did not compress")
	}
	if len(def) >= len(bulk) {
		t.Fatalf("deflate grew the frame: %d >= %d", len(def), len(bulk))
	}
	raw, err := inflateFrame(def)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, bulk) {
		t.Fatal("round trip corrupted payload")
	}

	rng := rand.New(rand.NewSource(11))
	random := make([]byte, 64<<10)
	rng.Read(random)
	if _, ok := deflateFrame(random); ok {
		t.Fatal("incompressible payload claimed to compress")
	}
}

// TestInflateHostileInputs hardens the decode path against frames that lie
// about themselves.
func TestInflateHostileInputs(t *testing.T) {
	// Giant claimed raw length.
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(maxFrame)+1)
	if _, err := inflateFrame(append(hdr[:n:n], 1, 2, 3)); err == nil {
		t.Fatal("accepted frame claiming more than maxFrame raw bytes")
	}
	// Truncated varint header.
	if _, err := inflateFrame([]byte{0x80}); err == nil {
		t.Fatal("accepted truncated varint header")
	}
	// Stream shorter than declared (truncate deep enough to lose data, not
	// just the end-of-stream marker).
	def, ok := deflateFrame(bytes.Repeat([]byte("q"), 4096))
	if !ok {
		t.Fatal("setup: payload did not compress")
	}
	if _, err := inflateFrame(def[:len(def)/2]); err == nil {
		t.Fatal("accepted truncated flate stream")
	}
	// Stream longer than declared: declare a shorter raw length over the
	// same flate bytes.
	rawLen, k := binary.Uvarint(def)
	short := binary.AppendUvarint(nil, rawLen-1)
	short = append(short, def[k:]...)
	if _, err := inflateFrame(short); err == nil {
		t.Fatal("accepted flate stream longer than declared length")
	}
	// Unknown prefix byte on a prefixed connection.
	if _, err := decodePrefixed([]byte{42, 1, 2}); err == nil {
		t.Fatal("accepted unknown frame prefix")
	}
	// Empty prefixed frame.
	if _, err := decodePrefixed(nil); err == nil {
		t.Fatal("accepted empty prefixed frame")
	}
}
