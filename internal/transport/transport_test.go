package transport

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/simnet"
)

func collectInto(t *testing.T, n Transport, out chan<- string) {
	t.Helper()
	n.SetHandler(func(src string, payload []byte) {
		out <- src + ":" + string(payload)
	})
}

func TestInprocSendReceive(t *testing.T) {
	f := NewInproc()
	defer f.Close()
	a, err := f.Node("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := f.Node("b")
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan string, 1)
	collectInto(t, b, got)
	if err := a.Send("b", []byte("hi")); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-got:
		if m != "a:hi" {
			t.Fatalf("got %q", m)
		}
	case <-time.After(time.Second):
		t.Fatal("timeout")
	}
}

func TestInprocDuplicateName(t *testing.T) {
	f := NewInproc()
	defer f.Close()
	if _, err := f.Node("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Node("a"); err == nil {
		t.Fatal("expected duplicate error")
	}
}

func TestInprocUnknownDest(t *testing.T) {
	f := NewInproc()
	defer f.Close()
	a, _ := f.Node("a")
	if err := a.Send("ghost", nil); err == nil {
		t.Fatal("expected error")
	}
}

func TestInprocFIFO(t *testing.T) {
	f := NewInproc()
	defer f.Close()
	a, _ := f.Node("a")
	b, _ := f.Node("b")
	const count = 1000
	got := make(chan string, count)
	collectInto(t, b, got)
	for i := 0; i < count; i++ {
		if err := a.Send("b", []byte(fmt.Sprint(i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < count; i++ {
		select {
		case m := <-got:
			if want := fmt.Sprintf("a:%d", i); m != want {
				t.Fatalf("out of order: got %q want %q", m, want)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("timeout")
		}
	}
}

func TestInprocConcurrentSenders(t *testing.T) {
	f := NewInproc()
	defer f.Close()
	dst, _ := f.Node("dst")
	const senders = 8
	const per = 200
	var mu sync.Mutex
	counts := make(map[string]int)
	done := make(chan struct{})
	total := 0
	dst.SetHandler(func(src string, payload []byte) {
		mu.Lock()
		counts[src]++
		total++
		if total == senders*per {
			close(done)
		}
		mu.Unlock()
	})
	for i := 0; i < senders; i++ {
		n, err := f.Node(fmt.Sprintf("s%d", i))
		if err != nil {
			t.Fatal(err)
		}
		go func(n *InprocNode) {
			for j := 0; j < per; j++ {
				_ = n.Send("dst", []byte("x"))
			}
		}(n)
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatalf("timeout: got %d messages", total)
	}
	for src, c := range counts {
		if c != per {
			t.Errorf("sender %s delivered %d messages, want %d", src, c, per)
		}
	}
}

func TestSimNodeTransport(t *testing.T) {
	net := simnet.New(simnet.Config{TimeScale: 1})
	defer net.Close()
	na, err := net.AddNode("a")
	if err != nil {
		t.Fatal(err)
	}
	nb, err := net.AddNode("b")
	if err != nil {
		t.Fatal(err)
	}
	a := NewSimNode(na)
	b := NewSimNode(nb)
	if a.Local() != "a" || b.Local() != "b" {
		t.Fatal("bad names")
	}
	got := make(chan string, 1)
	b.SetHandler(func(src string, payload []byte) { got <- src + ":" + string(payload) })
	// SetHandler on sender too, to start its pump symmetric.
	a.SetHandler(func(src string, payload []byte) {})
	if err := a.Send("b", []byte("sim")); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-got:
		if m != "a:sim" {
			t.Fatalf("got %q", m)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("timeout")
	}
}

func TestInprocCloseIdempotent(t *testing.T) {
	f := NewInproc()
	a, _ := f.Node("a")
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	// Name can be reused after close.
	if _, err := f.Node("a"); err != nil {
		t.Fatal(err)
	}
	f.Close()
}
