// Package transport defines the byte-level communication layer the DPS
// runtime sits on. The paper's runtime performs communications over TCP
// sockets, bypassing the network layer for same-address-space transfers;
// this package generalizes that into a small interface with three
// implementations:
//
//   - Inproc: all nodes in one process, direct handoff (unit tests, local mode);
//   - Sim (package simtransport): virtual cluster over internal/simnet
//     (the experiment substrate);
//   - TCP (package tcptransport): real sockets via net, used by the kernel
//     runtime (cmd/dps-kernel).
//
// A Transport instance represents one node's attachment point. Handlers are
// invoked sequentially per source (FIFO per sender), mirroring TCP stream
// ordering assumed by the DPS controller.
package transport

import (
	"fmt"
	"sync"
)

// Handler consumes an incoming message from a peer node. Ownership of the
// payload transfers to the handler: the transport must not retain, reuse or
// redeliver the buffer after the call, so the handler is free to recycle it
// (the DPS runtime returns fully decoded buffers to a wire-buffer pool).
// All three implementations satisfy this: each delivered message carries a
// buffer no other component references afterwards.
type Handler func(src string, payload []byte)

// Colocated is optionally implemented by transports whose endpoints can
// share the sender's address space. When Colocated(dst) reports true, the
// engine may bypass the transport entirely for traffic to dst and hand
// pointers across directly (unless ForceSerialize is set) — the paper's
// same-address-space shortcut, extended from "same node name" to "same
// process". Only genuinely cost-free fabrics should implement it: the
// simulated network deliberately does not, as bypassing it would skip the
// modelled wire time and the fault injection that tests depend on.
type Colocated interface {
	Colocated(dst string) bool
}

// Transport is one node's attachment to the cluster fabric.
type Transport interface {
	// Local returns this node's cluster-unique name.
	Local() string
	// Send transmits payload to the named peer. It may buffer; delivery is
	// asynchronous but FIFO per (sender, destination) pair. Ownership of
	// the payload transfers to the transport: the sender must not modify
	// or reuse it after the call (on in-process fabrics the same bytes are
	// handed to the receiving Handler).
	Send(dst string, payload []byte) error
	// SetHandler installs the receive callback. Must be called before any
	// peer sends to this node.
	SetHandler(h Handler)
	// Close detaches the node.
	Close() error
}

// Inproc is an in-process fabric connecting any number of nodes with direct
// (cost-free) delivery. It preserves per-sender FIFO by running one delivery
// goroutine per node.
type Inproc struct {
	mu    sync.RWMutex
	nodes map[string]*InprocNode
}

// NewInproc creates an empty in-process fabric.
func NewInproc() *Inproc {
	return &Inproc{nodes: make(map[string]*InprocNode)}
}

// InprocNode is one endpoint of an Inproc fabric.
type InprocNode struct {
	fabric *Inproc
	name   string

	mu      sync.Mutex
	handler Handler
	queue   chan inMsg
	done    chan struct{}
	once    sync.Once
	wg      sync.WaitGroup
}

type inMsg struct {
	src     string
	payload []byte
}

// Node attaches a new named endpoint.
func (f *Inproc) Node(name string) (*InprocNode, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.nodes[name]; ok {
		return nil, fmt.Errorf("transport: duplicate inproc node %q", name)
	}
	n := &InprocNode{
		fabric: f,
		name:   name,
		queue:  make(chan inMsg, 4096),
		done:   make(chan struct{}),
	}
	f.nodes[name] = n
	n.wg.Add(1)
	go n.loop()
	return n, nil
}

// Close shuts down every node of the fabric.
func (f *Inproc) Close() {
	f.mu.Lock()
	nodes := make([]*InprocNode, 0, len(f.nodes))
	for _, n := range f.nodes {
		nodes = append(nodes, n)
	}
	f.mu.Unlock()
	for _, n := range nodes {
		_ = n.Close()
	}
}

func (n *InprocNode) loop() {
	defer n.wg.Done()
	for {
		select {
		case m := <-n.queue:
			n.mu.Lock()
			h := n.handler
			n.mu.Unlock()
			if h != nil {
				h(m.src, m.payload)
			}
		case <-n.done:
			for {
				select {
				case m := <-n.queue:
					n.mu.Lock()
					h := n.handler
					n.mu.Unlock()
					if h != nil {
						h(m.src, m.payload)
					}
				default:
					return
				}
			}
		}
	}
}

// Local implements Transport.
func (n *InprocNode) Local() string { return n.name }

// SetHandler implements Transport.
func (n *InprocNode) SetHandler(h Handler) {
	n.mu.Lock()
	n.handler = h
	n.mu.Unlock()
}

// Send implements Transport.
func (n *InprocNode) Send(dst string, payload []byte) error {
	n.fabric.mu.RLock()
	peer, ok := n.fabric.nodes[dst]
	n.fabric.mu.RUnlock()
	if !ok {
		return fmt.Errorf("transport: unknown inproc node %q", dst)
	}
	select {
	case peer.queue <- inMsg{src: n.name, payload: payload}:
		return nil
	case <-peer.done:
		return fmt.Errorf("transport: inproc node %q closed", dst)
	}
}

// Colocated implements the engine's same-process fast-path probe: every
// node of an Inproc fabric shares the sender's address space.
func (n *InprocNode) Colocated(dst string) bool {
	n.fabric.mu.RLock()
	_, ok := n.fabric.nodes[dst]
	n.fabric.mu.RUnlock()
	return ok
}

// Close implements Transport.
func (n *InprocNode) Close() error {
	n.once.Do(func() {
		close(n.done)
		n.wg.Wait()
		n.fabric.mu.Lock()
		delete(n.fabric.nodes, n.name)
		n.fabric.mu.Unlock()
	})
	return nil
}

var _ Transport = (*InprocNode)(nil)
