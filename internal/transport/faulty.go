package transport

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is the sentinel wrapped by every send error a Faulty wrapper
// injects; errors.Is distinguishes injected faults from real transport
// failures.
var ErrInjected = errors.New("transport: injected transient send error")

// Faulty wraps any Transport and injects faults on its send path: one-shot
// transient error bursts per destination, a seeded random failure rate, and
// random send delays. It is the fault hook for transports simnet cannot
// stand in for — chiefly tcptransport, whose retry/backoff and session-epoch
// machinery the chaos harness exercises through it. The receive path is
// untouched, so FIFO delivery of whatever was actually sent is preserved.
type Faulty struct {
	inner Transport

	mu       sync.Mutex
	rng      *rand.Rand
	failRate float64
	delayMax time.Duration
	failNext map[string]int
	injected atomic.Int64
}

// NewFaulty wraps a transport with a seeded fault injector. With no faults
// configured it is a transparent proxy.
func NewFaulty(inner Transport, seed int64) *Faulty {
	return &Faulty{
		inner:    inner,
		rng:      rand.New(rand.NewSource(seed)),
		failNext: make(map[string]int),
	}
}

// SetFailRate makes each Send fail with probability p (0..1), drawn from
// the seeded source.
func (f *Faulty) SetFailRate(p float64) {
	f.mu.Lock()
	f.failRate = p
	f.mu.Unlock()
}

// SetDelay adds up to max of random delay before each Send (the sender
// blocks, so per-destination FIFO is preserved). max <= 0 clears it.
func (f *Faulty) SetDelay(max time.Duration) {
	f.mu.Lock()
	f.delayMax = max
	f.mu.Unlock()
}

// FailNextSends makes the next count Sends to dst fail with an injected
// transient error.
func (f *Faulty) FailNextSends(dst string, count int) {
	f.mu.Lock()
	if count <= 0 {
		delete(f.failNext, dst)
	} else {
		f.failNext[dst] = count
	}
	f.mu.Unlock()
}

// Injected reports how many sends were failed by injection so far.
func (f *Faulty) Injected() int64 { return f.injected.Load() }

// Local implements Transport.
func (f *Faulty) Local() string { return f.inner.Local() }

// SetHandler implements Transport.
func (f *Faulty) SetHandler(h Handler) { f.inner.SetHandler(h) }

// Close implements Transport.
func (f *Faulty) Close() error { return f.inner.Close() }

// Send implements Transport, consulting the fault schedule first. On an
// injected failure the payload is not handed to the inner transport, so
// ownership stays with the caller exactly as on a real send error.
func (f *Faulty) Send(dst string, payload []byte) error {
	f.mu.Lock()
	inject := false
	if left, ok := f.failNext[dst]; ok {
		if left <= 1 {
			delete(f.failNext, dst)
		} else {
			f.failNext[dst] = left - 1
		}
		inject = true
	} else if f.failRate > 0 && f.rng.Float64() < f.failRate {
		inject = true
	}
	var delay time.Duration
	if !inject && f.delayMax > 0 {
		delay = time.Duration(f.rng.Int63n(int64(f.delayMax) + 1))
	}
	f.mu.Unlock()
	if inject {
		f.injected.Add(1)
		return fmt.Errorf("transport: send to %s: %w", dst, ErrInjected)
	}
	if delay > 0 {
		time.Sleep(delay)
	}
	return f.inner.Send(dst, payload)
}

var _ Transport = (*Faulty)(nil)
