package transport

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func faultyPair(t *testing.T, seed int64) (*Faulty, *InprocNode, *Inproc) {
	t.Helper()
	fab := NewInproc()
	a, err := fab.Node("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := fab.Node("b")
	if err != nil {
		t.Fatal(err)
	}
	return NewFaulty(a, seed), b, fab
}

// TestFaultyTransparent: with no faults configured the wrapper is a pure
// proxy — every send arrives, in order.
func TestFaultyTransparent(t *testing.T) {
	fa, b, fab := faultyPair(t, 1)
	defer fab.Close()
	var mu sync.Mutex
	var got []byte
	done := make(chan struct{})
	b.SetHandler(func(from string, payload []byte) {
		mu.Lock()
		got = append(got, payload[0])
		if len(got) == 50 {
			close(done)
		}
		mu.Unlock()
	})
	for i := 0; i < 50; i++ {
		if err := fa.Send("b", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("deliveries missing through a fault-free wrapper")
	}
	for i, v := range got {
		if int(v) != i {
			t.Fatalf("reordered at %d: %v", i, got)
		}
	}
	if fa.Injected() != 0 {
		t.Fatalf("injected %d errors with no faults configured", fa.Injected())
	}
}

// TestFaultyFailNextSends: exactly count sends fail per destination, the
// payload never reaches the inner transport, and the burst self-clears.
func TestFaultyFailNextSends(t *testing.T) {
	fa, b, fab := faultyPair(t, 1)
	defer fab.Close()
	delivered := make(chan byte, 16)
	b.SetHandler(func(from string, payload []byte) { delivered <- payload[0] })

	fa.FailNextSends("b", 2)
	for i := 0; i < 2; i++ {
		if err := fa.Send("b", []byte{byte(i)}); !errors.Is(err, ErrInjected) {
			t.Fatalf("send %d: got %v, want ErrInjected", i, err)
		}
	}
	if err := fa.Send("b", []byte{7}); err != nil {
		t.Fatalf("send after burst: %v", err)
	}
	select {
	case v := <-delivered:
		if v != 7 {
			t.Fatalf("a failed payload %d leaked to the inner transport", v)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("surviving send never delivered")
	}
	if fa.Injected() != 2 {
		t.Fatalf("Injected = %d, want 2", fa.Injected())
	}
	// Clearing a burst.
	fa.FailNextSends("b", 3)
	fa.FailNextSends("b", 0)
	if err := fa.Send("b", []byte{8}); err != nil {
		t.Fatalf("cleared burst still failing: %v", err)
	}
	<-delivered
}

// TestFaultyFailRateDeterministic: the same seed injects the same failure
// pattern, so a chaos run over TCP reproduces from its seed.
func TestFaultyFailRateDeterministic(t *testing.T) {
	pattern := func(seed int64) []bool {
		fa, b, fab := faultyPair(t, seed)
		defer fab.Close()
		b.SetHandler(func(string, []byte) {})
		fa.SetFailRate(0.5)
		out := make([]bool, 64)
		for i := range out {
			out[i] = fa.Send("b", []byte{0}) != nil
		}
		return out
	}
	a, b := pattern(9), pattern(9)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("send %d differs under the same seed", i)
		}
	}
	fails := 0
	for _, f := range a {
		if f {
			fails++
		}
	}
	if fails == 0 || fails == len(a) {
		t.Fatalf("fail rate 0.5 produced %d/%d failures", fails, len(a))
	}
}

// TestFaultyDelayPreservesOrder: random send delays slow the sender down
// but cannot reorder, because the sender blocks through the delay.
func TestFaultyDelayPreservesOrder(t *testing.T) {
	fa, b, fab := faultyPair(t, 3)
	defer fab.Close()
	var mu sync.Mutex
	var got []byte
	done := make(chan struct{})
	const n = 20
	b.SetHandler(func(from string, payload []byte) {
		mu.Lock()
		got = append(got, payload[0])
		if len(got) == n {
			close(done)
		}
		mu.Unlock()
	})
	fa.SetDelay(500 * time.Microsecond)
	for i := 0; i < n; i++ {
		if err := fa.Send("b", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("delayed sends never all arrived")
	}
	for i, v := range got {
		if int(v) != i {
			t.Fatalf("delay reordered deliveries at %d: %v", i, got)
		}
	}
}
