package simnet

import (
	"fmt"
	"testing"
	"time"
)

func faultCfg() Config {
	return Config{Latency: 100 * time.Microsecond, PerMessage: 10 * time.Microsecond}
}

// TestCrashDropsQueuedSuffix checks the power-failure semantics: a crashed
// node's queued NIC messages are lost, delivered messages form a prefix of
// the send order (never a middle gap), and subsequent sends to it fail.
func TestCrashDropsQueuedSuffix(t *testing.T) {
	net := New(faultCfg())
	defer net.Close()
	a, err := net.AddNode("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := net.AddNode("b")
	if err != nil {
		t.Fatal(err)
	}

	const n = 200
	for i := 0; i < n; i++ {
		if err := a.Send("b", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Crash the SENDER mid-train: some messages are on the wire, the rest
	// die in its egress queue.
	net.Crash("a")

	if err := a.Send("b", []byte{0xff}); err == nil {
		t.Fatal("send from a crashed node succeeded")
	}

	got := 0
	deadline := time.After(2 * time.Second)
	for {
		select {
		case m := <-b.Inbox():
			if int(m.Payload[0]) != got {
				t.Fatalf("message %d arrived at position %d: crash must drop a suffix, not reorder", m.Payload[0], got)
			}
			got++
		case <-deadline:
			t.Fatal("drain timed out")
		case <-time.After(50 * time.Millisecond):
			if got >= n {
				t.Fatalf("crash dropped nothing (%d delivered)", got)
			}
			t.Logf("crash delivered prefix of %d/%d messages", got, n)
			return
		}
	}
}

// TestCrashRejectsInboundSends checks the receiver side: sends addressed
// to a crashed node fail with an engine-visible error.
func TestCrashRejectsInboundSends(t *testing.T) {
	net := New(faultCfg())
	defer net.Close()
	a, _ := net.AddNode("a")
	if _, err := net.AddNode("b"); err != nil {
		t.Fatal(err)
	}
	if !net.Crash("b") {
		t.Fatal("crash failed")
	}
	if net.Crash("b") {
		t.Fatal("double crash reported success")
	}
	if err := a.Send("b", []byte{1}); err == nil {
		t.Fatal("send to a crashed node succeeded silently")
	}
}

// TestPartitionAndHeal cuts a link both ways and restores it.
func TestPartitionAndHeal(t *testing.T) {
	net := New(faultCfg())
	defer net.Close()
	a, _ := net.AddNode("a")
	b, _ := net.AddNode("b")
	c, _ := net.AddNode("c")

	net.Partition("a", "b")
	if !net.Partitioned("b", "a") {
		t.Fatal("partition not recorded symmetrically")
	}
	if err := a.Send("b", []byte{1}); err == nil {
		t.Fatal("send across a partition succeeded")
	}
	if err := b.Send("a", []byte{1}); err == nil {
		t.Fatal("reverse send across a partition succeeded")
	}
	// Third parties are unaffected.
	if err := a.Send("c", []byte{7}); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-c.Inbox():
		if m.Payload[0] != 7 {
			t.Fatalf("wrong payload %v", m.Payload)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("partition leaked onto an unrelated link")
	}

	net.Heal("a", "b")
	if net.Partitioned("a", "b") {
		t.Fatal("heal did not remove the partition")
	}
	if err := a.Send("b", []byte{2}); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-b.Inbox():
		if m.Payload[0] != 2 {
			t.Fatalf("wrong payload %v", m.Payload)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("healed link delivered nothing")
	}
}

// TestPartitionStallsInFlight: messages already past the NIC when the
// partition cuts are stalled — like TCP retransmitting into a dead route —
// and delivered, in order, once the partition heals. A healed partition
// must never leave a mid-stream gap: the fault-tolerance layer's prefix
// filters assume any loss is a suffix ending at a node's death.
func TestPartitionStallsInFlight(t *testing.T) {
	cfg := faultCfg()
	cfg.Latency = 20 * time.Millisecond // long flight time
	net := New(cfg)
	defer net.Close()
	a, _ := net.AddNode("a")
	b, _ := net.AddNode("b")
	for i := 0; i < 8; i++ {
		if err := a.Send("b", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	net.Partition("a", "b")
	select {
	case m := <-b.Inbox():
		t.Fatalf("in-flight message %v delivered across the partition", m.Payload)
	case <-time.After(100 * time.Millisecond):
	}
	net.Heal("a", "b")
	for i := 0; i < 8; i++ {
		select {
		case m := <-b.Inbox():
			if m.Payload[0] != byte(i) {
				t.Fatalf("message %d arrived as %v after the heal", i, m.Payload)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("message %d lost across a healed partition", i)
		}
	}
}

// TestPartitionCrashDropsInFlight: a sender that dies while its traffic is
// stalled on a partition takes that traffic with it — the stall releases
// by discarding, and the loss is a clean suffix.
func TestPartitionCrashDropsInFlight(t *testing.T) {
	cfg := faultCfg()
	cfg.Latency = 20 * time.Millisecond
	net := New(cfg)
	defer net.Close()
	a, _ := net.AddNode("a")
	b, _ := net.AddNode("b")
	for i := 0; i < 4; i++ {
		if err := a.Send("b", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	net.Partition("a", "b")
	net.Crash("a")
	net.Heal("a", "b")
	select {
	case m := <-b.Inbox():
		t.Fatalf("message %v from a crashed sender crossed the healed link", m.Payload)
	case <-time.After(150 * time.Millisecond):
	}
}

var _ = fmt.Sprint
