package simnet

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func fastCfg() Config {
	return Config{Bandwidth: 0, Latency: 0, PerMessage: 0, TimeScale: 1}
}

func TestAddNodeDuplicate(t *testing.T) {
	n := New(fastCfg())
	defer n.Close()
	if _, err := n.AddNode("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.AddNode("a"); err == nil {
		t.Fatal("expected duplicate node error")
	}
}

func TestSendDeliver(t *testing.T) {
	n := New(fastCfg())
	defer n.Close()
	a, _ := n.AddNode("a")
	b, _ := n.AddNode("b")
	if err := a.Send("b", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-b.Inbox():
		if string(m.Payload) != "hello" || m.From != "a" || m.To != "b" {
			t.Fatalf("bad message %+v", m)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("timeout waiting for delivery")
	}
	if got := a.Stats().MsgsSent.Load(); got != 1 {
		t.Errorf("MsgsSent = %d", got)
	}
	if got := b.Stats().BytesReceived.Load(); got != 5 {
		t.Errorf("BytesReceived = %d", got)
	}
}

func TestSendUnknownDestination(t *testing.T) {
	n := New(fastCfg())
	defer n.Close()
	a, _ := n.AddNode("a")
	if err := a.Send("nope", []byte("x")); err == nil {
		t.Fatal("expected unknown destination error")
	}
}

func TestFIFOPerSenderDestination(t *testing.T) {
	cfg := fastCfg()
	cfg.Latency = 200 * time.Microsecond // async latency path must not reorder
	n := New(cfg)
	defer n.Close()
	a, _ := n.AddNode("a")
	b, _ := n.AddNode("b")
	const count = 200
	for i := 0; i < count; i++ {
		if err := a.Send("b", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < count; i++ {
		select {
		case m := <-b.Inbox():
			if m.Payload[0] != byte(i) {
				t.Fatalf("message %d arrived out of order (got %d)", i, m.Payload[0])
			}
		case <-time.After(5 * time.Second):
			t.Fatal("timeout")
		}
	}
}

func TestBandwidthModel(t *testing.T) {
	// 1 MB at 100 MB/s should take about 10 ms of NIC occupancy.
	cfg := Config{Bandwidth: 100e6, TimeScale: 1}
	n := New(cfg)
	defer n.Close()
	a, _ := n.AddNode("a")
	b, _ := n.AddNode("b")
	payload := make([]byte, 1<<20)
	start := time.Now()
	const msgs = 5
	for i := 0; i < msgs; i++ {
		if err := a.Send("b", payload); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < msgs; i++ {
		select {
		case <-b.Inbox():
		case <-time.After(10 * time.Second):
			t.Fatal("timeout")
		}
	}
	elapsed := time.Since(start)
	want := time.Duration(float64(len(payload)*msgs) / cfg.Bandwidth * float64(time.Second))
	if elapsed < want*8/10 {
		t.Fatalf("transfers too fast: %v < %v (bandwidth model not applied)", elapsed, want)
	}
	if elapsed > want*5 {
		t.Fatalf("transfers too slow: %v >> %v", elapsed, want)
	}
}

func TestTimeScaleSpeedsUp(t *testing.T) {
	payload := make([]byte, 1<<20)
	measure := func(scale float64) time.Duration {
		cfg := Config{Bandwidth: 50e6, TimeScale: scale}
		n := New(cfg)
		defer n.Close()
		a, _ := n.AddNode("a")
		b, _ := n.AddNode("b")
		start := time.Now()
		for i := 0; i < 3; i++ {
			if err := a.Send("b", payload); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 3; i++ {
			<-b.Inbox()
		}
		return time.Since(start)
	}
	full := measure(1.0)
	tenth := measure(0.1)
	if tenth >= full {
		t.Fatalf("TimeScale=0.1 (%v) not faster than 1.0 (%v)", tenth, full)
	}
}

func TestConcurrentPairsDoNotContend(t *testing.T) {
	// A switched fabric: a->b and c->d transfer concurrently; total time for
	// both should be close to the time for one, not double.
	cfg := Config{Bandwidth: 20e6, TimeScale: 1}
	payload := make([]byte, 2<<20) // 100 ms each at 20 MB/s

	n := New(cfg)
	defer n.Close()
	a, _ := n.AddNode("a")
	b, _ := n.AddNode("b")
	c, _ := n.AddNode("c")
	d, _ := n.AddNode("d")

	start := time.Now()
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); _ = a.Send("b", payload); <-b.Inbox() }()
	go func() { defer wg.Done(); _ = c.Send("d", payload); <-d.Inbox() }()
	wg.Wait()
	elapsed := time.Since(start)
	one := time.Duration(float64(len(payload)) / cfg.Bandwidth * float64(time.Second))
	if elapsed > one*17/10 {
		t.Fatalf("independent pairs appear serialized: %v vs single-transfer %v", elapsed, one)
	}
}

func TestEgressSerializesSameSender(t *testing.T) {
	// Two messages from the same node must be serialized on its NIC.
	cfg := Config{Bandwidth: 20e6, TimeScale: 1}
	payload := make([]byte, 2<<20)
	n := New(cfg)
	defer n.Close()
	a, _ := n.AddNode("a")
	b, _ := n.AddNode("b")
	c, _ := n.AddNode("c")
	start := time.Now()
	_ = a.Send("b", payload)
	_ = a.Send("c", payload)
	<-b.Inbox()
	<-c.Inbox()
	elapsed := time.Since(start)
	one := time.Duration(float64(len(payload)) / cfg.Bandwidth * float64(time.Second))
	if elapsed < one*18/10 {
		t.Fatalf("same-sender messages not serialized: %v < 2x %v", elapsed, one)
	}
}

func TestCloseIdempotentAndRejectsSends(t *testing.T) {
	n := New(fastCfg())
	a, _ := n.AddNode("a")
	_, _ = n.AddNode("b")
	n.Close()
	n.Close()
	if err := a.Send("b", []byte("x")); err == nil {
		t.Fatal("expected send on closed node to fail")
	}
	if _, err := n.AddNode("c"); err == nil {
		t.Fatal("expected AddNode on closed network to fail")
	}
}

func TestManyNodesBroadcast(t *testing.T) {
	n := New(fastCfg())
	defer n.Close()
	const nodes = 8
	all := make([]*Node, nodes)
	for i := range all {
		nd, err := n.AddNode(fmt.Sprintf("n%d", i))
		if err != nil {
			t.Fatal(err)
		}
		all[i] = nd
	}
	if got := len(n.Nodes()); got != nodes {
		t.Fatalf("Nodes() = %d", got)
	}
	// Every node sends to every other node.
	for _, src := range all {
		for _, dst := range all {
			if src == dst {
				continue
			}
			if err := src.Send(dst.Name(), []byte(src.Name())); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, dst := range all {
		for i := 0; i < nodes-1; i++ {
			select {
			case <-dst.Inbox():
			case <-time.After(5 * time.Second):
				t.Fatalf("node %s timed out", dst.Name())
			}
		}
	}
}

func TestGigabitPresetSane(t *testing.T) {
	cfg := GigabitEthernet()
	if cfg.Bandwidth <= 0 || cfg.Latency <= 0 || cfg.PerMessage <= 0 {
		t.Fatalf("preset has zero fields: %+v", cfg)
	}
	if fe := FastEthernet(); fe.Bandwidth >= cfg.Bandwidth {
		t.Fatal("FastEthernet should be slower than GigabitEthernet")
	}
}
