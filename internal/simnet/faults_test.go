package simnet

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// TestJitterPreservesFIFO: jitter delays deliveries but never reorders
// them — per-channel FIFO is a contract the FT layer's duplicate filters
// depend on.
func TestJitterPreservesFIFO(t *testing.T) {
	net := New(faultCfg())
	defer net.Close()
	a, _ := net.AddNode("a")
	b, _ := net.AddNode("b")
	net.SeedFaults(42)
	net.SetJitter("a", "b", 500*time.Microsecond)

	const n = 200
	for i := 0; i < n; i++ {
		if err := a.Send("b", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		select {
		case m := <-b.Inbox():
			if int(m.Payload[0]) != i {
				t.Fatalf("message %d arrived at position %d: jitter reordered the channel", m.Payload[0], i)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("only %d/%d messages arrived under jitter", i, n)
		}
	}
}

// TestJitterDeterministicFromSeed: the same seed draws the same jitter
// sequence, so a chaos schedule reproduces its delivery timings exactly.
func TestJitterDeterministicFromSeed(t *testing.T) {
	draw := func(seed int64) []time.Duration {
		net := New(faultCfg())
		defer net.Close()
		net.SeedFaults(seed)
		net.SetJitter("a", "b", time.Millisecond)
		out := make([]time.Duration, 32)
		for i := range out {
			out[i] = net.jitterFor("a", "b")
		}
		return out
	}
	a, b := draw(7), draw(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs under the same seed: %v vs %v", i, a[i], b[i])
		}
	}
	c := draw(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds drew identical jitter sequences")
	}
	// Unrelated directions draw zero.
	net := New(faultCfg())
	defer net.Close()
	net.SetJitter("a", "b", time.Millisecond)
	if d := net.jitterFor("b", "a"); d != 0 {
		t.Fatalf("reverse direction drew jitter %v", d)
	}
}

// TestFailNextSends: exactly count sends fail with the transient
// sentinel, then the link self-heals.
func TestFailNextSends(t *testing.T) {
	net := New(faultCfg())
	defer net.Close()
	a, _ := net.AddNode("a")
	b, _ := net.AddNode("b")
	net.FailNextSends("a", "b", 2)

	for i := 0; i < 2; i++ {
		err := a.Send("b", []byte{byte(i)})
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("send %d: got %v, want ErrInjected", i, err)
		}
	}
	if err := a.Send("b", []byte{9}); err != nil {
		t.Fatalf("send after the burst cleared: %v", err)
	}
	select {
	case m := <-b.Inbox():
		if m.Payload[0] != 9 {
			t.Fatalf("an injected-failed payload %v was transmitted anyway", m.Payload)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("surviving send never delivered")
	}
	if got := net.InjectedSendErrors(); got != 2 {
		t.Fatalf("InjectedSendErrors = %d, want 2", got)
	}
	// The reverse direction is untouched.
	net.FailNextSends("a", "b", 1)
	if err := b.Send("a", []byte{1}); err != nil {
		t.Fatalf("reverse direction hit the fault: %v", err)
	}
	// count <= 0 clears a pending burst.
	net.FailNextSends("a", "b", 0)
	if err := a.Send("b", []byte{2}); err != nil {
		t.Fatalf("cleared burst still failing: %v", err)
	}
}

// TestHealNeverPartitionedNoOp: healing a link that was never cut (or
// involving unknown nodes) is a harmless no-op — the chaos injector may
// heal after its partition target already crashed.
func TestHealNeverPartitionedNoOp(t *testing.T) {
	net := New(faultCfg())
	defer net.Close()
	a, _ := net.AddNode("a")
	b, _ := net.AddNode("b")
	net.Heal("a", "b")
	net.Heal("a", "ghost")
	net.Heal("ghost", "phantom")
	if err := a.Send("b", []byte{1}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-b.Inbox():
	case <-time.After(2 * time.Second):
		t.Fatal("delivery broken after no-op heals")
	}
	// Heal is idempotent after a real partition too.
	net.Partition("a", "b")
	net.Heal("a", "b")
	net.Heal("a", "b")
	if net.Partitioned("a", "b") {
		t.Fatal("double heal left the partition in place")
	}
}

// TestRemoveNodeCrashSendRace hammers a victim node with concurrent sends
// while other goroutines race RemoveNode and Crash against it: every send
// must return (success or error) without panics, lost goroutines or a
// wedged network — the engine calls Send from many runtimes exactly like
// this when a node dies under load.
func TestRemoveNodeCrashSendRace(t *testing.T) {
	for round := 0; round < 20; round++ {
		net := New(faultCfg())
		a, _ := net.AddNode("a")
		victim := "v"
		if _, err := net.AddNode(victim); err != nil {
			t.Fatal(err)
		}

		var wg sync.WaitGroup
		start := make(chan struct{})
		for s := 0; s < 4; s++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				for i := 0; i < 50; i++ {
					_ = a.Send(victim, []byte{byte(i)}) // error after death is the contract
				}
			}()
		}
		wg.Add(2)
		go func() {
			defer wg.Done()
			<-start
			net.Crash(victim)
		}()
		go func() {
			defer wg.Done()
			<-start
			net.RemoveNode(victim)
		}()
		close(start)

		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatal("send/crash/remove race wedged the network")
		}
		// The network must still work for survivors.
		if _, err := net.AddNode("w"); err != nil {
			t.Fatal(err)
		}
		if err := a.Send("w", []byte{1}); err != nil {
			t.Fatalf("round %d: network broken after the race: %v", round, err)
		}
		net.Close()
	}
}
