package simnet

// Fault injection beyond crashes and partitions: seeded, directional
// delivery jitter and transient per-send errors. Together with Crash and
// Partition/Heal these are the primitive faults the chaos harness
// (internal/chaos) composes into scripted and randomized schedules. All
// randomness flows from one seed (SeedFaults), so a failing schedule
// reproduces exactly from its printed seed.

import (
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// ErrInjected is the sentinel wrapped by every transient send error
// injected with FailNextSends; errors.Is distinguishes injected faults
// from modelled ones (crash, partition, closed node).
var ErrInjected = errors.New("simnet: injected transient send error")

// dirKey is a directed node pair (faults are per link direction, unlike
// partitions, which cut both ways).
type dirKey struct{ from, to string }

// SeedFaults installs the deterministic random source driving jitter
// draws. Call it before SetJitter for reproducible delivery timings; an
// unseeded network uses seed 1.
func (n *Network) SeedFaults(seed int64) {
	n.faultMu.Lock()
	n.rng = rand.New(rand.NewSource(seed))
	n.faultMu.Unlock()
}

// SetJitter adds up to max of extra, randomly drawn delivery delay to
// every message from one node to another (one direction). Per-channel
// FIFO delivery order is preserved — jitter delays deliveries, it never
// reorders them. max <= 0 clears the jitter on the link.
func (n *Network) SetJitter(from, to string, max time.Duration) {
	n.faultMu.Lock()
	if n.jitter == nil {
		n.jitter = make(map[dirKey]time.Duration)
	}
	if max <= 0 {
		delete(n.jitter, dirKey{from, to})
	} else {
		n.jitter[dirKey{from, to}] = max
	}
	n.faultsOn.Store(len(n.jitter) > 0 || len(n.failNext) > 0)
	n.faultMu.Unlock()
}

// FailNextSends makes the next count Sends from one node to another (one
// direction) fail with a transient error (ErrInjected) instead of being
// transmitted. It models the refused dials and reset connections of a
// restarting peer: the destination is alive, the fault clears by itself,
// and a sender that retries gets through.
func (n *Network) FailNextSends(from, to string, count int) {
	n.faultMu.Lock()
	if n.failNext == nil {
		n.failNext = make(map[dirKey]int)
	}
	if count <= 0 {
		delete(n.failNext, dirKey{from, to})
	} else {
		n.failNext[dirKey{from, to}] = count
	}
	n.faultsOn.Store(len(n.jitter) > 0 || len(n.failNext) > 0)
	n.faultMu.Unlock()
}

// InjectedSendErrors reports how many sends failed with an injected
// transient error so far.
func (n *Network) InjectedSendErrors() int64 { return n.injected.Load() }

// injectSendFault consumes one pending injected failure on the from→to
// link, if any. Guarded by the faultsOn flag so fault-free networks (every
// benchmark) pay one atomic load and nothing else.
func (n *Network) injectSendFault(from, to string) error {
	if !n.faultsOn.Load() {
		return nil
	}
	n.faultMu.Lock()
	left, ok := n.failNext[dirKey{from, to}]
	if ok {
		if left <= 1 {
			delete(n.failNext, dirKey{from, to})
			n.faultsOn.Store(len(n.jitter) > 0 || len(n.failNext) > 0)
		} else {
			n.failNext[dirKey{from, to}] = left - 1
		}
	}
	n.faultMu.Unlock()
	if !ok {
		return nil
	}
	n.injected.Add(1)
	return fmt.Errorf("simnet: send %s -> %s: %w", from, to, ErrInjected)
}

// jitterFor draws this message's extra delivery delay on the from→to link.
func (n *Network) jitterFor(from, to string) time.Duration {
	if !n.faultsOn.Load() {
		return 0
	}
	n.faultMu.Lock()
	defer n.faultMu.Unlock()
	max, ok := n.jitter[dirKey{from, to}]
	if !ok {
		return 0
	}
	if n.rng == nil {
		n.rng = rand.New(rand.NewSource(1))
	}
	return time.Duration(n.rng.Int63n(int64(max) + 1))
}
