// Package simnet models the paper's experimental testbed: a cluster of PCs
// interconnected by a switched network (the authors used 8 bi-Pentium III
// nodes on Gigabit Ethernet). Since that hardware is unavailable, simnet
// provides the closest synthetic equivalent: virtual nodes whose outgoing
// messages pay a NIC cost (size/bandwidth + per-message overhead) on a
// serialized egress queue, plus a propagation latency before delivery.
//
// The model is intentionally simple but captures the properties the paper's
// experiments depend on:
//
//   - transfers take wall-clock time proportional to their size, so
//     computation running concurrently genuinely overlaps communication;
//   - a node's NIC is a serialized resource, so many concurrent sends
//     contend (which makes fine-grained splits communication-bound);
//   - a switched fabric: distinct node pairs transfer concurrently.
//
// Delivery between nodes preserves per-sender FIFO order, like TCP
// connections in the original runtime.
package simnet

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Config describes the modelled interconnect.
type Config struct {
	// Bandwidth is the egress NIC bandwidth in bytes/second.
	// Zero means infinite (no size-proportional cost).
	Bandwidth float64
	// Latency is the propagation delay between send completion and delivery.
	Latency time.Duration
	// PerMessage is a fixed cost charged on the sender's egress queue for
	// every message (protocol and interrupt overhead).
	PerMessage time.Duration
	// TimeScale multiplies all modelled delays. 1.0 simulates in real time;
	// 0.1 runs experiments 10x faster while preserving comm/comp ratios if
	// computation is scaled equally. Zero defaults to 1.0.
	TimeScale float64
}

// GigabitEthernet mirrors the paper's testbed fabric: Gigabit Ethernet
// through a switch, on which the authors measured roughly 35 MB/s of
// application-level throughput for large messages (Figure 6). We model the
// NIC at a higher raw rate and charge per-message overhead separately.
func GigabitEthernet() Config {
	return Config{
		Bandwidth:  100e6, // 100 MB/s raw link rate
		Latency:    50 * time.Microsecond,
		PerMessage: 30 * time.Microsecond,
		TimeScale:  1.0,
	}
}

// FastEthernet models the slower commodity fabric mentioned in the paper's
// introduction (useful to widen the comm/comp ratio sweep).
func FastEthernet() Config {
	return Config{
		Bandwidth:  11e6,
		Latency:    100 * time.Microsecond,
		PerMessage: 50 * time.Microsecond,
		TimeScale:  1.0,
	}
}

// Message is a payload in flight between two virtual nodes.
type Message struct {
	From    string
	To      string
	Payload []byte
}

// NodeStats accumulates per-node traffic counters.
type NodeStats struct {
	MsgsSent      atomic.Int64
	BytesSent     atomic.Int64
	MsgsReceived  atomic.Int64
	BytesReceived atomic.Int64
}

// Network is a virtual cluster fabric.
type Network struct {
	cfg Config

	mu     sync.RWMutex
	nodes  map[string]*Node
	parts  map[partKey]bool
	closed bool

	// Fault injection (faults.go): seeded delivery jitter and transient
	// per-send errors, both directional. faultMu is separate from mu so the
	// hot send path only ever takes it when faults are configured.
	faultMu  sync.Mutex
	rng      *rand.Rand
	jitter   map[dirKey]time.Duration
	failNext map[dirKey]int
	faultsOn atomic.Bool
	injected atomic.Int64
}

// partKey is an unordered node pair with a partition between them.
type partKey struct{ a, b string }

func makePartKey(a, b string) partKey {
	if a > b {
		a, b = b, a
	}
	return partKey{a: a, b: b}
}

// Node is one virtual cluster machine attached to a Network.
type Node struct {
	name string
	net  *Network

	egress  chan outMsg
	inbox   chan Message
	done    chan struct{}
	stats   NodeStats
	closing atomic.Bool
	crashed atomic.Bool
	wg      sync.WaitGroup
}

type outMsg struct {
	to       string
	payload  []byte
	enqueued time.Time
}

// New creates a network with the given interconnect model.
func New(cfg Config) *Network {
	if cfg.TimeScale == 0 {
		cfg.TimeScale = 1.0
	}
	return &Network{cfg: cfg, nodes: make(map[string]*Node)}
}

// Config returns the interconnect model.
func (n *Network) Config() Config { return n.cfg }

// AddNode attaches a new virtual node. Node names must be unique.
func (n *Network) AddNode(name string) (*Node, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, fmt.Errorf("simnet: network closed")
	}
	if _, ok := n.nodes[name]; ok {
		return nil, fmt.Errorf("simnet: duplicate node %q", name)
	}
	nd := &Node{
		name:   name,
		net:    n,
		egress: make(chan outMsg, 1024),
		inbox:  make(chan Message, 1024),
		done:   make(chan struct{}),
	}
	n.nodes[name] = nd
	nd.wg.Add(1)
	go nd.egressLoop()
	return nd, nil
}

// Node returns a previously added node.
func (n *Network) Node(name string) (*Node, bool) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	nd, ok := n.nodes[name]
	return nd, ok
}

// Nodes lists the attached node names.
func (n *Network) Nodes() []string {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([]string, 0, len(n.nodes))
	for name := range n.nodes {
		out = append(out, name)
	}
	return out
}

// RemoveNode detaches a node abruptly: pending and future messages to and
// from it are dropped, and subsequent Sends addressed to it fail. This is
// the failure-injection hook for testing the runtime's behaviour when a
// cluster machine disappears (the paper's future-work discussion of
// graceful degradation on node failures).
func (n *Network) RemoveNode(name string) bool {
	n.mu.Lock()
	nd, ok := n.nodes[name]
	if ok {
		delete(n.nodes, name)
	}
	n.mu.Unlock()
	if !ok {
		return false
	}
	nd.close()
	return true
}

// Crash kills a node the way a power failure would: messages still queued
// on its NIC are discarded (a message that already paid its transmit cost
// is on the wire and still arrives, so per-channel FIFO delivery loses a
// suffix, never a middle), inbound delivery stops, and subsequent Sends
// addressed to the node fail. The difference from RemoveNode — which
// drains the egress queue gracefully — is the point: Crash is the fault
// injector for the engine's failure-recovery protocol.
func (n *Network) Crash(name string) bool {
	n.mu.Lock()
	nd, ok := n.nodes[name]
	if ok {
		delete(n.nodes, name)
	}
	n.mu.Unlock()
	if !ok {
		return false
	}
	nd.crashed.Store(true)
	nd.close()
	return true
}

// Partition cuts the link between two nodes, in both directions: Sends
// between them fail and in-flight messages are dropped. Heal restores the
// link. Partitions model the asymmetric failures a crash cannot: both
// sides stay alive but cannot reach each other.
func (n *Network) Partition(a, b string) {
	n.mu.Lock()
	if n.parts == nil {
		n.parts = make(map[partKey]bool)
	}
	n.parts[makePartKey(a, b)] = true
	n.mu.Unlock()
}

// Heal removes the partition between two nodes.
func (n *Network) Heal(a, b string) {
	n.mu.Lock()
	delete(n.parts, makePartKey(a, b))
	n.mu.Unlock()
}

// Partitioned reports whether the link between two nodes is cut.
func (n *Network) Partitioned(a, b string) bool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.parts[makePartKey(a, b)]
}

// Close shuts down all nodes and waits for in-flight deliveries to settle.
func (n *Network) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	nodes := make([]*Node, 0, len(n.nodes))
	for _, nd := range n.nodes {
		nodes = append(nodes, nd)
	}
	n.mu.Unlock()
	for _, nd := range nodes {
		nd.close()
	}
}

// Name returns the node's cluster-unique name.
func (nd *Node) Name() string { return nd.name }

// Stats exposes the node's traffic counters.
func (nd *Node) Stats() *NodeStats { return &nd.stats }

// Inbox returns the channel on which delivered messages arrive. The
// channel is never closed (closing could race with in-flight deliveries);
// consumers that must observe shutdown should select on Done.
func (nd *Node) Inbox() <-chan Message { return nd.inbox }

// Done is closed when the node shuts down.
func (nd *Node) Done() <-chan struct{} { return nd.done }

// Send queues payload for transmission to the named destination node. The
// call returns once the message is accepted by the local egress queue; the
// modelled NIC cost and latency are paid asynchronously before delivery.
// Payload ownership transfers to the network.
func (nd *Node) Send(to string, payload []byte) error {
	if nd.closing.Load() {
		return fmt.Errorf("simnet: node %q closed", nd.name)
	}
	nd.net.mu.RLock()
	_, ok := nd.net.nodes[to]
	parted := nd.net.parts[makePartKey(nd.name, to)]
	nd.net.mu.RUnlock()
	if !ok {
		return fmt.Errorf("simnet: unknown destination %q", to)
	}
	if parted {
		return fmt.Errorf("simnet: %q and %q are partitioned", nd.name, to)
	}
	if err := nd.net.injectSendFault(nd.name, to); err != nil {
		return err
	}
	select {
	case nd.egress <- outMsg{to: to, payload: payload, enqueued: time.Now()}:
		return nil
	case <-nd.done:
		return fmt.Errorf("simnet: node %q closed", nd.name)
	}
}

// SendSync is like Send but additionally blocks the caller for the modelled
// NIC occupancy of this message, emulating a blocking socket write whose
// buffer is full. The raw-socket baseline of Figure 6 uses it.
func (nd *Node) SendSync(to string, payload []byte) error {
	cost := nd.nicCost(len(payload))
	if err := nd.Send(to, payload); err != nil {
		return err
	}
	sleep(cost)
	return nil
}

func (nd *Node) nicCost(size int) time.Duration {
	cfg := nd.net.cfg
	var d time.Duration
	if cfg.Bandwidth > 0 {
		d = time.Duration(float64(size) / cfg.Bandwidth * float64(time.Second))
	}
	d += cfg.PerMessage
	return time.Duration(float64(d) * cfg.TimeScale)
}

func (nd *Node) latency() time.Duration {
	return time.Duration(float64(nd.net.cfg.Latency) * nd.net.cfg.TimeScale)
}

// egressLoop serializes the NIC: messages pay their occupancy cost one after
// another, then are handed to an asynchronous delivery goroutine that adds
// propagation latency. Per-destination order is preserved by chaining
// deliveries through a per-destination gate.
//
// The NIC is modelled with absolute deadlines (nicFree advances by the
// occupancy cost of each message) so that OS timer overshoot on one sleep
// does not accumulate across a long message train: each sleep targets the
// modelled finish time, and a late wake-up is absorbed by the next
// message's deadline.
func (nd *Node) egressLoop() {
	defer nd.wg.Done()
	// gates[dst] is closed when the previous message to dst has been
	// delivered, keeping per-sender-per-destination FIFO despite async
	// latency goroutines.
	gates := make(map[string]chan struct{})
	var nicFree time.Time
	for {
		select {
		case m := <-nd.egress:
			nicFree = nd.transmit(m, gates, nicFree)
		case <-nd.done:
			if nd.crashed.Load() {
				// Power failure: whatever is still queued on the NIC is lost.
				return
			}
			// Graceful detach: drain whatever was already queued, then exit.
			for {
				select {
				case m := <-nd.egress:
					nicFree = nd.transmit(m, gates, nicFree)
				default:
					return
				}
			}
		}
	}
}

func (nd *Node) transmit(m outMsg, gates map[string]chan struct{}, nicFree time.Time) time.Time {
	// The transmission cannot start before the message was handed to the
	// NIC nor before the NIC finished the previous message; crucially the
	// lower bound is the enqueue time, not "now", so a late timer wake-up
	// does not re-anchor the model to real time and accumulate.
	start := nicFree
	if m.enqueued.After(start) {
		start = m.enqueued
	}
	done := start.Add(nd.nicCost(len(m.payload)))
	sleepUntil(done)
	nd.stats.MsgsSent.Add(1)
	nd.stats.BytesSent.Add(int64(len(m.payload)))

	prev := gates[m.to]
	gate := make(chan struct{})
	gates[m.to] = gate
	// Injected jitter rides the delivery deadline; the per-destination gate
	// chain still serializes actual deliveries, so FIFO survives a later
	// message drawing a smaller jitter than an earlier one.
	deliverAt := done.Add(nd.latency() + nd.net.jitterFor(nd.name, m.to))
	nd.wg.Add(1)
	go func() {
		defer nd.wg.Done()
		defer close(gate)
		sleepUntil(deliverAt)
		if prev != nil {
			<-prev
		}
		// The per-destination gate chain serializes these checks with the
		// delivery order, so a crash drops a suffix of each channel's
		// stream, never a message in the middle. Partitions stall inside
		// deliver instead of dropping, for the same reason.
		if nd.crashed.Load() {
			return
		}
		nd.net.deliver(Message{From: nd.name, To: m.to, Payload: m.payload})
	}()
	return done
}

// sleepUntil sleeps until the modelled absolute time t.
func sleepUntil(t time.Time) {
	if d := time.Until(t); d > 0 {
		time.Sleep(d)
	}
}

func (n *Network) deliver(m Message) {
	var dst *Node
	for {
		n.mu.RLock()
		d, ok := n.nodes[m.To]
		src, srcOk := n.nodes[m.From]
		parted := n.parts[makePartKey(m.From, m.To)]
		n.mu.RUnlock()
		if !ok {
			return
		}
		if !parted {
			dst = d
			break
		}
		// A partition stalls in-flight traffic the way a real cut stalls
		// TCP: the segment is retransmitted until the route heals, or the
		// connection dies with its endpoint. Delivering after the heal —
		// never dropping — keeps each channel's loss a pure suffix (the
		// contract the fault-tolerance layer's prefix filters rely on);
		// a partition that outlives the failure detector's patience ends
		// in a crash or removal, which releases the stall by discarding.
		if !srcOk || src.crashed.Load() || src.closing.Load() {
			return
		}
		sleep(200 * time.Microsecond)
	}
	if dst.closing.Load() {
		return
	}
	dst.stats.MsgsReceived.Add(1)
	dst.stats.BytesReceived.Add(int64(len(m.Payload)))
	select {
	case dst.inbox <- m:
	case <-dst.done:
	}
}

func (nd *Node) close() {
	if nd.closing.Swap(true) {
		return
	}
	close(nd.done)
	nd.wg.Wait()
	// nd.inbox is deliberately left open: a delivery goroutine of another
	// node may be completing a send, and closing would race with it.
	// Receivers observe shutdown through nd.done.
}

// sleep centralizes modelled waiting so very small durations (below the OS
// timer resolution) are still charged: they accumulate via busy-spin-free
// coarse rounding inside time.Sleep, which is adequate at the scales used by
// the experiment harness (≥ microseconds).
func sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	time.Sleep(d)
}
