// Package parlin implements the paper's linear-algebra applications on DPS
// flow graphs: block matrix multiplication (the Table 1 overlap workload)
// and block LU factorization with partial pivoting (§5, Figures 11-15),
// in both the fully pipelined (stream-operation) form and the
// merge-then-split form used as the non-pipelined comparison in Figure 15.
package parlin

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/matrix"
	"repro/internal/serial"
)

// MatmulOrder starts a block matrix multiplication: multiply the NxN
// matrices A and B split into SxS blocks. Compute=false turns the worker
// kernel off, which the Table 1 harness uses to measure pure communication
// time.
type MatmulOrder struct {
	N, S    int
	Compute bool
	A, B    []float64
}

// MulJob carries the two operand blocks of one block product A[i,k]*B[k,j].
type MulJob struct {
	I, J, K  int
	BlkRows  int // rows of the A block (and of the result)
	BlkInner int // cols of A block == rows of B block
	BlkCols  int // cols of the B block (and of the result)
	Compute  bool
	A, B     []float64
}

// MulPart is one partial product destined for C[i,j].
type MulPart struct {
	I, J       int
	Rows, Cols int
	Data       []float64
}

// MatResult is the assembled product matrix.
type MatResult struct {
	N    int
	Data []float64
}

var (
	_ = serial.MustRegister[MatmulOrder]()
	_ = serial.MustRegister[MulJob]()
	_ = serial.MustRegister[MulPart]()
	_ = serial.MustRegister[MatResult]()
)

// Matmul is a DPS block matrix multiplication application.
type Matmul struct {
	app     *core.App
	master  *core.ThreadCollection
	workers *core.ThreadCollection
	graph   *core.Flowgraph
}

// MatmulOptions configures the application.
type MatmulOptions struct {
	// Name prefixes collections and the graph.
	Name string
	// Workers is the number of compute threads (default: one per node).
	Workers int
	// Route overrides the worker routing function (default: block affinity
	// by C-block index).
	Route *core.Route
}

// NewMatmul builds the split-multiply-merge graph of the Table 1 workload:
// the split posts one job per (i, j, k) block triple carrying both operand
// blocks, workers multiply, and the merge accumulates partial products
// into C. Pipelining overlaps the job/result transfers with the block
// multiplications.
func NewMatmul(app *core.App, opt MatmulOptions) (*Matmul, error) {
	if opt.Name == "" {
		opt.Name = "matmul"
	}
	if opt.Workers <= 0 {
		opt.Workers = len(app.NodeNames())
	}
	m := &Matmul{app: app}
	var err error
	if m.master, err = core.NewCollection[struct{}](app, opt.Name+"-master"); err != nil {
		return nil, err
	}
	if err = m.master.MapNodes(app.MasterNode()); err != nil {
		return nil, err
	}
	if m.workers, err = core.NewCollection[struct{}](app, opt.Name+"-workers"); err != nil {
		return nil, err
	}
	if err = m.workers.MapRoundRobin(opt.Workers); err != nil {
		return nil, err
	}

	split := core.Split[*MatmulOrder, *MulJob](opt.Name+"-split",
		func(c *core.Ctx, in *MatmulOrder, post func(*MulJob)) {
			if in.N%in.S != 0 {
				panic(fmt.Sprintf("parlin: N=%d not divisible by S=%d", in.N, in.S))
			}
			blk := in.N / in.S
			a := &matrix.Matrix{Rows: in.N, Cols: in.N, Data: in.A}
			b := &matrix.Matrix{Rows: in.N, Cols: in.N, Data: in.B}
			for i := 0; i < in.S; i++ {
				for j := 0; j < in.S; j++ {
					for k := 0; k < in.S; k++ {
						post(&MulJob{
							I: i, J: j, K: k,
							BlkRows: blk, BlkInner: blk, BlkCols: blk,
							Compute: in.Compute,
							A:       a.Block(i*blk, k*blk, blk, blk).Data,
							B:       b.Block(k*blk, j*blk, blk, blk).Data,
						})
					}
				}
			}
		})
	mul := core.Leaf[*MulJob, *MulPart](opt.Name+"-mul",
		func(c *core.Ctx, in *MulJob) *MulPart {
			out := &MulPart{I: in.I, J: in.J, Rows: in.BlkRows, Cols: in.BlkCols}
			if in.Compute {
				a := &matrix.Matrix{Rows: in.BlkRows, Cols: in.BlkInner, Data: in.A}
				b := &matrix.Matrix{Rows: in.BlkInner, Cols: in.BlkCols, Data: in.B}
				out.Data = a.Mul(b).Data
			} else {
				out.Data = make([]float64, in.BlkRows*in.BlkCols)
			}
			return out
		})
	merge := core.Merge[*MulPart, *MatResult](opt.Name+"-merge",
		func(c *core.Ctx, first *MulPart, next func() (*MulPart, bool)) *MatResult {
			var acc *matrix.Matrix
			blk := 0
			add := func(p *MulPart) {
				if acc == nil {
					blk = p.Rows
					// The result size is unknown until the first part; infer
					// from the largest block index seen lazily by growing.
					acc = matrix.New(0, 0)
				}
				needed := (maxInt(p.I, p.J) + 1) * blk
				if acc.Rows < needed {
					grown := matrix.New(needed, needed)
					grown.SetBlock(0, 0, acc)
					acc = grown
				}
				for r := 0; r < p.Rows; r++ {
					dst := acc.Data[(p.I*blk+r)*acc.Cols+p.J*blk : (p.I*blk+r)*acc.Cols+p.J*blk+p.Cols]
					src := p.Data[r*p.Cols : (r+1)*p.Cols]
					for x := range dst {
						dst[x] += src[x]
					}
				}
			}
			for in, ok := first, true; ok; in, ok = next() {
				add(in)
			}
			return &MatResult{N: acc.Rows, Data: acc.Data}
		})

	route := opt.Route
	if route == nil {
		route = core.ByKey[*MulJob](opt.Name+"-affinity", func(in *MulJob) int { return in.I*31 + in.J })
	}
	m.graph, err = app.NewFlowgraph(opt.Name, core.Path(
		core.NewNode(split, m.master, core.MainRoute()),
		core.NewNode(mul, m.workers, route),
		core.NewNode(merge, m.master, core.MainRoute()),
	))
	if err != nil {
		return nil, err
	}
	return m, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Run multiplies a and b with splitting factor s. compute=false skips the
// block kernel (communication-only measurement).
func (m *Matmul) Run(a, b *matrix.Matrix, s int, compute bool) (*matrix.Matrix, error) {
	if a.Rows != a.Cols || b.Rows != b.Cols || a.Rows != b.Rows {
		return nil, fmt.Errorf("parlin: matmul needs equal square matrices")
	}
	out, err := m.graph.Call(context.Background(), &MatmulOrder{
		N: a.Rows, S: s, Compute: compute,
		A: append([]float64(nil), a.Data...),
		B: append([]float64(nil), b.Data...),
	})
	if err != nil {
		return nil, err
	}
	res := out.(*MatResult)
	if res.N != a.Rows {
		return nil, fmt.Errorf("parlin: result is %dx%d, want %d", res.N, res.N, a.Rows)
	}
	return &matrix.Matrix{Rows: res.N, Cols: res.N, Data: res.Data}, nil
}

// Graph exposes the flow graph (e.g. for DOT export).
func (m *Matmul) Graph() *core.Flowgraph { return m.graph }

// WorkersCollection exposes the compute thread collection so callers can
// remap it (e.g. placing workers on nodes distinct from the master).
func (m *Matmul) WorkersCollection() *core.ThreadCollection { return m.workers }
