package parlin

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/matrix"
	"repro/internal/simnet"
)

func localApp(t testing.TB, nodes int) *core.App {
	t.Helper()
	names := make([]string, nodes)
	for i := range names {
		names[i] = fmt.Sprintf("n%d", i)
	}
	app, err := core.NewLocalApp(core.Config{}, names...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(app.Close)
	return app
}

func TestMatmulMatchesReference(t *testing.T) {
	for _, tc := range []struct{ n, s, nodes int }{
		{16, 2, 1},
		{16, 4, 2},
		{32, 4, 3},
		{24, 3, 4},
		{32, 1, 2}, // single block
	} {
		app := localApp(t, tc.nodes)
		mm, err := NewMatmul(app, MatmulOptions{Name: fmt.Sprintf("mm-%d-%d", tc.n, tc.s)})
		if err != nil {
			t.Fatal(err)
		}
		a := matrix.Random(tc.n, tc.n, int64(tc.n))
		b := matrix.Random(tc.n, tc.n, int64(tc.n+1))
		got, err := mm.Run(a, b, tc.s, true)
		if err != nil {
			t.Fatalf("n=%d s=%d: %v", tc.n, tc.s, err)
		}
		want := a.Mul(b)
		if d := got.MaxAbsDiff(want); d > 1e-9 {
			t.Fatalf("n=%d s=%d: max diff %g", tc.n, tc.s, d)
		}
	}
}

func TestMatmulCommOnly(t *testing.T) {
	app := localApp(t, 2)
	mm, err := NewMatmul(app, MatmulOptions{Name: "mm-comm"})
	if err != nil {
		t.Fatal(err)
	}
	a := matrix.Random(16, 16, 1)
	b := matrix.Random(16, 16, 2)
	got, err := mm.Run(a, b, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	// Communication-only run moves the same tokens but computes zeros.
	zero := matrix.New(16, 16)
	if d := got.MaxAbsDiff(zero); d != 0 {
		t.Fatalf("comm-only result non-zero: %g", d)
	}
}

func TestMatmulRejectsBadShapes(t *testing.T) {
	app := localApp(t, 1)
	mm, err := NewMatmul(app, MatmulOptions{Name: "mm-bad"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mm.Run(matrix.New(4, 5), matrix.New(5, 4), 2, true); err == nil {
		t.Fatal("expected shape error")
	}
	// N not divisible by S surfaces as an app failure.
	if _, err := mm.Run(matrix.Random(10, 10, 1), matrix.Random(10, 10, 2), 3, true); err == nil {
		t.Fatal("expected divisibility error")
	}
}

func luCheck(t *testing.T, n, r, nodes, workers int, pipelined bool) {
	t.Helper()
	app := localApp(t, nodes)
	lu, err := NewLU(app, n, r, LUOptions{
		Name:      fmt.Sprintf("lu-%d-%d-%v", n, r, pipelined),
		Workers:   workers,
		Pipelined: pipelined,
	})
	if err != nil {
		t.Fatal(err)
	}
	a := matrix.Random(n, n, int64(n*10+r))
	fact, piv, err := lu.Factor(a)
	if err != nil {
		t.Fatalf("n=%d r=%d pipelined=%v: %v", n, r, pipelined, err)
	}
	if res := matrix.ResidualLU(a, fact, piv); res > 1e-8*float64(n) {
		t.Fatalf("n=%d r=%d pipelined=%v: residual %g", n, r, pipelined, res)
	}
	// The distributed algorithm performs the same operations in the same
	// per-element order as the sequential block algorithm, so factors and
	// pivots must match it (tolerance only for accumulated reordering in
	// the trailing update, which does not occur — exact match expected).
	ref := a.Clone()
	if _, err := matrix.BlockLUFactor(ref, r); err != nil {
		t.Fatal(err)
	}
	if d := fact.MaxAbsDiff(ref); d > 1e-10 {
		t.Fatalf("n=%d r=%d pipelined=%v: factors differ from sequential block LU by %g", n, r, pipelined, d)
	}
}

func TestLUPipelinedMatchesReference(t *testing.T) {
	luCheck(t, 16, 4, 2, 2, true)
	luCheck(t, 32, 4, 4, 4, true)
	luCheck(t, 24, 4, 3, 3, true)
	luCheck(t, 32, 8, 2, 2, true)
}

func TestLUNonPipelinedMatchesReference(t *testing.T) {
	luCheck(t, 16, 4, 2, 2, false)
	luCheck(t, 32, 4, 4, 4, false)
}

func TestLUSingleBlock(t *testing.T) {
	luCheck(t, 8, 8, 1, 1, true)
	luCheck(t, 8, 8, 1, 1, false)
}

func TestLUSingleWorkerManyBlocks(t *testing.T) {
	luCheck(t, 32, 4, 1, 1, true)
}

func TestLUMoreWorkersThanColumns(t *testing.T) {
	luCheck(t, 16, 8, 4, 4, true) // 2 block columns on 4 workers
}

func TestLURepeatedFactorizations(t *testing.T) {
	app := localApp(t, 2)
	lu, err := NewLU(app, 16, 4, LUOptions{Name: "lu-repeat", Pipelined: true})
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 3; trial++ {
		a := matrix.Random(16, 16, int64(trial))
		fact, piv, err := lu.Factor(a)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if res := matrix.ResidualLU(a, fact, piv); res > 1e-8 {
			t.Fatalf("trial %d: residual %g", trial, res)
		}
	}
}

func TestLUOverSimnet(t *testing.T) {
	net := simnet.New(simnet.Config{Bandwidth: 200e6, Latency: 20 * time.Microsecond})
	defer net.Close()
	app, err := core.NewSimApp(core.Config{}, net, "s0", "s1", "s2")
	if err != nil {
		t.Fatal(err)
	}
	defer app.Close()
	lu, err := NewLU(app, 24, 4, LUOptions{Name: "lu-simnet", Pipelined: true})
	if err != nil {
		t.Fatal(err)
	}
	a := matrix.Random(24, 24, 55)
	fact, piv, err := lu.Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	if res := matrix.ResidualLU(a, fact, piv); res > 1e-8 {
		t.Fatalf("residual %g", res)
	}
}

func TestLURejectsBadShapes(t *testing.T) {
	app := localApp(t, 1)
	if _, err := NewLU(app, 10, 3, LUOptions{Name: "lu-bad"}); err == nil {
		t.Fatal("expected divisibility error")
	}
	lu, err := NewLU(app, 8, 4, LUOptions{Name: "lu-ok"})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := lu.Factor(matrix.New(4, 4)); err == nil {
		t.Fatal("expected size mismatch error")
	}
}

func TestLUGraphGeneratedToFit(t *testing.T) {
	app := localApp(t, 2)
	lu4, err := NewLU(app, 16, 4, LUOptions{Name: "fit4"})
	if err != nil {
		t.Fatal(err)
	}
	lu2, err := NewLU(app, 16, 8, LUOptions{Name: "fit2"})
	if err != nil {
		t.Fatal(err)
	}
	if lu4.Blocks() != 4 || lu2.Blocks() != 2 {
		t.Fatalf("blocks: %d, %d", lu4.Blocks(), lu2.Blocks())
	}
	// More block columns -> longer generated chain.
	if lu4.Graph().NodeCount() <= lu2.Graph().NodeCount() {
		t.Fatalf("graph sizes: %d vs %d", lu4.Graph().NodeCount(), lu2.Graph().NodeCount())
	}
}
