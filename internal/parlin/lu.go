package parlin

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/matrix"
	"repro/internal/serial"
)

// Tokens of the LU factorization application (paper Figures 11-13).

// LUStart distributes an NxN matrix in column strips of width R.
type LUStart struct {
	N, R int
	A    []float64
}

// ColLoad carries one column strip to its owner.
type ColLoad struct {
	Col  int
	N, R int
	Data []float64
}

// ColNotify reports that column Col finished its work for Step (Step -1
// means the strip was loaded).
type ColNotify struct {
	Step int
	Col  int
}

// TrsmOrder asks the owner of column Col to apply Step's row exchanges,
// solve the triangular system, and update its trailing blocks. The panel
// (column Step's factored strip below row Step*R) travels with the order,
// as on a real distributed-memory machine.
type TrsmOrder struct {
	Step      int
	Col       int
	R         int
	PanelRows int
	Panel     []float64
	Piv       []int
}

// FlipOrder asks the owner of an already-factored column (Col < Step) to
// apply Step's row exchanges to its L storage (paper Figure 12 (f)).
type FlipOrder struct {
	Step int
	Col  int
	Piv  []int
}

// FlipNotify reports a completed row exchange.
type FlipNotify struct {
	Step int
	Col  int
}

// LUDone terminates the factorization graph.
type LUDone struct {
	Steps int
}

// GatherCol requests a worker's column strip and pivots.
type GatherCol struct {
	Col int
}

// ColData returns a strip (and the pivots of the step this column owned).
type ColData struct {
	Col  int
	Data []float64
	Piv  []int
}

// LUResult is the reassembled in-place factorization.
type LUResult struct {
	N    int
	Fact []float64
	Piv  []int
}

var (
	_ = serial.MustRegister[LUStart]()
	_ = serial.MustRegister[ColLoad]()
	_ = serial.MustRegister[ColNotify]()
	_ = serial.MustRegister[TrsmOrder]()
	_ = serial.MustRegister[FlipOrder]()
	_ = serial.MustRegister[FlipNotify]()
	_ = serial.MustRegister[LUDone]()
	_ = serial.MustRegister[GatherCol]()
	_ = serial.MustRegister[ColData]()
	_ = serial.MustRegister[LUResult]()
)

// luState is a worker thread's column storage.
type luState struct {
	n, r int
	cols map[int]*matrix.Matrix // column strips (n x r), keyed by block column
	pivs map[int][]int          // pivots of the steps whose panel this thread factored
	// Row-exchange orders for one column may arrive out of step order
	// (they are posted by different nodes); nextFlip tracks the next step
	// whose exchanges may be applied per column and pendFlips buffers
	// early arrivals, preserving the sequential algorithm's swap order.
	nextFlip  map[int]int
	pendFlips map[int]map[int][]int
}

func (st *luState) init(n, r int) {
	if st.cols == nil {
		st.cols = make(map[int]*matrix.Matrix)
		st.pivs = make(map[int][]int)
		st.nextFlip = make(map[int]int)
		st.pendFlips = make(map[int]map[int][]int)
	}
	st.n, st.r = n, r
}

// applyFlip applies step's row exchanges to column col as soon as all
// earlier steps' exchanges have been applied.
func (st *luState) applyFlip(col, step, r int, piv []int) {
	if pending, ok := st.pendFlips[col]; !ok || pending == nil {
		st.pendFlips[col] = make(map[int][]int)
	}
	st.pendFlips[col][step] = piv
	strip := st.cols[col]
	for {
		next := st.nextFlip[col]
		p, ok := st.pendFlips[col][next]
		if !ok {
			return
		}
		delete(st.pendFlips[col], next)
		base := next * r
		for i, pi := range p {
			if pi != i {
				strip.SwapRows(base+i, base+pi)
			}
		}
		st.nextFlip[col] = next + 1
	}
}

// LU is a DPS block LU factorization for one fixed problem shape. The flow
// graph is generated to fit the matrix size (paper §5: "the graph is
// created to fit the size of the problem"), chaining one
// collect-factor-stream construct per block column.
type LU struct {
	app       *core.App
	name      string
	n, r, nb  int
	workers   int
	pipelined bool

	master *core.ThreadCollection
	col    *core.ThreadCollection
	factor *core.Flowgraph
	gather *core.Flowgraph
}

// LUOptions configures the factorization application.
type LUOptions struct {
	// Name prefixes collections and graphs.
	Name string
	// Workers is the number of column-owning threads (default one per node).
	Workers int
	// Pipelined selects the stream-operation variant (true, Figure 12) or
	// the merge-then-split variant (false) that Figure 15 compares against.
	Pipelined bool
}

// NewLU generates the factorization and gather graphs for NxN matrices
// with block size r.
func NewLU(app *core.App, n, r int, opt LUOptions) (*LU, error) {
	if opt.Name == "" {
		opt.Name = "lu"
	}
	if n <= 0 || r <= 0 || n%r != 0 {
		return nil, fmt.Errorf("parlin: n=%d must be a positive multiple of r=%d", n, r)
	}
	if opt.Workers <= 0 {
		opt.Workers = len(app.NodeNames())
	}
	l := &LU{
		app: app, name: opt.Name,
		n: n, r: r, nb: n / r,
		workers:   opt.Workers,
		pipelined: opt.Pipelined,
	}
	var err error
	if l.master, err = core.NewCollection[struct{}](app, opt.Name+"-master"); err != nil {
		return nil, err
	}
	if err = l.master.MapNodes(app.MasterNode()); err != nil {
		return nil, err
	}
	if l.col, err = core.NewCollection[luState](app, opt.Name+"-cols"); err != nil {
		return nil, err
	}
	if err = l.col.MapRoundRobin(opt.Workers); err != nil {
		return nil, err
	}
	if err := l.buildFactorGraph(); err != nil {
		return nil, err
	}
	return l, l.buildGatherGraph()
}

func (l *LU) owner(col int) int { return col % l.workers }

// factorPanel runs the panel LU of block column k on the owner's strip and
// returns the broadcast payload (panel rows k*r..n and relative pivots).
func (l *LU) factorPanel(st *luState, k int) ([]float64, []int) {
	strip, ok := st.cols[k]
	if !ok {
		panic(fmt.Sprintf("parlin: column %d not loaded on its owner", k))
	}
	rows := l.n - k*l.r
	piv, err := matrix.PanelLU(strip, k*l.r, 0, rows, l.r)
	if err != nil {
		panic(fmt.Errorf("parlin: panel %d: %w", k, err))
	}
	st.pivs[k] = piv
	st.nextFlip[k] = k + 1 // later steps' flips apply in order from here
	panel := strip.Block(k*l.r, 0, rows, l.r)
	return panel.Data, piv
}

// applyTrsm performs the paper's step 2 and 3 for one trailing column:
// row exchanges, triangular solve, and the block multiply update.
func (l *LU) applyTrsm(st *luState, in *TrsmOrder) {
	strip := st.cols[in.Col]
	k := in.Step
	base := k * l.r
	for i, p := range in.Piv {
		if p != i {
			strip.SwapRows(base+i, base+p)
		}
	}
	panel := &matrix.Matrix{Rows: in.PanelRows, Cols: in.R, Data: in.Panel}
	l11 := panel.Block(0, 0, in.R, in.R)
	t := strip.Block(base, 0, in.R, l.r)
	matrix.TrsmLowerUnit(l11, t)
	strip.SetBlock(base, 0, t)
	if rest := l.n - base - in.R; rest > 0 {
		l21 := panel.Block(in.R, 0, rest, in.R)
		prod := l21.Mul(t)
		for i := 0; i < rest; i++ {
			dst := strip.Data[(base+in.R+i)*strip.Cols : (base+in.R+i+1)*strip.Cols]
			src := prod.Data[i*prod.Cols : (i+1)*prod.Cols]
			for x := range dst {
				dst[x] -= src[x]
			}
		}
	}
}

// collector builds the stream body of construct C_k: it collects the
// notifications of step k-1 (or the strip loads for k == 0), factors panel
// k as soon as column k's notification arrives, and emits the step-k trsm
// orders — immediately in the pipelined variant, after the whole group in
// the merge-then-split variant — plus the row-exchange orders for the
// already-factored columns.
func (l *LU) collector(k int) func(c *core.Ctx, first core.Token, next func() (core.Token, bool), post func(core.Token)) {
	return func(c *core.Ctx, first core.Token, next func() (core.Token, bool), post func(core.Token)) {
		st := core.StateOf[luState](c)
		var panel []float64
		var piv []int
		ready := false
		var pendingTrsm []int
		emitTrsm := func(col int) {
			post(&TrsmOrder{
				Step: k, Col: col, R: l.r,
				PanelRows: l.n - k*l.r,
				Panel:     panel, Piv: piv,
			})
		}
		emitFlips := func() {
			for j := 0; j < k; j++ {
				post(&FlipOrder{Step: k, Col: j, Piv: piv})
			}
		}
		handle := func(tok core.Token) {
			cn, ok := tok.(*ColNotify)
			if !ok {
				return // FlipNotify: consumed for synchronization only
			}
			switch {
			case cn.Col == k:
				panel, piv = l.factorPanel(st, k)
				ready = true
				if l.pipelined {
					emitFlips()
					for _, col := range pendingTrsm {
						emitTrsm(col)
					}
					pendingTrsm = nil
				}
			case cn.Col > k:
				if ready && l.pipelined {
					emitTrsm(cn.Col)
				} else {
					pendingTrsm = append(pendingTrsm, cn.Col)
				}
			}
		}
		for tok, ok := first, true; ok; tok, ok = next() {
			handle(tok)
		}
		if !ready {
			panic(fmt.Sprintf("parlin: step %d never saw column %d's notification", k, k))
		}
		if !l.pipelined {
			emitFlips()
			for _, col := range pendingTrsm {
				emitTrsm(col)
			}
			pendingTrsm = nil
		}
		if k == l.nb-1 && k == 0 {
			post(&LUDone{Steps: l.nb})
		}
	}
}

func (l *LU) buildFactorGraph() error {
	toCol := core.ByKey[*ColLoad](l.name+"-to-col", func(in *ColLoad) int { return l.owner(in.Col) })
	toTrsm := core.ByKey[*TrsmOrder](l.name+"-to-trsm", func(in *TrsmOrder) int { return l.owner(in.Col) })
	toFlip := core.ByKey[*FlipOrder](l.name+"-to-flip", func(in *FlipOrder) int { return l.owner(in.Col) })

	split := core.Split[*LUStart, *ColLoad](l.name+"-distribute",
		func(c *core.Ctx, in *LUStart, post func(*ColLoad)) {
			a := &matrix.Matrix{Rows: in.N, Cols: in.N, Data: in.A}
			for j := 0; j < l.nb; j++ {
				strip := a.Block(0, j*in.R, in.N, in.R)
				post(&ColLoad{Col: j, N: in.N, R: in.R, Data: strip.Data})
			}
		})
	load := core.Leaf[*ColLoad, *ColNotify](l.name+"-load",
		func(c *core.Ctx, in *ColLoad) *ColNotify {
			st := core.StateOf[luState](c)
			st.init(in.N, in.R)
			st.cols[in.Col] = &matrix.Matrix{Rows: in.N, Cols: in.R, Data: in.Data}
			return &ColNotify{Step: -1, Col: in.Col}
		})
	trsmLeaf := func(k int) *core.OpDef {
		return core.Leaf[*TrsmOrder, *ColNotify](fmt.Sprintf("%s-trsm-%d", l.name, k),
			func(c *core.Ctx, in *TrsmOrder) *ColNotify {
				st := core.StateOf[luState](c)
				l.applyTrsm(st, in)
				return &ColNotify{Step: in.Step, Col: in.Col}
			})
	}
	flipLeaf := func(k int) *core.OpDef {
		return core.Leaf[*FlipOrder, *FlipNotify](fmt.Sprintf("%s-flip-%d", l.name, k),
			func(c *core.Ctx, in *FlipOrder) *FlipNotify {
				st := core.StateOf[luState](c)
				st.applyFlip(in.Col, in.Step, l.r, in.Piv)
				return &FlipNotify{Step: in.Step, Col: in.Col}
			})
	}
	finalMerge := core.MergeAny(l.name+"-terminate",
		[]core.Token{(*FlipNotify)(nil), (*LUDone)(nil)},
		[]core.Token{(*LUDone)(nil)},
		func(c *core.Ctx, first core.Token, next func() (core.Token, bool)) core.Token {
			for _, ok := first, true; ok; _, ok = next() {
			}
			return &LUDone{Steps: l.nb}
		})

	nSplit := core.NewNode(split, l.master, core.MainRoute())
	nLoad := core.NewNode(load, l.col, toCol)
	nFinal := core.NewNode(finalMerge, l.master, core.MainRoute())

	if l.nb == 1 {
		// Single block column: the collector factors and terminates.
		c0 := core.StreamAny(l.name+"-step-0",
			[]core.Token{(*ColNotify)(nil)},
			[]core.Token{(*LUDone)(nil)},
			l.collector(0))
		b := core.Path(nSplit, nLoad, core.NewNode(c0, l.col, core.ToThread(l.owner(0))), nFinal)
		g, err := l.app.NewFlowgraph(l.name+"-factor", b)
		if err != nil {
			return err
		}
		l.factor = g
		return nil
	}

	// General chain: C_0 -> T_0 -> C_1 -> {T_1, F_1} -> C_2 ... ->
	// C_{nb-1} -> F_{nb-1} -> final merge.
	collectors := make([]*core.GraphNode, l.nb)
	for k := 0; k < l.nb; k++ {
		ins := []core.Token{(*ColNotify)(nil)}
		if k >= 2 { // steps >= 2 also collect flip notifications
			ins = append(ins, (*FlipNotify)(nil))
		}
		var outs []core.Token
		switch {
		case k == l.nb-1:
			outs = []core.Token{(*FlipOrder)(nil)}
		case k == 0:
			outs = []core.Token{(*TrsmOrder)(nil)}
		default:
			outs = []core.Token{(*TrsmOrder)(nil), (*FlipOrder)(nil)}
		}
		op := core.StreamAny(fmt.Sprintf("%s-step-%d", l.name, k), ins, outs, l.collector(k))
		collectors[k] = core.NewNode(op, l.col, core.ToThread(l.owner(k)))
	}

	b := core.Path(nSplit, nLoad, collectors[0])
	for k := 0; k < l.nb-1; k++ {
		nTrsm := core.NewNode(trsmLeaf(k), l.col, toTrsm)
		b.Add(collectors[k], nTrsm, collectors[k+1])
		if k >= 1 {
			nFlip := core.NewNode(flipLeaf(k), l.col, toFlip)
			b.Add(collectors[k], nFlip, collectors[k+1])
		}
	}
	nFlipLast := core.NewNode(flipLeaf(l.nb-1), l.col, toFlip)
	b.Add(collectors[l.nb-1], nFlipLast, nFinal)

	g, err := l.app.NewFlowgraph(l.name+"-factor", b)
	if err != nil {
		return err
	}
	l.factor = g
	return nil
}

func (l *LU) buildGatherGraph() error {
	split := core.Split[*LUDone, *GatherCol](l.name+"-gather-split",
		func(c *core.Ctx, in *LUDone, post func(*GatherCol)) {
			for j := 0; j < l.nb; j++ {
				post(&GatherCol{Col: j})
			}
		})
	leaf := core.Leaf[*GatherCol, *ColData](l.name+"-gather-col",
		func(c *core.Ctx, in *GatherCol) *ColData {
			st := core.StateOf[luState](c)
			strip := st.cols[in.Col]
			out := &ColData{Col: in.Col, Data: append([]float64(nil), strip.Data...)}
			if piv, ok := st.pivs[in.Col]; ok {
				out.Piv = append([]int(nil), piv...)
			}
			return out
		})
	merge := core.Merge[*ColData, *LUResult](l.name+"-gather-merge",
		func(c *core.Ctx, first *ColData, next func() (*ColData, bool)) *LUResult {
			res := &LUResult{N: l.n, Fact: make([]float64, l.n*l.n), Piv: make([]int, l.n)}
			fact := &matrix.Matrix{Rows: l.n, Cols: l.n, Data: res.Fact}
			for in, ok := first, true; ok; in, ok = next() {
				strip := &matrix.Matrix{Rows: l.n, Cols: l.r, Data: in.Data}
				fact.SetBlock(0, in.Col*l.r, strip)
				for i, p := range in.Piv {
					res.Piv[in.Col*l.r+i] = in.Col*l.r + p
				}
			}
			return res
		})
	g, err := l.app.NewFlowgraph(l.name+"-gather", core.Path(
		core.NewNode(split, l.master, core.MainRoute()),
		core.NewNode(leaf, l.col, core.ByKey[*GatherCol](l.name+"-to-gathercol", func(in *GatherCol) int { return l.owner(in.Col) })),
		core.NewNode(merge, l.master, core.MainRoute()),
	))
	l.gather = g
	return err
}

// Factor runs the distributed factorization of a (which must be n x n) and
// returns the in-place factors and global pivot vector.
func (l *LU) Factor(a *matrix.Matrix) (*matrix.Matrix, []int, error) {
	if a.Rows != l.n || a.Cols != l.n {
		return nil, nil, fmt.Errorf("parlin: matrix is %dx%d, app built for %d", a.Rows, a.Cols, l.n)
	}
	if _, err := l.factor.Call(context.Background(), &LUStart{N: l.n, R: l.r, A: append([]float64(nil), a.Data...)}); err != nil {
		return nil, nil, err
	}
	out, err := l.gather.Call(context.Background(), &LUDone{})
	if err != nil {
		return nil, nil, err
	}
	res := out.(*LUResult)
	return &matrix.Matrix{Rows: res.N, Cols: res.N, Data: res.Fact}, res.Piv, nil
}

// FactorOnly runs the factorization without gathering (for timing).
func (l *LU) FactorOnly(a *matrix.Matrix) error {
	_, err := l.factor.Call(context.Background(), &LUStart{N: l.n, R: l.r, A: append([]float64(nil), a.Data...)})
	return err
}

// Graph exposes the generated factorization flow graph.
func (l *LU) Graph() *core.Flowgraph { return l.factor }

// Blocks returns the number of block columns (the generated chain length).
func (l *LU) Blocks() int { return l.nb }
