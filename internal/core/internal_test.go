package core

import (
	"reflect"
	"testing"
	"testing/quick"
)

// --- wire format ----------------------------------------------------------

func TestEnvelopeHeaderRoundTrip(t *testing.T) {
	in := &envelope{
		Graph:      "g",
		Node:       7,
		Thread:     3,
		CallID:     991,
		CallOrigin: "nodeX",
		LastWorker: 2,
		CreditNode: 5,
		Frames: []frame{
			{GroupID: 42, Index: 9, Origin: "nodeA", MergeThread: 1},
			{GroupID: 43, Index: 0, Origin: "nodeB", MergeThread: 0},
		},
	}
	payload := []byte{0xde, 0xad, 0xbe, 0xef}
	buf := append(encodeEnvelopeHeader(in), payload...)
	if buf[0] != msgToken {
		t.Fatalf("kind byte %d", buf[0])
	}
	out, err := decodeEnvelope(buf[1:])
	if err != nil {
		t.Fatal(err)
	}
	in.Payload = payload
	in.Token = nil
	out.Token = nil
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("got %+v want %+v", out, in)
	}
}

func TestQuickEnvelopeRoundTrip(t *testing.T) {
	f := func(graph string, node, thread int16, callID uint64, origin string, lw, cn int8, gid uint64, idx uint16, fo string, mt int8, payload []byte) bool {
		in := &envelope{
			Graph:      graph,
			Node:       int(node),
			Thread:     int(thread),
			CallID:     callID,
			CallOrigin: origin,
			LastWorker: int(lw),
			CreditNode: int(cn),
			Frames:     []frame{{GroupID: gid, Index: int(idx), Origin: fo, MergeThread: int(mt)}},
		}
		buf := append(encodeEnvelopeHeader(in), payload...)
		out, err := decodeEnvelope(buf[1:])
		if err != nil {
			return false
		}
		in.Payload = payload
		if len(payload) == 0 {
			// bytes slices: nil vs empty equivalence
			if len(out.Payload) != 0 {
				return false
			}
			out.Payload = in.Payload
		}
		return reflect.DeepEqual(in, out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestGroupEndRoundTrip(t *testing.T) {
	in := &groupEndMsg{Graph: "g", Node: 4, Thread: 2, GroupID: 77, Total: 1234, CallID: 9}
	buf := encodeGroupEnd(in)
	if buf[0] != msgGroupEnd {
		t.Fatal("kind byte wrong")
	}
	out, err := decodeGroupEnd(buf[1:])
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("got %+v", out)
	}
}

func TestAckRoundTrip(t *testing.T) {
	in := ackMsg{GroupID: 901, Worker: -1, Graph: "g2", RouteNode: 3}
	buf := encodeAck(in)
	out, err := decodeAck(buf[1:])
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("got %+v", out)
	}
}

func TestResultRoundTrip(t *testing.T) {
	in := &resultMsg{CallID: 5, Payload: []byte("xyz")}
	buf := encodeResult(in)
	out, err := decodeResult(buf[1:])
	if err != nil {
		t.Fatal(err)
	}
	if out.CallID != 5 || string(out.Payload) != "xyz" {
		t.Fatalf("got %+v", out)
	}
}

func TestDecodeTruncatedMessages(t *testing.T) {
	in := &envelope{Graph: "graph-name", CallOrigin: "origin", Frames: []frame{{Origin: "o"}}}
	full := encodeEnvelopeHeader(in)
	for cut := 1; cut < len(full)-1; cut++ {
		if _, err := decodeEnvelope(full[1:cut]); err == nil {
			// Some prefixes decode "successfully" as an envelope with fewer
			// fields set only if the cut happens to land exactly at a field
			// boundary that satisfies the full structure — not possible here
			// because the frame count promises more data.
			t.Fatalf("decoding %d/%d bytes unexpectedly succeeded", cut, len(full))
		}
	}
}

func TestTokTypeValidation(t *testing.T) {
	type okTok struct{ X int }
	if _, err := tokType(&okTok{}); err != nil {
		t.Fatal(err)
	}
	if _, err := tokType(nil); err == nil {
		t.Fatal("nil token accepted")
	}
	if _, err := tokType(okTok{}); err == nil {
		t.Fatal("non-pointer token accepted")
	}
	if _, err := tokType(new(int)); err == nil {
		t.Fatal("pointer to non-struct accepted")
	}
}

func TestOpKindString(t *testing.T) {
	cases := map[OpKind]string{
		KindLeaf:   "leaf",
		KindSplit:  "split",
		KindMerge:  "merge",
		KindStream: "stream",
		OpKind(99): "OpKind(99)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q want %q", int(k), got, want)
		}
	}
}
