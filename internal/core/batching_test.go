package core_test

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/simnet"
)

// TestUppercaseBatched runs the tutorial graph with wire batching on over
// serialized local lanes (ForceSerialize disables the colocated fast path,
// so every inter-node token really rides a batch frame).
func TestUppercaseBatched(t *testing.T) {
	app := newLocalApp(t, core.Config{Batch: true, ForceSerialize: true}, "node0", "node1", "node2")
	g := buildUppercase(t, app, "upper", "node1*2 node2")
	in := "batched wire path throughput"
	out, err := g.CallTimeout(app.MasterNode(), &StringToken{Str: in}, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got := out.(*StringToken).Str; got != strings.ToUpper(in) {
		t.Fatalf("got %q", got)
	}
	st := app.Stats()
	if st.FramesBatched == 0 {
		t.Fatal("no batch frames flushed despite Config.Batch")
	}
	if st.TokensPerFrame < 1 {
		t.Fatalf("TokensPerFrame = %d", st.TokensPerFrame)
	}
}

// TestUppercaseBatchedCompressedFT stacks every wire-path feature: batching,
// batch-body compression, and fault-tolerance sequence stamps folded into
// the batch header.
func TestUppercaseBatchedCompressedFT(t *testing.T) {
	app := newLocalApp(t, core.Config{
		Batch:          true,
		Compress:       true,
		ForceSerialize: true,
		Checkpoint:     5 * time.Millisecond,
	}, "node0", "node1")
	g := buildUppercase(t, app, "upper", "node1")
	in := "compressed and sequenced"
	out, err := g.CallTimeout(app.MasterNode(), &StringToken{Str: in}, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got := out.(*StringToken).Str; got != strings.ToUpper(in) {
		t.Fatalf("got %q", got)
	}
	st := app.Stats()
	if st.FramesBatched == 0 {
		t.Fatal("no batch frames flushed")
	}
	if st.UncompressedBytes == 0 {
		t.Fatal("compression counters untouched despite Config.Compress")
	}
	if st.CompressedBytes > st.UncompressedBytes {
		t.Fatalf("CompressedBytes %d > UncompressedBytes %d", st.CompressedBytes, st.UncompressedBytes)
	}
}

// TestUppercaseBatchedOverSimnet sends batch frames through the modelled
// network: whole batches must honor the simulated FIFO delivery.
func TestUppercaseBatchedOverSimnet(t *testing.T) {
	net := simnet.New(simnet.Config{Bandwidth: 100e6, Latency: 20 * time.Microsecond, TimeScale: 1})
	defer net.Close()
	app, err := core.NewSimApp(core.Config{Batch: true}, net, "n0", "n1", "n2")
	if err != nil {
		t.Fatal(err)
	}
	defer app.Close()
	g := buildUppercase(t, app, "upper", "n1 n2")
	out, err := g.CallTimeout(app.MasterNode(), &StringToken{Str: "simnet batch"}, 20*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got := out.(*StringToken).Str; got != "SIMNET BATCH" {
		t.Fatalf("got %q", got)
	}
	if app.Stats().FramesBatched == 0 {
		t.Fatal("no batch frames crossed the simulated network")
	}
}

// TestColocatedFastPath: without ForceSerialize, co-located nodes of one
// process hand tokens over by pointer — no serialization, no wire frames.
func TestColocatedFastPath(t *testing.T) {
	app := newLocalApp(t, core.Config{}, "node0", "node1", "node2")
	g := buildUppercase(t, app, "upper", "node1*2 node2")
	in := "colocated lanes"
	out, err := g.CallTimeout(app.MasterNode(), &StringToken{Str: in}, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got := out.(*StringToken).Str; got != strings.ToUpper(in) {
		t.Fatalf("got %q", got)
	}
	st := app.Stats()
	if st.TokensRemote != 0 {
		t.Fatalf("%d tokens serialized between co-located nodes", st.TokensRemote)
	}
	if st.TokensLocal == 0 {
		t.Fatal("no pointer-handoff deliveries counted")
	}
}
