package core_test

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/serial"
)

type PartToken struct {
	Frame int
	Part  int
	Data  []byte
}

type FrameToken struct {
	Frame int
	Data  []byte
}

type ReqToken struct {
	Frames int
	Parts  int
}

type DoneToken struct {
	Frames int
}

var (
	_ = serial.MustRegister[PartToken]()
	_ = serial.MustRegister[FrameToken]()
	_ = serial.MustRegister[ReqToken]()
	_ = serial.MustRegister[DoneToken]()
)

// TestStreamRecomposesAndPipelines reproduces the paper's Figure 4 workload
// shape: partial frames are produced by a split, a stream operation
// recombines them into complete frames and forwards each frame as soon as
// its parts arrived, and a final merge collects processed frames.
func TestStreamRecomposesAndPipelines(t *testing.T) {
	app := newLocalApp(t, core.Config{}, "node0", "node1")
	main := core.MustCollection[struct{}](app, "main")
	workers := core.MustCollection[struct{}](app, "workers")
	if err := main.Map("node0"); err != nil {
		t.Fatal(err)
	}
	if err := workers.Map("node0 node1"); err != nil {
		t.Fatal(err)
	}

	var firstFrameOut atomic.Int64 // time first complete frame left the stream
	var lastPartIn atomic.Int64    // time last part was generated

	gen := core.Split[*ReqToken, *PartToken]("gen-parts",
		func(c *core.Ctx, in *ReqToken, post func(*PartToken)) {
			for f := 0; f < in.Frames; f++ {
				for p := 0; p < in.Parts; p++ {
					post(&PartToken{Frame: f, Part: p, Data: []byte{byte(f), byte(p)}})
					time.Sleep(200 * time.Microsecond) // simulated disk read pacing
				}
			}
			lastPartIn.Store(time.Now().UnixNano())
		})
	recompose := core.Stream[*PartToken, *FrameToken]("recompose",
		func(c *core.Ctx, first *PartToken, next func() (*PartToken, bool), post func(*FrameToken)) {
			pending := make(map[int][][]byte)
			flush := func(p *PartToken) {
				pending[p.Frame] = append(pending[p.Frame], p.Data)
				if len(pending[p.Frame]) == 2 { // parts per frame fixed at 2 below
					if firstFrameOut.Load() == 0 {
						firstFrameOut.Store(time.Now().UnixNano())
					}
					post(&FrameToken{Frame: p.Frame, Data: append(pending[p.Frame][0], pending[p.Frame][1]...)})
					delete(pending, p.Frame)
				}
			}
			for in, ok := first, true; ok; in, ok = next() {
				flush(in)
			}
			if len(pending) != 0 {
				panic("incomplete frames left over")
			}
		})
	process := core.Leaf[*FrameToken, *FrameToken]("process",
		func(c *core.Ctx, in *FrameToken) *FrameToken { return in })
	collect := core.Merge[*FrameToken, *DoneToken]("collect",
		func(c *core.Ctx, first *FrameToken, next func() (*FrameToken, bool)) *DoneToken {
			n := 0
			seen := make(map[int]bool)
			for in, ok := first, true; ok; in, ok = next() {
				n++
				if seen[in.Frame] {
					panic("duplicate frame")
				}
				seen[in.Frame] = true
			}
			return &DoneToken{Frames: n}
		})

	g, err := app.NewFlowgraph("video", core.Path(
		core.NewNode(gen, main, core.MainRoute()),
		core.NewNode(recompose, main, core.MainRoute()),
		core.NewNode(process, workers, core.RoundRobin()),
		core.NewNode(collect, main, core.MainRoute()),
	))
	if err != nil {
		t.Fatal(err)
	}

	const frames = 40
	out, err := g.CallTimeout(app.MasterNode(), &ReqToken{Frames: frames, Parts: 2}, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got := out.(*DoneToken).Frames; got != frames {
		t.Fatalf("collected %d frames, want %d", got, frames)
	}
	// Pipelining assertion: the first complete frame must leave the stream
	// before the last part was generated (a merge+split would have waited).
	if firstFrameOut.Load() == 0 || lastPartIn.Load() == 0 {
		t.Fatal("timestamps not recorded")
	}
	if firstFrameOut.Load() >= lastPartIn.Load() {
		t.Fatal("stream did not pipeline: first frame left only after all parts were generated")
	}
}

// TestNestedSplitMerge exercises a split-merge construct nested inside
// another (paper Figure 14's structure).
func TestNestedSplitMerge(t *testing.T) {
	app := newLocalApp(t, core.Config{}, "node0", "node1", "node2")
	main := core.MustCollection[struct{}](app, "main")
	mid := core.MustCollection[struct{}](app, "mid")
	workers := core.MustCollection[struct{}](app, "workers")
	for _, m := range []struct {
		tc   *core.ThreadCollection
		spec string
	}{{main, "node0"}, {mid, "node1"}, {workers, "node1 node2"}} {
		if err := m.tc.Map(m.spec); err != nil {
			t.Fatal(err)
		}
	}

	outerSplit := core.Split[*CountToken, *CountToken]("outer-split",
		func(c *core.Ctx, in *CountToken, post func(*CountToken)) {
			for i := 0; i < in.N; i++ {
				post(&CountToken{N: 4}) // each inner group has 4 sub-tasks
			}
		})
	innerSplit := core.Split[*CountToken, *CountToken]("inner-split",
		func(c *core.Ctx, in *CountToken, post func(*CountToken)) {
			for i := 0; i < in.N; i++ {
				post(&CountToken{N: 1})
			}
		})
	work := core.Leaf[*CountToken, *CountToken]("work",
		func(c *core.Ctx, in *CountToken) *CountToken { return in })
	innerMerge := core.Merge[*CountToken, *SumToken]("inner-merge",
		func(c *core.Ctx, first *CountToken, next func() (*CountToken, bool)) *SumToken {
			sum := 0
			for in, ok := first, true; ok; in, ok = next() {
				sum += in.N
			}
			return &SumToken{Sum: sum}
		})
	outerMerge := core.Merge[*SumToken, *SumToken]("outer-merge",
		func(c *core.Ctx, first *SumToken, next func() (*SumToken, bool)) *SumToken {
			sum := 0
			for in, ok := first, true; ok; in, ok = next() {
				sum += in.Sum
			}
			return &SumToken{Sum: sum}
		})

	g, err := app.NewFlowgraph("nested", core.Path(
		core.NewNode(outerSplit, main, core.MainRoute()),
		core.NewNode(innerSplit, mid, core.MainRoute()),
		core.NewNode(work, workers, core.RoundRobin()),
		core.NewNode(innerMerge, mid, core.MainRoute()),
		core.NewNode(outerMerge, main, core.MainRoute()),
	))
	if err != nil {
		t.Fatal(err)
	}
	out, err := g.CallTimeout(app.MasterNode(), &CountToken{N: 7}, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// 7 inner groups x 4 tasks x value 1 = 28.
	if got := out.(*SumToken).Sum; got != 28 {
		t.Fatalf("nested sum = %d, want 28", got)
	}
}

// TestConditionalPaths reproduces Figure 3: the split emits two different
// token types which take different paths to the same merge.
type AToken struct{ V int }
type BToken struct{ V int }
type ABResult struct{ A, B int }

var (
	_ = serial.MustRegister[AToken]()
	_ = serial.MustRegister[BToken]()
	_ = serial.MustRegister[ABResult]()
)

func TestConditionalPaths(t *testing.T) {
	app := newLocalApp(t, core.Config{}, "node0", "node1")
	main := core.MustCollection[struct{}](app, "main")
	workers := core.MustCollection[struct{}](app, "workers")
	if err := main.Map("node0"); err != nil {
		t.Fatal(err)
	}
	if err := workers.Map("node0 node1"); err != nil {
		t.Fatal(err)
	}

	split := core.SplitAny[*CountToken]("dispatch",
		[]core.Token{(*AToken)(nil), (*BToken)(nil)},
		func(c *core.Ctx, in *CountToken, post func(core.Token)) {
			for i := 0; i < in.N; i++ {
				if i%2 == 0 {
					post(&AToken{V: i})
				} else {
					post(&BToken{V: i})
				}
			}
		})
	opA := core.Leaf[*AToken, *AToken]("opA",
		func(c *core.Ctx, in *AToken) *AToken { return &AToken{V: in.V * 10} })
	opB := core.Leaf[*BToken, *BToken]("opB",
		func(c *core.Ctx, in *BToken) *BToken { return &BToken{V: in.V * 100} })
	merge := core.MergeAny("joinAB",
		[]core.Token{(*AToken)(nil), (*BToken)(nil)},
		[]core.Token{(*ABResult)(nil)},
		func(c *core.Ctx, first core.Token, next func() (core.Token, bool)) core.Token {
			res := &ABResult{}
			for in, ok := first, true; ok; in, ok = next() {
				switch v := in.(type) {
				case *AToken:
					res.A += v.V
				case *BToken:
					res.B += v.V
				}
			}
			return res
		})

	nodeSplit := core.NewNode(split, main, core.MainRoute())
	nodeA := core.NewNode(opA, workers, core.RoundRobin())
	nodeB := core.NewNode(opB, workers, core.RoundRobin())
	nodeMerge := core.NewNode(merge, main, core.MainRoute())
	b := core.Path(nodeSplit, nodeA, nodeMerge).Add(nodeSplit, nodeB, nodeMerge)
	g, err := app.NewFlowgraph("conditional", b)
	if err != nil {
		t.Fatal(err)
	}
	out, err := g.CallTimeout(app.MasterNode(), &CountToken{N: 10}, 20*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	res := out.(*ABResult)
	// A-sum: (0+2+4+6+8)*10 = 200; B-sum: (1+3+5+7+9)*100 = 2500.
	if res.A != 200 || res.B != 2500 {
		t.Fatalf("got A=%d B=%d, want 200/2500", res.A, res.B)
	}
}

// TestFlowControlWindow verifies the split stalls once Window tokens are in
// flight and resumes as the merge consumes.
func TestFlowControlWindow(t *testing.T) {
	const window = 4
	app := newLocalApp(t, core.Config{Window: window}, "node0")
	main := core.MustCollection[struct{}](app, "main")
	if err := main.Map("node0"); err != nil {
		t.Fatal(err)
	}

	var maxInFlight atomic.Int64
	var inFlight atomic.Int64

	split := core.Split[*CountToken, *CountToken]("burst",
		func(c *core.Ctx, in *CountToken, post func(*CountToken)) {
			for i := 0; i < in.N; i++ {
				inFlight.Add(1)
				for {
					cur := inFlight.Load()
					if cur > maxInFlight.Load() {
						if !maxInFlight.CompareAndSwap(maxInFlight.Load(), cur) {
							continue
						}
					}
					break
				}
				post(&CountToken{N: i})
			}
		})
	slowMerge := core.Merge[*CountToken, *SumToken]("slow-merge",
		func(c *core.Ctx, first *CountToken, next func() (*CountToken, bool)) *SumToken {
			n := 0
			for _, ok := first, true; ok; _, ok = next() {
				inFlight.Add(-1)
				n++
				time.Sleep(time.Millisecond)
			}
			return &SumToken{Calls: n}
		})

	g, err := app.NewFlowgraph("window", core.Path(
		core.NewNode(split, main, core.MainRoute()),
		core.NewNode(slowMerge, main, core.MainRoute()),
	))
	if err != nil {
		t.Fatal(err)
	}
	const total = 40
	out, err := g.CallTimeout(app.MasterNode(), &CountToken{N: total}, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got := out.(*SumToken).Calls; got != total {
		t.Fatalf("merged %d, want %d", got, total)
	}
	// Window + a small slack for the token handed to the merge execution.
	if got := maxInFlight.Load(); got > window+2 {
		t.Fatalf("max in flight %d exceeded window %d", got, window)
	}
}

// TestSplitStalledMergeSameThread reproduces the scenario that motivates
// releasing the thread lock while blocked: split and merge share one main
// thread; the split overruns the window and can only continue because the
// merge keeps consuming on the same thread.
func TestSplitStalledMergeSameThread(t *testing.T) {
	app := newLocalApp(t, core.Config{Window: 2}, "node0")
	main := core.MustCollection[struct{}](app, "main")
	if err := main.Map("node0"); err != nil {
		t.Fatal(err)
	}
	split := core.Split[*CountToken, *CountToken]("stall-split",
		func(c *core.Ctx, in *CountToken, post func(*CountToken)) {
			for i := 0; i < in.N; i++ {
				post(&CountToken{N: i})
			}
		})
	merge := core.Merge[*CountToken, *SumToken]("stall-merge",
		func(c *core.Ctx, first *CountToken, next func() (*CountToken, bool)) *SumToken {
			n := 0
			for _, ok := first, true; ok; _, ok = next() {
				n++
			}
			return &SumToken{Calls: n}
		})
	g, err := app.NewFlowgraph("stall", core.Path(
		core.NewNode(split, main, core.MainRoute()),
		core.NewNode(merge, main, core.MainRoute()),
	))
	if err != nil {
		t.Fatal(err)
	}
	out, err := g.CallTimeout(app.MasterNode(), &CountToken{N: 100}, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got := out.(*SumToken).Calls; got != 100 {
		t.Fatalf("merged %d, want 100", got)
	}
}

// TestStreamChain checks two stream operations in sequence, each re-grouping.
func TestStreamChain(t *testing.T) {
	app := newLocalApp(t, core.Config{}, "node0")
	main := core.MustCollection[struct{}](app, "main")
	if err := main.Map("node0"); err != nil {
		t.Fatal(err)
	}
	split := core.Split[*CountToken, *CountToken]("s",
		func(c *core.Ctx, in *CountToken, post func(*CountToken)) {
			for i := 0; i < in.N; i++ {
				post(&CountToken{N: 1})
			}
		})
	double := core.Stream[*CountToken, *CountToken]("stream-double",
		func(c *core.Ctx, first *CountToken, next func() (*CountToken, bool), post func(*CountToken)) {
			for in, ok := first, true; ok; in, ok = next() {
				post(&CountToken{N: in.N * 2})
			}
		})
	addOne := core.Stream[*CountToken, *CountToken]("stream-addone",
		func(c *core.Ctx, first *CountToken, next func() (*CountToken, bool), post func(*CountToken)) {
			for in, ok := first, true; ok; in, ok = next() {
				post(&CountToken{N: in.N + 1})
			}
		})
	merge := core.Merge[*CountToken, *SumToken]("m",
		func(c *core.Ctx, first *CountToken, next func() (*CountToken, bool)) *SumToken {
			sum := 0
			for in, ok := first, true; ok; in, ok = next() {
				sum += in.N
			}
			return &SumToken{Sum: sum}
		})
	g, err := app.NewFlowgraph("streamchain", core.Path(
		core.NewNode(split, main, core.MainRoute()),
		core.NewNode(double, main, core.MainRoute()),
		core.NewNode(addOne, main, core.MainRoute()),
		core.NewNode(merge, main, core.MainRoute()),
	))
	if err != nil {
		t.Fatal(err)
	}
	out, err := g.CallTimeout(app.MasterNode(), &CountToken{N: 8}, 20*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// 8 tokens of value 1 → doubled (2) → +1 (3) → sum = 24.
	if got := out.(*SumToken).Sum; got != 24 {
		t.Fatalf("sum = %d, want 24", got)
	}
}
