package core

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
	"sync"
)

// Batch frame codec (Config.Batch; the batcher itself lives in link.go).
//
// A batch frame coalesces tokens and group-ends bound for one destination
// node into a single transport frame:
//
//	[msgBatch][flags]
//	  flags bit0 set: body is DEFLATE-compressed, preceded by
//	                  uvarint(rawLen); otherwise the body follows raw.
//	body:
//	  uvarint nstreams, nstreams × string   — FT sender-stream dictionary
//	  uvarint nentries
//	  per entry:
//	    kind byte                           — msgToken | msgGroupEnd |
//	                                          msgTokenFT | msgGroupEndFT
//	    FT kinds only: uvarint streamIdx, uvarint seq
//	    uvarint bodyLen, bodyLen bytes      — the message body WITHOUT its
//	                                          kind/stream/seq prefix
//
// Folding the FT stream names into one per-frame dictionary (and the
// per-entry stamp into two uvarints) is what collapses the sequenced
// framing overhead: a stream name travels once per frame instead of once
// per token. Entry bodies reuse the existing encodings byte for byte —
// a token entry is appendEnvelopeBody + serialized payload, a group-end
// entry is appendGroupEndBody — so a batch of N entries decodes to exactly
// the same messages as N individual frames.

const (
	batchFlagCompressed byte = 1 << 0

	// Hostile-input bounds: a decoder must not allocate proportionally to
	// claimed counts before validating them against the bytes present.
	maxBatchStreams = 1 << 16
	maxBatchEntries = 1 << 20
	maxBatchRaw     = 1 << 30
)

// batchEncoder accumulates entries of one batch frame. The zero value is
// ready; reset() recycles it between flushes.
type batchEncoder struct {
	entries []byte // encoded entries section
	streams []string
	idx     map[string]int
	n       int    // entry count
	tokens  int    // token entries (stats: tokens per frame)
	hdr     []byte // per-flush header staging, reused
}

func (be *batchEncoder) reset() {
	be.entries = be.entries[:0]
	be.streams = be.streams[:0]
	be.n = 0
	be.tokens = 0
	for k := range be.idx {
		delete(be.idx, k)
	}
}

func (be *batchEncoder) empty() bool { return be.n == 0 }

// size approximates the frame size so the batcher can bound it.
func (be *batchEncoder) size() int { return len(be.entries) }

func (be *batchEncoder) streamIdx(stream string) int {
	if be.idx == nil {
		be.idx = make(map[string]int)
	}
	if i, ok := be.idx[stream]; ok {
		return i
	}
	i := len(be.streams)
	be.streams = append(be.streams, stream)
	be.idx[stream] = i
	return i
}

// add appends one entry. kind must be one of the four batchable kinds;
// stream/seq are only consulted for the FT kinds. body is copied.
func (be *batchEncoder) add(kind byte, stream string, seq uint64, body []byte) {
	be.entries = append(be.entries, kind)
	if kind == msgTokenFT || kind == msgGroupEndFT {
		be.entries = binary.AppendUvarint(be.entries, uint64(be.streamIdx(stream)))
		be.entries = binary.AppendUvarint(be.entries, seq)
	}
	be.entries = binary.AppendUvarint(be.entries, uint64(len(body)))
	be.entries = append(be.entries, body...)
	be.n++
	if kind == msgToken || kind == msgTokenFT {
		be.tokens++
	}
}

// appendFrame assembles the full wire frame into buf. With compress set the
// body is DEFLATE-compressed when that actually shrinks it; the returned
// rawLen/gotLen report the body sizes before and after (equal when the
// frame went out raw) for the compression counters.
func (be *batchEncoder) appendFrame(buf []byte, compress bool) (out []byte, rawLen, gotLen int) {
	hdr := binary.AppendUvarint(be.hdr[:0], uint64(len(be.streams)))
	for _, s := range be.streams {
		hdr = appendString(hdr, s)
	}
	hdr = binary.AppendUvarint(hdr, uint64(be.n))
	be.hdr = hdr
	rawLen = len(hdr) + len(be.entries)

	if compress && rawLen > batchCompressMin {
		if packed, ok := deflateBatch(hdr, be.entries); ok {
			buf = append(buf, msgBatch, batchFlagCompressed)
			buf = binary.AppendUvarint(buf, uint64(rawLen))
			return append(buf, packed...), rawLen, len(packed)
		}
	}
	// The body assembles straight into the frame buffer — header and
	// entries are never concatenated anywhere else first.
	buf = append(buf, msgBatch, 0)
	buf = append(buf, hdr...)
	return append(buf, be.entries...), rawLen, rawLen
}

// batchCompressMin is the smallest body worth offering to DEFLATE; tiny
// frames only grow.
const batchCompressMin = 256

// decodeBatchFrame unwraps a batch frame's body (everything after the
// msgBatch kind byte): it validates the flags and, for compressed frames,
// inflates into a fresh buffer bounded by the claimed raw length. The
// returned body either aliases b (raw) or is freshly allocated (inflated);
// inflated reports which, so the caller can recycle the wire buffer early.
func decodeBatchFrame(b []byte) (body []byte, inflated bool, err error) {
	if len(b) < 1 {
		return nil, false, fmt.Errorf("dps: truncated batch frame")
	}
	flags, b := b[0], b[1:]
	if flags&^batchFlagCompressed != 0 {
		return nil, false, fmt.Errorf("dps: unknown batch flags %#x", flags)
	}
	if flags&batchFlagCompressed == 0 {
		return b, false, nil
	}
	rawLen, n := binary.Uvarint(b)
	if n <= 0 || rawLen > maxBatchRaw {
		return nil, false, fmt.Errorf("dps: implausible batch raw length %d", rawLen)
	}
	body, err = inflateBatch(b[n:], int(rawLen))
	if err != nil {
		return nil, false, err
	}
	return body, true, nil
}

// decodeBatch iterates a batch frame body (after decompression), invoking
// fn once per entry in frame order. The entry body passed to fn aliases b.
// Every claimed count and length is validated against the bytes actually
// present before any allocation scales with it.
func decodeBatch(b []byte, fn func(kind byte, stream string, seq uint64, body []byte) error) error {
	nstreams, b, err := readUint64(b)
	if err != nil {
		return err
	}
	if nstreams > maxBatchStreams || nstreams > uint64(len(b)) {
		return fmt.Errorf("dps: implausible batch stream count %d", nstreams)
	}
	streams := make([]string, nstreams)
	for i := range streams {
		if streams[i], b, err = readString(b); err != nil {
			return err
		}
	}
	nentries, b, err := readUint64(b)
	if err != nil {
		return err
	}
	if nentries > maxBatchEntries || nentries > uint64(len(b)) {
		return fmt.Errorf("dps: implausible batch entry count %d", nentries)
	}
	for i := uint64(0); i < nentries; i++ {
		if len(b) < 1 {
			return fmt.Errorf("dps: truncated batch entry")
		}
		kind := b[0]
		b = b[1:]
		var stream string
		var seq uint64
		switch kind {
		case msgToken, msgGroupEnd:
		case msgTokenFT, msgGroupEndFT:
			var idx uint64
			if idx, b, err = readUint64(b); err != nil {
				return err
			}
			if idx >= nstreams {
				return fmt.Errorf("dps: batch stream index %d out of range", idx)
			}
			if seq, b, err = readUint64(b); err != nil {
				return err
			}
			stream = streams[idx]
		default:
			return fmt.Errorf("dps: kind %d is not batchable", kind)
		}
		blen, rest, err := readUint64(b)
		if err != nil {
			return err
		}
		if blen > uint64(len(rest)) {
			return fmt.Errorf("dps: batch entry of %d bytes exceeds frame", blen)
		}
		if err := fn(kind, stream, seq, rest[:blen]); err != nil {
			return err
		}
		b = rest[blen:]
	}
	if len(b) != 0 {
		return fmt.Errorf("dps: %d trailing bytes after batch entries", len(b))
	}
	return nil
}

// --- DEFLATE helpers ------------------------------------------------------

var flateWriterPool = sync.Pool{New: func() any {
	w, _ := flate.NewWriter(io.Discard, flate.BestSpeed)
	return w
}}

// deflateBatch compresses the concatenation of parts (streamed into one
// DEFLATE stream, so callers need not join them first); ok is false when
// compression does not shrink it (the frame then goes out raw).
func deflateBatch(parts ...[]byte) (packed []byte, ok bool) {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	var buf bytes.Buffer
	buf.Grow(total / 2)
	w := flateWriterPool.Get().(*flate.Writer)
	w.Reset(&buf)
	for _, p := range parts {
		if _, err := w.Write(p); err != nil {
			flateWriterPool.Put(w)
			return nil, false
		}
	}
	if err := w.Close(); err != nil {
		flateWriterPool.Put(w)
		return nil, false
	}
	flateWriterPool.Put(w)
	if buf.Len() >= total {
		return nil, false
	}
	return buf.Bytes(), true
}

var flateReaderPool sync.Pool

// inflateBatch decompresses into a buffer of exactly rawLen bytes; a stream
// that inflates to any other size is corrupt.
func inflateBatch(packed []byte, rawLen int) ([]byte, error) {
	var r io.ReadCloser
	if v := flateReaderPool.Get(); v != nil {
		r = v.(io.ReadCloser)
		if err := r.(flate.Resetter).Reset(bytes.NewReader(packed), nil); err != nil {
			return nil, err
		}
	} else {
		r = flate.NewReader(bytes.NewReader(packed))
	}
	defer flateReaderPool.Put(r)
	out := make([]byte, rawLen)
	if _, err := io.ReadFull(r, out); err != nil {
		return nil, fmt.Errorf("dps: corrupt batch body: %w", err)
	}
	// One more read must report EOF, or the stream holds more than claimed.
	var one [1]byte
	if n, err := r.Read(one[:]); n != 0 || err != io.EOF {
		return nil, fmt.Errorf("dps: batch body larger than claimed %d bytes", rawLen)
	}
	return out, nil
}
