package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/core/flowctl"
)

// This file is the engine's groups layer: the lifecycle of split–merge (and
// stream) groups. The split side tracks each open group in a groupTable —
// its flow-control gate, posted count and paired merge instance — until the
// opener finished and every token was acknowledged; the merge side buffers
// arriving tokens per group on the destination thread instance until the
// collector execution consumes them and the group-end total arrives.

// groupTable is the split-side registry of open groups on one node.
type groupTable struct {
	nodeIdx int
	seq     atomic.Uint64

	mu     sync.Mutex
	splits map[uint64]*splitGroup
}

func (gt *groupTable) init(nodeIdx int) {
	gt.nodeIdx = nodeIdx
	gt.splits = make(map[uint64]*splitGroup)
}

// open registers a new group opened by the graph node opener, flow
// controlled by a fresh gate of the given policy.
func (gt *groupTable) open(g *Flowgraph, opener int, policy flowctl.Policy) *splitGroup {
	id := uint64(gt.nodeIdx)<<48 | (gt.seq.Add(1) & (1<<48 - 1))
	sg := &splitGroup{
		id:          id,
		graph:       g,
		opener:      opener,
		closer:      g.closerOf[opener],
		gate:        policy.NewGate(),
		mergeThread: -1,
	}
	gt.mu.Lock()
	gt.splits[id] = sg
	gt.mu.Unlock()
	return sg
}

func (gt *groupTable) lookup(id uint64) *splitGroup {
	gt.mu.Lock()
	defer gt.mu.Unlock()
	return gt.splits[id]
}

func (gt *groupTable) remove(id uint64) {
	gt.mu.Lock()
	delete(gt.splits, id)
	gt.mu.Unlock()
}

func (gt *groupTable) all() []*splitGroup {
	gt.mu.Lock()
	defer gt.mu.Unlock()
	out := make([]*splitGroup, 0, len(gt.splits))
	for _, sg := range gt.splits {
		out = append(out, sg)
	}
	return out
}

// splitGroup is the split-side state of one open group: the flow-control
// gate and the identity of the paired merge instance.
type splitGroup struct {
	id     uint64
	graph  *Flowgraph
	opener int // graph node that opened the group
	closer int // paired merge/stream node
	gate   flowctl.Gate

	mu          sync.Mutex
	posted      int
	done        bool // opener's execute returned
	mergeThread int  // -1 until the first token fixes the instance
}

// mergeGroup is the merge-side state of one group on a thread instance.
type mergeGroup struct {
	mu   sync.Mutex
	cond *sync.Cond

	buf      []bufferedToken
	started  bool
	consumed int
	total    int // -1 while unknown
}

type bufferedToken struct {
	tok        Token
	lastWorker int
	creditNode int
	origin     string
	groupID    uint64
}

func newMergeGroup() *mergeGroup {
	mg := &mergeGroup{total: -1}
	mg.cond = sync.NewCond(&mg.mu)
	return mg
}

// openGroup creates and registers the split-side state for a split/stream
// execution starting on this node.
func (rt *Runtime) openGroup(g *Flowgraph, opener int) *splitGroup {
	sg := rt.groups.open(g, opener, rt.policy)
	rt.stats.groupsOpened.Add(1)
	return sg
}

// finishOpener closes the group opened by a split or stream execution:
// announces the total to the paired merge instance and enforces the
// at-least-one-token rule.
func (rt *Runtime) finishOpener(c *Ctx) {
	sg := c.sg
	if sg == nil {
		return
	}
	sg.mu.Lock()
	posted := sg.posted
	mergeThread := sg.mergeThread
	sg.done = true
	sg.mu.Unlock()
	if posted == 0 {
		panic(opError{fmt.Errorf("dps: %s %q posted no tokens for its group", c.node.op.kind, c.node.op.name)})
	}
	closerNode := sg.graph.nodes[sg.closer]
	end := &groupEndMsg{
		Graph:   sg.graph.name,
		Node:    sg.closer,
		Thread:  mergeThread,
		GroupID: sg.id,
		Total:   posted,
	}
	target, err := closerNode.tc.NodeOf(mergeThread)
	if err != nil {
		panic(opError{err})
	}
	rt.lnk.sendGroupEnd(target, end)
	rt.maybeReapSplit(sg)
}

// maybeReapSplit discards a group's split-side state once the opener
// finished and every posted token was acknowledged.
func (rt *Runtime) maybeReapSplit(sg *splitGroup) {
	sg.mu.Lock()
	done := sg.done
	sg.mu.Unlock()
	if done && sg.gate.Quiescent() {
		rt.groups.remove(sg.id)
	}
}

// deliverToGroup buffers a token for (or starts) the merge/stream execution
// of its group on the destination thread.
func (rt *Runtime) deliverToGroup(inst *threadInstance, g *Flowgraph, node *GraphNode, env *envelope) {
	fr, ok := env.topFrame()
	if !ok {
		rt.app.fail(fmt.Errorf("dps: token reached %s %q with an empty frame stack", node.op.kind, node.op.name))
		return
	}
	inst.mu.Lock()
	mg, ok := inst.groups[fr.GroupID]
	if !ok {
		mg = newMergeGroup()
		inst.groups[fr.GroupID] = mg
	}
	inst.mu.Unlock()

	bt := bufferedToken{
		tok:        env.Token,
		lastWorker: env.LastWorker,
		creditNode: env.CreditNode,
		origin:     fr.Origin,
		groupID:    fr.GroupID,
	}
	mg.mu.Lock()
	if !mg.started {
		mg.started = true
		mg.mu.Unlock()
		inst.exec.Enqueue(workItem{inst: inst, g: g, node: node, env: env, bt: bt, mg: mg, collector: true})
		return
	}
	mg.buf = append(mg.buf, bt)
	mg.cond.Broadcast()
	mg.mu.Unlock()
	// The token and accounting fields now live in bt; the wrapper is free.
	putEnvelope(env)
}

// ackConsumed notifies the split-side node that one token of a group has
// been consumed by the merge, releasing flow-control window space and
// load-balancing credits.
func (rt *Runtime) ackConsumed(bt bufferedToken) {
	rt.stats.acksSent.Add(1)
	m := ackMsg{GroupID: bt.groupID, Worker: bt.lastWorker, RouteNode: bt.creditNode}
	if err := rt.lnk.sendAck(bt.origin, m); err != nil {
		rt.app.fail(err)
	}
}

// handleAck applies one consumption acknowledgement: one gate slot returns,
// the group may be reaped, and the charged leaf thread's credit is
// released.
func (rt *Runtime) handleAck(m ackMsg) {
	sg := rt.groups.lookup(m.GroupID)
	if sg == nil {
		return
	}
	sg.gate.Release()
	rt.maybeReapSplit(sg)
	if m.RouteNode >= 0 && m.RouteNode < len(sg.graph.nodes) {
		threads := sg.graph.nodes[m.RouteNode].tc.ThreadCount()
		rt.credit(sg.graph.name, m.RouteNode, threads).Release(m.Worker)
	}
}

// handleGroupEnd records a group's announced total on the merge-side state,
// waking the collector execution blocked in next.
func (rt *Runtime) handleGroupEnd(m *groupEndMsg) {
	g, ok := rt.app.Graph(m.Graph)
	if !ok {
		rt.app.fail(fmt.Errorf("dps: group-end for unknown graph %q", m.Graph))
		return
	}
	node := g.nodes[m.Node]
	inst, err := rt.instance(node.tc, m.Thread)
	if err != nil {
		rt.app.fail(err)
		return
	}
	inst.mu.Lock()
	mg, ok := inst.groups[m.GroupID]
	if !ok {
		mg = newMergeGroup()
		inst.groups[m.GroupID] = mg
	}
	inst.mu.Unlock()
	mg.mu.Lock()
	mg.total = m.Total
	mg.cond.Broadcast()
	mg.mu.Unlock()
}
