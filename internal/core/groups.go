package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/core/flowctl"
	"repro/internal/core/place"
)

// This file is the engine's groups layer: the lifecycle of split–merge (and
// stream) groups. The split side tracks each open group in a groupTable —
// its flow-control gate, posted count and paired merge instance — until the
// opener finished and every token was acknowledged; the merge side buffers
// arriving tokens per group on the destination thread instance until the
// collector execution consumes them and the group-end total arrives.

// groupTable is the split-side registry of open groups on one node.
type groupTable struct {
	nodeIdx int
	seq     atomic.Uint64

	mu     sync.Mutex
	splits map[uint64]*splitGroup
}

func (gt *groupTable) init(nodeIdx int) {
	gt.nodeIdx = nodeIdx
	gt.splits = make(map[uint64]*splitGroup)
}

// open registers a new group opened by the graph node opener, flow
// controlled by a fresh gate of the given policy.
func (gt *groupTable) open(g *Flowgraph, opener int, policy flowctl.Policy) *splitGroup {
	id := uint64(gt.nodeIdx)<<48 | (gt.seq.Add(1) & (1<<48 - 1))
	sg := &splitGroup{
		id:          id,
		graph:       g,
		opener:      opener,
		closer:      g.closerOf[opener],
		gate:        policy.NewGate(),
		mergeThread: -1,
	}
	gt.mu.Lock()
	gt.splits[id] = sg
	gt.mu.Unlock()
	return sg
}

// remove deletes a group, reporting whether it was still registered (so a
// racing reap runs its side effects exactly once).
func (gt *groupTable) remove(id uint64) bool {
	gt.mu.Lock()
	_, ok := gt.splits[id]
	delete(gt.splits, id)
	gt.mu.Unlock()
	return ok
}

func (gt *groupTable) lookup(id uint64) *splitGroup {
	gt.mu.Lock()
	defer gt.mu.Unlock()
	return gt.splits[id]
}

func (gt *groupTable) all() []*splitGroup {
	gt.mu.Lock()
	defer gt.mu.Unlock()
	out := make([]*splitGroup, 0, len(gt.splits))
	for _, sg := range gt.splits {
		out = append(out, sg)
	}
	return out
}

// splitGroup is the split-side state of one open group: the flow-control
// gate and the identity of the paired merge instance.
type splitGroup struct {
	id     uint64
	graph  *Flowgraph
	opener int // graph node that opened the group
	closer int // paired merge/stream node
	gate   flowctl.Gate

	// callID identifies the invocation the group belongs to; outerAck is
	// the enclosing group's frame the opener's input token carried, owed
	// exactly once by this group's subtree. In normal operation the paired
	// merge's output token delivers it downstream; if the call is canceled
	// the reap of this group fires it directly, so nested cancellations
	// release the outer window slot too.
	callID   uint64
	outerAck *bufferedToken

	mu          sync.Mutex
	posted      int
	done        bool // opener's execute returned
	mergeThread int  // -1 until the first token fixes the instance
}

// mergeGroup is the merge-side state of one group on a thread instance.
type mergeGroup struct {
	// callID identifies the invocation the group belongs to, so the
	// cancellation sweep can retire never-started groups.
	callID uint64

	mu   sync.Mutex
	cond *sync.Cond

	buf      []bufferedToken
	started  bool
	consumed int
	total    int // -1 while unknown
}

type bufferedToken struct {
	tok        Token
	lastWorker int
	creditNode int
	origin     string
	groupID    uint64
	// ftStream / ftSeq carry the token's sender-stream identity when fault
	// tolerance is enabled, so consumption on the master node can truncate
	// the sender's retention log (the ack-driven GC hook).
	ftStream string
	ftSeq    uint64
}

func newMergeGroup(callID uint64) *mergeGroup {
	mg := &mergeGroup{callID: callID, total: -1}
	mg.cond = sync.NewCond(&mg.mu)
	return mg
}

// openGroup creates and registers the split-side state for a split/stream
// execution starting on this node, remembering the enclosing frame of the
// opener's input token for cancellation accounting. For a split that frame
// is the input's top frame (the closer merge pops the split's own frame,
// leaving it on top of the output); a stream's input top frame is the group
// the stream itself collects — its subtree carries the frame *below* it
// onward (postOut's KindStream branch), so that one is recorded instead.
func (rt *Runtime) openGroup(c *Ctx, opener int) *splitGroup {
	sg := rt.groups.open(c.graph, opener, rt.policy)
	sg.callID = c.callID
	var outer *frame
	switch c.node.op.kind {
	case KindStream:
		if n := len(c.env.Frames); n >= 2 {
			outer = &c.env.Frames[n-2]
		}
	default:
		if fr, ok := c.env.topFrame(); ok {
			outer = fr
		}
	}
	if outer != nil {
		// The closer output that would normally carry this frame onward
		// has LastWorker/CreditNode unset, so the cancellation ack matches.
		sg.outerAck = &bufferedToken{
			lastWorker: -1,
			creditNode: -1,
			origin:     outer.Origin,
			groupID:    outer.GroupID,
		}
	}
	rt.stats.groupsOpened.Add(1)
	return sg
}

// finishOpener closes the group opened by a split or stream execution:
// announces the total to the paired merge instance and enforces the
// at-least-one-token rule.
func (rt *Runtime) finishOpener(c *Ctx) {
	sg := c.sg
	if sg == nil {
		return
	}
	sg.mu.Lock()
	posted := sg.posted
	mergeThread := sg.mergeThread
	sg.done = true
	sg.mu.Unlock()
	if posted == 0 {
		panic(opError{fmt.Errorf("dps: %s %q posted no tokens for its group", c.node.op.kind, c.node.op.name)})
	}
	closerNode := sg.graph.nodes[sg.closer]
	end := &groupEndMsg{
		Graph:   sg.graph.name,
		Node:    sg.closer,
		Thread:  mergeThread,
		GroupID: sg.id,
		Total:   posted,
		CallID:  c.callID,
	}
	rt.routeGroupEnd(end, closerNode.tc, mergeThread, c.inst.ft, c.env.FTStream, c.env.FTSeq)
	rt.maybeReapSplit(sg)
}

// maybeReapSplit discards a group's split-side state once the opener
// finished and every posted token was acknowledged. For a canceled call
// the reap also settles the group's debt to its enclosing group: the merge
// output that would have carried the outer frame onward will never exist
// (or was dropped before the outer merge consumed it), so the outer window
// slot is acknowledged here, letting nested cancellations unwind bottom-up.
// (If the paired merge managed to emit its output in the instant before
// cancellation, the outer frame can be acknowledged twice; gates clamp at
// zero and the call is abandoned, so the transient over-release is benign.)
func (rt *Runtime) maybeReapSplit(sg *splitGroup) {
	sg.mu.Lock()
	done := sg.done
	sg.mu.Unlock()
	if done && sg.gate.Quiescent() {
		if rt.groups.remove(sg.id) {
			if sg.outerAck != nil && rt.app.callAborted(sg.callID) {
				rt.ackConsumed(*sg.outerAck)
			}
		}
	}
}

// deliverToGroup buffers a token for (or starts) the merge/stream execution
// of its group on the destination thread.
func (rt *Runtime) deliverToGroup(inst *threadInstance, g *Flowgraph, node *GraphNode, env *envelope) {
	fr, ok := env.topFrame()
	if !ok {
		rt.app.fail(fmt.Errorf("dps: token reached %s %q with an empty frame stack", node.op.kind, node.op.name))
		return
	}
	inst.mu.Lock()
	mg, ok := inst.groups[fr.GroupID]
	if !ok {
		mg = newMergeGroup(env.CallID)
		inst.groups[fr.GroupID] = mg
	}
	inst.mu.Unlock()

	bt := bufferedToken{
		tok:        env.Token,
		lastWorker: env.LastWorker,
		creditNode: env.CreditNode,
		origin:     fr.Origin,
		groupID:    fr.GroupID,
		ftStream:   env.FTStream,
		ftSeq:      env.FTSeq,
	}
	mg.mu.Lock()
	if !mg.started {
		mg.started = true
		mg.mu.Unlock()
		inst.inflight.Add(1)
		inst.exec.Enqueue(workItem{inst: inst, g: g, node: node, env: env, bt: bt, mg: mg, collector: true})
		return
	}
	mg.buf = append(mg.buf, bt)
	mg.cond.Broadcast()
	mg.mu.Unlock()
	// The token and accounting fields now live in bt; the wrapper is free.
	putEnvelope(env)
}

// ackConsumed notifies the split-side node that one token of a group has
// been consumed by the merge, releasing flow-control window space and
// load-balancing credits.
func (rt *Runtime) ackConsumed(bt bufferedToken) {
	rt.stats.acksSent.Add(1)
	m := ackMsg{GroupID: bt.groupID, Worker: bt.lastWorker, RouteNode: bt.creditNode}
	if err := rt.lnk.sendAck(bt.origin, m); err != nil {
		rt.failApp(err)
	}
}

// dropEnvelope discards a token of a canceled call. Its top frame is
// acknowledged exactly as if the paired merge had consumed it, so the
// split-side window slot and load-balancing credit release and the group
// can be reaped; the call's entry token (no frames yet) needs no ack.
func (rt *Runtime) dropEnvelope(env *envelope) {
	if fr, ok := env.topFrame(); ok {
		rt.ackConsumed(bufferedToken{
			lastWorker: env.LastWorker,
			creditNode: env.CreditNode,
			origin:     fr.Origin,
			groupID:    fr.GroupID,
		})
	}
	putEnvelope(env)
}

// retireMergeGroup dismantles the merge-side state of a canceled call's
// group: buffered tokens are acknowledged (their window slots must not stay
// occupied) and the instance's group entry is removed. Idempotent — the
// collector unwind and a late group-end may both retire the same group.
func (rt *Runtime) retireMergeGroup(inst *threadInstance, mg *mergeGroup, groupID uint64) {
	mg.mu.Lock()
	buf := mg.buf
	mg.buf = nil
	mg.mu.Unlock()
	for _, bt := range buf {
		rt.ackConsumed(bt)
	}
	inst.mu.Lock()
	if inst.groups[groupID] == mg {
		delete(inst.groups, groupID)
	}
	inst.mu.Unlock()
}

// handleAck applies one consumption acknowledgement: one gate slot returns,
// the group may be reaped, and the charged leaf thread's credit is
// released.
func (rt *Runtime) handleAck(m ackMsg) {
	sg := rt.groups.lookup(m.GroupID)
	if sg == nil {
		return
	}
	sg.gate.Release()
	rt.maybeReapSplit(sg)
	if m.RouteNode >= 0 && m.RouteNode < len(sg.graph.nodes) {
		threads := sg.graph.nodes[m.RouteNode].tc.ThreadCount()
		rt.credit(sg.graph.name, m.RouteNode, threads).Release(m.Worker)
	}
}

// handleGroupEnd records a group's announced total on the merge-side state,
// waking the collector execution blocked in next. Group-ends of canceled
// calls retire the merge-side state instead of leaving state no collector
// will ever consume; a cancellation landing after the check below is
// settled by cancelCall's wakeBlocked sweep, which retires groups by their
// recorded call ID. Like tokens, group-ends pass the placement intercepts
// once this node has participated in a live remap.
func (rt *Runtime) handleGroupEnd(m *groupEndMsg, src string) {
	g, ok := rt.app.Graph(m.Graph)
	if !ok {
		rt.failApp(fmt.Errorf("dps: group-end for unknown graph %q", m.Graph))
		return
	}
	node := g.nodes[m.Node]
	if rt.place.active.Load() != 0 {
		key := place.Key{Collection: node.tc.Name(), Thread: m.Thread}
		if rt.placeIntercept(key, placeItem{src: src, ge: m, node: node}) {
			return
		}
	}
	rt.applyGroupEnd(node, m)
}

// applyGroupEnd delivers a group-end to its resolved destination node's
// local merge-side state, past the placement intercepts. Sequenced
// announcements already processed are failover-replay duplicates and drop
// here, mirroring dispatchToken.
func (rt *Runtime) applyGroupEnd(node *GraphNode, m *groupEndMsg) {
	inst, err := rt.instance(node.tc, m.Thread)
	if err != nil {
		rt.failApp(err)
		return
	}
	if m.FTSeq > 0 && inst.ft != nil && !inst.ft.CheckIn(m.FTStream, m.FTSeq) {
		return
	}
	inst.mu.Lock()
	mg, ok := inst.groups[m.GroupID]
	if !ok {
		mg = newMergeGroup(m.CallID)
		inst.groups[m.GroupID] = mg
	}
	inst.mu.Unlock()
	mg.mu.Lock()
	mg.total = m.Total
	mg.cond.Broadcast()
	mg.mu.Unlock()
	if rt.app.callAborted(m.CallID) {
		rt.retireMergeGroup(inst, mg, m.GroupID)
	}
}
