package core

import (
	"bytes"
	"testing"
)

// TestTracedHeaderRoundTrip pins the msgTraced wrapper codec: the trace
// context survives the wire and the inner frame comes back byte-identical,
// starting at its own kind byte.
func TestTracedHeaderRoundTrip(t *testing.T) {
	inner := []byte{msgToken, 0x01, 0x02, 0x03, 0x04}
	frame := appendTracedHeader(nil, 0xdeadbeefcafe, -12345)
	frame = append(frame, inner...)
	if frame[0] != msgTraced {
		t.Fatalf("kind byte = %d, want msgTraced (%d)", frame[0], msgTraced)
	}
	id, sentNs, got, err := decodeTracedHeader(frame[1:])
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if id != 0xdeadbeefcafe {
		t.Errorf("trace id = %#x, want %#x", id, uint64(0xdeadbeefcafe))
	}
	if sentNs != -12345 {
		t.Errorf("sentNs = %d, want -12345", sentNs)
	}
	if !bytes.Equal(got, inner) {
		t.Errorf("inner frame = %x, want %x", got, inner)
	}
}

// TestTracedHeaderTruncation: every strict prefix of the header must fail to
// decode rather than yield a bogus context or an empty inner frame. The
// trace id forces a multi-byte uvarint so mid-varint cuts are exercised.
func TestTracedHeaderTruncation(t *testing.T) {
	header := appendTracedHeader(nil, 1<<60, 1<<50)
	frame := append(append([]byte{}, header...), msgToken, 0x09)
	for n := 1; n <= len(header); n++ {
		if _, _, _, err := decodeTracedHeader(frame[1:n]); err == nil {
			t.Errorf("truncated body of %d bytes decoded without error", n-1)
		}
	}
	if _, _, inner, err := decodeTracedHeader(frame[1:]); err != nil || len(inner) != 2 {
		t.Fatalf("full frame: inner=%x err=%v", inner, err)
	}
}
