package core

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core/ft"
	"repro/internal/core/place"
)

// This file is the engine half of the placement layer (internal/core/place):
// the live-remap protocol that moves one thread instance between cluster
// nodes while flow graphs execute. The protocol, coordinated by
// App.migrateThread on the caller's goroutine:
//
//  1. quiesce — the old owner stops accepting new work for the instance
//     (arrivals are held by a relay), lets queued and in-progress
//     executions drain, and waits for open merge groups to close (tokens
//     and group-ends of already-open groups pass through the hold so the
//     collector can finish);
//  2. capture — the instance's user state is serialized with internal/serial
//     and the instance removed, so it cannot be resurrected locally;
//  3. flip + fence — the collection's placement table is updated (epoch
//     bump) while every runtime's route lock for the thread is held, and
//     each runtime emits a fence pair: a closing fence down its old channel
//     (behind all its stale tokens; the relay forwards it) and an opening
//     fence down the new channel (ahead of all its direct tokens). The new
//     owner buffers a sender's direct tokens between the two fences, which
//     is exactly when stale tokens of that sender may still be in flight —
//     per-instance FIFO order survives the route change;
//  4. ship + forward — the state travels in a migration envelope
//     (msgMigrate) to the new owner, the relay flushes its held arrivals
//     behind it and forwards any later stale traffic (counted as
//     TokensForwarded).
//
// Flow-control accounting needs no migration: window acks route to the
// frame's origin node (split-side group state stays put) and forwarded
// envelopes keep their LastWorker/CreditNode charge, so acknowledgements
// release the same window slots and credits as before the move.
//
// The new owner installs the state on msgMigrate, drains the arrivals it
// buffered while the migration was in flight, and serves the thread from
// then on.

// placeItem is one intercepted arrival: a token envelope (with its resolved
// graph node), a group-end, or a fence, plus the transport-level source it
// arrived from (fence gating is per sender).
type placeItem struct {
	src   string
	env   *envelope
	g     *Flowgraph
	node  *GraphNode
	ge    *groupEndMsg
	fence *fenceMsg
}

// relayEntry pairs a relay with the placement epoch observed when its hold
// began: fences carrying a later epoch belong to the migration in progress
// and travel with the held stream; earlier ones are stragglers of past
// migrations and terminate here.
type relayEntry struct {
	relay      *place.Relay
	startEpoch uint64
}

// placeState is a runtime's migration bookkeeping. The zero value is ready;
// the hot paths consult only the sticky `active` flag until this node first
// participates in a migration.
type placeState struct {
	active atomic.Int32
	gates  place.Gates

	// fastRoutes counts this runtime's posts inside the pre-migration
	// routing fast path (see routeFast).
	fastRoutes atomic.Int64

	mu        sync.Mutex
	relays    map[place.Key]*relayEntry
	pending   map[place.Key][]placeItem
	ownEpoch  map[place.Key]uint64        // epoch at which this node (re)gained the instance
	installed map[place.Key]chan struct{} // closed when the inbound migration activates
	fences    map[place.Key]*fenceQuota   // handshake completions of the inbound migration

	routeMu    sync.Mutex
	routeLocks map[place.Key]*sync.Mutex
}

func (ps *placeState) ownEpochOf(key place.Key) uint64 {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return ps.ownEpoch[key]
}

// fenceQuota tracks how many of the fence pairs cut for the migration that
// brought an instance here have terminally completed. Until done reaches
// expected, a stale token of that migration may still be in flight through
// some relay chain, so the instance must not migrate onward (a later flip
// would let fresher traffic overtake the stragglers).
type fenceQuota struct {
	epoch    uint64
	expected int
	done     int
}

// --- sender side: fenced routing ----------------------------------------

// routeToken resolves the node hosting tc[thread] and sends env there. Once
// any migration has started in the application, resolve+send serialize per
// destination thread with the coordinator's fence emission, so no post can
// straddle a placement flip (resolving the old owner but sending after the
// closing fence). Failures propagate as opError panics, like sendToken.
func (rt *Runtime) routeToken(env *envelope, tc *ThreadCollection, thread int) {
	if rt.routeFast() {
		defer rt.routeFastDone()
		target, err := tc.NodeOf(thread)
		if err != nil {
			panic(opError{err})
		}
		rt.lnk.sendToken(env, target)
		return
	}
	mu := rt.routeLock(place.Key{Collection: tc.Name(), Thread: thread})
	mu.Lock()
	defer mu.Unlock()
	target, err := tc.NodeOf(thread)
	if err != nil {
		panic(opError{err})
	}
	if rt.app.ftOn {
		// Stamp, retain and send atomically per destination: the receiver's
		// duplicate filter needs sequence order to match send order.
		rt.ftOutbound(env, tc.Name(), thread)
	}
	rt.lnk.sendToken(env, target)
}

// routeGroupEnd is routeToken for group-end announcements; sender is the
// opener instance's fault-tolerance state and inStream/inSeq identify the
// opener's input (all zero with the layer off).
func (rt *Runtime) routeGroupEnd(m *groupEndMsg, tc *ThreadCollection, thread int, sender *ft.State, inStream string, inSeq uint64) {
	if rt.routeFast() {
		defer rt.routeFastDone()
		target, err := tc.NodeOf(thread)
		if err != nil {
			panic(opError{err})
		}
		rt.lnk.sendGroupEnd(target, m)
		return
	}
	mu := rt.routeLock(place.Key{Collection: tc.Name(), Thread: thread})
	mu.Lock()
	defer mu.Unlock()
	target, err := tc.NodeOf(thread)
	if err != nil {
		panic(opError{err})
	}
	if rt.app.ftOn {
		rt.ftOutboundGroupEnd(m, sender, inStream, inSeq, tc.Name(), thread)
	}
	rt.lnk.sendGroupEnd(target, m)
}

// routeSafe is routeToken for non-operation goroutines (graph calls),
// converting the panic-based error propagation into an error return.
func (rt *Runtime) routeSafe(env *envelope, tc *ThreadCollection, thread int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if oe, ok := r.(opError); ok {
				err = oe.err
				return
			}
			panic(r)
		}
	}()
	rt.routeToken(env, tc, thread)
	return nil
}

// routeLock returns this runtime's per-destination-thread route mutex,
// creating it on first use (slow path only — the fast path never gets here).
func (rt *Runtime) routeLock(key place.Key) *sync.Mutex {
	ps := &rt.place
	ps.routeMu.Lock()
	defer ps.routeMu.Unlock()
	if ps.routeLocks == nil {
		ps.routeLocks = make(map[place.Key]*sync.Mutex)
	}
	mu, ok := ps.routeLocks[key]
	if !ok {
		mu = new(sync.Mutex)
		ps.routeLocks[key] = mu
	}
	return mu
}

// routeFast reports whether the lock-free routing fast path may be used;
// when it reports true the caller must invoke routeFastDone after sending.
// The in-flight count lives on the posting runtime — not the App — so the
// no-migration hot path touches one per-node cache line plus a read-only
// global flag instead of contending app-wide. The counter makes the
// one-time switchover sound: the coordinator flips migrActive and waits
// out posts already inside the fast path on every runtime, after which
// every post serializes on the route locks.
func (rt *Runtime) routeFast() bool {
	rt.place.fastRoutes.Add(1)
	if rt.app.migrActive.Load() == 0 && !rt.app.ftOn {
		// Fault tolerance serializes posts like migrations do (sequence
		// stamping must be atomic with the send, per destination).
		return true
	}
	rt.place.fastRoutes.Add(-1)
	return false
}

func (rt *Runtime) routeFastDone() { rt.place.fastRoutes.Add(-1) }

// enableSlowRouting permanently switches the application's posts onto the
// per-key route locks, waiting out posts still running the fast path.
func (app *App) enableSlowRouting() {
	if app.migrActive.Swap(1) != 0 {
		return
	}
	for _, rt := range app.allRuntimes() {
		for rt.place.fastRoutes.Load() != 0 {
			time.Sleep(20 * time.Microsecond)
		}
	}
}

// --- receiver side: intercepts ------------------------------------------

// placeIntercept runs one non-fence arrival through the placement state
// machines, in order: the relay of an instance that migrated away
// (forwarding mode), the fence gates (a sender's direct tokens buffer
// between its opening and forwarded closing fence), the relay of an
// instance quiescing here (hold, with pass-through for open merge groups),
// and the pending buffer of an inbound migration whose state has not
// arrived yet. It reports whether the item was consumed; otherwise the
// caller dispatches it normally.
func (rt *Runtime) placeIntercept(key place.Key, it placeItem) bool {
	ps := &rt.place
	ps.mu.Lock()
	re := ps.relays[key]
	ps.mu.Unlock()
	if re != nil && re.relay.Target() != "" {
		target, held := re.relay.Offer(it)
		if !held {
			rt.forwardItem(it, target)
		}
		return true
	}
	if rt.place.gates.Offer(key, it.src, ps.ownEpochOf(key), it) {
		return true
	}
	ps.mu.Lock()
	if re := ps.relays[key]; re != nil {
		if re.relay.Target() == "" && rt.holdPassThrough(key, it) {
			ps.mu.Unlock()
			return false // open merge group: the collector needs it to quiesce
		}
		target, held := re.relay.Offer(it)
		ps.mu.Unlock()
		if !held {
			rt.forwardItem(it, target)
		}
		return true
	}
	if pend, ok := ps.pending[key]; ok {
		ps.pending[key] = append(pend, it)
		ps.mu.Unlock()
		return true
	}
	ps.mu.Unlock()
	return false
}

// holdPassThrough reports whether an arrival held by a quiescing relay must
// instead pass through: tokens and group-ends of a merge group already open
// on the local instance are needed for its collector to finish (holding
// them would deadlock the quiesce against its own drain condition).
func (rt *Runtime) holdPassThrough(key place.Key, it placeItem) bool {
	var groupID uint64
	switch {
	case it.env != nil:
		if it.node.op.kind != KindMerge && it.node.op.kind != KindStream {
			return false
		}
		fr, ok := it.env.topFrame()
		if !ok {
			return false
		}
		groupID = fr.GroupID
	case it.ge != nil:
		groupID = it.ge.GroupID
	default:
		return false
	}
	inst := rt.lookupInstance(instKey{collection: key.Collection, index: key.Thread})
	if inst == nil {
		return false
	}
	inst.mu.Lock()
	_, open := inst.groups[groupID]
	inst.mu.Unlock()
	return open
}

// forwardItem re-sends an arrival to the instance's current owner on behalf
// of a relay. Send failures are application failures (the transport to a
// live peer broke), matching handler-context error handling.
func (rt *Runtime) forwardItem(it placeItem, target string) {
	defer func() {
		if r := recover(); r != nil {
			if oe, ok := r.(opError); ok {
				rt.app.fail(oe.err)
				return
			}
			panic(r)
		}
	}()
	switch {
	case it.env != nil:
		rt.stats.tokensForwarded.Add(1)
		if it.env.TraceID != 0 {
			rt.traceSpan(it.env.TraceID, "forward", target, time.Now().UnixNano(), 0)
		}
		rt.lnk.sendToken(it.env, target)
	case it.ge != nil:
		rt.stats.tokensForwarded.Add(1)
		rt.lnk.sendGroupEnd(target, it.ge)
	case it.fence != nil:
		if err := rt.lnk.sendFence(target, it.fence); err != nil {
			rt.app.fail(err)
		}
	}
}

// deliverDirect dispatches an arrival to the local instance, bypassing the
// placement intercepts (used for items released from gates or drained from
// the pending buffer — their ordering has already been decided).
func (rt *Runtime) deliverDirect(it placeItem) {
	switch {
	case it.env != nil:
		rt.dispatchToken(it.g, it.node, it.env)
	case it.ge != nil:
		rt.applyGroupEnd(it.node, it.ge)
	case it.fence != nil:
		rt.applyFence(it.fence)
	}
}

// deliverFence routes one arriving fence: down the chain when the instance
// migrated away, with the held stream when it belongs to the migration
// currently quiescing here, into the pending buffer before activation, and
// into the sender's gate otherwise.
func (rt *Runtime) deliverFence(m *fenceMsg) {
	ps := &rt.place
	ps.active.Store(1)
	key := place.Key{Collection: m.Collection, Thread: m.Thread}
	it := placeItem{src: m.Src, fence: m}
	ps.mu.Lock()
	if re := ps.relays[key]; re != nil {
		if re.relay.Target() != "" || m.Epoch > re.startEpoch {
			// Not ours to terminate: a forwarding relay passes every fence
			// onward; a holding relay passes the in-progress migration's
			// fences (epoch beyond its hold snapshot) with the held stream.
			target, held := re.relay.Offer(it)
			ps.mu.Unlock()
			if !held {
				rt.forwardItem(it, target)
			}
			return
		}
	}
	if pend, ok := ps.pending[key]; ok {
		ps.pending[key] = append(pend, it)
		ps.mu.Unlock()
		return
	}
	ps.mu.Unlock()
	rt.applyFence(m)
}

// applyFence terminates a fence at this node: it feeds the sender's gate,
// releasing the buffered direct tokens once both fence halves have arrived.
// If the instance is quiescing here (relay holding), released items rejoin
// the protocol at the hold stage — they are new work for the next owner,
// ordered behind the stale stream that preceded the closing fence.
func (rt *Runtime) applyFence(m *fenceMsg) {
	key := place.Key{Collection: m.Collection, Thread: m.Thread}
	deliver := func(item any) {
		pi := item.(placeItem)
		ps := &rt.place
		ps.mu.Lock()
		re := ps.relays[key]
		if re != nil && re.relay.Target() == "" && rt.holdPassThrough(key, pi) {
			re = nil
		}
		ps.mu.Unlock()
		if re != nil {
			if target, held := re.relay.Offer(pi); !held {
				rt.forwardItem(pi, target)
			}
			return
		}
		rt.deliverDirect(pi)
	}
	completed := rt.place.gates.OnFence(key, m.Src, m.Epoch, place.FencePhase(m.Phase), deliver)
	if completed {
		ps := &rt.place
		ps.mu.Lock()
		if fq := ps.fences[key]; fq != nil && fq.epoch == m.Epoch {
			fq.done++
		}
		ps.mu.Unlock()
	}
}

// --- old-owner side: hold, quiesce, capture -----------------------------

// beginHold installs a holding relay for the instance, so new arrivals stop
// reaching it while it quiesces.
func (rt *Runtime) beginHold(key place.Key, startEpoch uint64) (*relayEntry, error) {
	ps := &rt.place
	ps.active.Store(1)
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if _, ok := ps.relays[key]; ok {
		return nil, fmt.Errorf("dps: thread %s is already migrating", key)
	}
	if ps.relays == nil {
		ps.relays = make(map[place.Key]*relayEntry)
	}
	re := &relayEntry{relay: new(place.Relay), startEpoch: startEpoch}
	ps.relays[key] = re
	return re, nil
}

// abortHold rolls a failed migration back: the relay is removed and its
// held arrivals re-dispatched locally in order (the placement never
// flipped, so this node still owns the instance).
func (rt *Runtime) abortHold(key place.Key, re *relayEntry) {
	ps := &rt.place
	ps.mu.Lock()
	delete(ps.relays, key)
	ps.mu.Unlock()
	for _, item := range re.relay.Abort() {
		rt.deliverDirect(item.(placeItem))
	}
}

// instanceIdle reports whether the quiescing instance has fully drained: no
// execution queued or in flight, no open merge group, and no outstanding
// fence handshake from the migration that brought the instance here. The
// fence quota is the load-bearing half of that last condition: only once
// every sender's fence pair has terminally completed at this node is it
// certain that no stale token of the previous epoch is still in flight
// through a relay chain — a premature onward flip would let fresh traffic
// overtake those stragglers and break per-instance FIFO order.
func (rt *Runtime) instanceIdle(key place.Key) bool {
	ps := &rt.place
	ps.mu.Lock()
	if fq := ps.fences[key]; fq != nil && fq.done < fq.expected {
		ps.mu.Unlock()
		return false
	}
	ps.mu.Unlock()
	own := rt.place.ownEpochOf(key)
	if rt.place.gates.PendingFor(key, own, func(item any) { rt.deliverDirect(item.(placeItem)) }) {
		return false
	}
	inst := rt.lookupInstance(instKey{collection: key.Collection, index: key.Thread})
	if inst == nil {
		return true
	}
	if inst.inflight.Load() != 0 {
		return false
	}
	// Read groups after inflight: a finishing collector deletes its group
	// before its in-flight count drops, so observing 0 then 0 is a
	// consistent idle snapshot (new work is held by the relay).
	inst.mu.Lock()
	n := len(inst.groups)
	inst.mu.Unlock()
	return n == 0
}

// waitQuiesce polls until the instance is idle, the context expires, or the
// application fails.
func (rt *Runtime) waitQuiesce(ctx context.Context, key place.Key) error {
	delay := 50 * time.Microsecond
	for {
		if rt.instanceIdle(key) {
			return nil
		}
		if err := rt.app.Err(); err != nil {
			return err
		}
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("dps: quiescing thread %s: %w", key, err)
		}
		time.Sleep(delay)
		if delay < 2*time.Millisecond {
			delay *= 2
		}
	}
}

// captureState serializes and removes the quiesced local instance. A nil
// payload means the new owner starts from a fresh zero state (stateless
// collection, or the instance was never touched here). With fault
// tolerance enabled the instance's sequencing cursors and retention log
// travel too (ftRec), so the re-homed instance continues its streams
// instead of restarting them — a restart would collide with every
// receiver's duplicate filter.
func (rt *Runtime) captureState(tc *ThreadCollection, thread int) (payload, ftRec []byte, err error) {
	ik := instKey{collection: tc.Name(), index: thread}
	rt.mu.Lock()
	inst := rt.threads[ik]
	delete(rt.threads, ik)
	rt.mu.Unlock()
	if inst == nil {
		return nil, nil, nil
	}
	if inst.ft != nil {
		ftRec = inst.ft.Snapshot().Encode(nil)
	}
	if !stateMigrates(tc.stateType) {
		return nil, ftRec, nil
	}
	payload, err = rt.app.reg.Marshal(inst.state)
	if err != nil {
		rt.mu.Lock()
		rt.threads[ik] = inst
		rt.mu.Unlock()
		return nil, nil, fmt.Errorf("dps: cannot serialize state of %s[%d]: %w", tc.Name(), thread, err)
	}
	return payload, ftRec, nil
}

// lookupInstance returns the local instance, or nil, without creating it.
func (rt *Runtime) lookupInstance(ik instKey) *threadInstance {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.threads[ik]
}

// emitFences sends this runtime's fence pair for a placement flip: the
// closing fence down the old channel, the opening fence down the new one.
// The coordinator holds this runtime's route lock for the key, so the pair
// cleanly cuts this sender's token stream in two.
func (rt *Runtime) emitFences(key place.Key, epoch uint64, from, to string) {
	closing := &fenceMsg{Collection: key.Collection, Thread: key.Thread, Epoch: epoch, Src: rt.name, Phase: byte(place.FenceClose)}
	opening := &fenceMsg{Collection: key.Collection, Thread: key.Thread, Epoch: epoch, Src: rt.name, Phase: byte(place.FenceOpen)}
	if err := rt.lnk.sendFence(from, closing); err != nil {
		rt.app.fail(err)
	}
	if err := rt.lnk.sendFence(to, opening); err != nil {
		rt.app.fail(err)
	}
}

// --- new-owner side: expect, install, drain -----------------------------

// expectPending opens the pending buffer for an inbound migration, so
// direct arrivals racing the state envelope are buffered instead of lazily
// creating a fresh instance. The returned channel closes when the state
// envelope arrives and the instance activates; the coordinator waits on it,
// so a follow-up migration of the same thread cannot start against a node
// that has not received the state yet.
func (rt *Runtime) expectPending(key place.Key) <-chan struct{} {
	ps := &rt.place
	ps.active.Store(1)
	ps.mu.Lock()
	defer ps.mu.Unlock()
	// The instance is coming back: a forwarding relay left over from its
	// earlier departure must not shadow the pending buffer (it would
	// mis-forward the new epoch's fences and direct tokens). The previous
	// migration's fence quota completed before this one began, so the stale
	// relay has no legitimate traffic left to carry.
	delete(ps.relays, key)
	if ps.pending == nil {
		ps.pending = make(map[place.Key][]placeItem)
	}
	if _, ok := ps.pending[key]; !ok {
		ps.pending[key] = nil
	}
	if ps.installed == nil {
		ps.installed = make(map[place.Key]chan struct{})
	}
	ch, ok := ps.installed[key]
	if !ok {
		ch = make(chan struct{})
		ps.installed[key] = ch
	}
	return ch
}

// installMigrated activates a migrated instance on this node: the shipped
// state is deserialized, the instance registered, and the arrivals buffered
// while the migration was in flight are drained in order.
func (rt *Runtime) installMigrated(m *migrateMsg) {
	tc, ok := rt.app.Collection(m.Collection)
	if !ok {
		rt.app.fail(fmt.Errorf("dps: migration for unknown collection %q", m.Collection))
		return
	}
	state := tc.newState()
	if len(m.State) > 0 {
		v, _, err := rt.app.reg.Unmarshal(m.State)
		if err != nil {
			rt.app.fail(fmt.Errorf("dps: cannot deserialize migrated state of %s[%d]: %w", m.Collection, m.Thread, err))
			return
		}
		if want := reflect.PointerTo(tc.stateType); reflect.TypeOf(v) != want {
			rt.app.fail(fmt.Errorf("dps: migrated state of %s[%d] decoded as %T, want %s", m.Collection, m.Thread, v, want))
			return
		}
		state = v
	}
	ik := instKey{collection: m.Collection, index: m.Thread}
	inst := &threadInstance{
		rt:     rt,
		tc:     tc,
		index:  m.Thread,
		state:  state,
		groups: make(map[uint64]*mergeGroup),
	}
	if rt.app.ftOn {
		inst.ft = ft.NewState(ft.StreamOf(m.Collection, m.Thread))
		if len(m.FT) > 0 {
			rec, err := ft.DecodeRecord(m.FT)
			if err != nil {
				rt.failApp(fmt.Errorf("dps: corrupt migrated ft record of %s[%d]: %w", m.Collection, m.Thread, err))
				return
			}
			inst.ft.Restore(rec)
		}
	}
	rt.sched.InitInstance(&inst.exec, shardKey(m.Collection, m.Thread))
	rt.mu.Lock()
	if _, exists := rt.threads[ik]; exists {
		rt.mu.Unlock()
		rt.app.fail(fmt.Errorf("dps: migration target %s[%d] already instantiated on %q", m.Collection, m.Thread, rt.name))
		return
	}
	rt.threads[ik] = inst
	rt.mu.Unlock()

	key := place.Key{Collection: m.Collection, Thread: m.Thread}
	ps := &rt.place
	ps.mu.Lock()
	delete(ps.relays, key) // re-ownership: this node stops relaying for itself
	if ps.ownEpoch == nil {
		ps.ownEpoch = make(map[place.Key]uint64)
	}
	ps.ownEpoch[key] = m.Epoch
	if ps.fences == nil {
		ps.fences = make(map[place.Key]*fenceQuota)
	}
	ps.fences[key] = &fenceQuota{epoch: m.Epoch, expected: m.Fences}
	if ch, ok := ps.installed[key]; ok {
		close(ch)
		delete(ps.installed, key)
	}
	_, hasPending := ps.pending[key]
	ps.mu.Unlock()
	if hasPending {
		rt.drainPending(key)
	}
}

// drainPending replays the arrivals buffered before activation, in order.
// The buffer entry stays present while draining, so concurrent arrivals
// append behind the replay instead of overtaking it.
func (rt *Runtime) drainPending(key place.Key) {
	ps := &rt.place
	for {
		ps.mu.Lock()
		pend := ps.pending[key]
		if len(pend) == 0 {
			delete(ps.pending, key)
			ps.mu.Unlock()
			return
		}
		it := pend[0]
		ps.pending[key] = pend[1:]
		ps.mu.Unlock()
		if it.fence != nil {
			rt.applyFence(it.fence)
			continue
		}
		if rt.place.gates.Offer(key, it.src, ps.ownEpochOf(key), it) {
			continue
		}
		rt.deliverDirect(it)
	}
}

// --- coordinator ---------------------------------------------------------

// stateMigrates reports whether a collection's state type carries data that
// must travel with a migrating thread. Non-struct state (legal for local
// execution) always carries data; validateMigratableState rejects it before
// any migration starts.
func stateMigrates(st reflect.Type) bool {
	if st == nil {
		return false
	}
	if st.Kind() != reflect.Struct {
		return true
	}
	return st.NumField() > 0
}

// validateMigratableState rejects state types a live migration would
// silently corrupt: unexported fields are invisible to the serializer, and
// unregistered types cannot travel at all.
func (app *App) validateMigratableState(tc *ThreadCollection) error {
	st := tc.stateType
	if !stateMigrates(st) {
		return nil
	}
	if st.Kind() != reflect.Struct {
		return fmt.Errorf("dps: collection %q: state type %s is not a struct; live migration needs a registered struct state (or struct{})", tc.Name(), st)
	}
	for i := 0; i < st.NumField(); i++ {
		if !st.Field(i).IsExported() {
			return fmt.Errorf("dps: collection %q: state type %s has unexported field %s; live migration would lose it", tc.Name(), st, st.Field(i).Name)
		}
	}
	if _, err := app.reg.IDOf(reflect.New(st).Interface()); err != nil {
		return fmt.Errorf("dps: collection %q: state type is not registered for serialization: %w", tc.Name(), err)
	}
	return nil
}

// migrateThread runs the live-remap protocol for one thread (see the file
// comment). Migrations are serialized application-wide; on error the
// placement is unchanged and held arrivals are re-dispatched locally.
func (app *App) migrateThread(ctx context.Context, tc *ThreadCollection, thread int, to string) error {
	if err := app.Err(); err != nil {
		return err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	from, err := tc.NodeOf(thread)
	if err != nil {
		return err
	}
	if from == to {
		return nil
	}
	if err := app.validateMigratableState(tc); err != nil {
		return err
	}
	rtOld, ok := app.runtime(from)
	if !ok {
		return fmt.Errorf("dps: thread %s[%d] is hosted on unknown node %q", tc.Name(), thread, from)
	}
	rtNew, ok := app.runtime(to)
	if !ok {
		return fmt.Errorf("dps: collection %q: unknown node %q", tc.Name(), to)
	}
	if _, hasDeadline := ctx.Deadline(); !hasDeadline && app.cfg.RemapDrain > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, app.cfg.RemapDrain)
		defer cancel()
	}

	app.migrateMu.Lock()
	defer app.migrateMu.Unlock()
	app.enableSlowRouting()

	key := place.Key{Collection: tc.Name(), Thread: thread}
	re, err := rtOld.beginHold(key, tc.place.Epoch())
	if err != nil {
		return err
	}
	if err := rtOld.waitQuiesce(ctx, key); err != nil {
		rtOld.abortHold(key, re)
		return err
	}
	payload, ftRec, err := rtOld.captureState(tc, thread)
	if err != nil {
		rtOld.abortHold(key, re)
		return err
	}

	// Flip the placement and cut every sender's stream with a fence pair,
	// all under the per-runtime route locks so no post straddles the flip.
	installed := rtNew.expectPending(key)
	rts := app.allRuntimes()
	locks := make([]*sync.Mutex, len(rts))
	for i, r := range rts {
		locks[i] = r.routeLock(key)
		locks[i].Lock()
	}
	epoch, serr := tc.place.SetThread(thread, to)
	if serr == nil {
		for _, r := range rts {
			r.emitFences(key, epoch, from, to)
		}
	}
	for i := len(locks) - 1; i >= 0; i-- {
		locks[i].Unlock()
	}
	if serr != nil {
		// Unreachable in practice (the thread index was validated above);
		// surface it without corrupting the placement.
		rtOld.abortHold(key, re)
		return serr
	}

	// Ship the state; the relay flushes its held arrivals behind it on the
	// same channel, then forwards stale traffic from then on.
	if err := rtOld.lnk.sendMigrate(to, &migrateMsg{Collection: key.Collection, Thread: thread, Epoch: epoch, Fences: len(rts), State: payload, FT: ftRec}); err != nil {
		err = fmt.Errorf("dps: shipping state of %s to %q: %w", key, to, err)
		app.fail(err)
		return err
	}
	re.relay.Flush(to, func(item any) { rtOld.forwardItem(item.(placeItem), to) })

	// The handover completes when the new owner has installed the state; a
	// follow-up migration of the same thread must not observe a node that
	// is still waiting for the envelope (it would capture a nil instance
	// and lose the state). Delivery is reliable in-process, so this only
	// blocks while the envelope is in flight — or until the application
	// fails.
	for {
		select {
		case <-installed:
			rtOld.stats.migrationsCompleted.Add(1)
			rtOld.stats.migrationBytes.Add(int64(len(payload)))
			return nil
		case <-time.After(200 * time.Microsecond):
			if err := app.Err(); err != nil {
				return err
			}
		}
	}
}
