package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/core/flowctl"
	"repro/internal/serial"
	"repro/internal/simnet"
	"repro/internal/transport"
)

// Config tunes an application's runtime behaviour.
type Config struct {
	// Window bounds the number of tokens in circulation per split–merge
	// pair (the paper's flow-control feedback). Zero selects DefaultWindow.
	// It parameterizes the default flowctl.Window policy and is ignored
	// when FlowPolicy is set explicitly.
	Window int
	// FlowPolicy selects the flow-control discipline applied to each split
	// group; nil selects flowctl.Window{N: Window}.
	FlowPolicy flowctl.Policy
	// Workers is the number of scheduler worker lanes per node. Values
	// above one shard the node's thread instances over that many drainer
	// goroutines (bounded intra-node concurrency); zero or one keeps the
	// default on-demand drainer per instance.
	Workers int
	// Queue bounds each thread instance's dispatch queue; zero selects
	// sched.DefaultQueueCap. Beyond the bound dispatch degrades to one
	// goroutine per token instead of blocking the poster.
	Queue int
	// ForceSerialize marshals and unmarshals tokens even for same-node
	// transfers, exercising the full networking path inside one process —
	// the paper's several-kernels-per-host debugging mode.
	ForceSerialize bool
	// Registry is the token type registry; nil selects serial.DefaultRegistry.
	Registry *serial.Registry
}

// DefaultWindow is the default per-split flow-control window.
const DefaultWindow = flowctl.DefaultWindow

func (c Config) window() int {
	if c.Window > 0 {
		return c.Window
	}
	return DefaultWindow
}

func (c Config) flowPolicy() flowctl.Policy {
	if c.FlowPolicy != nil {
		return c.FlowPolicy
	}
	return flowctl.Window{N: c.window()}
}

func (c Config) registry() *serial.Registry {
	if c.Registry != nil {
		return c.Registry
	}
	return serial.DefaultRegistry
}

// App is a DPS application: a set of node runtimes plus the thread
// collections and flow graphs defined on them. In the paper each node runs
// an instance of the application process; here an App owns one Runtime per
// cluster node, attached to a shared transport fabric (in-process,
// simulated network, or TCP).
type App struct {
	cfg Config
	reg *serial.Registry

	mu          sync.Mutex
	runtimes    map[string]*Runtime
	nodeOrder   []string
	collections map[string]*ThreadCollection
	graphs      map[string]*Flowgraph

	callSeq atomic.Uint64
	callMu  sync.Mutex
	calls   map[uint64]chan CallResult

	failErr atomic.Value // errBox
	closed  atomic.Bool

	cleanup []func()
}

// CallResult is the outcome of one flow-graph invocation.
type CallResult struct {
	Value Token
	Err   error
}

// NewApp creates an application with no nodes; attach transports with
// AttachTransport or use the NewLocalApp / NewSimApp conveniences.
func NewApp(cfg Config) *App {
	return &App{
		cfg:         cfg,
		reg:         cfg.registry(),
		runtimes:    make(map[string]*Runtime),
		collections: make(map[string]*ThreadCollection),
		graphs:      make(map[string]*Flowgraph),
		calls:       make(map[uint64]chan CallResult),
	}
}

// NewLocalApp creates an application whose nodes communicate through an
// in-process fabric with no modelled cost (the paper's single-host mode).
func NewLocalApp(cfg Config, nodeNames ...string) (*App, error) {
	app := NewApp(cfg)
	fabric := transport.NewInproc()
	for _, name := range nodeNames {
		n, err := fabric.Node(name)
		if err != nil {
			return nil, err
		}
		if _, err := app.AttachTransport(n); err != nil {
			return nil, err
		}
	}
	app.cleanup = append(app.cleanup, fabric.Close)
	return app, nil
}

// NewSimApp creates an application whose nodes are attached to a simulated
// cluster network; tokens crossing nodes are serialized and pay the
// modelled NIC and latency costs.
func NewSimApp(cfg Config, net *simnet.Network, nodeNames ...string) (*App, error) {
	app := NewApp(cfg)
	for _, name := range nodeNames {
		nd, err := net.AddNode(name)
		if err != nil {
			return nil, err
		}
		if _, err := app.AttachTransport(transport.NewSimNode(nd)); err != nil {
			return nil, err
		}
	}
	return app, nil
}

// AttachTransport adds a cluster node to the application. The transport's
// Local() name becomes the node name used in mapping strings.
func (app *App) AttachTransport(tr transport.Transport) (*Runtime, error) {
	app.mu.Lock()
	defer app.mu.Unlock()
	name := tr.Local()
	if _, ok := app.runtimes[name]; ok {
		return nil, fmt.Errorf("dps: node %q already attached", name)
	}
	rt := newRuntime(app, tr, len(app.nodeOrder))
	app.runtimes[name] = rt
	app.nodeOrder = append(app.nodeOrder, name)
	tr.SetHandler(rt.lnk.handle)
	return rt, nil
}

// NodeNames lists the application's nodes in attachment order.
func (app *App) NodeNames() []string {
	app.mu.Lock()
	defer app.mu.Unlock()
	return append([]string(nil), app.nodeOrder...)
}

// MasterNode returns the first attached node, conventionally hosting main
// threads and graph calls.
func (app *App) MasterNode() string {
	app.mu.Lock()
	defer app.mu.Unlock()
	if len(app.nodeOrder) == 0 {
		return ""
	}
	return app.nodeOrder[0]
}

// Graph returns a registered flow graph by name (the paper's named graphs,
// reusable by other applications).
func (app *App) Graph(name string) (*Flowgraph, bool) {
	app.mu.Lock()
	defer app.mu.Unlock()
	g, ok := app.graphs[name]
	return g, ok
}

// Collection returns a registered thread collection by name.
func (app *App) Collection(name string) (*ThreadCollection, bool) {
	app.mu.Lock()
	defer app.mu.Unlock()
	tc, ok := app.collections[name]
	return tc, ok
}

// errBox gives atomic.Value a consistent concrete type regardless of the
// stored error's dynamic type.
type errBox struct{ err error }

// Err reports the first unrecoverable runtime error, if any.
func (app *App) Err() error {
	if v := app.failErr.Load(); v != nil {
		return v.(errBox).err
	}
	return nil
}

// Close shuts the application down. Pending calls fail.
func (app *App) Close() {
	if app.closed.Swap(true) {
		return
	}
	app.fail(fmt.Errorf("dps: application closed"))
	app.mu.Lock()
	rts := make([]*Runtime, 0, len(app.runtimes))
	for _, rt := range app.runtimes {
		rts = append(rts, rt)
	}
	cleanup := app.cleanup
	app.mu.Unlock()
	for _, rt := range rts {
		_ = rt.lnk.tr.Close()
	}
	for _, f := range cleanup {
		f()
	}
}

// fail records the first unrecoverable error, aborts all pending calls and
// wakes blocked operations so they unwind.
func (app *App) fail(err error) {
	app.failErr.CompareAndSwap(nil, errBox{err: err})
	first := app.Err()
	app.callMu.Lock()
	pending := app.calls
	app.calls = make(map[uint64]chan CallResult)
	app.callMu.Unlock()
	for _, ch := range pending {
		select {
		case ch <- CallResult{Err: first}:
		default:
		}
	}
	app.mu.Lock()
	rts := make([]*Runtime, 0, len(app.runtimes))
	for _, rt := range app.runtimes {
		rts = append(rts, rt)
	}
	app.mu.Unlock()
	for _, rt := range rts {
		rt.abortLocal()
	}
}

func (app *App) addCollection(tc *ThreadCollection) error {
	app.mu.Lock()
	defer app.mu.Unlock()
	if _, ok := app.collections[tc.name]; ok {
		return fmt.Errorf("dps: collection %q already exists", tc.name)
	}
	app.collections[tc.name] = tc
	return nil
}

func (app *App) addGraph(g *Flowgraph) error {
	app.mu.Lock()
	defer app.mu.Unlock()
	if _, ok := app.graphs[g.name]; ok {
		return fmt.Errorf("dps: graph %q already exists", g.name)
	}
	app.graphs[g.name] = g
	return nil
}

func (app *App) hasNode(name string) bool {
	app.mu.Lock()
	defer app.mu.Unlock()
	_, ok := app.runtimes[name]
	return ok
}

func (app *App) runtime(name string) (*Runtime, bool) {
	app.mu.Lock()
	defer app.mu.Unlock()
	rt, ok := app.runtimes[name]
	return rt, ok
}

func (app *App) registerCall() (uint64, chan CallResult) {
	id := app.callSeq.Add(1)
	ch := make(chan CallResult, 1)
	app.callMu.Lock()
	app.calls[id] = ch
	app.callMu.Unlock()
	return id, ch
}

func (app *App) completeCall(id uint64, res CallResult) {
	app.callMu.Lock()
	ch, ok := app.calls[id]
	delete(app.calls, id)
	app.callMu.Unlock()
	if ok {
		ch <- res
	}
}
