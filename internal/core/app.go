package core

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	mrand "math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core/flowctl"
	"repro/internal/core/ft"
	"repro/internal/serial"
	"repro/internal/simnet"
	"repro/internal/transport"
)

// Config tunes an application's runtime behaviour.
type Config struct {
	// Window bounds the number of tokens in circulation per split–merge
	// pair (the paper's flow-control feedback). Zero selects DefaultWindow.
	// It parameterizes the default flowctl.Window policy and is ignored
	// when FlowPolicy is set explicitly.
	Window int
	// FlowPolicy selects the flow-control discipline applied to each split
	// group; nil selects flowctl.Window{N: Window}.
	FlowPolicy flowctl.Policy
	// Workers is the number of scheduler worker lanes per node. Values
	// above one shard the node's thread instances over that many drainer
	// goroutines (bounded intra-node concurrency); zero or one keeps the
	// default on-demand drainer per instance.
	Workers int
	// Queue bounds each thread instance's dispatch queue; zero selects
	// sched.DefaultQueueCap. Beyond the bound dispatch degrades to one
	// goroutine per token instead of blocking the poster.
	Queue int
	// ForceSerialize marshals and unmarshals tokens even for same-node
	// transfers, exercising the full networking path inside one process —
	// the paper's several-kernels-per-host debugging mode.
	ForceSerialize bool
	// RemapDrain bounds the quiesce phase of live thread migrations
	// (ThreadCollection.Remap) when the caller's context carries no
	// deadline; zero waits indefinitely.
	RemapDrain time.Duration
	// Checkpoint enables the fault-tolerance layer (internal/core/ft) and
	// sets the interval at which thread instances checkpoint their state:
	// tokens are sequenced and retained for replay, receivers filter
	// duplicates, and a node declared dead (FailNode, transport send
	// errors, liveness probes, kernel heartbeats) has its threads restored
	// from their newest checkpoints on the surviving nodes with
	// exactly-once execution semantics. Zero disables the layer entirely;
	// the token hot paths and wire formats are then untouched.
	Checkpoint time.Duration
	// FailureDetect adds active liveness probing to the fault-tolerance
	// layer: the master node sends a tiny probe to every peer at this
	// interval and a failing probe send declares the peer suspect. Zero
	// relies on passive detection (send errors of real traffic) and
	// external detectors (kernel heartbeats calling FailNode). Ignored
	// unless Checkpoint is set (the dps façade rejects the combination).
	FailureDetect time.Duration
	// Batch turns on per-destination token coalescing on the wire path:
	// outbound tokens and group-ends bound for the same node accumulate
	// into one batch frame (msgBatch), flushed when it reaches BatchMaxBytes
	// or BatchMaxTokens, when BatchDelay elapses, or when a
	// latency-sensitive message (result, ack, fence, checkpoint, ...) needs
	// the lane. Off by default: with Batch false no msgBatch frame is ever
	// emitted and every wire frame stays byte-identical to the unbatched
	// engine.
	Batch bool
	// BatchMaxBytes bounds one batch frame's payload bytes; zero selects
	// DefaultBatchMaxBytes.
	BatchMaxBytes int
	// BatchMaxTokens bounds the entries coalesced into one batch frame;
	// zero selects DefaultBatchMaxTokens.
	BatchMaxTokens int
	// BatchDelay bounds how long a non-full batch may wait for more
	// traffic; zero selects DefaultBatchDelay.
	BatchDelay time.Duration
	// Compress DEFLATE-compresses batch frame bodies that shrink (counted
	// by Stats.CompressedBytes/UncompressedBytes). Requires Batch; it has
	// no effect on unbatched frames.
	Compress bool
	// CallShards is the lock striping of the pending-call registry: the
	// table of in-flight graph calls is split over this many independently
	// locked shards keyed by call ID, so saturated callers (an ingress
	// multiplexing thousands of concurrent Graph.Calls) spread
	// registration, completion and cancellation over independent locks.
	// Zero selects DefaultCallShards; the value is rounded up to a power of
	// two. One restores the historical single-mutex table, kept as a
	// measurable baseline (dps-bench -exp serve compares the two).
	CallShards int
	// MaxInFlightCalls is the admission budget: the number of graph calls
	// that may be pending (registered and unsettled) at any moment across
	// the application. At the budget new calls are shed at admission with
	// ErrOverload before any entry token posts — graceful degradation
	// instead of unbounded queueing. It transitively bounds the engine's
	// queues too: each admitted call contributes at most its flow-control
	// window of tokens. Zero admits everything.
	MaxInFlightCalls int
	// TraceSample enables per-token distributed tracing: each admitted call
	// is sampled with this probability (0..1), and a sampled call's
	// envelopes carry its trace ID — the call ID — across splits, merges,
	// batched lanes, migrations and failover replays, while every runtime
	// they touch records spans into its ring buffer (App.TraceSpans).
	// Unsampled calls pay one comparison per span point and nothing else,
	// and the wire stays byte-identical: only sampled envelopes travel in
	// the msgTraced wrapper (wire.go). Zero disables tracing entirely.
	TraceSample float64
	// SuspectGrace turns "first send error = death" into graceful
	// degradation: a failing transport send (including liveness probes) is
	// retried with capped exponential backoff and jitter for up to this
	// window before the failure detector may declare the destination
	// suspect. Transient faults — a peer restarting, a partition that
	// heals, an injected send error — are absorbed by the retries; a real
	// crash exhausts the window and fails over as before, delayed by at
	// most the grace. Zero keeps the immediate-suspect behaviour.
	SuspectGrace time.Duration
	// Registry is the token type registry; nil selects serial.DefaultRegistry.
	Registry *serial.Registry
}

// DefaultWindow is the default per-split flow-control window.
const DefaultWindow = flowctl.DefaultWindow

func (c Config) window() int {
	if c.Window > 0 {
		return c.Window
	}
	return DefaultWindow
}

func (c Config) flowPolicy() flowctl.Policy {
	if c.FlowPolicy != nil {
		return c.FlowPolicy
	}
	return flowctl.Window{N: c.window()}
}

func (c Config) registry() *serial.Registry {
	if c.Registry != nil {
		return c.Registry
	}
	return serial.DefaultRegistry
}

// App is a DPS application: a set of node runtimes plus the thread
// collections and flow graphs defined on them. In the paper each node runs
// an instance of the application process; here an App owns one Runtime per
// cluster node, attached to a shared transport fabric (in-process,
// simulated network, or TCP).
type App struct {
	cfg Config
	reg *serial.Registry

	mu          sync.Mutex
	runtimes    map[string]*Runtime
	nodeOrder   []string
	collections map[string]*ThreadCollection
	graphs      map[string]*Flowgraph

	callSeq atomic.Uint64
	// callreg is the sharded pending-call table (callreg.go): registration,
	// completion, cancellation and context lookups lock only the shard the
	// call ID stripes to, so concurrent callers don't convoy on one mutex.
	callreg callRegistry
	// canceled holds the IDs of calls whose context fired before the result
	// arrived (sync.Map: written once per cancellation, read lock-free on
	// the token hot paths). In-flight tokens of these calls are dropped —
	// with their flow-control accounting released — wherever the engine
	// next touches them. An ID is reaped when the graph still produces the
	// orphaned result; a call whose tokens were all dropped before reaching
	// the exit retains its 8-byte ID for the application's lifetime, the
	// price of not tracking per-call in-flight counts.
	canceled sync.Map
	// cancelActive counts outstanding canceled IDs: while zero — the
	// overwhelmingly common case — the hot paths skip the map entirely.
	cancelActive atomic.Int64

	failErr atomic.Value // errBox
	closed  atomic.Bool

	// migrateMu serializes live thread migrations; migrActive switches the
	// token posting paths from the lock-free fast route onto the per-key
	// route locks once the first migration starts (sticky; the in-flight
	// fast-path counts live on each Runtime — see migrate.go).
	migrateMu  sync.Mutex
	migrActive atomic.Int32

	// Fault-tolerance layer (Config.Checkpoint; see ftengine.go). ftOn is
	// immutable after NewApp; the goroutines start lazily via ftOnce.
	ftOn       bool
	ftDead     ft.Detector
	ftOnce     sync.Once
	ftStop     chan struct{}
	ftSuspects chan string
	ftCkptSeq  atomic.Uint64

	cleanup []func()
}

// CallResult is the outcome of one flow-graph invocation.
type CallResult struct {
	Value Token
	Err   error
}

// callEntry is one pending flow-graph invocation: the channel the result is
// delivered on, the caller's context (consulted by blocking engine points so
// cancellation unwinds in-flight work), the context watcher to detach once
// the call settles, and the origin runtime (where admission and expiry are
// attributed in Stats). Entries of synchronous calls are pooled; see
// callEntries in callreg.go for the ownership argument.
type callEntry struct {
	ch   chan CallResult
	ctx  context.Context
	stop func() bool
	rt   *Runtime
	// start is the admission clock (unix ns) backing the call-latency
	// histogram; sampled marks the call for distributed tracing
	// (Config.TraceSample), stamping its envelopes with the call ID.
	start   int64
	sampled bool
}

// NewApp creates an application with no nodes; attach transports with
// AttachTransport or use the NewLocalApp / NewSimApp conveniences.
func NewApp(cfg Config) *App {
	app := &App{
		cfg:         cfg,
		reg:         cfg.registry(),
		runtimes:    make(map[string]*Runtime),
		collections: make(map[string]*ThreadCollection),
		graphs:      make(map[string]*Flowgraph),
		ftOn:        cfg.Checkpoint > 0,
	}
	app.callreg.initCallRegistry(cfg.CallShards)
	// Call IDs travel in token envelopes and are consulted on every
	// receiving node (cancellation drops). In a multi-process deployment
	// (TCP kernels) each process runs its own App; sequential IDs starting
	// at 1 would collide across processes and a canceled local call could
	// shadow a healthy remote one. A random starting point makes the ID
	// namespace effectively unique per App instance.
	var seed [8]byte
	if _, err := rand.Read(seed[:]); err == nil {
		app.callSeq.Store(binary.LittleEndian.Uint64(seed[:]))
	}
	return app
}

// NewLocalApp creates an application whose nodes communicate through an
// in-process fabric with no modelled cost (the paper's single-host mode).
func NewLocalApp(cfg Config, nodeNames ...string) (*App, error) {
	app := NewApp(cfg)
	fabric := transport.NewInproc()
	for _, name := range nodeNames {
		n, err := fabric.Node(name)
		if err != nil {
			return nil, err
		}
		if _, err := app.AttachTransport(n); err != nil {
			return nil, err
		}
	}
	app.cleanup = append(app.cleanup, fabric.Close)
	return app, nil
}

// NewSimApp creates an application whose nodes are attached to a simulated
// cluster network; tokens crossing nodes are serialized and pay the
// modelled NIC and latency costs.
func NewSimApp(cfg Config, net *simnet.Network, nodeNames ...string) (*App, error) {
	app := NewApp(cfg)
	for _, name := range nodeNames {
		nd, err := net.AddNode(name)
		if err != nil {
			return nil, err
		}
		if _, err := app.AttachTransport(transport.NewSimNode(nd)); err != nil {
			return nil, err
		}
	}
	return app, nil
}

// AttachTransport adds a cluster node to the application. The transport's
// Local() name becomes the node name used in mapping strings.
func (app *App) AttachTransport(tr transport.Transport) (*Runtime, error) {
	app.mu.Lock()
	defer app.mu.Unlock()
	name := tr.Local()
	if _, ok := app.runtimes[name]; ok {
		return nil, fmt.Errorf("dps: node %q already attached", name)
	}
	rt := newRuntime(app, tr, len(app.nodeOrder))
	app.runtimes[name] = rt
	app.nodeOrder = append(app.nodeOrder, name)
	tr.SetHandler(rt.lnk.handle)
	return rt, nil
}

// NodeNames lists the application's nodes in attachment order.
func (app *App) NodeNames() []string {
	app.mu.Lock()
	defer app.mu.Unlock()
	return append([]string(nil), app.nodeOrder...)
}

// MasterNode returns the first attached node, conventionally hosting main
// threads and graph calls.
func (app *App) MasterNode() string {
	app.mu.Lock()
	defer app.mu.Unlock()
	if len(app.nodeOrder) == 0 {
		return ""
	}
	return app.nodeOrder[0]
}

// Graph returns a registered flow graph by name (the paper's named graphs,
// reusable by other applications).
func (app *App) Graph(name string) (*Flowgraph, bool) {
	app.mu.Lock()
	defer app.mu.Unlock()
	g, ok := app.graphs[name]
	return g, ok
}

// Collection returns a registered thread collection by name.
func (app *App) Collection(name string) (*ThreadCollection, bool) {
	app.mu.Lock()
	defer app.mu.Unlock()
	tc, ok := app.collections[name]
	return tc, ok
}

// errBox gives atomic.Value a consistent concrete type regardless of the
// stored error's dynamic type.
type errBox struct{ err error }

// Err reports the first unrecoverable runtime error, if any.
func (app *App) Err() error {
	if v := app.failErr.Load(); v != nil {
		return v.(errBox).err
	}
	return nil
}

// Close shuts the application down. Pending calls fail.
func (app *App) Close() {
	if app.closed.Swap(true) {
		return
	}
	app.ftStopAll()
	app.fail(fmt.Errorf("dps: application closed"))
	app.mu.Lock()
	rts := make([]*Runtime, 0, len(app.runtimes))
	for _, rt := range app.runtimes {
		rts = append(rts, rt)
	}
	cleanup := app.cleanup
	app.mu.Unlock()
	for _, rt := range rts {
		_ = rt.lnk.tr.Close()
	}
	for _, f := range cleanup {
		f()
	}
}

// fail records the first unrecoverable error, aborts all pending calls and
// wakes blocked operations so they unwind.
func (app *App) fail(err error) {
	app.failErr.CompareAndSwap(nil, errBox{err: err})
	first := app.Err()
	// ce.stop is written under the entry's shard lock (setCallStop);
	// drainAll holds each shard lock while evicting, so the reads here — on
	// entries no settler can reach any more — are ordered after the writes.
	pending := app.callreg.drainAll()
	for _, ce := range pending {
		if ce.stop != nil {
			ce.stop()
		}
	}
	for _, ce := range pending {
		select {
		case ce.ch <- CallResult{Err: first}:
		default:
		}
	}
	app.mu.Lock()
	rts := make([]*Runtime, 0, len(app.runtimes))
	for _, rt := range app.runtimes {
		rts = append(rts, rt)
	}
	app.mu.Unlock()
	for _, rt := range rts {
		rt.wakeBlocked()
	}
}

func (app *App) addCollection(tc *ThreadCollection) error {
	app.mu.Lock()
	defer app.mu.Unlock()
	if _, ok := app.collections[tc.name]; ok {
		return fmt.Errorf("dps: collection %q already exists", tc.name)
	}
	app.collections[tc.name] = tc
	return nil
}

func (app *App) addGraph(g *Flowgraph) error {
	app.mu.Lock()
	defer app.mu.Unlock()
	if _, ok := app.graphs[g.name]; ok {
		return fmt.Errorf("dps: graph %q already exists", g.name)
	}
	app.graphs[g.name] = g
	return nil
}

func (app *App) hasNode(name string) bool {
	app.mu.Lock()
	defer app.mu.Unlock()
	_, ok := app.runtimes[name]
	return ok
}

func (app *App) runtime(name string) (*Runtime, bool) {
	app.mu.Lock()
	defer app.mu.Unlock()
	rt, ok := app.runtimes[name]
	return rt, ok
}

// allRuntimes snapshots every node runtime in attachment order.
func (app *App) allRuntimes() []*Runtime {
	app.mu.Lock()
	defer app.mu.Unlock()
	rts := make([]*Runtime, 0, len(app.nodeOrder))
	for _, name := range app.nodeOrder {
		rts = append(rts, app.runtimes[name])
	}
	return rts
}

// replaceMapping swaps a collection's placement wholesale, rejecting the
// swap while calls execute. The check and the swap happen with every
// registry shard locked — the locks call registration takes — so a call
// racing the remap either registers first (lands in its shard before the
// sweep, and the swap is rejected) or registers after the new table is in
// place and routes consistently; no call can resolve half its tokens
// against each placement.
func (app *App) replaceMapping(tc *ThreadCollection, nodes []string) error {
	app.callreg.lockAll()
	defer app.callreg.unlockAll()
	//dpsvet:ignore lockheld lockAll above takes every shard lock; the rule cannot see through the loop
	if tc.place.Len() > 0 && app.callreg.pendingLocked() > 0 {
		return fmt.Errorf("dps: collection %q: cannot replace the mapping while calls are executing; use Remap for a live migration", tc.name)
	}
	tc.place.Set(nodes)
	return nil
}

// registerCall admits and registers a new pending call for the origin
// runtime. Admission is a single atomic add against the in-flight budget
// (Config.MaxInFlightCalls): over budget the add is rolled back and the
// caller gets ErrOverload with nothing registered and nothing posted.
func (app *App) registerCall(ctx context.Context, rt *Runtime) (uint64, *callEntry, error) {
	if max := app.cfg.MaxInFlightCalls; max > 0 {
		if app.callreg.pending.Add(1) > int64(max) {
			app.callreg.pending.Add(-1)
			rt.stats.callsRejected.Add(1)
			return 0, nil, ErrOverload
		}
	} else {
		app.callreg.pending.Add(1)
	}
	rt.stats.callsAdmitted.Add(1)
	id := app.callSeq.Add(1)
	ce := getCallEntry(ctx, rt)
	ce.start = time.Now().UnixNano()
	if p := app.cfg.TraceSample; p > 0 && (p >= 1 || mrand.Float64() < p) {
		ce.sampled = true
	}
	sh := app.callreg.shard(id)
	sh.mu.Lock()
	sh.calls[id] = ce //dpsvet:ignore poolown registration transfers ownership to the registry; the settler that removes the entry owns it
	sh.mu.Unlock()
	return id, ce, nil
}

// setCallStop attaches the context watcher to a pending call. If the call
// settled (result, failure or cancellation) while the watcher was being
// created, the watcher is detached immediately instead.
func (app *App) setCallStop(id uint64, stop func() bool) {
	sh := app.callreg.shard(id)
	sh.mu.Lock()
	ce, ok := sh.calls[id]
	if ok {
		ce.stop = stop
	}
	sh.mu.Unlock()
	if !ok {
		stop()
	}
}

func (app *App) completeCall(id uint64, res CallResult) {
	sh := app.callreg.shard(id)
	now := time.Now().UnixNano()
	sh.mu.Lock()
	ce, ok := sh.calls[id]
	delete(sh.calls, id)
	var stop func() bool
	if ok {
		stop = ce.stop
		if ce.start != 0 {
			sh.lat.Add(time.Duration(now - ce.start))
		}
	} else {
		// The orphaned result of a canceled call: reap the cancellation
		// record — no further tokens of this call can be in flight. Under
		// the shard lock, like cancelCall's record store, so the removal
		// and the record appear atomically to this call's other settlers.
		if _, wasCanceled := app.canceled.LoadAndDelete(id); wasCanceled {
			app.cancelActive.Add(-1)
		}
	}
	sh.mu.Unlock()
	if ok {
		app.callreg.pending.Add(-1)
		if stop != nil {
			stop()
		}
		if ce.sampled && ce.rt != nil {
			// Read before the channel send: a synchronous caller may recycle
			// the entry the moment it receives.
			ce.rt.traceSpan(id, "result", "", ce.start, now-ce.start)
		}
		ce.ch <- res
	}
}

// cancelCall aborts a pending call after its context fired: the caller gets
// cause delivered immediately, the entry leaves the pending table, and the
// call ID is recorded so the engine drops (and acknowledges) the call's
// in-flight tokens instead of letting them wedge flow-control windows.
// Blocked executions of the call are woken so they observe the cancellation
// and unwind.
func (app *App) cancelCall(id uint64, cause error) {
	sh := app.callreg.shard(id)
	sh.mu.Lock()
	ce, ok := sh.calls[id]
	if !ok {
		// The result won the race; the call completed normally.
		sh.mu.Unlock()
		return
	}
	delete(sh.calls, id)
	// Mutated under the shard lock (like completeCall's reap) so the entry
	// removal and the cancellation record appear atomically to this call's
	// other settlers — which, keyed by the same ID, use the same shard.
	app.canceled.Store(id, struct{}{})
	app.cancelActive.Add(1)
	sh.mu.Unlock()
	app.callreg.pending.Add(-1)
	if ce.rt != nil && errors.Is(cause, context.DeadlineExceeded) {
		ce.rt.stats.callsExpired.Add(1)
	}
	select {
	case ce.ch <- CallResult{Err: cause}:
	default:
	}
	app.mu.Lock()
	rts := make([]*Runtime, 0, len(app.runtimes))
	for _, rt := range app.runtimes {
		rts = append(rts, rt)
	}
	app.mu.Unlock()
	for _, rt := range rts {
		rt.wakeBlocked()
	}
}

// callAborted reports whether a call was canceled. The fast path is one
// atomic load; the lock-free map is consulted only while canceled calls
// are outstanding, so the token hot paths never touch the registry shards.
func (app *App) callAborted(id uint64) bool {
	if app.cancelActive.Load() == 0 {
		return false
	}
	_, ok := app.canceled.Load(id)
	return ok
}

// callContext returns the context a pending call was registered with, or
// nil when the call is no longer pending (completed or canceled).
func (app *App) callContext(id uint64) context.Context {
	sh := app.callreg.shard(id)
	sh.mu.Lock()
	ce, ok := sh.calls[id]
	var ctx context.Context
	if ok {
		// Read under the shard lock: a pooled entry's ctx is rewritten on
		// reuse, so it must not be loaded after the entry leaves the table.
		ctx = ce.ctx
	}
	sh.mu.Unlock()
	if !ok {
		return nil
	}
	return ctx
}
