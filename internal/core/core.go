package core
