package core_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/core/flowctl"
	"repro/internal/serial"
)

// Sharded-scheduler stress: the scenarios of stress_test.go re-run with
// Config.Workers > 1, so every node multiplexes its thread instances over a
// small pool of drainer lanes instead of one goroutine per runnable
// instance. Semantics must be unchanged: per-instance FIFO ordering,
// progress while operations stall on flow control, and state consistency
// under concurrent graph calls.

// shardedConfigs are the engine configurations every scenario runs under.
func shardedConfigs() []core.Config {
	return []core.Config{
		{Workers: 2, Window: 16},
		{Workers: 4, Window: 32},
		{Workers: 4, Window: 8, Queue: 16}, // tiny queue: exercises overflow
		{Workers: 3, FlowPolicy: flowctl.Unbounded{}},
	}
}

func configName(cfg core.Config) string {
	pol := "window"
	if cfg.FlowPolicy != nil {
		pol = cfg.FlowPolicy.Name()
	}
	return fmt.Sprintf("workers=%d_%s%d_queue=%d", cfg.Workers, pol, cfg.Window, cfg.Queue)
}

// SeqToken carries a split-assigned sequence number.
type SeqToken struct {
	Seq int
}

var _ = serial.MustRegister[SeqToken]()

// TestShardedFIFOPerInstance posts a numbered stream to one single-thread
// collection and checks the leaf observed the tokens in posting order —
// the per-instance FIFO guarantee under sharded drainers.
func TestShardedFIFOPerInstance(t *testing.T) {
	for _, cfg := range shardedConfigs() {
		cfg := cfg
		t.Run(configName(cfg), func(t *testing.T) {
			app := newLocalApp(t, cfg, "node0", "node1")
			main := core.MustCollection[struct{}](app, "main")
			if err := main.Map("node0"); err != nil {
				t.Fatal(err)
			}
			var mu sync.Mutex
			var seen []int
			one := core.MustCollection[struct{}](app, "one")
			if err := one.Map("node1"); err != nil {
				t.Fatal(err)
			}
			split := core.Split[*CountToken, *SeqToken]("seq-split",
				func(c *core.Ctx, in *CountToken, post func(*SeqToken)) {
					for i := 0; i < in.N; i++ {
						post(&SeqToken{Seq: i})
					}
				})
			record := core.Leaf[*SeqToken, *SeqToken]("seq-record",
				func(c *core.Ctx, in *SeqToken) *SeqToken {
					mu.Lock()
					seen = append(seen, in.Seq)
					mu.Unlock()
					return in
				})
			merge := core.Merge[*SeqToken, *CountToken]("seq-merge",
				func(c *core.Ctx, first *SeqToken, next func() (*SeqToken, bool)) *CountToken {
					n := 0
					for _, ok := first, true; ok; _, ok = next() {
						n++
					}
					return &CountToken{N: n}
				})
			g, err := app.NewFlowgraph("seq", core.Path(
				core.NewNode(split, main, core.MainRoute()),
				core.NewNode(record, one, core.MainRoute()),
				core.NewNode(merge, main, core.MainRoute()),
			))
			if err != nil {
				t.Fatal(err)
			}
			const tokens = 2000
			out, err := g.CallTimeout(app.MasterNode(), &CountToken{N: tokens}, 120*time.Second)
			if err != nil {
				t.Fatal(err)
			}
			if got := out.(*CountToken).N; got != tokens {
				t.Fatalf("merged %d of %d", got, tokens)
			}
			mu.Lock()
			defer mu.Unlock()
			for i, v := range seen {
				if v != i {
					t.Fatalf("FIFO order violated at %d: got %d (workers=%d)", i, v, cfg.Workers)
				}
			}
		})
	}
}

// TestShardedDeepNesting is stress_test.go's nested construct chain under
// sharded drainers: blocked openers must hand their lanes off or the
// nesting deadlocks.
func TestShardedDeepNesting(t *testing.T) {
	for _, cfg := range shardedConfigs() {
		cfg := cfg
		t.Run(configName(cfg), func(t *testing.T) {
			app := newLocalApp(t, cfg, "node0", "node1")
			tc := core.MustCollection[struct{}](app, "tc")
			if err := tc.Map("node0 node1"); err != nil {
				t.Fatal(err)
			}
			mkSplit := func(name string, fan int) *core.OpDef {
				return core.Split[*CountToken, *CountToken](name,
					func(c *core.Ctx, in *CountToken, post func(*CountToken)) {
						for i := 0; i < fan; i++ {
							post(&CountToken{N: in.N})
						}
					})
			}
			mkMerge := func(name string) *core.OpDef {
				return core.Merge[*CountToken, *CountToken](name,
					func(c *core.Ctx, first *CountToken, next func() (*CountToken, bool)) *CountToken {
						sum := 0
						for in, ok := first, true; ok; in, ok = next() {
							sum += in.N
						}
						return &CountToken{N: sum}
					})
			}
			work := core.Leaf[*CountToken, *CountToken]("w3",
				func(c *core.Ctx, in *CountToken) *CountToken { return in })
			g, err := app.NewFlowgraph("deep", core.Path(
				core.NewNode(mkSplit("s1", 3), tc, core.MainRoute()),
				core.NewNode(mkSplit("s2", 4), tc, core.RoundRobin()),
				core.NewNode(mkSplit("s3", 5), tc, core.RoundRobin()),
				core.NewNode(work, tc, core.RoundRobin()),
				core.NewNode(mkMerge("m3"), tc, core.RoundRobin()),
				core.NewNode(mkMerge("m2"), tc, core.RoundRobin()),
				core.NewNode(mkMerge("m1"), tc, core.MainRoute()),
			))
			if err != nil {
				t.Fatal(err)
			}
			out, err := g.CallTimeout(app.MasterNode(), &CountToken{N: 1}, 60*time.Second)
			if err != nil {
				t.Fatal(err)
			}
			if got := out.(*CountToken).N; got != 60 {
				t.Fatalf("deep nesting sum = %d, want 60", got)
			}
		})
	}
}

// TestShardedWideFanOutConcurrentCalls hammers a stateful collection with
// concurrent calls far beyond the flow-control window under sharded
// drainers, verifying state consistency (serialized thread execution).
func TestShardedWideFanOutConcurrentCalls(t *testing.T) {
	for _, cfg := range shardedConfigs() {
		cfg := cfg
		t.Run(configName(cfg), func(t *testing.T) {
			app := newLocalApp(t, cfg, "node0", "node1", "node2")
			workers := core.MustCollection[counterState](app, "workers")
			if err := workers.Map("node0 node1 node2"); err != nil {
				t.Fatal(err)
			}
			main := core.MustCollection[struct{}](app, "main")
			if err := main.Map("node0"); err != nil {
				t.Fatal(err)
			}
			split := core.Split[*CountToken, *CountToken]("wide-split",
				func(c *core.Ctx, in *CountToken, post func(*CountToken)) {
					for i := 0; i < in.N; i++ {
						post(&CountToken{N: i})
					}
				})
			add := core.Leaf[*CountToken, *CountToken]("wide-add",
				func(c *core.Ctx, in *CountToken) *CountToken {
					core.StateOf[counterState](c).mine++
					return in
				})
			merge := core.Merge[*CountToken, *SumToken]("wide-merge",
				func(c *core.Ctx, first *CountToken, next func() (*CountToken, bool)) *SumToken {
					n := 0
					for _, ok := first, true; ok; _, ok = next() {
						n++
					}
					return &SumToken{Calls: n}
				})
			g, err := app.NewFlowgraph("wide", core.Path(
				core.NewNode(split, main, core.MainRoute()),
				core.NewNode(add, workers, core.RoundRobin()),
				core.NewNode(merge, main, core.MainRoute()),
			))
			if err != nil {
				t.Fatal(err)
			}
			const calls, per = 8, 300
			var wg sync.WaitGroup
			for i := 0; i < calls; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					out, err := g.CallTimeout(app.MasterNode(), &CountToken{N: per}, 120*time.Second)
					if err != nil {
						t.Error(err)
						return
					}
					if got := out.(*SumToken).Calls; got != per {
						t.Errorf("merged %d of %d tokens", got, per)
					}
				}()
			}
			wg.Wait()
			if t.Failed() {
				return
			}
			// Read back the summed thread states: must equal calls*per.
			readSplit := core.Split[*CountToken, *CountToken]("read-split",
				func(c *core.Ctx, in *CountToken, post func(*CountToken)) {
					for i := 0; i < 3; i++ {
						post(&CountToken{N: i})
					}
				})
			report := core.Leaf[*CountToken, *SumToken]("read-state",
				func(c *core.Ctx, in *CountToken) *SumToken {
					return &SumToken{Sum: core.StateOf[counterState](c).mine}
				})
			total := core.Merge[*SumToken, *SumToken]("read-total",
				func(c *core.Ctx, first *SumToken, next func() (*SumToken, bool)) *SumToken {
					sum := 0
					for in, ok := first, true; ok; in, ok = next() {
						sum += in.Sum
					}
					return &SumToken{Sum: sum}
				})
			g2, err := app.NewFlowgraph("read-back", core.Path(
				core.NewNode(readSplit, main, core.MainRoute()),
				core.NewNode(report, workers, core.ByKey[*CountToken]("read-route", func(in *CountToken) int { return in.N })),
				core.NewNode(total, main, core.MainRoute()),
			))
			if err != nil {
				t.Fatal(err)
			}
			out, err := g2.CallTimeout(app.MasterNode(), &CountToken{}, 60*time.Second)
			if err != nil {
				t.Fatal(err)
			}
			if got := out.(*SumToken).Sum; got != calls*per {
				t.Fatalf("state total = %d, want %d", got, calls*per)
			}
		})
	}
}
