package core_test

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
)

// buildCancelGraph builds a split -> work -> merge fan with a worker leaf
// that can be parked on the hold channel, jamming the flow-control window.
func buildCancelGraph(t *testing.T, app *core.App, name string, blocking *atomic.Bool, hold chan struct{}) *core.Flowgraph {
	t.Helper()
	main := core.MustCollection[struct{}](app, name+"-main")
	if err := main.Map(app.MasterNode()); err != nil {
		t.Fatal(err)
	}
	work := core.MustCollection[struct{}](app, name+"-work")
	if err := work.MapRoundRobin(2); err != nil {
		t.Fatal(err)
	}
	split := core.Split[*CountToken, *CountToken](name+"-split",
		func(c *core.Ctx, in *CountToken, post func(*CountToken)) {
			for i := 0; i < in.N; i++ {
				post(&CountToken{N: i})
			}
		})
	leaf := core.Leaf[*CountToken, *CountToken](name+"-work",
		func(c *core.Ctx, in *CountToken) *CountToken {
			if blocking.Load() {
				<-hold
			}
			return in
		})
	merge := core.Merge[*CountToken, *SumToken](name+"-merge",
		func(c *core.Ctx, first *CountToken, next func() (*CountToken, bool)) *SumToken {
			n := 0
			for _, ok := first, true; ok; _, ok = next() {
				n++
			}
			return &SumToken{Sum: n}
		})
	g, err := app.NewFlowgraph(name, core.Path(
		core.NewNode(split, main, core.MainRoute()),
		core.NewNode(leaf, work, core.RoundRobin()),
		core.NewNode(merge, main, core.MainRoute()),
	))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestCancelReleasesFlowControl is the cancellation contract end to end: a
// call jammed on an exhausted flow-control window is canceled; the caller
// gets ctx.Err() promptly, the abandoned tokens drain and release their
// window slots, the application stays healthy, and a second call on the
// same graph completes.
func TestCancelReleasesFlowControl(t *testing.T) {
	app := newLocalApp(t, core.Config{Window: 2}, "node0", "node1")
	var blocking atomic.Bool
	blocking.Store(true)
	hold := make(chan struct{})
	g := buildCancelGraph(t, app, "cancel", &blocking, hold)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := g.CallFrom(ctx, app.MasterNode(), &CountToken{N: 16})
		done <- err
	}()
	// Let the split jam: window 2, workers parked on hold.
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("canceled call returned %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("canceled call did not return promptly")
	}

	// Unpark the workers so the abandoned tokens drain.
	blocking.Store(false)
	close(hold)

	if err := app.Err(); err != nil {
		t.Fatalf("application failed after cancellation: %v", err)
	}
	// The canceled call must have freed its window slots: a second call
	// through the same split group machinery completes.
	out, err := g.CallTimeout(app.MasterNode(), &CountToken{N: 5}, 30*time.Second)
	if err != nil {
		t.Fatalf("second call after cancellation: %v", err)
	}
	if got := out.(*SumToken).Sum; got != 5 {
		t.Fatalf("second call merged %d tokens, want 5", got)
	}
	if err := app.Err(); err != nil {
		t.Fatalf("application failed after the follow-up call: %v", err)
	}
}

// TestCancelNestedGroupsReleasesOuterWindow: canceling a call on a graph
// with nested split–merge groups must release the *outer* group's window
// slots too (the inner merges never emit the outputs that normally carry
// the outer acknowledgement; the inner groups' reaps settle the debt).
// With a leaked outer window, the repeated calls below would exhaust the
// shared Window policy and wedge.
func TestCancelNestedGroupsReleasesOuterWindow(t *testing.T) {
	app := newLocalApp(t, core.Config{Window: 2}, "node0", "node1")
	main := core.MustCollection[struct{}](app, "n-main")
	if err := main.Map("node0"); err != nil {
		t.Fatal(err)
	}
	work := core.MustCollection[struct{}](app, "n-work")
	if err := work.Map("node1"); err != nil {
		t.Fatal(err)
	}
	var blocking atomic.Bool
	blocking.Store(true)
	hold := make(chan struct{})

	outerSplit := core.Split[*CountToken, *CountToken]("n-osplit",
		func(c *core.Ctx, in *CountToken, post func(*CountToken)) {
			for i := 0; i < in.N; i++ {
				post(&CountToken{N: 4})
			}
		})
	innerSplit := core.Split[*CountToken, *CountToken]("n-isplit",
		func(c *core.Ctx, in *CountToken, post func(*CountToken)) {
			for i := 0; i < in.N; i++ {
				post(&CountToken{N: i})
			}
		})
	leaf := core.Leaf[*CountToken, *CountToken]("n-leaf",
		func(c *core.Ctx, in *CountToken) *CountToken {
			if blocking.Load() {
				<-hold
			}
			return in
		})
	innerMerge := core.Merge[*CountToken, *SumToken]("n-imerge",
		func(c *core.Ctx, first *CountToken, next func() (*CountToken, bool)) *SumToken {
			n := 0
			for _, ok := first, true; ok; _, ok = next() {
				n++
			}
			return &SumToken{Sum: n}
		})
	outerMerge := core.Merge[*SumToken, *SumToken]("n-omerge",
		func(c *core.Ctx, first *SumToken, next func() (*SumToken, bool)) *SumToken {
			sum := 0
			for in, ok := first, true; ok; in, ok = next() {
				sum += in.Sum
			}
			return &SumToken{Sum: sum}
		})
	g, err := app.NewFlowgraph("nested", core.Path(
		core.NewNode(outerSplit, main, core.MainRoute()),
		core.NewNode(innerSplit, work, core.RoundRobin()),
		core.NewNode(leaf, work, core.RoundRobin()),
		core.NewNode(innerMerge, work, core.MainRoute()),
		core.NewNode(outerMerge, main, core.MainRoute()),
	))
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := g.CallFrom(ctx, app.MasterNode(), &CountToken{N: 8})
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("canceled nested call returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("canceled nested call did not return")
	}
	blocking.Store(false)
	close(hold)

	// Several follow-up calls through the same nested window machinery:
	// leaked outer slots would wedge these within a few iterations.
	for i := 0; i < 4; i++ {
		out, err := g.CallTimeout(app.MasterNode(), &CountToken{N: 3}, 30*time.Second)
		if err != nil {
			t.Fatalf("call %d after nested cancellation: %v", i, err)
		}
		if got := out.(*SumToken).Sum; got != 12 {
			t.Fatalf("call %d merged %d, want 12", i, got)
		}
	}
	if err := app.Err(); err != nil {
		t.Fatalf("application failed: %v", err)
	}
}

// TestCancelBeforeDispatch: an already-canceled context never starts the
// call.
func TestCancelBeforeDispatch(t *testing.T) {
	app := newLocalApp(t, core.Config{}, "node0")
	g := buildUppercase(t, app, "pre-canceled", "node0")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := g.CallFrom(ctx, app.MasterNode(), &StringToken{Str: "x"}); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

// TestCancelAsyncDeliversError: canceling an async call delivers ctx's
// error on the result channel instead of leaving the receiver parked.
func TestCancelAsyncDeliversError(t *testing.T) {
	app := newLocalApp(t, core.Config{Window: 2}, "node0", "node1")
	var blocking atomic.Bool
	blocking.Store(true)
	hold := make(chan struct{})
	defer close(hold)
	g := buildCancelGraph(t, app, "cancel-async", &blocking, hold)

	ctx, cancel := context.WithCancel(context.Background())
	ch, err := g.CallAsync(ctx, &CountToken{N: 8})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case res := <-ch:
		if !errors.Is(res.Err, context.Canceled) {
			t.Fatalf("async result %v, want context.Canceled", res.Err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("async channel never delivered the cancellation")
	}
	blocking.Store(false)
	if err := app.Err(); err != nil {
		t.Fatalf("application failed after async cancellation: %v", err)
	}
}

// TestTimeoutShimCancels: the deprecated CallTimeout now cancels the call
// on expiry (deregistering it) rather than merely abandoning the wait; the
// late result is dropped and the graph remains fully usable.
func TestTimeoutShimCancels(t *testing.T) {
	app := newLocalApp(t, core.Config{Window: 2}, "node0", "node1")
	var blocking atomic.Bool
	blocking.Store(true)
	hold := make(chan struct{})
	g := buildCancelGraph(t, app, "timeout-shim", &blocking, hold)

	_, err := g.CallTimeout(app.MasterNode(), &CountToken{N: 8}, 30*time.Millisecond)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want a deadline error", err)
	}
	// Drain the abandoned call; its late result must be discarded quietly.
	blocking.Store(false)
	close(hold)
	time.Sleep(50 * time.Millisecond)

	out, err := g.CallTimeout(app.MasterNode(), &CountToken{N: 3}, 30*time.Second)
	if err != nil {
		t.Fatalf("call after an expired call: %v", err)
	}
	if got := out.(*SumToken).Sum; got != 3 {
		t.Fatalf("merged %d tokens, want 3", got)
	}
}
