package core

import (
	"go/ast"
	"go/parser"
	"go/token"
	"reflect"
	"sort"
	"strings"
	"testing"
	"unicode"
)

// maxStatsFields are the Stats fields aggregated by maximum; everything
// else must sum. Extend this set (and Add) when adding a high-water mark.
var maxStatsFields = map[string]bool{
	"QueueHighWater": true,
	"TokensPerFrame": true,
}

// schedOwnedFields live in the scheduler, not statCounters, and are merged
// into snapshots by Runtime.Stats.
var schedOwnedFields = map[string]bool{
	"QueueHighWater":  true,
	"DrainerHandoffs": true,
}

// TestStatsAddCoversEveryField drives Add field by field through reflection:
// a field someone adds to Stats but forgets in Add keeps its old value and
// fails here, so per-node counters can never silently vanish from cluster
// aggregates.
func TestStatsAddCoversEveryField(t *testing.T) {
	typ := reflect.TypeOf(Stats{})
	for i := 0; i < typ.NumField(); i++ {
		f := typ.Field(i)
		if f.Type.Kind() != reflect.Int64 {
			t.Errorf("Stats.%s is %s; counters are int64 (update this test if that changes deliberately)", f.Name, f.Type)
			continue
		}
		s, o := &Stats{}, &Stats{}
		reflect.ValueOf(s).Elem().Field(i).SetInt(2)
		reflect.ValueOf(o).Elem().Field(i).SetInt(3)
		s.Add(o)
		got := reflect.ValueOf(s).Elem().Field(i).Int()
		want := int64(5)
		if maxStatsFields[f.Name] {
			want = 3
		}
		if got != want {
			t.Errorf("Add over Stats.%s: got %d, want %d (sum fields add, %v take the max); a field missing from Add drops per-node counts on aggregation", f.Name, got, want, keys(maxStatsFields))
		}
		if maxStatsFields[f.Name] {
			// Max must also hold when the accumulator is already larger.
			s, o = &Stats{}, &Stats{}
			reflect.ValueOf(s).Elem().Field(i).SetInt(5)
			reflect.ValueOf(o).Elem().Field(i).SetInt(3)
			s.Add(o)
			if got := reflect.ValueOf(s).Elem().Field(i).Int(); got != 5 {
				t.Errorf("Add over max field Stats.%s: got %d, want 5 (maximum, not overwrite)", f.Name, got)
			}
		}
	}
}

// TestStatCountersMirrorStats keeps the atomic backing store and the public
// struct in lockstep: every Stats field has a statCounters field of the
// same (first-rune-lowered) name, except the scheduler-owned pair, and
// vice versa.
func TestStatCountersMirrorStats(t *testing.T) {
	counters := make(map[string]bool)
	ct := reflect.TypeOf(statCounters{})
	for i := 0; i < ct.NumField(); i++ {
		counters[ct.Field(i).Name] = true
	}
	st := reflect.TypeOf(Stats{})
	for i := 0; i < st.NumField(); i++ {
		name := st.Field(i).Name
		if schedOwnedFields[name] {
			continue
		}
		if !counters[lowerFirst(name)] {
			t.Errorf("Stats.%s has no statCounters.%s backing it: the runtime can never report it", name, lowerFirst(name))
		}
		delete(counters, lowerFirst(name))
	}
	for leftover := range counters {
		t.Errorf("statCounters.%s has no Stats field: the counter is recorded but never published", leftover)
	}
}

// TestSnapshotCoversEveryCounter parses stats.go and checks the snapshot
// composite literal assigns every non-scheduler Stats field, so a counter
// cannot be backed and bumped yet dropped at snapshot time.
func TestSnapshotCoversEveryCounter(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "stats.go", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	assigned := make(map[string]bool)
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Name.Name != "snapshot" {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			kv, ok := n.(*ast.KeyValueExpr)
			if !ok {
				return true
			}
			if id, ok := kv.Key.(*ast.Ident); ok {
				assigned[id.Name] = true
			}
			return true
		})
	}
	if len(assigned) == 0 {
		t.Fatal("found no snapshot composite literal in stats.go; the test is broken")
	}
	st := reflect.TypeOf(Stats{})
	for i := 0; i < st.NumField(); i++ {
		name := st.Field(i).Name
		if schedOwnedFields[name] {
			continue
		}
		if !assigned[name] {
			t.Errorf("snapshot does not assign Stats.%s: the counter would read zero in every report", name)
		}
	}
}

func lowerFirst(s string) string {
	if s == "" {
		return s
	}
	r := []rune(s)
	r[0] = unicode.ToLower(r[0])
	return string(r)
}

func keys(m map[string]bool) string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return strings.Join(out, ", ")
}
