package core

import (
	"encoding/binary"
	"fmt"

	"repro/internal/core/ft"
)

// Wire message kinds exchanged between node runtimes. Per-sender FIFO is
// guaranteed by the transport, as with the paper's TCP connections.
const (
	msgToken    byte = 1 // an envelope carrying a serialized data object
	msgGroupEnd byte = 2 // split finished: announces the group's token count
	msgAck      byte = 3 // merge consumed a token of a group
	msgResult   byte = 4 // final graph output returning to the caller
	msgMigrate  byte = 5 // thread-instance state handoff (old owner -> new owner)
	msgFence    byte = 6 // route-change fence of the live-remap protocol

	// Fault-tolerance messages (internal/core/ft, ftengine.go). The plain
	// kinds above stay byte-identical with the layer disabled: sequenced
	// traffic uses the two *FT framings instead of growing msgToken.
	msgCheckpoint byte = 7  // checkpoint record travelling to the store (master)
	msgReplay     byte = 8  // failover restore: checkpoint record -> new owner
	msgDeath      byte = 9  // failure broadcast: a node has been declared dead
	msgTokenFT    byte = 10 // msgToken prefixed with its sender stream + sequence
	msgGroupEndFT byte = 11 // msgGroupEnd prefixed with stream + sequence
	msgCut        byte = 12 // log truncation: entries to an instance are durable
	msgPing       byte = 13 // liveness probe; receivers discard it

	// msgBatch coalesces tokens and group-ends bound for one destination
	// node into a single transport frame (Config.Batch; see link.go). With
	// batching off no msgBatch frame is ever emitted and every other kind
	// stays byte-identical.
	msgBatch byte = 14

	// msgTraced wraps the ordinary frame of a sampled envelope with its
	// trace context: [msgTraced][traceID][sentNs][inner frame]. Only sampled
	// traffic is wrapped (Config.TraceSample), so with tracing off — or for
	// the unsampled majority with it on — every kind above stays
	// byte-identical, the same discipline as the FT framings and msgBatch.
	msgTraced byte = 15
)

type groupEndMsg struct {
	Graph   string
	Node    int
	Thread  int
	GroupID uint64
	Total   int
	// CallID identifies the invocation the group belongs to, so the merge
	// side can discard group-end announcements of canceled calls instead of
	// materializing merge state nobody will consume.
	CallID uint64
	// FTStream / FTSeq sequence the announcement on its sender stream when
	// fault tolerance is enabled (msgGroupEndFT framing); zero otherwise.
	FTStream string
	FTSeq    uint64
}

type ackMsg struct {
	GroupID uint64
	Worker  int
	// RouteNode identifies the graph node whose load-balancing credits the
	// worker acknowledgement feeds (the leaf collection between the split
	// and the merge).
	Graph     string
	RouteNode int
}

type resultMsg struct {
	CallID  uint64
	Payload []byte
}

// migrateMsg is the migration envelope of the live-remap protocol: the old
// owner ships a quiesced thread instance's serialized state to the new
// owner. An empty State installs a fresh zero state (stateless collections
// and instances that were never touched on the old node). Fences is the
// number of fence pairs emitted for this epoch's flip: the new owner may
// not migrate the instance onward until that many pairs have terminally
// completed here, which certifies that no stale token of this epoch is
// still in flight through any relay chain.
type migrateMsg struct {
	Collection string
	Thread     int
	Epoch      uint64
	Fences     int
	State      []byte
	// FT is the instance's encoded fault-tolerance record (sequencing
	// cursors and retained log; see internal/core/ft) when the layer is
	// enabled. It is appended after State only when non-empty, keeping the
	// envelope byte-identical with fault tolerance off.
	FT []byte
}

// fenceMsg is one half of a sender's route-change handshake (see
// internal/core/place): Phase place.FenceClose travels the sender's old
// channel and is forwarded by the relay; place.FenceOpen travels the new
// channel directly. Src is the original sending node, preserved across
// forwarding (the transport-level source of a forwarded fence is the relay
// node, not the sender).
type fenceMsg struct {
	Collection string
	Thread     int
	Epoch      uint64
	Src        string
	Phase      byte
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func readString(b []byte) (string, []byte, error) {
	l, n := binary.Uvarint(b)
	if n <= 0 || uint64(len(b)-n) < l {
		return "", nil, fmt.Errorf("dps: truncated string")
	}
	return string(b[n : n+int(l)]), b[n+int(l):], nil
}

func appendInt(b []byte, v int) []byte {
	return binary.AppendVarint(b, int64(v))
}

func readInt(b []byte) (int, []byte, error) {
	v, n := binary.Varint(b)
	if n <= 0 {
		return 0, nil, fmt.Errorf("dps: truncated varint")
	}
	return int(v), b[n:], nil
}

func appendUint64(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

func readUint64(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, fmt.Errorf("dps: truncated uvarint")
	}
	return v, b[n:], nil
}

// appendEnvelopeHeader writes the envelope header into b; the serialized
// token payload is appended directly afterwards by the caller, avoiding an
// intermediate copy of potentially large data objects.
func appendEnvelopeHeader(b []byte, e *envelope) []byte {
	b = append(b, msgToken)
	return appendEnvelopeBody(b, e)
}

// appendTokenFT is the sequenced framing of a token envelope: the sender
// stream and sequence number travel ahead of the standard header, leaving
// msgToken byte-identical when fault tolerance is off.
func appendTokenFT(b []byte, e *envelope) []byte {
	b = append(b, msgTokenFT)
	b = appendString(b, e.FTStream)
	b = appendUint64(b, e.FTSeq)
	return appendEnvelopeBody(b, e)
}

// decodeTokenFT parses a sequenced token message body (stream, sequence,
// then the standard envelope header; Payload aliases b like decodeEnvelope).
func decodeTokenFT(b []byte) (*envelope, error) {
	stream, b, err := readString(b)
	if err != nil {
		return nil, err
	}
	seq, b, err := readUint64(b)
	if err != nil {
		return nil, err
	}
	e, err := decodeEnvelope(b)
	if err != nil {
		return nil, err
	}
	e.FTStream, e.FTSeq = stream, seq
	return e, nil
}

func appendEnvelopeBody(b []byte, e *envelope) []byte {
	b = appendString(b, e.Graph)
	b = appendInt(b, e.Node)
	b = appendInt(b, e.Thread)
	b = appendUint64(b, e.CallID)
	b = appendString(b, e.CallOrigin)
	b = appendInt(b, e.LastWorker)
	b = appendInt(b, e.CreditNode)
	b = appendInt(b, len(e.Frames))
	for _, f := range e.Frames {
		b = appendUint64(b, f.GroupID)
		b = appendInt(b, f.Index)
		b = appendString(b, f.Origin)
		b = appendInt(b, f.MergeThread)
	}
	return b
}

// encodeEnvelopeHeader is appendEnvelopeHeader into a fresh buffer.
func encodeEnvelopeHeader(e *envelope) []byte {
	return appendEnvelopeHeader(make([]byte, 0, 96), e)
}

// decodeEnvelope parses an envelope header into a pooled envelope. The
// returned envelope's Payload aliases b; the caller owns both and recycles
// them (putEnvelope after dispatch, the wire buffer once decoded).
func decodeEnvelope(b []byte) (*envelope, error) {
	e := getEnvelope()
	if err := decodeEnvelopeInto(e, b); err != nil {
		putEnvelope(e)
		return nil, err
	}
	return e, nil
}

func decodeEnvelopeInto(e *envelope, b []byte) error {
	var err error
	if e.Graph, b, err = readString(b); err != nil {
		return err
	}
	if e.Node, b, err = readInt(b); err != nil {
		return err
	}
	if e.Thread, b, err = readInt(b); err != nil {
		return err
	}
	if e.CallID, b, err = readUint64(b); err != nil {
		return err
	}
	if e.CallOrigin, b, err = readString(b); err != nil {
		return err
	}
	if e.LastWorker, b, err = readInt(b); err != nil {
		return err
	}
	if e.CreditNode, b, err = readInt(b); err != nil {
		return err
	}
	var nframes int
	if nframes, b, err = readInt(b); err != nil {
		return err
	}
	if nframes < 0 || nframes > 1<<16 {
		return fmt.Errorf("dps: implausible frame count %d", nframes)
	}
	e.Frames = make([]frame, nframes)
	for i := range e.Frames {
		f := &e.Frames[i]
		if f.GroupID, b, err = readUint64(b); err != nil {
			return err
		}
		if f.Index, b, err = readInt(b); err != nil {
			return err
		}
		if f.Origin, b, err = readString(b); err != nil {
			return err
		}
		if f.MergeThread, b, err = readInt(b); err != nil {
			return err
		}
	}
	e.Payload = b
	return nil
}

func appendGroupEnd(b []byte, m *groupEndMsg) []byte {
	b = append(b, msgGroupEnd)
	return appendGroupEndBody(b, m)
}

// appendGroupEndFT is the sequenced framing of a group-end announcement
// (see appendTokenFT).
func appendGroupEndFT(b []byte, m *groupEndMsg) []byte {
	b = append(b, msgGroupEndFT)
	b = appendString(b, m.FTStream)
	b = appendUint64(b, m.FTSeq)
	return appendGroupEndBody(b, m)
}

func decodeGroupEndFT(b []byte) (*groupEndMsg, error) {
	stream, b, err := readString(b)
	if err != nil {
		return nil, err
	}
	seq, b, err := readUint64(b)
	if err != nil {
		return nil, err
	}
	m, err := decodeGroupEnd(b)
	if err != nil {
		return nil, err
	}
	m.FTStream, m.FTSeq = stream, seq
	return m, nil
}

func appendGroupEndBody(b []byte, m *groupEndMsg) []byte {
	b = appendString(b, m.Graph)
	b = appendInt(b, m.Node)
	b = appendInt(b, m.Thread)
	b = appendUint64(b, m.GroupID)
	b = appendInt(b, m.Total)
	b = appendUint64(b, m.CallID)
	return b
}

func encodeGroupEnd(m *groupEndMsg) []byte {
	return appendGroupEnd(nil, m)
}

func decodeGroupEnd(b []byte) (*groupEndMsg, error) {
	m := &groupEndMsg{}
	var err error
	if m.Graph, b, err = readString(b); err != nil {
		return nil, err
	}
	if m.Node, b, err = readInt(b); err != nil {
		return nil, err
	}
	if m.Thread, b, err = readInt(b); err != nil {
		return nil, err
	}
	if m.GroupID, b, err = readUint64(b); err != nil {
		return nil, err
	}
	if m.Total, b, err = readInt(b); err != nil {
		return nil, err
	}
	if m.CallID, _, err = readUint64(b); err != nil {
		return nil, err
	}
	return m, nil
}

func appendAck(b []byte, m ackMsg) []byte {
	b = append(b, msgAck)
	b = appendUint64(b, m.GroupID)
	b = appendInt(b, m.Worker)
	b = appendString(b, m.Graph)
	b = appendInt(b, m.RouteNode)
	return b
}

func encodeAck(m ackMsg) []byte {
	return appendAck(nil, m)
}

func decodeAck(b []byte) (ackMsg, error) {
	var m ackMsg
	var err error
	if m.GroupID, b, err = readUint64(b); err != nil {
		return ackMsg{}, err
	}
	if m.Worker, b, err = readInt(b); err != nil {
		return ackMsg{}, err
	}
	if m.Graph, b, err = readString(b); err != nil {
		return ackMsg{}, err
	}
	if m.RouteNode, _, err = readInt(b); err != nil {
		return ackMsg{}, err
	}
	return m, nil
}

// appendResultHeader writes the result-message header; the serialized
// result token is appended directly afterwards by the caller.
func appendResultHeader(b []byte, callID uint64) []byte {
	b = append(b, msgResult)
	return appendUint64(b, callID)
}

func encodeResult(m *resultMsg) []byte {
	return append(appendResultHeader(nil, m.CallID), m.Payload...)
}

func decodeResult(b []byte) (*resultMsg, error) {
	m := &resultMsg{}
	var err error
	if m.CallID, b, err = readUint64(b); err != nil {
		return nil, err
	}
	m.Payload = b
	return m, nil
}

// appendMigrate writes a migration envelope; the state payload is appended
// after the header, mirroring the token path's single-copy layout.
func appendMigrate(b []byte, m *migrateMsg) []byte {
	b = append(b, msgMigrate)
	b = appendString(b, m.Collection)
	b = appendInt(b, m.Thread)
	b = appendUint64(b, m.Epoch)
	b = appendInt(b, m.Fences)
	b = binary.AppendUvarint(b, uint64(len(m.State)))
	b = append(b, m.State...)
	if len(m.FT) > 0 {
		b = binary.AppendUvarint(b, uint64(len(m.FT)))
		b = append(b, m.FT...)
	}
	return b
}

// decodeMigrate parses a migration envelope. State aliases b; the caller
// must fully consume it before recycling the wire buffer.
func decodeMigrate(b []byte) (*migrateMsg, error) {
	m := &migrateMsg{}
	var err error
	if m.Collection, b, err = readString(b); err != nil {
		return nil, err
	}
	if m.Thread, b, err = readInt(b); err != nil {
		return nil, err
	}
	if m.Epoch, b, err = readUint64(b); err != nil {
		return nil, err
	}
	if m.Fences, b, err = readInt(b); err != nil {
		return nil, err
	}
	l, n := binary.Uvarint(b)
	if n <= 0 || uint64(len(b)-n) < l {
		return nil, fmt.Errorf("dps: truncated migration state")
	}
	m.State = b[n : n+int(l)]
	b = b[n+int(l):]
	if len(b) > 0 {
		l, n = binary.Uvarint(b)
		if n <= 0 || uint64(len(b)-n) < l {
			return nil, fmt.Errorf("dps: truncated migration ft record")
		}
		m.FT = b[n : n+int(l)]
	}
	return m, nil
}

func appendFence(b []byte, m *fenceMsg) []byte {
	b = append(b, msgFence)
	b = appendString(b, m.Collection)
	b = appendInt(b, m.Thread)
	b = appendUint64(b, m.Epoch)
	b = appendString(b, m.Src)
	return append(b, m.Phase)
}

func decodeFence(b []byte) (*fenceMsg, error) {
	m := &fenceMsg{}
	var err error
	if m.Collection, b, err = readString(b); err != nil {
		return nil, err
	}
	if m.Thread, b, err = readInt(b); err != nil {
		return nil, err
	}
	if m.Epoch, b, err = readUint64(b); err != nil {
		return nil, err
	}
	if m.Src, b, err = readString(b); err != nil {
		return nil, err
	}
	if len(b) < 1 {
		return nil, fmt.Errorf("dps: truncated fence")
	}
	m.Phase = b[0]
	return m, nil
}

// appendTracedHeader writes the trace-context prefix of a sampled
// envelope's wire frame; the inner frame (any ordinary kind) is appended
// directly afterwards by the caller. sentNs is the sender's clock at
// transmit time, backing the receiver-recorded wire span.
func appendTracedHeader(b []byte, traceID uint64, sentNs int64) []byte {
	b = append(b, msgTraced)
	b = appendUint64(b, traceID)
	return binary.AppendVarint(b, sentNs)
}

// decodeTracedHeader parses a msgTraced body (the frame minus its kind
// byte), returning the trace context and the inner frame — which starts
// with its own kind byte and aliases b.
func decodeTracedHeader(b []byte) (traceID uint64, sentNs int64, inner []byte, err error) {
	if traceID, b, err = readUint64(b); err != nil {
		return 0, 0, nil, err
	}
	v, n := binary.Varint(b)
	if n <= 0 {
		return 0, 0, nil, fmt.Errorf("dps: truncated trace header")
	}
	b = b[n:]
	if len(b) == 0 {
		return 0, 0, nil, fmt.Errorf("dps: empty traced frame")
	}
	return traceID, v, b, nil
}

// --- fault-tolerance messages (ftengine.go) -------------------------------

// replayMsg restores an instance on a failover survivor: the newest
// committed checkpoint record plus the placement epoch of the failover
// flip. An empty record (Rec with no state, cursors or log) restores a
// fresh zero instance — recovery then rebuilds it by full replay.
type replayMsg struct {
	Epoch uint64
	Rec   *ft.Record
}

func appendReplay(b []byte, m *replayMsg) []byte {
	b = append(b, msgReplay)
	b = appendUint64(b, m.Epoch)
	return m.Rec.Encode(b)
}

func decodeReplay(b []byte) (*replayMsg, error) {
	m := &replayMsg{}
	var err error
	if m.Epoch, b, err = readUint64(b); err != nil {
		return nil, err
	}
	if m.Rec, err = ft.DecodeRecord(b); err != nil {
		return nil, err
	}
	return m, nil
}

func appendCheckpoint(b []byte, rec *ft.Record) []byte {
	b = append(b, msgCheckpoint)
	return rec.Encode(b)
}

// deathMsg broadcasts that a node has been declared dead, so every engine
// process sharing the cluster starts (or deduplicates) its recovery.
type deathMsg struct {
	Node string
}

func appendDeath(b []byte, m deathMsg) []byte {
	b = append(b, msgDeath)
	return appendString(b, m.Node)
}

func decodeDeath(b []byte) (deathMsg, error) {
	node, _, err := readString(b)
	return deathMsg{Node: node}, err
}

// cutMsg tells the owner of the sender stream that its retained log
// entries toward one instance are durable through Seq and may be dropped:
// either a checkpoint of that instance committed (checkpoint-driven GC) or
// the tokens were consumed on the master node, which never restores
// (ack-driven GC via the flow-control consumption hook).
type cutMsg struct {
	Stream        string // sender stream whose log is truncated
	DstCollection string // destination instance the entries were sent to
	DstThread     int
	Seq           uint64
}

func appendCut(b []byte, m cutMsg) []byte {
	b = append(b, msgCut)
	b = appendString(b, m.Stream)
	b = appendString(b, m.DstCollection)
	b = appendInt(b, m.DstThread)
	return appendUint64(b, m.Seq)
}

func decodeCut(b []byte) (cutMsg, error) {
	var m cutMsg
	var err error
	if m.Stream, b, err = readString(b); err != nil {
		return cutMsg{}, err
	}
	if m.DstCollection, b, err = readString(b); err != nil {
		return cutMsg{}, err
	}
	if m.DstThread, b, err = readInt(b); err != nil {
		return cutMsg{}, err
	}
	if m.Seq, _, err = readUint64(b); err != nil {
		return cutMsg{}, err
	}
	return m, nil
}
