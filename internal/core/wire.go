package core

import (
	"encoding/binary"
	"fmt"
)

// Wire message kinds exchanged between node runtimes. Per-sender FIFO is
// guaranteed by the transport, as with the paper's TCP connections.
const (
	msgToken    byte = 1 // an envelope carrying a serialized data object
	msgGroupEnd byte = 2 // split finished: announces the group's token count
	msgAck      byte = 3 // merge consumed a token of a group
	msgResult   byte = 4 // final graph output returning to the caller
)

type groupEndMsg struct {
	Graph   string
	Node    int
	Thread  int
	GroupID uint64
	Total   int
	// CallID identifies the invocation the group belongs to, so the merge
	// side can discard group-end announcements of canceled calls instead of
	// materializing merge state nobody will consume.
	CallID uint64
}

type ackMsg struct {
	GroupID uint64
	Worker  int
	// RouteNode identifies the graph node whose load-balancing credits the
	// worker acknowledgement feeds (the leaf collection between the split
	// and the merge).
	Graph     string
	RouteNode int
}

type resultMsg struct {
	CallID  uint64
	Payload []byte
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func readString(b []byte) (string, []byte, error) {
	l, n := binary.Uvarint(b)
	if n <= 0 || uint64(len(b)-n) < l {
		return "", nil, fmt.Errorf("dps: truncated string")
	}
	return string(b[n : n+int(l)]), b[n+int(l):], nil
}

func appendInt(b []byte, v int) []byte {
	return binary.AppendVarint(b, int64(v))
}

func readInt(b []byte) (int, []byte, error) {
	v, n := binary.Varint(b)
	if n <= 0 {
		return 0, nil, fmt.Errorf("dps: truncated varint")
	}
	return int(v), b[n:], nil
}

func appendUint64(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

func readUint64(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, fmt.Errorf("dps: truncated uvarint")
	}
	return v, b[n:], nil
}

// appendEnvelopeHeader writes the envelope header into b; the serialized
// token payload is appended directly afterwards by the caller, avoiding an
// intermediate copy of potentially large data objects.
func appendEnvelopeHeader(b []byte, e *envelope) []byte {
	b = append(b, msgToken)
	b = appendString(b, e.Graph)
	b = appendInt(b, e.Node)
	b = appendInt(b, e.Thread)
	b = appendUint64(b, e.CallID)
	b = appendString(b, e.CallOrigin)
	b = appendInt(b, e.LastWorker)
	b = appendInt(b, e.CreditNode)
	b = appendInt(b, len(e.Frames))
	for _, f := range e.Frames {
		b = appendUint64(b, f.GroupID)
		b = appendInt(b, f.Index)
		b = appendString(b, f.Origin)
		b = appendInt(b, f.MergeThread)
	}
	return b
}

// encodeEnvelopeHeader is appendEnvelopeHeader into a fresh buffer.
func encodeEnvelopeHeader(e *envelope) []byte {
	return appendEnvelopeHeader(make([]byte, 0, 96), e)
}

// decodeEnvelope parses an envelope header into a pooled envelope. The
// returned envelope's Payload aliases b; the caller owns both and recycles
// them (putEnvelope after dispatch, the wire buffer once decoded).
func decodeEnvelope(b []byte) (*envelope, error) {
	e := getEnvelope()
	if err := decodeEnvelopeInto(e, b); err != nil {
		putEnvelope(e)
		return nil, err
	}
	return e, nil
}

func decodeEnvelopeInto(e *envelope, b []byte) error {
	var err error
	if e.Graph, b, err = readString(b); err != nil {
		return err
	}
	if e.Node, b, err = readInt(b); err != nil {
		return err
	}
	if e.Thread, b, err = readInt(b); err != nil {
		return err
	}
	if e.CallID, b, err = readUint64(b); err != nil {
		return err
	}
	if e.CallOrigin, b, err = readString(b); err != nil {
		return err
	}
	if e.LastWorker, b, err = readInt(b); err != nil {
		return err
	}
	if e.CreditNode, b, err = readInt(b); err != nil {
		return err
	}
	var nframes int
	if nframes, b, err = readInt(b); err != nil {
		return err
	}
	if nframes < 0 || nframes > 1<<16 {
		return fmt.Errorf("dps: implausible frame count %d", nframes)
	}
	e.Frames = make([]frame, nframes)
	for i := range e.Frames {
		f := &e.Frames[i]
		if f.GroupID, b, err = readUint64(b); err != nil {
			return err
		}
		if f.Index, b, err = readInt(b); err != nil {
			return err
		}
		if f.Origin, b, err = readString(b); err != nil {
			return err
		}
		if f.MergeThread, b, err = readInt(b); err != nil {
			return err
		}
	}
	e.Payload = b
	return nil
}

func appendGroupEnd(b []byte, m *groupEndMsg) []byte {
	b = append(b, msgGroupEnd)
	b = appendString(b, m.Graph)
	b = appendInt(b, m.Node)
	b = appendInt(b, m.Thread)
	b = appendUint64(b, m.GroupID)
	b = appendInt(b, m.Total)
	b = appendUint64(b, m.CallID)
	return b
}

func encodeGroupEnd(m *groupEndMsg) []byte {
	return appendGroupEnd(nil, m)
}

func decodeGroupEnd(b []byte) (*groupEndMsg, error) {
	m := &groupEndMsg{}
	var err error
	if m.Graph, b, err = readString(b); err != nil {
		return nil, err
	}
	if m.Node, b, err = readInt(b); err != nil {
		return nil, err
	}
	if m.Thread, b, err = readInt(b); err != nil {
		return nil, err
	}
	if m.GroupID, b, err = readUint64(b); err != nil {
		return nil, err
	}
	if m.Total, b, err = readInt(b); err != nil {
		return nil, err
	}
	if m.CallID, _, err = readUint64(b); err != nil {
		return nil, err
	}
	return m, nil
}

func appendAck(b []byte, m ackMsg) []byte {
	b = append(b, msgAck)
	b = appendUint64(b, m.GroupID)
	b = appendInt(b, m.Worker)
	b = appendString(b, m.Graph)
	b = appendInt(b, m.RouteNode)
	return b
}

func encodeAck(m ackMsg) []byte {
	return appendAck(nil, m)
}

func decodeAck(b []byte) (ackMsg, error) {
	var m ackMsg
	var err error
	if m.GroupID, b, err = readUint64(b); err != nil {
		return ackMsg{}, err
	}
	if m.Worker, b, err = readInt(b); err != nil {
		return ackMsg{}, err
	}
	if m.Graph, b, err = readString(b); err != nil {
		return ackMsg{}, err
	}
	if m.RouteNode, _, err = readInt(b); err != nil {
		return ackMsg{}, err
	}
	return m, nil
}

// appendResultHeader writes the result-message header; the serialized
// result token is appended directly afterwards by the caller.
func appendResultHeader(b []byte, callID uint64) []byte {
	b = append(b, msgResult)
	return appendUint64(b, callID)
}

func encodeResult(m *resultMsg) []byte {
	return append(appendResultHeader(nil, m.CallID), m.Payload...)
}

func decodeResult(b []byte) (*resultMsg, error) {
	m := &resultMsg{}
	var err error
	if m.CallID, b, err = readUint64(b); err != nil {
		return nil, err
	}
	m.Payload = b
	return m, nil
}
