package core

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// BenchCallRegistry measures the pending-call registry in isolation: callers
// goroutines register and settle calls back-to-back through the real
// registerCall/completeCall path (admission counter, shard map store,
// settlement send, entry recycling) with no graph, wire or timer work in the
// loop, and the sustained ops/s is returned. One op is one full
// register→complete→receive→recycle cycle.
//
// This is the seam the serve saturation experiment (dps-bench -exp serve)
// uses to report the sharded registry against the historical single-mutex
// table: end-to-end serve rows include the engine and TCP cost per call, so
// their mutex-vs-sharded gap narrows on small hosts where the wire dominates;
// this row isolates the data structure the tentpole replaced.
func BenchCallRegistry(shards, callers int, span time.Duration) float64 {
	app, err := NewLocalApp(Config{CallShards: shards}, "reg0")
	if err != nil {
		panic(err)
	}
	defer app.Close()
	rt, _ := app.runtime("reg0")
	ctx := context.Background()
	var (
		ops  atomic.Int64
		stop atomic.Bool
		wg   sync.WaitGroup
	)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				id, ce, err := app.registerCall(ctx, rt)
				if err != nil {
					// No admission budget is configured; registration
					// cannot be refused.
					continue
				}
				app.completeCall(id, CallResult{})
				<-ce.ch
				recycleCallEntry(ce)
				ops.Add(1)
			}
		}()
	}
	time.Sleep(span)
	stop.Store(true)
	wg.Wait()
	return float64(ops.Load()) / span.Seconds()
}
