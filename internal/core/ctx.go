package core

import (
	"context"
	"fmt"
	"time"
)

// Ctx is the execution context passed to every operation body. It exposes
// the thread's identity and state, and implements posting and group
// consumption with DPS semantics: the thread's execution lock is released
// whenever the operation blocks (flow-controlled posts, waiting for the
// next group token, nested graph calls), so other operations of the same
// thread keep making progress — e.g. a stalled split and the merge feeding
// its window on one main thread.
type Ctx struct {
	rt    *Runtime
	inst  *threadInstance
	graph *Flowgraph
	node  *GraphNode
	env   *envelope

	// callID identifies the flow-graph invocation this execution belongs
	// to; it outlives env (which is recycled on completion) so the
	// cancellation paths can consult it at any point.
	callID uint64

	sg      *splitGroup // group opened by this split/stream execution
	mg      *mergeGroup // group consumed by this merge/stream execution
	postSeq int

	// drainer is true while the goroutine executing this operation holds
	// its thread instance's queue-drainer role. The first time the
	// operation blocks it hands the role off (see yieldInstLock) so queued
	// executions keep flowing, exactly as the seed's goroutine-per-token
	// scheme allowed.
	drainer bool
}

// yieldInstLock releases the thread's FIFO execution lock because the
// operation is about to block, first handing off the dispatch-drainer role
// if this goroutine holds it. Every blocking point (flow-controlled posts,
// merge next, nested graph calls) must use this instead of unlocking
// directly; the matching reacquire is relockInst, which deliberately does
// not re-take the drainer role. With fault tolerance enabled the pair also
// maintains the instance's parked-execution count, so a checkpoint item
// never captures while an operation is suspended mid-body.
func (c *Ctx) yieldInstLock() {
	if c.rt.app.ftOn {
		c.inst.yielded.Add(1)
	}
	if c.drainer {
		c.drainer = false
		c.inst.exec.Relinquish()
	}
	c.inst.exec.Unlock()
}

// relockInst reacquires the execution lock after a yieldInstLock.
func (c *Ctx) relockInst() {
	c.inst.exec.Lock()
	if c.rt.app.ftOn {
		c.inst.yielded.Add(-1)
	}
}

// Node returns the cluster node name the operation is executing on.
func (c *Ctx) Node() string { return c.rt.name }

// ThreadIndex returns the thread's index within its collection.
func (c *Ctx) ThreadIndex() int { return c.inst.index }

// ThreadCount returns the size of the executing thread's collection.
func (c *Ctx) ThreadCount() int { return c.inst.tc.ThreadCount() }

// State returns the thread's private state (*S for a collection created
// with NewCollection[S]); see also the typed helper StateOf.
func (c *Ctx) State() any { return c.inst.state }

// Graph returns the flow graph being executed.
func (c *Ctx) Graph() *Flowgraph { return c.graph }

// App returns the owning application.
func (c *Ctx) App() *App { return c.rt.app }

// GroupIndex returns the index of the current input token within its group
// (the posting order assigned by the split), or -1 outside a group.
func (c *Ctx) GroupIndex() int {
	if fr, ok := c.env.topFrame(); ok {
		return fr.Index
	}
	return -1
}

// CallGraph invokes another flow graph and waits for its result, releasing
// the thread while blocked. Called on a graph exposed by another
// application this is the paper's inter-application parallel service call
// (Figure 10): the call behaves like a leaf operation, preserving
// pipelining and token queueing. The nested call inherits the originating
// call's context, so canceling the outer call cancels the service call too.
func (c *Ctx) CallGraph(g *Flowgraph, tok Token) (Token, error) {
	origin := c.rt.name
	if g.app != c.rt.app {
		// Foreign application: its result returns to its own master node
		// and reaches us through the in-process call table.
		origin = g.app.MasterNode()
	}
	ch, err := g.CallAsyncFrom(c.callContext(), origin, tok)
	if err != nil {
		return nil, err
	}
	c.yieldInstLock()
	res := <-ch
	c.relockInst()
	return res.Value, res.Err
}

// callContext returns the context of the call this execution belongs to,
// or nil when the call is no longer pending (e.g. already canceled). The
// engine only has the context of calls originated by this process; tokens
// arriving from a foreign process (real TCP kernels) see nil and rely on
// the application-failure path alone.
func (c *Ctx) callContext() context.Context {
	return c.rt.app.callContext(c.callID)
}

// checkCanceled panics with the call context's error if the invocation this
// execution belongs to was canceled, unwinding the operation. recoverOp
// recognizes the unwind and cleans up without failing the application.
func (c *Ctx) checkCanceled() {
	if c.rt.app.callAborted(c.callID) {
		panic(opError{context.Canceled})
	}
}

// failIfAborted panics with the application error if a failure was
// recorded, unwinding blocked operations.
func (c *Ctx) failIfAborted() {
	if err := c.rt.app.Err(); err != nil {
		panic(opError{err})
	}
}

// postOut posts an output token according to the executing operation's
// kind: leaves forward the accounting frames unchanged, splits and streams
// push a frame of their group (blocking on the flow-control gate), and
// merges pop the completed group's frame.
func (c *Ctx) postOut(tok Token) {
	if tok == nil {
		panic(opError{fmt.Errorf("posted nil token")})
	}
	c.checkCanceled()
	t, err := tokType(tok)
	if err != nil {
		panic(opError{err})
	}
	seq := c.postSeq
	c.postSeq++
	g := c.graph

	var frames []frame
	lastWorker, creditNode := -1, -1
	switch c.node.op.kind {
	case KindLeaf:
		frames = c.env.Frames
		// Carry the load-balancing charge through to the merge.
		lastWorker, creditNode = c.env.LastWorker, c.env.CreditNode
	case KindSplit:
		fr := c.pushGroupFrame(tok, seq)
		frames = append(append(make([]frame, 0, len(c.env.Frames)+1), c.env.Frames...), fr)
	case KindStream:
		fr := c.pushGroupFrame(tok, seq)
		outer := c.env.Frames[:len(c.env.Frames)-1]
		frames = append(append(make([]frame, 0, len(outer)+1), outer...), fr)
	case KindMerge:
		// A merge produces its single output only after the whole group has
		// been consumed; posting earlier is a programming error (the paper's
		// waitForNextToken loop runs to completion before postToken).
		c.mg.mu.Lock()
		complete := c.mg.total >= 0 && c.mg.consumed >= c.mg.total
		c.mg.mu.Unlock()
		if !complete {
			panic(opError{fmt.Errorf("merge posted its output before consuming its group (call next until it reports false)")})
		}
		frames = c.env.Frames[:len(c.env.Frames)-1]
	}

	if c.node.id == g.exit {
		c.rt.lnk.sendResult(c.env, tok)
		return
	}

	succ, err := g.successorFor(c.node.id, t)
	if err != nil {
		panic(opError{err})
	}
	succNode := g.nodes[succ]
	var thread int
	if succNode.op.kind == KindMerge || succNode.op.kind == KindStream {
		if len(frames) == 0 {
			panic(opError{fmt.Errorf("no group frame routing into %s %q", succNode.op.kind, succNode.op.name)})
		}
		thread = frames[len(frames)-1].MergeThread
	} else {
		thread = c.pickRoute(succNode, tok, seq, succ)
	}

	isOpenerPost := c.node.op.kind == KindSplit || c.node.op.kind == KindStream
	if isOpenerPost && succNode.op.kind == KindLeaf {
		c.rt.credit(g.name, succ, succNode.tc.ThreadCount()).Charge(thread)
		lastWorker, creditNode = thread, succ
	}

	env := getEnvelope()
	env.Graph = g.name
	env.Node = succ
	env.Thread = thread
	env.CallID = c.env.CallID
	env.CallOrigin = c.env.CallOrigin
	env.LastWorker = lastWorker
	env.CreditNode = creditNode
	env.Frames = frames
	env.Token = tok
	env.ftSender = c.inst.ft        // nil unless fault tolerance is enabled
	env.ftInStream = c.env.FTStream // the execution's input stream (determinant)
	env.ftInSeq = c.env.FTSeq       // ...and its sequence there (regen attribution)
	if c.env.TraceID != 0 {
		// Trace context propagates to every output of a sampled execution:
		// across splits and merges the outputs inherit the input's trace ID,
		// so the whole call shares one timeline.
		env.TraceID = c.env.TraceID
		c.rt.traceSpan(env.TraceID, "post", c.node.op.name, time.Now().UnixNano(), 0)
	}
	c.rt.routeToken(env, succNode.tc, thread)
}

// pickRoute evaluates a node's routing function with bounds checking.
func (c *Ctx) pickRoute(succNode *GraphNode, tok Token, seq int, succID int) int {
	count := succNode.tc.ThreadCount()
	if count == 0 {
		panic(opError{fmt.Errorf("collection %q is not mapped", succNode.tc.Name())})
	}
	ct := c.rt.credit(c.graph.name, succID, count)
	rc := RouteCtx{ThreadCount: count, Seq: seq, Outstanding: ct.Outstanding}
	idx := succNode.route.pick(tok, rc)
	if idx < 0 || idx >= count {
		panic(opError{fmt.Errorf("route %q returned thread %d for collection %q of %d threads", succNode.route.Name(), idx, succNode.tc.Name(), count)})
	}
	return idx
}

// pushGroupFrame allocates the next index in the execution's open group,
// fixing the paired merge instance on the first post and acquiring a slot
// on the group's flow-control gate (blocking while the policy's window is
// exhausted).
func (c *Ctx) pushGroupFrame(tok Token, seq int) frame {
	sg := c.sg
	if sg == nil {
		panic(opError{fmt.Errorf("internal: opener post without a split group")})
	}
	sg.mu.Lock()
	if sg.mergeThread < 0 {
		closerNode := sg.graph.nodes[sg.closer]
		count := closerNode.tc.ThreadCount()
		if count == 0 {
			sg.mu.Unlock()
			panic(opError{fmt.Errorf("collection %q is not mapped", closerNode.tc.Name())})
		}
		ct := c.rt.credit(sg.graph.name, sg.closer, count)
		rc := RouteCtx{ThreadCount: count, Seq: seq, Outstanding: ct.Outstanding}
		mt := closerNode.route.pick(tok, rc)
		if mt < 0 || mt >= count {
			sg.mu.Unlock()
			panic(opError{fmt.Errorf("route %q returned thread %d for collection %q of %d threads", closerNode.route.Name(), mt, closerNode.tc.Name(), count)})
		}
		sg.mergeThread = mt
	}
	mt := sg.mergeThread
	sg.mu.Unlock()

	if !sg.gate.TryAcquire() {
		// failed must also observe call cancellation: the cancel
		// bookkeeping can land between our cancellation check and the
		// gate wait, in which case the context is already detached from
		// the call table and only the canceled set knows.
		failed := func() error {
			if err := c.rt.app.Err(); err != nil {
				return err
			}
			if c.rt.app.callAborted(c.callID) {
				return context.Canceled
			}
			return nil
		}
		var stallNs int64
		stalled, err := sg.gate.Acquire(c.callContext(), func() {
			// First wait on an exhausted window: count the stall and
			// release the thread so other operations keep making progress.
			if c.env.TraceID != 0 {
				stallNs = time.Now().UnixNano()
			}
			c.rt.stats.windowStalls.Add(1)
			c.yieldInstLock()
		}, failed)
		if stalled {
			if stallNs != 0 {
				c.rt.traceSpan(c.env.TraceID, "stall", c.node.op.name, stallNs, time.Now().UnixNano()-stallNs)
			}
			// Reacquire so the execution continues (or unwinds) holding
			// its lock, balancing the deferred unlock.
			c.relockInst()
		}
		if err != nil {
			panic(opError{err})
		}
	}

	sg.mu.Lock()
	idx := sg.posted
	sg.posted++
	sg.mu.Unlock()
	return frame{GroupID: sg.id, Index: idx, Origin: c.rt.name, MergeThread: mt}
}

// nextIn yields the next token of the group consumed by a merge/stream
// execution, acknowledging consumption to the split side.
func (c *Ctx) nextIn() (Token, bool) {
	mg := c.mg
	if mg == nil {
		panic(opError{fmt.Errorf("internal: next called outside a collector")})
	}
	mg.mu.Lock()
	unlocked := false
	for {
		if len(mg.buf) > 0 {
			bt := mg.buf[0]
			mg.buf = mg.buf[1:]
			mg.consumed++
			mg.mu.Unlock()
			if unlocked {
				c.relockInst()
			}
			c.rt.ackConsumed(bt)
			c.rt.ftConsumed(bt, c.inst)
			return bt.tok, true
		}
		if mg.total >= 0 && mg.consumed >= mg.total {
			mg.mu.Unlock()
			if unlocked {
				c.relockInst()
			}
			return nil, false
		}
		// Consult cancellation before parking, not only after wake-ups:
		// the cancel broadcast may have happened before this execution
		// reached the wait, and no further token or group-end will come.
		if c.rt.app.callAborted(c.callID) {
			mg.mu.Unlock()
			if unlocked {
				c.relockInst()
			}
			panic(opError{context.Canceled})
		}
		if !unlocked {
			c.yieldInstLock()
			unlocked = true
		}
		mg.cond.Wait()
		if err := c.rt.app.Err(); err != nil {
			mg.mu.Unlock()
			if unlocked {
				// Keep the thread lock balanced for the deferred unlock.
				c.relockInst()
			}
			panic(opError{err})
		}
	}
}
