package core

import "sync"

// Pools for the two per-token allocations of the dispatch hot path: the
// envelope wrapper and the wire buffer. Envelopes cycle strictly inside one
// process (posted -> dispatched -> executed -> recycled). Wire buffers cross
// the transport: the sender encodes into a pooled buffer, the transport
// delivers it, and the receiving runtime recycles it after decoding (see
// the ownership contract on transport.Handler). With the in-process fabrics
// both ends share this pool, so steady-state traffic reuses a small set of
// buffers sized by the largest token.

var envelopePool = sync.Pool{New: func() any { return new(envelope) }}

// getEnvelope returns a zeroed envelope.
func getEnvelope() *envelope {
	return envelopePool.Get().(*envelope)
}

// putEnvelope recycles an envelope whose execution has completed. Frames
// are deliberately dropped rather than reused: leaf posts alias the
// incoming frame slice into outgoing envelopes, so the backing array may
// outlive this envelope.
func putEnvelope(e *envelope) {
	*e = envelope{}
	envelopePool.Put(e)
}

// maxPooledWireBuf bounds the buffers kept for reuse so one giant token
// does not pin its footprint forever (the pool is also GC-clearable).
const maxPooledWireBuf = 8 << 20

var wireBufPool sync.Pool

// getWireBuf returns an empty buffer with whatever capacity a previous
// message left behind.
func getWireBuf() []byte {
	if v := wireBufPool.Get(); v != nil {
		return v.([]byte)[:0]
	}
	return make([]byte, 0, 1024)
}

// putWireBuf recycles a wire buffer once its bytes are fully consumed.
func putWireBuf(b []byte) {
	if c := cap(b); c > 0 && c <= maxPooledWireBuf {
		wireBufPool.Put(b[:0]) //nolint:staticcheck // slice header boxing is far cheaper than the buffer
	}
}
