package core

import (
	"time"

	"repro/internal/trace"
)

// This file is the engine's observability surface: span recording for
// sampled calls (Config.TraceSample), the merged latency histograms behind
// /metrics, and the live gauges an exporter scrapes. The recording
// discipline is uniform across the engine — every site gates on the
// envelope's trace ID (or the call entry's sampled flag) before touching a
// clock or the ring, so the unsampled hot path pays one predictable branch
// and allocates nothing.

// traceSpan records one span of a sampled call into this node's ring.
func (rt *Runtime) traceSpan(id uint64, kind, name string, start, dur int64) {
	rt.ring.Record(trace.Span{Trace: id, Kind: kind, Node: rt.name, Name: name, Start: start, Dur: dur})
}

// traceQueueWait closes the dispatch-queue interval opened by dispatchToken
// for a sampled envelope: the wait becomes a queue span and a sample in the
// node's queue-wait histogram. Callers gate on env.TraceID.
func (rt *Runtime) traceQueueWait(env *envelope) {
	if env.traceEnqNs == 0 {
		return
	}
	wait := time.Now().UnixNano() - env.traceEnqNs
	if wait < 0 {
		wait = 0
	}
	rt.traceSpan(env.TraceID, "queue", "", env.traceEnqNs, wait)
	rt.qmu.Lock()
	rt.qwait.Add(time.Duration(wait))
	rt.qmu.Unlock()
	env.traceEnqNs = 0
}

// TraceSpans returns the buffered spans of one trace (0 selects every
// buffered trace) recorded by this runtime.
func (rt *Runtime) TraceSpans(id uint64) []trace.Span {
	return rt.ring.Spans(id)
}

// QueueDepth reports the tokens currently sitting in this node's dispatch
// queues — the scheduler's live run-queue depth, a saturation gauge.
func (rt *Runtime) QueueDepth() int64 {
	return rt.sched.Pending()
}

// TraceSpans returns the buffered spans of one trace across every node of
// the application, ordered into a timeline (0 selects every buffered
// trace). With multi-process deployments each process only sees its own
// nodes; the kernel control plane merges across processes (dps-kernel
// -trace-dump).
func (app *App) TraceSpans(id uint64) []trace.Span {
	var out []trace.Span
	for _, rt := range app.allRuntimes() {
		out = append(out, rt.ring.Spans(id)...)
	}
	trace.SortSpans(out)
	return out
}

// CallLatency returns the merged call-latency histogram: wall time from
// admission to result delivery of every completed call, across the
// registry's shards. Recorded for every call, sampled or not — one clock
// read per call, amortized over its whole graph execution.
func (app *App) CallLatency() *trace.Hist {
	out := &trace.Hist{}
	for i := range app.callreg.shards {
		sh := &app.callreg.shards[i]
		sh.mu.Lock()
		out.Merge(&sh.lat)
		sh.mu.Unlock()
	}
	return out
}

// QueueWait returns the merged dispatch-queue wait histogram of sampled
// executions across the application's nodes. Empty unless TraceSample is
// set: the engine only measures queue waits it already traced.
func (app *App) QueueWait() *trace.Hist {
	out := &trace.Hist{}
	for _, rt := range app.allRuntimes() {
		rt.qmu.Lock()
		out.Merge(&rt.qwait)
		rt.qmu.Unlock()
	}
	return out
}

// QueueDepth sums the live dispatch-queue depth over the application's
// nodes (see Runtime.QueueDepth).
func (app *App) QueueDepth() int64 {
	var n int64
	for _, rt := range app.allRuntimes() {
		n += rt.sched.Pending()
	}
	return n
}
