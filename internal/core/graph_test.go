package core_test

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

// helpers building small op sets for validation tests.
func valOps() (split, leaf, merge, stream *core.OpDef) {
	split = core.Split[*CountToken, *CountToken]("vsplit",
		func(c *core.Ctx, in *CountToken, post func(*CountToken)) { post(in) })
	leaf = core.Leaf[*CountToken, *CountToken]("vleaf",
		func(c *core.Ctx, in *CountToken) *CountToken { return in })
	merge = core.Merge[*CountToken, *CountToken]("vmerge",
		func(c *core.Ctx, first *CountToken, next func() (*CountToken, bool)) *CountToken {
			for _, ok := first, true; ok; _, ok = next() {
			}
			return first
		})
	stream = core.Stream[*CountToken, *CountToken]("vstream",
		func(c *core.Ctx, first *CountToken, next func() (*CountToken, bool), post func(*CountToken)) {
			for in, ok := first, true; ok; in, ok = next() {
				post(in)
			}
		})
	return
}

func valApp(t *testing.T) (*core.App, *core.ThreadCollection) {
	t.Helper()
	app := newLocalApp(t, core.Config{}, "node0")
	tc := core.MustCollection[struct{}](app, "tc")
	if err := tc.Map("node0"); err != nil {
		t.Fatal(err)
	}
	return app, tc
}

func expectBuildError(t *testing.T, app *core.App, name string, b *core.PathBuilder, wantSub string) {
	t.Helper()
	_, err := app.NewFlowgraph(name, b)
	if err == nil {
		t.Fatalf("graph %q: expected validation error containing %q", name, wantSub)
	}
	if !strings.Contains(err.Error(), wantSub) {
		t.Fatalf("graph %q: error %q does not contain %q", name, err, wantSub)
	}
}

func TestValidateUnbalancedMergeWithoutSplit(t *testing.T) {
	app, tc := valApp(t)
	_, leaf, merge, _ := valOps()
	expectBuildError(t, app, "g", core.Path(
		core.NewNode(leaf, tc, core.MainRoute()),
		core.NewNode(merge, tc, core.MainRoute()),
	), "no enclosing split")
}

func TestValidateUnmatchedSplit(t *testing.T) {
	app, tc := valApp(t)
	split, leaf, _, _ := valOps()
	expectBuildError(t, app, "g", core.Path(
		core.NewNode(split, tc, core.MainRoute()),
		core.NewNode(leaf, tc, core.MainRoute()),
	), "unmatched split")
}

func TestValidateTypeMismatch(t *testing.T) {
	app, tc := valApp(t)
	emitA := core.Leaf[*CountToken, *AToken]("emitA",
		func(c *core.Ctx, in *CountToken) *AToken { return &AToken{} })
	wantB := core.Leaf[*BToken, *BToken]("wantB",
		func(c *core.Ctx, in *BToken) *BToken { return in })
	expectBuildError(t, app, "g", core.Path(
		core.NewNode(emitA, tc, core.MainRoute()),
		core.NewNode(wantB, tc, core.MainRoute()),
	), "no successor accepts")
}

func TestValidateAmbiguousPaths(t *testing.T) {
	app, tc := valApp(t)
	split, leaf, merge, _ := valOps()
	leaf2 := core.Leaf[*CountToken, *CountToken]("vleaf2",
		func(c *core.Ctx, in *CountToken) *CountToken { return in })
	nodeS := core.NewNode(split, tc, core.MainRoute())
	nodeM := core.NewNode(merge, tc, core.MainRoute())
	b := core.Path(nodeS, core.NewNode(leaf, tc, core.MainRoute()), nodeM).
		Add(nodeS, core.NewNode(leaf2, tc, core.MainRoute()), nodeM)
	expectBuildError(t, app, "g", b, "ambiguous")
}

func TestValidateCycle(t *testing.T) {
	app, tc := valApp(t)
	_, leaf, _, _ := valOps()
	leaf2 := core.Leaf[*CountToken, *CountToken]("vleaf2",
		func(c *core.Ctx, in *CountToken) *CountToken { return in })
	n1 := core.NewNode(leaf, tc, core.MainRoute())
	n2 := core.NewNode(leaf2, tc, core.MainRoute())
	b := core.Path(n1, n2).Add(n2, n1)
	if _, err := app.NewFlowgraph("g", b); err == nil {
		t.Fatal("expected cycle detection error")
	}
}

func TestValidateSelfLoop(t *testing.T) {
	app, tc := valApp(t)
	_, leaf, _, _ := valOps()
	n := core.NewNode(leaf, tc, core.MainRoute())
	expectBuildError(t, app, "g", core.Path(n, n), "self-loop")
}

func TestValidateStreamAsExit(t *testing.T) {
	app, tc := valApp(t)
	split, _, _, stream := valOps()
	expectBuildError(t, app, "g", core.Path(
		core.NewNode(split, tc, core.MainRoute()),
		core.NewNode(stream, tc, core.MainRoute()),
	), "exit")
}

func TestValidateNodeReuseAcrossGraphs(t *testing.T) {
	app, tc := valApp(t)
	_, leaf, _, _ := valOps()
	n := core.NewNode(leaf, tc, core.MainRoute())
	if _, err := app.NewFlowgraph("g1", core.Path(n)); err != nil {
		t.Fatal(err)
	}
	expectBuildError(t, app, "g2", core.Path(n), "already belongs")
}

func TestValidateDuplicateGraphName(t *testing.T) {
	app, tc := valApp(t)
	_, leaf, _, _ := valOps()
	if _, err := app.NewFlowgraph("dup", core.Path(core.NewNode(leaf, tc, core.MainRoute()))); err != nil {
		t.Fatal(err)
	}
	leaf2 := core.Leaf[*CountToken, *CountToken]("vleaf2",
		func(c *core.Ctx, in *CountToken) *CountToken { return in })
	expectBuildError(t, app, "dup", core.Path(core.NewNode(leaf2, tc, core.MainRoute())), "already exists")
}

func TestSingleLeafGraph(t *testing.T) {
	app, tc := valApp(t)
	leaf := core.Leaf[*CountToken, *CountToken]("inc",
		func(c *core.Ctx, in *CountToken) *CountToken { return &CountToken{N: in.N + 1} })
	g, err := app.NewFlowgraph("single", core.Path(core.NewNode(leaf, tc, core.MainRoute())))
	if err != nil {
		t.Fatal(err)
	}
	out, err := g.CallTimeout(app.MasterNode(), &CountToken{N: 41}, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got := out.(*CountToken).N; got != 42 {
		t.Fatalf("got %d", got)
	}
}

func TestDOTExport(t *testing.T) {
	app, tc := valApp(t)
	split, leaf, merge, _ := valOps()
	g, err := app.NewFlowgraph("dot", core.Path(
		core.NewNode(split, tc, core.MainRoute()),
		core.NewNode(leaf, tc, core.RoundRobin()),
		core.NewNode(merge, tc, core.MainRoute()),
	))
	if err != nil {
		t.Fatal(err)
	}
	dot := g.DOT()
	for _, want := range []string{"digraph", "vsplit", "vleaf", "vmerge", "->", "round-robin"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q:\n%s", want, dot)
		}
	}
}

func TestParseMapping(t *testing.T) {
	cases := []struct {
		spec string
		want []string
		err  bool
	}{
		{"nodeA*2 nodeB", []string{"nodeA", "nodeA", "nodeB"}, false},
		{"a", []string{"a"}, false},
		{"a*1 b*3", []string{"a", "b", "b", "b"}, false},
		{"  a   b  ", []string{"a", "b"}, false},
		{"", nil, true},
		{"a*0", nil, true},
		{"a*x", nil, true},
		{"*3", nil, true},
	}
	for _, tc := range cases {
		got, err := core.ParseMapping(tc.spec)
		if tc.err {
			if err == nil {
				t.Errorf("ParseMapping(%q): expected error", tc.spec)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseMapping(%q): %v", tc.spec, err)
			continue
		}
		if len(got) != len(tc.want) {
			t.Errorf("ParseMapping(%q) = %v, want %v", tc.spec, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("ParseMapping(%q) = %v, want %v", tc.spec, got, tc.want)
				break
			}
		}
	}
}

func TestMapUnknownNode(t *testing.T) {
	app := newLocalApp(t, core.Config{}, "node0")
	tc := core.MustCollection[struct{}](app, "tc")
	if err := tc.Map("ghost"); err == nil {
		t.Fatal("expected unknown node error")
	}
}

func TestCallUnmappedCollection(t *testing.T) {
	app := newLocalApp(t, core.Config{}, "node0")
	tc := core.MustCollection[struct{}](app, "unmapped")
	leaf := core.Leaf[*CountToken, *CountToken]("id",
		func(c *core.Ctx, in *CountToken) *CountToken { return in })
	g, err := app.NewFlowgraph("g", core.Path(core.NewNode(leaf, tc, core.MainRoute())))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Call(&CountToken{}); err == nil || !strings.Contains(err.Error(), "not mapped") {
		t.Fatalf("expected not-mapped error, got %v", err)
	}
}

func TestCallWrongTokenType(t *testing.T) {
	app, tc := valApp(t)
	leaf := core.Leaf[*CountToken, *CountToken]("id",
		func(c *core.Ctx, in *CountToken) *CountToken { return in })
	g, err := app.NewFlowgraph("g", core.Path(core.NewNode(leaf, tc, core.MainRoute())))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Call(&AToken{}); err == nil || !strings.Contains(err.Error(), "does not accept") {
		t.Fatalf("expected type error, got %v", err)
	}
}
