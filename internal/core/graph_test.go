package core_test

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

// helpers building small op sets for validation tests.
func valOps() (split, leaf, merge, stream *core.OpDef) {
	split = core.Split[*CountToken, *CountToken]("vsplit",
		func(c *core.Ctx, in *CountToken, post func(*CountToken)) { post(in) })
	leaf = core.Leaf[*CountToken, *CountToken]("vleaf",
		func(c *core.Ctx, in *CountToken) *CountToken { return in })
	merge = core.Merge[*CountToken, *CountToken]("vmerge",
		func(c *core.Ctx, first *CountToken, next func() (*CountToken, bool)) *CountToken {
			for _, ok := first, true; ok; _, ok = next() {
			}
			return first
		})
	stream = core.Stream[*CountToken, *CountToken]("vstream",
		func(c *core.Ctx, first *CountToken, next func() (*CountToken, bool), post func(*CountToken)) {
			for in, ok := first, true; ok; in, ok = next() {
				post(in)
			}
		})
	return
}

func valApp(t *testing.T) (*core.App, *core.ThreadCollection) {
	t.Helper()
	app := newLocalApp(t, core.Config{}, "node0")
	tc := core.MustCollection[struct{}](app, "tc")
	if err := tc.Map("node0"); err != nil {
		t.Fatal(err)
	}
	return app, tc
}

func expectBuildError(t *testing.T, app *core.App, name string, b *core.PathBuilder, wantSub string) {
	t.Helper()
	_, err := app.NewFlowgraph(name, b)
	if err == nil {
		t.Fatalf("graph %q: expected validation error containing %q", name, wantSub)
	}
	if !strings.Contains(err.Error(), wantSub) {
		t.Fatalf("graph %q: error %q does not contain %q", name, err, wantSub)
	}
}

func TestValidateUnbalancedMergeWithoutSplit(t *testing.T) {
	app, tc := valApp(t)
	_, leaf, merge, _ := valOps()
	expectBuildError(t, app, "g", core.Path(
		core.NewNode(leaf, tc, core.MainRoute()),
		core.NewNode(merge, tc, core.MainRoute()),
	), "no enclosing split")
}

func TestValidateUnmatchedSplit(t *testing.T) {
	app, tc := valApp(t)
	split, leaf, _, _ := valOps()
	expectBuildError(t, app, "g", core.Path(
		core.NewNode(split, tc, core.MainRoute()),
		core.NewNode(leaf, tc, core.MainRoute()),
	), "unmatched split")
}

func TestValidateTypeMismatch(t *testing.T) {
	app, tc := valApp(t)
	emitA := core.Leaf[*CountToken, *AToken]("emitA",
		func(c *core.Ctx, in *CountToken) *AToken { return &AToken{} })
	wantB := core.Leaf[*BToken, *BToken]("wantB",
		func(c *core.Ctx, in *BToken) *BToken { return in })
	expectBuildError(t, app, "g", core.Path(
		core.NewNode(emitA, tc, core.MainRoute()),
		core.NewNode(wantB, tc, core.MainRoute()),
	), "no successor accepts")
}

func TestValidateAmbiguousPaths(t *testing.T) {
	app, tc := valApp(t)
	split, leaf, merge, _ := valOps()
	leaf2 := core.Leaf[*CountToken, *CountToken]("vleaf2",
		func(c *core.Ctx, in *CountToken) *CountToken { return in })
	nodeS := core.NewNode(split, tc, core.MainRoute())
	nodeM := core.NewNode(merge, tc, core.MainRoute())
	b := core.Path(nodeS, core.NewNode(leaf, tc, core.MainRoute()), nodeM).
		Add(nodeS, core.NewNode(leaf2, tc, core.MainRoute()), nodeM)
	expectBuildError(t, app, "g", b, "ambiguous")
}

func TestValidateNoPaths(t *testing.T) {
	app, _ := valApp(t)
	expectBuildError(t, app, "g", &core.PathBuilder{}, "no paths")
}

func TestValidateEmptyPath(t *testing.T) {
	app, _ := valApp(t)
	expectBuildError(t, app, "g", core.Path(), "empty path")
}

func TestValidateNilNode(t *testing.T) {
	app, _ := valApp(t)
	expectBuildError(t, app, "g", core.Path(nil), "nil node")
}

func TestValidateMultipleEntries(t *testing.T) {
	// Two separate sources feeding one sink: both leafA and leafB have no
	// predecessors.
	app, tc := valApp(t)
	_, leaf, _, _ := valOps()
	leafB := core.Leaf[*CountToken, *CountToken]("vleafB",
		func(c *core.Ctx, in *CountToken) *CountToken { return in })
	final := core.Leaf[*CountToken, *CountToken]("vfinal",
		func(c *core.Ctx, in *CountToken) *CountToken { return in })
	nf := core.NewNode(final, tc, core.MainRoute())
	b := core.Path(core.NewNode(leaf, tc, core.MainRoute()), nf).
		Add(core.NewNode(leafB, tc, core.MainRoute()), nf)
	expectBuildError(t, app, "g", b, "multiple entry nodes")
}

func TestValidateMultipleExits(t *testing.T) {
	// One source fanning out to two sinks. Both exits accept the same
	// token type, so the ambiguity check would also fire; distinct input
	// types keep the fan-out unambiguous and isolate the exit check.
	app, tc := valApp(t)
	splitAB := core.SplitAny[*CountToken]("vsplitAB",
		[]core.Token{(*AToken)(nil), (*BToken)(nil)},
		func(c *core.Ctx, in *CountToken, post func(core.Token)) { post(&AToken{}) })
	sinkA := core.Leaf[*AToken, *AToken]("vsinkA",
		func(c *core.Ctx, in *AToken) *AToken { return in })
	sinkB := core.Leaf[*BToken, *BToken]("vsinkB",
		func(c *core.Ctx, in *BToken) *BToken { return in })
	src := core.NewNode(splitAB, tc, core.MainRoute())
	b := core.Path(src, core.NewNode(sinkA, tc, core.MainRoute())).
		Add(src, core.NewNode(sinkB, tc, core.MainRoute()))
	expectBuildError(t, app, "g", b, "multiple exit nodes")
}

func TestValidateNoEntryFullCycle(t *testing.T) {
	// Every node sits on the cycle: there is no node without predecessors.
	app, tc := valApp(t)
	_, leaf, _, _ := valOps()
	leaf2 := core.Leaf[*CountToken, *CountToken]("vleaf2",
		func(c *core.Ctx, in *CountToken) *CountToken { return in })
	n1 := core.NewNode(leaf, tc, core.MainRoute())
	n2 := core.NewNode(leaf2, tc, core.MainRoute())
	b := core.Path(n1, n2).Add(n2, n1)
	expectBuildError(t, app, "g", b, "no entry node")
}

func TestValidateNoExitCycle(t *testing.T) {
	// An entry exists but every reachable node feeds the cycle: no exit.
	app, tc := valApp(t)
	_, leaf, _, _ := valOps()
	leaf2 := core.Leaf[*CountToken, *CountToken]("vleaf2",
		func(c *core.Ctx, in *CountToken) *CountToken { return in })
	leaf3 := core.Leaf[*CountToken, *CountToken]("vleaf3",
		func(c *core.Ctx, in *CountToken) *CountToken { return in })
	n1 := core.NewNode(leaf, tc, core.MainRoute())
	n2 := core.NewNode(leaf2, tc, core.MainRoute())
	n3 := core.NewNode(leaf3, tc, core.MainRoute())
	b := core.Path(n1, n2, n3).Add(n3, n2)
	expectBuildError(t, app, "g", b, "no exit node")
}

func TestValidateUnbalancedDepths(t *testing.T) {
	// The merge is reachable both inside the split's group (depth 1) and
	// directly from the entry (depth 0): the paths are unbalanced.
	app, tc := valApp(t)
	split, leaf, merge, _ := valOps()
	entry := core.NewNode(leaf, tc, core.MainRoute())
	ns := core.NewNode(split, tc, core.MainRoute())
	nm := core.NewNode(merge, tc, core.MainRoute())
	b := core.Path(entry, ns, nm).Add(entry, nm)
	// The direct entry->merge edge and the split->merge edge give the
	// merge two different split depths. (The ambiguity check on entry's
	// successors fires for the same wiring; accept either diagnostic
	// naming the structural problem.)
	_, err := app.NewFlowgraph("g", b)
	if err == nil {
		t.Fatal("expected validation error for unbalanced paths")
	}
	if !strings.Contains(err.Error(), "unbalanced") && !strings.Contains(err.Error(), "ambiguous") {
		t.Fatalf("error %q names neither unbalanced paths nor ambiguity", err)
	}
}

func TestValidateUnbalancedDepthsDistinctTypes(t *testing.T) {
	// Same structure with distinct token types on the two paths, so the
	// ambiguity check cannot fire and the depth check is isolated: the
	// sink is reachable at depth 1 (through the split) and depth 0.
	app, tc := valApp(t)
	fanAB := core.SplitAny[*CountToken]("vfanAB",
		[]core.Token{(*AToken)(nil), (*BToken)(nil)},
		func(c *core.Ctx, in *CountToken, post func(core.Token)) { post(&AToken{}) })
	aToB := core.Leaf[*AToken, *BToken]("vaToB",
		func(c *core.Ctx, in *AToken) *BToken { return &BToken{} })
	sinkB := core.MergeAny("vsinkB", []core.Token{(*BToken)(nil)}, []core.Token{(*CountToken)(nil)},
		func(c *core.Ctx, first core.Token, next func() (core.Token, bool)) core.Token {
			for _, ok := next(); ok; _, ok = next() {
			}
			return &CountToken{}
		})
	nf := core.NewNode(fanAB, tc, core.MainRoute())
	na := core.NewNode(aToB, tc, core.MainRoute())
	nb := core.NewNode(sinkB, tc, core.MainRoute())
	// A-path: fan -> aToB (inside the group, depth 1) -> sinkB.
	// B-path: fan -> sinkB directly (depth 1)... both depth 1; to get the
	// imbalance, chain a second split on one path only.
	split2 := core.Split[*BToken, *BToken]("vsplit2",
		func(c *core.Ctx, in *BToken, post func(*BToken)) { post(in) })
	n2 := core.NewNode(split2, tc, core.MainRoute())
	b := core.Path(nf, na, n2, nb).Add(nf, nb)
	expectBuildError(t, app, "g", b, "unbalanced")
}

func TestValidateGroupClosesTwice(t *testing.T) {
	// The split's group reaches two different merges at the same depth:
	// the closer is ambiguous.
	app, tc := valApp(t)
	fanAB := core.SplitAny[*CountToken]("vfanAB",
		[]core.Token{(*AToken)(nil), (*BToken)(nil)},
		func(c *core.Ctx, in *CountToken, post func(core.Token)) { post(&AToken{}) })
	mergeA := core.MergeAny("vmergeA", []core.Token{(*AToken)(nil)}, []core.Token{(*AToken)(nil)},
		func(c *core.Ctx, first core.Token, next func() (core.Token, bool)) core.Token {
			for _, ok := next(); ok; _, ok = next() {
			}
			return &AToken{}
		})
	mergeB := core.MergeAny("vmergeB", []core.Token{(*BToken)(nil)}, []core.Token{(*BToken)(nil)},
		func(c *core.Ctx, first core.Token, next func() (core.Token, bool)) core.Token {
			for _, ok := next(); ok; _, ok = next() {
			}
			return &BToken{}
		})
	join := core.LeafAny("vjoin", []core.Token{(*AToken)(nil), (*BToken)(nil)}, []core.Token{(*CountToken)(nil)},
		func(c *core.Ctx, in core.Token, post func(core.Token)) { post(&CountToken{}) })
	nf := core.NewNode(fanAB, tc, core.MainRoute())
	na := core.NewNode(mergeA, tc, core.MainRoute())
	nb := core.NewNode(mergeB, tc, core.MainRoute())
	nj := core.NewNode(join, tc, core.MainRoute())
	b := core.Path(nf, na, nj).Add(nf, nb, nj)
	expectBuildError(t, app, "g", b, "closes at both")
}

func TestValidateSplitAsExit(t *testing.T) {
	// A split whose output feeds nothing leaves an unmatched group; the
	// depth check reports it before the exit-kind check can.
	app, tc := valApp(t)
	split, _, _, _ := valOps()
	expectBuildError(t, app, "g", core.Path(
		core.NewNode(split, tc, core.MainRoute()),
	), "unmatched split")
}

func TestValidateIncompatibleEdge(t *testing.T) {
	// Every output type of the source is routed somewhere, but one edge
	// accepts none of them: the edge itself is incompatible.
	app, tc := valApp(t)
	srcAB := core.LeafAny("vsrcAB",
		[]core.Token{(*CountToken)(nil)},
		[]core.Token{(*AToken)(nil), (*BToken)(nil)},
		func(c *core.Ctx, in core.Token, post func(core.Token)) { post(&AToken{}) })
	sinkA := core.LeafAny("vsinkA2", []core.Token{(*AToken)(nil)}, []core.Token{(*CountToken)(nil)},
		func(c *core.Ctx, in core.Token, post func(core.Token)) { post(&CountToken{}) })
	sinkB := core.LeafAny("vsinkB2", []core.Token{(*BToken)(nil)}, []core.Token{(*CountToken)(nil)},
		func(c *core.Ctx, in core.Token, post func(core.Token)) { post(&CountToken{}) })
	// wantC accepts a type the source never emits.
	wantC := core.Leaf[*SumToken, *SumToken]("vwantC",
		func(c *core.Ctx, in *SumToken) *SumToken { return in })
	join := core.LeafAny("vjoin2",
		[]core.Token{(*CountToken)(nil), (*SumToken)(nil)}, []core.Token{(*CountToken)(nil)},
		func(c *core.Ctx, in core.Token, post func(core.Token)) { post(&CountToken{}) })
	ns := core.NewNode(srcAB, tc, core.MainRoute())
	nj := core.NewNode(join, tc, core.MainRoute())
	b := core.Path(ns, core.NewNode(sinkA, tc, core.MainRoute()), nj).
		Add(ns, core.NewNode(sinkB, tc, core.MainRoute()), nj).
		Add(ns, core.NewNode(wantC, tc, core.MainRoute()), nj)
	expectBuildError(t, app, "g", b, "incompatible edge")
}

func TestValidateCycle(t *testing.T) {
	app, tc := valApp(t)
	_, leaf, _, _ := valOps()
	leaf2 := core.Leaf[*CountToken, *CountToken]("vleaf2",
		func(c *core.Ctx, in *CountToken) *CountToken { return in })
	n1 := core.NewNode(leaf, tc, core.MainRoute())
	n2 := core.NewNode(leaf2, tc, core.MainRoute())
	b := core.Path(n1, n2).Add(n2, n1)
	if _, err := app.NewFlowgraph("g", b); err == nil {
		t.Fatal("expected cycle detection error")
	}
}

func TestValidateSelfLoop(t *testing.T) {
	app, tc := valApp(t)
	_, leaf, _, _ := valOps()
	n := core.NewNode(leaf, tc, core.MainRoute())
	expectBuildError(t, app, "g", core.Path(n, n), "self-loop")
}

func TestValidateStreamAsExit(t *testing.T) {
	app, tc := valApp(t)
	split, _, _, stream := valOps()
	expectBuildError(t, app, "g", core.Path(
		core.NewNode(split, tc, core.MainRoute()),
		core.NewNode(stream, tc, core.MainRoute()),
	), "exit")
}

func TestValidateNodeReuseAcrossGraphs(t *testing.T) {
	app, tc := valApp(t)
	_, leaf, _, _ := valOps()
	n := core.NewNode(leaf, tc, core.MainRoute())
	if _, err := app.NewFlowgraph("g1", core.Path(n)); err != nil {
		t.Fatal(err)
	}
	expectBuildError(t, app, "g2", core.Path(n), "already belongs")
}

func TestValidateDuplicateGraphName(t *testing.T) {
	app, tc := valApp(t)
	_, leaf, _, _ := valOps()
	if _, err := app.NewFlowgraph("dup", core.Path(core.NewNode(leaf, tc, core.MainRoute()))); err != nil {
		t.Fatal(err)
	}
	leaf2 := core.Leaf[*CountToken, *CountToken]("vleaf2",
		func(c *core.Ctx, in *CountToken) *CountToken { return in })
	expectBuildError(t, app, "dup", core.Path(core.NewNode(leaf2, tc, core.MainRoute())), "already exists")
}

func TestSingleLeafGraph(t *testing.T) {
	app, tc := valApp(t)
	leaf := core.Leaf[*CountToken, *CountToken]("inc",
		func(c *core.Ctx, in *CountToken) *CountToken { return &CountToken{N: in.N + 1} })
	g, err := app.NewFlowgraph("single", core.Path(core.NewNode(leaf, tc, core.MainRoute())))
	if err != nil {
		t.Fatal(err)
	}
	out, err := g.CallTimeout(app.MasterNode(), &CountToken{N: 41}, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got := out.(*CountToken).N; got != 42 {
		t.Fatalf("got %d", got)
	}
}

func TestDOTExport(t *testing.T) {
	app, tc := valApp(t)
	split, leaf, merge, _ := valOps()
	g, err := app.NewFlowgraph("dot", core.Path(
		core.NewNode(split, tc, core.MainRoute()),
		core.NewNode(leaf, tc, core.RoundRobin()),
		core.NewNode(merge, tc, core.MainRoute()),
	))
	if err != nil {
		t.Fatal(err)
	}
	dot := g.DOT()
	for _, want := range []string{"digraph", "vsplit", "vleaf", "vmerge", "->", "round-robin"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q:\n%s", want, dot)
		}
	}
}

func TestParseMapping(t *testing.T) {
	cases := []struct {
		spec string
		want []string
		err  bool
	}{
		{"nodeA*2 nodeB", []string{"nodeA", "nodeA", "nodeB"}, false},
		{"a", []string{"a"}, false},
		{"a*1 b*3", []string{"a", "b", "b", "b"}, false},
		{"  a   b  ", []string{"a", "b"}, false},
		{"", nil, true},
		{"a*0", nil, true},
		{"a*x", nil, true},
		{"*3", nil, true},
	}
	for _, tc := range cases {
		got, err := core.ParseMapping(tc.spec)
		if tc.err {
			if err == nil {
				t.Errorf("ParseMapping(%q): expected error", tc.spec)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseMapping(%q): %v", tc.spec, err)
			continue
		}
		if len(got) != len(tc.want) {
			t.Errorf("ParseMapping(%q) = %v, want %v", tc.spec, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("ParseMapping(%q) = %v, want %v", tc.spec, got, tc.want)
				break
			}
		}
	}
}

func TestMapUnknownNode(t *testing.T) {
	app := newLocalApp(t, core.Config{}, "node0")
	tc := core.MustCollection[struct{}](app, "tc")
	if err := tc.Map("ghost"); err == nil {
		t.Fatal("expected unknown node error")
	}
}

func TestCallUnmappedCollection(t *testing.T) {
	app := newLocalApp(t, core.Config{}, "node0")
	tc := core.MustCollection[struct{}](app, "unmapped")
	leaf := core.Leaf[*CountToken, *CountToken]("id",
		func(c *core.Ctx, in *CountToken) *CountToken { return in })
	g, err := app.NewFlowgraph("g", core.Path(core.NewNode(leaf, tc, core.MainRoute())))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Call(context.Background(), &CountToken{}); err == nil || !strings.Contains(err.Error(), "not mapped") {
		t.Fatalf("expected not-mapped error, got %v", err)
	}
}

func TestCallWrongTokenType(t *testing.T) {
	app, tc := valApp(t)
	leaf := core.Leaf[*CountToken, *CountToken]("id",
		func(c *core.Ctx, in *CountToken) *CountToken { return in })
	g, err := app.NewFlowgraph("g", core.Path(core.NewNode(leaf, tc, core.MainRoute())))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Call(context.Background(), &AToken{}); err == nil || !strings.Contains(err.Error(), "does not accept") {
		t.Fatalf("expected type error, got %v", err)
	}
}
