package core

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"

	"repro/internal/trace"
)

// ErrOverload is returned by graph calls shed at admission: the application's
// in-flight call budget (Config.MaxInFlightCalls) is exhausted and admitting
// another call would queue it without bound instead of executing it. Callers
// are expected to back off and retry (or surface 429/Retry-After at an
// ingress); the call had no effect — no entry token was posted.
var ErrOverload = errors.New("dps: overloaded: in-flight call budget exhausted")

// DefaultCallShards is the pending-call registry's lock striping when
// Config.CallShards is zero. Wide enough that 10k concurrent callers spread
// registration, completion and context lookups over independent locks instead
// of convoying on one mutex; small enough that sweeping every shard (Close,
// replaceMapping's swap check) stays cheap.
const DefaultCallShards = 32

// callShard is one stripe of the pending-call table. The shard lock is what
// callMu used to be, scoped to the IDs that hash here: entry removal and the
// canceled-ID record mutate under it so settlers of the same call observe
// them atomically (see cancel and complete).
type callShard struct {
	mu    sync.Mutex
	calls map[uint64]*callEntry
	// Pad to a cache line so neighbouring shard locks don't false-share
	// under saturation (mutex 8B + map header 8B → 48B of padding).
	_ [48]byte
	// lat accumulates the wall time (admission to result delivery) of the
	// calls completed on this shard, under mu — the lock completion already
	// holds. Merged across shards by App.CallLatency for /metrics.
	lat trace.Hist
}

// callRegistry is the sharded pending-call table: one stripe per ID residue
// class. Call IDs are sequential (callSeq), so consecutive registrations
// stripe round-robin across shards and concurrent callers contend only when
// they collide on the same residue.
type callRegistry struct {
	shards []callShard
	mask   uint64
	// pending counts in-flight calls across all shards (registered and not
	// yet settled). It is the admission fast path — one atomic, no locks —
	// and is therefore maintained outside the shard locks: exact for
	// admission accounting, while instantaneous per-shard membership is
	// owned by the shard maps.
	pending atomic.Int64
}

// initCallRegistry sizes the table; shards is rounded up to a power of two
// so the stripe pick is a mask. shards <= 0 selects DefaultCallShards;
// shards == 1 degenerates to the historical single-mutex table (useful as a
// measured baseline — see dps-bench -exp serve).
func (r *callRegistry) initCallRegistry(shards int) {
	if shards <= 0 {
		shards = DefaultCallShards
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	r.shards = make([]callShard, n)
	r.mask = uint64(n - 1)
	for i := range r.shards {
		r.shards[i].calls = make(map[uint64]*callEntry)
	}
}

func (r *callRegistry) shard(id uint64) *callShard {
	return &r.shards[id&r.mask]
}

// drainAll empties every shard and returns the evicted entries (application
// failure/close: all pending calls abort). Each shard gets a fresh map so a
// racing settler finds nothing rather than a half-swept table.
func (r *callRegistry) drainAll() []*callEntry {
	var all []*callEntry
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		evicted := sh.calls
		sh.calls = make(map[uint64]*callEntry)
		sh.mu.Unlock()
		for _, ce := range evicted {
			all = append(all, ce)
		}
	}
	r.pending.Add(-int64(len(all)))
	return all
}

// lockAll takes every shard lock in index order (the registry's only
// multi-shard lock order, so sweeps can't deadlock against each other);
// unlockAll releases them. Used by the placement-swap check, which must see
// a consistent cross-shard view of the pending count.
func (r *callRegistry) lockAll() {
	for i := range r.shards {
		r.shards[i].mu.Lock()
	}
}

func (r *callRegistry) unlockAll() {
	for i := range r.shards {
		r.shards[i].mu.Unlock()
	}
}

// pendingLocked sums the shard populations; callers hold all shard locks.
func (r *callRegistry) pendingLocked() int {
	n := 0
	for i := range r.shards {
		n += len(r.shards[i].calls)
	}
	return n
}

// callEntries recycles settled synchronous-call entries. Settlement is keyed
// by call ID — unique for the application's lifetime (random origin, never
// reused) — so a stale watcher or late result looks the ID up and finds
// nothing; it can never reach a recycled entry. Exactly one settler removes
// an entry from its shard and sends exactly one result on the buffered
// channel, so after the synchronous caller has received, nothing else holds
// the entry and CallFrom may recycle it. Async callers keep the channel, so
// their entries are never recycled (see recycleCallEntry).
var callEntries = sync.Pool{
	New: func() any { return &callEntry{ch: make(chan CallResult, 1)} },
}

func getCallEntry(ctx context.Context, rt *Runtime) *callEntry {
	ce := callEntries.Get().(*callEntry)
	ce.ctx = ctx
	ce.rt = rt
	return ce
}

// recycleCallEntry returns a settled entry to the pool after the synchronous
// caller consumed its result. The channel drain is a belt against a
// double-send bug upstream: a retained buffered value must never leak into
// the next call.
func recycleCallEntry(ce *callEntry) {
	ce.ctx = nil
	ce.stop = nil
	ce.rt = nil
	ce.start = 0
	ce.sampled = false
	select {
	case <-ce.ch:
	default:
	}
	callEntries.Put(ce)
}

// PendingCalls reports the number of in-flight graph calls (registered and
// not yet settled) across all registry shards. It is exact — the shard maps
// are consulted under their locks — making it suitable for drain assertions
// and ingress health endpoints; the admission fast path uses the atomic
// pending counter instead.
func (app *App) PendingCalls() int {
	app.callreg.lockAll()
	defer app.callreg.unlockAll()
	//dpsvet:ignore lockheld lockAll above takes every shard lock; the rule cannot see through the loop
	return app.callreg.pendingLocked()
}
