package core

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/core/ft"
	"repro/internal/serial"
	"repro/internal/transport"
)

// This file is the engine's link layer: envelope framing, token
// serialization and buffer pooling over a transport.Transport. It owns the
// decision between same-address-space pointer handoff and serialized
// network transfer (paper §4) and recycles wire buffers per the transport
// ownership contract. Decoded inbound traffic is handed upward through the
// narrow linkSink interface; the codecs themselves live in wire.go and the
// pools in pool.go.

// linkSink is the upward interface of the link layer: the engine receives
// decoded messages and failures through it. Tokens and group-ends carry the
// transport-level source node — the placement layer's fence gates are per
// sender (fences themselves name their original sender in the message, as
// forwarding rewrites the transport source).
//
// linkDown and linkSuspect are the fault-tolerance hooks: traffic to a
// node declared dead is suppressed (retained copies replay during
// recovery), and a transport send failure is offered to the failure
// detector before it may surface as an application failure — a send error
// to a dead or removed peer must never be dropped on the floor.
type linkSink interface {
	deliverToken(env *envelope, src string)
	deliverGroupEnd(m *groupEndMsg, src string)
	deliverAck(m ackMsg)
	deliverResult(callID uint64, tok Token)
	deliverMigrate(m *migrateMsg)
	deliverFence(m *fenceMsg)
	deliverCheckpoint(rec *ft.Record)
	deliverReplay(m *replayMsg, src string)
	deliverCut(m cutMsg)
	deliverDeath(m deathMsg, src string)
	linkFail(err error)
	linkDown(dst string) bool
	linkSuspect(dst string, err error) bool
}

// link frames and serializes outbound messages and decodes inbound ones.
type link struct {
	tr    transport.Transport
	reg   *serial.Registry
	name  string
	force bool          // ForceSerialize: marshal even same-node transfers
	ftOn  bool          // fault tolerance enabled: consult linkDown/linkSuspect
	grace time.Duration // SuspectGrace: retry window for failing sends
	sink  linkSink
	stats *statCounters
}

func (l *link) init(tr transport.Transport, reg *serial.Registry, force, ftOn bool, grace time.Duration, sink linkSink, stats *statCounters) {
	l.tr = tr
	l.reg = reg
	l.name = tr.Local()
	l.force = force
	l.ftOn = ftOn
	l.grace = grace
	l.sink = sink
	l.stats = stats
}

// Grace retry tuning: first backoff and cap. The overall window is
// Config.SuspectGrace.
const (
	graceRetryBase = time.Millisecond
	graceRetryCap  = 50 * time.Millisecond
)

// trSend transmits one frame, retrying transient transport failures with
// capped exponential backoff and jitter until the suspect-grace window
// closes. On success the payload's ownership has transferred to the
// transport; on error it remains with the caller (transports release
// ownership on failure), which is what makes retrying the same buffer
// sound. A destination declared dead mid-retry aborts the loop — the
// failure detector already owns the fault, and the caller's sendFailed
// path absorbs the error so the retained copy replays.
//
// Successful sends take the single branch on the error and pay nothing
// else; the grace machinery only runs once a send has already failed.
// Sequenced posts hold their route lock across the retries, so the grace
// window also bounds how long one fault can stall a route.
func (l *link) trSend(dst string, buf []byte) error {
	err := l.tr.Send(dst, buf)
	if err == nil || l.grace <= 0 {
		return err
	}
	deadline := time.Now().Add(l.grace)
	backoff := graceRetryBase
	for {
		if l.ftOn && l.sink.linkDown(dst) {
			return err
		}
		d := backoff/2 + time.Duration(rand.Int63n(int64(backoff/2)+1))
		if time.Now().Add(d).After(deadline) {
			return err
		}
		time.Sleep(d)
		if backoff < graceRetryCap {
			backoff *= 2
		}
		l.stats.sendRetries.Add(1)
		if err = l.tr.Send(dst, buf); err == nil {
			return nil
		}
	}
}

// down reports whether traffic toward dst must be suppressed. It is a
// no-op branch on a local bool while fault tolerance is off.
func (l *link) down(dst string) bool {
	return l.ftOn && l.sink.linkDown(dst)
}

// sendFailed routes one transport send failure: absorbed by the failure
// detector (true) or left to the caller to surface (false). The payload
// buffer's ownership returns to the caller either way (transports release
// ownership on error).
func (l *link) sendFailed(dst string, err error) bool {
	return l.ftOn && l.sink.linkSuspect(dst, err)
}

// handle is the transport receive entry point. Per the transport ownership
// contract the payload belongs to this handler once invoked; every decoded
// field is copied out, so the buffer is recycled into the wire pool before
// returning.
func (l *link) handle(src string, payload []byte) {
	if len(payload) == 0 {
		l.sink.linkFail(fmt.Errorf("dps: empty message from %q", src))
		return
	}
	kind, body := payload[0], payload[1:]
	switch kind {
	case msgToken:
		env, err := decodeEnvelope(body)
		if err != nil {
			l.sink.linkFail(fmt.Errorf("dps: bad token message from %q: %w", src, err))
			return
		}
		tok, _, err := l.reg.Unmarshal(env.Payload)
		if err != nil {
			putEnvelope(env)
			l.sink.linkFail(fmt.Errorf("dps: cannot deserialize token from %q: %w", src, err))
			return
		}
		env.Token = tok
		env.Payload = nil // aliases the wire buffer recycled below
		putWireBuf(payload)
		l.sink.deliverToken(env, src)
		return
	case msgGroupEnd:
		m, err := decodeGroupEnd(body)
		if err != nil {
			l.sink.linkFail(fmt.Errorf("dps: bad group-end from %q: %w", src, err))
			return
		}
		l.sink.deliverGroupEnd(m, src)
	case msgAck:
		m, err := decodeAck(body)
		if err != nil {
			l.sink.linkFail(fmt.Errorf("dps: bad ack from %q: %w", src, err))
			return
		}
		l.sink.deliverAck(m)
	case msgResult:
		m, err := decodeResult(body)
		if err != nil {
			l.sink.linkFail(fmt.Errorf("dps: bad result from %q: %w", src, err))
			return
		}
		tok, _, err := l.reg.Unmarshal(m.Payload)
		if err != nil {
			l.sink.linkFail(fmt.Errorf("dps: cannot deserialize result: %w", err))
			return
		}
		putWireBuf(payload)
		l.sink.deliverResult(m.CallID, tok)
		return
	case msgMigrate:
		m, err := decodeMigrate(body)
		if err != nil {
			l.sink.linkFail(fmt.Errorf("dps: bad migration envelope from %q: %w", src, err))
			return
		}
		// m.State aliases the wire buffer; deliverMigrate fully consumes it
		// (the state is deserialized synchronously) before the recycle below.
		l.sink.deliverMigrate(m)
	case msgFence:
		m, err := decodeFence(body)
		if err != nil {
			l.sink.linkFail(fmt.Errorf("dps: bad fence from %q: %w", src, err))
			return
		}
		l.sink.deliverFence(m)
	case msgTokenFT:
		env, err := decodeTokenFT(body)
		if err != nil {
			l.sink.linkFail(fmt.Errorf("dps: bad sequenced token from %q: %w", src, err))
			return
		}
		tok, _, err := l.reg.Unmarshal(env.Payload)
		if err != nil {
			putEnvelope(env)
			l.sink.linkFail(fmt.Errorf("dps: cannot deserialize token from %q: %w", src, err))
			return
		}
		env.Token = tok
		env.Payload = nil // aliases the wire buffer recycled below
		putWireBuf(payload)
		l.sink.deliverToken(env, src)
		return
	case msgGroupEndFT:
		m, err := decodeGroupEndFT(body)
		if err != nil {
			l.sink.linkFail(fmt.Errorf("dps: bad sequenced group-end from %q: %w", src, err))
			return
		}
		l.sink.deliverGroupEnd(m, src)
	case msgCheckpoint:
		rec, err := ft.DecodeRecord(body)
		if err != nil {
			l.sink.linkFail(fmt.Errorf("dps: bad checkpoint from %q: %w", src, err))
			return
		}
		// DecodeRecord copies every byte slice out of the wire buffer.
		l.sink.deliverCheckpoint(rec)
	case msgReplay:
		m, err := decodeReplay(body)
		if err != nil {
			l.sink.linkFail(fmt.Errorf("dps: bad recovery envelope from %q: %w", src, err))
			return
		}
		l.sink.deliverReplay(m, src)
	case msgCut:
		m, err := decodeCut(body)
		if err != nil {
			l.sink.linkFail(fmt.Errorf("dps: bad log cut from %q: %w", src, err))
			return
		}
		l.sink.deliverCut(m)
	case msgDeath:
		m, err := decodeDeath(body)
		if err != nil {
			l.sink.linkFail(fmt.Errorf("dps: bad death notice from %q: %w", src, err))
			return
		}
		l.sink.deliverDeath(m, src)
	case msgPing:
		// Liveness probe: receipt is the answer (detection is send-error
		// driven); nothing to do.
	default:
		l.sink.linkFail(fmt.Errorf("dps: unknown message kind %d from %q", kind, src))
		return
	}
	putWireBuf(payload)
}

// sendToken routes an envelope toward the node hosting its destination
// thread: pointer handoff for same-node transfers (unless ForceSerialize),
// single-copy serialization into a pooled wire buffer otherwise. Failures
// propagate as opError panics, matching operation execution contexts —
// unless the fault-tolerance layer absorbs them (dead destination: the
// retained copy replays during recovery).
func (l *link) sendToken(env *envelope, targetNode string) {
	l.stats.tokensPosted.Add(1)
	if targetNode == l.name && !l.force {
		// Same address space: transfer the pointer directly, bypassing the
		// communication layer (paper §4).
		l.stats.tokensLocal.Add(1)
		l.sink.deliverToken(env, l.name)
		return
	}
	if targetNode == l.name {
		// ForceSerialize: full marshalling, then local delivery.
		tok, err := l.roundTrip(env.Token)
		if err != nil {
			panic(opError{err})
		}
		env.Token = tok
		l.sink.deliverToken(env, l.name)
		return
	}
	if l.down(targetNode) {
		putEnvelope(env)
		return
	}
	// The token is serialized straight into a pooled wire buffer after the
	// envelope header (single copy); the receiving runtime recycles the
	// buffer once decoded. Sequenced tokens use the msgTokenFT framing;
	// freshly stamped ones reuse the retention log's encoding (the wire
	// message byte for byte) instead of serializing the token again —
	// copied, because the transport takes ownership of what it sends.
	var buf []byte
	var err error
	switch {
	case env.ftWire != nil:
		buf = append(getWireBuf(), env.ftWire...)
		env.ftWire = nil
	case env.FTSeq > 0:
		buf = appendTokenFT(getWireBuf(), env)
		buf, err = l.reg.Append(buf, env.Token)
	default:
		buf = appendEnvelopeHeader(getWireBuf(), env)
		buf, err = l.reg.Append(buf, env.Token)
	}
	if err != nil {
		panic(opError{fmt.Errorf("dps: cannot serialize %T: %w", env.Token, err)})
	}
	l.stats.tokensRemote.Add(1)
	l.stats.bytesSent.Add(int64(len(buf)))
	if err := l.trSend(targetNode, buf); err != nil {
		if l.sendFailed(targetNode, err) {
			putWireBuf(buf)
			putEnvelope(env)
			return
		}
		panic(opError{err})
	}
	putEnvelope(env)
}

// sendGroupEnd announces a completed group's total to the paired merge's
// node. Failures propagate as opError panics (the opener's execution
// context is unwinding its group) unless the fault-tolerance layer absorbs
// them.
func (l *link) sendGroupEnd(target string, m *groupEndMsg) {
	if target == l.name {
		l.sink.deliverGroupEnd(m, l.name)
		return
	}
	if l.down(target) {
		return
	}
	var buf []byte
	if m.FTSeq > 0 {
		buf = appendGroupEndFT(getWireBuf(), m)
	} else {
		buf = appendGroupEnd(getWireBuf(), m)
	}
	if err := l.trSend(target, buf); err != nil {
		if l.sendFailed(target, err) {
			putWireBuf(buf)
			return
		}
		panic(opError{err})
	}
}

// sendMigrate ships a migration envelope to the instance's new owner.
func (l *link) sendMigrate(target string, m *migrateMsg) error {
	if target == l.name {
		l.sink.deliverMigrate(m)
		return nil
	}
	buf := appendMigrate(getWireBuf(), m)
	l.stats.bytesSent.Add(int64(len(buf)))
	return l.trSend(target, buf)
}

// sendFence emits one fence half of the live-remap handshake.
func (l *link) sendFence(target string, m *fenceMsg) error {
	if target == l.name {
		l.sink.deliverFence(m)
		return nil
	}
	return l.trSend(target, appendFence(getWireBuf(), m))
}

// sendAck returns a consumption acknowledgement to the split-side node.
func (l *link) sendAck(target string, m ackMsg) error {
	if target == l.name {
		l.sink.deliverAck(m)
		return nil
	}
	if l.down(target) {
		// The split side died; its window state is gone and the recovery
		// replays the group from its origin's retained log.
		return nil
	}
	buf := appendAck(getWireBuf(), m)
	if err := l.trSend(target, buf); err != nil {
		if l.sendFailed(target, err) {
			putWireBuf(buf)
			return nil
		}
		return err
	}
	return nil
}

// sendResult delivers a graph's final output to the calling node.
func (l *link) sendResult(env *envelope, tok Token) {
	if env.CallOrigin == l.name {
		if l.force {
			out, err := l.roundTrip(tok)
			if err != nil {
				panic(opError{err})
			}
			tok = out
		}
		l.stats.callsCompleted.Add(1)
		l.sink.deliverResult(env.CallID, tok)
		return
	}
	if l.down(env.CallOrigin) {
		// The caller's node died; nobody is waiting for this result.
		return
	}
	// Serialize the result straight after the message header into a pooled
	// buffer (single copy, mirroring the token path).
	buf := appendResultHeader(getWireBuf(), env.CallID)
	buf, err := l.reg.Append(buf, tok)
	if err != nil {
		panic(opError{fmt.Errorf("dps: cannot serialize result: %w", err)})
	}
	if err := l.trSend(env.CallOrigin, buf); err != nil {
		if l.sendFailed(env.CallOrigin, err) {
			putWireBuf(buf)
			return
		}
		panic(opError{err})
	}
}

// sendCheckpoint ships a checkpoint record to the store node. Failures
// feed the detector; a lost checkpoint merely leaves the previous one
// authoritative.
func (l *link) sendCheckpoint(target string, rec *ft.Record) {
	if target == l.name {
		l.sink.deliverCheckpoint(rec)
		return
	}
	if l.down(target) {
		return
	}
	buf := appendCheckpoint(getWireBuf(), rec)
	l.stats.bytesSent.Add(int64(len(buf)))
	if err := l.trSend(target, buf); err != nil {
		if !l.sendFailed(target, err) {
			l.sink.linkFail(err)
		}
		putWireBuf(buf)
	}
}

// sendReplay ships a recovery envelope to a failover survivor.
func (l *link) sendReplay(target string, m *replayMsg) {
	if target == l.name {
		l.sink.deliverReplay(m, l.name)
		return
	}
	buf := appendReplay(getWireBuf(), m)
	l.stats.bytesSent.Add(int64(len(buf)))
	if err := l.trSend(target, buf); err != nil {
		if !l.sendFailed(target, err) {
			l.sink.linkFail(err)
		}
		putWireBuf(buf)
	}
}

// sendCut tells a sender stream's node that retained entries are durable.
// Best effort: a lost cut only delays truncation until the next one.
func (l *link) sendCut(target string, m cutMsg) {
	if target == l.name {
		l.sink.deliverCut(m)
		return
	}
	if l.down(target) {
		return
	}
	buf := appendCut(getWireBuf(), m)
	if err := l.trSend(target, buf); err != nil {
		if !l.sendFailed(target, err) {
			l.sink.linkFail(err)
		}
		putWireBuf(buf)
	}
}

// sendDeath broadcasts a death notice. Best effort.
func (l *link) sendDeath(target string, m deathMsg) {
	if target == l.name {
		l.sink.deliverDeath(m, l.name)
		return
	}
	buf := appendDeath(getWireBuf(), m)
	if err := l.tr.Send(target, buf); err != nil {
		_ = l.sendFailed(target, err)
		putWireBuf(buf)
	}
}

// roundTrip marshals and unmarshals a token, exercising the full
// serialization path for same-node transfers (the ForceSerialize debugging
// mode).
func (l *link) roundTrip(tok Token) (Token, error) {
	payload, err := l.reg.Marshal(tok)
	if err != nil {
		return nil, fmt.Errorf("dps: cannot serialize %T: %w", tok, err)
	}
	out, _, err := l.reg.Unmarshal(payload)
	if err != nil {
		return nil, fmt.Errorf("dps: cannot deserialize %T: %w", tok, err)
	}
	return out, nil
}
