package core

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/core/ft"
	"repro/internal/serial"
	"repro/internal/trace"
	"repro/internal/transport"
)

// This file is the engine's link layer: envelope framing, token
// serialization and buffer pooling over a transport.Transport. It owns the
// decision between same-address-space pointer handoff and serialized
// network transfer (paper §4) and recycles wire buffers per the transport
// ownership contract. Decoded inbound traffic is handed upward through the
// narrow linkSink interface; the codecs themselves live in wire.go and the
// pools in pool.go.

// linkSink is the upward interface of the link layer: the engine receives
// decoded messages and failures through it. Tokens and group-ends carry the
// transport-level source node — the placement layer's fence gates are per
// sender (fences themselves name their original sender in the message, as
// forwarding rewrites the transport source).
//
// linkDown and linkSuspect are the fault-tolerance hooks: traffic to a
// node declared dead is suppressed (retained copies replay during
// recovery), and a transport send failure is offered to the failure
// detector before it may surface as an application failure — a send error
// to a dead or removed peer must never be dropped on the floor.
type linkSink interface {
	deliverToken(env *envelope, src string)
	deliverGroupEnd(m *groupEndMsg, src string)
	deliverAck(m ackMsg)
	deliverResult(callID uint64, tok Token)
	deliverMigrate(m *migrateMsg)
	deliverFence(m *fenceMsg)
	deliverCheckpoint(rec *ft.Record)
	deliverReplay(m *replayMsg, src string)
	deliverCut(m cutMsg)
	deliverDeath(m deathMsg, src string)
	linkFail(err error)
	linkDown(dst string) bool
	linkSuspect(dst string, err error) bool
}

// link frames and serializes outbound messages and decodes inbound ones.
type link struct {
	tr    transport.Transport
	reg   *serial.Registry
	name  string
	force bool          // ForceSerialize: marshal even same-node transfers
	ftOn  bool          // fault tolerance enabled: consult linkDown/linkSuspect
	grace time.Duration // SuspectGrace: retry window for failing sends
	sink  linkSink
	stats *statCounters
	ring  *trace.Ring // receiver-side wire spans of sampled transfers

	// Colocated fast path: peers resolves a destination node to the sink of
	// a runtime sharing this address space (nil function, or nil result: no
	// fast path — the destination is remote or the transport cannot tell).
	// Positive resolutions are cached; negatives are not, because nodes
	// attach over time.
	peers  func(dst string) linkSink
	coPeer sync.Map // dst -> linkSink

	// Per-destination token coalescing (Config.Batch).
	batch       bool
	batchBytes  int
	batchTokens int
	batchLarge  int // token bodies this big skip coalescing (single frame)
	batchDelay  time.Duration
	compress    bool
	bmu         sync.Mutex
	batchers    map[string]*batcher
}

// Batching defaults, selected when Config.Batch is set and the matching
// knob is zero: flush a destination's pending frame once it holds 64
// tokens or 128 KiB of entries, or 500µs after its first entry — late
// enough to coalesce a split's burst, early enough to stay invisible next
// to real network latency. Latency-sensitive messages flush sooner
// (preSend).
const (
	DefaultBatchMaxBytes  = 128 << 10
	DefaultBatchMaxTokens = 64
	DefaultBatchDelay     = 500 * time.Microsecond
)

func (l *link) init(tr transport.Transport, reg *serial.Registry, cfg *Config, ftOn bool, sink linkSink, stats *statCounters, peers func(dst string) linkSink) {
	l.tr = tr
	l.reg = reg
	l.name = tr.Local()
	l.force = cfg.ForceSerialize
	l.ftOn = ftOn
	l.grace = cfg.SuspectGrace
	l.sink = sink
	l.stats = stats
	if !cfg.ForceSerialize {
		l.peers = peers
	}
	if cfg.Batch {
		l.batch = true
		l.batchBytes = cfg.BatchMaxBytes
		if l.batchBytes <= 0 {
			l.batchBytes = DefaultBatchMaxBytes
		}
		l.batchTokens = cfg.BatchMaxTokens
		if l.batchTokens <= 0 {
			l.batchTokens = DefaultBatchMaxTokens
		}
		l.batchDelay = cfg.BatchDelay
		if l.batchDelay <= 0 {
			l.batchDelay = DefaultBatchDelay
		}
		// Bulk bypass cutoff: a body within a factor of 16 of the frame
		// bound dwarfs the per-frame overhead batching saves, and staging
		// it through the entries buffer would only add copies.
		l.batchLarge = l.batchBytes / 16
		l.compress = cfg.Compress
		l.batchers = make(map[string]*batcher)
	}
}

// peerSink resolves the fast-path delivery sink of a colocated destination:
// a runtime in this process whose transport endpoint shares our address
// space (transport.Colocated), so messages hand over as pointers with no
// serialization. Disabled by ForceSerialize. Every message kind to a
// colocated destination takes the fast path or none do — mixing would
// reorder the wire stream against the direct deliveries.
func (l *link) peerSink(dst string) linkSink {
	if l.peers == nil {
		return nil
	}
	if v, ok := l.coPeer.Load(dst); ok {
		return v.(linkSink)
	}
	s := l.peers(dst)
	if s != nil {
		l.coPeer.Store(dst, s)
	}
	return s
}

// batcher coalesces the batchable traffic of one destination (Config.Batch).
// Its mutex is the per-destination ordering domain of the batched wire
// path: batchable sends append under it, and every non-batchable send to
// the same destination flushes and transmits while holding it (preSend), so
// wire order is exactly send order even though batched entries leave late.
type batcher struct {
	l   *link
	dst string

	mu      sync.Mutex
	enc     batchEncoder
	scratch []byte // entry-body staging, reused across appends
	timer   *time.Timer
	armed   bool
}

func (l *link) batcherFor(dst string) *batcher {
	l.bmu.Lock()
	defer l.bmu.Unlock()
	b := l.batchers[dst]
	if b == nil {
		b = &batcher{l: l, dst: dst}
		l.batchers[dst] = b
	}
	return b
}

// preSend serializes a non-batchable send to dst with its pending batch:
// the batch flushes first and the batcher lock is held across the caller's
// own transmit (run the returned unlock after it), so a latency- or
// order-sensitive message can never overtake — or be overtaken by — tokens
// batched before it. Returns nil with batching off or for local targets.
func (l *link) preSend(dst string) func() {
	if !l.batch || dst == l.name {
		return nil
	}
	b := l.batcherFor(dst)
	b.mu.Lock()
	b.flushLocked()
	return b.mu.Unlock
}

func (b *batcher) timedFlush() {
	b.mu.Lock()
	b.armed = false
	b.flushLocked()
	b.mu.Unlock()
}

// addLocked appends one entry and flushes if a size bound tripped; the
// first entry of a fresh frame arms the age timer.
func (b *batcher) addLocked(kind byte, stream string, seq uint64, body []byte) {
	b.enc.add(kind, stream, seq, body)
	if b.enc.size() >= b.l.batchBytes || b.enc.tokens >= b.l.batchTokens {
		b.flushLocked()
		return
	}
	if !b.armed {
		b.armed = true
		if b.timer == nil {
			b.timer = time.AfterFunc(b.l.batchDelay, b.timedFlush)
		} else {
			b.timer.Reset(b.l.batchDelay)
		}
	}
}

// flushLocked assembles and transmits the pending frame. It must not panic
// — the age timer calls it from its own goroutine: a send failure is either
// absorbed by the failure detector (the batched tokens' retained FT copies
// replay during recovery) or surfaces through linkFail.
func (b *batcher) flushLocked() {
	if b.enc.empty() {
		return
	}
	l := b.l
	if b.armed {
		b.armed = false
		b.timer.Stop()
	}
	if l.down(b.dst) {
		b.enc.reset()
		return
	}
	tokens := int64(b.enc.tokens)
	buf, rawLen, gotLen := b.enc.appendFrame(getWireBuf(), l.compress)
	b.enc.reset()
	l.stats.framesBatched.Add(1)
	l.stats.maxTokensPerFrame(tokens)
	if l.compress {
		l.stats.uncompressedBytes.Add(int64(rawLen))
		l.stats.compressedBytes.Add(int64(gotLen))
	}
	l.stats.bytesSent.Add(int64(len(buf)))
	if err := l.trSend(b.dst, buf); err != nil {
		putWireBuf(buf)
		if !l.sendFailed(b.dst, err) {
			l.sink.linkFail(err)
		}
	}
}

// appendTokenFrame appends env's complete single-token wire frame: the
// traced wrapper when the envelope is sampled, then the sequenced or plain
// framing and the serialized token. Freshly stamped envelopes reuse the
// retention log's encoding — which already carries the traced wrapper when
// sampled (ftOutbound) — instead of serializing the token a second time.
func (l *link) appendTokenFrame(buf []byte, env *envelope) ([]byte, error) {
	if env.ftWire != nil {
		buf = append(buf, env.ftWire...)
		env.ftWire = nil
		return buf, nil
	}
	if env.TraceID != 0 {
		buf = appendTracedHeader(buf, env.TraceID, time.Now().UnixNano())
	}
	if env.FTSeq > 0 {
		buf = appendTokenFT(buf, env)
	} else {
		buf = appendEnvelopeHeader(buf, env)
	}
	return l.reg.Append(buf, env.Token)
}

// batchToken coalesces one remote token into its destination's pending
// frame. The entry body is the message encoding minus its kind/stream/seq
// prefix — those fold into the frame header and stream dictionary — so a
// batch of N entries decodes to exactly the envelopes N singles would.
func (l *link) batchToken(env *envelope, dst string) {
	b := l.batcherFor(dst)
	b.mu.Lock()
	defer b.mu.Unlock()
	if env.TraceID != 0 {
		// Sampled tokens never join a batch frame: the traced wrapper frames
		// them alone, bulk-bypass style — the pending batch flushes first and
		// the send runs under the batcher lock, keeping wire order equal to
		// send order — so the batch codec and unsampled coalescing stay
		// byte-identical with tracing on.
		b.flushLocked()
		buf, err := l.appendTokenFrame(getWireBuf(), env)
		if err != nil {
			panic(opError{fmt.Errorf("dps: cannot serialize %T: %w", env.Token, err)})
		}
		l.stats.tokensRemote.Add(1)
		l.stats.bytesSent.Add(int64(len(buf)))
		if err := l.trSend(dst, buf); err != nil {
			if l.sendFailed(dst, err) {
				putWireBuf(buf)
				putEnvelope(env)
				return
			}
			panic(opError{err})
		}
		putEnvelope(env)
		return
	}
	var kind byte
	var err error
	body := b.scratch[:0]
	switch {
	case env.ftWire != nil:
		// The retention log's encoding is [kind][stream][seq][body]; strip
		// the prefix instead of serializing the token a second time.
		rest := env.ftWire[1:]
		if _, rest, err = readString(rest); err == nil {
			_, rest, err = readUint64(rest)
		}
		if err != nil {
			panic(opError{fmt.Errorf("dps: corrupt retained encoding of %T: %w", env.Token, err)})
		}
		kind = msgTokenFT
		body = append(body, rest...)
		env.ftWire = nil
	case env.FTSeq > 0:
		kind = msgTokenFT
		body = appendEnvelopeBody(body, env)
		body, err = l.reg.Append(body, env.Token)
	default:
		kind = msgToken
		body = appendEnvelopeBody(body, env)
		body, err = l.reg.Append(body, env.Token)
	}
	if err != nil {
		panic(opError{fmt.Errorf("dps: cannot serialize %T: %w", env.Token, err)})
	}
	b.scratch = body
	l.stats.tokensRemote.Add(1)
	if len(body) >= l.batchLarge {
		// Bulk bypass: a body this size dwarfs what coalescing saves, so
		// frame it alone — the pending batch flushes first and the send runs
		// under the batcher lock, keeping wire order equal to send order.
		b.flushLocked()
		var buf []byte
		if kind == msgTokenFT {
			buf = appendString(append(getWireBuf(), msgTokenFT), env.FTStream)
			buf = appendUint64(buf, env.FTSeq)
		} else {
			buf = append(getWireBuf(), msgToken)
		}
		buf = append(buf, body...)
		l.stats.bytesSent.Add(int64(len(buf)))
		if err := l.trSend(dst, buf); err != nil {
			if l.sendFailed(dst, err) {
				putWireBuf(buf)
				putEnvelope(env)
				return
			}
			panic(opError{err})
		}
		putEnvelope(env)
		return
	}
	b.addLocked(kind, env.FTStream, env.FTSeq, body)
	putEnvelope(env)
}

// batchGroupEnd coalesces a group-end announcement behind its group's
// batched tokens.
func (l *link) batchGroupEnd(m *groupEndMsg, dst string) {
	b := l.batcherFor(dst)
	b.mu.Lock()
	defer b.mu.Unlock()
	kind := byte(msgGroupEnd)
	if m.FTSeq > 0 {
		kind = msgGroupEndFT
	}
	body := appendGroupEndBody(b.scratch[:0], m)
	b.scratch = body
	b.addLocked(kind, m.FTStream, m.FTSeq, body)
}

// Grace retry tuning: first backoff and cap. The overall window is
// Config.SuspectGrace.
const (
	graceRetryBase = time.Millisecond
	graceRetryCap  = 50 * time.Millisecond
)

// trSend transmits one frame, retrying transient transport failures with
// capped exponential backoff and jitter until the suspect-grace window
// closes. On success the payload's ownership has transferred to the
// transport; on error it remains with the caller (transports release
// ownership on failure), which is what makes retrying the same buffer
// sound. A destination declared dead mid-retry aborts the loop — the
// failure detector already owns the fault, and the caller's sendFailed
// path absorbs the error so the retained copy replays.
//
// Successful sends take the single branch on the error and pay nothing
// else; the grace machinery only runs once a send has already failed.
// Sequenced posts hold their route lock across the retries, so the grace
// window also bounds how long one fault can stall a route.
func (l *link) trSend(dst string, buf []byte) error {
	err := l.tr.Send(dst, buf)
	if err == nil || l.grace <= 0 {
		return err
	}
	deadline := time.Now().Add(l.grace)
	backoff := graceRetryBase
	for {
		if l.ftOn && l.sink.linkDown(dst) {
			return err
		}
		d := backoff/2 + time.Duration(rand.Int63n(int64(backoff/2)+1))
		if time.Now().Add(d).After(deadline) {
			return err
		}
		time.Sleep(d)
		if backoff < graceRetryCap {
			backoff *= 2
		}
		l.stats.sendRetries.Add(1)
		if err = l.tr.Send(dst, buf); err == nil {
			return nil
		}
	}
}

// down reports whether traffic toward dst must be suppressed. It is a
// no-op branch on a local bool while fault tolerance is off.
func (l *link) down(dst string) bool {
	return l.ftOn && l.sink.linkDown(dst)
}

// sendFailed routes one transport send failure: absorbed by the failure
// detector (true) or left to the caller to surface (false). The payload
// buffer's ownership returns to the caller either way (transports release
// ownership on error).
func (l *link) sendFailed(dst string, err error) bool {
	return l.ftOn && l.sink.linkSuspect(dst, err)
}

// traceWire records the receiver-side wire span of a sampled transfer:
// sender transmit clock to receiver decode clock. Across processes the two
// clocks are not synchronized, so the duration carries their skew; within
// one process (the test and bench deployments) they agree.
func (l *link) traceWire(traceID uint64, sentNs int64, src string) {
	if l.ring == nil {
		return
	}
	d := time.Now().UnixNano() - sentNs
	if d < 0 {
		d = 0
	}
	l.ring.Record(trace.Span{Trace: traceID, Kind: "wire", Node: l.name, Name: src, Start: sentNs, Dur: d})
}

// handle is the transport receive entry point. Per the transport ownership
// contract the payload belongs to this handler once invoked; every decoded
// field is copied out, so the buffer is recycled into the wire pool before
// returning.
//
// Observability (dps-vet rule tracepoints): each case either records or
// leads to a span for sampled traffic, or carries an explicit ignore naming
// why the kind needs none. Token deliveries record queue/execute spans in
// dispatch; results record their span at call completion.
func (l *link) handle(src string, payload []byte) {
	if len(payload) == 0 {
		l.sink.linkFail(fmt.Errorf("dps: empty message from %q", src))
		return
	}
	kind, body := payload[0], payload[1:]
	switch kind {
	case msgTraced:
		traceID, sentNs, inner, err := decodeTracedHeader(body)
		if err != nil {
			l.sink.linkFail(fmt.Errorf("dps: bad traced frame from %q: %w", src, err))
			return
		}
		var env *envelope
		switch inner[0] {
		case msgToken:
			env, err = decodeEnvelope(inner[1:])
		case msgTokenFT:
			env, err = decodeTokenFT(inner[1:])
		default:
			err = fmt.Errorf("unexpected inner kind %d", inner[0])
		}
		if err != nil {
			l.sink.linkFail(fmt.Errorf("dps: bad traced frame from %q: %w", src, err))
			return
		}
		tok, _, err := l.reg.Unmarshal(env.Payload)
		if err != nil {
			putEnvelope(env)
			l.sink.linkFail(fmt.Errorf("dps: cannot deserialize token from %q: %w", src, err))
			return
		}
		env.Token = tok
		env.Payload = nil // aliases the wire buffer recycled below
		env.TraceID = traceID
		l.traceWire(traceID, sentNs, src)
		putWireBuf(payload)
		l.sink.deliverToken(env, src)
		return
	case msgToken:
		env, err := decodeEnvelope(body)
		if err != nil {
			l.sink.linkFail(fmt.Errorf("dps: bad token message from %q: %w", src, err))
			return
		}
		tok, _, err := l.reg.Unmarshal(env.Payload)
		if err != nil {
			putEnvelope(env)
			l.sink.linkFail(fmt.Errorf("dps: cannot deserialize token from %q: %w", src, err))
			return
		}
		env.Token = tok
		env.Payload = nil // aliases the wire buffer recycled below
		putWireBuf(payload)
		l.sink.deliverToken(env, src)
		return
	//dpsvet:ignore tracepoints group accounting only; the group's tokens carry the trace
	case msgGroupEnd:
		m, err := decodeGroupEnd(body)
		if err != nil {
			l.sink.linkFail(fmt.Errorf("dps: bad group-end from %q: %w", src, err))
			return
		}
		l.sink.deliverGroupEnd(m, src)
	//dpsvet:ignore tracepoints flow-control ack, no token aboard
	case msgAck:
		m, err := decodeAck(body)
		if err != nil {
			l.sink.linkFail(fmt.Errorf("dps: bad ack from %q: %w", src, err))
			return
		}
		l.sink.deliverAck(m)
	case msgResult:
		m, err := decodeResult(body)
		if err != nil {
			l.sink.linkFail(fmt.Errorf("dps: bad result from %q: %w", src, err))
			return
		}
		tok, _, err := l.reg.Unmarshal(m.Payload)
		if err != nil {
			l.sink.linkFail(fmt.Errorf("dps: cannot deserialize result: %w", err))
			return
		}
		putWireBuf(payload)
		l.sink.deliverResult(m.CallID, tok)
		return
	//dpsvet:ignore tracepoints state handoff; relays record forward spans at re-send
	case msgMigrate:
		m, err := decodeMigrate(body)
		if err != nil {
			l.sink.linkFail(fmt.Errorf("dps: bad migration envelope from %q: %w", src, err))
			return
		}
		// m.State aliases the wire buffer; deliverMigrate fully consumes it
		// (the state is deserialized synchronously) before the recycle below.
		l.sink.deliverMigrate(m)
	//dpsvet:ignore tracepoints remap handshake control message
	case msgFence:
		m, err := decodeFence(body)
		if err != nil {
			l.sink.linkFail(fmt.Errorf("dps: bad fence from %q: %w", src, err))
			return
		}
		l.sink.deliverFence(m)
	case msgTokenFT:
		env, err := decodeTokenFT(body)
		if err != nil {
			l.sink.linkFail(fmt.Errorf("dps: bad sequenced token from %q: %w", src, err))
			return
		}
		tok, _, err := l.reg.Unmarshal(env.Payload)
		if err != nil {
			putEnvelope(env)
			l.sink.linkFail(fmt.Errorf("dps: cannot deserialize token from %q: %w", src, err))
			return
		}
		env.Token = tok
		env.Payload = nil // aliases the wire buffer recycled below
		putWireBuf(payload)
		l.sink.deliverToken(env, src)
		return
	//dpsvet:ignore tracepoints group accounting only; the group's tokens carry the trace
	case msgGroupEndFT:
		m, err := decodeGroupEndFT(body)
		if err != nil {
			l.sink.linkFail(fmt.Errorf("dps: bad sequenced group-end from %q: %w", src, err))
			return
		}
		l.sink.deliverGroupEnd(m, src)
	//dpsvet:ignore tracepoints checkpoint record in transit to the store
	case msgCheckpoint:
		rec, err := ft.DecodeRecord(body)
		if err != nil {
			l.sink.linkFail(fmt.Errorf("dps: bad checkpoint from %q: %w", src, err))
			return
		}
		// DecodeRecord copies every byte slice out of the wire buffer.
		l.sink.deliverCheckpoint(rec)
	//dpsvet:ignore tracepoints replay spans are recorded by the resending master
	case msgReplay:
		m, err := decodeReplay(body)
		if err != nil {
			l.sink.linkFail(fmt.Errorf("dps: bad recovery envelope from %q: %w", src, err))
			return
		}
		l.sink.deliverReplay(m, src)
	//dpsvet:ignore tracepoints log-truncation control message
	case msgCut:
		m, err := decodeCut(body)
		if err != nil {
			l.sink.linkFail(fmt.Errorf("dps: bad log cut from %q: %w", src, err))
			return
		}
		l.sink.deliverCut(m)
	//dpsvet:ignore tracepoints failure broadcast, not part of any call
	case msgDeath:
		m, err := decodeDeath(body)
		if err != nil {
			l.sink.linkFail(fmt.Errorf("dps: bad death notice from %q: %w", src, err))
			return
		}
		l.sink.deliverDeath(m, src)
	case msgBatch:
		l.handleBatch(src, payload, body)
		return
	//dpsvet:ignore tracepoints liveness probe carries nothing
	case msgPing:
		// Liveness probe: receipt is the answer (detection is send-error
		// driven); nothing to do.
	default:
		l.sink.linkFail(fmt.Errorf("dps: unknown message kind %d from %q", kind, src))
		return
	}
	putWireBuf(payload)
}

// handleBatch decodes one batch frame and delivers its entries in frame
// order — which is send order, so the receiver-side FIFO assumptions
// (prefix duplicate filters, group-end-after-tokens) hold exactly as they
// do for singles. body is payload minus the kind byte.
func (l *link) handleBatch(src string, payload, body []byte) {
	frame, inflated, err := decodeBatchFrame(body)
	if err != nil {
		l.sink.linkFail(fmt.Errorf("dps: bad batch frame from %q: %w", src, err))
		return
	}
	if inflated {
		// The frame body was inflated into a fresh buffer; the wire buffer
		// has no further readers and recycles early.
		putWireBuf(payload)
	}
	err = decodeBatch(frame, func(kind byte, stream string, seq uint64, eb []byte) error {
		switch kind {
		case msgToken, msgTokenFT:
			env, err := decodeEnvelope(eb)
			if err != nil {
				return err
			}
			tok, _, err := l.reg.Unmarshal(env.Payload)
			if err != nil {
				putEnvelope(env)
				return err
			}
			env.Token = tok
			env.Payload = nil // aliases the frame buffer recycled below
			env.FTStream, env.FTSeq = stream, seq
			l.sink.deliverToken(env, src)
		default: // msgGroupEnd, msgGroupEndFT (decodeBatch validated the kind)
			m, err := decodeGroupEnd(eb)
			if err != nil {
				return err
			}
			m.FTStream, m.FTSeq = stream, seq
			l.sink.deliverGroupEnd(m, src)
		}
		return nil
	})
	if err != nil {
		l.sink.linkFail(fmt.Errorf("dps: bad batch frame from %q: %w", src, err))
		return
	}
	if inflated {
		putWireBuf(frame)
	} else {
		putWireBuf(payload)
	}
}

// sendToken routes an envelope toward the node hosting its destination
// thread: pointer handoff for same-node transfers (unless ForceSerialize),
// single-copy serialization into a pooled wire buffer otherwise. Failures
// propagate as opError panics, matching operation execution contexts —
// unless the fault-tolerance layer absorbs them (dead destination: the
// retained copy replays during recovery).
func (l *link) sendToken(env *envelope, targetNode string) {
	l.stats.tokensPosted.Add(1)
	if targetNode == l.name && !l.force {
		// Same address space: transfer the pointer directly, bypassing the
		// communication layer (paper §4).
		l.stats.tokensLocal.Add(1)
		l.sink.deliverToken(env, l.name)
		return
	}
	if targetNode == l.name {
		// ForceSerialize: full marshalling, then local delivery.
		tok, err := l.roundTrip(env.Token)
		if err != nil {
			panic(opError{err})
		}
		env.Token = tok
		l.sink.deliverToken(env, l.name)
		return
	}
	if l.down(targetNode) {
		putEnvelope(env)
		return
	}
	if peer := l.peerSink(targetNode); peer != nil {
		// Colocated destination: hand the pointer across address-space-wide,
		// the paper's same-node shortcut extended to same-process lanes.
		l.stats.tokensLocal.Add(1)
		env.ftWire = nil // the retention log keeps its own copy
		peer.deliverToken(env, l.name)
		return
	}
	if l.batch {
		l.batchToken(env, targetNode)
		return
	}
	// The token is serialized straight into a pooled wire buffer after the
	// envelope header (single copy); the receiving runtime recycles the
	// buffer once decoded. Sequenced tokens use the msgTokenFT framing;
	// freshly stamped ones reuse the retention log's encoding (the wire
	// message byte for byte) instead of serializing the token again —
	// copied, because the transport takes ownership of what it sends.
	buf, err := l.appendTokenFrame(getWireBuf(), env)
	if err != nil {
		panic(opError{fmt.Errorf("dps: cannot serialize %T: %w", env.Token, err)})
	}
	l.stats.tokensRemote.Add(1)
	l.stats.bytesSent.Add(int64(len(buf)))
	if err := l.trSend(targetNode, buf); err != nil {
		if l.sendFailed(targetNode, err) {
			putWireBuf(buf)
			putEnvelope(env)
			return
		}
		panic(opError{err})
	}
	putEnvelope(env)
}

// sendGroupEnd announces a completed group's total to the paired merge's
// node. Failures propagate as opError panics (the opener's execution
// context is unwinding its group) unless the fault-tolerance layer absorbs
// them.
func (l *link) sendGroupEnd(target string, m *groupEndMsg) {
	if target == l.name {
		l.sink.deliverGroupEnd(m, l.name)
		return
	}
	if l.down(target) {
		return
	}
	if peer := l.peerSink(target); peer != nil {
		peer.deliverGroupEnd(m, l.name)
		return
	}
	if l.batch {
		l.batchGroupEnd(m, target)
		return
	}
	var buf []byte
	if m.FTSeq > 0 {
		buf = appendGroupEndFT(getWireBuf(), m)
	} else {
		buf = appendGroupEnd(getWireBuf(), m)
	}
	if err := l.trSend(target, buf); err != nil {
		if l.sendFailed(target, err) {
			putWireBuf(buf)
			return
		}
		panic(opError{err})
	}
}

// sendMigrate ships a migration envelope to the instance's new owner.
func (l *link) sendMigrate(target string, m *migrateMsg) error {
	if target == l.name {
		l.sink.deliverMigrate(m)
		return nil
	}
	if peer := l.peerSink(target); peer != nil {
		peer.deliverMigrate(m)
		return nil
	}
	buf := appendMigrate(getWireBuf(), m)
	l.stats.bytesSent.Add(int64(len(buf)))
	if unlock := l.preSend(target); unlock != nil {
		defer unlock()
	}
	return l.trSend(target, buf)
}

// sendFence emits one fence half of the live-remap handshake.
func (l *link) sendFence(target string, m *fenceMsg) error {
	if target == l.name {
		l.sink.deliverFence(m)
		return nil
	}
	if peer := l.peerSink(target); peer != nil {
		peer.deliverFence(m)
		return nil
	}
	buf := appendFence(getWireBuf(), m)
	if unlock := l.preSend(target); unlock != nil {
		defer unlock()
	}
	return l.trSend(target, buf)
}

// sendAck returns a consumption acknowledgement to the split-side node.
func (l *link) sendAck(target string, m ackMsg) error {
	if target == l.name {
		l.sink.deliverAck(m)
		return nil
	}
	if l.down(target) {
		// The split side died; its window state is gone and the recovery
		// replays the group from its origin's retained log.
		return nil
	}
	if peer := l.peerSink(target); peer != nil {
		peer.deliverAck(m)
		return nil
	}
	buf := appendAck(getWireBuf(), m)
	if unlock := l.preSend(target); unlock != nil {
		defer unlock()
	}
	if err := l.trSend(target, buf); err != nil {
		if l.sendFailed(target, err) {
			putWireBuf(buf)
			return nil
		}
		return err
	}
	return nil
}

// sendResult delivers a graph's final output to the calling node.
func (l *link) sendResult(env *envelope, tok Token) {
	if env.CallOrigin == l.name {
		if l.force {
			out, err := l.roundTrip(tok)
			if err != nil {
				panic(opError{err})
			}
			tok = out
		}
		l.stats.callsCompleted.Add(1)
		l.sink.deliverResult(env.CallID, tok)
		return
	}
	if l.down(env.CallOrigin) {
		// The caller's node died; nobody is waiting for this result.
		return
	}
	if peer := l.peerSink(env.CallOrigin); peer != nil {
		l.stats.callsCompleted.Add(1)
		peer.deliverResult(env.CallID, tok)
		return
	}
	// Serialize the result straight after the message header into a pooled
	// buffer (single copy, mirroring the token path). A result is the
	// latency-sensitive message of the wire path — a caller is blocked on
	// it — so it flushes the destination's pending batch rather than join it.
	buf := appendResultHeader(getWireBuf(), env.CallID)
	buf, err := l.reg.Append(buf, tok)
	if err != nil {
		panic(opError{fmt.Errorf("dps: cannot serialize result: %w", err)})
	}
	if unlock := l.preSend(env.CallOrigin); unlock != nil {
		defer unlock()
	}
	if err := l.trSend(env.CallOrigin, buf); err != nil {
		if l.sendFailed(env.CallOrigin, err) {
			putWireBuf(buf)
			return
		}
		panic(opError{err})
	}
}

// sendCheckpoint ships a checkpoint record to the store node. Failures
// feed the detector; a lost checkpoint merely leaves the previous one
// authoritative.
func (l *link) sendCheckpoint(target string, rec *ft.Record) {
	if target == l.name {
		l.sink.deliverCheckpoint(rec)
		return
	}
	if l.down(target) {
		return
	}
	if peer := l.peerSink(target); peer != nil {
		peer.deliverCheckpoint(rec)
		return
	}
	buf := appendCheckpoint(getWireBuf(), rec)
	l.stats.bytesSent.Add(int64(len(buf)))
	if unlock := l.preSend(target); unlock != nil {
		defer unlock()
	}
	if err := l.trSend(target, buf); err != nil {
		if !l.sendFailed(target, err) {
			l.sink.linkFail(err)
		}
		putWireBuf(buf)
	}
}

// sendReplay ships a recovery envelope to a failover survivor.
func (l *link) sendReplay(target string, m *replayMsg) {
	if target == l.name {
		l.sink.deliverReplay(m, l.name)
		return
	}
	if peer := l.peerSink(target); peer != nil {
		peer.deliverReplay(m, l.name)
		return
	}
	buf := appendReplay(getWireBuf(), m)
	l.stats.bytesSent.Add(int64(len(buf)))
	if unlock := l.preSend(target); unlock != nil {
		defer unlock()
	}
	if err := l.trSend(target, buf); err != nil {
		if !l.sendFailed(target, err) {
			l.sink.linkFail(err)
		}
		putWireBuf(buf)
	}
}

// sendCut tells a sender stream's node that retained entries are durable.
// Best effort: a lost cut only delays truncation until the next one.
func (l *link) sendCut(target string, m cutMsg) {
	if target == l.name {
		l.sink.deliverCut(m)
		return
	}
	if l.down(target) {
		return
	}
	if peer := l.peerSink(target); peer != nil {
		peer.deliverCut(m)
		return
	}
	buf := appendCut(getWireBuf(), m)
	if unlock := l.preSend(target); unlock != nil {
		defer unlock()
	}
	if err := l.trSend(target, buf); err != nil {
		if !l.sendFailed(target, err) {
			l.sink.linkFail(err)
		}
		putWireBuf(buf)
	}
}

// sendDeath broadcasts a death notice. Best effort.
func (l *link) sendDeath(target string, m deathMsg) {
	if target == l.name {
		l.sink.deliverDeath(m, l.name)
		return
	}
	if peer := l.peerSink(target); peer != nil {
		peer.deliverDeath(m, l.name)
		return
	}
	buf := appendDeath(getWireBuf(), m)
	if unlock := l.preSend(target); unlock != nil {
		defer unlock()
	}
	if err := l.tr.Send(target, buf); err != nil {
		_ = l.sendFailed(target, err)
		putWireBuf(buf)
	}
}

// roundTrip marshals and unmarshals a token, exercising the full
// serialization path for same-node transfers (the ForceSerialize debugging
// mode).
func (l *link) roundTrip(tok Token) (Token, error) {
	payload, err := l.reg.Marshal(tok)
	if err != nil {
		return nil, fmt.Errorf("dps: cannot serialize %T: %w", tok, err)
	}
	out, _, err := l.reg.Unmarshal(payload)
	if err != nil {
		return nil, fmt.Errorf("dps: cannot deserialize %T: %w", tok, err)
	}
	return out, nil
}
