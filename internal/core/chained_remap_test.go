package core_test

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/simnet"
)

// TestChainedRemapFenceQuota is the direct regression test for the
// fence-quota invariant of the placement layer (migrate.go): an instance
// that just arrived on a node may only migrate onward once every fence
// pair of the inbound migration has terminally completed there — otherwise
// a chained remap lets fresh traffic overtake stragglers still in flight
// through the relay chain. The three-hop A→B→C→A chain under continuous
// sequenced traffic is exactly the shape that breaks when the quota is
// ignored; previously it was exercised only indirectly via the mid-run
// remap churn test.
func TestChainedRemapFenceQuota(t *testing.T) {
	// Simulated network: migrations race genuinely in-flight tokens.
	net := simnet.New(simnet.Config{Latency: 150 * time.Microsecond, PerMessage: 15 * time.Microsecond})
	defer net.Close()
	app, err := core.NewSimApp(core.Config{Window: 8}, net, "A", "B", "C")
	if err != nil {
		t.Fatal(err)
	}
	defer app.Close()
	g, acc := buildSeqGraph(t, app, "chain", "A", "A")

	const tokens = 4096
	done := make(chan core.CallResult, 1)
	go func() {
		out, err := g.Call(context.Background(), &MigOrder{N: tokens})
		done <- core.CallResult{Value: out, Err: err}
	}()

	// Three-hop chain, repeated: A→B→C→A with no pause between hops, so
	// each onward migration begins while the previous hop's fences and
	// stragglers are still settling.
	var hops atomic.Int64
	chain := []string{"B", "C", "A"}
	for round := 0; round < 3; round++ {
		for _, to := range chain {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			if err := acc.RemapThread(ctx, 0, to); err != nil {
				cancel()
				t.Fatalf("round %d: remap to %s: %v", round, to, err)
			}
			cancel()
			hops.Add(1)
		}
	}

	res := <-done
	if res.Err != nil {
		t.Fatalf("call failed: %v", res.Err)
	}
	if got := res.Value.(*MigDone).N; got != tokens {
		t.Fatalf("merge collected %d of %d tokens", got, tokens)
	}
	if err := app.Err(); err != nil {
		t.Fatalf("app failed: %v", err)
	}

	// The state travelled the whole chain and saw every token in posting
	// order: any overtaking straggler shows up as a violation.
	st := readState(t, app, acc)
	if st.Violations != 0 {
		t.Fatalf("%d FIFO violations across %d chained remaps", st.Violations, hops.Load())
	}
	if st.NextSeq != tokens || st.Sum != int64(tokens-1)*tokens/2 {
		t.Fatalf("state after chain = %+v, want NextSeq=%d Sum=%d", st, tokens, int64(tokens-1)*tokens/2)
	}
	if got, _ := acc.NodeOf(0); got != "A" {
		t.Fatalf("thread ended on %q, want A", got)
	}
	if s := app.Stats(); s.MigrationsCompleted != hops.Load() {
		t.Fatalf("MigrationsCompleted = %d, want %d", s.MigrationsCompleted, hops.Load())
	}
}
