package core_test

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/trace"
)

// These tests pin the tracing tentpole's end-to-end promise: a sampled
// call's spans, collected from every node, reconstruct one connected
// timeline — including across the two hard paths, a mid-call live Remap
// (PR 4) and a node crash with replay from retained logs (PR 5). The last
// test pins the other half of the contract: with sampling effectively off,
// the trace machinery adds zero allocations to the call path.

// spansByTrace groups a flat span dump by trace id.
func spansByTrace(spans []trace.Span) map[uint64][]trace.Span {
	out := make(map[uint64][]trace.Span)
	for _, s := range spans {
		out[s.Trace] = append(out[s.Trace], s)
	}
	return out
}

// kindSet reports which span kinds appear, and the nodes recording each.
func kindSet(spans []trace.Span) (kinds map[string]bool, nodes map[string]bool) {
	kinds = make(map[string]bool)
	nodes = make(map[string]bool)
	for _, s := range spans {
		kinds[s.Kind] = true
		nodes[s.Node] = true
	}
	return kinds, nodes
}

// TestSampledCallTimeline: with TraceSample=1 a cross-node call leaves a
// single trace whose spans cover the whole token journey — admission (post),
// dispatch wait (queue), handler runs (execute), cross-node hops (wire) and
// result delivery — attributed to both nodes involved.
func TestSampledCallTimeline(t *testing.T) {
	app := newLocalApp(t, core.Config{TraceSample: 1, ForceSerialize: true}, "node0", "node1")
	g := buildUppercase(t, app, "traced-upper", "node1")

	out, err := g.CallTimeout(app.MasterNode(), &StringToken{Str: "trace me"}, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got := out.(*StringToken).Str; got != "TRACE ME" {
		t.Fatalf("got %q", got)
	}

	byTrace := spansByTrace(app.TraceSpans(0))
	if len(byTrace) != 1 {
		t.Fatalf("one sampled call left %d traces, want 1", len(byTrace))
	}
	for id, spans := range byTrace {
		if id == 0 {
			t.Fatal("spans recorded under trace id 0")
		}
		kinds, nodes := kindSet(spans)
		for _, want := range []string{"post", "queue", "execute", "wire", "result"} {
			if !kinds[want] {
				t.Errorf("timeline missing %q span; got kinds %v", want, kinds)
			}
		}
		if !nodes["node0"] || !nodes["node1"] {
			t.Errorf("timeline should span both nodes, got %v", nodes)
		}
		// TraceSpans returns a sorted timeline: starts must be non-decreasing.
		for i := 1; i < len(spans); i++ {
			if spans[i].Start < spans[i-1].Start {
				t.Fatalf("timeline out of order at %d: %+v after %+v", i, spans[i], spans[i-1])
			}
		}
	}
}

// TestTraceAcrossRemap migrates the stateful stage mid-call and requires the
// single trace to record the hop: a forward span on the old node, execute
// spans on more than one node, and the ordinary endpoints (post, result).
// The remap races the call, so the test retries until a run genuinely
// forwarded tokens (TestRemapMidRun proves this interleaving is the norm).
func TestTraceAcrossRemap(t *testing.T) {
	const tokens = 600
	for attempt := 0; attempt < 5; attempt++ {
		app := newLocalApp(t, core.Config{Window: 64, TraceSample: 1, ForceSerialize: true},
			"node0", "node1", "node2")
		g, acc := buildSeqGraph(t, app, fmt.Sprintf("traced-remap-%d", attempt), "node0", "node1")

		remapped := make(chan error, 1)
		go func() {
			time.Sleep(2 * time.Millisecond)
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			remapped <- acc.Remap(ctx, "node2")
		}()
		out, err := g.Call(context.Background(), &MigOrder{N: tokens})
		if err != nil {
			t.Fatalf("call failed across remap: %v", err)
		}
		if err := <-remapped; err != nil {
			t.Fatalf("remap: %v", err)
		}
		if got := out.(*MigDone).N; got != tokens {
			t.Fatalf("merge saw %d tokens, want %d", got, tokens)
		}
		if app.Stats().TokensForwarded == 0 {
			continue // remap landed between calls; nothing was in flight
		}

		byTrace := spansByTrace(app.TraceSpans(0))
		if len(byTrace) != 1 {
			t.Fatalf("one call left %d traces", len(byTrace))
		}
		for _, spans := range byTrace {
			kinds, _ := kindSet(spans)
			for _, want := range []string{"post", "forward", "result"} {
				if !kinds[want] {
					t.Errorf("migrated timeline missing %q span; got %v", want, kinds)
				}
			}
			execNodes := make(map[string]bool)
			for _, s := range spans {
				if s.Kind == "execute" {
					execNodes[s.Node] = true
				}
			}
			if len(execNodes) < 2 {
				t.Errorf("execute spans on %v: the timeline never crossed the migration", execNodes)
			}
		}
		return
	}
	t.Fatal("no attempt forwarded tokens mid-call; remap churn never interleaved")
}

// TestTraceAcrossFailover crashes a worker node while sampled calls stream:
// the recovery replay must show up inside the affected calls' traces as
// replay spans connected (same trace id) to ordinary spans recorded by
// other, surviving nodes — one timeline across the crash.
func TestTraceAcrossFailover(t *testing.T) {
	cfg := core.Config{Window: 4, Checkpoint: 2 * time.Millisecond, TraceSample: 1}
	h := newFTHarness(t, cfg, "w1*2 w2*2", "m", "w1", "w2")

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(10 * time.Millisecond)
		h.net.Crash("w2")
	}()
	const rounds, perCall = 40, 12
	for r := 0; r < rounds; r++ {
		h.call(t, r*1000, perCall)
	}
	wg.Wait()
	if err := h.app.Err(); err != nil {
		t.Fatalf("application failed: %v", err)
	}
	if s := h.app.Stats(); s.FailoversCompleted != 1 {
		t.Fatalf("FailoversCompleted = %d, want 1", s.FailoversCompleted)
	}

	connected := 0
	for id, spans := range spansByTrace(h.app.TraceSpans(0)) {
		if id == 0 {
			t.Fatal("spans recorded under trace id 0")
		}
		var replayNodes, otherNodes map[string]bool
		replayNodes = make(map[string]bool)
		otherNodes = make(map[string]bool)
		for _, s := range spans {
			if s.Kind == "replay" {
				replayNodes[s.Node] = true
			} else {
				otherNodes[s.Node] = true
			}
		}
		if len(replayNodes) == 0 {
			continue
		}
		// A replayed call's timeline must still connect to live execution
		// somewhere else: spans from a node other than the replayer.
		for n := range otherNodes {
			if !replayNodes[n] {
				connected++
				break
			}
		}
	}
	if connected == 0 {
		t.Fatal("no trace connects a replay span to live spans on another node")
	}
	t.Logf("%d traces reconstruct a timeline across the crash", connected)
}

// TestUnsampledCallAddsNoAllocations pins the zero-allocation promise of the
// unsampled hot path: running the engine with sampling configured but (for
// these calls) not taken allocates exactly as much as running it with
// tracing off entirely. TraceSample=1e-9 makes every admission roll the
// sampling dice and lose, which is precisely the hot path under test.
func TestUnsampledCallAddsNoAllocations(t *testing.T) {
	mk := func(name string, sample float64) (*core.App, *core.Flowgraph) {
		app := newLocalApp(t, core.Config{TraceSample: sample}, "node0")
		return app, buildUppercase(t, app, name, "node0")
	}
	_, gOff := mk("alloc-off", 0)
	appOn, gOn := mk("alloc-on", 1e-9)

	call := func(g *core.Flowgraph) {
		if _, err := g.CallTimeout("node0", &StringToken{Str: "abcdefgh"}, 10*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 32; i++ { // warm pools, links and the scheduler
		call(gOff)
		call(gOn)
	}
	off := testing.AllocsPerRun(200, func() { call(gOff) })
	on := testing.AllocsPerRun(200, func() { call(gOn) })
	if on > off+0.5 {
		t.Errorf("unsampled call allocates %.1f with tracing configured vs %.1f without", on, off)
	}
	if spans := appOn.TraceSpans(0); len(spans) != 0 {
		t.Errorf("unsampled calls recorded %d spans", len(spans))
	}
	t.Logf("allocs/call: tracing-off=%.1f unsampled=%.1f", off, on)
}
