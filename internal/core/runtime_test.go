package core_test

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/serial"
)

// TestLoadBalancedRoute verifies the credit-based scheme: with one worker
// thread artificially slow, most tokens should drain to the fast workers.
func TestLoadBalancedRoute(t *testing.T) {
	app := newLocalApp(t, core.Config{Window: 8}, "node0", "node1", "node2")
	main := core.MustCollection[struct{}](app, "main")
	workers := core.MustCollection[counterState](app, "workers")
	if err := main.Map("node0"); err != nil {
		t.Fatal(err)
	}
	if err := workers.Map("node1 node2"); err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	perThread := make(map[int]int)

	split := core.Split[*CountToken, *CountToken]("lb-split",
		func(c *core.Ctx, in *CountToken, post func(*CountToken)) {
			for i := 0; i < in.N; i++ {
				post(&CountToken{N: i})
			}
		})
	work := core.Leaf[*CountToken, *CountToken]("lb-work",
		func(c *core.Ctx, in *CountToken) *CountToken {
			mu.Lock()
			perThread[c.ThreadIndex()]++
			mu.Unlock()
			if c.ThreadIndex() == 0 {
				time.Sleep(3 * time.Millisecond) // slow worker
			}
			return in
		})
	merge := core.Merge[*CountToken, *SumToken]("lb-merge",
		func(c *core.Ctx, first *CountToken, next func() (*CountToken, bool)) *SumToken {
			n := 0
			for _, ok := first, true; ok; _, ok = next() {
				n++
			}
			return &SumToken{Calls: n}
		})

	g, err := app.NewFlowgraph("lb", core.Path(
		core.NewNode(split, main, core.MainRoute()),
		core.NewNode(work, workers, core.LoadBalanced()),
		core.NewNode(merge, main, core.MainRoute()),
	))
	if err != nil {
		t.Fatal(err)
	}
	const total = 120
	out, err := g.CallTimeout(app.MasterNode(), &CountToken{N: total}, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got := out.(*SumToken).Calls; got != total {
		t.Fatalf("merged %d, want %d", got, total)
	}
	mu.Lock()
	slow, fast := perThread[0], perThread[1]
	mu.Unlock()
	if slow+fast != total {
		t.Fatalf("accounted %d+%d != %d", slow, fast, total)
	}
	if fast <= slow {
		t.Fatalf("load balancing ineffective: slow=%d fast=%d", slow, fast)
	}
}

// TestGraphCallAsLeaf exposes one graph as a service and calls it from a
// second graph of the same application (paper Figure 10's mechanics).
func TestGraphCallAsLeaf(t *testing.T) {
	app := newLocalApp(t, core.Config{}, "node0", "node1")
	g := buildUppercase(t, app, "service", "node0 node1")

	client := core.MustCollection[struct{}](app, "client")
	if err := client.Map("node0"); err != nil {
		t.Fatal(err)
	}
	wrap := core.Leaf[*CountToken, *StringToken]("make-request",
		func(c *core.Ctx, in *CountToken) *StringToken {
			return &StringToken{Str: strings.Repeat("ab", in.N)}
		})
	callOp := core.GraphCallOp("call-upper", g)
	g2, err := app.NewFlowgraph("client-graph", core.Path(
		core.NewNode(wrap, client, core.MainRoute()),
		core.NewNode(callOp, client, core.MainRoute()),
	))
	if err != nil {
		t.Fatal(err)
	}
	out, err := g2.CallTimeout(app.MasterNode(), &CountToken{N: 3}, 20*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got := out.(*StringToken).Str; got != "ABABAB" {
		t.Fatalf("got %q", got)
	}
}

// TestCrossApplicationServiceCall calls a graph exposed by a *different*
// application: the paper's interoperable parallel components.
func TestCrossApplicationServiceCall(t *testing.T) {
	serviceApp := newLocalApp(t, core.Config{}, "svc0", "svc1")
	service := buildUppercase(t, serviceApp, "upper-service", "svc0 svc1")

	clientApp := newLocalApp(t, core.Config{}, "cli0")
	client := core.MustCollection[struct{}](clientApp, "client")
	if err := client.Map("cli0"); err != nil {
		t.Fatal(err)
	}
	callOp := core.GraphCallOp("call-foreign", service)
	g, err := clientApp.NewFlowgraph("client", core.Path(
		core.NewNode(callOp, client, core.MainRoute()),
	))
	if err != nil {
		t.Fatal(err)
	}
	out, err := g.CallTimeout(clientApp.MasterNode(), &StringToken{Str: "cross app"}, 20*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got := out.(*StringToken).Str; got != "CROSS APP" {
		t.Fatalf("got %q", got)
	}
}

// --- failure injection --------------------------------------------------

func TestOperationPanicFailsCall(t *testing.T) {
	app := newLocalApp(t, core.Config{}, "node0")
	tc := core.MustCollection[struct{}](app, "tc")
	if err := tc.Map("node0"); err != nil {
		t.Fatal(err)
	}
	bad := core.Leaf[*CountToken, *CountToken]("explode",
		func(c *core.Ctx, in *CountToken) *CountToken { panic("boom") })
	g, err := app.NewFlowgraph("bad", core.Path(core.NewNode(bad, tc, core.MainRoute())))
	if err != nil {
		t.Fatal(err)
	}
	_, err = g.CallTimeout(app.MasterNode(), &CountToken{}, 10*time.Second)
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("expected panic propagation, got %v", err)
	}
	if app.Err() == nil {
		t.Fatal("app error not recorded")
	}
	// Subsequent calls fail fast.
	if _, err := g.Call(context.Background(), &CountToken{}); err == nil {
		t.Fatal("expected failed app to reject calls")
	}
}

func TestSplitZeroTokensFails(t *testing.T) {
	app := newLocalApp(t, core.Config{}, "node0")
	tc := core.MustCollection[struct{}](app, "tc")
	if err := tc.Map("node0"); err != nil {
		t.Fatal(err)
	}
	empty := core.Split[*CountToken, *CountToken]("empty-split",
		func(c *core.Ctx, in *CountToken, post func(*CountToken)) {})
	merge := core.Merge[*CountToken, *CountToken]("m",
		func(c *core.Ctx, first *CountToken, next func() (*CountToken, bool)) *CountToken {
			for _, ok := first, true; ok; _, ok = next() {
			}
			return first
		})
	g, err := app.NewFlowgraph("zero", core.Path(
		core.NewNode(empty, tc, core.MainRoute()),
		core.NewNode(merge, tc, core.MainRoute()),
	))
	if err != nil {
		t.Fatal(err)
	}
	_, err = g.CallTimeout(app.MasterNode(), &CountToken{}, 10*time.Second)
	if err == nil || !strings.Contains(err.Error(), "posted no tokens") {
		t.Fatalf("expected zero-post error, got %v", err)
	}
}

func TestLeafMustPostExactlyOnce(t *testing.T) {
	app := newLocalApp(t, core.Config{}, "node0")
	tc := core.MustCollection[struct{}](app, "tc")
	if err := tc.Map("node0"); err != nil {
		t.Fatal(err)
	}
	// LeafAny lets us violate the exactly-one rule on purpose.
	bad := core.LeafAny("double-post",
		[]core.Token{(*CountToken)(nil)}, []core.Token{(*CountToken)(nil)},
		func(c *core.Ctx, in core.Token, post func(core.Token)) {
			post(in)
			post(in)
		})
	sink := core.Merge[*CountToken, *CountToken]("sink",
		func(c *core.Ctx, first *CountToken, next func() (*CountToken, bool)) *CountToken {
			for _, ok := first, true; ok; _, ok = next() {
			}
			return first
		})
	split := core.Split[*CountToken, *CountToken]("s1",
		func(c *core.Ctx, in *CountToken, post func(*CountToken)) { post(in) })
	g, err := app.NewFlowgraph("doublepost", core.Path(
		core.NewNode(split, tc, core.MainRoute()),
		core.NewNode(bad, tc, core.MainRoute()),
		core.NewNode(sink, tc, core.MainRoute()),
	))
	if err != nil {
		t.Fatal(err)
	}
	_, err = g.CallTimeout(app.MasterNode(), &CountToken{}, 10*time.Second)
	if err == nil {
		t.Fatal("expected error for leaf posting twice")
	}
}

func TestMergeMustDrainGroup(t *testing.T) {
	app := newLocalApp(t, core.Config{}, "node0")
	tc := core.MustCollection[struct{}](app, "tc")
	if err := tc.Map("node0"); err != nil {
		t.Fatal(err)
	}
	split := core.Split[*CountToken, *CountToken]("s2",
		func(c *core.Ctx, in *CountToken, post func(*CountToken)) {
			for i := 0; i < 5; i++ {
				post(&CountToken{N: i})
			}
		})
	lazy := core.Merge[*CountToken, *CountToken]("lazy-merge",
		func(c *core.Ctx, first *CountToken, next func() (*CountToken, bool)) *CountToken {
			return first // returns without draining
		})
	g, err := app.NewFlowgraph("lazy", core.Path(
		core.NewNode(split, tc, core.MainRoute()),
		core.NewNode(lazy, tc, core.MainRoute()),
	))
	if err != nil {
		t.Fatal(err)
	}
	_, err = g.CallTimeout(app.MasterNode(), &CountToken{}, 10*time.Second)
	if err == nil || !strings.Contains(err.Error(), "before consuming its group") {
		t.Fatalf("expected drain error, got %v", err)
	}
}

func TestUnregisteredTokenFailsCrossNode(t *testing.T) {
	type hiddenToken struct{ X int }
	reg := serial.NewRegistry()
	if err := serial.Register[CountToken](reg); err != nil {
		t.Fatal(err)
	}
	// hiddenToken deliberately not registered.
	app, err := core.NewLocalApp(core.Config{Registry: reg, ForceSerialize: true}, "node0")
	if err != nil {
		t.Fatal(err)
	}
	defer app.Close()
	tc := core.MustCollection[struct{}](app, "tc")
	if err := tc.Map("node0"); err != nil {
		t.Fatal(err)
	}
	emit := core.Leaf[*CountToken, *hiddenToken]("emit-hidden",
		func(c *core.Ctx, in *CountToken) *hiddenToken { return &hiddenToken{X: 1} })
	g, err := app.NewFlowgraph("hidden", core.Path(core.NewNode(emit, tc, core.MainRoute())))
	if err != nil {
		t.Fatal(err)
	}
	_, err = g.CallTimeout(app.MasterNode(), &CountToken{}, 10*time.Second)
	if err == nil || !strings.Contains(err.Error(), "not registered") {
		t.Fatalf("expected registration error, got %v", err)
	}
}

// TestDynamicRemap rebuilds the mapping between runs — the paper's dynamic
// reconfiguration without recompiling or restarting.
func TestDynamicRemap(t *testing.T) {
	app := newLocalApp(t, core.Config{}, "node0", "node1", "node2")
	g := buildUppercase(t, app, "remap", "node1")
	out, err := g.CallTimeout(app.MasterNode(), &StringToken{Str: "first"}, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if out.(*StringToken).Str != "FIRST" {
		t.Fatalf("got %q", out.(*StringToken).Str)
	}
	// Acquire more resources at runtime: spread compute over three nodes.
	compute, ok := app.Collection("remap-compute")
	if !ok {
		t.Fatal("collection not found")
	}
	if err := compute.Map("node0 node1 node2"); err != nil {
		t.Fatal(err)
	}
	out, err = g.CallTimeout(app.MasterNode(), &StringToken{Str: "second"}, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if out.(*StringToken).Str != "SECOND" {
		t.Fatalf("got %q", out.(*StringToken).Str)
	}
}

func TestRouteHelpers(t *testing.T) {
	app := newLocalApp(t, core.Config{}, "node0")
	tc := core.MustCollection[struct{}](app, "tc")
	if err := tc.MapRoundRobin(4); err != nil {
		t.Fatal(err)
	}
	if tc.ThreadCount() != 4 {
		t.Fatalf("ThreadCount = %d", tc.ThreadCount())
	}
	if n, err := tc.NodeOf(3); err != nil || n != "node0" {
		t.Fatalf("NodeOf(3) = %q, %v", n, err)
	}
	if _, err := tc.NodeOf(4); err == nil {
		t.Fatal("expected out-of-range error")
	}
}
