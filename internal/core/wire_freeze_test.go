package core

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// frozenWireKinds is the golden name→number table of the engine's wire
// kinds. These numbers are the wire format: a mixed-version cluster during
// a rolling restart decodes frames by them, and recorded checkpoint/replay
// streams (PR 5) outlive any single binary. An existing kind must NEVER be
// renumbered or reused; new kinds take fresh numbers and a new row here.
var frozenWireKinds = map[string]byte{
	"msgToken":      1,
	"msgGroupEnd":   2,
	"msgAck":        3,
	"msgResult":     4,
	"msgMigrate":    5,
	"msgFence":      6,
	"msgCheckpoint": 7,
	"msgReplay":     8,
	"msgDeath":      9,
	"msgTokenFT":    10,
	"msgGroupEndFT": 11,
	"msgCut":        12,
	"msgPing":       13,
	"msgBatch":      14,
	"msgTraced":     15,
}

func TestWireKindNumbersFrozen(t *testing.T) {
	got := map[string]byte{
		"msgToken":      msgToken,
		"msgGroupEnd":   msgGroupEnd,
		"msgAck":        msgAck,
		"msgResult":     msgResult,
		"msgMigrate":    msgMigrate,
		"msgFence":      msgFence,
		"msgCheckpoint": msgCheckpoint,
		"msgReplay":     msgReplay,
		"msgDeath":      msgDeath,
		"msgTokenFT":    msgTokenFT,
		"msgGroupEndFT": msgGroupEndFT,
		"msgCut":        msgCut,
		"msgPing":       msgPing,
		"msgBatch":      msgBatch,
		"msgTraced":     msgTraced,
	}
	for name, want := range frozenWireKinds {
		if got[name] != want {
			t.Errorf("%s = %d, frozen as %d: wire kind numbers are the wire format — peers of other versions and recorded replay streams decode by number. Revert the renumbering; a changed meaning needs a NEW kind number.", name, got[name], want)
		}
	}
	byNum := make(map[byte]string, len(got))
	for name, n := range got {
		if other, dup := byNum[n]; dup {
			t.Errorf("%s and %s share number %d: every wire kind needs a distinct number", name, other, n)
		}
		byNum[n] = name
	}
}

// TestWireKindTableComplete parses wire.go and fails on any msg* constant
// missing from the frozen table, so a new kind cannot ship unfrozen.
func TestWireKindTableComplete(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "wire.go", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	found := 0
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.CONST {
			continue
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, name := range vs.Names {
				n := name.Name
				if !strings.HasPrefix(n, "msg") || len(n) <= 3 || n[3] < 'A' || n[3] > 'Z' {
					continue
				}
				found++
				if _, ok := frozenWireKinds[n]; !ok {
					t.Errorf("wire kind %s is not in frozenWireKinds: add it with its (new, never recycled) number so the wire format stays auditable", n)
				}
			}
		}
	}
	if found != len(frozenWireKinds) {
		t.Errorf("wire.go declares %d msg* kinds, frozen table has %d: keep them in lockstep (kinds may be added, never removed — old streams still carry them)", found, len(frozenWireKinds))
	}
}
