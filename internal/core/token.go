// Package core implements Dynamic Parallel Schedules (DPS), the primary
// contribution of Gerlach & Hersch (HIPS/IPDPS 2003): compositional
// split-compute-merge flow graphs of operations, mapped at runtime onto
// collections of threads spread across the nodes of a distributed-memory
// cluster.
//
// An application defines
//
//   - token types: plain Go structs registered with internal/serial
//     (the paper's data objects with the IDENTIFY macro);
//   - operations: Split (1→N), Leaf (1→1), Merge (N→1) and Stream (N→M,
//     a fused merge+split that may emit before all inputs arrived);
//   - thread collections: named groups of threads carrying user state,
//     mapped to cluster nodes with mapping strings such as "nodeA*2 nodeB";
//   - routing functions choosing the destination thread index per token;
//   - flow graphs: directed acyclic graphs built from Path/Add (the
//     paper's >> and += operators), type-checked and balance-checked at
//     construction time.
//
// Graphs execute fully pipelined: tokens travel as soon as they are posted,
// queues decouple producers from consumers, and a per-split flow-control
// window bounds the number of tokens in circulation between each
// split–merge pair. Communication with remote threads is serialized and
// paid on the transport (typically internal/simnet, modelling the paper's
// Gigabit Ethernet cluster); local transfers bypass serialization unless
// Config.ForceSerialize is set.
package core

import (
	"fmt"
	"reflect"
)

// Token is a DPS data object: a pointer to a struct whose exported fields
// are serializable by internal/serial. The empty interface is used so that
// operations can exchange heterogeneous token types along conditional graph
// paths; typed operation constructors (Leaf, Split, Merge, Stream) restore
// static typing at the user level.
type Token = any

// tokType normalizes a token value or type to its underlying struct type,
// which is the unit of type compatibility checks on graph edges.
func tokType(v any) (reflect.Type, error) {
	t := reflect.TypeOf(v)
	if t == nil {
		return nil, fmt.Errorf("dps: nil token")
	}
	if t.Kind() != reflect.Pointer || t.Elem().Kind() != reflect.Struct {
		return nil, fmt.Errorf("dps: tokens must be pointers to structs, got %s", t)
	}
	return t.Elem(), nil
}

// typeOfGeneric returns the struct type for a generic token parameter,
// which must instantiate to a pointer-to-struct type.
func typeOfGeneric[T any]() reflect.Type {
	t := reflect.TypeOf((*T)(nil)).Elem() // T itself
	if t.Kind() == reflect.Pointer && t.Elem().Kind() == reflect.Struct {
		return t.Elem()
	}
	panic(fmt.Sprintf("dps: token type parameter must be a pointer to struct, got %s", t))
}

// frame is one level of the split–merge accounting stack carried by every
// token envelope. A split pushes a frame on each posted token; the paired
// merge (or stream) pops it. Origin names the cluster node holding the
// split-side window state so that consumption acknowledgements can be
// routed back for flow control and load balancing.
type frame struct {
	GroupID     uint64
	Index       int
	Origin      string
	MergeThread int // thread instance of the paired merge, fixed per group
}

// envelope is the runtime wrapper around a token in flight.
type envelope struct {
	Graph      string
	Node       int // destination graph node id
	Thread     int // destination thread index in that node's collection
	CallID     uint64
	CallOrigin string
	LastWorker int // thread index charged with this token for load balancing
	CreditNode int // graph node whose credit tracker was charged, -1 if none
	Frames     []frame
	Token      Token // set on the local fast path
	Payload    []byte

	// FTStream / FTSeq identify the token on its sender stream when the
	// fault-tolerance layer is enabled (zero otherwise): the receiver's
	// duplicate filter and the sender's retention log key on them. They
	// travel in the msgTokenFT framing; plain msgToken stays byte-identical.
	FTStream string
	FTSeq    uint64
	// ftSender is the sending instance's fault-tolerance state (set by the
	// posting paths, consumed by the routing layer when it assigns FTSeq);
	// nil on forwarded or replayed envelopes, whose sequencing is fixed.
	// ftInStream / ftInSeq are the stream the posting execution's input
	// arrived on and its sequence number there — the output stream derives
	// from the input stream (ft.DerivedStream), which makes re-executed
	// sequence assignment deterministic, and the input sequence attributes
	// each retained output to the input that produced it (regenerative
	// checkpoints, ft.Entry.InSeq). ftWire is the message encoding produced
	// for the retention log; the link layer copies it instead of serializing
	// the token a second time.
	ftSender   *ftSender
	ftInStream string
	ftInSeq    uint64
	ftWire     []byte

	// TraceID is the sampled call's trace identifier (zero: unsampled, which
	// is the hot path — every span-recording site gates on it before touching
	// clocks or rings). It never enters the base wire encodings; remote
	// transfers of sampled envelopes wrap the ordinary frame in msgTraced, so
	// the wire stays byte-identical with tracing off. traceEnqNs is the
	// dispatch-enqueue timestamp backing the queue-wait span; both clear with
	// the rest of the struct in putEnvelope.
	TraceID    uint64
	traceEnqNs int64
}

func (e *envelope) topFrame() (*frame, bool) {
	if len(e.Frames) == 0 {
		return nil, false
	}
	return &e.Frames[len(e.Frames)-1], true
}
