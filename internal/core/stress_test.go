package core_test

import (
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

// TestDeepNesting chains three levels of split-merge constructs.
func TestDeepNesting(t *testing.T) {
	app := newLocalApp(t, core.Config{}, "node0", "node1")
	tc := core.MustCollection[struct{}](app, "tc")
	if err := tc.Map("node0 node1"); err != nil {
		t.Fatal(err)
	}
	mkSplit := func(name string, fan int) *core.OpDef {
		return core.Split[*CountToken, *CountToken](name,
			func(c *core.Ctx, in *CountToken, post func(*CountToken)) {
				for i := 0; i < fan; i++ {
					post(&CountToken{N: in.N})
				}
			})
	}
	mkMerge := func(name string) *core.OpDef {
		return core.Merge[*CountToken, *CountToken](name,
			func(c *core.Ctx, first *CountToken, next func() (*CountToken, bool)) *CountToken {
				sum := 0
				for in, ok := first, true; ok; in, ok = next() {
					sum += in.N
				}
				return &CountToken{N: sum}
			})
	}
	work := core.Leaf[*CountToken, *CountToken]("w3",
		func(c *core.Ctx, in *CountToken) *CountToken { return in })

	g, err := app.NewFlowgraph("deep", core.Path(
		core.NewNode(mkSplit("s1", 3), tc, core.MainRoute()),
		core.NewNode(mkSplit("s2", 4), tc, core.RoundRobin()),
		core.NewNode(mkSplit("s3", 5), tc, core.RoundRobin()),
		core.NewNode(work, tc, core.RoundRobin()),
		core.NewNode(mkMerge("m3"), tc, core.RoundRobin()),
		core.NewNode(mkMerge("m2"), tc, core.RoundRobin()),
		core.NewNode(mkMerge("m1"), tc, core.MainRoute()),
	))
	if err != nil {
		t.Fatal(err)
	}
	out, err := g.CallTimeout(app.MasterNode(), &CountToken{N: 1}, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// 3*4*5 = 60 leaves, each carrying N=1, summed back up.
	if got := out.(*CountToken).N; got != 60 {
		t.Fatalf("deep nesting sum = %d, want 60", got)
	}
}

// TestWideFanOut pushes 5000 tokens through one split-merge pair, far
// beyond the flow-control window.
func TestWideFanOut(t *testing.T) {
	app := newLocalApp(t, core.Config{Window: 32}, "node0", "node1", "node2")
	tc := core.MustCollection[struct{}](app, "tc")
	if err := tc.Map("node0 node1 node2"); err != nil {
		t.Fatal(err)
	}
	split := core.Split[*CountToken, *CountToken]("wide-split",
		func(c *core.Ctx, in *CountToken, post func(*CountToken)) {
			for i := 0; i < in.N; i++ {
				post(&CountToken{N: 1})
			}
		})
	work := core.Leaf[*CountToken, *CountToken]("wide-work",
		func(c *core.Ctx, in *CountToken) *CountToken { return in })
	merge := core.Merge[*CountToken, *SumToken]("wide-merge",
		func(c *core.Ctx, first *CountToken, next func() (*CountToken, bool)) *SumToken {
			n := 0
			for _, ok := first, true; ok; _, ok = next() {
				n++
			}
			return &SumToken{Calls: n}
		})
	g, err := app.NewFlowgraph("wide", core.Path(
		core.NewNode(split, tc, core.MainRoute()),
		core.NewNode(work, tc, core.RoundRobin()),
		core.NewNode(merge, tc, core.MainRoute()),
	))
	if err != nil {
		t.Fatal(err)
	}
	const tokens = 5000
	out, err := g.CallTimeout(app.MasterNode(), &CountToken{N: tokens}, 120*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got := out.(*SumToken).Calls; got != tokens {
		t.Fatalf("merged %d of %d tokens", got, tokens)
	}
	if stalls := app.Stats().WindowStalls; stalls == 0 {
		t.Error("expected flow-control stalls with window 32 and 5000 tokens")
	}
}

// TestServiceCallMidGraph places a graph call between a split and a merge:
// every sub-task of the outer construct invokes another graph as if it were
// a leaf (the composition Figure 10 enables).
func TestServiceCallMidGraph(t *testing.T) {
	app := newLocalApp(t, core.Config{}, "node0", "node1")

	// Inner service: squares a number via its own split/merge (sum of N
	// copies of N).
	svcTC := core.MustCollection[struct{}](app, "svc")
	if err := svcTC.Map("node1"); err != nil {
		t.Fatal(err)
	}
	svcSplit := core.Split[*CountToken, *CountToken]("svc-split",
		func(c *core.Ctx, in *CountToken, post func(*CountToken)) {
			for i := 0; i < in.N; i++ {
				post(&CountToken{N: in.N})
			}
		})
	svcMerge := core.Merge[*CountToken, *SumToken]("svc-merge",
		func(c *core.Ctx, first *CountToken, next func() (*CountToken, bool)) *SumToken {
			sum := 0
			for in, ok := first, true; ok; in, ok = next() {
				sum += in.N
			}
			return &SumToken{Sum: sum}
		})
	svc, err := app.NewFlowgraph("square-service", core.Path(
		core.NewNode(svcSplit, svcTC, core.MainRoute()),
		core.NewNode(svcMerge, svcTC, core.MainRoute()),
	))
	if err != nil {
		t.Fatal(err)
	}

	// Outer graph: split 1..4, call the service per token, sum the squares.
	outTC := core.MustCollection[struct{}](app, "outer")
	if err := outTC.Map("node0"); err != nil {
		t.Fatal(err)
	}
	outSplit := core.Split[*CountToken, *CountToken]("outer-split",
		func(c *core.Ctx, in *CountToken, post func(*CountToken)) {
			for i := 1; i <= in.N; i++ {
				post(&CountToken{N: i})
			}
		})
	callOp := core.GraphCallOp("call-square", svc)
	outMerge := core.Merge[*SumToken, *SumToken]("outer-merge",
		func(c *core.Ctx, first *SumToken, next func() (*SumToken, bool)) *SumToken {
			sum := 0
			for in, ok := first, true; ok; in, ok = next() {
				sum += in.Sum
			}
			return &SumToken{Sum: sum}
		})
	g, err := app.NewFlowgraph("sum-squares", core.Path(
		core.NewNode(outSplit, outTC, core.MainRoute()),
		core.NewNode(callOp, outTC, core.MainRoute()),
		core.NewNode(outMerge, outTC, core.MainRoute()),
	))
	if err != nil {
		t.Fatal(err)
	}
	out, err := g.CallTimeout(app.MasterNode(), &CountToken{N: 4}, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// 1 + 4 + 9 + 16 = 30.
	if got := out.(*SumToken).Sum; got != 30 {
		t.Fatalf("sum of squares = %d, want 30", got)
	}
}

// TestConcurrentCallsKeepStateConsistent hammers a stateful collection with
// concurrent calls of two different graphs sharing the same threads.
func TestConcurrentCallsKeepStateConsistent(t *testing.T) {
	app := newLocalApp(t, core.Config{}, "node0", "node1")
	workers := core.MustCollection[counterState](app, "workers")
	if err := workers.Map("node0 node1"); err != nil {
		t.Fatal(err)
	}
	main := core.MustCollection[struct{}](app, "main")
	if err := main.Map("node0"); err != nil {
		t.Fatal(err)
	}
	addGraph := func(name string, delta int) *core.Flowgraph {
		split := core.Split[*CountToken, *CountToken](name+"-split",
			func(c *core.Ctx, in *CountToken, post func(*CountToken)) {
				for i := 0; i < in.N; i++ {
					post(&CountToken{N: i})
				}
			})
		add := core.Leaf[*CountToken, *CountToken](name+"-add",
			func(c *core.Ctx, in *CountToken) *CountToken {
				st := core.StateOf[counterState](c)
				st.mine += delta
				return in
			})
		merge := core.Merge[*CountToken, *SumToken](name+"-merge",
			func(c *core.Ctx, first *CountToken, next func() (*CountToken, bool)) *SumToken {
				n := 0
				for _, ok := first, true; ok; _, ok = next() {
					n++
				}
				return &SumToken{Calls: n}
			})
		g, err := app.NewFlowgraph(name, core.Path(
			core.NewNode(split, main, core.MainRoute()),
			core.NewNode(add, workers, core.ByKey[*CountToken](name+"-route", func(in *CountToken) int { return in.N })),
			core.NewNode(merge, main, core.MainRoute()),
		))
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	g1 := addGraph("inc1", 1)
	g2 := addGraph("inc10", 10)

	const per = 20
	var wg sync.WaitGroup
	for i := 0; i < per; i++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			if _, err := g1.CallTimeout(app.MasterNode(), &CountToken{N: 8}, 60*time.Second); err != nil {
				t.Error(err)
			}
		}()
		go func() {
			defer wg.Done()
			if _, err := g2.CallTimeout(app.MasterNode(), &CountToken{N: 8}, 60*time.Second); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()

	// Read back the two thread states through a third graph: total must be
	// per*8*(1+10) across both threads.
	readSplit := core.Split[*CountToken, *CountToken]("read-split",
		func(c *core.Ctx, in *CountToken, post func(*CountToken)) {
			post(&CountToken{N: 0})
			post(&CountToken{N: 1})
		})
	report := core.Leaf[*CountToken, *SumToken]("read-state",
		func(c *core.Ctx, in *CountToken) *SumToken {
			return &SumToken{Sum: core.StateOf[counterState](c).mine}
		})
	total := core.Merge[*SumToken, *SumToken]("read-total",
		func(c *core.Ctx, first *SumToken, next func() (*SumToken, bool)) *SumToken {
			sum := 0
			for in, ok := first, true; ok; in, ok = next() {
				sum += in.Sum
			}
			return &SumToken{Sum: sum}
		})
	g3, err := app.NewFlowgraph("read-back", core.Path(
		core.NewNode(readSplit, main, core.MainRoute()),
		core.NewNode(report, workers, core.ByKey[*CountToken]("read-route", func(in *CountToken) int { return in.N })),
		core.NewNode(total, main, core.MainRoute()),
	))
	if err != nil {
		t.Fatal(err)
	}
	out, err := g3.CallTimeout(app.MasterNode(), &CountToken{}, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	want := per * 8 * 11
	if got := out.(*SumToken).Sum; got != want {
		t.Fatalf("state total = %d, want %d (operations on one thread must be serialized)", got, want)
	}
}
