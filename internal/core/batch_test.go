package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// randEnvelope builds an envelope with pseudorandom routing fields and a
// payload of the given size.
func randEnvelope(rng *rand.Rand, payloadLen int) *envelope {
	p := make([]byte, payloadLen)
	rng.Read(p)
	return &envelope{
		Graph:      fmt.Sprintf("g%d", rng.Intn(3)),
		Node:       rng.Intn(8),
		Thread:     rng.Intn(16),
		CallID:     rng.Uint64() >> 16,
		CallOrigin: fmt.Sprintf("node%d", rng.Intn(4)),
		LastWorker: rng.Intn(4) - 1,
		CreditNode: rng.Intn(4) - 1,
		Frames: []frame{{
			GroupID:     rng.Uint64() >> 32,
			Index:       rng.Intn(1 << 12),
			Origin:      fmt.Sprintf("node%d", rng.Intn(4)),
			MergeThread: rng.Intn(8),
		}},
		Payload: p,
	}
}

type batchEntry struct {
	kind   byte
	stream string
	seq    uint64
	env    *envelope
	end    *groupEndMsg
}

// encodeBatchOf runs the entries through a batchEncoder exactly as the
// link-layer batcher does.
func encodeBatchOf(entries []batchEntry, compress bool) []byte {
	var be batchEncoder
	for _, e := range entries {
		var body []byte
		switch e.kind {
		case msgToken, msgTokenFT:
			body = appendEnvelopeBody(nil, e.env)
			body = append(body, e.env.Payload...)
		case msgGroupEnd, msgGroupEndFT:
			body = appendGroupEndBody(nil, e.end)
		}
		be.add(e.kind, e.stream, e.seq, body)
	}
	frame, _, _ := be.appendFrame(nil, compress)
	return frame
}

// TestBatchRoundTripOracle: a batch of N entries must decode to exactly the
// envelopes and group-ends that N individual frames would have produced —
// same bodies byte for byte, same FT stamps.
func TestBatchRoundTripOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(12)
		entries := make([]batchEntry, n)
		for i := range entries {
			e := batchEntry{stream: fmt.Sprintf("s%d", rng.Intn(3)), seq: rng.Uint64() >> 40}
			switch rng.Intn(4) {
			case 0:
				e.kind = msgToken
				e.env = randEnvelope(rng, rng.Intn(512))
			case 1:
				e.kind = msgTokenFT
				e.env = randEnvelope(rng, rng.Intn(512))
			case 2:
				e.kind = msgGroupEnd
				e.end = &groupEndMsg{Graph: "g", Node: rng.Intn(4), Thread: rng.Intn(4), GroupID: rng.Uint64() >> 32, Total: rng.Intn(100), CallID: rng.Uint64() >> 32}
			case 3:
				e.kind = msgGroupEndFT
				e.end = &groupEndMsg{Graph: "g2", Node: 1, Thread: 2, GroupID: 7, Total: 3, CallID: 11}
			}
			entries[i] = e
		}
		frame := encodeBatchOf(entries, trial%2 == 1)
		if frame[0] != msgBatch {
			t.Fatalf("kind byte %d", frame[0])
		}
		body, _, err := decodeBatchFrame(frame[1:])
		if err != nil {
			t.Fatal(err)
		}
		i := 0
		err = decodeBatch(body, func(kind byte, stream string, seq uint64, entryBody []byte) error {
			want := entries[i]
			i++
			if kind != want.kind {
				return fmt.Errorf("entry %d: kind %d want %d", i-1, kind, want.kind)
			}
			switch kind {
			case msgToken, msgTokenFT:
				if kind == msgTokenFT && (stream != want.stream || seq != want.seq) {
					return fmt.Errorf("entry %d: stamp (%q,%d) want (%q,%d)", i-1, stream, seq, want.stream, want.seq)
				}
				// Oracle: the entry body must equal the single-frame encoding
				// minus its prefix, and decode to the same envelope.
				var single []byte
				if kind == msgTokenFT {
					env := *want.env
					env.FTStream, env.FTSeq = want.stream, want.seq
					single = appendTokenFT(nil, &env)
					single = append(single, want.env.Payload...)
					prefix := appendString([]byte{msgTokenFT}, want.stream)
					prefix = appendUint64(prefix, want.seq)
					single = single[len(prefix):]
				} else {
					single = encodeEnvelopeHeader(want.env)
					single = append(single, want.env.Payload...)
					single = single[1:] // kind byte
				}
				if !bytes.Equal(entryBody, single) {
					return fmt.Errorf("entry %d: body differs from single-frame encoding", i-1)
				}
				got, derr := decodeEnvelope(entryBody)
				if derr != nil {
					return derr
				}
				wantEnv := *want.env
				wantEnv.Token = nil
				got.Token = nil
				if len(got.Payload) == 0 && len(wantEnv.Payload) == 0 {
					got.Payload, wantEnv.Payload = nil, nil
				}
				if !reflect.DeepEqual(got, &wantEnv) {
					return fmt.Errorf("entry %d: envelope %+v want %+v", i-1, got, &wantEnv)
				}
			default:
				single := appendGroupEndBody(nil, want.end)
				if !bytes.Equal(entryBody, single) {
					return fmt.Errorf("entry %d: group-end body differs", i-1)
				}
				got, derr := decodeGroupEnd(entryBody)
				if derr != nil {
					return derr
				}
				if !reflect.DeepEqual(got, want.end) {
					return fmt.Errorf("entry %d: group-end %+v want %+v", i-1, got, want.end)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if i != n {
			t.Fatalf("trial %d: decoded %d entries, want %d", trial, i, n)
		}
	}
}

// TestBatchCompressedFrame pins the compressed path: compressible bodies
// shrink on the wire yet inflate to the identical body.
func TestBatchCompressedFrame(t *testing.T) {
	env := randEnvelope(rand.New(rand.NewSource(1)), 0)
	env.Payload = bytes.Repeat([]byte("data"), 4096)
	entries := []batchEntry{{kind: msgToken, env: env}}
	raw := encodeBatchOf(entries, false)
	packed := encodeBatchOf(entries, true)
	if len(packed) >= len(raw) {
		t.Fatalf("compressed frame did not shrink: %d >= %d", len(packed), len(raw))
	}
	if packed[1]&batchFlagCompressed == 0 {
		t.Fatal("compressed frame not flagged")
	}
	rawBody, inflated1, err := decodeBatchFrame(raw[1:])
	if err != nil {
		t.Fatal(err)
	}
	packedBody, inflated2, err := decodeBatchFrame(packed[1:])
	if err != nil {
		t.Fatal(err)
	}
	if inflated1 || !inflated2 {
		t.Fatalf("inflated flags: raw %v, packed %v", inflated1, inflated2)
	}
	if !bytes.Equal(rawBody, packedBody) {
		t.Fatal("compressed body inflates to different bytes")
	}
	// Incompressible bodies must ride raw even with compression requested.
	rng := rand.New(rand.NewSource(2))
	env2 := randEnvelope(rng, 16<<10)
	frame := encodeBatchOf([]batchEntry{{kind: msgToken, env: env2}}, true)
	if frame[1]&batchFlagCompressed != 0 {
		t.Fatal("incompressible body was flagged compressed")
	}
}

// TestBatchDecodeHostile hardens the decoder against frames that lie about
// counts and lengths: nothing may allocate proportionally to a claimed
// count, and every lie must surface as an error rather than a panic.
func TestBatchDecodeHostile(t *testing.T) {
	hostile := [][]byte{
		{},     // empty frame
		{0xff}, // unknown flags
		// Giant claimed stream count with no bytes behind it.
		binary.AppendUvarint(nil, 1<<40),
		// Plausible stream count, truncated strings.
		append(binary.AppendUvarint(nil, 3), 0x05, 'a'),
		// Zero streams, giant entry count.
		binary.AppendUvarint(binary.AppendUvarint(nil, 0), 1<<40),
		// One entry claiming a body far past the frame end.
		func() []byte {
			b := binary.AppendUvarint(nil, 0) // no streams
			b = binary.AppendUvarint(b, 1)    // one entry
			b = append(b, msgToken)
			b = binary.AppendUvarint(b, 1<<30) // body length lie
			return append(b, 1, 2, 3)
		}(),
		// FT entry with out-of-range stream index.
		func() []byte {
			b := binary.AppendUvarint(nil, 1)
			b = appendString(b, "s")
			b = binary.AppendUvarint(b, 1)
			b = append(b, msgTokenFT)
			b = binary.AppendUvarint(b, 9) // index 9 of 1
			b = binary.AppendUvarint(b, 1)
			b = binary.AppendUvarint(b, 0)
			return b
		}(),
		// Non-batchable kind inside a batch.
		func() []byte {
			b := binary.AppendUvarint(nil, 0)
			b = binary.AppendUvarint(b, 1)
			b = append(b, msgResult)
			return binary.AppendUvarint(b, 0)
		}(),
		// Trailing garbage after the declared entries.
		func() []byte {
			b := binary.AppendUvarint(nil, 0)
			b = binary.AppendUvarint(b, 0)
			return append(b, 0xde, 0xad)
		}(),
	}
	for i, h := range hostile {
		if i == 0 {
			if _, _, err := decodeBatchFrame(h); err == nil {
				t.Errorf("case %d: empty frame accepted", i)
			}
			continue
		}
		if i == 1 {
			if _, _, err := decodeBatchFrame(h); err == nil {
				t.Errorf("case %d: unknown flags accepted", i)
			}
			continue
		}
		err := decodeBatch(h, func(byte, string, uint64, []byte) error { return nil })
		if err == nil {
			t.Errorf("case %d: hostile body accepted", i)
		}
	}

	// Compressed-frame lies: giant claimed raw length, and a stream that
	// inflates past its claim.
	giant := append([]byte{batchFlagCompressed}, binary.AppendUvarint(nil, maxBatchRaw+1)...)
	if _, _, err := decodeBatchFrame(append(giant, 1, 2, 3)); err == nil {
		t.Error("giant claimed raw length accepted")
	}
	body := bytes.Repeat([]byte("x"), 8192)
	packed, ok := deflateBatch(body)
	if !ok {
		t.Fatal("setup: body did not compress")
	}
	lie := append([]byte{batchFlagCompressed}, binary.AppendUvarint(nil, 16)...)
	if _, _, err := decodeBatchFrame(append(lie, packed...)); err == nil {
		t.Error("stream inflating past its claimed length accepted")
	}
	short := append([]byte{batchFlagCompressed}, binary.AppendUvarint(nil, uint64(len(body)))...)
	if _, _, err := decodeBatchFrame(append(short, packed[:len(packed)/2]...)); err == nil {
		t.Error("truncated flate stream accepted")
	}
}
