package sched

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// --- FIFOLock ------------------------------------------------------------

func TestFIFOLockMutualExclusion(t *testing.T) {
	var l FIFOLock
	var inCrit atomic.Int32
	var max atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				l.Lock()
				if v := inCrit.Add(1); v > max.Load() {
					max.Store(v)
				}
				inCrit.Add(-1)
				l.Unlock()
			}
		}()
	}
	wg.Wait()
	if max.Load() > 1 {
		t.Fatalf("mutual exclusion violated: %d goroutines in critical section", max.Load())
	}
}

func TestFIFOLockOrder(t *testing.T) {
	var l FIFOLock
	l.Lock()
	const n = 20
	order := make([]int, 0, n)
	var mu sync.Mutex
	var wg sync.WaitGroup
	tickets := make([]Ticket, n)
	// Reserve in a known order while the lock is held.
	for i := 0; i < n; i++ {
		tickets[i] = l.Reserve()
	}
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tickets[i].Wait()
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			l.Unlock()
		}(i)
	}
	l.Unlock()
	wg.Wait()
	for i, v := range order {
		if v != i {
			t.Fatalf("reservation order violated: %v", order)
		}
	}
}

func TestFIFOLockUnlockUnheldPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	var l FIFOLock
	l.Unlock()
}

func TestFIFOLockImmediateGrant(t *testing.T) {
	var l FIFOLock
	done := make(chan struct{})
	go func() {
		l.Lock()
		l.Unlock()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("uncontended lock did not grant")
	}
}

// --- Scheduler -----------------------------------------------------------

// testOrderPreserved pushes n items through one instance with an
// engine-style runner (wait ticket, record, unlock) and checks execution
// order matches enqueue order.
func testOrderPreserved(t *testing.T, workers int) {
	t.Helper()
	const n = 1000
	var mu sync.Mutex
	var got []int
	var wg sync.WaitGroup
	var inst *Instance[int]
	s := New(Config{Workers: workers}, func(it int, tk Ticket, fromDrainer bool) bool {
		tk.Wait()
		mu.Lock()
		got = append(got, it)
		mu.Unlock()
		inst.Unlock()
		wg.Done()
		return fromDrainer
	})
	inst = s.NewInstance(7)
	wg.Add(n)
	for i := 0; i < n; i++ {
		inst.Enqueue(i)
	}
	wg.Wait()
	for i, v := range got {
		if v != i {
			t.Fatalf("order violated at %d (workers=%d): got %v", i, workers, got[i])
		}
	}
}

func TestOrderDirect(t *testing.T)  { testOrderPreserved(t, 1) }
func TestOrderSharded(t *testing.T) { testOrderPreserved(t, 4) }

// TestShardedConcurrency checks that distinct instances on distinct shards
// actually run concurrently: two blocking items must overlap in time.
func TestShardedConcurrency(t *testing.T) {
	var running atomic.Int32
	var peak atomic.Int32
	release := make(chan struct{})
	var wg sync.WaitGroup
	var a, b *Instance[int]
	s := New(Config{Workers: 2}, func(it int, tk Ticket, fromDrainer bool) bool {
		tk.Wait()
		if v := running.Add(1); v > peak.Load() {
			peak.Store(v)
		}
		<-release
		running.Add(-1)
		if it == 1 {
			a.Unlock()
		} else {
			b.Unlock()
		}
		wg.Done()
		return fromDrainer
	})
	a = s.NewInstance(0)
	b = s.NewInstance(1)
	wg.Add(2)
	a.Enqueue(1)
	b.Enqueue(2)
	// Give both shard workers time to enter their items.
	time.Sleep(50 * time.Millisecond)
	close(release)
	wg.Wait()
	if peak.Load() != 2 {
		t.Fatalf("expected 2 concurrent executions across shards, peak %d", peak.Load())
	}
}

// TestRelinquishKeepsShardLive checks the drainer handoff: an item that
// blocks mid-execution (after relinquishing, like a stalled split) must not
// stall other instances of its shard.
func TestRelinquishKeepsShardLive(t *testing.T) {
	release := make(chan struct{})
	otherRan := make(chan struct{})
	blockerDone := make(chan struct{})
	var blocker, other *Instance[string]
	// Two worker lanes, but both instances keyed onto lane 0 so the test
	// exercises the in-lane handoff.
	s := New(Config{Workers: 2}, func(it string, tk Ticket, fromDrainer bool) bool {
		tk.Wait()
		if it == "blocker" {
			// A blocking operation: hand the role off, release the
			// execution lock, wait, reacquire, finish.
			if fromDrainer {
				blocker.Relinquish()
				fromDrainer = false
			}
			blocker.Unlock()
			<-release
			blocker.Lock()
			blocker.Unlock()
			close(blockerDone)
			return fromDrainer
		}
		other.Unlock()
		close(otherRan)
		return fromDrainer
	})
	// Both instances land on the single shard.
	blocker = s.NewInstance(0)
	other = s.NewInstance(0)
	blocker.Enqueue("blocker")
	go func() {
		// Give the blocker time to start and relinquish, then enqueue the
		// second instance's work on the same shard.
		time.Sleep(20 * time.Millisecond)
		other.Enqueue("other")
	}()
	select {
	case <-otherRan:
	case <-time.After(5 * time.Second):
		t.Fatal("shard stalled behind a blocked operation")
	}
	close(release)
	select {
	case <-blockerDone:
	case <-time.After(5 * time.Second):
		t.Fatal("blocked operation never resumed")
	}
	if s.Stats().Handoffs == 0 {
		t.Fatal("expected a recorded drainer handoff")
	}
}

// TestQueueHighWater checks the depth counter rises with queued work.
func TestQueueHighWater(t *testing.T) {
	gate := make(chan struct{})
	var wg sync.WaitGroup
	var inst *Instance[int]
	s := New(Config{Workers: 1}, func(it int, tk Ticket, fromDrainer bool) bool {
		tk.Wait()
		<-gate
		inst.Unlock()
		wg.Done()
		return fromDrainer
	})
	inst = s.NewInstance(0)
	const n = 10
	wg.Add(n)
	for i := 0; i < n; i++ {
		inst.Enqueue(i)
	}
	close(gate)
	wg.Wait()
	if hw := s.Stats().QueueHighWater; hw < 2 {
		t.Fatalf("queue high-water %d, want >= 2", hw)
	}
}

// TestOverflowRunsEverything checks the queue-cap overflow path still runs
// every item exactly once in FIFO order.
func TestOverflowRunsEverything(t *testing.T) {
	const n = 64
	var mu sync.Mutex
	var got []int
	var wg sync.WaitGroup
	var inst *Instance[int]
	s := New(Config{Workers: 1, QueueCap: 4}, func(it int, tk Ticket, fromDrainer bool) bool {
		tk.Wait()
		mu.Lock()
		got = append(got, it)
		mu.Unlock()
		inst.Unlock()
		wg.Done()
		return fromDrainer
	})
	inst = s.NewInstance(0)
	wg.Add(n)
	for i := 0; i < n; i++ {
		inst.Enqueue(i)
	}
	wg.Wait()
	if len(got) != n {
		t.Fatalf("ran %d of %d items", len(got), n)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("overflow path broke FIFO order at %d: %v", i, got[:i+1])
		}
	}
}

// TestWorkersReported checks mode selection.
func TestWorkersReported(t *testing.T) {
	if w := New[int](Config{}, nil).Workers(); w != 1 {
		t.Fatalf("direct mode workers = %d", w)
	}
	if w := New[int](Config{Workers: 8}, nil).Workers(); w != 8 {
		t.Fatalf("sharded mode workers = %d", w)
	}
}

// TestShardLaneLiveDespiteHeldLock checks that a shard worker does not park
// on a FIFO ticket while an instance's execution lock is held by an earlier
// (resumed) operation: other instances of the lane must keep being served,
// and the waiting item must still run in order once the lock frees.
func TestShardLaneLiveDespiteHeldLock(t *testing.T) {
	aRan := make(chan struct{})
	bRan := make(chan struct{})
	var a, b *Instance[string]
	s := New(Config{Workers: 2}, func(it string, tk Ticket, fromDrainer bool) bool {
		tk.Wait()
		switch it {
		case "a":
			a.Unlock()
			close(aRan)
		case "b":
			b.Unlock()
			close(bRan)
		}
		return fromDrainer
	})
	// Both instances on lane 0.
	a = s.NewInstance(0)
	b = s.NewInstance(0)
	// An earlier operation holds A's execution lock (as after a blocking
	// point's reacquire) while A has queued work.
	a.Lock()
	a.Enqueue("a")
	b.Enqueue("b")
	select {
	case <-bRan:
	case <-time.After(5 * time.Second):
		t.Fatal("lane starved: instance B not served while A's lock was held")
	}
	select {
	case <-aRan:
		t.Fatal("A's item ran although its execution lock was held")
	case <-time.After(20 * time.Millisecond):
	}
	a.Unlock() // the earlier operation finishes
	select {
	case <-aRan:
	case <-time.After(5 * time.Second):
		t.Fatal("A's item did not run after the lock freed")
	}
}
