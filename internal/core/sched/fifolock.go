package sched

import "sync"

// FIFOLock is a mutual-exclusion lock granting ownership in reservation
// order. DPS serializes the operation bodies executing on one thread; the
// dispatcher reserves a ticket synchronously when a token arrives so that
// executions start in arrival order, even though each may run in its own
// goroutine. Operations release the lock while blocked (merge Next, flow
// controlled Post, graph calls), which reproduces the paper's behaviour of
// a thread whose split is stalled still making progress on its merge.
type FIFOLock struct {
	mu      sync.Mutex
	locked  bool
	waiters []chan struct{}
}

// Ticket is a reservation for the lock.
type Ticket struct {
	ch <-chan struct{}
}

// grantedTicket is the shared already-closed channel returned by
// uncontended reservations, so the dispatch hot path reserves without
// allocating.
var grantedTicket = func() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}()

// Reserve enqueues a reservation. The returned ticket's Wait blocks until
// the lock is owned by the caller.
func (l *FIFOLock) Reserve() Ticket {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.locked && len(l.waiters) == 0 {
		l.locked = true
		return Ticket{ch: grantedTicket}
	}
	ch := make(chan struct{})
	l.waiters = append(l.waiters, ch)
	return Ticket{ch: ch}
}

// Wait blocks until the reservation is granted.
func (t Ticket) Wait() { <-t.ch }

// granted reports whether the reservation is already grantable without
// blocking (the lock reached this ticket's turn).
func (t Ticket) granted() bool {
	select {
	case <-t.ch:
		return true
	default:
		return false
	}
}

// Lock reserves and waits.
func (l *FIFOLock) Lock() { l.Reserve().Wait() }

// Unlock passes ownership to the oldest waiter, if any.
func (l *FIFOLock) Unlock() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.locked {
		panic("sched: unlock of unlocked FIFOLock")
	}
	if len(l.waiters) > 0 {
		ch := l.waiters[0]
		l.waiters = l.waiters[1:]
		close(ch)
		return
	}
	l.locked = false
}
