// Package sched is the intra-node scheduling layer of the DPS engine: it
// owns the per-thread-instance dispatch queues, the FIFO execution tickets
// that keep operation executions in token-arrival order, and the drainer
// goroutines that pop queued executions and run them.
//
// Two execution modes are provided:
//
//   - direct (Workers <= 1): each instance with pending work has its own
//     on-demand drainer goroutine, the original scheme;
//   - sharded (Workers = N > 1): instances are statically assigned to N
//     shards and runnable instances queue on their shard, so at most N
//     unblocked drainer goroutines run concurrently (goroutines parked
//     inside blocked operations have already handed their role off).
//
// In both modes the paper's progress-while-stalled semantics hold: an
// operation that is about to block relinquishes the drainer role first
// (Instance.Relinquish), so queued executions keep flowing while it waits.
// Per-instance FIFO ordering is guaranteed by the tickets, which are
// reserved under the queue lock at enqueue time: queue order and lock grant
// order always agree.
package sched

import (
	"sync"
	"sync/atomic"
)

// DefaultQueueCap bounds the per-instance dispatch queue when Config.QueueCap
// is zero. Beyond it the scheduler degrades to the direct goroutine-per-token
// scheme rather than blocking the poster (the per-split flow-control window
// is the real bound on tokens in flight; this is a memory backstop).
const DefaultQueueCap = 1024

// Config tunes a Scheduler.
type Config struct {
	// Workers selects the execution mode: <= 1 spawns an on-demand drainer
	// goroutine per runnable instance; > 1 multiplexes runnable instances
	// onto that many shard workers.
	Workers int
	// QueueCap bounds each instance's dispatch queue; zero selects
	// DefaultQueueCap.
	QueueCap int
}

// RunFunc executes one queued item. tk is the item's FIFO execution ticket
// (the runner waits on it before entering the operation body); fromDrainer
// reports whether the calling goroutine holds the item's instance drainer
// role, and the return value reports whether it still does afterwards (an
// operation that blocked mid-execution hands the role off and returns
// false).
type RunFunc[T any] func(it T, tk Ticket, fromDrainer bool) bool

// Stats are cumulative counters of one scheduler.
type Stats struct {
	// QueueHighWater is the deepest per-instance dispatch queue observed.
	QueueHighWater int64
	// Handoffs counts drainer-role handoffs (an operation blocked and
	// relinquished the role before waiting).
	Handoffs int64
}

// Scheduler dispatches work items onto per-instance FIFO queues and drains
// them according to the configured execution mode.
type Scheduler[T any] struct {
	run      RunFunc[T]
	queueCap int
	shards   []shard[T] // empty in direct mode

	queueHighWater atomic.Int64
	handoffs       atomic.Int64
	pending        atomic.Int64
}

// shard is one intra-node execution lane of the sharded mode: a queue of
// runnable instances plus the worker role, held by at most one unblocked
// goroutine at a time.
type shard[T any] struct {
	mu     sync.Mutex
	runq   []*Instance[T]
	active bool
}

// entry is one queued execution with its pre-reserved ticket.
type entry[T any] struct {
	it T
	tk Ticket
}

// Instance is the scheduling state of one thread instance: its dispatch
// queue and the FIFO lock serializing the operation bodies that run on it.
type Instance[T any] struct {
	sched *Scheduler[T]
	sh    *shard[T] // nil in direct mode

	lock FIFOLock

	mu       sync.Mutex
	queue    []entry[T]
	draining bool // a goroutine owns the right to pop this queue
	queued   bool // sharded mode: instance sits on its shard's run queue
}

// New creates a scheduler executing items with run.
func New[T any](cfg Config, run RunFunc[T]) *Scheduler[T] {
	s := new(Scheduler[T])
	s.Init(cfg, run)
	return s
}

// Init initializes an embedded (zero-valued) scheduler in place.
func (s *Scheduler[T]) Init(cfg Config, run RunFunc[T]) {
	s.run = run
	s.queueCap = cfg.QueueCap
	if s.queueCap <= 0 {
		s.queueCap = DefaultQueueCap
	}
	if cfg.Workers > 1 {
		s.shards = make([]shard[T], cfg.Workers)
	}
}

// Workers returns the number of shard workers (1 for the direct mode).
func (s *Scheduler[T]) Workers() int {
	if len(s.shards) == 0 {
		return 1
	}
	return len(s.shards)
}

// Stats returns a snapshot of the scheduler's counters.
func (s *Scheduler[T]) Stats() Stats {
	return Stats{
		QueueHighWater: s.queueHighWater.Load(),
		Handoffs:       s.handoffs.Load(),
	}
}

// Pending reports the number of items currently sitting in the scheduler's
// dispatch queues: enqueued but not yet popped by a drainer. A live
// saturation gauge (not a cumulative counter) for exporters; items that
// overflow onto their own goroutine are not queued and not counted.
func (s *Scheduler[T]) Pending() int64 {
	return s.pending.Load()
}

// NewInstance creates an instance; key selects its shard in sharded mode
// (instances with equal keys modulo Workers share a lane).
func (s *Scheduler[T]) NewInstance(key int) *Instance[T] {
	inst := new(Instance[T])
	s.InitInstance(inst, key)
	return inst
}

// InitInstance initializes an embedded (zero-valued) instance in place,
// avoiding a separate allocation for containers that hold one per thread.
func (s *Scheduler[T]) InitInstance(inst *Instance[T], key int) {
	inst.sched = s
	if n := len(s.shards); n > 0 {
		if key < 0 {
			key = -key
		}
		inst.sh = &s.shards[key%n]
	}
}

// Lock acquires the instance's FIFO execution lock with a fresh reservation,
// behind every already-queued ticket. It is the reacquire half of a blocking
// point; the drainer role is deliberately not re-taken.
func (inst *Instance[T]) Lock() { inst.lock.Lock() }

// Unlock releases the instance's FIFO execution lock.
func (inst *Instance[T]) Unlock() { inst.lock.Unlock() }

// Enqueue reserves the execution ticket and queues the item, making the
// instance runnable if no goroutine currently holds its drainer role. When
// the queue is at capacity the item instead runs on its own goroutine (the
// ticket still serializes it in order).
func (inst *Instance[T]) Enqueue(it T) {
	s := inst.sched
	inst.mu.Lock()
	tk := inst.lock.Reserve()
	if len(inst.queue) >= s.queueCap {
		inst.mu.Unlock()
		go s.run(it, tk, false)
		return
	}
	inst.queue = append(inst.queue, entry[T]{it: it, tk: tk})
	s.pending.Add(1)
	s.noteDepth(int64(len(inst.queue)))
	if inst.sh == nil {
		spawn := !inst.draining
		if spawn {
			inst.draining = true
		}
		inst.mu.Unlock()
		if spawn {
			go s.drainLoop(inst)
		}
		return
	}
	signal := !inst.draining && !inst.queued
	if signal {
		inst.queued = true
	}
	inst.mu.Unlock()
	if signal {
		s.pushRunnable(inst)
	}
}

// Relinquish hands the drainer role off before the holder blocks: queued
// work continues on another goroutine, an empty queue just releases the role
// for the next enqueue. Callers must invoke it before releasing the
// instance's execution lock at a blocking point, and only while they hold
// the drainer role.
func (inst *Instance[T]) Relinquish() {
	s := inst.sched
	s.handoffs.Add(1)
	if inst.sh == nil {
		inst.mu.Lock()
		if len(inst.queue) > 0 {
			inst.mu.Unlock()
			go s.drainLoop(inst)
			return
		}
		inst.draining = false
		inst.mu.Unlock()
		return
	}
	// Sharded: give up the instance-drainer role, requeue the instance if
	// it still has work, then pass the shard-worker role to a successor
	// goroutine (the caller is about to block inside an operation).
	inst.mu.Lock()
	inst.draining = false
	requeue := len(inst.queue) > 0 && !inst.queued
	if requeue {
		inst.queued = true
	}
	inst.mu.Unlock()
	sh := inst.sh
	sh.mu.Lock()
	if requeue {
		sh.runq = append(sh.runq, inst)
	}
	if len(sh.runq) == 0 {
		sh.active = false
		sh.mu.Unlock()
		return
	}
	sh.mu.Unlock()
	go s.shardLoop(sh)
}

// pushRunnable queues an instance on its shard and makes sure a worker
// goroutine is draining the shard.
func (s *Scheduler[T]) pushRunnable(inst *Instance[T]) {
	sh := inst.sh
	sh.mu.Lock()
	sh.runq = append(sh.runq, inst)
	spawn := !sh.active
	if spawn {
		sh.active = true
	}
	sh.mu.Unlock()
	if spawn {
		go s.shardLoop(sh)
	}
}

// shardLoop is a shard-worker goroutine: it pops runnable instances and
// drains them inline until the shard is idle or the worker role was handed
// off mid-operation (drainLoop returning false).
func (s *Scheduler[T]) shardLoop(sh *shard[T]) {
	for {
		sh.mu.Lock()
		if len(sh.runq) == 0 {
			sh.active = false
			sh.mu.Unlock()
			return
		}
		inst := sh.runq[0]
		sh.runq[0] = nil
		sh.runq = sh.runq[1:]
		sh.mu.Unlock()
		inst.mu.Lock()
		inst.queued = false
		if inst.draining || len(inst.queue) == 0 {
			inst.mu.Unlock()
			continue
		}
		inst.draining = true
		inst.mu.Unlock()
		if !s.drainLoop(inst) {
			// An operation blocked; Relinquish spawned a successor worker
			// (or parked the shard), so this goroutine retires.
			return
		}
	}
}

// drainLoop pops queued executions of one instance and runs them inline,
// starting with the drainer role held. It returns true once the queue is
// empty, or false if the calling goroutine lost the role to a successor (an
// operation blocked mid-execution and handed it off).
func (s *Scheduler[T]) drainLoop(inst *Instance[T]) bool {
	for {
		inst.mu.Lock()
		if len(inst.queue) == 0 {
			inst.draining = false
			inst.mu.Unlock()
			return true
		}
		e := inst.queue[0]
		inst.queue[0] = entry[T]{}
		inst.queue = inst.queue[1:]
		inst.mu.Unlock()
		s.pending.Add(-1)
		if inst.sh != nil && !e.tk.granted() {
			// Sharded mode: the instance's execution lock is held by an
			// earlier operation still running (e.g. one that blocked,
			// reacquired and is now computing). Parking this worker in
			// tk.Wait would starve every other instance of the lane, so the
			// item runs on its own goroutine (the ticket keeps it in FIFO
			// order) and the lane moves on.
			go s.run(e.it, e.tk, false)
			continue
		}
		if s.run(e.it, e.tk, true) {
			continue
		}
		if inst.sh != nil {
			// Sharded mode: the relinquish already requeued the instance if
			// needed; the popped-queue invariant belongs to the successor.
			return false
		}
		// Direct mode: reclaim the role unless a successor drainer is
		// active, exactly as the original monolithic loop did.
		inst.mu.Lock()
		if inst.draining {
			inst.mu.Unlock()
			return false
		}
		inst.draining = true
		inst.mu.Unlock()
	}
}

// noteDepth records a queue-depth observation in the high-water mark.
func (s *Scheduler[T]) noteDepth(depth int64) {
	for {
		cur := s.queueHighWater.Load()
		if depth <= cur || s.queueHighWater.CompareAndSwap(cur, depth) {
			return
		}
	}
}
