package core

import "sync/atomic"

// Stats are cumulative counters of a node runtime (and, aggregated, of a
// whole application). They expose the macro-dataflow activity the paper
// describes — tokens circulating, local pointer handoffs vs serialized
// network transfers — and are used by the experiment harness and tests.
type Stats struct {
	// TokensPosted counts operation outputs (including final results).
	TokensPosted int64
	// TokensLocal counts tokens delivered by same-node pointer handoff.
	TokensLocal int64
	// TokensRemote counts tokens serialized and sent over the transport.
	TokensRemote int64
	// BytesSent counts serialized token bytes (envelope headers included).
	BytesSent int64
	// GroupsOpened counts split/stream groups created on the node.
	GroupsOpened int64
	// AcksSent counts consumption acknowledgements issued by merges.
	AcksSent int64
	// WindowStalls counts posts that blocked on the flow-control gate.
	WindowStalls int64
	// CallsCompleted counts graph-call results delivered on the node.
	CallsCompleted int64
	// CallsAdmitted counts graph calls that passed admission on this node
	// (registered in the pending-call table; Config.MaxInFlightCalls).
	CallsAdmitted int64
	// CallsRejected counts graph calls shed at admission with ErrOverload
	// because the in-flight call budget was exhausted.
	CallsRejected int64
	// CallsExpired counts admitted calls canceled by a deadline before
	// their result arrived (context.DeadlineExceeded), attributed to the
	// call's origin node.
	CallsExpired int64
	// QueueHighWater is the deepest per-instance dispatch queue observed by
	// the scheduler layer. Aggregation takes the maximum, not the sum.
	QueueHighWater int64
	// DrainerHandoffs counts scheduler drainer-role handoffs (an operation
	// blocked mid-execution and passed its queue to another goroutine).
	DrainerHandoffs int64
	// MigrationsCompleted counts live thread remaps completed with this node
	// as the old owner (the node that quiesced and shipped the state).
	MigrationsCompleted int64
	// TokensForwarded counts envelopes and group-ends re-sent by a placement
	// relay because they reached a node the destination thread had migrated
	// away from (held arrivals flushed at the handoff included).
	TokensForwarded int64
	// MigrationBytes counts serialized thread-state bytes shipped in
	// migration envelopes by this node.
	MigrationBytes int64
	// CheckpointsTaken counts fault-tolerance checkpoints captured by this
	// node's thread instances (Config.Checkpoint).
	CheckpointsTaken int64
	// CheckpointBytes counts serialized thread-state bytes captured into
	// checkpoints by this node.
	CheckpointBytes int64
	// TokensReplayed counts retained tokens and group-ends re-sent during
	// failure recovery (sender-side replay plus checkpoint-log re-sends).
	TokensReplayed int64
	// FailoversCompleted counts dead-node recoveries coordinated by this
	// node (the master).
	FailoversCompleted int64
	// SendRetries counts transport send attempts repeated inside the
	// suspect-grace window (Config.SuspectGrace) after a transient failure.
	SendRetries int64
	// FramesBatched counts batch frames flushed by the wire-path coalescer
	// (Config.Batch); zero with batching off.
	FramesBatched int64
	// TokensPerFrame is the largest number of tokens coalesced into one
	// batch frame. Aggregation takes the maximum, like QueueHighWater.
	TokensPerFrame int64
	// CompressedBytes / UncompressedBytes count batch frame bodies before
	// and after DEFLATE (Config.Compress): UncompressedBytes is what would
	// have crossed the wire raw, CompressedBytes what actually did. Frames
	// that did not shrink count equally in both.
	CompressedBytes   int64
	UncompressedBytes int64
}

// Add accumulates o into s. Every counter is a sum except QueueHighWater,
// which takes the maximum (a per-node high-water mark has no meaningful
// cluster-wide sum).
func (s *Stats) Add(o *Stats) {
	s.TokensPosted += o.TokensPosted
	s.TokensLocal += o.TokensLocal
	s.TokensRemote += o.TokensRemote
	s.BytesSent += o.BytesSent
	s.GroupsOpened += o.GroupsOpened
	s.AcksSent += o.AcksSent
	s.WindowStalls += o.WindowStalls
	s.CallsCompleted += o.CallsCompleted
	s.CallsAdmitted += o.CallsAdmitted
	s.CallsRejected += o.CallsRejected
	s.CallsExpired += o.CallsExpired
	if o.QueueHighWater > s.QueueHighWater {
		s.QueueHighWater = o.QueueHighWater
	}
	s.DrainerHandoffs += o.DrainerHandoffs
	s.MigrationsCompleted += o.MigrationsCompleted
	s.TokensForwarded += o.TokensForwarded
	s.MigrationBytes += o.MigrationBytes
	s.CheckpointsTaken += o.CheckpointsTaken
	s.CheckpointBytes += o.CheckpointBytes
	s.TokensReplayed += o.TokensReplayed
	s.FailoversCompleted += o.FailoversCompleted
	s.SendRetries += o.SendRetries
	s.FramesBatched += o.FramesBatched
	if o.TokensPerFrame > s.TokensPerFrame {
		s.TokensPerFrame = o.TokensPerFrame
	}
	s.CompressedBytes += o.CompressedBytes
	s.UncompressedBytes += o.UncompressedBytes
}

// statCounters is the atomic backing store embedded in each Runtime.
// Scheduler-layer counters (queue depth, handoffs) live in the scheduler
// itself and are merged into snapshots.
type statCounters struct {
	tokensPosted        atomic.Int64
	tokensLocal         atomic.Int64
	tokensRemote        atomic.Int64
	bytesSent           atomic.Int64
	groupsOpened        atomic.Int64
	acksSent            atomic.Int64
	windowStalls        atomic.Int64
	callsCompleted      atomic.Int64
	callsAdmitted       atomic.Int64
	callsRejected       atomic.Int64
	callsExpired        atomic.Int64
	migrationsCompleted atomic.Int64
	tokensForwarded     atomic.Int64
	migrationBytes      atomic.Int64
	checkpointsTaken    atomic.Int64
	checkpointBytes     atomic.Int64
	tokensReplayed      atomic.Int64
	failoversCompleted  atomic.Int64
	sendRetries         atomic.Int64
	framesBatched       atomic.Int64
	tokensPerFrame      atomic.Int64 // high-water mark, not a sum
	compressedBytes     atomic.Int64
	uncompressedBytes   atomic.Int64
}

// maxTokensPerFrame raises the tokens-per-frame high-water mark.
func (c *statCounters) maxTokensPerFrame(n int64) {
	for {
		cur := c.tokensPerFrame.Load()
		if n <= cur || c.tokensPerFrame.CompareAndSwap(cur, n) {
			return
		}
	}
}

func (c *statCounters) snapshot() *Stats {
	return &Stats{
		TokensPosted:        c.tokensPosted.Load(),
		TokensLocal:         c.tokensLocal.Load(),
		TokensRemote:        c.tokensRemote.Load(),
		BytesSent:           c.bytesSent.Load(),
		GroupsOpened:        c.groupsOpened.Load(),
		AcksSent:            c.acksSent.Load(),
		WindowStalls:        c.windowStalls.Load(),
		CallsCompleted:      c.callsCompleted.Load(),
		CallsAdmitted:       c.callsAdmitted.Load(),
		CallsRejected:       c.callsRejected.Load(),
		CallsExpired:        c.callsExpired.Load(),
		MigrationsCompleted: c.migrationsCompleted.Load(),
		TokensForwarded:     c.tokensForwarded.Load(),
		MigrationBytes:      c.migrationBytes.Load(),
		CheckpointsTaken:    c.checkpointsTaken.Load(),
		CheckpointBytes:     c.checkpointBytes.Load(),
		TokensReplayed:      c.tokensReplayed.Load(),
		FailoversCompleted:  c.failoversCompleted.Load(),
		SendRetries:         c.sendRetries.Load(),
		FramesBatched:       c.framesBatched.Load(),
		TokensPerFrame:      c.tokensPerFrame.Load(),
		CompressedBytes:     c.compressedBytes.Load(),
		UncompressedBytes:   c.uncompressedBytes.Load(),
	}
}

// Stats returns a snapshot of this node runtime's counters.
func (rt *Runtime) Stats() *Stats {
	s := rt.stats.snapshot()
	ss := rt.sched.Stats()
	s.QueueHighWater = ss.QueueHighWater
	s.DrainerHandoffs = ss.Handoffs
	return s
}

// Stats aggregates the counters of every node runtime.
func (app *App) Stats() *Stats {
	app.mu.Lock()
	rts := make([]*Runtime, 0, len(app.runtimes))
	for _, rt := range app.runtimes {
		rts = append(rts, rt)
	}
	app.mu.Unlock()
	total := &Stats{}
	for _, rt := range rts {
		total.Add(rt.Stats())
	}
	return total
}
