package core

import (
	"fmt"
	"reflect"
)

// OpKind distinguishes the four elementary DPS operations.
type OpKind int

const (
	// KindLeaf consumes one token and produces exactly one.
	KindLeaf OpKind = iota
	// KindSplit consumes one token and produces one or more, opening a group.
	KindSplit
	// KindMerge consumes all tokens of a group and produces exactly one.
	KindMerge
	// KindStream consumes all tokens of a group and may produce outputs at
	// any time during collection, opening a new group (the paper's fused
	// merge+split that preserves pipelining across constructs).
	KindStream
)

func (k OpKind) String() string {
	switch k {
	case KindLeaf:
		return "leaf"
	case KindSplit:
		return "split"
	case KindMerge:
		return "merge"
	case KindStream:
		return "stream"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// OpDef is an operation definition: the user-provided sequential code plus
// the token-type signature used for graph coherence checking (the analogue
// of the paper's operation template parameters and IDENTIFYOPERATION).
// OpDefs are stateless and reusable across graph nodes and graphs.
type OpDef struct {
	name     string
	kind     OpKind
	inTypes  []reflect.Type // acceptable input struct types
	outTypes []reflect.Type // possible output struct types
	run      func(x *exec)
}

// Name returns the operation's registered name.
func (d *OpDef) Name() string { return d.name }

// Kind returns the operation kind.
func (d *OpDef) Kind() OpKind { return d.kind }

// InTypes returns the acceptable input token struct types.
func (d *OpDef) InTypes() []reflect.Type { return append([]reflect.Type(nil), d.inTypes...) }

// OutTypes returns the possible output token struct types.
func (d *OpDef) OutTypes() []reflect.Type { return append([]reflect.Type(nil), d.outTypes...) }

func (d *OpDef) acceptsIn(t reflect.Type) bool {
	for _, it := range d.inTypes {
		if it == t {
			return true
		}
	}
	return false
}

// exec is the type-erased execution record handed to an OpDef's run
// function by the runtime.
type exec struct {
	ctx  *Ctx
	in   Token
	next func() (Token, bool)
	post func(Token)
}

// Leaf defines a 1→1 operation: it receives one token and returns exactly
// one output token. In and Out must be pointer-to-struct token types.
func Leaf[In, Out Token](name string, fn func(c *Ctx, in In) Out) *OpDef {
	inT := typeOfGeneric[In]()
	outT := typeOfGeneric[Out]()
	return &OpDef{
		name:     name,
		kind:     KindLeaf,
		inTypes:  []reflect.Type{inT},
		outTypes: []reflect.Type{outT},
		run: func(x *exec) {
			out := fn(x.ctx, x.in.(In))
			x.post(out)
		},
	}
}

// Split defines a 1→N operation. The function must call post at least once;
// each posted token joins the new group tracked by the runtime so the
// paired merge knows when the group is complete without the programmer
// counting tokens.
func Split[In, Out Token](name string, fn func(c *Ctx, in In, post func(Out))) *OpDef {
	inT := typeOfGeneric[In]()
	outT := typeOfGeneric[Out]()
	return &OpDef{
		name:     name,
		kind:     KindSplit,
		inTypes:  []reflect.Type{inT},
		outTypes: []reflect.Type{outT},
		run: func(x *exec) {
			fn(x.ctx, x.in.(In), func(o Out) { x.post(o) })
		},
	}
}

// Merge defines an N→1 operation. The function receives the first token of
// a group and a next function yielding the remaining ones; next returns
// ok=false once every token of the group has been consumed. The function's
// return value is the single output token. This mirrors the paper's
// waitForNextToken loop.
func Merge[In, Out Token](name string, fn func(c *Ctx, first In, next func() (In, bool)) Out) *OpDef {
	inT := typeOfGeneric[In]()
	outT := typeOfGeneric[Out]()
	return &OpDef{
		name:     name,
		kind:     KindMerge,
		inTypes:  []reflect.Type{inT},
		outTypes: []reflect.Type{outT},
		run: func(x *exec) {
			typedNext := func() (In, bool) {
				t, ok := x.next()
				if !ok {
					var zero In
					return zero, false
				}
				return t.(In), true
			}
			out := fn(x.ctx, x.in.(In), typedNext)
			x.post(out)
		},
	}
}

// Stream defines an N→M operation: it collects a group like a merge but may
// post output tokens at any point, enabling pipelining between successive
// parallel constructs (paper §3, "Stream operations"). It must post at
// least one token per group.
func Stream[In, Out Token](name string, fn func(c *Ctx, first In, next func() (In, bool), post func(Out))) *OpDef {
	inT := typeOfGeneric[In]()
	outT := typeOfGeneric[Out]()
	return &OpDef{
		name:     name,
		kind:     KindStream,
		inTypes:  []reflect.Type{inT},
		outTypes: []reflect.Type{outT},
		run: func(x *exec) {
			typedNext := func() (In, bool) {
				t, ok := x.next()
				if !ok {
					var zero In
					return zero, false
				}
				return t.(In), true
			}
			fn(x.ctx, x.in.(In), typedNext, func(o Out) { x.post(o) })
		},
	}
}

// exemplarTypes converts exemplar token pointers (e.g. (*FooToken)(nil))
// into their struct types.
func exemplarTypes(exemplars []Token) []reflect.Type {
	out := make([]reflect.Type, 0, len(exemplars))
	for _, e := range exemplars {
		t := reflect.TypeOf(e)
		if t == nil || t.Kind() != reflect.Pointer || t.Elem().Kind() != reflect.Struct {
			panic(fmt.Sprintf("dps: exemplar must be a (possibly nil) pointer to struct, got %T", e))
		}
		out = append(out, t.Elem())
	}
	return out
}

// SplitAny defines a split that may emit several different token types
// (conditional graph paths, paper Figure 3). outs lists exemplar pointers
// of every type the operation may post, e.g.
//
//	SplitAny[*ReqToken]("dispatch", []core.Token{(*AToken)(nil), (*BToken)(nil)}, fn)
func SplitAny[In Token](name string, outs []Token, fn func(c *Ctx, in In, post func(Token))) *OpDef {
	inT := typeOfGeneric[In]()
	return &OpDef{
		name:     name,
		kind:     KindSplit,
		inTypes:  []reflect.Type{inT},
		outTypes: exemplarTypes(outs),
		run: func(x *exec) {
			fn(x.ctx, x.in.(In), x.post)
		},
	}
}

// LeafAny defines a leaf accepting several input types and/or emitting one
// of several output types; the function must post exactly one token.
func LeafAny(name string, ins, outs []Token, fn func(c *Ctx, in Token, post func(Token))) *OpDef {
	return &OpDef{
		name:     name,
		kind:     KindLeaf,
		inTypes:  exemplarTypes(ins),
		outTypes: exemplarTypes(outs),
		run: func(x *exec) {
			fn(x.ctx, x.in, x.post)
		},
	}
}

// MergeAny defines a merge accepting several input token types.
func MergeAny(name string, ins, outs []Token, fn func(c *Ctx, first Token, next func() (Token, bool)) Token) *OpDef {
	return &OpDef{
		name:     name,
		kind:     KindMerge,
		inTypes:  exemplarTypes(ins),
		outTypes: exemplarTypes(outs),
		run: func(x *exec) {
			x.post(fn(x.ctx, x.in, x.next))
		},
	}
}

// StreamAny defines a stream accepting/emitting several token types.
func StreamAny(name string, ins, outs []Token, fn func(c *Ctx, first Token, next func() (Token, bool), post func(Token))) *OpDef {
	return &OpDef{
		name:     name,
		kind:     KindStream,
		inTypes:  exemplarTypes(ins),
		outTypes: exemplarTypes(outs),
		run: func(x *exec) {
			fn(x.ctx, x.in, x.next, x.post)
		},
	}
}
