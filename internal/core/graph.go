package core

import (
	"fmt"
	"reflect"
	"sort"
	"strings"
)

// GraphNode binds an operation to the thread collection that executes it
// and the routing function that selects the thread instance — the analogue
// of the paper's FlowgraphNode<Operation, Route>(threadCollection).
//
// A GraphNode belongs to at most one Flowgraph.
type GraphNode struct {
	op    *OpDef
	tc    *ThreadCollection
	route *Route

	graph *Flowgraph
	id    int
}

// NewNode creates a graph node executing op on collection tc, with tokens
// routed by route.
func NewNode(op *OpDef, tc *ThreadCollection, route *Route) *GraphNode {
	return &GraphNode{op: op, tc: tc, route: route, id: -1}
}

// Op returns the node's operation definition.
func (n *GraphNode) Op() *OpDef { return n.op }

// Collection returns the node's thread collection.
func (n *GraphNode) Collection() *ThreadCollection { return n.tc }

// PathBuilder accumulates paths of a flow graph under construction. Path
// plays the role of the paper's >> operator chain, Add of the += operator
// that contributes an additional path to the same builder.
type PathBuilder struct {
	paths [][]*GraphNode
}

// Path starts a builder with one path through the listed nodes, in order.
func Path(nodes ...*GraphNode) *PathBuilder {
	b := &PathBuilder{}
	return b.Add(nodes...)
}

// Add contributes another path (the paper's += operator). Nodes shared with
// existing paths create joins and forks.
func (b *PathBuilder) Add(nodes ...*GraphNode) *PathBuilder {
	b.paths = append(b.paths, append([]*GraphNode(nil), nodes...))
	return b
}

// Flowgraph is a validated directed acyclic graph of operations, ready to
// execute. Flowgraphs are named so applications can expose them as parallel
// services callable by other applications.
type Flowgraph struct {
	app  *App
	name string

	nodes    []*GraphNode
	succ     [][]int
	pred     [][]int
	inDepth  []int // frame-stack depth of tokens entering each node
	closerOf map[int]int
	entry    int
	exit     int
}

// Name returns the graph's registered name.
func (g *Flowgraph) Name() string { return g.name }

// NodeCount returns the number of operation nodes.
func (g *Flowgraph) NodeCount() int { return len(g.nodes) }

// App returns the application the graph is registered on.
func (g *Flowgraph) App() *App { return g.app }

// EntryOp returns the operation of the graph's unique entry node.
func (g *Flowgraph) EntryOp() *OpDef { return g.nodes[g.entry].op }

// ExitOp returns the operation of the graph's unique exit node.
func (g *Flowgraph) ExitOp() *OpDef { return g.nodes[g.exit].op }

// NewFlowgraph validates the builder's paths and registers the graph under
// the given name. Validation reproduces the paper's compile-time coherence
// checks: token-type compatibility along every edge, unambiguous type-based
// path selection, and split/merge balance on every path.
func (app *App) NewFlowgraph(name string, b *PathBuilder) (*Flowgraph, error) {
	if len(b.paths) == 0 {
		return nil, fmt.Errorf("dps: graph %q: no paths", name)
	}
	g := &Flowgraph{app: app, name: name, closerOf: make(map[int]int)}

	// Collect nodes in first-seen order, assign ids, build edge set.
	seen := make(map[*GraphNode]int)
	edges := make(map[[2]int]bool)
	idOf := func(n *GraphNode) (int, error) {
		if n == nil {
			return 0, fmt.Errorf("dps: graph %q: nil node in path", name)
		}
		if id, ok := seen[n]; ok {
			return id, nil
		}
		if n.graph != nil {
			return 0, fmt.Errorf("dps: graph %q: node %q already belongs to graph %q", name, n.op.name, n.graph.name)
		}
		if n.op == nil || n.tc == nil || n.route == nil {
			return 0, fmt.Errorf("dps: graph %q: node missing operation, collection or route", name)
		}
		id := len(g.nodes)
		seen[n] = id
		g.nodes = append(g.nodes, n)
		return id, nil
	}
	for _, p := range b.paths {
		if len(p) == 0 {
			return nil, fmt.Errorf("dps: graph %q: empty path", name)
		}
		prev := -1
		for _, n := range p {
			id, err := idOf(n)
			if err != nil {
				return nil, err
			}
			if prev >= 0 {
				if prev == id {
					return nil, fmt.Errorf("dps: graph %q: self-loop on %q", name, n.op.name)
				}
				edges[[2]int{prev, id}] = true
			}
			prev = id
		}
	}
	n := len(g.nodes)
	g.succ = make([][]int, n)
	g.pred = make([][]int, n)
	var edgeList [][2]int
	for e := range edges {
		edgeList = append(edgeList, e)
	}
	sort.Slice(edgeList, func(i, j int) bool {
		if edgeList[i][0] != edgeList[j][0] {
			return edgeList[i][0] < edgeList[j][0]
		}
		return edgeList[i][1] < edgeList[j][1]
	})
	for _, e := range edgeList {
		g.succ[e[0]] = append(g.succ[e[0]], e[1])
		g.pred[e[1]] = append(g.pred[e[1]], e[0])
	}

	if err := g.validate(); err != nil {
		return nil, err
	}
	if err := app.addGraph(g); err != nil {
		return nil, err
	}
	for id, node := range g.nodes {
		node.graph = g
		node.id = id
	}
	return g, nil
}

// MustFlowgraph is NewFlowgraph panicking on error.
func (app *App) MustFlowgraph(name string, b *PathBuilder) *Flowgraph {
	g, err := app.NewFlowgraph(name, b)
	if err != nil {
		panic(err)
	}
	return g
}

func (g *Flowgraph) validate() error {
	n := len(g.nodes)

	// Unique entry and exit.
	entry, exit := -1, -1
	for i := 0; i < n; i++ {
		if len(g.pred[i]) == 0 {
			if entry >= 0 {
				return g.errf("multiple entry nodes (%q and %q)", g.opName(entry), g.opName(i))
			}
			entry = i
		}
		if len(g.succ[i]) == 0 {
			if exit >= 0 {
				return g.errf("multiple exit nodes (%q and %q)", g.opName(exit), g.opName(i))
			}
			exit = i
		}
	}
	if entry < 0 {
		return g.errf("no entry node (graph has a cycle)")
	}
	if exit < 0 {
		return g.errf("no exit node (graph has a cycle)")
	}
	g.entry, g.exit = entry, exit

	// Topological order (also detects cycles and unreachable nodes).
	order, err := g.topoOrder()
	if err != nil {
		return err
	}

	// Edge type compatibility and per-out-type routing ambiguity.
	for i := 0; i < n; i++ {
		node := g.nodes[i]
		for _, outT := range node.op.outTypes {
			accepting := 0
			for _, s := range g.succ[i] {
				if g.nodes[s].op.acceptsIn(outT) {
					accepting++
				}
			}
			if len(g.succ[i]) > 0 && accepting == 0 {
				return g.errf("operation %q may emit %s but no successor accepts it", node.op.name, outT)
			}
			if accepting > 1 {
				return g.errf("operation %q output type %s is accepted by %d successors; type-based path selection is ambiguous", node.op.name, outT, accepting)
			}
		}
		for _, s := range g.succ[i] {
			if !g.edgeCompatible(i, s) {
				return g.errf("incompatible edge %q -> %q: no output type of the former is accepted by the latter", node.op.name, g.opName(s))
			}
		}
	}

	// Frame-depth balance along every path.
	g.inDepth = make([]int, n)
	for i := range g.inDepth {
		g.inDepth[i] = -1
	}
	g.inDepth[entry] = 0
	for _, i := range order {
		if g.inDepth[i] < 0 {
			return g.errf("node %q unreachable from entry", g.opName(i))
		}
		d := g.inDepth[i]
		if (g.nodes[i].op.kind == KindMerge || g.nodes[i].op.kind == KindStream) && d < 1 {
			return g.errf("%s %q has no enclosing split", g.nodes[i].op.kind, g.opName(i))
		}
		out := d + depthDelta(g.nodes[i].op.kind)
		for _, s := range g.succ[i] {
			if g.inDepth[s] < 0 {
				g.inDepth[s] = out
			} else if g.inDepth[s] != out {
				return g.errf("node %q reachable at split depths %d and %d; paths are unbalanced", g.opName(s), g.inDepth[s], out)
			}
		}
	}
	exitOut := g.inDepth[exit] + depthDelta(g.nodes[exit].op.kind)
	if exitOut != 0 {
		return g.errf("exit %q leaves %d unmatched split level(s)", g.opName(exit), exitOut)
	}
	switch g.nodes[exit].op.kind {
	case KindSplit, KindStream:
		return g.errf("exit %q must be a leaf or merge so each call yields exactly one result", g.opName(exit))
	}

	// Match each group opener (split, stream) with its unique closer.
	for i := 0; i < n; i++ {
		k := g.nodes[i].op.kind
		if k != KindSplit && k != KindStream {
			continue
		}
		closer, err := g.findCloser(i)
		if err != nil {
			return err
		}
		g.closerOf[i] = closer
	}
	return nil
}

func depthDelta(k OpKind) int {
	switch k {
	case KindSplit:
		return 1
	case KindMerge:
		return -1
	default: // leaf keeps depth; stream pops then pushes
		return 0
	}
}

// findCloser locates the merge/stream that closes the group opened by
// opener, verifying uniqueness across all paths.
func (g *Flowgraph) findCloser(opener int) (int, error) {
	d := g.inDepth[opener] + depthDelta(g.nodes[opener].op.kind)
	if g.nodes[opener].op.kind == KindStream {
		d = g.inDepth[opener] // stream's new group sits at its own input depth
	}
	closer := -1
	visited := make([]bool, len(g.nodes))
	var dfs func(i int) error
	dfs = func(i int) error {
		if visited[i] {
			return nil
		}
		visited[i] = true
		k := g.nodes[i].op.kind
		if (k == KindMerge || k == KindStream) && g.inDepth[i] == d {
			if closer >= 0 && closer != i {
				return g.errf("group opened by %q closes at both %q and %q", g.opName(opener), g.opName(closer), g.opName(i))
			}
			closer = i
			return nil
		}
		for _, s := range g.succ[i] {
			if err := dfs(s); err != nil {
				return err
			}
		}
		return nil
	}
	for _, s := range g.succ[opener] {
		if err := dfs(s); err != nil {
			return 0, err
		}
	}
	if closer < 0 {
		return 0, g.errf("group opened by %q is never merged", g.opName(opener))
	}
	return closer, nil
}

func (g *Flowgraph) topoOrder() ([]int, error) {
	n := len(g.nodes)
	indeg := make([]int, n)
	for i := 0; i < n; i++ {
		indeg[i] = len(g.pred[i])
	}
	var queue, order []int
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		order = append(order, i)
		for _, s := range g.succ[i] {
			indeg[s]--
			if indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	if len(order) != n {
		return nil, g.errf("graph contains a cycle")
	}
	return order, nil
}

func (g *Flowgraph) edgeCompatible(a, b int) bool {
	for _, outT := range g.nodes[a].op.outTypes {
		if g.nodes[b].op.acceptsIn(outT) {
			return true
		}
	}
	return false
}

// successorFor picks the unique successor of node accepting a token of
// struct type t (type-based conditional path selection, paper Figure 3).
func (g *Flowgraph) successorFor(node int, t reflect.Type) (int, error) {
	for _, s := range g.succ[node] {
		if g.nodes[s].op.acceptsIn(t) {
			return s, nil
		}
	}
	return 0, fmt.Errorf("dps: graph %q: no successor of %q accepts token type %s", g.name, g.opName(node), t)
}

func (g *Flowgraph) opName(i int) string { return g.nodes[i].op.name }

func (g *Flowgraph) errf(format string, args ...any) error {
	return fmt.Errorf("dps: graph %q: "+format, append([]any{g.name}, args...)...)
}

// DOT renders the flow graph in Graphviz format; the paper stresses that
// flow graphs "can be easily visualized" as a design aid.
func (g *Flowgraph) DOT() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph \"%s\" {\n  rankdir=LR;\n", dotEscape(g.name))
	for i, n := range g.nodes {
		shape := "box"
		switch n.op.kind {
		case KindSplit:
			shape = "triangle"
		case KindMerge:
			shape = "invtriangle"
		case KindStream:
			shape = "diamond"
		}
		fmt.Fprintf(&sb, "  n%d [label=\"%s\\n(%s on %s via %s)\" shape=%s];\n",
			i, dotEscape(n.op.name), n.op.kind, dotEscape(n.tc.Name()), dotEscape(n.route.Name()), shape)
	}
	for i := range g.nodes {
		for _, s := range g.succ[i] {
			fmt.Fprintf(&sb, "  n%d -> n%d;\n", i, s)
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

// dotEscape makes an arbitrary name safe inside a double-quoted DOT
// string: backslashes and quotes are escaped and literal newlines become
// the label line break, so hostile names cannot produce invalid Graphviz.
func dotEscape(s string) string {
	if !strings.ContainsAny(s, "\\\"\n\r") {
		return s
	}
	var sb strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		case '\n':
			sb.WriteString(`\n`)
		case '\r':
			// discard; a bare CR has no DOT representation
		default:
			sb.WriteRune(r)
		}
	}
	return sb.String()
}
