package flowctl

import (
	"container/heap"
	"context"
	"errors"
	"testing"
	"time"
)

func TestDeadlineTryAcquireExhaustion(t *testing.T) {
	g := Deadline{N: 3}.NewGate()
	for i := 0; i < 3; i++ {
		if !g.TryAcquire() {
			t.Fatalf("slot %d refused below the window", i)
		}
	}
	if g.TryAcquire() {
		t.Fatal("slot granted beyond the window")
	}
	g.Release()
	if !g.TryAcquire() {
		t.Fatal("released slot not reusable")
	}
}

func TestDeadlineGrantsEarliestFirst(t *testing.T) {
	// Two posters queue on an exhausted window; the later arrival has the
	// earlier deadline and must be granted the first released slot.
	g := Deadline{N: 1}.NewGate()
	if !g.TryAcquire() {
		t.Fatal("first slot refused")
	}
	type waiter struct {
		stalled chan struct{}
		granted chan struct{}
	}
	start := func(d time.Duration) *waiter {
		w := &waiter{stalled: make(chan struct{}), granted: make(chan struct{})}
		ctx, cancel := context.WithTimeout(context.Background(), d)
		go func() {
			defer cancel()
			if _, err := g.Acquire(ctx, func() { close(w.stalled) }, nil); err != nil {
				t.Error(err)
				return
			}
			close(w.granted)
		}()
		select {
		case <-w.stalled:
		case <-time.After(5 * time.Second):
			t.Fatal("waiter did not stall on the exhausted window")
		}
		return w
	}
	far := start(time.Hour)
	near := start(time.Minute) // later arrival, earlier deadline
	g.Release()
	select {
	case <-near.granted:
	case <-time.After(5 * time.Second):
		t.Fatal("near-deadline waiter not granted the released slot")
	}
	select {
	case <-far.granted:
		t.Fatal("far-deadline waiter barged past the near one")
	case <-time.After(20 * time.Millisecond):
	}
	g.Release()
	select {
	case <-far.granted:
	case <-time.After(5 * time.Second):
		t.Fatal("far-deadline waiter never granted")
	}
	g.Release()
	g.Release()
	if !g.Quiescent() {
		t.Fatal("gate not quiescent after all releases")
	}
}

func TestDeadlinePatienceAgesBestEffortWaiters(t *testing.T) {
	// A deadline-less waiter holds a virtual deadline of arrival+Patience:
	// a later waiter with a far real deadline must not overtake it.
	g := Deadline{N: 1, Patience: 10 * time.Millisecond}.NewGate()
	g.TryAcquire()
	stalledA := make(chan struct{})
	grantedA := make(chan struct{})
	go func() {
		if _, err := g.Acquire(nil, func() { close(stalledA) }, nil); err != nil {
			t.Error(err)
			return
		}
		close(grantedA)
	}()
	select {
	case <-stalledA:
	case <-time.After(5 * time.Second):
		t.Fatal("best-effort waiter did not stall")
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Hour)
	defer cancel()
	stalledB := make(chan struct{})
	grantedB := make(chan struct{})
	go func() {
		if _, err := g.Acquire(ctx, func() { close(stalledB) }, nil); err != nil {
			t.Error(err)
			return
		}
		close(grantedB)
	}()
	select {
	case <-stalledB:
	case <-time.After(5 * time.Second):
		t.Fatal("deadline waiter did not stall")
	}
	g.Release()
	select {
	case <-grantedA:
	case <-grantedB:
		t.Fatal("hour-deadline waiter overtook the aged best-effort one")
	case <-time.After(5 * time.Second):
		t.Fatal("no waiter granted after Release")
	}
	g.Release()
	<-grantedB
	g.Release()
	g.Release()
	if !g.Quiescent() {
		t.Fatal("gate not quiescent after all releases")
	}
}

func TestDeadlineTryAcquireDoesNotBargePastWaiters(t *testing.T) {
	// Whitebox: with room in the window but a waiter queued, TryAcquire must
	// refuse — the slot belongs to the earliest-deadline waiter.
	g := Deadline{N: 2}.NewGate().(*deadlineGate)
	if !g.TryAcquire() {
		t.Fatal("first slot refused")
	}
	g.mu.Lock()
	heap.Push(&g.waiters, &dlWaiter{due: time.Now().Add(time.Second)})
	g.mu.Unlock()
	if g.TryAcquire() {
		t.Fatal("TryAcquire barged past a queued waiter")
	}
}

func TestDeadlineAcquireCanceledReleasesHeadRole(t *testing.T) {
	// The earliest waiter's cancellation must not strand the waiters behind
	// it: the departure re-evaluates the queue and the next waiter proceeds.
	g := Deadline{N: 1}.NewGate()
	g.TryAcquire()
	ctxHead, cancelHead := context.WithCancel(context.Background())
	headStalled := make(chan struct{})
	headErr := make(chan error, 1)
	go func() {
		_, err := g.Acquire(ctxHead, func() { close(headStalled) }, nil)
		headErr <- err
	}()
	select {
	case <-headStalled:
	case <-time.After(5 * time.Second):
		t.Fatal("head waiter did not stall")
	}
	ctxNext, cancelNext := context.WithTimeout(context.Background(), time.Hour)
	defer cancelNext()
	nextStalled := make(chan struct{})
	nextGranted := make(chan struct{})
	go func() {
		if _, err := g.Acquire(ctxNext, func() { close(nextStalled) }, nil); err != nil {
			t.Error(err)
			return
		}
		close(nextGranted)
	}()
	select {
	case <-nextStalled:
	case <-time.After(5 * time.Second):
		t.Fatal("second waiter did not stall")
	}
	// Free the slot, then cancel the head (which has the earlier virtual
	// deadline only if patience is short — order the other way: cancel the
	// head first so the released slot can only go to the survivor).
	cancelHead()
	select {
	case err := <-headErr:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("head waiter got %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled head waiter did not return")
	}
	g.Release()
	select {
	case <-nextGranted:
	case <-time.After(5 * time.Second):
		t.Fatal("surviving waiter stranded after the head left")
	}
	g.Release()
	if !g.Quiescent() {
		t.Fatal("gate not quiescent after the canceled acquire")
	}
}

func TestDeadlineAcquireFailedBeforeWait(t *testing.T) {
	g := Deadline{N: 1}.NewGate()
	g.TryAcquire()
	boom := errors.New("boom")
	done := make(chan error, 1)
	go func() {
		stalled, err := g.Acquire(nil, func() {},
			func() error { return boom })
		if stalled {
			t.Error("pre-failed acquire reported a stall")
		}
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, boom) {
			t.Fatalf("got %v, want boom", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Acquire parked despite a pre-existing failure")
	}
	g.Release()
	if !g.Quiescent() {
		t.Fatal("failed acquisition consumed a slot")
	}
}

func TestDeadlinePolicyName(t *testing.T) {
	if got := (Deadline{}).Name(); got != "deadline(64,250ms)" {
		t.Fatalf("default deadline name %q", got)
	}
	if got := (Deadline{N: 8, Patience: time.Second}).Name(); got != "deadline(8,1s)" {
		t.Fatalf("deadline name %q", got)
	}
}
