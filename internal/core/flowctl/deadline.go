package flowctl

import (
	"container/heap"
	"context"
	"fmt"
	"sync"
	"time"
)

// DefaultPatience is the virtual deadline horizon granted to waiters whose
// context carries no deadline under the Deadline policy.
const DefaultPatience = 250 * time.Millisecond

// Deadline is a deadline-aware window policy: like Window it admits at most
// N unacknowledged tokens per split group, but when the window is exhausted
// the waiting posters are granted slots in earliest-deadline-first order
// instead of wake-up order. A saturated graph then spends its window on the
// calls closest to expiry — work that would otherwise time out after
// consuming a slot — which bounds the p99 of admitted calls instead of
// letting near-deadline calls languish behind fresh ones.
//
// Fairness for best-effort traffic: a waiter whose context has no deadline
// is queued with a virtual deadline of arrival + Patience, so a steady
// stream of urgent calls can overtake it for at most that long before it
// becomes the earliest waiter itself. Equal deadlines tie-break by arrival
// order.
type Deadline struct {
	// N bounds the tokens in flight per split group; <= 0 selects
	// DefaultWindow.
	N int
	// Patience is the virtual deadline horizon of deadline-less waiters;
	// <= 0 selects DefaultPatience.
	Patience time.Duration
}

func (d Deadline) size() int {
	if d.N > 0 {
		return d.N
	}
	return DefaultWindow
}

func (d Deadline) patience() time.Duration {
	if d.Patience > 0 {
		return d.Patience
	}
	return DefaultPatience
}

// Name implements Policy.
func (d Deadline) Name() string {
	return fmt.Sprintf("deadline(%d,%v)", d.size(), d.patience())
}

// NewGate implements Policy.
func (d Deadline) NewGate() Gate {
	g := &deadlineGate{n: d.size(), patience: d.patience()}
	g.cond.L = &g.mu
	return g
}

// dlWaiter is one queued Acquire ordered by (due, seq).
type dlWaiter struct {
	due time.Time
	seq uint64
	idx int // position in the heap; -1 once removed
}

type deadlineGate struct {
	mu       sync.Mutex
	cond     sync.Cond
	n        int
	patience time.Duration
	inflight int
	seq      uint64
	waiters  dlHeap
}

// TryAcquire takes a slot only when the window has room and nobody is
// queued: a poster must not barge past waiters with earlier deadlines.
func (g *deadlineGate) TryAcquire() bool {
	g.mu.Lock()
	if g.inflight < g.n && len(g.waiters) == 0 {
		g.inflight++
		g.mu.Unlock()
		return true
	}
	g.mu.Unlock()
	return false
}

func (g *deadlineGate) Acquire(ctx context.Context, onStall func(), failed func() error) (stalled bool, err error) {
	// Same shape as windowGate.Acquire: the context wakes the gate when it
	// fires and the loop consults aborted() alongside the grant condition —
	// before every wait and once more before taking the slot.
	if ctx != nil && ctx.Done() != nil {
		stop := context.AfterFunc(ctx, g.Wake)
		defer stop()
	}
	aborted := func() error {
		if failed != nil {
			if err := failed(); err != nil {
				return err
			}
		}
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		return nil
	}
	g.mu.Lock()
	if g.inflight < g.n && len(g.waiters) == 0 {
		if err := aborted(); err != nil {
			g.mu.Unlock()
			return false, err
		}
		g.inflight++
		g.mu.Unlock()
		return false, nil
	}
	w := &dlWaiter{seq: g.seq}
	g.seq++
	var hasDeadline bool
	if ctx != nil {
		w.due, hasDeadline = ctx.Deadline()
	}
	if !hasDeadline {
		w.due = time.Now().Add(g.patience)
	}
	heap.Push(&g.waiters, w)
	for {
		if err := aborted(); err != nil {
			g.remove(w)
			// The departing waiter may have been the head the others were
			// yielding to; let a successor re-evaluate.
			g.cond.Broadcast()
			g.mu.Unlock()
			return stalled, err
		}
		if g.inflight < g.n && g.waiters[0] == w {
			g.remove(w)
			g.inflight++
			if g.inflight < g.n && len(g.waiters) > 0 {
				// Room remains for the next-earliest waiter.
				g.cond.Broadcast()
			}
			g.mu.Unlock()
			return stalled, nil
		}
		if !stalled {
			stalled = true
			if onStall != nil {
				onStall()
			}
		}
		g.cond.Wait()
	}
}

// remove detaches a waiter from the heap; callers hold g.mu.
func (g *deadlineGate) remove(w *dlWaiter) {
	if w.idx >= 0 {
		heap.Remove(&g.waiters, w.idx)
	}
}

func (g *deadlineGate) Release() {
	g.mu.Lock()
	if g.inflight > 0 {
		g.inflight--
	}
	g.cond.Broadcast()
	g.mu.Unlock()
}

func (g *deadlineGate) Quiescent() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.inflight == 0
}

func (g *deadlineGate) Wake() {
	g.mu.Lock()
	g.cond.Broadcast()
	g.mu.Unlock()
}

// dlHeap is a min-heap of waiters by (due, seq).
type dlHeap []*dlWaiter

func (h dlHeap) Len() int { return len(h) }

func (h dlHeap) Less(i, j int) bool {
	if !h[i].due.Equal(h[j].due) {
		return h[i].due.Before(h[j].due)
	}
	return h[i].seq < h[j].seq
}

func (h dlHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}

func (h *dlHeap) Push(x any) {
	w := x.(*dlWaiter)
	w.idx = len(*h)
	*h = append(*h, w)
}

func (h *dlHeap) Pop() any {
	old := *h
	w := old[len(old)-1]
	old[len(old)-1] = nil
	w.idx = -1
	*h = old[:len(old)-1]
	return w
}
