// Package flowctl is the flow-control layer of the DPS engine: it decides
// how many tokens of one split–merge group may circulate unacknowledged
// (the paper's flow-control feedback) and tracks the per-thread outstanding
// counts that feed the load-balancing routing functions.
//
// A Policy creates one Gate per open split group. The engine acquires a
// slot on the gate for every posted token and releases one for every
// consumption acknowledgement arriving from the paired merge; the Window
// policy blocks posts while the window is exhausted, Unbounded never
// blocks but still counts tokens in flight (the count drives group
// reaping).
package flowctl

import (
	"context"
	"fmt"
	"sync"
)

// Policy selects the flow-control discipline applied to each split group.
type Policy interface {
	// Name identifies the policy in stats dumps and errors.
	Name() string
	// NewGate creates the in-flight tracker of one split group.
	NewGate() Gate
}

// Gate tracks the tokens in flight of one split group on the split side.
type Gate interface {
	// TryAcquire reserves a slot for one posted token without blocking,
	// reporting whether it succeeded. It is the allocation-free fast path
	// of the posting loop; on failure the poster falls back to Acquire.
	TryAcquire() bool
	// Acquire reserves a slot for one posted token, blocking while the
	// policy's window is exhausted. A non-nil ctx makes the wait
	// cancellable: cancellation wakes the waiter and aborts the
	// acquisition with ctx.Err(). onStall is invoked once, before the
	// first wait (the engine releases the poster's execution lock and
	// counts the stall there); failed is consulted after every wake-up and
	// a non-nil result aborts the acquisition, returned as err. stalled
	// reports whether the call blocked at all.
	Acquire(ctx context.Context, onStall func(), failed func() error) (stalled bool, err error)
	// Release returns one slot (one token of the group was consumed).
	Release()
	// Quiescent reports that no tokens are in flight.
	Quiescent() bool
	// Wake unblocks pending Acquires so they can observe a failure.
	Wake()
}

// Window is the paper's credit-window policy: at most N tokens of a group
// unacknowledged at any time. N <= 0 selects DefaultWindow.
type Window struct {
	N int
}

// DefaultWindow is the default per-split flow-control window.
const DefaultWindow = 64

func (w Window) size() int {
	if w.N > 0 {
		return w.N
	}
	return DefaultWindow
}

// Name implements Policy.
func (w Window) Name() string { return fmt.Sprintf("window(%d)", w.size()) }

// NewGate implements Policy.
func (w Window) NewGate() Gate {
	g := &windowGate{n: w.size()}
	g.cond.L = &g.mu
	return g
}

type windowGate struct {
	mu       sync.Mutex
	cond     sync.Cond
	n        int
	inflight int
}

func (g *windowGate) TryAcquire() bool {
	g.mu.Lock()
	if g.inflight < g.n {
		g.inflight++
		g.mu.Unlock()
		return true
	}
	g.mu.Unlock()
	return false
}

func (g *windowGate) Acquire(ctx context.Context, onStall func(), failed func() error) (stalled bool, err error) {
	// Cancellation has no channel to select on inside a cond wait; instead
	// the context wakes the gate when it fires and the loop consults
	// ctx.Err() alongside failed.
	if ctx != nil && ctx.Done() != nil {
		stop := context.AfterFunc(ctx, g.Wake)
		defer stop()
	}
	aborted := func() error {
		if failed != nil {
			if err := failed(); err != nil {
				return err
			}
		}
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		return nil
	}
	g.mu.Lock()
	for g.inflight >= g.n {
		// Consult aborted before every wait, not only after wake-ups: a
		// poster entering an exhausted window after the application already
		// failed (or its call was canceled) would otherwise park forever
		// (acks have stopped and the wake broadcast has already happened).
		if err := aborted(); err != nil {
			g.mu.Unlock()
			return stalled, err
		}
		if !stalled {
			stalled = true
			if onStall != nil {
				onStall()
			}
		}
		g.cond.Wait()
	}
	// One final consultation before taking the slot: a wake-up can race a
	// concurrent Release with the abort broadcast, and a failed poster must
	// unwind rather than push another token into a failed application.
	if err := aborted(); err != nil {
		g.mu.Unlock()
		return stalled, err
	}
	g.inflight++
	g.mu.Unlock()
	return stalled, nil
}

func (g *windowGate) Release() {
	g.mu.Lock()
	if g.inflight > 0 {
		g.inflight--
	}
	g.cond.Broadcast()
	g.mu.Unlock()
}

func (g *windowGate) Quiescent() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.inflight == 0
}

func (g *windowGate) Wake() {
	g.mu.Lock()
	g.cond.Broadcast()
	g.mu.Unlock()
}

// Unbounded applies no backpressure: posts never block, tokens in flight
// are still counted so the engine can reap completed groups. It reproduces
// the runtime's behaviour before flow control, useful as a baseline and
// for workloads whose group sizes are intrinsically bounded.
type Unbounded struct{}

// Name implements Policy.
func (Unbounded) Name() string { return "unbounded" }

// NewGate implements Policy.
func (Unbounded) NewGate() Gate { return &unboundedGate{} }

type unboundedGate struct {
	mu       sync.Mutex
	inflight int
}

func (g *unboundedGate) TryAcquire() bool {
	g.mu.Lock()
	g.inflight++
	g.mu.Unlock()
	return true
}

func (g *unboundedGate) Acquire(ctx context.Context, onStall func(), failed func() error) (bool, error) {
	g.TryAcquire()
	return false, nil
}

func (g *unboundedGate) Release() {
	g.mu.Lock()
	if g.inflight > 0 {
		g.inflight--
	}
	g.mu.Unlock()
}

func (g *unboundedGate) Quiescent() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.inflight == 0
}

func (g *unboundedGate) Wake() {}

// Credits counts tokens dispatched to each thread of a collection and not
// yet acknowledged by the downstream merge — the feedback information the
// paper uses for load balancing. The counter slice is sized once from the
// collection's cardinality at creation; Charge only grows it in the
// exceptional case of a collection remapped wider afterwards.
type Credits struct {
	mu  sync.Mutex
	out []int
}

// NewCredits creates a tracker presized to threads counters.
func NewCredits(threads int) *Credits {
	return &Credits{out: make([]int, threads)}
}

// Charge records one token dispatched to thread i.
func (c *Credits) Charge(i int) {
	c.mu.Lock()
	for len(c.out) <= i {
		c.out = append(c.out, 0)
	}
	c.out[i]++
	c.mu.Unlock()
}

// Release records one consumption acknowledgement for thread i.
func (c *Credits) Release(i int) {
	c.mu.Lock()
	if i >= 0 && i < len(c.out) && c.out[i] > 0 {
		c.out[i]--
	}
	c.mu.Unlock()
}

// Outstanding returns the number of unacknowledged tokens of thread i.
func (c *Credits) Outstanding(i int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if i < 0 || i >= len(c.out) {
		return 0
	}
	return c.out[i]
}
