package flowctl

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestWindowTryAcquireExhaustion(t *testing.T) {
	g := Window{N: 3}.NewGate()
	for i := 0; i < 3; i++ {
		if !g.TryAcquire() {
			t.Fatalf("slot %d refused below the window", i)
		}
	}
	if g.TryAcquire() {
		t.Fatal("slot granted beyond the window")
	}
	g.Release()
	if !g.TryAcquire() {
		t.Fatal("released slot not reusable")
	}
}

func TestWindowAcquireBlocksUntilRelease(t *testing.T) {
	g := Window{N: 1}.NewGate()
	if !g.TryAcquire() {
		t.Fatal("first slot refused")
	}
	stallSeen := make(chan struct{})
	acquired := make(chan bool)
	go func() {
		stalled, err := g.Acquire(nil, func() { close(stallSeen) }, nil)
		if err != nil {
			t.Error(err)
		}
		acquired <- stalled
	}()
	select {
	case <-stallSeen:
	case <-time.After(5 * time.Second):
		t.Fatal("onStall was not invoked on an exhausted window")
	}
	select {
	case <-acquired:
		t.Fatal("Acquire returned before a slot was released")
	case <-time.After(20 * time.Millisecond):
	}
	g.Release() // the ack-driven release unblocks the poster
	select {
	case stalled := <-acquired:
		if !stalled {
			t.Fatal("blocked Acquire did not report stalling")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Acquire still blocked after Release")
	}
}

func TestWindowOnStallInvokedOnce(t *testing.T) {
	g := Window{N: 1}.NewGate()
	g.TryAcquire()
	stalls := 0
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := g.Acquire(nil, func() { stalls++ }, nil); err != nil {
			t.Error(err)
		}
	}()
	// Several wake-ups without room must not re-invoke onStall.
	for i := 0; i < 3; i++ {
		time.Sleep(5 * time.Millisecond)
		g.Wake()
	}
	g.Release()
	<-done
	if stalls != 1 {
		t.Fatalf("onStall invoked %d times, want 1", stalls)
	}
}

func TestWindowAcquireAbortsOnFailure(t *testing.T) {
	g := Window{N: 1}.NewGate()
	g.TryAcquire()
	boom := errors.New("boom")
	var mu sync.Mutex
	var failure error
	errCh := make(chan error, 1)
	go func() {
		_, err := g.Acquire(nil, nil, func() error {
			mu.Lock()
			defer mu.Unlock()
			return failure
		})
		errCh <- err
	}()
	time.Sleep(10 * time.Millisecond)
	mu.Lock()
	failure = boom
	mu.Unlock()
	g.Wake()
	select {
	case err := <-errCh:
		if !errors.Is(err, boom) {
			t.Fatalf("got %v, want boom", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("aborted Acquire did not return")
	}
	// The failed acquisition must not have consumed the slot freed later.
	g.Release()
	if !g.Quiescent() {
		t.Fatal("gate not quiescent after release")
	}
}

func TestWindowQuiescent(t *testing.T) {
	g := Window{N: 2}.NewGate()
	if !g.Quiescent() {
		t.Fatal("fresh gate not quiescent")
	}
	g.TryAcquire()
	g.TryAcquire()
	if g.Quiescent() {
		t.Fatal("gate with tokens in flight reported quiescent")
	}
	g.Release()
	g.Release()
	if !g.Quiescent() {
		t.Fatal("fully acknowledged gate not quiescent")
	}
	g.Release() // extra release clamps at zero
	if !g.Quiescent() {
		t.Fatal("clamped gate not quiescent")
	}
}

func TestUnboundedNeverBlocks(t *testing.T) {
	g := Unbounded{}.NewGate()
	for i := 0; i < 10_000; i++ {
		if !g.TryAcquire() {
			t.Fatal("unbounded gate refused a slot")
		}
	}
	if g.Quiescent() {
		t.Fatal("unbounded gate must still count tokens in flight")
	}
	stalled, err := g.Acquire(nil, func() { t.Error("unbounded gate stalled") }, nil)
	if stalled || err != nil {
		t.Fatalf("unbounded Acquire: stalled=%v err=%v", stalled, err)
	}
	for i := 0; i < 10_001; i++ {
		g.Release()
	}
	if !g.Quiescent() {
		t.Fatal("unbounded gate not quiescent after all releases")
	}
}

func TestPolicyNames(t *testing.T) {
	if got := (Window{}).Name(); got != "window(64)" {
		t.Fatalf("default window name %q", got)
	}
	if got := (Window{N: 8}).Name(); got != "window(8)" {
		t.Fatalf("window name %q", got)
	}
	if got := (Unbounded{}).Name(); got != "unbounded" {
		t.Fatalf("unbounded name %q", got)
	}
}

func TestCredits(t *testing.T) {
	ct := NewCredits(2)
	ct.Charge(3) // beyond the presized width: grows
	ct.Charge(3)
	ct.Charge(0)
	if ct.Outstanding(3) != 2 || ct.Outstanding(0) != 1 || ct.Outstanding(9) != 0 {
		t.Fatalf("outstanding: %d %d %d", ct.Outstanding(3), ct.Outstanding(0), ct.Outstanding(9))
	}
	ct.Release(3)
	if ct.Outstanding(3) != 1 {
		t.Fatal("release failed")
	}
	ct.Release(9)  // out of range: no-op
	ct.Release(-1) // negative: no-op
	ct.Release(0)
	ct.Release(0) // underflow clamped at zero
	if ct.Outstanding(0) != 0 {
		t.Fatal("underflow not clamped")
	}
}

func TestCreditsExhaustionDrivesChoice(t *testing.T) {
	// The load-balancing pattern: always pick the least-charged thread.
	ct := NewCredits(3)
	pick := func() int {
		best, bestOut := 0, int(^uint(0)>>1)
		for i := 0; i < 3; i++ {
			if out := ct.Outstanding(i); out < bestOut {
				best, bestOut = i, out
			}
		}
		return best
	}
	counts := make([]int, 3)
	for i := 0; i < 30; i++ {
		w := pick()
		ct.Charge(w)
		counts[w]++
	}
	for i, c := range counts {
		if c != 10 {
			t.Fatalf("thread %d charged %d times, want 10 (distribution %v)", i, c, counts)
		}
	}
	// Acks release credits and re-expose the thread.
	for i := 0; i < 10; i++ {
		ct.Release(1)
	}
	if w := pick(); w != 1 {
		t.Fatalf("fully acknowledged thread not preferred, picked %d", w)
	}
}

func TestWindowAcquireCanceled(t *testing.T) {
	// A blocked Acquire must wake and abort with ctx.Err() when the caller's
	// context is canceled — no Release ever arrives in this test.
	g := Window{N: 1}.NewGate()
	g.TryAcquire()
	ctx, cancel := context.WithCancel(context.Background())
	stallSeen := make(chan struct{})
	errCh := make(chan error, 1)
	go func() {
		_, err := g.Acquire(ctx, func() { close(stallSeen) }, nil)
		errCh <- err
	}()
	select {
	case <-stallSeen:
	case <-time.After(5 * time.Second):
		t.Fatal("Acquire did not stall on the exhausted window")
	}
	cancel()
	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("got %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled Acquire did not return")
	}
	// The canceled acquisition must not have consumed a slot.
	g.Release()
	if !g.Quiescent() {
		t.Fatal("gate not quiescent after the canceled acquire")
	}
}

func TestWindowAcquireCanceledBeforeWait(t *testing.T) {
	// An already-canceled context aborts without stalling at all.
	g := Window{N: 1}.NewGate()
	g.TryAcquire()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	stalled, err := g.Acquire(ctx, func() { t.Error("onStall invoked for a pre-canceled acquire") }, nil)
	if stalled {
		t.Error("pre-canceled acquire reported a stall")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

func TestWindowAcquireFailedBeforeWait(t *testing.T) {
	// A poster reaching an exhausted window after the application already
	// failed must return the failure immediately instead of parking (the
	// abort broadcast has already happened, no Release will come).
	g := Window{N: 1}.NewGate()
	g.TryAcquire()
	boom := errors.New("boom")
	done := make(chan error, 1)
	go func() {
		stalled, err := g.Acquire(nil, func() { t.Error("onStall invoked for a pre-failed acquire") },
			func() error { return boom })
		if stalled {
			t.Error("pre-failed acquire reported a stall")
		}
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, boom) {
			t.Fatalf("got %v, want boom", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Acquire parked despite a pre-existing failure")
	}
}
