package core

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// Call executes the flow graph on one input token from the application's
// master node and waits for the single output token. Multiple concurrent
// calls pipeline through the graph, each identified by a call ID.
//
// Canceling ctx abandons the call promptly: Call returns ctx's error, the
// pending-call entry is deregistered, and the engine drops the call's
// in-flight tokens — releasing their flow-control window slots and
// load-balancing credits — so an abandoned call cannot wedge the graph for
// later callers.
func (g *Flowgraph) Call(ctx context.Context, tok Token) (Token, error) {
	return g.CallFrom(ctx, g.app.MasterNode(), tok)
}

// CallFrom is Call with an explicit origin node; the result token is routed
// back to that node.
//
// Unlike CallAsyncFrom, the synchronous path recycles the pending-call entry
// once the single result has been received: nothing else can reach a settled
// entry (settlement is keyed by the never-reused call ID), so saturated
// callers don't allocate an entry and channel per call.
func (g *Flowgraph) CallFrom(ctx context.Context, origin string, tok Token) (Token, error) {
	ce, err := g.startCall(ctx, origin, tok)
	if err != nil {
		return nil, err
	}
	res := <-ce.ch
	recycleCallEntry(ce)
	return res.Value, res.Err
}

// CallTimeout is CallFrom with a deadline.
//
// Deprecated: use CallFrom with a context from context.WithTimeout. This
// shim remains for existing experiments; unlike the historical behaviour
// (which merely stopped waiting), the expired deadline now cancels the call
// like any other context cancellation.
func (g *Flowgraph) CallTimeout(origin string, tok Token, d time.Duration) (Token, error) {
	ctx, cancel := context.WithTimeout(context.Background(), d)
	defer cancel()
	out, err := g.CallFrom(ctx, origin, tok)
	if errors.Is(err, context.DeadlineExceeded) {
		return nil, fmt.Errorf("dps: graph %q: call timed out after %v: %w", g.name, d, err)
	}
	return out, err
}

// CallAsync starts a call from the master node and returns the channel the
// result will be delivered on.
func (g *Flowgraph) CallAsync(ctx context.Context, tok Token) (<-chan CallResult, error) {
	return g.CallAsyncFrom(ctx, g.app.MasterNode(), tok)
}

// CallAsyncFrom starts a call from the given origin node. The returned
// channel receives exactly one CallResult; pending calls fail when the
// application fails or closes, and receive ctx's error when ctx is canceled
// before the result arrives. A nil ctx is treated as context.Background().
//
// When Config.MaxInFlightCalls is set and the budget is exhausted, the call
// is shed at admission: the error wraps ErrOverload and nothing was posted,
// so the caller can back off and retry.
func (g *Flowgraph) CallAsyncFrom(ctx context.Context, origin string, tok Token) (<-chan CallResult, error) {
	ce, err := g.startCall(ctx, origin, tok)
	if err != nil {
		return nil, err
	}
	return ce.ch, nil
}

// startCall validates, admits, registers and posts one graph call, returning
// the pending entry whose channel delivers the single result.
func (g *Flowgraph) startCall(ctx context.Context, origin string, tok Token) (*callEntry, error) {
	app := g.app
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := app.Err(); err != nil {
		return nil, err
	}
	if app.ftOn {
		// Fault tolerance starts lazily with the first call, before its
		// entry token posts: sequencing needs the serialized routing path.
		app.ftOnce.Do(app.ftStart)
	}
	rt, ok := app.runtime(origin)
	if !ok {
		return nil, fmt.Errorf("dps: graph %q: unknown origin node %q", g.name, origin)
	}
	t, err := tokType(tok)
	if err != nil {
		return nil, err
	}
	entryNode := g.nodes[g.entry]
	if !entryNode.op.acceptsIn(t) {
		return nil, fmt.Errorf("dps: graph %q: entry %q does not accept %s", g.name, entryNode.op.name, t)
	}
	for _, n := range g.nodes {
		if n.tc.ThreadCount() == 0 {
			return nil, fmt.Errorf("dps: graph %q: collection %q is not mapped", g.name, n.tc.Name())
		}
	}
	count := entryNode.tc.ThreadCount()
	ct := rt.credit(g.name, g.entry, count)
	thread := entryNode.route.pick(tok, RouteCtx{ThreadCount: count, Seq: 0, Outstanding: ct.Outstanding})
	if thread < 0 || thread >= count {
		return nil, fmt.Errorf("dps: graph %q: entry route %q returned thread %d of %d", g.name, entryNode.route.Name(), thread, count)
	}
	id, ce, err := app.registerCall(ctx, rt)
	if err != nil {
		return nil, fmt.Errorf("dps: graph %q: %w", g.name, err)
	}
	if ctx.Done() != nil {
		app.setCallStop(id, context.AfterFunc(ctx, func() {
			app.cancelCall(id, context.Cause(ctx))
		}))
	}
	env := getEnvelope()
	env.Graph = g.name
	env.Node = g.entry
	env.Thread = thread
	env.CallID = id
	env.CallOrigin = origin
	env.LastWorker = -1
	env.CreditNode = -1
	env.Token = tok
	env.ftSender = rt.ftNode // nil unless fault tolerance is enabled
	if ce.sampled {
		// The sampling decision was made at admission (registerCall); the
		// call ID doubles as the trace ID stamped into every envelope of the
		// call. The admission clock anchors the timeline.
		env.TraceID = id
		rt.traceSpan(id, "post", g.name, ce.start, 0)
	}
	if err := rt.routeSafe(env, entryNode.tc, thread); err != nil {
		app.completeCall(id, CallResult{Err: err})
	}
	return ce, nil
}

// GraphCallOp wraps a flow graph as a leaf operation: the caller's graph
// sees the whole remote computation as a single 1→1 node, preserving
// pipelining and queueing across the call (paper Figure 10). The target may
// belong to another application, making it an inter-application parallel
// service call.
func GraphCallOp(name string, target *Flowgraph) *OpDef {
	entry := target.nodes[target.entry].op
	exit := target.nodes[target.exit].op
	return &OpDef{
		name:     name,
		kind:     KindLeaf,
		inTypes:  entry.InTypes(),
		outTypes: exit.OutTypes(),
		run: func(x *exec) {
			out, err := x.ctx.CallGraph(target, x.in)
			if err != nil {
				panic(opError{fmt.Errorf("graph call %q: %w", target.Name(), err)})
			}
			x.post(out)
		},
	}
}
