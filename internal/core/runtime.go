package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core/flowctl"
	"repro/internal/core/ft"
	"repro/internal/core/place"
	"repro/internal/core/sched"
	"repro/internal/trace"
	"repro/internal/transport"
)

// Runtime is the per-node controller of the paper's §3: it sequences the
// program execution on one cluster node according to the flow graphs and
// thread collections, creates thread instances lazily, and composes the
// five engine layers:
//
//   - sched:   per-thread-instance work queues, FIFO execution tickets and
//     drainer handoff (internal/core/sched), optionally sharded over N
//     worker lanes;
//   - flowctl: per-split-group flow-control gates and the load-balancing
//     credit trackers (internal/core/flowctl);
//   - groups:  split/merge/stream group lifecycle (groups.go);
//   - place:   epoch-versioned thread placement and the live-remap
//     relays/fence gates (internal/core/place, migrate.go);
//   - link:    envelope framing, buffer pooling and send/receive over
//     transport.Transport (link.go, wire.go, pool.go).
type Runtime struct {
	app     *App
	lnk     link
	name    string
	nodeIdx int

	sched  sched.Scheduler[workItem]
	groups groupTable
	policy flowctl.Policy
	place  placeState

	stats statCounters

	// Fault-tolerance layer (nil / zero unless Config.Checkpoint is set):
	// ftNode sequences and retains graph-call entry posts originating on
	// this node; ftStore is the checkpoint store, used on the master node
	// only; dead marks this runtime's node as declared dead — its
	// in-process remnant keeps executing into the void but can no longer
	// send or fail the application.
	ftNode  *ft.State
	ftStore ft.Store
	dead    atomic.Bool

	// Observability (observe.go): ring buffers the spans of sampled calls
	// recorded on this node; qmu/qwait accumulate their dispatch-queue wait
	// times for /metrics. The unsampled hot path touches neither — every
	// recording site gates on the envelope's trace ID first.
	ring  *trace.Ring
	qmu   sync.Mutex
	qwait trace.Hist

	mu      sync.Mutex
	threads map[instKey]*threadInstance
	credits map[creditKey]*flowctl.Credits
}

// instKey identifies a thread instance without building a string key on
// every dispatch.
type instKey struct {
	collection string
	index      int
}

type creditKey struct {
	graph string
	node  int
}

// threadInstance is one DPS thread: user state, the merge-side groups open
// on it, and its scheduling state (dispatch queue + FIFO execution lock)
// owned by the scheduler layer.
type threadInstance struct {
	rt    *Runtime
	tc    *ThreadCollection
	index int
	state any
	exec  sched.Instance[workItem]

	// inflight counts executions between enqueue and completion (including
	// ones parked inside blocking points); the migration quiesce waits for
	// it to reach zero.
	inflight atomic.Int64

	// ft is the instance's fault-tolerance state (outbound sequencing and
	// retention, inbound duplicate filter); nil unless Config.Checkpoint
	// is set. yielded counts executions parked inside a blocking point
	// after handing back the FIFO ticket — a checkpoint item must not
	// capture while one exists (the parked execution is mid-body).
	ft      *ft.State
	yielded atomic.Int64
	// ranCollector is set once the instance runs a merge/stream body and
	// never cleared: collector consumption order is not reproducible by
	// re-execution, so such an instance is permanently ineligible for
	// regenerative checkpoints (ft.State.SnapshotRegen).
	ranCollector atomic.Bool

	mu     sync.Mutex
	groups map[uint64]*mergeGroup
}

// workItem is one queued execution: a token delivered to a leaf/split, or
// the first token of a group starting a merge/stream collector. The FIFO
// ticket is reserved by the scheduler at enqueue time, so queue order and
// lock grant order always agree.
type workItem struct {
	inst      *threadInstance
	g         *Flowgraph
	node      *GraphNode
	env       *envelope
	bt        bufferedToken
	mg        *mergeGroup
	collector bool
	// ckpt marks a checkpoint item (ftengine.go): it rides the instance's
	// dispatch queue so the capture serializes with operation executions.
	ckpt bool
}

func newRuntime(app *App, tr transport.Transport, idx int) *Runtime {
	rt := &Runtime{
		app:     app,
		name:    tr.Local(),
		nodeIdx: idx,
		policy:  app.cfg.flowPolicy(),
		threads: make(map[instKey]*threadInstance),
		credits: make(map[creditKey]*flowctl.Credits),
		ring:    trace.NewRing(0),
	}
	if app.ftOn {
		rt.ftNode = ft.NewState(ft.NodeStream(rt.name))
	}
	rt.groups.init(idx)
	// Colocated fast path: when the transport can attest that a destination
	// shares this process (Inproc fabric), resolve it to the peer runtime's
	// linkSink so tokens skip serialization entirely. Cross-app fabrics are
	// safe: an unknown name simply yields no fast path.
	var peers func(dst string) linkSink
	if co, ok := tr.(transport.Colocated); ok {
		peers = func(dst string) linkSink {
			if !co.Colocated(dst) {
				return nil
			}
			if peer, ok := app.runtime(dst); ok {
				return peer
			}
			return nil
		}
	}
	rt.lnk.init(tr, app.reg, &app.cfg, app.ftOn, rt, &rt.stats, peers)
	rt.lnk.ring = rt.ring
	rt.sched.Init(sched.Config{Workers: app.cfg.Workers, QueueCap: app.cfg.Queue}, rt.runItem)
	return rt
}

// Name returns the cluster node name this runtime controls.
func (rt *Runtime) Name() string { return rt.name }

// instance returns (creating lazily) the local thread instance of tc with
// the given index, verifying the mapping places it on this node.
func (rt *Runtime) instance(tc *ThreadCollection, index int) (*threadInstance, error) {
	node, err := tc.NodeOf(index)
	if err != nil {
		return nil, err
	}
	if node != rt.name {
		return nil, fmt.Errorf("dps: thread %s[%d] is mapped to %q, not %q", tc.Name(), index, node, rt.name)
	}
	key := instKey{collection: tc.Name(), index: index}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if inst, ok := rt.threads[key]; ok {
		return inst, nil
	}
	inst := &threadInstance{
		rt:     rt,
		tc:     tc,
		index:  index,
		state:  tc.newState(),
		groups: make(map[uint64]*mergeGroup),
	}
	if rt.app.ftOn {
		inst.ft = ft.NewState(ft.StreamOf(tc.Name(), index))
	}
	rt.sched.InitInstance(&inst.exec, shardKey(tc.Name(), index))
	rt.threads[key] = inst
	return inst, nil
}

// shardKey spreads thread instances over scheduler shards: same-index
// threads of different collections land on different lanes.
func shardKey(collection string, index int) int {
	h := uint32(2166136261)
	for i := 0; i < len(collection); i++ {
		h = (h ^ uint32(collection[i])) * 16777619
	}
	return int(h&0x7fffffff) + index
}

// credit returns (creating presized to threads, if needed) the credit
// tracker of one graph node's collection.
func (rt *Runtime) credit(graph string, node int, threads int) *flowctl.Credits {
	key := creditKey{graph: graph, node: node}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	ct, ok := rt.credits[key]
	if !ok {
		ct = flowctl.NewCredits(threads)
		rt.credits[key] = ct
	}
	return ct
}

// --- linkSink: decoded inbound traffic from the link layer ---------------

// deliverToken hands an envelope (token decoded) to its destination thread
// on this node. Tokens of canceled calls are dropped here, with their
// flow-control window slot and load-balancing credit released, so an
// abandoned call drains instead of wedging its split groups. Once this node
// has participated in a live remap, arrivals first pass the placement
// intercepts (relay/gates/pending — see migrate.go).
func (rt *Runtime) deliverToken(env *envelope, src string) {
	if rt.app.callAborted(env.CallID) {
		rt.dropEnvelope(env)
		return
	}
	g, ok := rt.app.Graph(env.Graph)
	if !ok {
		rt.failApp(fmt.Errorf("dps: unknown graph %q", env.Graph))
		return
	}
	if env.Node < 0 || env.Node >= len(g.nodes) {
		rt.failApp(fmt.Errorf("dps: graph %q has no node %d", env.Graph, env.Node))
		return
	}
	node := g.nodes[env.Node]
	if rt.place.active.Load() != 0 {
		key := place.Key{Collection: node.tc.Name(), Thread: env.Thread}
		if rt.placeIntercept(key, placeItem{src: src, env: env, g: g, node: node}) {
			return
		}
	}
	rt.dispatchToken(g, node, env)
}

// dispatchToken delivers an envelope to its (possibly lazily created) local
// thread instance, past the placement intercepts. Sequenced envelopes the
// instance has already processed — directly, or reflected through a
// restored checkpoint — are duplicates of a failover replay and are
// dropped without executing and without acknowledging (the original's
// acknowledgement already flowed).
//
// WHERE the duplicate filter records matters: for leaves and splits it
// runs at execution start (runSimple), under the same FIFO ticket that
// serializes state mutations and checkpoint items — a cursor recorded at
// dispatch could land in a checkpoint whose state does not yet reflect
// the still-queued token, and the torn record would cut the sender's log
// and shift every regenerated sequence number. Collector (merge/stream)
// tokens record here at delivery: their effect is the buffer insertion
// itself, and their receivers live on the master, which never restores.
func (rt *Runtime) dispatchToken(g *Flowgraph, node *GraphNode, env *envelope) {
	inst, err := rt.instance(node.tc, env.Thread)
	if err != nil {
		rt.failApp(err)
		return
	}
	switch node.op.kind {
	case KindLeaf, KindSplit:
		if env.TraceID != 0 {
			env.traceEnqNs = time.Now().UnixNano()
		}
		inst.inflight.Add(1)
		inst.exec.Enqueue(workItem{inst: inst, g: g, node: node, env: env})
	case KindMerge, KindStream:
		if env.FTSeq > 0 && inst.ft != nil && !inst.ft.CheckIn(env.FTStream, env.FTSeq) {
			ftDebugf("dup-drop at %s[%d] on %q: stream=%q seq=%d call=%d", node.tc.Name(), env.Thread, rt.name, env.FTStream, env.FTSeq, env.CallID)
			putEnvelope(env)
			return
		}
		rt.deliverToGroup(inst, g, node, env)
	}
}

func (rt *Runtime) deliverGroupEnd(m *groupEndMsg, src string) { rt.handleGroupEnd(m, src) }

func (rt *Runtime) deliverMigrate(m *migrateMsg) { rt.installMigrated(m) }

func (rt *Runtime) deliverAck(m ackMsg) { rt.handleAck(m) }

func (rt *Runtime) deliverResult(callID uint64, tok Token) {
	rt.app.completeCall(callID, CallResult{Value: tok})
}

func (rt *Runtime) deliverCheckpoint(rec *ft.Record) { rt.commitCheckpoint(rec) }

func (rt *Runtime) deliverReplay(m *replayMsg, src string) { rt.installRecovered(m, src) }

func (rt *Runtime) deliverCut(m cutMsg) { rt.applyCut(m) }

func (rt *Runtime) deliverDeath(m deathMsg, src string) {
	// A peer (possibly in another process) declared a node dead: converge
	// on the same recovery; the detector folds duplicate reports.
	rt.app.suspect(m.Node, fmt.Errorf("dps: node %q declared dead by %q", m.Node, src))
}

func (rt *Runtime) linkFail(err error) { rt.failApp(err) }

// linkDown reports whether traffic toward dst (or from this runtime at
// all) must be suppressed because a node has been declared dead. Retained
// copies of suppressed tokens replay during the failover.
func (rt *Runtime) linkDown(dst string) bool {
	return rt.dead.Load() || rt.app.ftDead.IsDead(dst)
}

// linkSuspect reports a transport send failure toward dst. It returns true
// when the fault-tolerance layer absorbs the failure (recovery underway;
// the sender drops the message, whose retained copy will replay) and false
// when it must surface as an application failure.
//
// A send can fail for reasons the transport interface cannot tell apart:
// the destination died, this node's own endpoint is gone (a crashed
// node's in-process remnant keeps executing for a while), or the link
// between the two is partitioned. A self-send disambiguates the second
// case — if our own endpoint rejects traffic, we are the dead node and
// must not blame the peer. For the third, the master is the authority:
// a node that cannot reach the master is the isolated one and reports
// itself, so a partition resolves the same way regardless of whose send
// fails first.
func (rt *Runtime) linkSuspect(dst string, err error) bool {
	if rt.dead.Load() {
		return true
	}
	if selfErr := rt.lnk.tr.Send(rt.name, []byte{msgPing}); selfErr != nil {
		return rt.app.suspect(rt.name, selfErr)
	}
	if dst == rt.app.MasterNode() && rt.name != dst {
		return rt.app.suspect(rt.name, fmt.Errorf("dps: node %q cannot reach the master: %w", rt.name, err))
	}
	return rt.app.suspect(dst, err)
}

// --- execution -----------------------------------------------------------

// runItem executes one queued item, reporting whether the caller still
// holds the drainer role afterwards. It is the scheduler layer's RunFunc.
func (rt *Runtime) runItem(it workItem, tk sched.Ticket, fromDrainer bool) bool {
	defer it.inst.inflight.Add(-1)
	if it.ckpt {
		return rt.runCheckpoint(it, tk, fromDrainer)
	}
	if it.collector {
		return rt.runCollector(it, tk, fromDrainer)
	}
	return rt.runSimple(it, tk, fromDrainer)
}

// runSimple executes a leaf or split operation body, reporting whether the
// calling goroutine still holds the drainer role afterwards.
func (rt *Runtime) runSimple(it workItem, tk sched.Ticket, fromDrainer bool) (still bool) {
	inst, g, node, env := it.inst, it.g, it.node, it.env
	c := &Ctx{rt: rt, inst: inst, graph: g, node: node, env: env, callID: env.CallID, drainer: fromDrainer}
	defer func() { still = c.drainer }()
	tk.Wait()
	if env.TraceID != 0 {
		rt.traceQueueWait(env)
	}
	defer inst.exec.Unlock()
	defer rt.recoverOp(c)
	if env.FTSeq > 0 && inst.ft != nil && !inst.ft.CheckIn(env.FTStream, env.FTSeq) {
		// A failover-replay duplicate: the instance's state (directly, or
		// through its restored checkpoint) already reflects this token.
		// Recorded here, under the execution ticket, so cursors never run
		// ahead of the state a checkpoint item in the same queue captures.
		ftDebugf("dup-drop at %s[%d] on %q: stream=%q seq=%d call=%d", inst.tc.Name(), inst.index, rt.name, env.FTStream, env.FTSeq, env.CallID)
		c.env = nil
		putEnvelope(env)
		return
	}
	if rt.app.callAborted(env.CallID) {
		// The call was canceled while this token sat in the dispatch
		// queue: drop it instead of running the operation.
		c.env = nil
		rt.dropEnvelope(env)
		return
	}

	if node.op.kind == KindSplit {
		c.sg = rt.openGroup(c, node.id)
	}
	x := &exec{
		ctx: c,
		in:  env.Token,
		next: func() (Token, bool) {
			panic(opError{fmt.Errorf("dps: %s %q must not call next", node.op.kind, node.op.name)})
		},
		post: c.postOut,
	}
	var execNs int64
	if env.TraceID != 0 {
		execNs = time.Now().UnixNano()
	}
	node.op.run(x)
	if execNs != 0 {
		rt.traceSpan(env.TraceID, "execute", node.op.name, execNs, time.Now().UnixNano()-execNs)
	}
	rt.finishOpener(c)
	if node.op.kind == KindLeaf && c.postSeq != 1 {
		panic(opError{fmt.Errorf("dps: leaf %q posted %d tokens; a leaf posts exactly one", node.op.name, c.postSeq)})
	}
	c.env = nil
	putEnvelope(env)
	return
}

// runCollector executes a merge or stream body for one group, fed by the
// group's buffer. It reports whether the calling goroutine still holds the
// drainer role afterwards.
func (rt *Runtime) runCollector(it workItem, tk sched.Ticket, fromDrainer bool) (still bool) {
	inst, g, node, firstEnv, first, mg := it.inst, it.g, it.node, it.env, it.bt, it.mg
	inst.ranCollector.Store(true)
	c := &Ctx{rt: rt, inst: inst, graph: g, node: node, env: firstEnv, callID: firstEnv.CallID, mg: mg, drainer: fromDrainer}
	defer func() { still = c.drainer }()
	tk.Wait()
	defer inst.exec.Unlock()
	defer rt.recoverOp(c)
	if rt.app.callAborted(firstEnv.CallID) {
		// Canceled while queued: never start the collector. Acknowledge
		// the first token and retire the group's merge-side state.
		rt.ackConsumed(first)
		rt.retireMergeGroup(inst, mg, first.groupID)
		c.env = nil
		putEnvelope(firstEnv)
		return
	}
	if node.op.kind == KindStream {
		c.sg = rt.openGroup(c, node.id)
	}
	// The first token counts as consumed when the execution starts.
	rt.ackConsumed(first)
	rt.ftConsumed(first, inst)
	mg.mu.Lock()
	mg.consumed++
	mg.mu.Unlock()

	x := &exec{
		ctx:  c,
		in:   first.tok,
		next: c.nextIn,
		post: c.postOut,
	}
	var execNs int64
	if firstEnv.TraceID != 0 {
		execNs = time.Now().UnixNano()
	}
	node.op.run(x)
	if execNs != 0 {
		rt.traceSpan(firstEnv.TraceID, "execute", node.op.name, execNs, time.Now().UnixNano()-execNs)
	}

	// Drain-check: the operation must have consumed its whole group.
	mg.mu.Lock()
	complete := mg.total >= 0 && mg.consumed == mg.total
	mg.mu.Unlock()
	if !complete {
		panic(opError{fmt.Errorf("dps: %s %q returned before consuming its group (use next until it reports false)", node.op.kind, node.op.name)})
	}
	rt.finishOpener(c)
	if node.op.kind == KindMerge && c.postSeq != 1 {
		panic(opError{fmt.Errorf("dps: merge %q posted %d tokens; a merge posts exactly one", node.op.name, c.postSeq)})
	}
	fr, _ := firstEnv.topFrame()
	inst.mu.Lock()
	delete(inst.groups, fr.GroupID)
	inst.mu.Unlock()
	c.env = nil
	putEnvelope(firstEnv)
	return
}

// wakeBlocked wakes every blocked wait on this node so operations observe
// an application failure or a call cancellation and unwind. Merge-side
// groups of canceled calls are retired here as well: a group whose
// collector never started (all its tokens dropped upstream) has no
// execution left to clean it up.
func (rt *Runtime) wakeBlocked() {
	for _, sg := range rt.groups.all() {
		sg.gate.Wake()
	}
	rt.mu.Lock()
	insts := make([]*threadInstance, 0, len(rt.threads))
	for _, inst := range rt.threads {
		insts = append(insts, inst)
	}
	rt.mu.Unlock()
	type groupRef struct {
		id uint64
		mg *mergeGroup
	}
	for _, inst := range insts {
		inst.mu.Lock()
		groups := make([]groupRef, 0, len(inst.groups))
		for id, mg := range inst.groups {
			groups = append(groups, groupRef{id: id, mg: mg})
		}
		inst.mu.Unlock()
		for _, gr := range groups {
			if rt.app.callAborted(gr.mg.callID) {
				rt.retireMergeGroup(inst, gr.mg, gr.id)
			}
			gr.mg.mu.Lock()
			gr.mg.cond.Broadcast()
			gr.mg.mu.Unlock()
		}
	}
}

// opError wraps runtime failures raised inside operation executions so the
// recovery handler can distinguish them from program bugs (both abort the
// application, but opErrors carry cleaner messages).
type opError struct{ err error }

func (rt *Runtime) recoverOp(c *Ctx) {
	r := recover()
	if r == nil {
		return
	}
	if rt.dead.Load() {
		// A crashed node's in-process remnant: its executions unwind
		// silently (their sends were suppressed; recovery re-executes the
		// work on a survivor from replayed inputs).
		return
	}
	g, node := c.graph, c.node
	if oe, ok := r.(opError); ok {
		// An engine-raised unwind of a canceled call is not an application
		// failure: release the execution's group accounting and keep the
		// application serving other calls.
		if rt.app.Err() == nil && rt.callCanceled(c.callID) {
			rt.cleanupCanceled(c)
			return
		}
		rt.app.fail(fmt.Errorf("graph %q, operation %q: %w", g.name, node.op.name, oe.err))
		return
	}
	rt.app.fail(fmt.Errorf("dps: panic in graph %q, operation %q: %v", g.name, node.op.name, r))
}

// callCanceled reports whether an execution's originating call is canceled,
// covering the window between the context firing and cancelCall's
// bookkeeping (the pending entry still exists but its context has an error).
func (rt *Runtime) callCanceled(id uint64) bool {
	if rt.app.callAborted(id) {
		return true
	}
	if ctx := rt.app.callContext(id); ctx != nil && ctx.Err() != nil {
		return true
	}
	return false
}

// cleanupCanceled unwinds one execution of a canceled call: the group it
// was collecting is retired (buffered tokens acknowledged so the split side
// releases window slots and credits), the group it opened is closed for
// reaping, a leaf's unforwarded input token is acknowledged, and the
// envelope returns to the pool. The application keeps running.
func (rt *Runtime) cleanupCanceled(c *Ctx) {
	if c.mg != nil && c.env != nil {
		if fr, ok := c.env.topFrame(); ok {
			rt.retireMergeGroup(c.inst, c.mg, fr.GroupID)
		}
	}
	if c.sg != nil {
		c.sg.mu.Lock()
		c.sg.done = true
		c.sg.mu.Unlock()
		rt.maybeReapSplit(c.sg)
	}
	if env := c.env; env != nil && c.mg == nil && c.sg == nil && c.postSeq == 0 {
		// A leaf unwound before forwarding its token: in normal operation
		// the forwarded output carries the frame to the merge, which acks
		// it. Release the input token's slot (and credit charge) directly,
		// exactly as if the token had been dropped before execution.
		c.env = nil
		rt.dropEnvelope(env)
	}
	if env := c.env; env != nil {
		c.env = nil
		putEnvelope(env)
	}
}
